#!/usr/bin/env sh
# Runs the top-level benchmarks once each (-benchtime=1x) and records
# the results as JSON, seeding the repository's perf trajectory.
#
#   scripts/bench.sh                         # full suite -> BENCH_pr9.json
#   BENCH='ReplaySweep|Record' scripts/bench.sh   # filtered
#   OUT=/tmp/bench.json scripts/bench.sh     # alternate output path
#
# The raw `go test` output is kept next to the JSON (same path, .txt)
# so b.Log tables remain inspectable. BENCH_pr6.json added
# BenchmarkObsOverhead: the BenchmarkReplaySweep/replay sweep with
# instrumentation on vs obs.SetEnabled(false) — both halves must stay
# within 2% of BENCH_pr5.json's BenchmarkReplaySweep/replay, the proof
# that the observability layer costs nothing on the replay hot path.
# That 2% bound is tighter than single-iteration machine noise, so
# ObsOverhead alone is recorded in a second pass at 10 iterations per
# half; its 1x lines from the main pass are dropped from the record.
# BENCH_pr7.json adds BenchmarkFailoverOverhead: the two-worker
# distributed sweep with the self-healing scheduler (breakers +
# background health prober) vs DisableReadmission — on a healthy fleet
# the two halves must match BenchmarkDistributedSweep, the proof that
# resilience costs nothing unless faults actually happen.
# BENCH_pr9.json adds BenchmarkMemoizedSweep: the full geometry grid
# replayed with no memo vs a cold memo vs a warm memo. no-memo and
# cold must stay within noise of each other (the memo's write path is
# a map insert per cell); warm must be orders of magnitude below both
# (every cell served from memoized stats, zero replays).
# BENCH_pr10.json adds the parallel-replay scaling pass:
# BenchmarkReplayOnly/{serial,parallel} run at -cpu 1,2,4,8, recorded
# as .../cpu=N (go test's trailing -N suffix would otherwise collide
# once benchjson strips it). serial/cpu=1 is the regression-gated
# pre-parallel path (scripts/perfgate.sh); parallel/cpu=N is the
# chunk-speculative replay's scaling curve. Like ObsOverhead, the
# scaling pass runs 3 iterations per point: a one-iteration replay is
# within GC/noise of the per-cpu deltas being recorded.
set -eu

BENCH="${BENCH:-.}"
OUT="${OUT:-BENCH_pr10.json}"
CPUS="${CPUS:-1,2,4,8}"

cd "$(dirname "$0")/.."

# relabel_cpu rewrites go test's trailing -GOMAXPROCS suffix into an
# explicit /cpu=N sub-benchmark path (and pins /cpu=1 onto the
# suffix-free single-proc lines) so per-cpu results keep distinct names
# in the JSON record.
relabel_cpu() {
  sed -E \
    -e 's|^(Benchmark[^[:space:]]*)-([0-9]+)([[:space:]])|\1/cpu=\2\3|' \
    -e '/^Benchmark[^[:space:]]*\/cpu=/!s|^(Benchmark[^[:space:]]*)([[:space:]])|\1/cpu=1\2|'
}

raw="${OUT%.json}.txt"
go test -run '^$' -bench "$BENCH" -benchtime=1x -timeout 60m . \
  | grep -v '^BenchmarkObsOverhead' | grep -v '^BenchmarkReplayOnly' | tee "$raw"
if printf 'BenchmarkObsOverhead/instrumented' | grep -Eq "$BENCH"; then
  go test -run '^$' -bench 'BenchmarkObsOverhead' -benchtime=10x -timeout 60m . \
    | grep '^BenchmarkObsOverhead' | tee -a "$raw"
fi
if printf 'BenchmarkReplayOnly/serial' | grep -Eq "$BENCH"; then
  go test -run '^$' -bench 'BenchmarkReplayOnly' -benchtime=3x -cpu "$CPUS" -timeout 60m . \
    | grep '^BenchmarkReplayOnly' | relabel_cpu | tee -a "$raw"
fi
go run ./cmd/benchjson < "$raw" > "$OUT"
echo "wrote $OUT (raw log in $raw)" >&2
