#!/usr/bin/env sh
# Runs the top-level benchmarks once each (-benchtime=1x) and records
# the results as JSON, seeding the repository's perf trajectory.
#
#   scripts/bench.sh                         # full suite -> BENCH_pr9.json
#   BENCH='ReplaySweep|Record' scripts/bench.sh   # filtered
#   OUT=/tmp/bench.json scripts/bench.sh     # alternate output path
#
# The raw `go test` output is kept next to the JSON (same path, .txt)
# so b.Log tables remain inspectable. BENCH_pr6.json added
# BenchmarkObsOverhead: the BenchmarkReplaySweep/replay sweep with
# instrumentation on vs obs.SetEnabled(false) — both halves must stay
# within 2% of BENCH_pr5.json's BenchmarkReplaySweep/replay, the proof
# that the observability layer costs nothing on the replay hot path.
# That 2% bound is tighter than single-iteration machine noise, so
# ObsOverhead alone is recorded in a second pass at 10 iterations per
# half; its 1x lines from the main pass are dropped from the record.
# BENCH_pr7.json adds BenchmarkFailoverOverhead: the two-worker
# distributed sweep with the self-healing scheduler (breakers +
# background health prober) vs DisableReadmission — on a healthy fleet
# the two halves must match BenchmarkDistributedSweep, the proof that
# resilience costs nothing unless faults actually happen.
# BENCH_pr9.json adds BenchmarkMemoizedSweep: the full geometry grid
# replayed with no memo vs a cold memo vs a warm memo. no-memo and
# cold must stay within noise of each other (the memo's write path is
# a map insert per cell); warm must be orders of magnitude below both
# (every cell served from memoized stats, zero replays).
set -eu

BENCH="${BENCH:-.}"
OUT="${OUT:-BENCH_pr9.json}"

cd "$(dirname "$0")/.."

raw="${OUT%.json}.txt"
go test -run '^$' -bench "$BENCH" -benchtime=1x -timeout 60m . \
  | grep -v '^BenchmarkObsOverhead' | tee "$raw"
if printf 'BenchmarkObsOverhead/instrumented' | grep -Eq "$BENCH"; then
  go test -run '^$' -bench 'BenchmarkObsOverhead' -benchtime=10x -timeout 60m . \
    | grep '^BenchmarkObsOverhead' | tee -a "$raw"
fi
go run ./cmd/benchjson < "$raw" > "$OUT"
echo "wrote $OUT (raw log in $raw)" >&2
