#!/usr/bin/env sh
# Runs the top-level benchmarks once each (-benchtime=1x) and records
# the results as JSON, seeding the repository's perf trajectory.
#
#   scripts/bench.sh                         # full suite -> BENCH_pr5.json
#   BENCH='ReplaySweep|Record' scripts/bench.sh   # filtered
#   OUT=/tmp/bench.json scripts/bench.sh     # alternate output path
#
# The raw `go test` output is kept next to the JSON (same path, .txt)
# so b.Log tables remain inspectable. BENCH_pr5.json adds
# BenchmarkPolicySweep (per-policy replay throughput and miss-rate
# deltas from one capture); its lru sub-benchmark and the unchanged
# BenchmarkReplaySweep/replay are the LRU fast-path regression guards
# against BENCH_pr2.json.
set -eu

BENCH="${BENCH:-.}"
OUT="${OUT:-BENCH_pr5.json}"

cd "$(dirname "$0")/.."

raw="${OUT%.json}.txt"
go test -run '^$' -bench "$BENCH" -benchtime=1x -timeout 60m . | tee "$raw"
go run ./cmd/benchjson < "$raw" > "$OUT"
echo "wrote $OUT (raw log in $raw)" >&2
