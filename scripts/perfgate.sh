#!/usr/bin/env sh
# Perf regression gate: compares BenchmarkReplaySweep/replay in a
# freshly generated BENCH json (see scripts/bench.sh) against the
# BENCH_pr5.json baseline and fails on a >10% ns/op slowdown — the
# proof that the chunk-speculative parallel replay engine did not tax
# the serial path it falls back to at -cpu 1.
#
#   scripts/bench.sh && scripts/perfgate.sh BENCH_pr10.json
#   scripts/perfgate.sh /tmp/bench-ci.json          # CI
#   BASELINE=BENCH_pr9.json scripts/perfgate.sh NEW.json
#
# Pass candidate paths absolute or relative to the repo root.
set -eu

new="${1:?usage: scripts/perfgate.sh CANDIDATE.json}"
base="${BASELINE:-BENCH_pr5.json}"
pct="${MAX_REGRESSION:-10}"

case "$new" in /*) ;; *) new="$(pwd)/$new" ;; esac
cd "$(dirname "$0")/.."

go run ./cmd/perfgate -baseline "$base" -max-regression "$pct" "$new"
