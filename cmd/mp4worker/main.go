// Command mp4worker is a distributed-sweep worker: it accepts
// serialized reference traces (the portable wire format of
// internal/trace — full M4TR captures or the ~40× smaller L1-filtered
// M4L2 traces, selected by upload Content-Type) and replays (L1, L2)
// cache-configuration shards against them on a local experiment farm.
// A dist.Coordinator (see internal/dist, examples/distributed, and
// `mp4study -sweep geometry|policy -workers ...`) encodes a workload
// once and fans the simulation grid across any number of these
// processes, re-planning shards onto the surviving workers when one
// fails. Shards may name a replacement policy inside their L1 config
// (cache.Config.Policy — the L2 inherits it); unknown policy names,
// like any invalid geometry, are rejected with a 400, and shards whose
// L1 (policy included) mismatches an uploaded M4L2 trace's embedded L1
// are refused rather than silently mis-simulated.
//
// Usage:
//
//	mp4worker                     # listen on :8375
//	mp4worker -addr 127.0.0.1:0   # ephemeral port (printed on stdout)
//	mp4worker -workers 8          # farm worker count (default GOMAXPROCS)
//	mp4worker -max-traces 4       # resident uploaded traces
//	mp4worker -store-max-bytes 256000000   # bound the store's wire bytes (LRU)
//	mp4worker -log-level debug    # structured-log threshold (default info)
//	mp4worker -metrics=false      # disable span/timer instrumentation
//	mp4worker -pprof              # mount net/http/pprof at /debug/pprof/
//
// Observability: GET /v1/metrics serves the process metrics registry
// (Prometheus text, or JSON with Accept: application/json), GET
// /v1/version the build identity. See README "Observability".
//
// The listen address is printed as "mp4worker listening on <addr>" so
// orchestration scripts can scrape ephemeral ports.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/dist"
	"repro/internal/obs"
	"repro/internal/trace"
)

func main() {
	addr := flag.String("addr", ":8375", "listen address")
	workers := flag.Int("workers", 0, "farm worker count (0 = GOMAXPROCS)")
	maxTraces := flag.Int("max-traces", 8, "resident uploaded traces")
	storeMaxBytes := flag.Int64("store-max-bytes", 0, "bound the trace store's total wire bytes; crossing it evicts least-recently-used traces (0 = unbounded)")
	replayWorkers := flag.Int("replay-workers", 0, "cores per single-trace replay (0 = GOMAXPROCS, 1 = serial)")
	srvFlags := obs.RegisterServerFlags(flag.CommandLine)
	flag.Parse()
	trace.SetReplayWorkers(*replayWorkers)

	if err := srvFlags.Apply(); err != nil {
		fmt.Fprintln(os.Stderr, "mp4worker:", err)
		os.Exit(2)
	}

	w := dist.NewWorker(dist.WorkerConfig{Workers: *workers, MaxTraces: *maxTraces, MaxStoreBytes: *storeMaxBytes})
	httpSrv := &http.Server{Handler: srvFlags.Wrap(w.Handler())}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mp4worker:", err)
		os.Exit(1)
	}
	fmt.Printf("mp4worker listening on %s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case <-sigc:
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "mp4worker:", err)
		os.Exit(1)
	}
}
