// Command mp4enc encodes raw planar YUV 4:2:0 video (I420) into this
// project's MPEG-4-style bitstream.
//
// Usage:
//
//	mp4enc -size 352x288 -in input.yuv -out stream.m4v [-qp 8] [-frames N]
//	mp4enc -size 352x288 -synth 30 -out stream.m4v     # synthetic input
//
// The input file holds concatenated frames of W*H luma bytes followed by
// two (W/2)*(H/2) chroma planes. Statistics (bits per VOP type, PSNR if
// -verify) print to stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/codec"
	"repro/internal/simmem"
	"repro/internal/video"
)

func main() {
	size := flag.String("size", "", "frame size WxH (multiples of 16)")
	in := flag.String("in", "", "raw I420 input file")
	out := flag.String("out", "", "output bitstream file")
	qp := flag.Int("qp", 8, "quantizer parameter (1-31)")
	frames := flag.Int("frames", 0, "max frames to encode (0 = all)")
	synth := flag.Int("synth", 0, "encode N synthetic frames instead of -in")
	searchRange := flag.Int("range", 8, "motion search range (full-pel)")
	bitrate := flag.Int("bitrate", 0, "target bit/s (0 = constant QP)")
	verify := flag.Bool("verify", false, "decode the result and report PSNR")
	flag.Parse()

	w, h, err := parseSize(*size)
	if err != nil {
		fatal(err)
	}
	if *out == "" {
		fatal(fmt.Errorf("-out is required"))
	}
	if (*in == "") == (*synth == 0) {
		fatal(fmt.Errorf("exactly one of -in or -synth is required"))
	}

	space := simmem.NewSpace(0)
	var seq []*video.Frame
	if *synth > 0 {
		seq = video.NewSynth(w, h, 1).Sequence(space, *synth)
	} else {
		seq, err = readYUV(space, *in, w, h, *frames)
		if err != nil {
			fatal(err)
		}
	}
	if len(seq) == 0 {
		fatal(fmt.Errorf("no input frames"))
	}

	cfg := codec.DefaultConfig(w, h)
	cfg.QP = *qp
	cfg.SearchRange = *searchRange
	cfg.TargetBitrate = *bitrate
	enc, err := codec.NewEncoder(cfg, space, nil, nil)
	if err != nil {
		fatal(err)
	}
	stream, err := enc.EncodeSequence(seq)
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, stream, 0o644); err != nil {
		fatal(err)
	}
	totalBits := 0
	for _, b := range enc.VOPBits {
		totalBits += b
	}
	fmt.Fprintf(os.Stderr, "encoded %d frames %dx%d: %d bytes (%.2f bits/pixel)\n",
		len(seq), w, h, len(stream), float64(totalBits)/float64(len(seq)*w*h))
	for i, b := range enc.VOPBits {
		fmt.Fprintf(os.Stderr, "  VOP %2d (%s): %6d bits\n", i, enc.VOPTypes[i], b)
	}

	if *verify {
		dec := codec.NewDecoder(simmem.NewSpace(0), nil, nil)
		got, err := dec.DecodeSequence(stream)
		if err != nil {
			fatal(fmt.Errorf("verify: %w", err))
		}
		var sum float64
		for i := range seq {
			sum += video.PSNR(seq[i], got[i])
		}
		fmt.Fprintf(os.Stderr, "verify: mean luma PSNR %.2f dB over %d frames\n", sum/float64(len(seq)), len(seq))
	}
}

func parseSize(s string) (int, int, error) {
	var w, h int
	if _, err := fmt.Sscanf(s, "%dx%d", &w, &h); err != nil {
		return 0, 0, fmt.Errorf("invalid -size %q (want WxH)", s)
	}
	if w <= 0 || h <= 0 || w%16 != 0 || h%16 != 0 {
		return 0, 0, fmt.Errorf("size %dx%d must be positive multiples of 16", w, h)
	}
	return w, h, nil
}

func readYUV(space *simmem.Space, path string, w, h, maxFrames int) ([]*video.Frame, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []*video.Frame
	for maxFrames == 0 || len(out) < maxFrames {
		fr := video.NewFrame(space, w, h)
		if _, err := io.ReadFull(f, fr.Y.Pix); err != nil {
			if err == io.EOF {
				break
			}
			if err == io.ErrUnexpectedEOF {
				return nil, fmt.Errorf("truncated frame %d in %s", len(out), path)
			}
			return nil, err
		}
		if _, err := io.ReadFull(f, fr.Cb.Pix); err != nil {
			return nil, fmt.Errorf("truncated chroma in frame %d: %w", len(out), err)
		}
		if _, err := io.ReadFull(f, fr.Cr.Pix); err != nil {
			return nil, fmt.Errorf("truncated chroma in frame %d: %w", len(out), err)
		}
		fr.TimeIndex = len(out)
		out = append(out, fr)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mp4enc:", err)
	os.Exit(1)
}
