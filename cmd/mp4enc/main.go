// Command mp4enc encodes raw planar YUV 4:2:0 video (I420) into this
// project's MPEG-4-style bitstream.
//
// Usage:
//
//	mp4enc -size 352x288 -in input.yuv -out stream.m4v [-qp 8] [-frames N]
//	mp4enc -size 352x288 -synth 30 -out stream.m4v     # synthetic input
//	mp4enc -size 352x288 -synth 30 -qpsweep 4,8,16,31  # rate-distortion sweep
//
// The input file holds concatenated frames of W*H luma bytes followed by
// two (W/2)*(H/2) chroma planes. Statistics (bits per VOP type, PSNR if
// -verify) print to stderr.
//
// With -qpsweep, the listed quantizer values encode concurrently on the
// internal/farm worker pool (-parallel sets the worker count) and a
// rate-distortion table prints to stdout; -out, if given, writes one
// stream per QP as <out>.qpN.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/codec"
	"repro/internal/farm"
	"repro/internal/simmem"
	"repro/internal/video"
)

func main() {
	size := flag.String("size", "", "frame size WxH (multiples of 16)")
	in := flag.String("in", "", "raw I420 input file")
	out := flag.String("out", "", "output bitstream file")
	qp := flag.Int("qp", 8, "quantizer parameter (1-31)")
	frames := flag.Int("frames", 0, "max frames to encode (0 = all)")
	synth := flag.Int("synth", 0, "encode N synthetic frames instead of -in")
	searchRange := flag.Int("range", 8, "motion search range (full-pel)")
	bitrate := flag.Int("bitrate", 0, "target bit/s (0 = constant QP)")
	verify := flag.Bool("verify", false, "decode the result and report PSNR")
	qpsweep := flag.String("qpsweep", "", "comma-separated QP list: encode each concurrently, print rate-distortion table")
	parallel := flag.Int("parallel", 0, "farm worker count for -qpsweep (0 = GOMAXPROCS)")
	flag.Parse()

	w, h, err := parseSize(*size)
	if err != nil {
		fatal(err)
	}
	if (*in == "") == (*synth == 0) {
		fatal(fmt.Errorf("exactly one of -in or -synth is required"))
	}
	if *qpsweep != "" {
		if *bitrate != 0 {
			fatal(fmt.Errorf("-qpsweep runs constant-QP encodes; it cannot be combined with -bitrate"))
		}
		if err := runQPSweep(*qpsweep, *parallel, w, h, *in, *synth, *frames, *searchRange, *out); err != nil {
			fatal(err)
		}
		return
	}
	if *out == "" {
		fatal(fmt.Errorf("-out is required"))
	}

	space := simmem.NewSpace(0)
	var seq []*video.Frame
	if *synth > 0 {
		seq = video.NewSynth(w, h, 1).Sequence(space, *synth)
	} else {
		seq, err = readYUV(space, *in, w, h, *frames)
		if err != nil {
			fatal(err)
		}
	}
	if len(seq) == 0 {
		fatal(fmt.Errorf("no input frames"))
	}

	cfg := codec.DefaultConfig(w, h)
	cfg.QP = *qp
	cfg.SearchRange = *searchRange
	cfg.TargetBitrate = *bitrate
	enc, err := codec.NewEncoder(cfg, space, nil, nil)
	if err != nil {
		fatal(err)
	}
	stream, err := enc.EncodeSequence(seq)
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, stream, 0o644); err != nil {
		fatal(err)
	}
	totalBits := 0
	for _, b := range enc.VOPBits {
		totalBits += b
	}
	fmt.Fprintf(os.Stderr, "encoded %d frames %dx%d: %d bytes (%.2f bits/pixel)\n",
		len(seq), w, h, len(stream), float64(totalBits)/float64(len(seq)*w*h))
	for i, b := range enc.VOPBits {
		fmt.Fprintf(os.Stderr, "  VOP %2d (%s): %6d bits\n", i, enc.VOPTypes[i], b)
	}

	if *verify {
		dec := codec.NewDecoder(simmem.NewSpace(0), nil, nil)
		got, err := dec.DecodeSequence(stream)
		if err != nil {
			fatal(fmt.Errorf("verify: %w", err))
		}
		var sum float64
		for i := range seq {
			sum += video.PSNR(seq[i], got[i])
		}
		fmt.Fprintf(os.Stderr, "verify: mean luma PSNR %.2f dB over %d frames\n", sum/float64(len(seq)), len(seq))
	}
}

// qpResult is one row of the rate-distortion table.
type qpResult struct {
	qp     int
	bytes  int
	bpp    float64
	psnr   float64
	stream []byte
}

// runQPSweep encodes the same input once per QP, concurrently on the
// farm. Each job loads the input into its own isolated Space, so jobs
// share nothing; results print in QP-list order.
func runQPSweep(list string, workers, w, h int, in string, synth, frames, searchRange int, out string) error {
	var qps []int
	for _, f := range strings.Split(list, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v < 1 || v > 31 {
			return fmt.Errorf("invalid -qpsweep entry %q (want QPs in 1..31)", f)
		}
		qps = append(qps, v)
	}
	// Read the input file once; each job parses the shared read-only
	// bytes into frames inside its own isolated Space.
	var raw []byte
	if in != "" {
		var err error
		if raw, err = os.ReadFile(in); err != nil {
			return err
		}
	}
	pool := farm.New(farm.Config{Workers: workers})
	results, err := farm.MapLabeled(context.Background(), pool, qps,
		func(i int, qp int) string { return fmt.Sprintf("qp=%d", qp) },
		func(ctx context.Context, env farm.Env, qp int) (qpResult, error) {
			space := env.Space
			var seq []*video.Frame
			var err error
			if synth > 0 {
				seq = video.NewSynth(w, h, 1).Sequence(space, synth)
			} else if seq, err = framesFromYUV(space, raw, in, w, h, frames); err != nil {
				return qpResult{}, err
			}
			if len(seq) == 0 {
				return qpResult{}, fmt.Errorf("no input frames")
			}
			cfg := codec.DefaultConfig(w, h)
			cfg.QP = qp
			cfg.SearchRange = searchRange
			enc, err := codec.NewEncoder(cfg, space, nil, nil)
			if err != nil {
				return qpResult{}, err
			}
			stream, err := enc.EncodeSequence(seq)
			if err != nil {
				return qpResult{}, err
			}
			dec := codec.NewDecoder(simmem.NewSpace(0), nil, nil)
			got, err := dec.DecodeSequence(stream)
			if err != nil {
				return qpResult{}, err
			}
			var sum float64
			for i := range seq {
				sum += video.PSNR(seq[i], got[i])
			}
			totalBits := 0
			for _, b := range enc.VOPBits {
				totalBits += b
			}
			return qpResult{
				qp:     qp,
				bytes:  len(stream),
				bpp:    float64(totalBits) / float64(len(seq)*w*h),
				psnr:   sum / float64(len(seq)),
				stream: stream,
			}, nil
		})
	if err != nil {
		return err
	}
	fmt.Printf("rate-distortion sweep %dx%d (%d workers)\n", w, h, pool.Workers())
	fmt.Printf("  %4s %10s %10s %10s\n", "qp", "bytes", "bits/px", "PSNR dB")
	for _, r := range results {
		fmt.Printf("  %4d %10d %10.3f %10.2f\n", r.qp, r.bytes, r.bpp, r.psnr)
	}
	if out != "" {
		for _, r := range results {
			path := fmt.Sprintf("%s.qp%d", out, r.qp)
			if err := os.WriteFile(path, r.stream, 0o644); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %s (%d bytes)\n", path, r.bytes)
		}
	}
	return nil
}

func parseSize(s string) (int, int, error) {
	var w, h int
	if _, err := fmt.Sscanf(s, "%dx%d", &w, &h); err != nil {
		return 0, 0, fmt.Errorf("invalid -size %q (want WxH)", s)
	}
	if w <= 0 || h <= 0 || w%16 != 0 || h%16 != 0 {
		return 0, 0, fmt.Errorf("size %dx%d must be positive multiples of 16", w, h)
	}
	return w, h, nil
}

func readYUV(space *simmem.Space, path string, w, h, maxFrames int) ([]*video.Frame, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return framesFrom(space, f, path, w, h, maxFrames)
}

// framesFromYUV parses concatenated I420 frames out of raw. The buffer
// is only read, so concurrent sweep jobs may share it while building
// frames in their own spaces; the single-encode path streams from the
// file instead (readYUV) and never loads more than it needs.
func framesFromYUV(space *simmem.Space, raw []byte, path string, w, h, maxFrames int) ([]*video.Frame, error) {
	return framesFrom(space, bytes.NewReader(raw), path, w, h, maxFrames)
}

func framesFrom(space *simmem.Space, r io.Reader, path string, w, h, maxFrames int) ([]*video.Frame, error) {
	var out []*video.Frame
	for maxFrames == 0 || len(out) < maxFrames {
		fr := video.NewFrame(space, w, h)
		if _, err := io.ReadFull(r, fr.Y.Pix); err != nil {
			if err == io.EOF {
				break
			}
			if err == io.ErrUnexpectedEOF {
				return nil, fmt.Errorf("truncated frame %d in %s", len(out), path)
			}
			return nil, err
		}
		if _, err := io.ReadFull(r, fr.Cb.Pix); err != nil {
			return nil, fmt.Errorf("truncated chroma in frame %d: %w", len(out), err)
		}
		if _, err := io.ReadFull(r, fr.Cr.Pix); err != nil {
			return nil, fmt.Errorf("truncated chroma in frame %d: %w", len(out), err)
		}
		fr.TimeIndex = len(out)
		out = append(out, fr)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mp4enc:", err)
	os.Exit(1)
}
