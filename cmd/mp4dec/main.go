// Command mp4dec decodes a bitstream produced by mp4enc back to raw
// planar YUV 4:2:0 (I420) frames in display order.
//
// Usage:
//
//	mp4dec -in stream.m4v -out video.yuv
//	mp4dec -in stream.m4v -info          # headers and per-VOP info only
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/codec"
	"repro/internal/simmem"
)

func main() {
	in := flag.String("in", "", "input bitstream file")
	out := flag.String("out", "", "raw I420 output file")
	info := flag.Bool("info", false, "print stream information without writing output")
	flag.Parse()

	if *in == "" {
		fatal(fmt.Errorf("-in is required"))
	}
	if !*info && *out == "" {
		fatal(fmt.Errorf("-out is required (or use -info)"))
	}

	stream, err := os.ReadFile(*in)
	if err != nil {
		fatal(err)
	}
	dec := codec.NewDecoder(simmem.NewSpace(0), nil, nil)
	frames, err := dec.DecodeSequence(stream)
	if err != nil {
		fatal(err)
	}
	cfg := dec.Config()
	fmt.Fprintf(os.Stderr, "stream: %dx%d, %d frames, GOP N=%d M=%d, QP %d, shape=%v\n",
		cfg.W, cfg.H, len(frames), cfg.GOP.N, cfg.GOP.M, cfg.QP, cfg.Shape)
	if *info {
		return
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for _, fr := range frames {
		if _, err := w.Write(fr.Y.Pix); err != nil {
			fatal(err)
		}
		if _, err := w.Write(fr.Cb.Pix); err != nil {
			fatal(err)
		}
		if _, err := w.Write(fr.Cr.Pix); err != nil {
			fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d frames to %s\n", len(frames), *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mp4dec:", err)
	os.Exit(1)
}
