// Command mp4served is the study service — the single front door to
// the paper's experiment harness. Clients POST study specs (the same
// JSON schema as mp4study's batch manifests), poll job status, stream
// per-shard progress over Server-Sent Events, and fetch results as
// experiments complete. Each study runs with its own capture/replay
// strategy and trace-usage accounting, so concurrent clients never
// interfere.
//
// Execution is pluggable behind the same API: by default studies
// render on an in-process farm; with -workers pointed at mp4worker
// URLs, replayed geometry/policy sweeps fan out across the fleet with
// the coordinator's full self-healing machinery (retries, breakers,
// probe-based re-admission, optional -fallback-local). Output is
// byte-identical either way.
//
// Usage:
//
//	mp4served                                 # listen on :8374, local farm
//	mp4served -addr 127.0.0.1:0               # ephemeral port (printed on stdout)
//	mp4served -workers 8                      # farm worker count (default GOMAXPROCS)
//	mp4served -workers http://a:8375,http://b:8375   # fleet mode
//	mp4served -fallback-local                 # rescue undeliverable shards in-process
//	mp4served -auth-token secret              # require Authorization: Bearer secret
//	mp4served -memo-dir /var/mp4memo          # persist the shared result memo
//	mp4served -no-memo                        # disable result memoization
//	mp4served -max-studies 4                  # concurrent studies (default 2)
//	mp4served -session-max-active 4           # per-session active-study quota
//	mp4served -session-rate 2                 # per-session submissions/second
//	mp4served -log-level debug                # structured-log threshold (default info)
//	mp4served -metrics=false                  # disable span/timer instrumentation
//	mp4served -pprof                          # mount net/http/pprof at /debug/pprof/
//
// All studies share one server-wide result memo (unless -no-memo):
// resubmitting a study, or submitting one whose sweep overlaps an
// earlier study's grid, replays only cells no study has simulated
// before — byte-identical output, and in fleet mode zero shards
// dispatched for memo-covered cells. -memo-dir persists the memo
// across restarts; /v1/healthz reports its hit rate.
//
// Observability: GET /v1/metrics serves the process metrics registry
// (Prometheus text, or JSON with Accept: application/json), GET
// /v1/version the build identity, GET /v1/healthz queue depths,
// session counts, memo hit rate and (in fleet mode) worker liveness.
// See README "Study service".
//
// Example session:
//
//	$ curl -s localhost:8374/v1/studies -d '{"experiments":[{"table":2},{"sweep":"ratio"}]}'
//	{"id": "study-0001", "state": "queued", ...}
//	$ curl -sN localhost:8374/v1/studies/study-0001/events
//	id: 1
//	event: experiment
//	data: {"seq":1,"type":"experiment",...}
//	$ curl -s localhost:8374/v1/studies/study-0001/result
//	Table 2. ...
//
// On SIGINT/SIGTERM the server drains: submissions are rejected,
// running studies get -drain-timeout to finish, then are cancelled.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/trace"
)

// parseWorkers interprets the -workers flag: an integer is the local
// farm size; a comma-separated list of http(s) URLs is a worker fleet.
func parseWorkers(s string) (farm int, fleet []string, err error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil, nil
	}
	if n, err := strconv.Atoi(s); err == nil {
		if n < 0 {
			return 0, nil, fmt.Errorf("-workers %d: farm size cannot be negative", n)
		}
		return n, nil, nil
	}
	for _, raw := range strings.Split(s, ",") {
		u := strings.TrimRight(strings.TrimSpace(raw), "/")
		if u == "" {
			continue
		}
		if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
			return 0, nil, fmt.Errorf("-workers %q: %q is neither an integer nor an http(s) URL", s, u)
		}
		fleet = append(fleet, u)
	}
	if len(fleet) == 0 {
		return 0, nil, fmt.Errorf("-workers %q: no worker URLs", s)
	}
	return 0, fleet, nil
}

func main() {
	addr := flag.String("addr", ":8374", "listen address")
	workers := flag.String("workers", "", "farm worker count (0 = GOMAXPROCS) or comma-separated mp4worker URLs for fleet mode")
	fallbackLocal := flag.Bool("fallback-local", false, "fleet mode: replay undeliverable shards in-process instead of failing the study")
	maxStudies := flag.Int("max-studies", 2, "studies simulating concurrently")
	maxQueued := flag.Int("max-queued", 64, "accepted-but-unfinished studies before 429")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget for running studies")
	authToken := flag.String("auth-token", "", "require Authorization: Bearer <token> (healthz/metrics/version stay open)")
	sessionMax := flag.Int("session-max-active", 16, "per-session active-study quota (0 = unlimited)")
	sessionRate := flag.Float64("session-rate", 0, "per-session study submissions per second (0 = unlimited)")
	sessionBurst := flag.Int("session-burst", 0, "per-session submission burst (0 = derived from -session-rate)")
	heartbeat := flag.Duration("heartbeat", 15*time.Second, "SSE heartbeat interval on /v1/studies/{id}/events")
	memoDir := flag.String("memo-dir", "", "persist the shared result memo to this directory (resubmitted studies replay only unseen cells)")
	replayWorkers := flag.Int("replay-workers", 0, "cores per single-trace replay (0 = GOMAXPROCS, 1 = serial)")
	noMemo := flag.Bool("no-memo", false, "disable result memoization (default: in-memory memo shared by all studies)")
	srvFlags := obs.RegisterServerFlags(flag.CommandLine)
	flag.Parse()
	trace.SetReplayWorkers(*replayWorkers)

	if err := srvFlags.Apply(); err != nil {
		fmt.Fprintln(os.Stderr, "mp4served:", err)
		os.Exit(2)
	}
	farmN, fleetURLs, err := parseWorkers(*workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mp4served:", err)
		os.Exit(2)
	}

	cfg := service.Config{
		Workers:          farmN,
		MaxConcurrent:    *maxStudies,
		MaxQueued:        *maxQueued,
		AuthToken:        *authToken,
		SessionMaxActive: *sessionMax,
		SessionRate:      *sessionRate,
		SessionBurst:     *sessionBurst,
		Heartbeat:        *heartbeat,
		MemoDir:          *memoDir,
		DisableMemo:      *noMemo,
	}
	if *noMemo && *memoDir != "" {
		fmt.Fprintln(os.Stderr, "mp4served: -no-memo and -memo-dir are mutually exclusive")
		os.Exit(2)
	}
	if len(fleetURLs) > 0 {
		cfg.Fleet = &service.FleetConfig{
			Workers:       fleetURLs,
			FallbackLocal: *fallbackLocal,
		}
	}
	svc := service.New(cfg)
	httpSrv := &http.Server{Handler: srvFlags.Wrap(svc.Handler())}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mp4served:", err)
		os.Exit(1)
	}
	if len(fleetURLs) > 0 {
		fmt.Printf("mp4served fronting %d workers: %s\n", len(fleetURLs), strings.Join(fleetURLs, ", "))
	}
	fmt.Printf("mp4served listening on %s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "mp4served: %v, draining (budget %v)\n", sig, *drainTimeout)
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "mp4served:", err)
		os.Exit(1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "mp4served: studies cancelled:", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "mp4served:", err)
	}
}
