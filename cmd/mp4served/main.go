// Command mp4served serves the paper's experiment harness over HTTP:
// clients POST study specs (the same JSON schema as mp4study's batch
// manifests), poll job status, and stream results as experiments
// complete. Each study runs with its own capture/replay strategy and
// trace-usage accounting, so concurrent clients never interfere.
//
// Usage:
//
//	mp4served                      # listen on :8374
//	mp4served -addr 127.0.0.1:0    # ephemeral port (printed on stdout)
//	mp4served -workers 8           # farm worker count (default GOMAXPROCS)
//	mp4served -max-studies 4       # concurrent studies (default 2)
//	mp4served -log-level debug     # structured-log threshold (default info)
//	mp4served -pprof               # mount net/http/pprof at /debug/pprof/
//
// Observability: GET /v1/metrics serves the process metrics registry
// (Prometheus text, or JSON with Accept: application/json), GET
// /v1/version the build identity. See README "Observability".
//
// Example session:
//
//	$ curl -s localhost:8374/v1/studies -d '{"experiments":[{"table":2},{"sweep":"ratio"}]}'
//	{"id": "study-0001", "state": "queued", ...}
//	$ curl -s localhost:8374/v1/studies/study-0001
//	{"id": "study-0001", "state": "running", "done": 1, "total": 2, ...}
//	$ curl -s localhost:8374/v1/studies/study-0001/result
//	Table 2. ...
//
// On SIGINT/SIGTERM the server drains: submissions are rejected,
// running studies get -drain-timeout to finish, then are cancelled.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8374", "listen address")
	workers := flag.Int("workers", 0, "farm worker count (0 = GOMAXPROCS)")
	maxStudies := flag.Int("max-studies", 2, "studies simulating concurrently")
	maxQueued := flag.Int("max-queued", 64, "accepted-but-unfinished studies before 429")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget for running studies")
	logLevel := flag.String("log-level", "info", "structured-log threshold: debug, info, warn, error")
	enablePprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.Parse()

	lvl, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mp4served:", err)
		os.Exit(2)
	}
	obs.SetLogLevel(lvl)

	svc := service.New(service.Config{
		Workers:       *workers,
		MaxConcurrent: *maxStudies,
		MaxQueued:     *maxQueued,
	})
	httpSrv := &http.Server{Handler: obs.WithPprof(svc.Handler(), *enablePprof)}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mp4served:", err)
		os.Exit(1)
	}
	fmt.Printf("mp4served listening on %s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "mp4served: %v, draining (budget %v)\n", sig, *drainTimeout)
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "mp4served:", err)
		os.Exit(1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "mp4served: studies cancelled:", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "mp4served:", err)
	}
}
