// Command benchjson converts `go test -bench` output on stdin into a
// stable JSON document on stdout — the format of the repository's
// BENCH_prN.json perf-trajectory files (see scripts/bench.sh).
//
//	go test -run '^$' -bench . -benchtime=1x . | go run ./cmd/benchjson > BENCH_pr2.json
//
// Each benchmark line becomes an object with the benchmark name (the
// trailing -GOMAXPROCS suffix stripped), the iteration count and every
// reported metric (ns/op, B/op, allocs/op and custom b.ReportMetric
// units) keyed by unit.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Document is the emitted file layout.
type Document struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Package    string      `json:"pkg,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	doc := Document{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine parses "BenchmarkName-8  10  123 ns/op  4.5 custom/unit".
func parseLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: stripProcs(f[0]), Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		b.Metrics[f[i+1]] = v
	}
	if len(b.Metrics) == 0 {
		return Benchmark{}, false
	}
	return b, true
}

// stripProcs removes the trailing -GOMAXPROCS suffix go test appends,
// keeping sub-benchmark paths intact.
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
