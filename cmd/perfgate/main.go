// Command perfgate compares one benchmark metric between two
// BENCH_prN.json perf-trajectory files (see cmd/benchjson) and exits
// non-zero when the candidate regresses past the allowed percentage —
// the CI gate that keeps the serial replay path honest while the
// parallel engine evolves on top of it.
//
//	go run ./cmd/perfgate -baseline BENCH_pr5.json /tmp/bench-ci.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// document mirrors the subset of cmd/benchjson's output the gate needs.
type document struct {
	Benchmarks []struct {
		Name    string             `json:"name"`
		Metrics map[string]float64 `json:"metrics"`
	} `json:"benchmarks"`
}

// metric loads path and returns the named benchmark's value for unit.
func metric(path, name, unit string) (float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var doc document
	if err := json.Unmarshal(raw, &doc); err != nil {
		return 0, fmt.Errorf("%s: %w", path, err)
	}
	for _, b := range doc.Benchmarks {
		if b.Name != name {
			continue
		}
		v, ok := b.Metrics[unit]
		if !ok {
			return 0, fmt.Errorf("%s: benchmark %q has no %q metric", path, name, unit)
		}
		return v, nil
	}
	return 0, fmt.Errorf("%s: benchmark %q not found", path, name)
}

func main() {
	baseline := flag.String("baseline", "BENCH_pr5.json", "baseline BENCH json file")
	bench := flag.String("bench", "BenchmarkReplaySweep/replay", "benchmark name to compare")
	unit := flag.String("unit", "ns/op", "metric unit to compare (lower is better)")
	maxPct := flag.Float64("max-regression", 10, "maximum allowed slowdown, percent")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: perfgate [flags] CANDIDATE.json")
		flag.PrintDefaults()
		os.Exit(2)
	}

	base, err := metric(*baseline, *bench, *unit)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfgate:", err)
		os.Exit(2)
	}
	got, err := metric(flag.Arg(0), *bench, *unit)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfgate:", err)
		os.Exit(2)
	}
	delta := (got - base) / base * 100
	fmt.Printf("perfgate: %s %s: baseline %.0f, candidate %.0f (%+.1f%%, limit +%.0f%%)\n",
		*bench, *unit, base, got, delta, *maxPct)
	if delta > *maxPct {
		fmt.Fprintf(os.Stderr, "perfgate: FAIL: %s regressed %.1f%% > %.0f%%\n", *bench, delta, *maxPct)
		os.Exit(1)
	}
	fmt.Println("perfgate: OK")
}
