package main

// The service-backed mode of mp4study: -service POSTs the batch
// manifest to a running mp4served instead of simulating locally, then
// either polls the study to completion or (-follow) consumes the
// study's Server-Sent Events stream — per-shard fleet progress to
// stderr as it happens, experiment outputs to stdout in manifest
// order. The printed bytes are identical to the local run of the same
// manifest: the service renders through the same harness.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/service"
)

// serviceClient talks to one mp4served instance.
type serviceClient struct {
	base      string // no trailing slash
	authToken string
	client    *http.Client
}

func (c *serviceClient) newRequest(ctx context.Context, method, path string, body io.Reader) (*http.Request, error) {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return nil, err
	}
	if c.authToken != "" {
		req.Header.Set("Authorization", "Bearer "+c.authToken)
	}
	return req, nil
}

// apiError decodes the service's JSON error envelope for diagnostics.
func apiError(resp *http.Response) error {
	defer resp.Body.Close()
	var e struct {
		Error string `json:"error"`
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if json.Unmarshal(raw, &e) == nil && e.Error != "" {
		return fmt.Errorf("%s: %s", resp.Status, e.Error)
	}
	return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(raw)))
}

// submit POSTs the study spec, honouring the service's backpressure
// contract: a 429 with Retry-After is waited out and retried, bounded.
func (c *serviceClient) submit(ctx context.Context, spec service.StudySpec) (service.StudyStatus, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return service.StudyStatus{}, err
	}
	for attempt := 0; ; attempt++ {
		req, err := c.newRequest(ctx, http.MethodPost, "/v1/studies", bytes.NewReader(body))
		if err != nil {
			return service.StudyStatus{}, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := c.client.Do(req)
		if err != nil {
			return service.StudyStatus{}, err
		}
		if resp.StatusCode == http.StatusTooManyRequests && attempt < 10 {
			delay := time.Second
			if s := resp.Header.Get("Retry-After"); s != "" {
				if n, err := strconv.Atoi(s); err == nil && n > 0 {
					delay = time.Duration(n) * time.Second
				}
			}
			resp.Body.Close()
			statusf("service busy (429), retrying in %v\n", delay)
			select {
			case <-time.After(delay):
				continue
			case <-ctx.Done():
				return service.StudyStatus{}, ctx.Err()
			}
		}
		if resp.StatusCode != http.StatusAccepted {
			return service.StudyStatus{}, fmt.Errorf("submit: %w", apiError(resp))
		}
		var st service.StudyStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		return st, err
	}
}

func (c *serviceClient) status(ctx context.Context, id string) (service.StudyStatus, error) {
	req, err := c.newRequest(ctx, http.MethodGet, "/v1/studies/"+id, nil)
	if err != nil {
		return service.StudyStatus{}, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return service.StudyStatus{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return service.StudyStatus{}, fmt.Errorf("status %s: %w", id, apiError(resp))
	}
	var st service.StudyStatus
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	return st, err
}

func (c *serviceClient) result(ctx context.Context, id string) (string, error) {
	req, err := c.newRequest(ctx, http.MethodGet, "/v1/studies/"+id+"/result", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("result %s: %w", id, apiError(resp))
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	return string(out), err
}

// runServiceStudy is the -service entry point: build the StudySpec
// from the manifest (flags override, same precedence as local
// manifest mode), submit, then follow or poll.
func runServiceStudy(ctx context.Context, base, manifestPath string, frames int, priority, authToken string, follow bool, replayFlagSet, replayFlag bool) error {
	raw, err := os.ReadFile(manifestPath)
	if err != nil {
		return err
	}
	var mf manifestFile
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&mf); err != nil {
		return fmt.Errorf("manifest %s: %w", manifestPath, err)
	}
	if len(mf.Experiments) == 0 {
		return fmt.Errorf("manifest %s: no experiments", manifestPath)
	}
	spec := service.StudySpec{
		Frames:      mf.Frames,
		Parallel:    mf.Parallel,
		Replay:      mf.Replay,
		Experiments: mf.Experiments,
		Priority:    mf.Priority,
	}
	if frames != 0 {
		spec.Frames = frames
	}
	if priority != "" {
		spec.Priority = priority
	}
	if replayFlagSet {
		spec.Replay = &replayFlag
	}

	c := &serviceClient{
		base:      strings.TrimRight(base, "/"),
		authToken: authToken,
		client:    &http.Client{}, // no client timeout: SSE streams are long-lived
	}
	st, err := c.submit(ctx, spec)
	if err != nil {
		return err
	}
	statusf("study %s submitted (%d experiments, priority %s)\n",
		st.ID, st.Total, orDefault(st.Priority, service.PriorityBatch))

	if follow {
		return c.follow(ctx, st.ID, st.Total)
	}
	for {
		st, err = c.status(ctx, st.ID)
		if err != nil {
			return err
		}
		switch st.State {
		case service.StateDone:
			out, err := c.result(ctx, st.ID)
			if err != nil {
				return err
			}
			fmt.Print(out)
			return nil
		case service.StateFailed, service.StateCancelled:
			return fmt.Errorf("study %s %s: %s", st.ID, st.State, orDefault(st.Error, "no diagnostic"))
		}
		select {
		case <-time.After(250 * time.Millisecond):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// follow consumes the study's SSE stream: shard progress to stderr,
// experiment outputs to stdout in manifest order (buffered until the
// contiguous prefix is complete), finished by the stream's terminal
// event. Dropped connections resume via Last-Event-ID, so nothing is
// lost or duplicated across reconnects.
func (c *serviceClient) follow(ctx context.Context, id string, total int) error {
	outputs := make([]string, total)
	got := make([]bool, total)
	printed := 0
	lastID := 0
	failures := 0
	for {
		terminal, err := c.streamEvents(ctx, id, &lastID, func(ev service.StudyEvent) error {
			switch ev.Type {
			case service.EventShard:
				if ev.Shard != nil {
					statusf("[%s] shard %d: %d/%d from %s (%d points)\n",
						ev.Experiment, ev.Shard.Index, ev.Shard.Done, ev.Shard.Total,
						ev.Shard.Worker, len(ev.Shard.Points))
				}
			case service.EventExperiment:
				if ev.ExperimentIndex >= 0 && ev.ExperimentIndex < total && !got[ev.ExperimentIndex] {
					got[ev.ExperimentIndex] = true
					outputs[ev.ExperimentIndex] = ev.Output
					for printed < total && got[printed] {
						fmt.Print(outputs[printed])
						outputs[printed] = ""
						printed++
					}
				}
			case service.EventError:
				return fmt.Errorf("study %s %s: %s", id, orDefault(ev.State, "failed"), orDefault(ev.Error, "no diagnostic"))
			}
			return nil
		})
		if err != nil {
			return err
		}
		if terminal {
			return nil
		}
		// Stream dropped without a terminal event: reconnect and resume.
		failures++
		if failures > 10 {
			return fmt.Errorf("study %s: event stream dropped %d times, giving up (resume with Last-Event-ID: %d)", id, failures, lastID)
		}
		statusf("event stream dropped, resuming from event %d\n", lastID)
		select {
		case <-time.After(500 * time.Millisecond):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// streamEvents opens one SSE connection from *lastID and dispatches
// decoded events to fn. Returns terminal=true once a done/error event
// was seen (the server closes the stream right after it). A dropped
// connection returns (false, nil) so the caller can resume.
func (c *serviceClient) streamEvents(ctx context.Context, id string, lastID *int, fn func(service.StudyEvent) error) (terminal bool, err error) {
	req, err := c.newRequest(ctx, http.MethodGet, "/v1/studies/"+id+"/events", nil)
	if err != nil {
		return false, err
	}
	req.Header.Set("Accept", "text/event-stream")
	if *lastID > 0 {
		req.Header.Set("Last-Event-ID", strconv.Itoa(*lastID))
	}
	resp, err := c.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return false, ctx.Err()
		}
		return false, nil // connection-level failure: reconnectable
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("events %s: %w", id, apiError(resp))
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 64*1024*1024) // experiment outputs ride in one data: line
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if len(data) == 0 {
				continue // heartbeat or id/event-only frame
			}
			var ev service.StudyEvent
			if err := json.Unmarshal(data, &ev); err != nil {
				return false, fmt.Errorf("events %s: bad frame: %w", id, err)
			}
			data = nil
			if ev.Seq > *lastID {
				*lastID = ev.Seq
				if err := fn(ev); err != nil {
					return true, err
				}
				if ev.Type == service.EventDone || ev.Type == service.EventError {
					return true, nil
				}
			}
		case strings.HasPrefix(line, ":"):
			// comment (heartbeat) — ignored
		case strings.HasPrefix(line, "data:"):
			data = append(data, strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " ")...)
		default:
			// id:/event: fields — Seq and Type ride in the JSON too
		}
	}
	if ctx.Err() != nil {
		return false, ctx.Err()
	}
	return false, nil // EOF without terminal event: reconnectable
}
