// Command mp4study regenerates the measurement tables and figures of
// "An MPEG-4 Performance Study for non-SIMD, General Purpose
// Architectures" (McKee, Fang, Valero — ISPASS 2003) on the simulated
// SGI platforms.
//
// Usage:
//
//	mp4study -all                 # every table and figure
//	mp4study -all -parallel 8     # same, on 8 farm workers
//	mp4study -table 3             # one table (1–8)
//	mp4study -figure 2            # one figure (2–4)
//	mp4study -frames 12           # longer sequences (slower, same rates)
//	mp4study -manifest jobs.json  # batch-manifest mode (see below)
//	mp4study -progress ...        # job completions to stderr
//	mp4study -replay=false ...    # legacy live simulation (no captures)
//	mp4study -sweep geometry      # encode once, replay every cache geometry
//	mp4study -cpuprofile p.out    # write pprof profiles
//
// Experiments run on the internal/farm worker pool; -parallel sets the
// worker count (default GOMAXPROCS). Output is deterministic: the same
// bytes at every worker count, in the paper's layout.
//
// Multi-machine simulations use trace capture and replay by default:
// each workload's reference stream is captured once (for the paper's
// same-L1 machines, filtered down to the L2-bound stream) and every
// machine or cache geometry is simulated by replaying the capture —
// counter-identical to live simulation, without re-running the codec.
// A summary of capture sizes and replay counts is printed to stderr;
// -replay=false restores the live path (lower memory, more codec runs).
//
// Batch-manifest mode runs an arbitrary experiment list concurrently
// and prints the outputs in manifest order. The manifest is JSON:
//
//	{
//	  "frames": 6,
//	  "parallel": 8,
//	  "experiments": [
//	    {"table": 2}, {"table": 8},
//	    {"figure": 3},
//	    {"sweep": "ratio"}, {"sweep": "coloring"}
//	  ]
//	}
//
// Flags override manifest settings when given explicitly.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/farm"
	"repro/internal/harness"
	"repro/internal/perf"
)

func main() {
	table := flag.Int("table", 0, "regenerate one table (1-8)")
	figure := flag.Int("figure", 0, "regenerate one figure (2-4)")
	all := flag.Bool("all", false, "regenerate every table and figure")
	frames := flag.Int("frames", 0, "sequence length in frames (0 = default)")
	sweep := flag.String("sweep", "", "extra experiment: ratio | geometry | search | prefetch | staging | coloring")
	manifest := flag.String("manifest", "", "batch-manifest file (JSON); runs its experiment list")
	parallel := flag.Int("parallel", 0, "farm worker count (0 = GOMAXPROCS)")
	progress := flag.Bool("progress", false, "report job completions to stderr")
	replay := flag.Bool("replay", true, "simulate machines by trace capture and replay (false = legacy live simulation)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	harness.SetReplayEnabled(*replay)
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		addProfileFlush(func() {
			pprof.StopCPUProfile()
			f.Close()
		})
	}
	if *memprofile != "" {
		path := *memprofile
		addProfileFlush(func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mp4study: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "mp4study: memprofile:", err)
			}
		})
	}
	defer flushProfiles()

	modes := 0
	for _, set := range []bool{*all, *table != 0, *figure != 0, *sweep != "", *manifest != ""} {
		if set {
			modes++
		}
	}
	if modes == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if modes > 1 {
		fatal(fmt.Errorf("choose exactly one of -all, -table, -figure, -sweep, -manifest"))
	}

	start := time.Now()
	ctx := context.Background()
	pool := newPool(*parallel, *progress)

	switch {
	case *manifest != "":
		var err error
		if pool, err = runManifest(ctx, *manifest, *frames, *parallel, *progress); err != nil {
			fatal(err)
		}
	case *all:
		if err := runAll(ctx, pool, *frames); err != nil {
			fatal(err)
		}
	case *table != 0:
		if err := printExperiment(ctx, pool, experiment{Table: *table}, *frames); err != nil {
			fatal(err)
		}
	case *figure != 0:
		if err := printExperiment(ctx, pool, experiment{Figure: *figure}, *frames); err != nil {
			fatal(err)
		}
	case *sweep != "":
		if err := printExperiment(ctx, pool, experiment{Sweep: *sweep}, *frames); err != nil {
			fatal(err)
		}
	}
	if *replay {
		reportTraceUsage()
	}
	fmt.Fprintf(os.Stderr, "total time: %v (%d workers)\n",
		time.Since(start).Round(time.Millisecond), pool.Workers())
}

// reportTraceUsage summarises the capture/replay traffic of the run:
// how many reference streams were recorded, their memory cost, and how
// many machine/geometry simulations were served from them.
func reportTraceUsage() {
	u := harness.TraceUsageSnapshot()
	if u.Traces == 0 && u.L2Traces == 0 {
		return
	}
	fmt.Fprintf(os.Stderr,
		"traces: %d full (%d records, %.1f MB), %d L1-filtered (%d events, %.1f MB); %d replays\n",
		u.Traces, u.TraceRecords, float64(u.TraceBytes)/(1<<20),
		u.L2Traces, u.L2Events, float64(u.L2Bytes)/(1<<20), u.Replays)
}

// runAll regenerates every table and figure in paper order. Tables 2–7
// fan out through harness.RunTables at workload granularity (encode and
// decode tables of the same configuration share one capture), Table 8
// and Figure 2 fan out through their own pool paths, and Figures 3 and
// 4 — two views of one object/layer sweep — share a single sweep run.
func runAll(ctx context.Context, pool *farm.Pool, frames int) error {
	fmt.Print(harness.Table1() + "\n")
	tabs, err := harness.RunTables(ctx, pool, harness.TableSpecs(), frames)
	if err != nil {
		return err
	}
	for _, tab := range tabs {
		fmt.Print(tab.String() + "\n")
	}
	for _, e := range []experiment{{Table: 8}, {Figure: 2}} {
		if err := printExperiment(ctx, pool, e, frames); err != nil {
			return err
		}
	}
	points, err := harness.RunObjectSweepPool(ctx, pool, frames)
	if err != nil {
		return err
	}
	var sb strings.Builder
	for _, series := range [][]perf.Series{harness.Figure3Series(points), harness.Figure4Series(points)} {
		for _, s := range series {
			s.Write(&sb)
			sb.WriteString("\n")
		}
	}
	fmt.Print(sb.String())
	return nil
}

func newPool(workers int, progress bool) *farm.Pool {
	cfg := farm.Config{Workers: workers}
	if progress {
		cfg.Progress = func(ev farm.Event) {
			status := "done"
			if ev.Err != nil {
				status = "FAIL: " + ev.Err.Error()
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %s %s\n", ev.Done, ev.Total, ev.Label, status)
		}
	}
	return farm.New(cfg)
}

// experiment is one schedulable unit of the study: a table, a figure,
// or an extension sweep. Exactly one field is set.
type experiment struct {
	Table  int    `json:"table,omitempty"`
	Figure int    `json:"figure,omitempty"`
	Sweep  string `json:"sweep,omitempty"`
}

func (e experiment) label() string {
	switch {
	case e.Table != 0:
		return fmt.Sprintf("table %d", e.Table)
	case e.Figure != 0:
		return fmt.Sprintf("figure %d", e.Figure)
	default:
		return "sweep " + e.Sweep
	}
}

// manifestFile is the batch-manifest schema.
type manifestFile struct {
	Frames      int          `json:"frames"`
	Parallel    int          `json:"parallel"`
	Experiments []experiment `json:"experiments"`
}

// runManifest executes a manifest and returns the pool it actually ran
// on (the manifest's "parallel" applies when the -parallel flag is 0).
func runManifest(ctx context.Context, path string, frames, parallel int, progress bool) (*farm.Pool, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var mf manifestFile
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&mf); err != nil {
		return nil, fmt.Errorf("manifest %s: %w", path, err)
	}
	if len(mf.Experiments) == 0 {
		return nil, fmt.Errorf("manifest %s: no experiments", path)
	}
	for i, e := range mf.Experiments {
		set := 0
		if e.Table != 0 {
			set++
		}
		if e.Figure != 0 {
			set++
		}
		if e.Sweep != "" {
			set++
		}
		if set != 1 {
			return nil, fmt.Errorf("manifest %s: experiment %d must set exactly one of table/figure/sweep", path, i)
		}
	}
	if frames == 0 {
		frames = mf.Frames
	}
	if parallel == 0 {
		parallel = mf.Parallel
	}
	pool := newPool(parallel, progress)
	return pool, runBatch(ctx, pool, mf.Experiments, frames)
}

// runBatch executes the experiment list on the pool — one farm job per
// experiment, each internally serial — and prints the rendered outputs
// in manifest order once all complete.
func runBatch(ctx context.Context, pool *farm.Pool, exps []experiment, frames int) error {
	jobs := make([]farm.Job[string], len(exps))
	for i, e := range exps {
		e := e
		jobs[i] = farm.Job[string]{
			Label: e.label(),
			Run: func(ctx context.Context, env farm.Env) (string, error) {
				return renderExperiment(ctx, farm.Serial(), e, frames)
			},
		}
	}
	outputs, err := farm.Run(ctx, pool, jobs)
	if err != nil {
		return err
	}
	for _, out := range outputs {
		fmt.Print(out)
	}
	return nil
}

// printExperiment runs one experiment with its internal fan-out on the
// pool and prints it.
func printExperiment(ctx context.Context, pool *farm.Pool, e experiment, frames int) error {
	out, err := renderExperiment(ctx, pool, e, frames)
	if err != nil {
		return err
	}
	fmt.Print(out)
	return nil
}

// renderExperiment produces the text of one experiment, running its
// internal fan-out (resolutions, sizes, configurations) on the pool.
func renderExperiment(ctx context.Context, pool *farm.Pool, e experiment, frames int) (string, error) {
	switch {
	case e.Table != 0:
		return renderTable(ctx, pool, e.Table, frames)
	case e.Figure != 0:
		return renderFigure(ctx, pool, e.Figure, frames)
	case e.Sweep != "":
		return renderSweep(ctx, pool, e.Sweep, frames)
	}
	return "", fmt.Errorf("empty experiment")
}

func renderTable(ctx context.Context, pool *farm.Pool, n, frames int) (string, error) {
	switch n {
	case 1:
		return harness.Table1() + "\n", nil
	case 8:
		tab, err := harness.Table8Pool(ctx, pool, frames)
		if err != nil {
			return "", err
		}
		return tab.String() + "\n", nil
	default:
		spec, err := harness.TableSpecByNum(n)
		if err != nil {
			return "", err
		}
		tab, _, err := harness.RunTablePool(ctx, pool, spec, frames)
		if err != nil {
			return "", err
		}
		return tab.String() + "\n", nil
	}
}

func renderFigure(ctx context.Context, pool *farm.Pool, n, frames int) (string, error) {
	var sb strings.Builder
	switch n {
	case 2:
		series, err := harness.Figure2Pool(ctx, pool, frames)
		if err != nil {
			return "", err
		}
		for _, s := range series {
			s.Write(&sb)
			sb.WriteString("\n")
		}
		return sb.String(), nil
	case 3, 4:
		points, err := harness.RunObjectSweepPool(ctx, pool, frames)
		if err != nil {
			return "", err
		}
		series := harness.Figure3Series(points)
		if n == 4 {
			series = harness.Figure4Series(points)
		}
		for _, s := range series {
			s.Write(&sb)
			sb.WriteString("\n")
		}
		return sb.String(), nil
	default:
		return "", fmt.Errorf("no figure %d (the paper's data figures are 2-4)", n)
	}
}

// renderSweep runs the extension experiments: the paper's future-work
// processor/memory ratio study and the design-choice ablations.
func renderSweep(ctx context.Context, pool *farm.Pool, name string, frames int) (string, error) {
	wl := harness.Workload{W: 352, H: 288, Frames: frames}
	switch name {
	case "geometry":
		var points []harness.GeometryPoint
		var err error
		title := "cache geometry sweep (encode, one trace replayed per config)"
		if harness.ReplayEnabled() {
			points, err = harness.RunGeometrySweepPool(ctx, pool, wl, nil, nil)
		} else {
			title = "cache geometry sweep (encode, re-encoded live per config)"
			points, err = harness.RunGeometrySweepLive(ctx, pool, wl, nil, nil)
		}
		if err != nil {
			return "", err
		}
		var sb strings.Builder
		sb.WriteString(harness.FormatGeometrySweep(title, points))
		sb.WriteString("\n")
		for _, s := range harness.GeometrySweepSeries(points) {
			s.Write(&sb)
			sb.WriteString("\n")
		}
		return sb.String(), nil
	case "ratio":
		points, err := harness.RunRatioSweepPool(ctx, pool, wl, nil)
		if err != nil {
			return "", err
		}
		var sb strings.Builder
		for _, s := range harness.RatioSweepSeries(points) {
			s.Write(&sb)
			sb.WriteString("\n")
		}
		if c := harness.MemoryBoundCrossover(points); c > 0 {
			fmt.Fprintf(&sb, "decode becomes memory bound (>=50%% DRAM stall) at %gx the baseline DRAM latency\n", c)
		} else {
			sb.WriteString("decode never becomes memory bound within the sweep\n")
		}
		return sb.String(), nil
	case "search":
		res, err := harness.RunSearchAblationPool(ctx, pool, wl)
		if err != nil {
			return "", err
		}
		return harness.FormatAblation("motion search ablation (encode, R12K 1MB)", res), nil
	case "prefetch":
		res, err := harness.RunPrefetchAblationPool(ctx, pool, wl, nil)
		if err != nil {
			return "", err
		}
		return harness.FormatAblation("prefetch cadence ablation (encode, R12K 1MB)", res), nil
	case "staging":
		res, err := harness.RunStagingAblationPool(ctx, pool, wl)
		if err != nil {
			return "", err
		}
		return harness.FormatAblation("per-VOP staging ablation (encode, R12K 1MB)", res), nil
	case "coloring":
		wl.Objects = 2
		res, err := harness.RunColoringAblationPool(ctx, pool, wl)
		if err != nil {
			return "", err
		}
		return harness.FormatAblation("page coloring ablation (encode, R12K 1MB)", res), nil
	default:
		return "", fmt.Errorf("unknown sweep %q", name)
	}
}

// profileFlushes holds the -cpuprofile/-memprofile finalizers. They
// run on normal exit (deferred in main) AND from fatal, so profiles of
// failing runs — the case profiling exists for — are still written.
var profileFlushes []func()

func addProfileFlush(f func()) { profileFlushes = append(profileFlushes, f) }

func flushProfiles() {
	for _, f := range profileFlushes {
		f()
	}
	profileFlushes = nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mp4study:", err)
	flushProfiles()
	os.Exit(1)
}
