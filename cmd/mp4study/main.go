// Command mp4study regenerates the measurement tables and figures of
// "An MPEG-4 Performance Study for non-SIMD, General Purpose
// Architectures" (McKee, Fang, Valero — ISPASS 2003) on the simulated
// SGI platforms.
//
// Usage:
//
//	mp4study -all                 # every table and figure
//	mp4study -all -parallel 8     # same, on 8 farm workers
//	mp4study -table 3             # one table (1–8)
//	mp4study -figure 2            # one figure (2–4)
//	mp4study -frames 12           # longer sequences (slower, same rates)
//	mp4study -manifest jobs.json  # batch-manifest mode (see below)
//	mp4study -progress ...        # job completions to stderr
//
// Experiments run on the internal/farm worker pool; -parallel sets the
// worker count (default GOMAXPROCS). Output is deterministic: the same
// bytes at every worker count, in the paper's layout.
//
// Batch-manifest mode runs an arbitrary experiment list concurrently
// and prints the outputs in manifest order. The manifest is JSON:
//
//	{
//	  "frames": 6,
//	  "parallel": 8,
//	  "experiments": [
//	    {"table": 2}, {"table": 8},
//	    {"figure": 3},
//	    {"sweep": "ratio"}, {"sweep": "coloring"}
//	  ]
//	}
//
// Flags override manifest settings when given explicitly.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/farm"
	"repro/internal/harness"
)

func main() {
	table := flag.Int("table", 0, "regenerate one table (1-8)")
	figure := flag.Int("figure", 0, "regenerate one figure (2-4)")
	all := flag.Bool("all", false, "regenerate every table and figure")
	frames := flag.Int("frames", 0, "sequence length in frames (0 = default)")
	sweep := flag.String("sweep", "", "extra experiment: ratio | search | prefetch | staging | coloring")
	manifest := flag.String("manifest", "", "batch-manifest file (JSON); runs its experiment list")
	parallel := flag.Int("parallel", 0, "farm worker count (0 = GOMAXPROCS)")
	progress := flag.Bool("progress", false, "report job completions to stderr")
	flag.Parse()

	modes := 0
	for _, set := range []bool{*all, *table != 0, *figure != 0, *sweep != "", *manifest != ""} {
		if set {
			modes++
		}
	}
	if modes == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if modes > 1 {
		fatal(fmt.Errorf("choose exactly one of -all, -table, -figure, -sweep, -manifest"))
	}

	start := time.Now()
	ctx := context.Background()
	pool := newPool(*parallel, *progress)

	switch {
	case *manifest != "":
		var err error
		if pool, err = runManifest(ctx, *manifest, *frames, *parallel, *progress); err != nil {
			fatal(err)
		}
	case *all:
		if err := runAll(ctx, pool, *frames); err != nil {
			fatal(err)
		}
	case *table != 0:
		if err := printExperiment(ctx, pool, experiment{Table: *table}, *frames); err != nil {
			fatal(err)
		}
	case *figure != 0:
		if err := printExperiment(ctx, pool, experiment{Figure: *figure}, *frames); err != nil {
			fatal(err)
		}
	case *sweep != "":
		if err := printExperiment(ctx, pool, experiment{Sweep: *sweep}, *frames); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "total time: %v (%d workers)\n",
		time.Since(start).Round(time.Millisecond), pool.Workers())
}

// runAll regenerates every table and figure in paper order. Tables 2–7
// fan out through harness.RunTables at (table, resolution) cell
// granularity — twelve concurrent simulations — and Table 8 and the
// figures fan out through their own pool paths, so -all saturates the
// pool instead of being bound by the slowest whole table.
func runAll(ctx context.Context, pool *farm.Pool, frames int) error {
	fmt.Print(harness.Table1() + "\n")
	tabs, err := harness.RunTables(ctx, pool, harness.TableSpecs(), frames)
	if err != nil {
		return err
	}
	for _, tab := range tabs {
		fmt.Print(tab.String() + "\n")
	}
	for _, e := range []experiment{{Table: 8}, {Figure: 2}, {Figure: 3}, {Figure: 4}} {
		if err := printExperiment(ctx, pool, e, frames); err != nil {
			return err
		}
	}
	return nil
}

func newPool(workers int, progress bool) *farm.Pool {
	cfg := farm.Config{Workers: workers}
	if progress {
		cfg.Progress = func(ev farm.Event) {
			status := "done"
			if ev.Err != nil {
				status = "FAIL: " + ev.Err.Error()
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %s %s\n", ev.Done, ev.Total, ev.Label, status)
		}
	}
	return farm.New(cfg)
}

// experiment is one schedulable unit of the study: a table, a figure,
// or an extension sweep. Exactly one field is set.
type experiment struct {
	Table  int    `json:"table,omitempty"`
	Figure int    `json:"figure,omitempty"`
	Sweep  string `json:"sweep,omitempty"`
}

func (e experiment) label() string {
	switch {
	case e.Table != 0:
		return fmt.Sprintf("table %d", e.Table)
	case e.Figure != 0:
		return fmt.Sprintf("figure %d", e.Figure)
	default:
		return "sweep " + e.Sweep
	}
}

// manifestFile is the batch-manifest schema.
type manifestFile struct {
	Frames      int          `json:"frames"`
	Parallel    int          `json:"parallel"`
	Experiments []experiment `json:"experiments"`
}

// runManifest executes a manifest and returns the pool it actually ran
// on (the manifest's "parallel" applies when the -parallel flag is 0).
func runManifest(ctx context.Context, path string, frames, parallel int, progress bool) (*farm.Pool, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var mf manifestFile
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&mf); err != nil {
		return nil, fmt.Errorf("manifest %s: %w", path, err)
	}
	if len(mf.Experiments) == 0 {
		return nil, fmt.Errorf("manifest %s: no experiments", path)
	}
	for i, e := range mf.Experiments {
		set := 0
		if e.Table != 0 {
			set++
		}
		if e.Figure != 0 {
			set++
		}
		if e.Sweep != "" {
			set++
		}
		if set != 1 {
			return nil, fmt.Errorf("manifest %s: experiment %d must set exactly one of table/figure/sweep", path, i)
		}
	}
	if frames == 0 {
		frames = mf.Frames
	}
	if parallel == 0 {
		parallel = mf.Parallel
	}
	pool := newPool(parallel, progress)
	return pool, runBatch(ctx, pool, mf.Experiments, frames)
}

// runBatch executes the experiment list on the pool — one farm job per
// experiment, each internally serial — and prints the rendered outputs
// in manifest order once all complete.
func runBatch(ctx context.Context, pool *farm.Pool, exps []experiment, frames int) error {
	jobs := make([]farm.Job[string], len(exps))
	for i, e := range exps {
		e := e
		jobs[i] = farm.Job[string]{
			Label: e.label(),
			Run: func(ctx context.Context, env farm.Env) (string, error) {
				return renderExperiment(ctx, farm.Serial(), e, frames)
			},
		}
	}
	outputs, err := farm.Run(ctx, pool, jobs)
	if err != nil {
		return err
	}
	for _, out := range outputs {
		fmt.Print(out)
	}
	return nil
}

// printExperiment runs one experiment with its internal fan-out on the
// pool and prints it.
func printExperiment(ctx context.Context, pool *farm.Pool, e experiment, frames int) error {
	out, err := renderExperiment(ctx, pool, e, frames)
	if err != nil {
		return err
	}
	fmt.Print(out)
	return nil
}

// renderExperiment produces the text of one experiment, running its
// internal fan-out (resolutions, sizes, configurations) on the pool.
func renderExperiment(ctx context.Context, pool *farm.Pool, e experiment, frames int) (string, error) {
	switch {
	case e.Table != 0:
		return renderTable(ctx, pool, e.Table, frames)
	case e.Figure != 0:
		return renderFigure(ctx, pool, e.Figure, frames)
	case e.Sweep != "":
		return renderSweep(ctx, pool, e.Sweep, frames)
	}
	return "", fmt.Errorf("empty experiment")
}

func renderTable(ctx context.Context, pool *farm.Pool, n, frames int) (string, error) {
	switch n {
	case 1:
		return harness.Table1() + "\n", nil
	case 8:
		tab, err := harness.Table8Pool(ctx, pool, frames)
		if err != nil {
			return "", err
		}
		return tab.String() + "\n", nil
	default:
		spec, err := harness.TableSpecByNum(n)
		if err != nil {
			return "", err
		}
		tab, _, err := harness.RunTablePool(ctx, pool, spec, frames)
		if err != nil {
			return "", err
		}
		return tab.String() + "\n", nil
	}
}

func renderFigure(ctx context.Context, pool *farm.Pool, n, frames int) (string, error) {
	var sb strings.Builder
	switch n {
	case 2:
		series, err := harness.Figure2Pool(ctx, pool, frames)
		if err != nil {
			return "", err
		}
		for _, s := range series {
			s.Write(&sb)
			sb.WriteString("\n")
		}
		return sb.String(), nil
	case 3, 4:
		points, err := harness.RunObjectSweepPool(ctx, pool, frames)
		if err != nil {
			return "", err
		}
		series := harness.Figure3Series(points)
		if n == 4 {
			series = harness.Figure4Series(points)
		}
		for _, s := range series {
			s.Write(&sb)
			sb.WriteString("\n")
		}
		return sb.String(), nil
	default:
		return "", fmt.Errorf("no figure %d (the paper's data figures are 2-4)", n)
	}
}

// renderSweep runs the extension experiments: the paper's future-work
// processor/memory ratio study and the design-choice ablations.
func renderSweep(ctx context.Context, pool *farm.Pool, name string, frames int) (string, error) {
	wl := harness.Workload{W: 352, H: 288, Frames: frames}
	switch name {
	case "ratio":
		points, err := harness.RunRatioSweepPool(ctx, pool, wl, nil)
		if err != nil {
			return "", err
		}
		var sb strings.Builder
		for _, s := range harness.RatioSweepSeries(points) {
			s.Write(&sb)
			sb.WriteString("\n")
		}
		if c := harness.MemoryBoundCrossover(points); c > 0 {
			fmt.Fprintf(&sb, "decode becomes memory bound (>=50%% DRAM stall) at %gx the baseline DRAM latency\n", c)
		} else {
			sb.WriteString("decode never becomes memory bound within the sweep\n")
		}
		return sb.String(), nil
	case "search":
		res, err := harness.RunSearchAblationPool(ctx, pool, wl)
		if err != nil {
			return "", err
		}
		return harness.FormatAblation("motion search ablation (encode, R12K 1MB)", res), nil
	case "prefetch":
		res, err := harness.RunPrefetchAblationPool(ctx, pool, wl, nil)
		if err != nil {
			return "", err
		}
		return harness.FormatAblation("prefetch cadence ablation (encode, R12K 1MB)", res), nil
	case "staging":
		res, err := harness.RunStagingAblationPool(ctx, pool, wl)
		if err != nil {
			return "", err
		}
		return harness.FormatAblation("per-VOP staging ablation (encode, R12K 1MB)", res), nil
	case "coloring":
		wl.Objects = 2
		res, err := harness.RunColoringAblationPool(ctx, pool, wl)
		if err != nil {
			return "", err
		}
		return harness.FormatAblation("page coloring ablation (encode, R12K 1MB)", res), nil
	default:
		return "", fmt.Errorf("unknown sweep %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mp4study:", err)
	os.Exit(1)
}
