// Command mp4study regenerates the measurement tables and figures of
// "An MPEG-4 Performance Study for non-SIMD, General Purpose
// Architectures" (McKee, Fang, Valero — ISPASS 2003) on the simulated
// SGI platforms.
//
// Usage:
//
//	mp4study -all                 # every table and figure
//	mp4study -table 3             # one table (1–8)
//	mp4study -figure 2            # one figure (2–4)
//	mp4study -frames 12           # longer sequences (slower, same rates)
//
// Output is plain text in the paper's layout.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/harness"
)

func main() {
	table := flag.Int("table", 0, "regenerate one table (1-8)")
	figure := flag.Int("figure", 0, "regenerate one figure (2-4)")
	all := flag.Bool("all", false, "regenerate every table and figure")
	frames := flag.Int("frames", 0, "sequence length in frames (0 = default)")
	sweep := flag.String("sweep", "", "extra experiment: ratio | search | prefetch | staging | coloring")
	flag.Parse()

	if !*all && *table == 0 && *figure == 0 && *sweep == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *sweep != "" {
		if err := runSweep(*sweep, *frames); err != nil {
			fatal(err)
		}
		return
	}

	start := time.Now()
	if *all {
		for n := 1; n <= 8; n++ {
			if err := runTable(n, *frames); err != nil {
				fatal(err)
			}
		}
		for n := 2; n <= 4; n++ {
			if err := runFigure(n, *frames); err != nil {
				fatal(err)
			}
		}
	} else if *table != 0 {
		if err := runTable(*table, *frames); err != nil {
			fatal(err)
		}
	} else if *figure != 0 {
		if err := runFigure(*figure, *frames); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "total time: %v\n", time.Since(start).Round(time.Millisecond))
}

func runTable(n, frames int) error {
	switch n {
	case 1:
		fmt.Println(harness.Table1())
		return nil
	case 8:
		tab, err := harness.Table8(frames)
		if err != nil {
			return err
		}
		fmt.Println(tab.String())
		return nil
	default:
		spec, err := harness.TableSpecByNum(n)
		if err != nil {
			return err
		}
		tab, _, err := harness.RunTable(spec, frames)
		if err != nil {
			return err
		}
		fmt.Println(tab.String())
		return nil
	}
}

func runFigure(n, frames int) error {
	switch n {
	case 2:
		series, err := harness.Figure2(frames)
		if err != nil {
			return err
		}
		for _, s := range series {
			s.Write(os.Stdout)
			fmt.Println()
		}
		return nil
	case 3, 4:
		points, err := harness.RunObjectSweep(frames)
		if err != nil {
			return err
		}
		if n == 3 {
			for _, s := range harness.Figure3Series(points) {
				s.Write(os.Stdout)
				fmt.Println()
			}
		} else {
			for _, s := range harness.Figure4Series(points) {
				s.Write(os.Stdout)
				fmt.Println()
			}
		}
		return nil
	default:
		return fmt.Errorf("no figure %d (the paper's data figures are 2-4)", n)
	}
}

// runSweep runs the extension experiments: the paper's future-work
// processor/memory ratio study and the design-choice ablations.
func runSweep(name string, frames int) error {
	wl := harness.Workload{W: 352, H: 288, Frames: frames}
	switch name {
	case "ratio":
		points, err := harness.RunRatioSweep(wl, nil)
		if err != nil {
			return err
		}
		for _, s := range harness.RatioSweepSeries(points) {
			s.Write(os.Stdout)
			fmt.Println()
		}
		if c := harness.MemoryBoundCrossover(points); c > 0 {
			fmt.Printf("decode becomes memory bound (>=50%% DRAM stall) at %gx the baseline DRAM latency\n", c)
		} else {
			fmt.Println("decode never becomes memory bound within the sweep")
		}
		return nil
	case "search":
		res, err := harness.RunSearchAblation(wl)
		if err != nil {
			return err
		}
		fmt.Print(harness.FormatAblation("motion search ablation (encode, R12K 1MB)", res))
		return nil
	case "prefetch":
		res, err := harness.RunPrefetchAblation(wl, nil)
		if err != nil {
			return err
		}
		fmt.Print(harness.FormatAblation("prefetch cadence ablation (encode, R12K 1MB)", res))
		return nil
	case "staging":
		res, err := harness.RunStagingAblation(wl)
		if err != nil {
			return err
		}
		fmt.Print(harness.FormatAblation("per-VOP staging ablation (encode, R12K 1MB)", res))
		return nil
	case "coloring":
		wl.Objects = 2
		res, err := harness.RunColoringAblation(wl)
		if err != nil {
			return err
		}
		fmt.Print(harness.FormatAblation("page coloring ablation (encode, R12K 1MB)", res))
		return nil
	default:
		return fmt.Errorf("unknown sweep %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mp4study:", err)
	os.Exit(1)
}
