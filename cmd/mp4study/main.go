// Command mp4study regenerates the measurement tables and figures of
// "An MPEG-4 Performance Study for non-SIMD, General Purpose
// Architectures" (McKee, Fang, Valero — ISPASS 2003) on the simulated
// SGI platforms.
//
// Usage:
//
//	mp4study -all                 # every table and figure
//	mp4study -all -parallel 8     # same, on 8 farm workers
//	mp4study -table 3             # one table (1–8)
//	mp4study -figure 2            # one figure (2–4)
//	mp4study -frames 12           # longer sequences (slower, same rates)
//	mp4study -manifest jobs.json  # batch-manifest mode (see below)
//	mp4study -manifest jobs.json -service http://svc:8374          # run on mp4served
//	mp4study -manifest jobs.json -service http://svc:8374 -follow  # ... streaming SSE
//	mp4study -manifest jobs.json -service ... -priority interactive
//	mp4study -manifest jobs.json -service ... -auth-token secret
//	mp4study -progress ...        # job completions to stderr
//	mp4study -replay=false ...    # legacy live simulation (no captures)
//	mp4study -sweep geometry      # encode once, replay every cache geometry
//	mp4study -sweep geometry -trace-out enc.m4tr   # ... and keep the capture
//	mp4study -sweep geometry -trace-in enc.m4tr    # sweep a shipped capture
//	mp4study -sweep geometry -workers http://a:8375,http://b:8375
//	                              # ... sharded across an mp4worker fleet
//	mp4study -sweep policy        # encode once, replay every replacement policy
//	mp4study -sweep policy -policy lru,fifo        # ... a chosen subset
//	mp4study -sweep geometry -policy plru          # geometry sweep under PLRU
//	mp4study -sweep geometry -memo-dir ~/.mp4memo  # persist the result memo:
//	                              # a repeated sweep replays nothing
//	mp4study -no-memo ...         # disable result memoization entirely
//	mp4study -cpuprofile p.out    # write pprof profiles
//	mp4study -metrics-out m.json  # dump the metrics registry after the run
//	mp4study -log-level info      # structured-log threshold (default warn)
//
// Experiments run on the internal/farm worker pool; -parallel sets the
// worker count (default GOMAXPROCS). Output is deterministic: the same
// bytes at every worker count, in the paper's layout.
//
// Multi-machine simulations use trace capture and replay by default:
// each workload's reference stream is captured once (for the paper's
// same-L1 machines, filtered down to the L2-bound stream) and every
// machine or cache geometry is simulated by replaying the capture —
// counter-identical to live simulation, without re-running the codec.
// Whenever any capture/replay traffic occurred, a summary of capture
// sizes and replay counts is printed to stderr — including under
// -replay=false, because the geometry sweep is a replay experiment by
// nature (its point is simulating every configuration from one
// capture; -replay=false only switches it to the re-encode baseline,
// and -trace-in/-trace-out always go through captures).
//
// -trace-out writes the geometry sweep's capture in the portable
// versioned wire format of internal/trace; -trace-in replays a
// previously written capture instead of encoding, so one machine can
// encode a workload and any number of machines (or mp4worker
// processes, see internal/dist) can sweep it.
//
// -sweep policy compares replacement policies (LRU, tree-PLRU, FIFO,
// seeded random, LRU+victim buffer) from one capture: the reference
// stream is recorded before any cache, so every policy replays the
// same bytes and the Stats deltas are attributable to the policy
// alone. -policy narrows (or, with -sweep geometry, applies) the
// policy axis; both sweeps compose with -trace-in/-trace-out and
// -workers. At the paper's 2-way geometry the plru row must equal the
// lru row exactly (a 2-way PLRU tree IS true LRU) — a built-in
// cross-check of the policy machinery.
//
// -workers runs the geometry or policy sweep on an mp4worker fleet: the
// coordinator encodes once, filters the capture per L1 configuration,
// ships each L1 row's small L2-bound trace to the workers, and merges
// the sharded results — identical output to the local sweep, with
// worker failures absorbed by the self-healing scheduler: transient
// errors retry under backoff, repeat offenders are breaker-dropped and
// their shards re-planned onto the survivors, and recovered workers
// are re-admitted mid-sweep by the health prober (see internal/dist).
// -max-attempts bounds the per-batch attempt budget and
// -fallback-local replays undelivered shards locally if the whole
// fleet is lost. A fleet summary (uploads, bytes shipped, failovers,
// retries, breaker trips, readmissions, memo hit rate) goes to stderr.
//
// Result memoization is on by default for the replay sweeps: every
// simulated (trace hash, L1, L2) grid cell's whole-run stats are
// memoized in-process, so repeating or extending a sweep within one
// invocation replays only unseen cells — with byte-identical output,
// because sweep points are a pure function of the memoized stats.
// -memo-dir persists the memo across invocations (entries are keyed by
// trace content hash and simulator code version, so stale entries are
// never served); -no-memo disables memoization entirely. Local and
// fleet sweeps share the same memo, and the capture/replay summary
// reports the hit rate whenever the memo was consulted.
//
// Batch-manifest mode runs an arbitrary experiment list concurrently
// and prints the outputs in manifest order. The manifest is JSON (the
// same schema the mp4served study service accepts):
//
//	{
//	  "frames": 6,
//	  "parallel": 8,
//	  "experiments": [
//	    {"table": 2}, {"table": 8},
//	    {"figure": 3},
//	    {"sweep": "ratio"}, {"sweep": "coloring"},
//	    {"sweep": "geometry", "l1": [{"size": 32768, "line": 32, "ways": 2}], "l2_kb": [512, 1024]}
//	  ]
//	}
//
// Flags override manifest settings when given explicitly. Every
// experiment — including cache geometries named in the manifest — is
// validated before anything runs.
//
// -service switches manifest mode from local simulation to the
// mp4served study service: the manifest is POSTed as a study spec
// (the schemas are identical) and the result printed — byte-identical
// to the local run. -follow consumes the study's Server-Sent Events
// stream instead of polling: per-shard fleet progress goes to stderr
// live, experiment outputs to stdout in manifest order, and a dropped
// connection resumes via Last-Event-ID without loss or duplication.
// 429 backpressure is waited out per the service's Retry-After header.
// See README "Study service".
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/dist"
	"repro/internal/farm"
	"repro/internal/harness"
	"repro/internal/memo"
	"repro/internal/obs"
	"repro/internal/simmem"
	"repro/internal/trace"
)

func main() {
	table := flag.Int("table", 0, "regenerate one table (1-8)")
	figure := flag.Int("figure", 0, "regenerate one figure (2-4)")
	all := flag.Bool("all", false, "regenerate every table and figure")
	frames := flag.Int("frames", 0, "sequence length in frames (0 = default)")
	sweep := flag.String("sweep", "", "extra experiment: "+strings.Join(harness.Sweeps, " | "))
	policy := flag.String("policy", "", "comma-separated replacement-policy axis (lru|plru|fifo|random|victim); with -sweep geometry or -sweep policy")
	manifest := flag.String("manifest", "", "batch-manifest file (JSON); runs its experiment list")
	serviceURL := flag.String("service", "", "with -manifest: POST the manifest to this mp4served base URL instead of simulating locally")
	follow := flag.Bool("follow", false, "with -service: stream the study's events (SSE) — shard progress to stderr, outputs to stdout as they complete")
	priority := flag.String("priority", "", "with -service: admission priority, interactive or batch (default batch)")
	authToken := flag.String("auth-token", "", "with -service: send Authorization: Bearer <token>")
	parallel := flag.Int("parallel", 0, "farm worker count (0 = GOMAXPROCS)")
	replayWorkers := flag.Int("replay-workers", 0, "cores per single-trace replay: chunk-speculative parallel replay (0 = GOMAXPROCS, 1 = serial)")
	progress := flag.Bool("progress", false, "report job completions to stderr")
	replay := flag.Bool("replay", true, "simulate machines by trace capture and replay (false = legacy live simulation)")
	traceOut := flag.String("trace-out", "", "with -sweep geometry: write the encode capture to this file (portable wire format)")
	traceIn := flag.String("trace-in", "", "with -sweep geometry: replay this capture file instead of encoding")
	workers := flag.String("workers", "", "with -sweep geometry: comma-separated mp4worker base URLs; shards the sweep across the fleet")
	memoDir := flag.String("memo-dir", "", "persist the result memo to this directory (repeated sweeps replay only unseen cells)")
	noMemo := flag.Bool("no-memo", false, "disable result memoization (default: in-memory memo)")
	maxAttempts := flag.Int("max-attempts", 0, "with -workers: per-shard-batch attempt budget, counting retries and failovers (0 = coordinator default)")
	fallbackLocal := flag.Bool("fallback-local", false, "with -workers: replay undelivered shards locally if the whole fleet is lost, instead of failing the sweep")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	metricsOut := flag.String("metrics-out", "", "write the metrics-registry snapshot (JSON) to this file on exit")
	logLevel := flag.String("log-level", "warn", "structured-log threshold: debug, info, warn, error")
	flag.Parse()
	lvl, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fatal(err)
	}
	obs.SetLogLevel(lvl)
	trace.SetReplayWorkers(*replayWorkers)
	replayFlagSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "replay" {
			replayFlagSet = true
		}
	})

	harness.SetReplayEnabled(*replay)
	if *noMemo && *memoDir != "" {
		fatal(fmt.Errorf("-no-memo and -memo-dir are mutually exclusive"))
	}
	if !*noMemo {
		mc, err := memo.New(memo.Config{Version: harness.CodeVersion, Dir: *memoDir})
		if err != nil {
			fatal(err)
		}
		harness.SetMemo(mc)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		addProfileFlush(func() {
			pprof.StopCPUProfile()
			f.Close()
		})
	}
	if *memprofile != "" {
		path := *memprofile
		addProfileFlush(func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mp4study: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "mp4study: memprofile:", err)
			}
		})
	}
	defer flushProfiles()

	modes := 0
	for _, set := range []bool{*all, *table != 0, *figure != 0, *sweep != "", *manifest != ""} {
		if set {
			modes++
		}
	}
	if modes == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if modes > 1 {
		fatal(fmt.Errorf("choose exactly one of -all, -table, -figure, -sweep, -manifest"))
	}
	replaySweep := *sweep == "geometry" || *sweep == "policy"
	if (*traceOut != "" || *traceIn != "") && !replaySweep {
		fatal(fmt.Errorf("-trace-out/-trace-in require -sweep geometry or -sweep policy"))
	}
	if *policy != "" && !replaySweep {
		fatal(fmt.Errorf("-policy requires -sweep geometry or -sweep policy"))
	}
	if *workers != "" {
		if !replaySweep {
			fatal(fmt.Errorf("-workers requires -sweep geometry or -sweep policy"))
		}
		if *traceOut != "" || *traceIn != "" {
			fatal(fmt.Errorf("-workers is incompatible with -trace-out/-trace-in (the coordinator captures and ships per-L1 filtered traces itself)"))
		}
	}
	if (*maxAttempts != 0 || *fallbackLocal) && *workers == "" {
		fatal(fmt.Errorf("-max-attempts/-fallback-local require -workers"))
	}
	if *serviceURL != "" && *manifest == "" {
		fatal(fmt.Errorf("-service requires -manifest (the manifest is the study spec)"))
	}
	if (*follow || *priority != "" || *authToken != "") && *serviceURL == "" {
		fatal(fmt.Errorf("-follow/-priority/-auth-token require -service"))
	}
	// The sweep spec carries the policy axis; validating it up front
	// turns a typo'd -policy into a flag error, not a mid-sweep one.
	sweepSpec := harness.ExperimentSpec{Sweep: *sweep, Policies: splitList(*policy)}
	if *sweep != "" {
		if err := sweepSpec.Validate(); err != nil {
			fatal(err)
		}
	}

	start := time.Now()
	ctx := context.Background()
	pool := newPool(*parallel, *progress)

	switch {
	case *serviceURL != "":
		if err := runServiceStudy(ctx, *serviceURL, *manifest, *frames, *priority, *authToken, *follow, replayFlagSet, *replay); err != nil {
			fatal(err)
		}
	case *manifest != "":
		var err error
		if pool, err = runManifest(ctx, *manifest, *frames, *parallel, *progress, replayFlagSet); err != nil {
			fatal(err)
		}
	case *all:
		if err := runAll(ctx, pool, *frames); err != nil {
			fatal(err)
		}
	case *table != 0:
		if err := printExperiment(ctx, pool, harness.ExperimentSpec{Table: *table}, *frames); err != nil {
			fatal(err)
		}
	case *figure != 0:
		if err := printExperiment(ctx, pool, harness.ExperimentSpec{Figure: *figure}, *frames); err != nil {
			fatal(err)
		}
	case replaySweep && *workers != "":
		if err := runGeometryFleet(ctx, *frames, *workers, *maxAttempts, *fallbackLocal, sweepSpec); err != nil {
			fatal(err)
		}
	case replaySweep && (*traceOut != "" || *traceIn != ""):
		if err := runGeometryTraceIO(ctx, pool, *frames, *traceIn, *traceOut, sweepSpec); err != nil {
			fatal(err)
		}
	case *sweep != "":
		if err := printExperiment(ctx, pool, sweepSpec, *frames); err != nil {
			fatal(err)
		}
	}
	reportTraceUsage()
	statusf("total time: %v (%d workers)\n",
		time.Since(start).Round(time.Millisecond), pool.Workers())
	if *metricsOut != "" {
		if err := writeMetricsSnapshot(*metricsOut); err != nil {
			fatal(err)
		}
		statusf("wrote metrics snapshot %s\n", *metricsOut)
	}
}

// reportTraceUsage summarises the capture/replay traffic of the run:
// how many reference streams were recorded, their memory cost, and how
// many machine/geometry simulations were served from them. It reports
// whenever the counters are nonzero, whatever the -replay flag said —
// the geometry sweep and the trace-file paths capture regardless.
func reportTraceUsage() {
	u := harness.TraceUsageSnapshot()
	if u.Zero() {
		return
	}
	statusf(
		"traces: %d full (%d records, %.1f MB), %d L1-filtered (%d events, %.1f MB); %d replays\n",
		u.Traces, u.TraceRecords, float64(u.TraceBytes)/(1<<20),
		u.L2Traces, u.L2Events, float64(u.L2Bytes)/(1<<20), u.Replays)
	if total := u.MemoHits + u.MemoMisses; total > 0 {
		statusf("memo: %d/%d cells served from the result memo (%.0f%% hit rate)\n",
			u.MemoHits, total, 100*float64(u.MemoHits)/float64(total))
	}
}

// splitList parses a comma-separated flag value, dropping empty
// entries.
func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

// runGeometryTraceIO is the portable-capture path of the geometry and
// policy sweeps: the capture comes from a trace file (-trace-in) or
// from one local encode, is optionally written out (-trace-out), and
// the sweep replays it — a full capture is policy-agnostic, so one
// shipped file answers every policy. The sweep output is identical to
// the same sweep without the flags.
func runGeometryTraceIO(ctx context.Context, pool *farm.Pool, frames int, traceIn, traceOut string, spec harness.ExperimentSpec) error {
	var tr *trace.Trace
	if traceIn != "" {
		f, err := os.Open(traceIn)
		if err != nil {
			return err
		}
		tr, err = trace.ReadTrace(bufio.NewReader(f))
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", traceIn, err)
		}
		statusf("replaying capture %s: %s\n", traceIn, tr)
	} else {
		wl := harness.Workload{W: 352, H: 288, Frames: frames}
		capture, err := harness.RecordEncodeCtx(ctx, simmem.NewSpace(0), wl)
		if err != nil {
			return err
		}
		tr = capture.Enc
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		n, err := tr.WriteTo(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("%s: %w", traceOut, err)
		}
		statusf("wrote capture %s: %s as %.1f MB on the wire\n",
			traceOut, tr, float64(n)/(1<<20))
	}
	l1s, l2Sizes, err := spec.SweepAxes()
	if err != nil {
		return err
	}
	points, err := harness.RunGeometrySweepFromTrace(ctx, pool, tr, l1s, l2Sizes)
	if err != nil {
		return err
	}
	fmt.Print(harness.GeometrySweepReport(harness.SweepTitle(spec.Sweep, true), points))
	return nil
}

// runGeometryFleet is the distributed-fleet path of the geometry and
// policy sweeps: one mp4study process coordinates, the named mp4worker
// processes simulate (the policy axis rides inside each shard's L1
// config). The printed sweep is identical to the local one; the fleet
// accounting goes to stderr.
func runGeometryFleet(ctx context.Context, frames int, workers string, maxAttempts int, fallbackLocal bool, spec harness.ExperimentSpec) error {
	urls := splitList(workers)
	if len(urls) == 0 {
		return fmt.Errorf("-workers: no worker URLs")
	}
	coord := &dist.Coordinator{
		Workers:       urls,
		MaxAttempts:   maxAttempts,
		FallbackLocal: fallbackLocal,
		// The default study's memo (nil under -no-memo): memo-covered
		// cells dispatch nothing, replayed cells are memoized — so with
		// -memo-dir, a repeated fleet sweep moves zero bytes and replays
		// zero shards.
		Memo: harness.Memo(),
	}
	wl := harness.Workload{W: 352, H: 288, Frames: frames}
	l1s, l2Sizes, err := spec.SweepAxes()
	if err != nil {
		return err
	}
	points, stats, err := coord.GeometrySweepWithStats(ctx, wl, l1s, l2Sizes)
	if err != nil {
		return err
	}
	shipped := "full trace"
	if stats.L2Shipped {
		shipped = "L1-filtered traces"
	}
	statusf(
		"fleet: %d workers, %d uploads of %s (%.1f MB), %d replay calls, %d failovers, %d workers lost\n",
		len(urls), stats.Uploads, shipped, float64(stats.UploadBytes)/(1<<20),
		stats.Replays, stats.Failovers, stats.DeadWorkers)
	statusf(
		"fleet: %d retries, %d breaker trips, %d health probes, %d readmissions\n",
		stats.Retries, stats.BreakerTrips, stats.Probes, stats.Readmissions)
	if total := stats.MemoHits + stats.MemoMisses; total > 0 {
		statusf("fleet: memo %d/%d cells served (%.0f%% hit rate)\n",
			stats.MemoHits, total, 100*float64(stats.MemoHits)/float64(total))
	}
	if stats.FallbackShards > 0 {
		statusf("fleet: %d shards replayed through the local fallback\n", stats.FallbackShards)
	}
	for _, f := range stats.WorkerFailures {
		statusf("fleet: lost %s\n", f)
	}
	fmt.Print(harness.GeometrySweepReport(harness.SweepTitle(spec.Sweep, true), points))
	return nil
}

// runAll regenerates every table and figure in paper order. Tables 2–7
// fan out through harness.RunTables at workload granularity (encode and
// decode tables of the same configuration share one capture), Table 8
// and Figure 2 fan out through their own pool paths, and Figures 3 and
// 4 — two views of one object/layer sweep — share a single sweep run.
func runAll(ctx context.Context, pool *farm.Pool, frames int) error {
	fmt.Print(harness.Table1() + "\n")
	tabs, err := harness.RunTables(ctx, pool, harness.TableSpecs(), frames)
	if err != nil {
		return err
	}
	for _, tab := range tabs {
		fmt.Print(tab.String() + "\n")
	}
	for _, e := range []harness.ExperimentSpec{{Table: 8}, {Figure: 2}} {
		if err := printExperiment(ctx, pool, e, frames); err != nil {
			return err
		}
	}
	points, err := harness.RunObjectSweepPool(ctx, pool, frames)
	if err != nil {
		return err
	}
	var sb strings.Builder
	for _, s := range harness.Figure3Series(points) {
		s.Write(&sb)
		sb.WriteString("\n")
	}
	for _, s := range harness.Figure4Series(points) {
		s.Write(&sb)
		sb.WriteString("\n")
	}
	fmt.Print(sb.String())
	return nil
}

func newPool(workers int, progress bool) *farm.Pool {
	cfg := farm.Config{Workers: workers}
	if progress {
		cfg.Progress = func(ev farm.Event) {
			status := "done"
			if ev.Err != nil {
				status = "FAIL: " + ev.Err.Error()
			}
			statusf("[%d/%d] %s %s\n", ev.Done, ev.Total, ev.Label, status)
		}
	}
	return farm.New(cfg)
}

// manifestFile is the batch-manifest schema — a superset of what the
// mp4served study service accepts, so manifests can be POSTed to the
// service unchanged.
type manifestFile struct {
	Frames      int                      `json:"frames"`
	Parallel    int                      `json:"parallel"`
	Replay      *bool                    `json:"replay,omitempty"`
	Experiments []harness.ExperimentSpec `json:"experiments"`
	// Priority is the service admission priority (interactive|batch);
	// local manifest mode ignores it.
	Priority string `json:"priority,omitempty"`
}

// runManifest executes a manifest and returns the pool it actually ran
// on. Manifest settings apply only where the corresponding flag was
// not given explicitly (frames/parallel: flag nonzero wins; replay:
// detected via flag.Visit), per the "flags override manifest" rule.
func runManifest(ctx context.Context, path string, frames, parallel int, progress, replayFlagSet bool) (*farm.Pool, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var mf manifestFile
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&mf); err != nil {
		return nil, fmt.Errorf("manifest %s: %w", path, err)
	}
	if len(mf.Experiments) == 0 {
		return nil, fmt.Errorf("manifest %s: no experiments", path)
	}
	for i, e := range mf.Experiments {
		if err := e.Validate(); err != nil {
			return nil, fmt.Errorf("manifest %s: experiment %d: %w", path, i, err)
		}
	}
	if mf.Replay != nil && !replayFlagSet {
		harness.SetReplayEnabled(*mf.Replay)
	}
	if frames == 0 {
		frames = mf.Frames
	}
	if parallel == 0 {
		parallel = mf.Parallel
	}
	pool := newPool(parallel, progress)
	return pool, runBatch(ctx, pool, mf.Experiments, frames)
}

// runBatch executes the experiment list on the pool — one farm job per
// experiment, each internally serial — and prints the rendered outputs
// in manifest order once all complete.
func runBatch(ctx context.Context, pool *farm.Pool, exps []harness.ExperimentSpec, frames int) error {
	jobs := make([]farm.Job[string], len(exps))
	for i, e := range exps {
		e := e
		jobs[i] = farm.Job[string]{
			Label: e.Label(),
			Run: func(ctx context.Context, env farm.Env) (string, error) {
				return harness.RenderExperiment(ctx, farm.Serial(), e, frames)
			},
		}
	}
	outputs, err := farm.Run(ctx, pool, jobs)
	if err != nil {
		return err
	}
	for _, out := range outputs {
		fmt.Print(out)
	}
	return nil
}

// printExperiment runs one experiment with its internal fan-out on the
// pool and prints it.
func printExperiment(ctx context.Context, pool *farm.Pool, e harness.ExperimentSpec, frames int) error {
	out, err := harness.RenderExperiment(ctx, pool, e, frames)
	if err != nil {
		return err
	}
	fmt.Print(out)
	return nil
}

// profileFlushes holds the -cpuprofile/-memprofile finalizers. They
// run on normal exit (deferred in main) AND from fatal, so profiles of
// failing runs — the case profiling exists for — are still written.
var profileFlushes []func()

func addProfileFlush(f func()) { profileFlushes = append(profileFlushes, f) }

func flushProfiles() {
	for _, f := range profileFlushes {
		f()
	}
	profileFlushes = nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mp4study:", err)
	flushProfiles()
	os.Exit(1)
}
