package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
)

// statusW is the single destination of mp4study's status stream: the
// -progress job completions, the capture/replay usage summary, the
// fleet accounting, the trace-file messages, and the total-time line.
// Everything that is commentary about the run — as opposed to the
// experiment output on stdout or a fatal error — goes through statusf,
// so tests (and embedders) can capture or silence the stream by
// swapping one writer instead of chasing scattered os.Stderr writes.
var statusW io.Writer = os.Stderr

// statusf writes one status message to the status stream.
func statusf(format string, args ...any) {
	fmt.Fprintf(statusW, format, args...)
}

// writeMetricsSnapshot dumps the process metrics registry as indented
// JSON to path — the -metrics-out flag, turning any mp4study run into
// an offline-inspectable metrics record (replay throughput, farm
// latencies, sweep sizes) without standing up a server.
func writeMetricsSnapshot(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = obs.Default().WriteJSON(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}
