package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestStatusWriterSeam checks that the status stream respects the
// statusW seam: swap the writer, and every status helper lands there
// instead of on os.Stderr.
func TestStatusWriterSeam(t *testing.T) {
	var sb strings.Builder
	old := statusW
	statusW = &sb
	defer func() { statusW = old }()

	statusf("total time: %v (%d workers)\n", "1s", 4)
	reportTraceUsage() // zero usage: must print nothing

	out := sb.String()
	if !strings.Contains(out, "total time: 1s (4 workers)") {
		t.Errorf("statusf did not reach the seam: %q", out)
	}
	if strings.Contains(out, "traces:") {
		t.Errorf("zero trace usage still reported: %q", out)
	}
}

// TestWriteMetricsSnapshot checks the -metrics-out implementation:
// the file is valid JSON in the obs snapshot schema and contains the
// process registry's metrics.
func TestWriteMetricsSnapshot(t *testing.T) {
	obs.Default().Counter("mp4study_test_marker_total").Inc()

	path := filepath.Join(t.TempDir(), "metrics.json")
	if err := writeMetricsSnapshot(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("snapshot file invalid: %v", err)
	}
	if snap.Counters["mp4study_test_marker_total"] == 0 {
		t.Error("snapshot missing registry contents")
	}
}
