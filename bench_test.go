// Package repro's top-level benchmarks regenerate every measurement
// artifact of the paper — one benchmark per table and figure. Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark executes the full experiment (workload generation,
// trace-driven simulation on the SGI machine models, metric derivation)
// per iteration and reports the headline metrics via b.ReportMetric, so
// regressions in either performance or modelled behaviour are visible.
// Use -v to print the regenerated tables themselves; cmd/mp4study prints
// them with full control over sequence length.
package repro

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/dist"
	"repro/internal/farm"
	"repro/internal/harness"
	"repro/internal/memo"
	"repro/internal/obs"
	"repro/internal/perf"
	"repro/internal/simmem"
	"repro/internal/trace"
)

// benchPool is the shared experiment-farm pool the benchmarks run on:
// GOMAXPROCS workers, the default for CPU-bound trace simulation.
var benchPool = farm.Default()

// benchFrames keeps benchmark runtime manageable; all reported metrics
// are rates, insensitive to sequence length (see DESIGN.md and
// TestRunLengthInvariance).
const benchFrames = 6

func benchTable(b *testing.B, num int) {
	spec, err := harness.TableSpecByNum(num)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		tab, results, err := harness.RunTablePool(context.Background(), benchPool, spec, benchFrames)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tab.String())
			// Headline metrics from the first column (720x576, R12K 1MB).
			m := results[0].Whole
			b.ReportMetric(m.L1MissRate*100, "L1miss%")
			b.ReportMetric(m.L2MissRate*100, "L2miss%")
			b.ReportMetric(m.DRAMTimeFrac*100, "DRAMstall%")
			b.ReportMetric(m.L2DRAMMBps, "L2DRAM_MB/s")
		}
	}
}

// BenchmarkTable1Platforms renders the platform-highlights table.
func BenchmarkTable1Platforms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := harness.Table1()
		if i == 0 {
			b.Log("\n" + out)
		}
	}
}

// BenchmarkTable2Encode1VO1L — video encoding, one VO, one layer.
func BenchmarkTable2Encode1VO1L(b *testing.B) { benchTable(b, 2) }

// BenchmarkTable3Decode1VO1L — video decoding, one VO, one layer.
func BenchmarkTable3Decode1VO1L(b *testing.B) { benchTable(b, 3) }

// BenchmarkTable4Encode3VO1L — encoding, three VOs, one layer each.
func BenchmarkTable4Encode3VO1L(b *testing.B) { benchTable(b, 4) }

// BenchmarkTable5Decode3VO1L — decoding, three VOs, one layer each.
func BenchmarkTable5Decode3VO1L(b *testing.B) { benchTable(b, 5) }

// BenchmarkTable6Encode3VO2L — encoding, three VOs, two layers each.
func BenchmarkTable6Encode3VO2L(b *testing.B) { benchTable(b, 6) }

// BenchmarkTable7Decode3VO2L — decoding, three VOs, two layers each.
func BenchmarkTable7Decode3VO2L(b *testing.B) { benchTable(b, 7) }

// BenchmarkTable8Burstiness — per-phase (VopEncode/VopDecode) counters
// against the whole program on the R12K/8MB machine.
func BenchmarkTable8Burstiness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := harness.Table8Pool(context.Background(), benchPool, benchFrames)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tab.String())
		}
	}
}

// BenchmarkFigure2SizeSweep — memory statistics for growing image size
// (decoding, 1MB L2): the paper's counterintuitive flat-to-improving
// curves.
func BenchmarkFigure2SizeSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := harness.Figure2Pool(context.Background(), benchPool, benchFrames)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, s := range series {
				b.Log("\n" + seriesString(s))
			}
			first, last := series[0].Y[0], series[0].Y[len(series[0].Y)-1]
			b.ReportMetric(first, "L2miss%smallest")
			b.ReportMetric(last, "L2miss%largest")
		}
	}
}

// BenchmarkFigure3L1Sweep — L1 miss rates for varying numbers of objects
// and layers (R10K/2MB).
func BenchmarkFigure3L1Sweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := harness.RunObjectSweepPool(context.Background(), benchPool, benchFrames)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, s := range harness.Figure3Series(points) {
				b.Log("\n" + seriesString(s))
			}
		}
	}
}

// BenchmarkFigure4L2Sweep — L2 miss rates for the same sweep.
func BenchmarkFigure4L2Sweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := harness.RunObjectSweepPool(context.Background(), benchPool, benchFrames)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, s := range harness.Figure4Series(points) {
				b.Log("\n" + seriesString(s))
			}
		}
	}
}

// BenchmarkEncodeThroughput measures raw (untraced) encoder speed at PAL
// size — the codec without the simulation harness.
func BenchmarkEncodeThroughput(b *testing.B) {
	wl := harness.Workload{W: 720, H: 576, Frames: 3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := harness.RunEncode([]perf.Machine{}, wl); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplaySweep is the record/replay payoff benchmark: an
// 18-configuration cache-geometry sweep (3 L1s × 6 L2 sizes) of one
// encode workload, run two ways. The "reencode" baseline re-runs the
// instrumented codec with an attached hierarchy for every configuration
// — the O(configs × encode) shape of classic harness sweeps. The
// "replay" variant encodes ONCE into a trace and simulates every
// configuration by replay (full-trace replay per L1, L1-filtered L2
// replay per L2 size). Both produce identical metrics (asserted by
// TestGeometrySweepMatchesLive); the speedup column of BENCH_pr2.json
// is their ns/op ratio.
func BenchmarkReplaySweep(b *testing.B) {
	wl := harness.Workload{W: 352, H: 288, Frames: benchFrames}
	nConfigs := len(harness.GeometryL1Configs()) * len(harness.GeometryL2Sizes())
	b.Run("reencode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			points, err := harness.RunGeometrySweepLive(context.Background(), benchPool, wl, nil, nil)
			if err != nil {
				b.Fatal(err)
			}
			if len(points) != nConfigs {
				b.Fatalf("got %d points", len(points))
			}
		}
		b.ReportMetric(float64(nConfigs), "configs")
	})
	b.Run("replay", func(b *testing.B) {
		var points []harness.GeometryPoint
		for i := 0; i < b.N; i++ {
			var err error
			points, err = harness.RunGeometrySweepPool(context.Background(), benchPool, wl, nil, nil)
			if err != nil {
				b.Fatal(err)
			}
			if len(points) != nConfigs {
				b.Fatalf("got %d points", len(points))
			}
		}
		b.ReportMetric(float64(nConfigs), "configs")
		b.Log("\n" + harness.FormatGeometrySweep("cache geometry sweep", points))
	})
}

// BenchmarkObsOverhead proves the obs instrumentation is free where it
// matters: the same 18-configuration replay sweep as
// BenchmarkReplaySweep/replay, run with instrumentation on (the
// default) and off (obs.SetEnabled(false)). The replay-loop hooks are
// per *call* — two time.Now reads and a handful of atomics per replay
// of millions of records — so both variants must sit within noise of
// each other and of BenchmarkReplaySweep/replay in BENCH_pr5.json
// (the acceptance bound is 2%).
func BenchmarkObsOverhead(b *testing.B) {
	wl := harness.Workload{W: 352, H: 288, Frames: benchFrames}
	nConfigs := len(harness.GeometryL1Configs()) * len(harness.GeometryL2Sizes())
	sweep := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			points, err := harness.RunGeometrySweepPool(context.Background(), benchPool, wl, nil, nil)
			if err != nil {
				b.Fatal(err)
			}
			if len(points) != nConfigs {
				b.Fatalf("got %d points", len(points))
			}
		}
		b.ReportMetric(float64(nConfigs), "configs")
	}
	b.Run("instrumented", func(b *testing.B) {
		before := obs.Default().Counter("trace_replay_l2_total").Value()
		sweep(b)
		if obs.Default().Counter("trace_replay_l2_total").Value() == before {
			b.Fatal("instrumented run recorded no replay metrics")
		}
	})
	b.Run("uninstrumented", func(b *testing.B) {
		obs.SetEnabled(false)
		defer obs.SetEnabled(true)
		sweep(b)
	})
}

// BenchmarkRecordEncode isolates the capture cost: encoding with a
// trace recorder attached versus the untraced encoder is the overhead a
// workload pays once to become replayable everywhere.
func BenchmarkRecordEncode(b *testing.B) {
	wl := harness.Workload{W: 352, H: 288, Frames: benchFrames}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, err := harness.RecordEncodeIn(simmem.NewSpace(0), wl)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(c.Enc.Records()), "records")
			b.ReportMetric(float64(c.Enc.SizeBytes())/(1<<20), "traceMB")
		}
	}
}

// BenchmarkReplayOnly measures a single machine simulation served from
// an existing capture — the marginal cost of "one more machine" in a
// sweep. The serial sub-benchmark pins one replay worker regardless of
// -cpu and is the regression guard against the pre-parallel replay
// path; parallel uses GOMAXPROCS workers, so running with
// -cpu 1,2,4,8 reports the chunk-speculative replay's scaling curve.
func BenchmarkReplayOnly(b *testing.B) {
	wl := harness.Workload{W: 352, H: 288, Frames: benchFrames}
	c, err := harness.RecordEncodeIn(simmem.NewSpace(0), wl)
	if err != nil {
		b.Fatal(err)
	}
	m := perf.O2R12K1MB()
	replay := func(b *testing.B, workers int) {
		trace.SetReplayWorkers(workers)
		defer trace.SetReplayWorkers(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res := harness.ReplayOn(m, c.Enc, c.SS.TotalBytes())
			if res.Whole.Raw.References() == 0 {
				b.Fatal("empty replay")
			}
		}
	}
	b.Run("serial", func(b *testing.B) { replay(b, 1) })
	b.Run("parallel", func(b *testing.B) { replay(b, runtime.GOMAXPROCS(0)) })
}

// BenchmarkMemoizedSweep quantifies the result memo: the full
// geometry-sweep grid replayed from one capture with no memo (the
// baseline), with a cold memo (every cell missed, replayed and
// recorded — the write overhead), and with a warm memo (every cell
// served from memoized stats, zero replays — the incremental-study
// payoff). All three produce byte-identical points; only the work
// differs.
func BenchmarkMemoizedSweep(b *testing.B) {
	wl := harness.Workload{W: 352, H: 288, Frames: benchFrames}
	capture, err := harness.RecordEncodeIn(simmem.NewSpace(0), wl)
	if err != nil {
		b.Fatal(err)
	}
	nConfigs := len(harness.GeometryL1Configs()) * len(harness.GeometryL2Sizes())
	sweep := func(b *testing.B, ctx context.Context) {
		points, err := harness.RunGeometrySweepFromTrace(ctx, benchPool, capture.Enc, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(points) != nConfigs {
			b.Fatalf("got %d points", len(points))
		}
	}
	b.Run("no-memo", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sweep(b, context.Background())
		}
		b.ReportMetric(float64(nConfigs), "configs")
	})
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mc, err := memo.New(memo.Config{Version: harness.CodeVersion})
			if err != nil {
				b.Fatal(err)
			}
			study := harness.NewStudy(true)
			study.SetMemo(mc)
			sweep(b, harness.WithStudy(context.Background(), study))
		}
		b.ReportMetric(float64(nConfigs), "configs")
	})
	b.Run("warm", func(b *testing.B) {
		mc, err := memo.New(memo.Config{Version: harness.CodeVersion})
		if err != nil {
			b.Fatal(err)
		}
		study := harness.NewStudy(true)
		study.SetMemo(mc)
		ctx := harness.WithStudy(context.Background(), study)
		sweep(b, ctx) // prime: every cell memoized
		study.ResetUsage()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sweep(b, ctx)
		}
		b.StopTimer()
		u := study.Usage()
		if u.MemoMisses != 0 || u.Replays != 0 {
			b.Fatalf("warm sweep replayed: %+v", u)
		}
		b.ReportMetric(float64(nConfigs), "configs")
		b.ReportMetric(100, "memoHit%")
	})
}

// BenchmarkTraceWire measures the portable trace format: encode and
// decode throughput of a real CIF capture (MB/s over wire bytes — the
// shipping cost of "encode once, simulate anywhere"), plus the
// wire-vs-memory compression ratio.
func BenchmarkTraceWire(b *testing.B) {
	wl := harness.Workload{W: 352, H: 288, Frames: benchFrames}
	capture, err := harness.RecordEncodeIn(simmem.NewSpace(0), wl)
	if err != nil {
		b.Fatal(err)
	}
	var wire bytes.Buffer
	if _, err := capture.Enc.WriteTo(&wire); err != nil {
		b.Fatal(err)
	}
	b.Run("encode", func(b *testing.B) {
		b.SetBytes(int64(wire.Len()))
		for i := 0; i < b.N; i++ {
			if _, err := capture.Enc.WriteTo(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(capture.Enc.SizeBytes())/float64(wire.Len()), "compression_x")
		b.ReportMetric(float64(wire.Len())/(1<<20), "wireMB")
	})
	b.Run("decode", func(b *testing.B) {
		b.SetBytes(int64(wire.Len()))
		for i := 0; i < b.N; i++ {
			dec, err := trace.ReadTrace(bytes.NewReader(wire.Bytes()))
			if err != nil {
				b.Fatal(err)
			}
			if dec.Records() != capture.Enc.Records() {
				b.Fatal("decode dropped records")
			}
		}
	})
}

// BenchmarkDistributedSweep compares the 18-configuration geometry
// sweep run locally against the same sweep sharded across two dist
// workers (in-process HTTP servers here; the protocol and serialization
// costs are real, the network is loopback). All variants run one
// encode; the distributed ones add trace serialization, upload and
// shard round-trips — the overhead a real fleet pays for the fan-out.
// The two distributed variants measure what is on the wire: the
// default ships one L1-filtered M4L2 trace per L1 row, the fulltrace
// baseline ships the whole M4TR capture to every worker. Their uploadMB
// metrics are the full-vs-L2 shipping ratio BENCH_pr4.json records.
func BenchmarkDistributedSweep(b *testing.B) {
	wl := harness.Workload{W: 352, H: 288, Frames: benchFrames}
	nConfigs := len(harness.GeometryL1Configs()) * len(harness.GeometryL2Sizes())
	b.Run("local", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			points, err := harness.RunGeometrySweepPool(context.Background(), benchPool, wl, nil, nil)
			if err != nil {
				b.Fatal(err)
			}
			if len(points) != nConfigs {
				b.Fatalf("got %d points", len(points))
			}
		}
		b.ReportMetric(float64(nConfigs), "configs")
	})
	distributed := func(shipFull bool) func(b *testing.B) {
		return func(b *testing.B) {
			var urls []string
			for i := 0; i < 2; i++ {
				srv := httptest.NewServer(dist.NewWorker(dist.WorkerConfig{}).Handler())
				defer srv.Close()
				urls = append(urls, srv.URL)
			}
			coord := &dist.Coordinator{Workers: urls, ShipFullTrace: shipFull}
			var stats dist.SweepStats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pts, st, err := coord.GeometrySweepWithStats(context.Background(), wl, nil, nil)
				if err != nil {
					b.Fatal(err)
				}
				if len(pts) != nConfigs {
					b.Fatalf("got %d points", len(pts))
				}
				stats = st
			}
			b.ReportMetric(float64(nConfigs), "configs")
			b.ReportMetric(float64(stats.UploadBytes)/(1<<20), "uploadMB")
			b.ReportMetric(float64(stats.Uploads), "uploads")
		}
	}
	b.Run("distributed-2workers", distributed(false))
	b.Run("distributed-2workers-fulltrace", distributed(true))
}

// BenchmarkFailoverOverhead prices the self-healing layer on the happy
// path: the same two-worker distributed sweep with the full resilient
// scheduler (classification, breakers, background health prober) vs
// the prober disabled. On a healthy fleet the two must be
// indistinguishable — the fault machinery may only cost when faults
// happen (retry backoff, probes of dead workers), never per shard.
func BenchmarkFailoverOverhead(b *testing.B) {
	wl := harness.Workload{W: 352, H: 288, Frames: benchFrames}
	nConfigs := len(harness.GeometryL1Configs()) * len(harness.GeometryL2Sizes())
	run := func(disableReadmission bool) func(b *testing.B) {
		return func(b *testing.B) {
			var urls []string
			for i := 0; i < 2; i++ {
				srv := httptest.NewServer(dist.NewWorker(dist.WorkerConfig{}).Handler())
				defer srv.Close()
				urls = append(urls, srv.URL)
			}
			coord := &dist.Coordinator{Workers: urls, DisableReadmission: disableReadmission}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pts, st, err := coord.GeometrySweepWithStats(context.Background(), wl, nil, nil)
				if err != nil {
					b.Fatal(err)
				}
				if len(pts) != nConfigs {
					b.Fatalf("got %d points", len(pts))
				}
				if st.Retries != 0 || st.DeadWorkers != 0 {
					b.Fatalf("healthy fleet hit the fault path: %+v", st)
				}
			}
			b.ReportMetric(float64(nConfigs), "configs")
		}
	}
	b.Run("resilient", run(false))
	b.Run("no-readmission", run(true))
}

// BenchmarkPolicySweep measures the replacement-policy axis: one
// capture, each policy's full row (L1 filter replay + 6 L2-size
// replays) per iteration. The lru sub-benchmark is the fast-path
// regression guard — it exercises exactly the pre-policy replay path,
// so its ns/op is directly comparable to BenchmarkReplaySweep/replay
// in BENCH_pr2.json (divided by that benchmark's three L1 rows). The
// reported l2miss% of the 1MB point shows the axis measuring real
// policy deltas from identical input bytes.
func BenchmarkPolicySweep(b *testing.B) {
	wl := harness.Workload{W: 352, H: 288, Frames: benchFrames}
	capture, err := harness.RecordEncodeIn(simmem.NewSpace(0), wl)
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range []cache.Policy{cache.PolicyLRU, cache.PolicyPLRU, cache.PolicyFIFO, cache.PolicyRandom, cache.PolicyVictim} {
		b.Run(string(p), func(b *testing.B) {
			l1s := harness.PolicyAxisConfigs([]cache.Policy{p})
			var points []harness.GeometryPoint
			for i := 0; i < b.N; i++ {
				points, err = harness.RunGeometrySweepFromTrace(context.Background(), benchPool, capture.Enc, l1s, nil)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(points)), "configs")
			for _, pt := range points {
				if pt.L2.SizeBytes == 1<<20 {
					b.ReportMetric(pt.Encode.L2MissRate*100, "l2miss%@1MB")
				}
			}
		})
	}
}

func seriesString(s perf.Series) string {
	var sb strings.Builder
	s.Write(&sb)
	return sb.String()
}

// BenchmarkFutureWorkRatioSweep runs the experiment the paper's
// conclusion proposes: scale the processor-to-memory speed ratio until
// MPEG-4 finally becomes memory bound, and report the crossover.
func BenchmarkFutureWorkRatioSweep(b *testing.B) {
	wl := harness.Workload{W: 352, H: 288, Frames: benchFrames}
	for i := 0; i < b.N; i++ {
		points, err := harness.RunRatioSweepPool(context.Background(), benchPool, wl, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, s := range harness.RatioSweepSeries(points) {
				b.Log("\n" + seriesString(s))
			}
			b.ReportMetric(harness.MemoryBoundCrossover(points), "crossover_x")
			b.ReportMetric(points[0].DecodeDRAM*100, "baselineDRAM%")
		}
	}
}

// BenchmarkAblationSearchAlgorithm compares exhaustive and diamond
// motion search: the locality the paper attributes to overlapping
// candidate windows comes with a large reference count.
func BenchmarkAblationSearchAlgorithm(b *testing.B) {
	wl := harness.Workload{W: 352, H: 288, Frames: benchFrames}
	for i := 0; i < b.N; i++ {
		results, err := harness.RunSearchAblationPool(context.Background(), benchPool, wl)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + harness.FormatAblation("motion search ablation (encode, R12K 1MB)", results))
		}
	}
}

// BenchmarkAblationPrefetch sweeps the modelled compiler-prefetch
// cadence (the paper: conservative prefetching is mostly wasted).
func BenchmarkAblationPrefetch(b *testing.B) {
	wl := harness.Workload{W: 352, H: 288, Frames: benchFrames}
	for i := 0; i < b.N; i++ {
		results, err := harness.RunPrefetchAblationPool(context.Background(), benchPool, wl, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + harness.FormatAblation("prefetch cadence ablation (encode, R12K 1MB)", results))
		}
	}
}

// BenchmarkAblationStaging isolates the MoMuSys-style per-VOP staging
// traffic — the design choice dominating L2-level behaviour (DESIGN.md).
func BenchmarkAblationStaging(b *testing.B) {
	wl := harness.Workload{W: 352, H: 288, Frames: benchFrames}
	for i := 0; i < b.N; i++ {
		results, err := harness.RunStagingAblationPool(context.Background(), benchPool, wl)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + harness.FormatAblation("per-VOP staging ablation (encode, R12K 1MB)", results))
		}
	}
}

// BenchmarkAblationPageColoring shows the allocator-coloring pathology:
// page-aligned planes make the masked-SAD kernel thrash the 2-way L1.
func BenchmarkAblationPageColoring(b *testing.B) {
	wl := harness.Workload{W: 352, H: 288, Frames: benchFrames, Objects: 2}
	for i := 0; i < b.N; i++ {
		results, err := harness.RunColoringAblationPool(context.Background(), benchPool, wl)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + harness.FormatAblation("page coloring ablation (encode, R12K 1MB)", results))
		}
	}
}

// BenchmarkFarmStudyScaling regenerates Tables 2–7 — twelve independent
// trace-driven simulations — through the experiment farm at increasing
// worker counts. The speedup from workers=1 to workers=N is the
// headline payoff of the farm; results are byte-identical at every
// point (asserted by the farm's determinism tests).
func BenchmarkFarmStudyScaling(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			p := farm.New(farm.Config{Workers: workers})
			for i := 0; i < b.N; i++ {
				tabs, err := harness.RunTables(context.Background(), p, harness.TableSpecs(), benchFrames)
				if err != nil {
					b.Fatal(err)
				}
				if len(tabs) != 6 {
					b.Fatalf("got %d tables", len(tabs))
				}
			}
		})
	}
}
