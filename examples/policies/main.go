// Example policies: one capture, every replacement policy.
//
// The paper's machines all use true LRU, but real second-level caches
// ship tree-PLRU, FIFO or random replacement, and some primaries hide
// conflict misses behind a small victim buffer. The demo records a CIF
// encode's reference stream ONCE — the capture happens before any
// cache, so it is a pure function of the workload — and then replays
// it through the paper's base hierarchy under each policy. Every
// difference between rows is attributable to the replacement policy
// alone, because every row simulated exactly the same bytes.
//
// Two built-in cross-checks make the output trustworthy: the plru row
// must equal the lru row exactly (a 2-way PLRU tree IS true LRU), and
// rerunning the program reproduces identical numbers (the random
// policy draws from a seeded, deterministic stream).
//
//	go run ./examples/policies
package main

import (
	"context"
	"fmt"
	"os"

	"repro/internal/cache"
	"repro/internal/harness"
	"repro/internal/simmem"
)

func main() {
	wl := harness.Workload{W: 352, H: 288, Frames: 4}
	capture, err := harness.RecordEncodeIn(simmem.NewSpace(0), wl)
	if err != nil {
		fmt.Fprintln(os.Stderr, "capture:", err)
		os.Exit(1)
	}
	fmt.Printf("captured %s encode once: %s\n\n", wl.Label(), capture.Enc)

	points, err := harness.RunGeometrySweepFromTrace(context.Background(), nil, capture.Enc,
		harness.PolicyAxisConfigs(nil), []int{1 << 20})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
	fmt.Print(harness.FormatGeometrySweep(
		"replacement policies at the paper's base geometry (L1 32KB/2-way, L2 1MB)", points))

	var lru, plru *cache.Stats
	for i := range points {
		switch points[i].L1.Policy {
		case cache.PolicyLRU:
			lru = &points[i].Encode.Raw
		case cache.PolicyPLRU:
			plru = &points[i].Encode.Raw
		}
	}
	if lru != nil && plru != nil && *lru == *plru {
		fmt.Println("\ncross-check: plru == lru exactly at 2-way geometry, as theory demands")
	} else {
		fmt.Println("\ncross-check FAILED: plru diverged from lru at 2-way geometry")
		os.Exit(1)
	}
}
