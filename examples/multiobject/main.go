// Multiobject: the paper's multi-VO workload — a background object and
// two arbitrary-shape foreground objects, each coded as its own video
// object with binary shape (CAE) and two scalable layers, then decoded
// and composed back into a scene.
//
//	go run ./examples/multiobject
package main

import (
	"fmt"
	"log"

	"repro/internal/codec"
	"repro/internal/scene"
	"repro/internal/simmem"
	"repro/internal/video"
)

func main() {
	const w, h, frames = 320, 240, 6

	space := simmem.NewSpace(0)
	synth := video.NewSynth(w, h, 7)

	// Three visual objects: index 0 is the full-frame background, 1 and 2
	// are moving ellipses with binary alpha masks.
	objects := [][]*video.Frame{
		synth.ObjectSequence(space, -1, frames),
		synth.ObjectSequence(space, 0, frames),
		synth.ObjectSequence(space, 1, frames),
	}

	obj := codec.DefaultConfig(w, h)
	obj.Shape = true // arbitrary-shape coding with the CAE shape coder
	cfg := codec.SessionConfig{Object: obj, Objects: 3, Layers: 2}

	ss, err := codec.EncodeSession(cfg, space, nil, nil, objects)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3 objects x 2 layers, %d frames: %d bytes total\n", frames, ss.TotalBytes())
	for o := range ss.Base {
		fmt.Printf("  object %d: base %6d B, enhancement %6d B\n", o, len(ss.Base[o]), len(ss.Enh[o]))
	}

	decoded, err := codec.DecodeSession(ss, simmem.NewSpace(0), nil, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Shape coding is lossless: verify each object's decoded support.
	for o := range decoded {
		for t := range decoded[o] {
			orig, got := objects[o][t].Alpha, decoded[o][t].Alpha
			for i := range orig.Pix {
				if orig.Pix[i] != got.Pix[i] {
					log.Fatalf("object %d frame %d: alpha mismatch", o, t)
				}
			}
		}
	}
	fmt.Println("binary shape decoded losslessly for all objects")

	// Recompose the scene (painter's order: background first) and
	// compare against the directly rendered scene.
	comp := scene.NewCompositor(nil)
	composed, err := comp.ComposeSequence(space, decoded)
	if err != nil {
		log.Fatal(err)
	}
	reference := synth.Sequence(space, frames)
	var psnr float64
	for t := range composed {
		psnr += video.PSNR(reference[t], composed[t])
	}
	fmt.Printf("recomposed scene vs direct render: mean luma PSNR %.1f dB over %d frames\n",
		psnr/float64(frames), frames)
}
