// Memprofile: run the instrumented codec against the paper's three SGI
// machine models and print the hardware-counter-style metrics — the
// core experiment of the paper in ~40 lines of API use.
//
//	go run ./examples/memprofile
package main

import (
	"fmt"
	"log"

	"repro/internal/harness"
	"repro/internal/perf"
)

func main() {
	machines := perf.PaperMachines()
	wl := harness.Workload{W: 352, H: 288, Frames: 6}

	encRes, ss, err := harness.RunEncode(machines, wl)
	if err != nil {
		log.Fatal(err)
	}
	decRes, err := harness.RunDecode(machines, wl, ss)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s, %d frames, %d coded bytes\n\n", wl.Label(), wl.Frames, ss.TotalBytes())
	fmt.Println("direction  machine    L1 miss  L1 reuse  L2 miss  DRAM stall  L2-DRAM MB/s  bus use")
	print := func(dir string, rs []harness.Result) {
		for _, r := range rs {
			m := r.Whole
			fmt.Printf("%-9s  %-9s  %6.3f%%  %8.0f  %6.2f%%  %9.1f%%  %12.1f  %6.2f%%\n",
				dir, r.Machine.Label(), m.L1MissRate*100, m.L1LineReuse,
				m.L2MissRate*100, m.DRAMTimeFrac*100, m.L2DRAMMBps, m.BusUtilization*100)
		}
	}
	print("encode", encRes)
	print("decode", decRes)

	fmt.Println("\nthe paper's conclusions, observable above:")
	fmt.Println(" - L1 hit rates are ~99.5%+ with line reuse in the hundreds (not streaming)")
	fmt.Println(" - DRAM stall time is a small fraction of execution (not latency bound)")
	fmt.Println(" - a few percent of sustained bus bandwidth is used (not bandwidth bound)")
	fmt.Println(" - larger L2 caches reduce L2 miss rate and DRAM time (working set captured)")
}
