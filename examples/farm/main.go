// Farm demo: sweep quantizer × resolution × machine model concurrently
// on the experiment-execution engine.
//
//	go run ./examples/farm            # GOMAXPROCS workers
//	go run ./examples/farm -parallel 2
//
// Every (QP, resolution, machine) cell is one farm Job: a traced encode
// of the same synthetic clip in an isolated simulated address space.
// Job completions stream to stderr via the pool's progress callback;
// the result table prints in sweep order (never completion order), and
// a final "fleet" row per machine aggregates the raw counters of all
// its runs with perf.MergeMetrics — the combined-workload view a
// sharded sweep reports.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/farm"
	"repro/internal/harness"
	"repro/internal/perf"
)

// cell is one point of the sweep.
type cell struct {
	qp      int
	res     [2]int
	machine perf.Machine
}

// measurement is the traced outcome of one cell.
type measurement struct {
	cell    cell
	metrics perf.Metrics
	bytes   int
}

func main() {
	parallel := flag.Int("parallel", 0, "farm worker count (0 = GOMAXPROCS)")
	frames := flag.Int("frames", 3, "frames per encode")
	flag.Parse()

	qps := []int{4, 8, 16}
	resolutions := [][2]int{{176, 144}, {352, 288}}
	machines := perf.PaperMachines()

	var cells []cell
	for _, qp := range qps {
		for _, res := range resolutions {
			for _, m := range machines {
				cells = append(cells, cell{qp: qp, res: res, machine: m})
			}
		}
	}

	pool := farm.New(farm.Config{
		Workers: *parallel,
		Progress: func(ev farm.Event) {
			status := "done"
			if ev.Err != nil {
				status = "FAIL: " + ev.Err.Error()
			}
			fmt.Fprintf(os.Stderr, "[%2d/%d] %-28s %s\n", ev.Done, ev.Total, ev.Label, status)
		},
	})

	start := time.Now()
	jobs := make([]farm.Job[measurement], len(cells))
	for i, c := range cells {
		c := c
		jobs[i] = farm.Job[measurement]{
			Label: fmt.Sprintf("qp%d/%dx%d/%s", c.qp, c.res[0], c.res[1], c.machine.Label()),
			Run: func(ctx context.Context, env farm.Env) (measurement, error) {
				wl := harness.Workload{W: c.res[0], H: c.res[1], Frames: *frames, QP: c.qp}
				results, ss, err := harness.RunEncodeIn(env.Space, []perf.Machine{c.machine}, wl)
				if err != nil {
					return measurement{}, err
				}
				return measurement{cell: c, metrics: results[0].Whole, bytes: ss.TotalBytes()}, nil
			},
		}
	}
	results, err := farm.Run(context.Background(), pool, jobs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("QP × resolution × machine encode sweep (%d cells, %d workers, %v)\n",
		len(results), pool.Workers(), time.Since(start).Round(time.Millisecond))
	fmt.Printf("  %4s %9s %-9s %9s %9s %10s %12s %10s\n",
		"qp", "size", "machine", "L1miss%", "L2miss%", "DRAM%", "L2DRAM MB/s", "bytes")
	for _, r := range results {
		fmt.Printf("  %4d %4dx%-4d %-9s %8.3f%% %8.2f%% %9.2f%% %12.1f %10d\n",
			r.cell.qp, r.cell.res[0], r.cell.res[1], r.cell.machine.Label(),
			r.metrics.L1MissRate*100, r.metrics.L2MissRate*100,
			r.metrics.DRAMTimeFrac*100, r.metrics.L2DRAMMBps, r.bytes)
	}

	// Fleet view: fold every run measured on one machine model into a
	// single combined-workload metric set.
	fmt.Println("\nfleet aggregate per machine (all QPs and sizes combined):")
	for _, m := range machines {
		var parts []perf.Metrics
		for _, r := range results {
			if r.cell.machine.Name == m.Name {
				parts = append(parts, r.metrics)
			}
		}
		agg := perf.MergeMetrics(m, parts...)
		fmt.Printf("  %-9s %d runs: L1miss %.3f%%  L2miss %.2f%%  %s\n",
			m.Label(), len(parts), agg.L1MissRate*100, agg.L2MissRate*100, agg.Breakdown())
	}
}
