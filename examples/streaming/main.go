// Streaming: drive the decoder as a real-time player would — VOPs
// arrive in coding order, a reorder buffer restores display order, and
// display buffers are recycled through the decoder's pool (the stable
// resident set the paper measures). Also demonstrates the out-of-order
// property of Figure 1: the B-VOPs display *before* the anchor that was
// decoded ahead of them.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"

	"repro/internal/codec"
	"repro/internal/simmem"
	"repro/internal/video"
	"repro/internal/vop"
)

func main() {
	const w, h, frames = 320, 240, 10

	// Produce a stream (the "sender").
	space := simmem.NewSpace(0)
	clip := video.NewSynth(w, h, 3).Sequence(space, frames)
	enc, err := codec.NewEncoder(codec.DefaultConfig(w, h), space, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	stream, err := enc.EncodeSequence(clip)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stream: %d bytes for %d frames\n\n", len(stream), frames)

	// The "receiver": decode VOP by VOP, reorder, display, recycle.
	dec := codec.NewDecoder(simmem.NewSpace(0), nil, nil)
	if err := dec.Begin(stream); err != nil {
		log.Fatal(err)
	}
	var rb vop.ReorderBuffer
	displayed := 0
	pending := map[int]*video.Frame{}

	display := func(items []vop.Item) {
		for _, it := range items {
			f := pending[it.Display]
			delete(pending, it.Display)
			fmt.Printf("  display %2d (%s-VOP, PSNR %.1f dB)\n",
				it.Display, it.Type, video.PSNR(clip[it.Display], f))
			dec.Release(f) // hand the buffer back to the pool
			displayed++
		}
	}
	for i := 0; i < dec.NFrames(); i++ {
		it, f, err := dec.DecodeNext()
		if err != nil {
			log.Fatal(err)
		}
		pending[it.Display] = f
		fmt.Printf("decoded %2d as %s-VOP (coding order %d)\n", it.Display, it.Type, i)
		display(rb.Push(it))
	}
	display(rb.Flush())
	if err := dec.CheckEnd(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplayed %d/%d frames in display order with a recycled buffer pool\n",
		displayed, frames)
}
