// Example distributed: the "simulate one workload on many machines"
// methodology stretched across worker processes.
//
// The demo boots two dist workers on loopback HTTP servers (stand-ins
// for `mp4worker` processes on other hosts), then has a coordinator
// encode a CIF workload ONCE, filter the captured reference stream
// down to each L1 row's L2-bound trace, ship those small M4L2
// payloads to the workers, and shard the 18-configuration
// cache-geometry grid across them (worker failures would be absorbed
// by re-planning shards onto the survivors). The merged result is
// compared against the same sweep computed locally — the two are
// identical, because a replay of the same bytes is the same
// simulation wherever it runs.
//
//	go run ./examples/distributed
package main

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"repro/internal/dist"
	"repro/internal/harness"
)

func main() {
	// Two workers, as two independent HTTP servers. On real hardware
	// these are `mp4worker -addr :8375` on separate machines.
	var urls []string
	for i := 0; i < 2; i++ {
		w := dist.NewWorker(dist.WorkerConfig{})
		srv := httptest.NewServer(w.Handler())
		defer srv.Close()
		urls = append(urls, srv.URL)
		fmt.Printf("worker %d: %s\n", i+1, srv.URL)
	}

	coord := &dist.Coordinator{Workers: urls, Client: &http.Client{Timeout: 5 * time.Minute}}
	wl := harness.Workload{W: 352, H: 288, Frames: 2}

	start := time.Now()
	distPoints, stats, err := coord.GeometrySweepWithStats(context.Background(), wl, nil, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "distributed sweep:", err)
		os.Exit(1)
	}
	distTime := time.Since(start)
	fmt.Printf("shipped %d L1-filtered traces, %.2f MB total on the wire\n",
		stats.Uploads, float64(stats.UploadBytes)/(1<<20))

	start = time.Now()
	localPoints, err := harness.RunGeometrySweep(wl, nil, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "local sweep:", err)
		os.Exit(1)
	}
	localTime := time.Since(start)

	fmt.Println()
	fmt.Print(harness.FormatGeometrySweep(
		fmt.Sprintf("distributed cache geometry sweep (%d configs across %d workers)",
			len(distPoints), len(urls)), distPoints))

	identical := len(distPoints) == len(localPoints)
	for i := 0; identical && i < len(distPoints); i++ {
		identical = distPoints[i] == localPoints[i]
	}
	fmt.Printf("\ndistributed == local: %v (dist %v, local %v; one encode each)\n",
		identical, distTime.Round(time.Millisecond), localTime.Round(time.Millisecond))
	if !identical {
		os.Exit(1)
	}
}
