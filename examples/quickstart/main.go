// Quickstart: encode a short synthetic clip, decode it back, and verify
// round-trip quality and the Figure-1 coding-order property.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/codec"
	"repro/internal/simmem"
	"repro/internal/video"
	"repro/internal/vop"
)

func main() {
	const w, h, frames = 320, 240, 8

	// Every pixel buffer lives in a simulated address space so the codec
	// can be profiled; for plain encoding the space is just an allocator.
	space := simmem.NewSpace(0)

	// A deterministic synthetic scene: textured background plus two
	// moving objects.
	clip := video.NewSynth(w, h, 42).Sequence(space, frames)

	cfg := codec.DefaultConfig(w, h) // I B B P B B ... GOP, QP 8, ±8 search
	enc, err := codec.NewEncoder(cfg, space, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	stream, err := enc.EncodeSequence(clip)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("encoded %d frames of %dx%d into %d bytes\n", frames, w, h, len(stream))

	// The paper's Figure 1: display order I B1 B2 P is coded (and
	// decoded) as I, P, B1, B2.
	items, err := cfg.GOP.Schedule(4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("coding order of display frames 0..3: ")
	for _, it := range items {
		fmt.Printf("%s%d ", it.Type, it.Display)
	}
	fmt.Println("(Figure 1)")

	dec := codec.NewDecoder(simmem.NewSpace(0), nil, nil)
	got, err := dec.DecodeSequence(stream)
	if err != nil {
		log.Fatal(err)
	}
	for i := range clip {
		if got[i].TimeIndex != i {
			log.Fatalf("frame %d out of order", i)
		}
	}
	var psnr float64
	for i := range clip {
		psnr += video.PSNR(clip[i], got[i])
	}
	fmt.Printf("decoded %d frames in display order, mean luma PSNR %.1f dB\n",
		len(got), psnr/float64(len(got)))

	// Per-VOP statistics from the encoder.
	var iBits, pBits, bBits, iN, pN, bN int
	for k, b := range enc.VOPBits {
		switch enc.VOPTypes[k] {
		case vop.TypeI:
			iBits, iN = iBits+b, iN+1
		case vop.TypeP:
			pBits, pN = pBits+b, pN+1
		case vop.TypeB:
			bBits, bN = bBits+b, bN+1
		}
	}
	if iN > 0 {
		fmt.Printf("mean bits/VOP: I %d", iBits/iN)
	}
	if pN > 0 {
		fmt.Printf(", P %d", pBits/pN)
	}
	if bN > 0 {
		fmt.Printf(", B %d", bBits/bN)
	}
	fmt.Println()
}
