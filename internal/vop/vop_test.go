package vop

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestTypeString(t *testing.T) {
	if TypeI.String() != "I" || TypeP.String() != "P" || TypeB.String() != "B" || Type(7).String() != "?" {
		t.Fatal("Type strings wrong")
	}
}

func TestGOPValidate(t *testing.T) {
	if DefaultGOP().Validate() != nil {
		t.Fatal("default GOP invalid")
	}
	for _, g := range []GOP{{N: 0, M: 1}, {N: 12, M: 0}, {N: 10, M: 3}} {
		if g.Validate() == nil {
			t.Errorf("GOP %+v accepted", g)
		}
	}
}

func TestTypeOfPattern(t *testing.T) {
	g := DefaultGOP()
	want := "IBBPBBPBBPBBIBB"
	for i, w := range want {
		if g.TypeOf(i).String() != string(w) {
			t.Fatalf("frame %d: type %s want %c", i, g.TypeOf(i), w)
		}
	}
}

// TestReorderMatchesFigure1 pins the paper's Figure 1 semantics: display
// order I B1 B2 P codes (and decodes) as I, P, B1, B2.
func TestReorderMatchesFigure1(t *testing.T) {
	g := GOP{N: 12, M: 3}
	items, err := g.Schedule(4)
	if err != nil {
		t.Fatal(err)
	}
	gotOrder := []int{}
	gotTypes := []string{}
	for _, it := range items {
		gotOrder = append(gotOrder, it.Display)
		gotTypes = append(gotTypes, it.Type.String())
	}
	wantOrder := []int{0, 3, 1, 2}
	wantTypes := []string{"I", "P", "B", "B"}
	for i := range wantOrder {
		if gotOrder[i] != wantOrder[i] || gotTypes[i] != wantTypes[i] {
			t.Fatalf("coding order %v %v; want %v %v", gotOrder, gotTypes, wantOrder, wantTypes)
		}
	}
	// B references: both anchors.
	for _, it := range items {
		if it.Type == TypeB && (it.Fwd != 0 || it.Bwd != 3) {
			t.Fatalf("B-VOP refs wrong: %+v", it)
		}
	}
}

func TestScheduleCoversAllFramesOnce(t *testing.T) {
	f := func(nRaw uint8, mRaw uint8) bool {
		m := int(mRaw)%4 + 1
		g := GOP{N: m * 4, M: m}
		n := int(nRaw)%50 + 1
		items, err := g.Schedule(n)
		if err != nil {
			return false
		}
		if len(items) != n {
			return false
		}
		seen := make([]bool, n)
		for _, it := range items {
			if it.Display < 0 || it.Display >= n || seen[it.Display] {
				return false
			}
			seen[it.Display] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleReferencesAreCoded(t *testing.T) {
	// Every reference must appear earlier in coding order (the decoder
	// dependence invariant of Figure 1).
	f := func(nRaw uint8) bool {
		g := DefaultGOP()
		n := int(nRaw)%60 + 1
		items, err := g.Schedule(n)
		if err != nil {
			return false
		}
		codedAt := map[int]int{}
		for pos, it := range items {
			codedAt[it.Display] = pos
		}
		for pos, it := range items {
			if it.Fwd >= 0 {
				p, ok := codedAt[it.Fwd]
				if !ok || p >= pos {
					return false
				}
			}
			if it.Bwd >= 0 {
				p, ok := codedAt[it.Bwd]
				if !ok || p >= pos {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleM1HasNoB(t *testing.T) {
	g := GOP{N: 4, M: 1}
	items, err := g.Schedule(9)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		if it.Type == TypeB {
			t.Fatal("M=1 schedule contains B-VOPs")
		}
	}
	// Display order == coding order for M=1.
	for i, it := range items {
		if it.Display != i {
			t.Fatal("M=1 schedule reorders")
		}
	}
}

func TestScheduleTailIsP(t *testing.T) {
	g := DefaultGOP()
	items, err := g.Schedule(8) // anchors at 0,3,6; tail 7
	if err != nil {
		t.Fatal(err)
	}
	last := items[len(items)-1]
	if last.Display != 7 || last.Type != TypeP || last.Fwd != 6 {
		t.Fatalf("tail scheduling wrong: %+v", last)
	}
}

func TestReorderBufferRestoresDisplayOrder(t *testing.T) {
	f := func(nRaw uint8) bool {
		g := DefaultGOP()
		n := int(nRaw)%40 + 1
		items, err := g.Schedule(n)
		if err != nil {
			return false
		}
		var rb ReorderBuffer
		var displayed []int
		for _, it := range items {
			for _, d := range rb.Push(it) {
				displayed = append(displayed, d.Display)
			}
		}
		for _, d := range rb.Flush() {
			displayed = append(displayed, d.Display)
		}
		if len(displayed) != n {
			return false
		}
		return sort.IntsAreSorted(displayed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReorderBufferFlushEmpty(t *testing.T) {
	var rb ReorderBuffer
	if out := rb.Flush(); out != nil {
		t.Fatal("flush of empty buffer returned items")
	}
}

func TestScheduleZeroFrames(t *testing.T) {
	items, err := DefaultGOP().Schedule(0)
	if err != nil || items != nil {
		t.Fatal("zero-frame schedule should be empty")
	}
}

func TestScheduleInvalidGOP(t *testing.T) {
	if _, err := (GOP{N: 5, M: 3}).Schedule(10); err == nil {
		t.Fatal("invalid GOP accepted")
	}
}
