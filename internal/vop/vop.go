// Package vop models the MPEG-4 video object plane layer: I/P/B VOP
// typing over a GOP structure, the display-to-coding-order schedule the
// encoder must follow, and the decoder-side reorder buffer that restores
// display order.
//
// Figure 1 of the paper illustrates the dependences: an I-VOP is coded
// independently, a P-VOP predicts from the nearest previously coded
// anchor, and a B-VOP interpolates between the anchors on either side.
// With display order I B1 B2 P, both encoder and decoder process
// I, P, B1, B2 — the out-of-(temporal)-order processing the paper notes
// increases the storage requirements of real-time playback.
package vop

import "fmt"

// Type is the coding type of a VOP.
type Type uint8

const (
	// TypeI is an intra VOP: a complete, independently coded image.
	TypeI Type = iota
	// TypeP is a forward-predicted VOP built from the nearest
	// previously coded anchor.
	TypeP
	// TypeB is a bidirectionally interpolated VOP.
	TypeB
)

func (t Type) String() string {
	switch t {
	case TypeI:
		return "I"
	case TypeP:
		return "P"
	case TypeB:
		return "B"
	default:
		return "?"
	}
}

// GOP describes the group-of-VOPs structure: an I-VOP every N frames and
// an anchor (I or P) every M frames, with M-1 B-VOPs between anchors.
// The paper's workloads use the classic N=12, M=3 pattern.
type GOP struct {
	N int // intra period
	M int // anchor spacing (1 disables B-VOPs)
}

// DefaultGOP is the I B B P B B P B B P B B pattern.
func DefaultGOP() GOP { return GOP{N: 12, M: 3} }

// Validate checks the structure.
func (g GOP) Validate() error {
	if g.M < 1 {
		return fmt.Errorf("vop: GOP M=%d must be >= 1", g.M)
	}
	if g.N < 1 || g.N%g.M != 0 {
		return fmt.Errorf("vop: GOP N=%d must be a positive multiple of M=%d", g.N, g.M)
	}
	return nil
}

// TypeOf returns the coding type of display-order frame t.
func (g GOP) TypeOf(t int) Type {
	if t%g.N == 0 {
		return TypeI
	}
	if t%g.M == 0 {
		return TypeP
	}
	return TypeB
}

// Item is one scheduled VOP in coding order. Fwd and Bwd are the display
// indices of the forward (past) and backward (future) reference anchors,
// -1 when unused.
type Item struct {
	Display int
	Type    Type
	Fwd     int
	Bwd     int
}

// Schedule produces the coding order for n display-order frames: each
// anchor is coded before the B-VOPs that reference it, so the coding
// order of display I B1 B2 P is I, P, B1, B2. Trailing frames after the
// last in-range anchor are coded as P-VOPs chained off the previous
// coded frame (reference-encoder behaviour for sequence tails).
func (g GOP) Schedule(n int) ([]Item, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, nil
	}
	var out []Item
	prevAnchor := -1
	t := 0
	for ; t < n; t += g.M {
		typ := g.TypeOf(t)
		if typ == TypeB { // cannot happen for anchor positions
			return nil, fmt.Errorf("vop: internal schedule error at %d", t)
		}
		it := Item{Display: t, Type: typ, Fwd: -1, Bwd: -1}
		if typ == TypeP {
			it.Fwd = prevAnchor
		}
		out = append(out, it)
		// The B-VOPs between the previous anchor and this one follow it.
		if prevAnchor >= 0 {
			for b := prevAnchor + 1; b < t; b++ {
				out = append(out, Item{Display: b, Type: TypeB, Fwd: prevAnchor, Bwd: t})
			}
		}
		prevAnchor = t
	}
	// Tail: frames after the last anchor, coded as chained P-VOPs.
	for d := prevAnchor + 1; d < n; d++ {
		out = append(out, Item{Display: d, Type: TypeP, Fwd: d - 1, Bwd: -1})
	}
	return out, nil
}

// ReorderBuffer restores display order at the decoder: B-VOPs are
// emitted immediately, anchors are held back until the next anchor (or
// end of stream) arrives. This is the extra storage the paper attributes
// to out-of-order decoding.
type ReorderBuffer struct {
	pending   *int // display index of the held anchor
	pendingIt Item
	out       []Item
}

// Push accepts the next VOP in coding order and returns any VOPs that
// become displayable, in display order.
func (rb *ReorderBuffer) Push(it Item) []Item {
	rb.out = rb.out[:0]
	switch it.Type {
	case TypeB:
		rb.out = append(rb.out, it)
	default: // anchor
		if rb.pending != nil {
			rb.out = append(rb.out, rb.pendingIt)
		}
		d := it.Display
		rb.pending = &d
		rb.pendingIt = it
	}
	return rb.out
}

// Flush releases the final held anchor at end of stream.
func (rb *ReorderBuffer) Flush() []Item {
	if rb.pending == nil {
		return nil
	}
	it := rb.pendingIt
	rb.pending = nil
	return []Item{it}
}
