package scene

import (
	"testing"

	"repro/internal/simmem"
	"repro/internal/video"
)

func TestComposeBackgroundOnly(t *testing.T) {
	sp := simmem.NewSpace(0)
	bg := video.NewFrame(sp, 32, 32)
	bg.Y.Fill(77)
	dst := video.NewFrame(sp, 32, 32)
	c := NewCompositor(nil)
	if err := c.Compose(dst, []*video.Frame{bg}); err != nil {
		t.Fatal(err)
	}
	if dst.Y.At(5, 5) != 77 {
		t.Fatal("background not copied")
	}
}

func TestComposePaintersOrder(t *testing.T) {
	sp := simmem.NewSpace(0)
	bg := video.NewFrame(sp, 32, 32)
	bg.Y.Fill(10)
	obj := video.NewAlphaFrame(sp, 32, 32)
	obj.Y.Fill(200)
	obj.Cb.Fill(90)
	obj.Cr.Fill(170)
	// Object covers left half only.
	for y := 0; y < 32; y++ {
		for x := 0; x < 16; x++ {
			obj.Alpha.Set(x, y, 255)
		}
	}
	dst := video.NewFrame(sp, 32, 32)
	c := NewCompositor(nil)
	if err := c.Compose(dst, []*video.Frame{bg, obj}); err != nil {
		t.Fatal(err)
	}
	if dst.Y.At(5, 5) != 200 {
		t.Fatal("object not painted inside support")
	}
	if dst.Y.At(20, 5) != 10 {
		t.Fatal("object painted outside support")
	}
	if dst.Cb.At(2, 2) != 90 || dst.Cr.At(2, 2) != 170 {
		t.Fatal("chroma not blended")
	}
	if dst.Cb.At(12, 2) == 90 {
		t.Fatal("chroma painted outside support")
	}
}

func TestComposeSizeMismatch(t *testing.T) {
	sp := simmem.NewSpace(0)
	bg := video.NewFrame(sp, 32, 32)
	small := video.NewFrame(sp, 16, 16)
	dst := video.NewFrame(sp, 32, 32)
	c := NewCompositor(nil)
	if err := c.Compose(dst, []*video.Frame{bg, small}); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if err := c.Compose(dst, nil); err == nil {
		t.Fatal("empty object list accepted")
	}
}

func TestComposeTraced(t *testing.T) {
	sp := simmem.NewSpace(0)
	bg := video.NewFrame(sp, 32, 32)
	obj := video.NewAlphaFrame(sp, 32, 32)
	obj.Alpha.Fill(255)
	dst := video.NewFrame(sp, 32, 32)
	var ct simmem.Count
	c := NewCompositor(&ct)
	if err := c.Compose(dst, []*video.Frame{bg, obj}); err != nil {
		t.Fatal(err)
	}
	if ct.Loads == 0 || ct.Stores == 0 {
		t.Fatal("compositor reported no traffic")
	}
}

func TestComposeSequence(t *testing.T) {
	sp := simmem.NewSpace(0)
	synth := video.NewSynth(64, 48, 3)
	bg := synth.ObjectSequence(sp, -1, 3)
	fg := synth.ObjectSequence(sp, 0, 3)
	c := NewCompositor(nil)
	out, err := c.ComposeSequence(sp, [][]*video.Frame{bg, fg})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("composed %d frames", len(out))
	}
	// Composed scene should differ from background alone wherever the
	// object lives.
	diff := 0
	for i := range out[0].Y.Pix {
		if out[0].Y.Pix[i] != bg[0].Y.Pix[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("composition identical to background")
	}
	// Ragged input rejected.
	if _, err := c.ComposeSequence(sp, [][]*video.Frame{bg, fg[:2]}); err == nil {
		t.Fatal("ragged sequences accepted")
	}
}
