// Package scene composes decoded visual objects into a display scene.
//
// MPEG-4 transmits uncorrelated objects separately; at the reception
// site the compositor reassembles the audiovisual scene, applying each
// object's binary alpha support in painter's order (background first).
// The compositor's memory traffic is part of the decode-side workload
// and is reported to the tracer like every other stage.
package scene

import (
	"fmt"

	"repro/internal/simmem"
	"repro/internal/video"
)

// Compositor blends object frames into an output frame.
type Compositor struct {
	t simmem.Tracer
}

// NewCompositor returns a compositor reporting traffic to t (nil for
// untraced operation).
func NewCompositor(t simmem.Tracer) *Compositor {
	if t == nil {
		t = simmem.Nop{}
	}
	return &Compositor{t: t}
}

// Compose blends the object frames (in painter's order: index 0 is the
// back layer) into dst. Objects without an alpha plane are treated as
// fully opaque full-frame layers. All frames must share dst's size.
func (c *Compositor) Compose(dst *video.Frame, objects []*video.Frame) error {
	if len(objects) == 0 {
		return fmt.Errorf("scene: no objects to compose")
	}
	for i, o := range objects {
		if o.W != dst.W || o.H != dst.H {
			return fmt.Errorf("scene: object %d is %dx%d, scene %dx%d", i, o.W, o.H, dst.W, dst.H)
		}
	}
	for li, o := range objects {
		if li == 0 || o.Alpha == nil {
			// Opaque layer: copy wholesale.
			c.copyPlane(dst.Y, o.Y)
			c.copyPlane(dst.Cb, o.Cb)
			c.copyPlane(dst.Cr, o.Cr)
			continue
		}
		// Shaped layers blend inside their bounding box only (the VOP
		// position/size is signalled, so the compositor does not scan
		// the full frame).
		x0, y0, x1, y1 := video.BBox(o.Alpha, o.W, o.H)
		if x1 <= x0 || y1 <= y0 {
			continue
		}
		c.blendLuma(dst.Y, o.Y, o.Alpha, x0, y0, x1, y1)
		c.blendChroma(dst.Cb, o.Cb, o.Alpha, x0, y0, x1, y1)
		c.blendChroma(dst.Cr, o.Cr, o.Alpha, x0, y0, x1, y1)
	}
	dst.TimeIndex = objects[0].TimeIndex
	return nil
}

func (c *Compositor) copyPlane(dst, src *video.Plane) {
	for y := 0; y < dst.H; y++ {
		so, do := y*src.Stride, y*dst.Stride
		copy(dst.Pix[do:do+dst.W], src.Pix[so:so+src.W])
		simmem.AccessRun(c.t, src.Addr+uint64(so), src.W, simmem.Load)
		simmem.AccessRun(c.t, dst.Addr+uint64(do), dst.W, simmem.Store)
	}
	c.t.Ops(uint64(dst.H) * 4)
}

func (c *Compositor) blendLuma(dst, src, alpha *video.Plane, x0, y0, x1, y1 int) {
	w := x1 - x0
	for y := y0; y < y1; y++ {
		so, do, ao := y*src.Stride+x0, y*dst.Stride+x0, y*alpha.Stride+x0
		srow := src.Pix[so : so+w]
		drow := dst.Pix[do : do+w]
		arow := alpha.Pix[ao : ao+w]
		for x := range srow {
			if arow[x] != 0 {
				drow[x] = srow[x]
			}
		}
		simmem.AccessRunUnit(c.t, src.Addr+uint64(so), w, 1, simmem.Load)
		simmem.AccessRunUnit(c.t, alpha.Addr+uint64(ao), w, 1, simmem.Load)
		simmem.AccessRunUnit(c.t, dst.Addr+uint64(do), w, 1, simmem.Store)
		c.t.Ops(uint64(w) * 2)
	}
}

func (c *Compositor) blendChroma(dst, src, alpha *video.Plane, x0, y0, x1, y1 int) {
	// Chroma planes are half size; a chroma sample is painted when any
	// of its four luma alphas is set.
	cw := (x1 - x0) / 2
	for y := y0 / 2; y < y1/2; y++ {
		so, do := y*src.Stride+x0/2, y*dst.Stride+x0/2
		srow := src.Pix[so : so+cw]
		drow := dst.Pix[do : do+cw]
		a0 := alpha.Pix[(2*y)*alpha.Stride+x0:]
		a1 := alpha.Pix[(2*y+1)*alpha.Stride+x0:]
		for x := range srow {
			if a0[2*x] != 0 || a0[2*x+1] != 0 || a1[2*x] != 0 || a1[2*x+1] != 0 {
				drow[x] = srow[x]
			}
		}
		simmem.AccessRunUnit(c.t, src.Addr+uint64(so), cw, 1, simmem.Load)
		simmem.AccessRunUnit(c.t, alpha.Addr+uint64(2*y*alpha.Stride+x0), x1-x0, 1, simmem.Load)
		simmem.AccessRunUnit(c.t, dst.Addr+uint64(do), cw, 1, simmem.Store)
		c.t.Ops(uint64(cw) * 5)
	}
}

// ComposeSequence composes per-object display sequences frame by frame
// into freshly allocated scene frames.
func (c *Compositor) ComposeSequence(space *simmem.Space, objects [][]*video.Frame) ([]*video.Frame, error) {
	if len(objects) == 0 || len(objects[0]) == 0 {
		return nil, fmt.Errorf("scene: empty object set")
	}
	n := len(objects[0])
	for i, seq := range objects {
		if len(seq) != n {
			return nil, fmt.Errorf("scene: object %d has %d frames, want %d", i, len(seq), n)
		}
	}
	out := make([]*video.Frame, n)
	for t := 0; t < n; t++ {
		f := video.NewFrame(space, objects[0][t].W, objects[0][t].H)
		layers := make([]*video.Frame, len(objects))
		for o := range objects {
			layers[o] = objects[o][t]
		}
		if err := c.Compose(f, layers); err != nil {
			return nil, err
		}
		out[t] = f
	}
	return out, nil
}
