package service

// Tests of the admission-control stack: bearer auth, per-session
// active-study quotas, submission rate limiting, the bounded session
// table, priority scheduling, and the healthz admission report.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/farm"
	"repro/internal/harness"
)

// doJSON sends a request with optional bearer token and session ID and
// returns the response (body unread).
func doJSON(t *testing.T, method, url, token, sessionID, body string) *http.Response {
	t.Helper()
	var r io.Reader
	if body != "" {
		r = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, r)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	if sessionID != "" {
		req.Header.Set("X-Session-ID", sessionID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

const tinyStudy = `{"frames": 2, "experiments": [` + smallGeometry + `]}`

func TestServiceBearerAuth(t *testing.T) {
	_, ts := newTestServer(t, Config{AuthToken: "s3cret"})

	// Unauthenticated liveness/introspection stays open.
	for _, path := range []string{"/v1/healthz", "/v1/metrics", "/v1/version"} {
		if resp := doJSON(t, http.MethodGet, ts.URL+path, "", "", ""); resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s without token: status %d, want 200", path, resp.StatusCode)
		}
	}

	// The study API requires the token.
	if resp := doJSON(t, http.MethodPost, ts.URL+"/v1/studies", "", "", tinyStudy); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("submit without token: status %d, want 401", resp.StatusCode)
	} else if resp.Header.Get("WWW-Authenticate") == "" {
		t.Error("401 without a WWW-Authenticate challenge")
	}
	if resp := doJSON(t, http.MethodGet, ts.URL+"/v1/studies", "wrong", "", ""); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("list with wrong token: status %d, want 401", resp.StatusCode)
	}

	resp := doJSON(t, http.MethodPost, ts.URL+"/v1/studies", "s3cret", "", tinyStudy)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit with token: status %d, want 202", resp.StatusCode)
	}
	var st StudyStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}

	// Polling and streaming need the token too.
	if resp := doJSON(t, http.MethodGet, ts.URL+"/v1/studies/"+st.ID, "", "", ""); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("status without token: %d, want 401", resp.StatusCode)
	}
	if resp := doJSON(t, http.MethodGet, ts.URL+"/v1/studies/"+st.ID+"/events", "", "", ""); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("events without token: %d, want 401", resp.StatusCode)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp := doJSON(t, http.MethodGet, ts.URL+"/v1/studies/"+st.ID, "s3cret", "", "")
		var cur StudyStatus
		if err := json.NewDecoder(resp.Body).Decode(&cur); err != nil {
			t.Fatal(err)
		}
		if cur.State == StateDone {
			break
		}
		if cur.State == StateFailed || cur.State == StateCancelled || time.Now().After(deadline) {
			t.Fatalf("authenticated study ended %q", cur.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestServiceSessionQuota: one session cannot hold more active studies
// than its quota; other sessions are unaffected; finishing a study
// returns the slot.
func TestServiceSessionQuota(t *testing.T) {
	_, ts := newTestServer(t, Config{SessionMaxActive: 1})

	resp := doJSON(t, http.MethodPost, ts.URL+"/v1/studies", "", "alice", tinyStudy)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("alice #1: status %d, want 202", resp.StatusCode)
	}
	var first StudyStatus
	if err := json.NewDecoder(resp.Body).Decode(&first); err != nil {
		t.Fatal(err)
	}

	over := doJSON(t, http.MethodPost, ts.URL+"/v1/studies", "", "alice", tinyStudy)
	if over.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("alice over quota: status %d, want 429", over.StatusCode)
	}
	if over.Header.Get("Retry-After") == "" {
		t.Error("quota 429 without Retry-After")
	}
	raw, _ := io.ReadAll(over.Body)
	if !strings.Contains(string(raw), "quota") {
		t.Errorf("quota rejection doesn't say so: %s", raw)
	}

	if resp := doJSON(t, http.MethodPost, ts.URL+"/v1/studies", "", "bob", tinyStudy); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("bob while alice is at quota: status %d, want 202", resp.StatusCode)
	}

	// Quota slots come back when the study reaches a terminal state.
	waitTerminal(t, ts, first.ID)
	if resp := doJSON(t, http.MethodPost, ts.URL+"/v1/studies", "", "alice", tinyStudy); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("alice after her study finished: status %d, want 202", resp.StatusCode)
	}
}

// TestServiceSessionRateLimit: the token bucket rejects a burst beyond
// its capacity with 429 + Retry-After, per session.
func TestServiceSessionRateLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{SessionRate: 0.01, SessionBurst: 1})

	if resp := doJSON(t, http.MethodPost, ts.URL+"/v1/studies", "", "carol", tinyStudy); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: status %d, want 202", resp.StatusCode)
	}
	resp := doJSON(t, http.MethodPost, ts.URL+"/v1/studies", "", "carol", tinyStudy)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("burst submit: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("rate 429 without Retry-After")
	}
	raw, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(raw), "rate") {
		t.Errorf("rate rejection doesn't say so: %s", raw)
	}

	// The limit is per-session: reads are not limited, and another
	// session still submits freely.
	if resp := doJSON(t, http.MethodGet, ts.URL+"/v1/studies", "", "carol", ""); resp.StatusCode != http.StatusOK {
		t.Errorf("rate-limited session GET: status %d, want 200", resp.StatusCode)
	}
	if resp := doJSON(t, http.MethodPost, ts.URL+"/v1/studies", "", "dave", tinyStudy); resp.StatusCode != http.StatusAccepted {
		t.Errorf("other session submit: status %d, want 202", resp.StatusCode)
	}
}

// TestServiceSessionTableBounded: the session table refuses new
// identities at MaxSessions instead of growing without bound.
func TestServiceSessionTableBounded(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSessions: 2, SessionTTL: time.Hour})

	for _, id := range []string{"s1", "s2"} {
		if resp := doJSON(t, http.MethodGet, ts.URL+"/v1/studies", "", id, ""); resp.StatusCode != http.StatusOK {
			t.Fatalf("session %s: status %d, want 200", id, resp.StatusCode)
		}
	}
	resp := doJSON(t, http.MethodGet, ts.URL+"/v1/studies", "", "s3", "")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third identity with MaxSessions=2: status %d, want 429", resp.StatusCode)
	}
	// Known identities keep working.
	if resp := doJSON(t, http.MethodGet, ts.URL+"/v1/studies", "", "s1", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("existing session after table-full: status %d, want 200", resp.StatusCode)
	}
}

// runnerFunc adapts a function to the Runner seam so scheduling tests
// can control exactly how long a study holds its slot.
type runnerFunc func(ctx context.Context, e harness.ExperimentSpec) (string, error)

func (f runnerFunc) Render(ctx context.Context, _ *farm.Pool, e harness.ExperimentSpec, _ int, _ EventSink) (string, error) {
	return f(ctx, e)
}

// TestServicePrioritySchedulesInteractiveFirst: with one slot busy and
// a queue of batch studies, an interactive study submitted last still
// runs next. The first study's render blocks on a channel, so every
// later submission is verifiably queued before the slot frees.
func TestServicePrioritySchedulesInteractiveFirst(t *testing.T) {
	svc, ts := newTestServer(t, Config{MaxConcurrent: 1})
	release := make(chan struct{})
	var blockFirst sync.Once
	svc.runner = runnerFunc(func(ctx context.Context, e harness.ExperimentSpec) (string, error) {
		block := false
		blockFirst.Do(func() { block = true })
		if block {
			select {
			case <-release:
			case <-ctx.Done():
				return "", ctx.Err()
			}
		}
		return "rendered " + e.Label() + "\n", nil
	})

	blocker := submit(t, ts, tinyStudy) // occupies the only slot, blocked
	b1 := submit(t, ts, `{"frames": 2, "priority": "batch", "experiments": [`+smallGeometry+`]}`)
	b2 := submit(t, ts, `{"frames": 2, "priority": "batch", "experiments": [`+smallGeometry+`]}`)
	inter := submit(t, ts, `{"frames": 2, "priority": "interactive", "experiments": [`+smallGeometry+`]}`)
	if inter.Priority != PriorityInteractive {
		t.Fatalf("interactive study reported priority %q", inter.Priority)
	}

	// All three are queued behind the blocked slot before it frees.
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := getStatus(t, ts, blocker.ID)
		queued := 0
		for _, id := range []string{b1.ID, b2.ID, inter.ID} {
			if getStatus(t, ts, id).State == StateQueued {
				queued++
			}
		}
		if st.State == StateRunning && queued == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("setup never settled: blocker %q, %d queued", st.State, queued)
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(release)

	for _, id := range []string{blocker.ID, b1.ID, b2.ID, inter.ID} {
		if st := waitTerminal(t, ts, id); st.State != StateDone {
			t.Fatalf("study %s: state %q, want done", id, st.State)
		}
	}
	interSt := getStatus(t, ts, inter.ID)
	for _, batch := range []string{b1.ID, b2.ID} {
		bSt := getStatus(t, ts, batch)
		if bSt.Started == nil || interSt.Started == nil {
			t.Fatal("terminal studies without Started timestamps")
		}
		if !interSt.Started.Before(*bSt.Started) {
			t.Fatalf("interactive started %v, after batch %s at %v — priority inverted",
				interSt.Started, batch, bSt.Started)
		}
	}

	// An invalid priority is a validation error.
	resp, err := http.Post(ts.URL+"/v1/studies", "application/json",
		strings.NewReader(`{"priority": "urgent", "experiments": [{"table": 2}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad priority: status %d, want 400", resp.StatusCode)
	}
}

// TestServiceHealthReportsAdmission: healthz exposes queue depth by
// priority and the session count.
func TestServiceHealthReportsAdmission(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 1})
	submit(t, ts, tinyStudy) // running
	queued := submit(t, ts, `{"frames": 2, "priority": "interactive", "experiments": [`+smallGeometry+`]}`)

	resp := doJSON(t, http.MethodGet, ts.URL+"/v1/healthz", "", "health-probe", "")
	var health struct {
		QueueDepth map[string]int `json:"queue_depth"`
		Sessions   int            `json:"sessions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.QueueDepth == nil {
		t.Fatal("healthz has no queue_depth")
	}
	if health.QueueDepth[PriorityInteractive] != 1 {
		t.Errorf("queue_depth[interactive] = %d, want 1 (map: %v)", health.QueueDepth[PriorityInteractive], health.QueueDepth)
	}
	if health.Sessions == 0 {
		t.Error("healthz reports zero sessions while clients are connected")
	}
	waitTerminal(t, ts, queued.ID)
}
