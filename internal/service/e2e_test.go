package service

// End-to-end acceptance: mp4served-shaped service fronting real
// mp4worker-shaped OS processes. A geometry+policy study submitted
// over HTTP fans out to the fleet, streams per-shard SSE results, has
// one worker killed mid-study, and still produces output byte-identical
// to the local render. Mirrors internal/dist's re-exec harness: the
// test binary doubles as the worker process under SVC_TEST_WORKER=1.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/harness"
)

func TestMain(m *testing.M) {
	if os.Getenv("SVC_TEST_WORKER") == "1" {
		runWorkerProcess()
		return
	}
	os.Exit(m.Run())
}

// runWorkerProcess serves the dist worker protocol on an ephemeral
// loopback port, announces it on stdout, and exits when stdin closes
// (when the parent test dies). SVC_TEST_DIE_ON_REPLAY=1 makes the
// process kill itself on its first replay request — the mid-study
// worker-death harness.
func runWorkerProcess() {
	w := dist.NewWorker(dist.WorkerConfig{Workers: 2})
	var handler http.Handler = w.Handler()
	if os.Getenv("SVC_TEST_DIE_ON_REPLAY") == "1" {
		inner := handler
		handler = http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost && r.URL.Path == "/v1/replay" {
				os.Exit(1)
			}
			inner.ServeHTTP(rw, r)
		})
	}
	srv := httptest.NewServer(handler)
	fmt.Printf("WORKER %s\n", srv.URL)
	io.Copy(io.Discard, os.Stdin)
	srv.Close()
}

// spawnFleetWorker launches one worker OS process and returns its base
// URL. The worker dies with the test via its stdin pipe.
func spawnFleetWorker(t *testing.T, extraEnv ...string) string {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^$")
	cmd.Env = append(append(os.Environ(), "SVC_TEST_WORKER=1"), extraEnv...)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		stdin.Close()
		cmd.Wait()
	})
	sc := bufio.NewScanner(stdout)
	deadline := time.AfterFunc(30*time.Second, func() { cmd.Process.Kill() })
	defer deadline.Stop()
	for sc.Scan() {
		if u, ok := strings.CutPrefix(sc.Text(), "WORKER "); ok {
			return u
		}
	}
	t.Fatal("worker never announced its address")
	return ""
}

// fastFleet tunes the coordinator for test-speed failover.
func fastFleet(urls []string) *FleetConfig {
	return &FleetConfig{
		Workers:         urls,
		MaxAttempts:     6,
		RetryBaseDelay:  5 * time.Millisecond,
		RetryMaxDelay:   50 * time.Millisecond,
		BreakerCooldown: 50 * time.Millisecond,
		ProbeInterval:   25 * time.Millisecond,
		HealthInterval:  25 * time.Millisecond,
	}
}

// TestE2EServiceFleetStudySurvivesWorkerDeath is the PR's acceptance
// test: a study served over HTTP by a fleet-backed service, streaming
// SSE shard results, with one of two real worker processes dying on
// its first replay — and output byte-identical to the local render.
func TestE2EServiceFleetStudySurvivesWorkerDeath(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes and encodes workloads")
	}
	victim := spawnFleetWorker(t, "SVC_TEST_DIE_ON_REPLAY=1")
	healthy := spawnFleetWorker(t)
	_, ts := newTestServer(t, Config{MaxConcurrent: 2, Fleet: fastFleet([]string{victim, healthy})})

	const body = `{"frames": 2, "experiments": [` + smallGeometry + `, {"sweep": "policy", "policies": ["lru", "fifo"], "l2_kb": [512]}]}`
	st := submit(t, ts, body)

	// Consume the live SSE stream end to end.
	resp := openStream(t, ts, st.ID, 0)
	events, _ := readStream(t, resp.Body, 0)
	if len(events) == 0 || events[len(events)-1].Type != EventDone {
		t.Fatalf("fleet study stream: %d events, want a stream ending in done (study error: %q)",
			len(events), getStatus(t, ts, st.ID).Error)
	}
	shardEvents := 0
	workersSeen := map[string]bool{}
	var streamedOutputs []string
	for _, ev := range events {
		switch ev.Type {
		case EventShard:
			if ev.Shard == nil {
				t.Fatal("shard event without shard payload")
			}
			shardEvents++
			workersSeen[ev.Shard.Worker] = true
		case EventExperiment:
			streamedOutputs = append(streamedOutputs, ev.Output)
		}
	}
	if shardEvents == 0 {
		t.Fatal("fleet study emitted no shard events")
	}
	if workersSeen[victim] {
		t.Errorf("die-on-replay worker %s credited with a shard", victim)
	}
	if !workersSeen[healthy] {
		t.Errorf("surviving worker %s not credited with any shard (seen: %v)", healthy, workersSeen)
	}

	// Byte-identical to the local render of the same experiments.
	want := ""
	for _, e := range []harness.ExperimentSpec{
		smallGeometrySpec(),
		{Sweep: "policy", Policies: []string{"lru", "fifo"}, L2KB: []int{512}},
	} {
		out, err := harness.RenderExperiment(context.Background(), nil, e, 2)
		if err != nil {
			t.Fatal(err)
		}
		want += out
	}
	if got := result(t, ts, st.ID); got != want {
		t.Fatalf("fleet study output differs from local render\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	if got := strings.Join(streamedOutputs, ""); got != want {
		t.Fatalf("streamed outputs differ from local render\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// The fleet monitor eventually reports the dead worker on healthz.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var health struct {
			Fleet struct {
				Alive []string `json:"alive"`
				Dead  []string `json:"dead"`
			} `json:"fleet"`
		}
		err = json.NewDecoder(resp.Body).Decode(&health)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		dead := map[string]bool{}
		for _, w := range health.Fleet.Dead {
			dead[w] = true
		}
		if dead[victim] {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz never reported the killed worker dead: %+v", health.Fleet)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestE2EServiceFleetMatchesLocalService: the same study through a
// fleet-backed service and a plain local service produces identical
// bytes — the Runner seam is invisible in outputs.
func TestE2EServiceFleetMatchesLocalService(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes and encodes workloads")
	}
	urls := []string{spawnFleetWorker(t), spawnFleetWorker(t)}
	_, fleetTS := newTestServer(t, Config{Fleet: fastFleet(urls)})
	_, localTS := newTestServer(t, Config{})

	const body = `{"frames": 2, "experiments": [` + smallGeometry + `]}`
	fleetSt := submit(t, fleetTS, body)
	localSt := submit(t, localTS, body)
	if fin := waitTerminal(t, fleetTS, fleetSt.ID); fin.State != StateDone {
		t.Fatalf("fleet study ended %s: %s", fin.State, fin.Error)
	}
	if fin := waitTerminal(t, localTS, localSt.ID); fin.State != StateDone {
		t.Fatalf("local study ended %s: %s", fin.State, fin.Error)
	}
	fleetOut := result(t, fleetTS, fleetSt.ID)
	localOut := result(t, localTS, localSt.ID)
	if fleetOut != localOut {
		t.Fatalf("fleet and local service outputs differ\n--- fleet ---\n%s\n--- local ---\n%s", fleetOut, localOut)
	}
	if fleetOut == "" {
		t.Fatal("empty study output")
	}
}

// TestE2EServiceMemoSecondStudyReplaysNothing: resubmitting an
// identical study to a fleet-backed service is served entirely from
// the server's shared result memo — zero shards dispatched to any
// worker, every SSE shard event attributed to the memo, and output
// byte-identical to the first run.
func TestE2EServiceMemoSecondStudyReplaysNothing(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes and encodes workloads")
	}
	urls := []string{spawnFleetWorker(t), spawnFleetWorker(t)}
	_, ts := newTestServer(t, Config{Fleet: fastFleet(urls)})

	const body = `{"frames": 2, "experiments": [` + smallGeometry + `]}`
	first := submit(t, ts, body)
	if fin := waitTerminal(t, ts, first.ID); fin.State != StateDone {
		t.Fatalf("first study ended %s: %s", fin.State, fin.Error)
	}
	if u := getStatus(t, ts, first.ID).TraceUsage; u.MemoHits != 0 || u.MemoMisses == 0 {
		t.Fatalf("first study memo usage = %d hits / %d misses, want cold misses only", u.MemoHits, u.MemoMisses)
	}

	second := submit(t, ts, body)
	resp := openStream(t, ts, second.ID, 0)
	events, _ := readStream(t, resp.Body, 0)
	shardEvents := 0
	for _, ev := range events {
		if ev.Type != EventShard {
			continue
		}
		shardEvents++
		if ev.Shard.Worker != dist.MemoWorker {
			t.Errorf("second study shard %d served by %q, want %q",
				ev.Shard.Index, ev.Shard.Worker, dist.MemoWorker)
		}
	}
	if shardEvents == 0 {
		t.Fatal("second study emitted no shard events")
	}
	fin := getStatus(t, ts, second.ID)
	if fin.State != StateDone {
		t.Fatalf("second study ended %s: %s", fin.State, fin.Error)
	}
	if u := fin.TraceUsage; u.MemoMisses != 0 || u.MemoHits == 0 || u.Replays != 0 {
		t.Fatalf("second study usage = %+v, want all hits, zero replays", u)
	}
	if got, want := result(t, ts, second.ID), result(t, ts, first.ID); got != want {
		t.Fatalf("memoized study output differs\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// healthz surfaces the memo's hit rate.
	hresp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Memo struct {
			Hits    uint64  `json:"hits"`
			HitRate float64 `json:"hit_rate"`
		} `json:"memo"`
	}
	err = json.NewDecoder(hresp.Body).Decode(&health)
	hresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if health.Memo.Hits == 0 || health.Memo.HitRate <= 0 {
		t.Fatalf("healthz memo = %+v, want nonzero hits and hit rate", health.Memo)
	}
}
