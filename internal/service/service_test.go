package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/harness"
)

// smallGeometry is the cheapest experiment that exercises the full
// capture/replay machinery (one CIF encode, two replayed L2 sizes) —
// the tests' workhorse, since the paper-sized tables are expensive
// under -race.
const smallGeometry = `{"sweep": "geometry", "l1": [{"size": 32768, "line": 32, "ways": 2}], "l2_kb": [512, 1024]}`

func smallGeometrySpec() harness.ExperimentSpec {
	return harness.ExperimentSpec{
		Sweep: "geometry",
		L1s:   []cache.Config{{SizeBytes: 32 << 10, LineBytes: 32, Ways: 2}},
		L2KB:  []int{512, 1024},
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	svc := New(cfg)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		svc.Shutdown(ctx)
	})
	return svc, ts
}

func submit(t *testing.T, ts *httptest.Server, body string) StudyStatus {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/studies", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: status %d: %s", resp.StatusCode, raw)
	}
	var st StudyStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func getStatus(t *testing.T, ts *httptest.Server, id string) StudyStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/studies/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StudyStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitTerminal(t *testing.T, ts *httptest.Server, id string) StudyStatus {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, ts, id)
		switch st.State {
		case StateDone, StateFailed, StateCancelled:
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("study %s did not reach a terminal state", id)
	return StudyStatus{}
}

func result(t *testing.T, ts *httptest.Server, id string) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/studies/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestServiceRunsStudyMatchingLocal: a submitted study streams exactly
// the output a local render of the same experiments produces.
func TestServiceRunsStudyMatchingLocal(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	st := submit(t, ts, `{"frames": 2, "experiments": [`+smallGeometry+`, {"sweep": "ratio"}]}`)
	if st.Total != 2 || st.State == StateFailed {
		t.Fatalf("unexpected submit status: %+v", st)
	}
	fin := waitTerminal(t, ts, st.ID)
	if fin.State != StateDone {
		t.Fatalf("study ended %s: %s", fin.State, fin.Error)
	}
	got := result(t, ts, st.ID)

	want := ""
	for _, e := range []harness.ExperimentSpec{smallGeometrySpec(), {Sweep: "ratio"}} {
		out, err := harness.RenderExperiment(context.Background(), nil, e, 2)
		if err != nil {
			t.Fatal(err)
		}
		want += out
	}
	if got != want {
		t.Fatalf("service output differs from local render\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	// The study's trace usage is scoped and reported per job.
	if fin.TraceUsage.Zero() {
		t.Fatal("study reported zero trace usage for a replay-mode run")
	}
}

// TestServiceValidatesSubmissions: malformed specs and invalid
// geometries are rejected with 400 before any simulation starts — in
// particular a bad cache geometry must be an error response, not a
// panicking handler.
func TestServiceValidatesSubmissions(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, body := range map[string]string{
		"empty":              `{}`,
		"no kind":            `{"experiments": [{}]}`,
		"two kinds":          `{"experiments": [{"table": 2, "figure": 3}]}`,
		"bad table":          `{"experiments": [{"table": 99}]}`,
		"bad figure":         `{"experiments": [{"figure": 9}]}`,
		"bad sweep":          `{"experiments": [{"sweep": "nope"}]}`,
		"bad json":           `{"experiments": [`,
		"unknown field":      `{"experiments": [{"table": 2}], "bogus": 1}`,
		"axes on non-sweep":  `{"experiments": [{"table": 2, "l2_kb": [512]}]}`,
		"bad l1 geometry":    `{"experiments": [{"sweep": "geometry", "l1": [{"size": 48111, "line": 48, "ways": 3}]}]}`,
		"bad l2 size":        `{"experiments": [{"sweep": "geometry", "l2_kb": [-3]}]}`,
		"huge l2 size":       `{"experiments": [{"sweep": "geometry", "l2_kb": [34359738368]}]}`,
		"huge l1 geometry":   `{"experiments": [{"sweep": "geometry", "l1": [{"size": 35184372088832, "line": 128, "ways": 2}]}]}`,
		"zero ways geometry": `{"experiments": [{"sweep": "geometry", "l1": [{"size": 32768, "line": 32, "ways": 0}]}]}`,
		// Replacement-policy ingress: unknown names and impossible
		// policy/geometry combinations must be 400s, mirroring the
		// cache.TryNew geometry-bounds treatment — never a panic.
		"unknown policy sweep":  `{"experiments": [{"sweep": "policy", "policies": ["mru"]}]}`,
		"unknown policy axis":   `{"experiments": [{"sweep": "geometry", "policies": ["lru", "bogus"]}]}`,
		"unknown policy in l1":  `{"experiments": [{"sweep": "geometry", "l1": [{"size": 32768, "line": 32, "ways": 2, "policy": "mru"}]}]}`,
		"policy on non-sweep":   `{"experiments": [{"table": 2, "policies": ["lru"]}]}`,
		"plru non-pow2 l1 axis": `{"experiments": [{"sweep": "geometry", "policies": ["plru"], "l1": [{"size": 98304, "line": 32, "ways": 3}]}]}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/studies", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (want 400): %s", name, resp.StatusCode, raw)
		}
	}
	if resp, err := http.Get(ts.URL + "/v1/studies/nope"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown id: status %d (want 404)", resp.StatusCode)
		}
	}
}

// TestServicePolicySweep: a policy-sweep study submitted over HTTP —
// the policy axis arriving as manifest data — runs to completion and
// streams exactly the local render of the same spec.
func TestServicePolicySweep(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	spec := harness.ExperimentSpec{Sweep: "policy", Policies: []string{"lru", "fifo"}, L2KB: []int{512}}
	st := submit(t, ts, `{"frames": 2, "experiments": [{"sweep": "policy", "policies": ["lru", "fifo"], "l2_kb": [512]}]}`)
	fin := waitTerminal(t, ts, st.ID)
	if fin.State != StateDone {
		t.Fatalf("policy study ended %s: %s", fin.State, fin.Error)
	}
	got := result(t, ts, st.ID)
	want, err := harness.RenderExperiment(context.Background(), nil, spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("service policy sweep differs from local render\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestServiceConcurrentClients: many clients submit studies with
// mixed strategies at once; all finish, outputs are intact and
// per-study usage reflects each client's own strategy. Run under -race
// in CI.
func TestServiceConcurrentClients(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 4})
	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			replay := c%2 == 0
			body := fmt.Sprintf(`{"frames": 2, "replay": %v, "experiments": [{"table": 1}, `+smallGeometry+`]}`, replay)
			resp, err := http.Post(ts.URL+"/v1/studies", "application/json", strings.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			var st StudyStatus
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err != nil {
				errs <- err
				return
			}
			fin := waitTerminal(t, ts, st.ID)
			if fin.State != StateDone {
				errs <- fmt.Errorf("client %d: study %s ended %s: %s", c, st.ID, fin.State, fin.Error)
				return
			}
			if out := result(t, ts, st.ID); !strings.Contains(out, "cache geometry sweep") {
				errs <- fmt.Errorf("client %d: result missing geometry sweep:\n%s", c, out)
				return
			}
			if replay && fin.TraceUsage.Zero() {
				errs <- fmt.Errorf("client %d: replay study reported zero usage", c)
				return
			}
			if !replay && !fin.TraceUsage.Zero() {
				errs <- fmt.Errorf("client %d: live study reported usage %+v", c, fin.TraceUsage)
				return
			}
			errs <- nil
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

// TestServiceResultStreaming: the result endpoint delivers experiment
// outputs incrementally — the first table arrives while the study is
// still running the second.
func TestServiceResultStreaming(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	st := submit(t, ts, `{"frames": 4, "experiments": [{"table": 1}, {"sweep": "ratio"}]}`)

	resp, err := http.Get(ts.URL + "/v1/studies/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// Read only up to the first experiment's worth of output, then
	// verify the study is not yet finished (figure 2 is much slower
	// than the static table 1).
	buf := make([]byte, 64)
	if _, err := io.ReadFull(resp.Body, buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(buf), "Table 1.") {
		t.Fatalf("stream does not start with Table 1: %q", buf)
	}
	mid := getStatus(t, ts, st.ID)
	if mid.State == StateDone {
		t.Log("study already done at first read (fast machine); streaming not observable")
	}
	rest, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	full := string(buf) + string(rest)
	if !strings.Contains(full, "DRAM stall fraction") {
		t.Fatalf("streamed result missing ratio-sweep output:\n%s", full)
	}
	if fin := waitTerminal(t, ts, st.ID); fin.State != StateDone {
		t.Fatalf("study ended %s: %s", fin.State, fin.Error)
	}
}

// TestServiceCancellation: cancelling a running study ends it promptly
// with state "cancelled" and a diagnostic line on the result stream.
func TestServiceCancellation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// A long-enough study to catch mid-flight; kept small because a
	// cancelled job still drains its in-flight farm cell before the
	// cleanup Shutdown returns.
	st := submit(t, ts, `{"frames": 8, "experiments": [{"sweep": "ratio"}, {"table": 2}, {"table": 4}]}`)
	for getStatus(t, ts, st.ID).State == StateQueued {
		time.Sleep(5 * time.Millisecond)
	}
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/studies/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	fin := waitTerminal(t, ts, st.ID)
	if fin.State != StateCancelled {
		t.Fatalf("study ended %s, want cancelled", fin.State)
	}
	if out := result(t, ts, st.ID); !strings.Contains(out, "cancelled") {
		t.Fatalf("result stream does not surface cancellation:\n%s", out)
	}
}

// TestServiceQueueBound: submissions beyond MaxQueued are rejected
// with 429.
func TestServiceQueueBound(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 1, MaxQueued: 2})
	ids := []string{}
	for i := 0; i < 2; i++ {
		st := submit(t, ts, `{"frames": 6, "experiments": [{"sweep": "ratio"}]}`)
		ids = append(ids, st.ID)
	}
	resp, err := http.Post(ts.URL+"/v1/studies", "application/json",
		strings.NewReader(`{"experiments": [{"table": 1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-queue submit: status %d, want 429", resp.StatusCode)
	}
	for _, id := range ids {
		waitTerminal(t, ts, id)
	}
}

// TestServiceHistoryBound: terminal jobs beyond MaxHistory are pruned
// oldest-first, so a long-lived server stays bounded; recent jobs
// survive.
func TestServiceHistoryBound(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxHistory: 2})
	var ids []string
	for i := 0; i < 4; i++ {
		st := submit(t, ts, `{"experiments": [{"table": 1}]}`)
		waitTerminal(t, ts, st.ID)
		ids = append(ids, st.ID)
	}
	// Pruning happens on submit: this one pushes the two oldest out.
	st := submit(t, ts, `{"experiments": [{"table": 1}]}`)
	waitTerminal(t, ts, st.ID)
	for i, id := range ids[:2] {
		resp, err := http.Get(ts.URL + "/v1/studies/" + id)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("pruned study %d (%s): status %d, want 404", i, id, resp.StatusCode)
		}
	}
	for _, id := range append(ids[2:], st.ID) {
		if got := getStatus(t, ts, id); got.State != StateDone {
			t.Errorf("recent study %s: state %q after prune", id, got.State)
		}
	}
}

// TestServiceGracefulShutdown: Shutdown rejects new work, lets running
// studies finish within the budget, and reports clean drain.
func TestServiceGracefulShutdown(t *testing.T) {
	svc := New(Config{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	st := submit(t, ts, `{"frames": 2, "experiments": [{"sweep": "ratio"}]}`)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown failed: %v", err)
	}
	if fin := getStatus(t, ts, st.ID); fin.State != StateDone {
		t.Fatalf("study ended %s after graceful drain, want done (%s)", fin.State, fin.Error)
	}
	resp, err := http.Post(ts.URL+"/v1/studies", "application/json",
		strings.NewReader(`{"experiments": [{"table": 1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown submit: status %d, want 503", resp.StatusCode)
	}
}

// TestServiceShutdownDeadlineCancels: a shutdown whose deadline
// expires cancels in-flight studies instead of hanging.
func TestServiceShutdownDeadlineCancels(t *testing.T) {
	svc := New(Config{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	st := submit(t, ts, `{"frames": 8, "experiments": [{"sweep": "ratio"}, {"table": 2}, {"table": 4}]}`)
	for getStatus(t, ts, st.ID).State == StateQueued {
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := svc.Shutdown(ctx); err == nil {
		t.Log("study finished inside the tiny budget (fast machine)")
	}
	fin := getStatus(t, ts, st.ID)
	if fin.State != StateFailed && fin.State != StateDone {
		t.Fatalf("study state %s after forced shutdown", fin.State)
	}
}

// TestServiceHealth reports queue depth.
func TestServiceHealth(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h["ok"] != true {
		t.Fatalf("health: %+v", h)
	}
}

// TestStudySpecManifestCompatibility: an mp4study batch manifest file
// parses as a service submission unchanged.
func TestStudySpecManifestCompatibility(t *testing.T) {
	manifest := []byte(`{
	  "frames": 6,
	  "parallel": 8,
	  "experiments": [
	    {"table": 2}, {"table": 8},
	    {"figure": 3},
	    {"sweep": "ratio"}, {"sweep": "coloring"}
	  ]
	}`)
	var spec StudySpec
	dec := json.NewDecoder(bytes.NewReader(manifest))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		t.Fatalf("manifest does not parse as a study spec: %v", err)
	}
	if err := spec.Validate(); err != nil {
		t.Fatalf("manifest does not validate as a study spec: %v", err)
	}
	if len(spec.Experiments) != 5 || spec.Frames != 6 {
		t.Fatalf("manifest decoded oddly: %+v", spec)
	}
}
