package service

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestServiceMetricsEndpoint checks the /v1/metrics content
// negotiation: Prometheus text by default, the JSON snapshot for JSON
// clients — and that the middleware's own metrics appear in the scrape
// (the request for the metrics page is itself counted on a later
// request).
func TestServiceMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	// Plain scrape: Prometheus text.
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain...", ct)
	}
	if !strings.Contains(string(body), "# TYPE") {
		t.Errorf("prometheus scrape has no TYPE lines:\n%.400s", body)
	}

	// Second scrape sees the first one counted by the middleware.
	resp, err = http.Get(ts.URL + "/v1/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("JSON Content-Type = %q", ct)
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("JSON snapshot invalid: %v", err)
	}
	name := obs.Label(obs.Label("service_http_requests_total", "route", "GET /v1/metrics"), "code", "200")
	if snap.Counters[name] == 0 {
		t.Errorf("middleware did not count the first metrics request (%s)", name)
	}
}

// TestServiceVersionEndpoint checks /v1/version and the version field
// riding in the health payload.
func TestServiceVersionEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	resp, err := http.Get(ts.URL + "/v1/version")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var bi obs.BuildInfo
	if err := json.NewDecoder(resp.Body).Decode(&bi); err != nil {
		t.Fatalf("version body invalid: %v", err)
	}
	if bi.GoVersion == "" {
		t.Error("version missing go_version")
	}

	hresp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var health struct {
		OK      bool           `json:"ok"`
		Version *obs.BuildInfo `json:"version"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if !health.OK || health.Version == nil || health.Version.GoVersion == "" {
		t.Errorf("health = %+v, want ok with embedded version", health)
	}
}

// TestServiceLiveMetricsDuringStudy is the acceptance check of the obs
// tentpole: mid-study, a /v1/metrics scrape reports the study running
// and nonzero request-latency accounting — live introspection, not
// end-of-run summaries.
func TestServiceLiveMetricsDuringStudy(t *testing.T) {
	reg := obs.Default()
	before := reg.Snapshot()
	_, ts := newTestServer(t, Config{Workers: 2})

	st := submit(t, ts, `{"experiments": [`+smallGeometry+`]}`)

	// Poll the registry until the study is observably running. The
	// queued→running hop is fast but asynchronous, so poll rather than
	// assert a single instant.
	deadline := time.Now().Add(30 * time.Second)
	sawRunning := false
	for time.Now().Before(deadline) {
		snap := reg.Snapshot()
		if snap.Gauges["service_studies_running"] > 0 {
			sawRunning = true
			break
		}
		if done := getStatus(t, ts, st.ID); done.State == StateDone || done.State == StateFailed {
			break // too fast to catch mid-flight; the gauge checks below still hold
		}
		time.Sleep(5 * time.Millisecond)
	}

	final := waitTerminal(t, ts, st.ID)
	if final.State != StateDone {
		t.Fatalf("study ended %s: %s", final.State, final.Error)
	}

	after := reg.Snapshot()
	if got := after.Counters["service_studies_submitted_total"] - before.Counters["service_studies_submitted_total"]; got != 1 {
		t.Errorf("submitted delta = %d, want 1", got)
	}
	doneName := obs.Label("service_studies_finished_total", "outcome", "done")
	if got := after.Counters[doneName] - before.Counters[doneName]; got != 1 {
		t.Errorf("finished{done} delta = %d, want 1", got)
	}
	if got := after.Gauges["service_studies_running"]; got != 0 {
		t.Errorf("running gauge after completion = %d, want 0", got)
	}
	if got := after.Gauges["service_studies_queued"]; got != 0 {
		t.Errorf("queued gauge after completion = %d, want 0", got)
	}
	// The study's farm work and trace replays land in the shared
	// registry: the whole-stack introspection the tentpole promises.
	if after.Counters["trace_replay_l2_total"]+after.Counters["trace_replay_total"] <=
		before.Counters["trace_replay_l2_total"]+before.Counters["trace_replay_total"] {
		t.Error("study left no replay-throughput metrics behind")
	}
	// Request middleware saw the submit.
	name := obs.Label(obs.Label("service_http_requests_total", "route", "POST /v1/studies"), "code", "202")
	if after.Counters[name] == 0 {
		t.Errorf("submit request not counted (%s)", name)
	}
	if !sawRunning {
		t.Log("study finished before a running-gauge sample; counters above still verify the lifecycle")
	}
}
