package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/faultnet"
	"repro/internal/harness"
)

// The service chaos suite attacks the study API from the client side
// with faultnet's seeded fault injection. The service's half of the
// backoff contract is what's under test: overload is signalled with
// 429 + Retry-After (never dropped silently), and client-side network
// chaos — timeouts, refused connections, responses severed mid-body —
// must never corrupt server state: every study the server actually
// accepted still runs to completion, and the API stays fully
// functional for clean clients afterwards.

// TestChaosRetryAfterAdvertisedOnQueueFull: a queue-full rejection
// must carry the configured Retry-After delay so clients know when
// resubmitting is worth trying.
func TestChaosRetryAfterAdvertisedOnQueueFull(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 1, MaxQueued: 1, RetryAfter: 7 * time.Second})

	// One accepted study fills the queue (MaxQueued counts everything
	// not yet terminal), so the next submission must be turned away.
	submit(t, ts, `{"frames": 2, "experiments": [`+smallGeometry+`]}`)
	resp, err := http.Post(ts.URL+"/v1/studies", "application/json",
		strings.NewReader(`{"frames": 2, "experiments": [{"sweep": "ratio"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queue-full submit: status %d, want 429", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	if secs, err := strconv.Atoi(ra); err != nil || secs != 7 {
		t.Fatalf("Retry-After = %q, want %q", ra, "7")
	}

	// The default advertises 5s.
	if got := New(Config{}).cfg.RetryAfter; got != 5*time.Second {
		t.Errorf("default RetryAfter = %v, want 5s", got)
	}
}

// TestChaosClientFaultSoupLeavesServiceConsistent: a client whose
// network injects timeouts, refused connections, and mid-body resets
// hammers the API. Whatever the client experienced, the server must
// end the storm consistent: every submission it acknowledged reaches
// done, nothing wedges, and a clean client gets byte-identical study
// output afterwards.
func TestChaosClientFaultSoupLeavesServiceConsistent(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 2})
	ft := faultnet.New(42, nil, &faultnet.Rule{
		Name:        "soup",
		ErrRate:     0.15,
		TimeoutRate: 0.1,
		ResetRate:   0.15,
		ResetAfter:  16,
	})
	chaotic := &http.Client{Transport: ft, Timeout: 10 * time.Second}

	spec := `{"frames": 2, "experiments": [{"sweep": "ratio"}]}`
	var acked []string
	for i := 0; i < 16; i++ {
		switch i % 4 {
		case 0, 1: // submit
			resp, err := chaotic.Post(ts.URL+"/v1/studies", "application/json", strings.NewReader(spec))
			if err != nil {
				continue // injected transport fault: client-side loss only
			}
			var st StudyStatus
			decodeErr := json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if resp.StatusCode == http.StatusAccepted && decodeErr == nil && st.ID != "" {
				acked = append(acked, st.ID)
			}
		case 2: // poll the listing
			if resp, err := chaotic.Get(ts.URL + "/v1/studies"); err == nil {
				resp.Body.Close()
			}
		case 3: // health check
			if resp, err := chaotic.Get(ts.URL + "/v1/healthz"); err == nil {
				resp.Body.Close()
			}
		}
	}
	if ft.InjectedTotal() == 0 {
		t.Fatal("fault soup injected nothing — the chaos client ran clean")
	}
	if len(acked) == 0 {
		t.Fatal("no submission survived the soup — rates too hostile to test anything")
	}

	// Every acknowledged study must finish despite the client chaos —
	// faults live in the client's network, not the server's farm.
	for _, id := range acked {
		if st := waitTerminal(t, ts, id); st.State != StateDone {
			t.Errorf("study %s ended %s after client chaos: %s", id, st.State, st.Error)
		}
	}

	// The server must be fully usable by a clean client afterwards.
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		OK bool `json:"ok"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil || !health.OK {
		t.Fatalf("healthz after chaos: ok=%v err=%v", health.OK, err)
	}
	resp.Body.Close()

	st := submit(t, ts, `{"frames": 2, "experiments": [`+smallGeometry+`]}`)
	if fin := waitTerminal(t, ts, st.ID); fin.State != StateDone {
		t.Fatalf("post-chaos study ended %s: %s", fin.State, fin.Error)
	}
	want, err := harness.RenderExperiment(context.Background(), nil, smallGeometrySpec(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := result(t, ts, st.ID); got != want {
		t.Fatalf("post-chaos study output differs from local render\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestChaosSubmitRetryLoopObeysContract: a client that follows the
// documented contract — retry transport faults and 429s with backoff,
// treat 4xx as permanent — always lands exactly one accepted study per
// logical submission, even when the first attempts are eaten by the
// fault transport before reaching the server.
func TestChaosSubmitRetryLoopObeysContract(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// ErrRate faults fire before the request is sent, so retrying them
	// cannot double-submit; FailFirst makes the schedule deterministic.
	ft := faultnet.New(7, nil, &faultnet.Rule{Name: "flaky", FailFirst: 3})
	client := &http.Client{Transport: ft}

	var accepted *StudyStatus
	for attempt := 0; attempt < 10; attempt++ {
		resp, err := client.Post(ts.URL+"/v1/studies", "application/json",
			strings.NewReader(`{"frames": 2, "experiments": [{"sweep": "ratio"}]}`))
		if err != nil {
			time.Sleep(time.Millisecond) // contract: back off, retry
			continue
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusAccepted {
			var st StudyStatus
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				t.Fatal(err)
			}
			accepted = &st
			break
		}
		t.Fatalf("unexpected status %d", resp.StatusCode)
	}
	if accepted == nil {
		t.Fatal("submission never got through after the transport healed")
	}
	if got := ft.Injected("flaky"); got != 3 {
		t.Errorf("injected %d faults before healing, want 3", got)
	}
	if st := waitTerminal(t, ts, accepted.ID); st.State != StateDone {
		t.Fatalf("retried submission ended %s: %s", st.State, st.Error)
	}
	// Exactly one study exists — pre-send faults never double-submit.
	resp, err := http.Get(ts.URL + "/v1/studies")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var all []StudyStatus
	if err := json.NewDecoder(resp.Body).Decode(&all); err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 {
		t.Errorf("%d studies after one logical submission, want 1", len(all))
	}
}

// TestChaosServiceFleetFaultSoup extends the chaos suite to the
// service→fleet path: the service fans studies out to in-process dist
// workers through a fault-injecting transport (timeouts, 503 bursts,
// mid-body resets), with the local fallback as the last line. The
// contract: every accepted study reaches done with output
// byte-identical to the local render, every event stream terminates
// with exactly one terminal event, and session quota slots all drain
// back to zero.
func TestChaosServiceFleetFaultSoup(t *testing.T) {
	w1 := httptest.NewServer(dist.NewWorker(dist.WorkerConfig{Workers: 1}).Handler())
	w2 := httptest.NewServer(dist.NewWorker(dist.WorkerConfig{Workers: 1}).Handler())
	t.Cleanup(w1.Close)
	t.Cleanup(w2.Close)
	ft := faultnet.New(23, nil, &faultnet.Rule{
		Name:        "fleet-soup",
		TimeoutRate: 0.1,
		StatusRate:  0.1,
		ResetRate:   0.1,
		ResetAfter:  64,
	})
	svc, ts := newTestServer(t, Config{
		MaxConcurrent: 2,
		Fleet: &FleetConfig{
			Workers:          []string{w1.URL, w2.URL},
			Client:           &http.Client{Transport: ft},
			MaxAttempts:      10,
			BreakerThreshold: 10,
			RetryBaseDelay:   time.Millisecond,
			RetryMaxDelay:    5 * time.Millisecond,
			ProbeInterval:    10 * time.Millisecond,
			HealthInterval:   10 * time.Millisecond,
			FallbackLocal:    true,
			Seed:             23,
		},
	})

	want, err := harness.RenderExperiment(context.Background(), nil, smallGeometrySpec(), 2)
	if err != nil {
		t.Fatal(err)
	}

	const studies = 3
	type outcome struct {
		id     string
		events []StudyEvent
	}
	results := make(chan outcome, studies)
	for i := 0; i < studies; i++ {
		session := fmt.Sprintf("chaos-%d", i)
		go func() {
			req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/studies",
				strings.NewReader(`{"frames": 2, "experiments": [`+smallGeometry+`]}`))
			if err != nil {
				t.Error(err)
				results <- outcome{}
				return
			}
			req.Header.Set("Content-Type", "application/json")
			req.Header.Set("X-Session-ID", session)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Error(err)
				results <- outcome{}
				return
			}
			var st StudyStatus
			decodeErr := json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted || decodeErr != nil {
				t.Errorf("chaos submit: status %d, decode %v", resp.StatusCode, decodeErr)
				results <- outcome{}
				return
			}
			stream := openStream(t, ts, st.ID, 0)
			events, _ := readStream(t, stream.Body, 0)
			results <- outcome{id: st.ID, events: events}
		}()
	}

	for i := 0; i < studies; i++ {
		oc := <-results
		if oc.id == "" {
			continue // already reported via t.Error
		}
		if len(oc.events) == 0 {
			t.Errorf("study %s streamed no events", oc.id)
			continue
		}
		terminals := 0
		for _, ev := range oc.events {
			if terminalEvent(ev.Type) {
				terminals++
			}
		}
		last := oc.events[len(oc.events)-1]
		if terminals != 1 || !terminalEvent(last.Type) {
			t.Errorf("study %s stream: %d terminal events (last %q), want exactly 1 at the end", oc.id, terminals, last.Type)
		}
		if last.Type != EventDone {
			t.Errorf("study %s ended %q under fleet chaos with fallback enabled: %s", oc.id, last.Type, last.Error)
			continue
		}
		if got := result(t, ts, oc.id); got != want {
			t.Errorf("study %s output differs from local render under fleet chaos", oc.id)
		}
	}
	if ft.InjectedTotal() == 0 {
		t.Error("fleet fault soup injected nothing — rates are not exercising the runner")
	}

	// Every session's quota slots drained back.
	svc.sessMu.Lock()
	for id, ss := range svc.sessions {
		ss.mu.Lock()
		if ss.active != 0 {
			t.Errorf("session %s still holds %d active-study slots after drain", id, ss.active)
		}
		ss.mu.Unlock()
	}
	svc.sessMu.Unlock()
}
