package service

// Per-client sessions and the middleware half of admission control.
// A session is identified by the X-Session-ID header (explicit
// multi-tenant clients) or, absent that, the client IP — NAT'd
// clients then share a session, which is the conservative direction
// for quotas. Sessions carry the per-client limits: an active-study
// quota and a token-bucket submission rate. Both reject with 429 +
// Retry-After, the same backpressure contract the queue uses.

import (
	"crypto/subtle"
	"math"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"
)

// session is one client's admission state.
type session struct {
	id string

	mu       sync.Mutex
	lastSeen time.Time
	active   int     // queued+running studies owned by this session
	tokens   float64 // submission-rate bucket
	lastFill time.Time
}

// tryAcquire claims an active-study slot under the quota (0 = no
// quota). The claim is atomic with the check so concurrent submissions
// cannot overshoot.
func (ss *session) tryAcquire(quota int) bool {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if quota > 0 && ss.active >= quota {
		return false
	}
	ss.active++
	return true
}

func (ss *session) release() {
	ss.mu.Lock()
	ss.active--
	ss.mu.Unlock()
}

// allow is a token bucket: rate tokens/second refill, burst capacity,
// one token per submission. rate <= 0 disables limiting.
func (ss *session) allow(rate float64, burst int, now time.Time) bool {
	if rate <= 0 {
		return true
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if !ss.lastFill.IsZero() {
		ss.tokens += now.Sub(ss.lastFill).Seconds() * rate
	}
	ss.lastFill = now
	if cap := float64(burst); ss.tokens > cap {
		ss.tokens = cap
	}
	if ss.tokens < 1 {
		return false
	}
	ss.tokens--
	return true
}

// sessionID extracts the client identity: explicit X-Session-ID wins
// (bounded — it is hostile input), else the remote IP.
func sessionID(r *http.Request) string {
	if id := r.Header.Get("X-Session-ID"); id != "" {
		if len(id) > 128 {
			id = id[:128]
		}
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

func (s *Server) sessionBurst() int {
	if s.cfg.SessionBurst > 0 {
		return s.cfg.SessionBurst
	}
	if s.cfg.SessionRate > 0 {
		return int(math.Max(1, math.Ceil(s.cfg.SessionRate)))
	}
	return 1
}

// resolveSession finds or creates the request's session. It reports
// !ok when the session table is at MaxSessions and no idle session
// could be evicted — a bounded-memory guarantee under identity churn.
func (s *Server) resolveSession(r *http.Request) (ss *session, ok bool) {
	id := sessionID(r)
	now := time.Now()
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	ss = s.sessions[id]
	if ss == nil {
		if len(s.sessions) >= s.cfg.MaxSessions {
			s.pruneSessionsLocked(now, true)
		} else {
			s.pruneSessionsLocked(now, false)
		}
		if len(s.sessions) >= s.cfg.MaxSessions {
			return nil, false
		}
		ss = &session{id: id, tokens: float64(s.sessionBurst()), lastFill: now}
		s.sessions[id] = ss
		mSessionsActive.Inc()
	}
	ss.mu.Lock()
	ss.lastSeen = now
	ss.mu.Unlock()
	return ss, true
}

// pruneSessionsLocked (sessMu held) drops idle sessions past their
// TTL. The scan is O(sessions), so it runs at most once a minute
// unless forced (table full).
func (s *Server) pruneSessionsLocked(now time.Time, force bool) {
	if !force && now.Sub(s.lastSessPrune) < time.Minute {
		return
	}
	s.lastSessPrune = now
	for id, ss := range s.sessions {
		ss.mu.Lock()
		idle := ss.active == 0 && now.Sub(ss.lastSeen) > s.cfg.SessionTTL
		ss.mu.Unlock()
		if idle {
			delete(s.sessions, id)
			mSessionsActive.Dec()
		}
	}
}

// sessionCount reports tracked sessions (healthz).
func (s *Server) sessionCount() int {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	return len(s.sessions)
}

// authMiddleware enforces bearer-token auth when Config.AuthToken is
// set. Liveness and introspection stay open — load balancers drain on
// /v1/healthz and scrapers read /v1/metrics without credentials; both
// expose counts, never study content.
func (s *Server) authMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.cfg.AuthToken == "" {
			next.ServeHTTP(w, r)
			return
		}
		switch r.URL.Path {
		case "/v1/healthz", "/v1/metrics", "/v1/version":
			next.ServeHTTP(w, r)
			return
		}
		tok, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
		if !ok || subtle.ConstantTimeCompare([]byte(tok), []byte(s.cfg.AuthToken)) != 1 {
			w.Header().Set("WWW-Authenticate", `Bearer realm="studies"`)
			writeError(w, http.StatusUnauthorized, "missing or invalid bearer token")
			return
		}
		next.ServeHTTP(w, r)
	})
}

// sessionMiddleware resolves the request's session and applies the
// per-session submission rate limit. The request is deliberately NOT
// cloned here (no context stamping): mux routing mutates the request
// in place to record the matched pattern, and a clone would hide that
// from the outer metrics middleware. handleSubmit re-resolves the
// session — a cheap map hit — for its quota check.
func (s *Server) sessionMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ss, ok := s.resolveSession(r)
		if !ok {
			mRejectQuota.Inc()
			w.Header().Set("Retry-After", s.retryAfterSecs())
			writeError(w, http.StatusTooManyRequests, "session table full (%d sessions)", s.cfg.MaxSessions)
			return
		}
		if r.Method == http.MethodPost && r.URL.Path == "/v1/studies" &&
			!ss.allow(s.cfg.SessionRate, s.sessionBurst(), time.Now()) {
			mRejectRate.Inc()
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests,
				"session %q over its submission rate (%g/s, burst %d)",
				ss.id, s.cfg.SessionRate, s.sessionBurst())
			return
		}
		next.ServeHTTP(w, r)
	})
}
