package service

// Tests of the /v1/studies/{id}/events SSE stream: framing, terminal
// events, Last-Event-ID resume, heartbeats, and the decoupling
// contract (slow or vanished consumers never affect the study).

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// openStream opens the SSE stream for a study, resuming after lastID
// when nonzero. The response body is watchdog-closed after 60s so a
// stream that never terminates fails the test instead of hanging it.
func openStream(t *testing.T, ts *httptest.Server, id string, lastID int) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/studies/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastID > 0 {
		req.Header.Set("Last-Event-ID", strconv.Itoa(lastID))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("events: status %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events: Content-Type %q, want text/event-stream", ct)
	}
	timer := time.AfterFunc(60*time.Second, func() { resp.Body.Close() })
	t.Cleanup(func() { timer.Stop(); resp.Body.Close() })
	return resp
}

// readStream decodes SSE frames until a terminal event, max events
// (0 = unlimited), or EOF. Heartbeat comments are counted, not
// returned.
func readStream(t *testing.T, body io.Reader, max int) (events []StudyEvent, heartbeats int) {
	t.Helper()
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, ":"):
			heartbeats++
		case strings.HasPrefix(line, "data:"):
			data = append(data, strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " ")...)
		case line == "":
			if len(data) == 0 {
				continue
			}
			var ev StudyEvent
			if err := json.Unmarshal(data, &ev); err != nil {
				t.Fatalf("bad SSE frame %q: %v", data, err)
			}
			data = nil
			events = append(events, ev)
			if terminalEvent(ev.Type) || (max > 0 && len(events) >= max) {
				return events, heartbeats
			}
		}
	}
	return events, heartbeats
}

// TestServiceEventStreamEndsWithDone: a live stream carries one
// experiment event per experiment (outputs byte-identical to the
// result endpoint, in manifest order), densely-numbered seqs, and
// exactly one terminal done event.
func TestServiceEventStreamEndsWithDone(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	st := submit(t, ts, `{"frames": 2, "experiments": [`+smallGeometry+`, {"sweep": "ratio"}]}`)
	resp := openStream(t, ts, st.ID, 0)
	events, _ := readStream(t, resp.Body, 0)

	if len(events) == 0 {
		t.Fatal("stream delivered no events")
	}
	var outputs []string
	terminals := 0
	for i, ev := range events {
		if ev.Seq != i+1 {
			t.Fatalf("event %d has seq %d — seqs must be dense from 1", i, ev.Seq)
		}
		switch ev.Type {
		case EventExperiment:
			if want := len(outputs); ev.ExperimentIndex != want {
				t.Fatalf("experiment event for index %d arrived before index %d", ev.ExperimentIndex, want)
			}
			outputs = append(outputs, ev.Output)
		case EventDone, EventError:
			terminals++
			if i != len(events)-1 {
				t.Fatalf("terminal event at position %d of %d — stream continued past it", i, len(events))
			}
		}
	}
	if terminals != 1 || events[len(events)-1].Type != EventDone {
		t.Fatalf("want exactly one terminal done event, got %d terminals (last %q)",
			terminals, events[len(events)-1].Type)
	}
	if got, want := strings.Join(outputs, ""), result(t, ts, st.ID); got != want {
		t.Fatalf("streamed outputs differ from result endpoint:\n--- stream ---\n%s\n--- result ---\n%s", got, want)
	}
}

// TestServiceEventStreamResume: a reconnect with Last-Event-ID replays
// only the missed suffix — no duplicates, no gaps, same terminal.
func TestServiceEventStreamResume(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	st := submit(t, ts, `{"frames": 2, "experiments": [`+smallGeometry+`, {"sweep": "ratio"}]}`)
	waitTerminal(t, ts, st.ID)

	first := openStream(t, ts, st.ID, 0)
	head, _ := readStream(t, first.Body, 2)
	first.Body.Close() // client vanishes mid-stream
	if len(head) != 2 {
		t.Fatalf("read %d events before disconnect, want 2", len(head))
	}

	second := openStream(t, ts, st.ID, head[len(head)-1].Seq)
	tail, _ := readStream(t, second.Body, 0)
	if len(tail) == 0 {
		t.Fatal("resumed stream delivered nothing")
	}
	for i, ev := range tail {
		if want := head[len(head)-1].Seq + i + 1; ev.Seq != want {
			t.Fatalf("resumed event %d has seq %d, want %d (duplicate or gap)", i, ev.Seq, want)
		}
	}
	if last := tail[len(tail)-1]; last.Type != EventDone {
		t.Fatalf("resumed stream ended with %q, want done", last.Type)
	}

	// The full log equals head + tail.
	full := openStream(t, ts, st.ID, 0)
	all, _ := readStream(t, full.Body, 0)
	if len(all) != len(head)+len(tail) {
		t.Fatalf("full stream has %d events; head(%d)+tail(%d) disagree", len(all), len(head), len(tail))
	}
}

// TestServiceEventStreamDisconnectDoesNotCancel: a consumer that
// vanishes takes nothing with it — the study runs to done and the poll
// API stays authoritative.
func TestServiceEventStreamDisconnectDoesNotCancel(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	st := submit(t, ts, `{"frames": 2, "experiments": [`+smallGeometry+`]}`)

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/studies/"+st.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	cancel() // sever the stream as rudely as a dead client
	resp.Body.Close()

	if fin := waitTerminal(t, ts, st.ID); fin.State != StateDone {
		t.Fatalf("study after stream disconnect: state %q, want done", fin.State)
	}
	if out := result(t, ts, st.ID); out == "" {
		t.Fatal("empty result after stream disconnect")
	}
}

// TestServiceEventStreamSlowConsumer: a subscriber that never reads
// must not stall the study — the event log is buffered server-side.
// Once the consumer finally drains, it still gets the complete stream.
func TestServiceEventStreamSlowConsumer(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	st := submit(t, ts, `{"frames": 2, "experiments": [`+smallGeometry+`]}`)
	resp := openStream(t, ts, st.ID, 0)
	// Do not read resp.Body at all while the study runs.
	if fin := waitTerminal(t, ts, st.ID); fin.State != StateDone {
		t.Fatalf("study with a stalled subscriber: state %q, want done", fin.State)
	}
	events, _ := readStream(t, resp.Body, 0)
	if len(events) == 0 || events[len(events)-1].Type != EventDone {
		t.Fatalf("late drain got %d events (last %v), want full log ending in done", len(events), events)
	}
}

// TestServiceEventStreamHeartbeats: an idle stream carries comment
// heartbeats so proxies and clients can tell silence from death.
func TestServiceEventStreamHeartbeats(t *testing.T) {
	_, ts := newTestServer(t, Config{Heartbeat: 10 * time.Millisecond})
	st := submit(t, ts, `{"frames": 2, "experiments": [`+smallGeometry+`]}`)
	resp := openStream(t, ts, st.ID, 0)
	_, heartbeats := readStream(t, resp.Body, 0)
	if heartbeats == 0 {
		t.Error("no heartbeats on a stream that waited for a running study")
	}
}

// TestServiceEventStreamRejectsBadCursor: a malformed Last-Event-ID is
// a client error, not a silent restart from zero.
func TestServiceEventStreamRejectsBadCursor(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	st := submit(t, ts, `{"frames": 2, "experiments": [`+smallGeometry+`]}`)
	waitTerminal(t, ts, st.ID)

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/studies/"+st.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", "not-a-number")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad Last-Event-ID: status %d, want 400", resp.StatusCode)
	}

	if resp, err := http.Get(ts.URL + "/v1/studies/no-such-study/events"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown study events: status %d, want 404", resp.StatusCode)
		}
	}
}

// TestServiceEventStreamCancelIsTerminalError: cancelling a study ends
// its stream with exactly one terminal error event naming the
// cancelled state.
func TestServiceEventStreamCancelIsTerminalError(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 1})
	// A running blocker keeps the victim queued so the cancel always
	// lands before any experiment completes.
	submit(t, ts, `{"frames": 2, "experiments": [`+smallGeometry+`]}`)
	victim := submit(t, ts, `{"frames": 2, "experiments": [`+smallGeometry+`]}`)

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/studies/"+victim.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	stream := openStream(t, ts, victim.ID, 0)
	events, _ := readStream(t, stream.Body, 0)
	if len(events) == 0 {
		t.Fatal("cancelled study streamed no events")
	}
	last := events[len(events)-1]
	if last.Type != EventError || last.State != StateCancelled {
		t.Fatalf("cancelled study's terminal event = %+v, want error/cancelled", last)
	}
	for _, ev := range events[:len(events)-1] {
		if terminalEvent(ev.Type) {
			t.Fatalf("extra terminal event before the end: %+v", ev)
		}
	}
}
