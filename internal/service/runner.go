package service

// The Runner seam: the service renders experiments through an
// interface, not a hard-wired call, so execution is pluggable. Two
// implementations exist — the in-process farm path the service always
// had, and the fleet path that fans replayed geometry/policy sweeps
// out to dist workers with the coordinator's full self-healing
// machinery (retries, breakers, re-admission, optional local
// fallback). Both produce byte-identical reports for the same spec;
// the fleet path additionally streams per-shard results into the
// study's event log as they complete.

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/dist"
	"repro/internal/farm"
	"repro/internal/harness"
	"repro/internal/obs"
)

// EventSink receives a study's progress events. Runners may call it
// from internal goroutines; it is never nil and must be cheap (the
// service's sink appends to a buffered per-job log).
type EventSink func(StudyEvent)

// Runner renders one experiment. Implementations must return the same
// bytes for the same (spec, frames, study strategy) — the execution
// backend is an operational choice, never an output one.
type Runner interface {
	Render(ctx context.Context, pool *farm.Pool, e harness.ExperimentSpec, frames int, sink EventSink) (string, error)
}

// localRunner is the in-process path: harness.RenderExperiment on the
// shared farm pool. It emits no shard events — the farm's fan-out is
// internal to the experiment.
type localRunner struct{}

func (localRunner) Render(ctx context.Context, pool *farm.Pool, e harness.ExperimentSpec, frames int, _ EventSink) (string, error) {
	return harness.RenderExperiment(ctx, pool, e, frames)
}

// FleetConfig points the service at a dist worker fleet. Zero-valued
// tuning fields inherit the dist.Coordinator defaults.
type FleetConfig struct {
	// Workers are the mp4worker base URLs. At least one is required.
	Workers []string
	// Client overrides the coordinator's HTTP client (fault-injection
	// tests; custom timeouts).
	Client *http.Client
	// Coordinator tuning, forwarded verbatim (see dist.Coordinator).
	ShipFullTrace                 bool
	UploadTimeout, ReplayTimeout  time.Duration
	MaxAttempts                   int
	RetryBaseDelay, RetryMaxDelay time.Duration
	BreakerThreshold              int
	BreakerCooldown               time.Duration
	ProbeInterval, ProbeTimeout   time.Duration
	DisableReadmission            bool
	// FallbackLocal rescues shards the fleet cannot deliver by
	// replaying them in-process — a study then degrades to local speed
	// instead of failing.
	FallbackLocal bool
	// Seed drives the coordinator's retry jitter.
	Seed uint64
	// HealthInterval paces the service's fleet liveness monitor (the
	// healthz alive/dead report). <= 0 means 15s.
	HealthInterval time.Duration
}

// coordinator builds a fresh Coordinator per sweep: coordinators carry
// per-sweep callback state (OnShard), so they are never shared.
func (fc *FleetConfig) coordinator() *dist.Coordinator {
	return &dist.Coordinator{
		Workers:            append([]string(nil), fc.Workers...),
		Client:             fc.Client,
		ShipFullTrace:      fc.ShipFullTrace,
		UploadTimeout:      fc.UploadTimeout,
		ReplayTimeout:      fc.ReplayTimeout,
		MaxAttempts:        fc.MaxAttempts,
		RetryBaseDelay:     fc.RetryBaseDelay,
		RetryMaxDelay:      fc.RetryMaxDelay,
		BreakerThreshold:   fc.BreakerThreshold,
		BreakerCooldown:    fc.BreakerCooldown,
		ProbeInterval:      fc.ProbeInterval,
		ProbeTimeout:       fc.ProbeTimeout,
		DisableReadmission: fc.DisableReadmission,
		FallbackLocal:      fc.FallbackLocal,
		Seed:               fc.Seed,
	}
}

func (fc *FleetConfig) healthInterval() time.Duration {
	if fc.HealthInterval > 0 {
		return fc.HealthInterval
	}
	return 15 * time.Second
}

// fleetRunner fans replayed geometry/policy sweeps out to the worker
// fleet; every other experiment shape (tables, figures, ablations,
// live re-encode sweeps) delegates to the local path unchanged. The
// report is assembled with the same SweepTitle/GeometrySweepReport
// seam renderSweep uses, over points merged in the same shard order,
// so fleet output is byte-identical to local output.
type fleetRunner struct {
	cfg     FleetConfig
	local   localRunner
	monitor *fleetMonitor // nil-safe stats hook
}

func (f *fleetRunner) Render(ctx context.Context, pool *farm.Pool, e harness.ExperimentSpec, frames int, sink EventSink) (string, error) {
	if e.Sweep != "geometry" && e.Sweep != "policy" {
		return f.local.Render(ctx, pool, e, frames, sink)
	}
	if !harness.StudyFrom(ctx).ReplayEnabled() {
		// A replay-disabled study asked for the live re-encode
		// baseline; the fleet only replays.
		return f.local.Render(ctx, pool, e, frames, sink)
	}
	l1s, l2Sizes, err := e.SweepAxes()
	if err != nil {
		return "", err
	}
	coord := f.cfg.coordinator()
	// The study's memo (the server-wide one, attached at submission)
	// rides into the coordinator: memo-covered cells never dispatch,
	// and every replayed cell is memoized for the next study. Shard
	// events for memo-served cells carry Worker == dist.MemoWorker.
	coord.Memo = harness.StudyFrom(ctx).Memo()
	coord.OnShard = func(ev dist.ShardEvent) {
		sink(StudyEvent{Type: EventShard, Shard: &ShardProgress{
			Index:  ev.Shard.Index,
			Worker: ev.Worker,
			Done:   ev.Done,
			Total:  ev.Total,
			Points: ev.Points,
		}})
	}
	// The same workload renderSweep simulates (CIF), so the fleet and
	// local paths replay the identical capture.
	wl := harness.Workload{W: 352, H: 288, Frames: frames}
	points, stats, err := coord.GeometrySweepWithStats(ctx, wl, l1s, l2Sizes)
	f.monitor.record(stats)
	if err != nil {
		return "", fmt.Errorf("fleet sweep: %w", err)
	}
	harness.StudyFrom(ctx).CountMemo(uint64(stats.MemoHits), uint64(stats.MemoMisses))
	return harness.GeometrySweepReport(harness.SweepTitle(e.Sweep, true), points), nil
}

// Fleet liveness gauge, delta-maintained like every service gauge so
// concurrent Servers compose.
var mFleetAlive = obs.Default().Gauge("service_fleet_workers_alive")

// fleetMonitor tracks worker liveness for healthz: a background loop
// probes each worker's /v1/healthz on HealthInterval, and sweep stats
// flowing back through the runner mark protocol violators barred.
type fleetMonitor struct {
	cfg    FleetConfig
	client *http.Client

	mu     sync.Mutex
	alive  map[string]bool
	barred map[string]bool
	aliveN int // last gauge contribution
}

func newFleetMonitor(cfg FleetConfig) *fleetMonitor {
	client := cfg.Client
	if client == nil {
		client = http.DefaultClient
	}
	return &fleetMonitor{
		cfg:    cfg,
		client: client,
		alive:  map[string]bool{},
		barred: map[string]bool{},
	}
}

// run probes until ctx dies, then returns the gauge contribution.
func (m *fleetMonitor) run(ctx context.Context) {
	m.probeAll(ctx)
	ticker := time.NewTicker(m.cfg.healthInterval())
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			m.mu.Lock()
			mFleetAlive.Add(-int64(m.aliveN))
			m.aliveN = 0
			m.mu.Unlock()
			return
		case <-ticker.C:
			m.probeAll(ctx)
		}
	}
}

func (m *fleetMonitor) probeAll(ctx context.Context) {
	results := make([]bool, len(m.cfg.Workers))
	var wg sync.WaitGroup
	for i, base := range m.cfg.Workers {
		wg.Add(1)
		go func(i int, base string) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, 5*time.Second)
			defer cancel()
			req, err := http.NewRequestWithContext(pctx, http.MethodGet, base+"/v1/healthz", nil)
			if err != nil {
				return
			}
			resp, err := m.client.Do(req)
			if err != nil {
				return
			}
			resp.Body.Close()
			results[i] = resp.StatusCode == http.StatusOK
		}(i, base)
	}
	wg.Wait()
	m.mu.Lock()
	aliveN := 0
	for i, base := range m.cfg.Workers {
		m.alive[base] = results[i]
		if results[i] {
			aliveN++
		}
	}
	mFleetAlive.Add(int64(aliveN - m.aliveN))
	m.aliveN = aliveN
	m.mu.Unlock()
}

// record folds one sweep's stats into the liveness picture. Nil-safe:
// a fleetRunner without a monitor (tests) records nowhere.
func (m *fleetMonitor) record(stats dist.SweepStats) {
	if m == nil {
		return
	}
	m.mu.Lock()
	for _, w := range stats.BarredWorkers {
		m.barred[w] = true
	}
	m.mu.Unlock()
}

// snapshot returns worker URLs by current liveness. Barred workers are
// reported separately (and excluded from dead) — they answered probes
// but broke the protocol, which drains differently than a crash.
func (m *fleetMonitor) snapshot() (alive, dead, barred []string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, base := range m.cfg.Workers {
		switch {
		case m.barred[base]:
			barred = append(barred, base)
		case m.alive[base]:
			alive = append(alive, base)
		default:
			dead = append(dead, base)
		}
	}
	return alive, dead, barred
}
