package service

// The study event log and its SSE stream. Every job keeps an
// append-only, densely-numbered event log; GET /v1/studies/{id}/events
// serves it as text/event-stream. Because the log is buffered on the
// job, the stream is decoupled from execution: a slow or disconnected
// consumer never stalls the study, and a reconnecting client resumes
// exactly where it left off via Last-Event-ID.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/harness"
)

// Event types, in StudyEvent.Type. Every stream ends with exactly one
// terminal event: EventDone for a study that rendered everything, or
// EventError for one that failed or was cancelled.
const (
	EventShard      = "shard"      // one fleet shard's sweep points
	EventExperiment = "experiment" // one experiment's rendered output
	EventDone       = "done"       // terminal: study done
	EventError      = "error"      // terminal: study failed/cancelled
)

// StudyEvent is one entry of a study's ordered event log — the unit of
// the SSE stream. Seq starts at 1 and is dense, and doubles as the SSE
// event id, so a reconnect with Last-Event-ID: N replays exactly the
// events with Seq > N.
type StudyEvent struct {
	Seq  int       `json:"seq"`
	Type string    `json:"type"`
	Time time.Time `json:"time"`
	// Experiment and ExperimentIndex attribute shard/experiment events
	// to their experiment (index into StudySpec.Experiments).
	Experiment      string `json:"experiment,omitempty"`
	ExperimentIndex int    `json:"experiment_index,omitempty"`
	// Shard carries a fleet shard's results (EventShard only).
	Shard *ShardProgress `json:"shard,omitempty"`
	// Output is the experiment's rendered text (EventExperiment only).
	Output string `json:"output,omitempty"`
	// State and Error describe the terminal event: State is the job's
	// final state; Error its diagnostic for EventError.
	State string `json:"state,omitempty"`
	Error string `json:"error,omitempty"`
}

// ShardProgress is one completed fleet shard: which worker served it,
// the stream position, and the shard's sweep points in merge order.
// Appending Points across a study's shard events reproduces the
// experiment's full point list exactly.
type ShardProgress struct {
	Index  int                     `json:"index"`
	Worker string                  `json:"worker"`
	Done   int                     `json:"done"`
	Total  int                     `json:"total"`
	Points []harness.GeometryPoint `json:"points"`
}

func terminalEvent(typ string) bool { return typ == EventDone || typ == EventError }

// appendEventLocked (j.mu held) stamps and appends one event. After a
// terminal event the log is sealed — late emissions (a racing cancel
// plus a failure, say) are dropped so every stream ends with exactly
// one terminal event.
func (j *job) appendEventLocked(ev StudyEvent) {
	if j.eventsDone {
		return
	}
	ev.Seq = len(j.events) + 1
	ev.Time = time.Now()
	if terminalEvent(ev.Type) {
		j.eventsDone = true
	}
	j.events = append(j.events, ev)
	j.notifyLocked()
}

func (j *job) appendEvent(ev StudyEvent) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.appendEventLocked(ev)
}

// sinkFor returns the EventSink for experiment i: every runner
// progress event is stamped with the experiment's identity and
// appended to the job's log.
func (j *job) sinkFor(i int, label string) EventSink {
	return func(ev StudyEvent) {
		ev.Experiment = label
		ev.ExperimentIndex = i
		j.appendEvent(ev)
	}
}

// writeSSE frames one event. The JSON body is one line (encoding/json
// escapes newlines), so a single data: field carries it.
func writeSSE(w io.Writer, ev StudyEvent) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
	return err
}

// handleEvents streams a study's event log as Server-Sent Events:
// per-shard fleet results and per-experiment outputs as they complete,
// heartbeat comments while idle, and a terminal done/error event after
// which the stream closes. Resume with the standard Last-Event-ID
// header (or ?last_event_id=, for curl convenience): only events with
// Seq greater than it are (re)sent. Disconnecting cancels nothing
// server-side — the study runs on and the poll API stays authoritative.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "response writer cannot stream")
		return
	}
	cursor := 0
	lastID := r.Header.Get("Last-Event-ID")
	if lastID == "" {
		lastID = r.URL.Query().Get("last_event_id")
	}
	if lastID != "" {
		n, err := strconv.Atoi(lastID)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad Last-Event-ID %q", lastID)
			return
		}
		cursor = n
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no") // proxies must not buffer the stream
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	mStreamSubs.Inc()
	defer mStreamSubs.Dec()

	heartbeat := time.NewTicker(s.heartbeat())
	defer heartbeat.Stop()
	for {
		j.mu.Lock()
		var pending []StudyEvent
		if cursor < len(j.events) {
			pending = append(pending, j.events[cursor:]...)
		}
		updated := j.updated
		j.mu.Unlock()

		for _, ev := range pending {
			if err := writeSSE(w, ev); err != nil {
				return
			}
			cursor = ev.Seq
		}
		if len(pending) > 0 {
			flusher.Flush()
			if terminalEvent(pending[len(pending)-1].Type) {
				return
			}
		}
		select {
		case <-updated:
		case <-heartbeat.C:
			if _, err := io.WriteString(w, ": heartbeat\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}
