// Package service is the study front-end: an HTTP/JSON API that
// accepts experiment submissions (the same experiment specs mp4study's
// batch manifests use), validates them at the door, executes them on a
// bounded experiment farm, and serves job polling and incremental
// result streaming to many concurrent clients.
//
// Each submission becomes one job with its own harness.Study, so the
// capture/replay strategy and the trace-usage accounting are scoped to
// the request — concurrent clients can run different strategies in one
// process without racing (the bug class the Study refactor removed).
//
// API (see README "Distributed architecture" for the full contract):
//
//	POST   /v1/studies           submit a StudySpec        → 202 StudyStatus
//	GET    /v1/studies           list all jobs             → 200 []StudyStatus
//	GET    /v1/studies/{id}      poll one job              → 200 StudyStatus
//	GET    /v1/studies/{id}/result  stream outputs in order as they
//	                             complete (text/plain, chunked)
//	DELETE /v1/studies/{id}      cancel a queued/running job
//	GET    /v1/healthz           liveness + queue depth
//
// Client backoff contract: the server signals overload, never hides
// it. When the pending-study queue is full, POST /v1/studies returns
// 429 with a Retry-After header (delay in seconds, from
// Config.RetryAfter); clients should wait at least that long before
// resubmitting, and double the wait on consecutive 429s (the
// internal/dist coordinator treats 429 as transient and retries under
// exponential backoff for exactly this reason). 5xx responses are
// likewise safe to retry with backoff. Transport errors are ambiguous:
// a connection refused or timeout before the request was sent is safe
// to retry, but a connection lost while reading the 202 response means
// the study may already be queued — clients that must not duplicate
// work should GET /v1/studies and reconcile before resubmitting. 4xx
// validation errors are permanent — retrying an invalid spec unchanged
// will never succeed.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/farm"
	"repro/internal/harness"
	"repro/internal/obs"
)

// Study lifecycle metrics. The queued/running gauges move by deltas so
// several Servers in one process (tests, embedded services) compose;
// the outcome counter is one family split by a label, so the terminal
// states sum to submissions that have finished.
var (
	mStudiesSubmitted = obs.Default().Counter("service_studies_submitted_total")
	mStudiesQueued    = obs.Default().Gauge("service_studies_queued")
	mStudiesRunning   = obs.Default().Gauge("service_studies_running")
	mStudiesDone      = obs.Default().Counter(obs.Label("service_studies_finished_total", "outcome", "done"))
	mStudiesFailed    = obs.Default().Counter(obs.Label("service_studies_finished_total", "outcome", "failed"))
	mStudiesCancelled = obs.Default().Counter(obs.Label("service_studies_finished_total", "outcome", "cancelled"))
	mExperimentsDone  = obs.Default().Counter("service_experiments_rendered_total")
	mStudySeconds     = obs.Default().Histogram("service_study_seconds", nil)
)

var serviceLog = obs.Logger("service")

// StudySpec is one submission: an experiment list plus run settings.
// It is a superset of mp4study's manifest schema, so a manifest file
// can be POSTed unchanged.
type StudySpec struct {
	Frames int `json:"frames,omitempty"`
	// Parallel is accepted for manifest compatibility but ignored: the
	// server owns its farm sizing.
	Parallel    int                      `json:"parallel,omitempty"`
	Replay      *bool                    `json:"replay,omitempty"` // default true
	Experiments []harness.ExperimentSpec `json:"experiments"`
}

// Validate rejects malformed submissions before any simulation work.
func (s StudySpec) Validate() error {
	if len(s.Experiments) == 0 {
		return errors.New("no experiments")
	}
	if s.Frames < 0 || s.Frames > 10000 {
		return fmt.Errorf("frames %d out of range [0, 10000]", s.Frames)
	}
	for i, e := range s.Experiments {
		if err := e.Validate(); err != nil {
			return fmt.Errorf("experiment %d: %w", i, err)
		}
	}
	return nil
}

// Job states.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// StudyStatus is the poll response for one job.
type StudyStatus struct {
	ID          string             `json:"id"`
	State       string             `json:"state"`
	Submitted   time.Time          `json:"submitted"`
	Started     *time.Time         `json:"started,omitempty"`
	Finished    *time.Time         `json:"finished,omitempty"`
	Done        int                `json:"done"`  // experiments completed
	Total       int                `json:"total"` // experiments submitted
	Error       string             `json:"error,omitempty"`
	Experiments []string           `json:"experiments"`
	TraceUsage  harness.TraceUsage `json:"trace_usage"`
}

// job is the server-side state of one submission.
type job struct {
	id     string
	spec   StudySpec
	study  *harness.Study
	cancel context.CancelFunc

	mu        sync.Mutex
	updated   chan struct{} // closed and replaced on every state change
	state     string
	submitted time.Time
	started   *time.Time
	finished  *time.Time
	outputs   []string
	done      int
	errMsg    string
}

func (j *job) notifyLocked() {
	close(j.updated)
	j.updated = make(chan struct{})
}

func (j *job) setState(state string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateCancelled && state != StateCancelled {
		return // cancellation wins
	}
	j.state = state
	now := time.Now()
	switch state {
	case StateRunning:
		j.started = &now
	case StateDone, StateFailed, StateCancelled:
		j.finished = &now
	}
	j.notifyLocked()
}

func (j *job) setOutput(i int, out string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.outputs[i] = out
	j.done = i + 1
	j.notifyLocked()
}

func (j *job) fail(err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateCancelled {
		return
	}
	j.state = StateFailed
	j.errMsg = err.Error()
	now := time.Now()
	j.finished = &now
	j.notifyLocked()
}

func (j *job) status() StudyStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := StudyStatus{
		ID:         j.id,
		State:      j.state,
		Submitted:  j.submitted,
		Started:    j.started,
		Finished:   j.finished,
		Done:       j.done,
		Total:      len(j.spec.Experiments),
		Error:      j.errMsg,
		TraceUsage: j.study.Usage(),
	}
	for _, e := range j.spec.Experiments {
		st.Experiments = append(st.Experiments, e.Label())
	}
	return st
}

// Config parameterizes a Server.
type Config struct {
	// Workers sizes the farm pool experiments fan out on. <= 0 means
	// GOMAXPROCS.
	Workers int
	// MaxConcurrent bounds the studies simulating at once; further
	// submissions queue. <= 0 means 2.
	MaxConcurrent int
	// MaxQueued bounds accepted-but-unfinished studies; beyond it,
	// submissions are rejected with 429. <= 0 means 64.
	MaxQueued int
	// MaxHistory bounds retained terminal (done/failed/cancelled)
	// studies; the oldest beyond it are dropped — their status and
	// outputs become 404 — so a long-lived server does not grow
	// without bound. <= 0 means 256.
	MaxHistory int
	// RetryAfter is the delay advertised in the Retry-After header of
	// 429 queue-full responses. <= 0 means 5s.
	RetryAfter time.Duration
}

// Server executes study submissions on a bounded farm pool. Create
// with New, mount via Handler, stop with Shutdown.
type Server struct {
	cfg    Config
	pool   *farm.Pool
	sem    chan struct{} // MaxConcurrent tokens
	base   context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string
	nextID int
	closed bool
	wg     sync.WaitGroup
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 2
	}
	if cfg.MaxQueued <= 0 {
		cfg.MaxQueued = 64
	}
	if cfg.MaxHistory <= 0 {
		cfg.MaxHistory = 256
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 5 * time.Second
	}
	base, cancel := context.WithCancel(context.Background())
	return &Server{
		cfg:    cfg,
		pool:   farm.New(farm.Config{Workers: cfg.Workers}),
		sem:    make(chan struct{}, cfg.MaxConcurrent),
		base:   base,
		cancel: cancel,
		jobs:   map[string]*job{},
	}
}

// Handler returns the HTTP handler for the service API, wrapped in the
// obs middleware chain (request logging, in-flight gauge, per-route
// request counts and latency) and exposing the process metrics registry
// at /v1/metrics (Prometheus text, or JSON by content negotiation) plus
// the build identity at /v1/version.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/studies", s.handleSubmit)
	mux.HandleFunc("GET /v1/studies", s.handleList)
	mux.HandleFunc("GET /v1/studies/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/studies/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /v1/studies/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	mux.Handle("GET /v1/metrics", obs.Default().Handler())
	mux.Handle("GET /v1/version", obs.VersionHandler())
	return obs.Chain(mux,
		obs.RequestLog(serviceLog),
		obs.HTTPMetrics("service", nil),
	)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec StudySpec
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "invalid study spec: %v", err)
		return
	}
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "invalid study spec: %v", err)
		return
	}

	replay := spec.Replay == nil || *spec.Replay
	j := &job{
		spec:      spec,
		study:     harness.NewStudy(replay),
		state:     StateQueued,
		submitted: time.Now(),
		updated:   make(chan struct{}),
		outputs:   make([]string, len(spec.Experiments)),
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	s.pruneLocked()
	active := 0
	for _, id := range s.order {
		switch s.jobs[id].status().State {
		case StateQueued, StateRunning:
			active++
		}
	}
	if active >= s.cfg.MaxQueued {
		s.mu.Unlock()
		// Part of the client backoff contract (see package doc): tell
		// the client when resubmitting is worth trying.
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
		writeError(w, http.StatusTooManyRequests, "queue full (%d studies pending)", active)
		return
	}
	s.nextID++
	j.id = fmt.Sprintf("study-%04d", s.nextID)
	jobCtx, jobCancel := context.WithCancel(s.base)
	j.cancel = jobCancel
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.wg.Add(1)
	s.mu.Unlock()

	mStudiesSubmitted.Inc()
	mStudiesQueued.Inc()
	serviceLog.Info("study submitted",
		"id", j.id, "experiments", len(spec.Experiments), "frames", spec.Frames)
	go s.run(jobCtx, j)
	writeJSON(w, http.StatusAccepted, j.status())
}

// run executes one job: wait for a concurrency token, then render the
// experiments in order (each experiment fans out internally on the
// shared pool), publishing outputs as they complete.
func (s *Server) run(ctx context.Context, j *job) {
	defer s.wg.Done()
	defer j.cancel()
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-ctx.Done():
		mStudiesQueued.Dec()
		mStudiesCancelled.Inc()
		j.fail(fmt.Errorf("cancelled while queued"))
		return
	}
	mStudiesQueued.Dec()
	mStudiesRunning.Inc()
	defer mStudiesRunning.Dec()
	start := time.Now()
	j.setState(StateRunning)
	serviceLog.Info("study started", "id", j.id, "experiments", len(j.spec.Experiments))
	ctx = harness.WithStudy(ctx, j.study)
	for i, e := range j.spec.Experiments {
		out, err := harness.RenderExperiment(ctx, s.pool, e, j.spec.Frames)
		if err != nil {
			if ctx.Err() != nil {
				mStudiesCancelled.Inc()
				serviceLog.Info("study cancelled", "id", j.id, "during", e.Label())
				j.fail(fmt.Errorf("cancelled during %s", e.Label()))
			} else {
				mStudiesFailed.Inc()
				serviceLog.Warn("study failed", "id", j.id, "experiment", e.Label(), "err", err)
				j.fail(fmt.Errorf("%s: %w", e.Label(), err))
			}
			return
		}
		mExperimentsDone.Inc()
		j.setOutput(i, out)
	}
	mStudiesDone.Inc()
	mStudySeconds.ObserveSince(start)
	serviceLog.Info("study done", "id", j.id, "elapsed", time.Since(start))
	j.setState(StateDone)
}

// pruneLocked drops the oldest terminal jobs beyond MaxHistory so a
// long-lived server's job table stays bounded. Caller holds s.mu.
func (s *Server) pruneLocked() {
	terminal := 0
	for _, id := range s.order {
		switch s.jobs[id].status().State {
		case StateDone, StateFailed, StateCancelled:
			terminal++
		}
	}
	if terminal <= s.cfg.MaxHistory {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		st := s.jobs[id].status().State
		isTerminal := st == StateDone || st == StateFailed || st == StateCancelled
		if isTerminal && terminal > s.cfg.MaxHistory {
			delete(s.jobs, id)
			terminal--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *job {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, "no study %q", r.PathValue("id"))
	}
	return j
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]StudyStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].status())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j := s.lookup(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.status())
	}
}

// handleResult streams the job's outputs in experiment order, flushing
// each as it completes — a client can follow a long study live. If the
// study fails or is cancelled mid-stream, a final diagnostic line ends
// the body (the HTTP status is already committed by then; poll
// /v1/studies/{id} for machine-readable state).
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	flusher, _ := w.(http.Flusher)
	for i := 0; ; {
		j.mu.Lock()
		state, done, errMsg := j.state, j.done, j.errMsg
		var pending []string
		for ; i < done; i++ {
			pending = append(pending, j.outputs[i])
		}
		updated := j.updated
		j.mu.Unlock()

		for _, out := range pending {
			io.WriteString(w, out)
		}
		if len(pending) > 0 && flusher != nil {
			flusher.Flush()
		}
		switch state {
		case StateDone:
			if i >= done {
				return
			}
		case StateFailed, StateCancelled:
			fmt.Fprintf(w, "study %s: %s\n", state, errMsg)
			return
		}
		select {
		case <-updated:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	terminal := j.state == StateDone || j.state == StateFailed || j.state == StateCancelled
	if !terminal {
		j.state = StateCancelled
		j.errMsg = "cancelled by client"
		now := time.Now()
		j.finished = &now
		j.notifyLocked()
	}
	j.mu.Unlock()
	if !terminal {
		j.cancel()
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	queued, running := 0, 0
	for _, id := range s.order {
		switch s.jobs[id].status().State {
		case StateQueued:
			queued++
		case StateRunning:
			running++
		}
	}
	closed := s.closed
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":       !closed,
		"queued":   queued,
		"running":  running,
		"workers":  s.pool.Workers(),
		"shutdown": closed,
		"version":  obs.Version(),
	})
}

// Shutdown stops the server gracefully: new submissions are rejected
// immediately, running and queued studies get until ctx's deadline to
// finish, then everything still in flight is cancelled. It returns nil
// if all work drained, or ctx's error if the deadline forced
// cancellation.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		s.cancel() // cancel every job context
		<-drained
		return ctx.Err()
	}
}
