// Package service is the study front door: an HTTP/JSON API that
// accepts experiment submissions (the same experiment specs mp4study's
// batch manifests use), validates them at the door, schedules them
// through priority admission control, executes them on a bounded
// experiment farm or fans them out to a dist worker fleet (the Runner
// seam — see runner.go), and serves polling, incremental result
// streaming, and a per-study SSE event stream to many concurrent
// clients.
//
// Each submission becomes one job with its own harness.Study, so the
// capture/replay strategy and the trace-usage accounting are scoped to
// the request — concurrent clients can run different strategies in one
// process without racing (the bug class the Study refactor removed).
//
// API (see README "Study service" for the full contract):
//
//	POST   /v1/studies           submit a StudySpec        → 202 StudyStatus
//	GET    /v1/studies           list all jobs             → 200 []StudyStatus
//	GET    /v1/studies/{id}      poll one job              → 200 StudyStatus
//	GET    /v1/studies/{id}/result  stream outputs in order as they
//	                             complete (text/plain, chunked)
//	GET    /v1/studies/{id}/events  SSE event stream: per-shard fleet
//	                             results, per-experiment outputs, one
//	                             terminal done/error event; resumable
//	                             via Last-Event-ID (see events.go)
//	DELETE /v1/studies/{id}      cancel a queued/running job
//	GET    /v1/healthz           liveness, queue depth by priority,
//	                             sessions, fleet worker liveness
//
// Admission control: submissions pass three gates, each rejecting with
// 429 + Retry-After. The per-session token bucket (Config.SessionRate)
// and active-study quota (Config.SessionMaxActive) bound one client;
// the global MaxQueued bound backs the whole queue. Admitted studies
// wait in a priority queue — "interactive" studies always pop before
// "batch" (the default) — and at most MaxConcurrent simulate at once.
// When Config.AuthToken is set, every study endpoint requires
// `Authorization: Bearer <token>` (healthz/metrics/version stay open
// for load balancers and scrapers).
//
// Client backoff contract: the server signals overload, never hides
// it. When the pending-study queue is full, POST /v1/studies returns
// 429 with a Retry-After header (delay in seconds, from
// Config.RetryAfter); clients should wait at least that long before
// resubmitting, and double the wait on consecutive 429s (the
// internal/dist coordinator treats 429 as transient and retries under
// exponential backoff for exactly this reason). 5xx responses are
// likewise safe to retry with backoff. Transport errors are ambiguous:
// a connection refused or timeout before the request was sent is safe
// to retry, but a connection lost while reading the 202 response means
// the study may already be queued — clients that must not duplicate
// work should GET /v1/studies and reconcile before resubmitting. 4xx
// validation errors are permanent — retrying an invalid spec unchanged
// will never succeed.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/farm"
	"repro/internal/harness"
	"repro/internal/memo"
	"repro/internal/obs"
)

// Study lifecycle metrics. The queued/running gauges move by deltas so
// several Servers in one process (tests, embedded services) compose;
// the outcome counter is one family split by a label, so the terminal
// states sum to submissions that have finished.
var (
	mStudiesSubmitted = obs.Default().Counter("service_studies_submitted_total")
	mStudiesQueued    = obs.Default().Gauge("service_studies_queued")
	mStudiesRunning   = obs.Default().Gauge("service_studies_running")
	mStudiesDone      = obs.Default().Counter(obs.Label("service_studies_finished_total", "outcome", "done"))
	mStudiesFailed    = obs.Default().Counter(obs.Label("service_studies_finished_total", "outcome", "failed"))
	mStudiesCancelled = obs.Default().Counter(obs.Label("service_studies_finished_total", "outcome", "cancelled"))
	mExperimentsDone  = obs.Default().Counter("service_experiments_rendered_total")
	mStudySeconds     = obs.Default().Histogram("service_study_seconds", nil)
)

// Admission and streaming metrics (the acceptance surface of the
// session/admission layer): live sessions, SSE subscribers, queue
// depth by priority, and rejects split by reason.
var (
	mSessionsActive   = obs.Default().Gauge("service_sessions_active")
	mStreamSubs       = obs.Default().Gauge("service_stream_subscribers")
	mQueueInteractive = obs.Default().Gauge(obs.Label("service_queue_depth", "priority", PriorityInteractive))
	mQueueBatch       = obs.Default().Gauge(obs.Label("service_queue_depth", "priority", PriorityBatch))
	mRejectQueueFull  = obs.Default().Counter(obs.Label("service_admission_rejects_total", "reason", "queue_full"))
	mRejectQuota      = obs.Default().Counter(obs.Label("service_admission_rejects_total", "reason", "session_quota"))
	mRejectRate       = obs.Default().Counter(obs.Label("service_admission_rejects_total", "reason", "rate_limit"))
)

var serviceLog = obs.Logger("service")

// StudySpec is one submission: an experiment list plus run settings.
// It is a superset of mp4study's manifest schema, so a manifest file
// can be POSTed unchanged.
type StudySpec struct {
	Frames int `json:"frames,omitempty"`
	// Parallel is accepted for manifest compatibility but ignored: the
	// server owns its farm sizing.
	Parallel    int                      `json:"parallel,omitempty"`
	Replay      *bool                    `json:"replay,omitempty"` // default true
	Experiments []harness.ExperimentSpec `json:"experiments"`
	// Priority places the study in the admission queue: "interactive"
	// studies are always scheduled ahead of "batch" ones (the default
	// when empty) regardless of submission order.
	Priority string `json:"priority,omitempty"`
}

// Priority names, highest first. The admission scheduler pops
// interactive work before batch work whenever a slot frees.
const (
	PriorityInteractive = "interactive"
	PriorityBatch       = "batch"
)

const priorityLevels = 2

// priorityLevel maps a spec's priority name to its queue level (0 is
// highest). Empty means batch.
func priorityLevel(p string) (int, error) {
	switch p {
	case PriorityInteractive:
		return 0, nil
	case "", PriorityBatch:
		return 1, nil
	}
	return 0, fmt.Errorf("unknown priority %q (want %q or %q)", p, PriorityInteractive, PriorityBatch)
}

func priorityName(level int) string {
	if level == 0 {
		return PriorityInteractive
	}
	return PriorityBatch
}

func queueGauge(level int) interface {
	Inc()
	Dec()
} {
	if level == 0 {
		return mQueueInteractive
	}
	return mQueueBatch
}

// Validate rejects malformed submissions before any simulation work.
func (s StudySpec) Validate() error {
	if len(s.Experiments) == 0 {
		return errors.New("no experiments")
	}
	if s.Frames < 0 || s.Frames > 10000 {
		return fmt.Errorf("frames %d out of range [0, 10000]", s.Frames)
	}
	if _, err := priorityLevel(s.Priority); err != nil {
		return err
	}
	for i, e := range s.Experiments {
		if err := e.Validate(); err != nil {
			return fmt.Errorf("experiment %d: %w", i, err)
		}
	}
	return nil
}

// Job states.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// StudyStatus is the poll response for one job.
type StudyStatus struct {
	ID          string             `json:"id"`
	State       string             `json:"state"`
	Submitted   time.Time          `json:"submitted"`
	Started     *time.Time         `json:"started,omitempty"`
	Finished    *time.Time         `json:"finished,omitempty"`
	Done        int                `json:"done"`  // experiments completed
	Total       int                `json:"total"` // experiments submitted
	Error       string             `json:"error,omitempty"`
	Experiments []string           `json:"experiments"`
	Priority    string             `json:"priority,omitempty"`
	Events      int                `json:"events"` // event-log length, for SSE resume
	TraceUsage  harness.TraceUsage `json:"trace_usage"`
}

// claim values: whoever CASes job.claimed from zero owns the queued
// job's fate — the dispatcher grants it a slot, or its own run
// goroutine abandons it on cancellation. Exactly one side wins, so a
// cancelled-while-queued study neither runs nor leaks a slot.
const (
	claimGranted int32 = iota + 1
	claimAbandoned
)

// job is the server-side state of one submission.
type job struct {
	id       string
	spec     StudySpec
	study    *harness.Study
	cancel   context.CancelFunc
	priority int           // queue level
	session  *session      // owner, for quota release (nil without middleware)
	grant    chan struct{} // closed by the dispatcher when a slot is granted
	claimed  atomic.Int32

	mu        sync.Mutex
	updated   chan struct{} // closed and replaced on every state change
	state     string
	submitted time.Time
	started   *time.Time
	finished  *time.Time
	outputs   []string
	done      int
	errMsg    string
	// events is the append-only SSE log (see events.go); eventsDone
	// seals it after the terminal event.
	events     []StudyEvent
	eventsDone bool
}

func (j *job) notifyLocked() {
	close(j.updated)
	j.updated = make(chan struct{})
}

func (j *job) setState(state string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateCancelled && state != StateCancelled {
		return // cancellation wins
	}
	j.state = state
	now := time.Now()
	switch state {
	case StateRunning:
		j.started = &now
	case StateDone, StateFailed, StateCancelled:
		j.finished = &now
	}
	if state == StateDone {
		j.appendEventLocked(StudyEvent{Type: EventDone, State: StateDone})
	}
	j.notifyLocked()
}

func (j *job) setOutput(i int, out string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.outputs[i] = out
	j.done = i + 1
	j.appendEventLocked(StudyEvent{
		Type:            EventExperiment,
		Experiment:      j.spec.Experiments[i].Label(),
		ExperimentIndex: i,
		Output:          out,
	})
	j.notifyLocked()
}

func (j *job) fail(err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateCancelled {
		return
	}
	j.state = StateFailed
	j.errMsg = err.Error()
	now := time.Now()
	j.finished = &now
	j.appendEventLocked(StudyEvent{Type: EventError, State: StateFailed, Error: j.errMsg})
	j.notifyLocked()
}

func (j *job) status() StudyStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := StudyStatus{
		ID:         j.id,
		State:      j.state,
		Submitted:  j.submitted,
		Started:    j.started,
		Finished:   j.finished,
		Done:       j.done,
		Total:      len(j.spec.Experiments),
		Error:      j.errMsg,
		Priority:   priorityName(j.priority),
		Events:     len(j.events),
		TraceUsage: j.study.Usage(),
	}
	for _, e := range j.spec.Experiments {
		st.Experiments = append(st.Experiments, e.Label())
	}
	return st
}

// Config parameterizes a Server.
type Config struct {
	// Workers sizes the farm pool experiments fan out on. <= 0 means
	// GOMAXPROCS.
	Workers int
	// MaxConcurrent bounds the studies simulating at once; further
	// submissions queue. <= 0 means 2.
	MaxConcurrent int
	// MaxQueued bounds accepted-but-unfinished studies; beyond it,
	// submissions are rejected with 429. <= 0 means 64.
	MaxQueued int
	// MaxHistory bounds retained terminal (done/failed/cancelled)
	// studies; the oldest beyond it are dropped — their status and
	// outputs become 404 — so a long-lived server does not grow
	// without bound. <= 0 means 256.
	MaxHistory int
	// RetryAfter is the delay advertised in the Retry-After header of
	// 429 queue-full responses. <= 0 means 5s.
	RetryAfter time.Duration

	// Fleet, when non-nil, routes replayed geometry/policy sweeps
	// through the dist worker fleet instead of the in-process farm —
	// service-side fan-out with the coordinator's full self-healing
	// machinery (see runner.go). Everything else still runs locally.
	Fleet *FleetConfig
	// MemoDir persists the server's result memo to a directory, so
	// memoized cells survive restarts (mp4served -memo-dir). Empty
	// keeps the memo in memory only.
	MemoDir string
	// DisableMemo turns result memoization off entirely. By default
	// every study shares one server-wide memo — resubmitting a study
	// (or sweeping a superset of an earlier one) replays only cells no
	// study has simulated before, with byte-identical output.
	DisableMemo bool
	// Heartbeat paces SSE keep-alive comments on the events stream.
	// <= 0 means 15s.
	Heartbeat time.Duration
	// AuthToken, when non-empty, requires `Authorization: Bearer
	// <token>` on every study endpoint (healthz/metrics/version stay
	// open).
	AuthToken string
	// SessionMaxActive bounds one session's queued+running studies;
	// beyond it, submissions get 429. <= 0 means 16.
	SessionMaxActive int
	// SessionRate and SessionBurst token-bucket study submissions per
	// session (submissions/second; bucket depth). Rate <= 0 disables
	// rate limiting; Burst <= 0 means ceil(rate), at least 1.
	SessionRate  float64
	SessionBurst int
	// SessionTTL prunes sessions idle (and empty) this long.
	// <= 0 means 1h.
	SessionTTL time.Duration
	// MaxSessions bounds the session table; at the bound, requests
	// from new identities get 429 until idle sessions expire.
	// <= 0 means 1024.
	MaxSessions int
}

// Server executes study submissions through priority admission onto a
// bounded farm pool or worker fleet. Create with New, mount via
// Handler, stop with Shutdown.
type Server struct {
	cfg    Config
	pool   *farm.Pool
	runner Runner
	slots  chan struct{}             // MaxConcurrent tokens, dispatcher-acquired
	queue  *farm.PriorityQueue[*job] // admission queue, interactive over batch
	fleet  *fleetMonitor             // nil without Config.Fleet
	memo   *memo.Cache               // shared across studies; nil when disabled
	base   context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string
	nextID int
	closed bool
	wg     sync.WaitGroup

	sessMu        sync.Mutex
	sessions      map[string]*session
	lastSessPrune time.Time
}

// New builds a Server from cfg and starts its admission dispatcher
// (and, with Config.Fleet, the fleet liveness monitor).
func New(cfg Config) *Server {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 2
	}
	if cfg.MaxQueued <= 0 {
		cfg.MaxQueued = 64
	}
	if cfg.MaxHistory <= 0 {
		cfg.MaxHistory = 256
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 5 * time.Second
	}
	if cfg.SessionMaxActive <= 0 {
		cfg.SessionMaxActive = 16
	}
	if cfg.SessionTTL <= 0 {
		cfg.SessionTTL = time.Hour
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 1024
	}
	base, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		pool:     farm.New(farm.Config{Workers: cfg.Workers}),
		slots:    make(chan struct{}, cfg.MaxConcurrent),
		queue:    farm.NewPriorityQueue[*job](priorityLevels, cfg.MaxQueued),
		base:     base,
		cancel:   cancel,
		jobs:     map[string]*job{},
		sessions: map[string]*session{},
	}
	s.runner = localRunner{}
	if cfg.Fleet != nil {
		s.fleet = newFleetMonitor(*cfg.Fleet)
		s.runner = &fleetRunner{cfg: *cfg.Fleet, monitor: s.fleet}
		go s.fleet.run(base)
	}
	if !cfg.DisableMemo {
		mc, err := memo.New(memo.Config{Version: harness.CodeVersion, Dir: cfg.MemoDir})
		if err != nil {
			// The memo is an optimization: a bad directory degrades to
			// uncached studies, never to a server that will not start.
			serviceLog.Warn("result memo disabled", "err", err)
		} else {
			s.memo = mc
		}
	}
	go s.dispatch()
	return s
}

func (s *Server) heartbeat() time.Duration {
	if s.cfg.Heartbeat > 0 {
		return s.cfg.Heartbeat
	}
	return 15 * time.Second
}

// retryAfterSecs is Config.RetryAfter as a Retry-After header value,
// rounded up to whole seconds.
func (s *Server) retryAfterSecs() string {
	return strconv.Itoa(int((s.cfg.RetryAfter + time.Second - 1) / time.Second))
}

// dispatch is the admission scheduler: acquire a concurrency slot
// FIRST, then pop the highest-priority queued study — so an
// interactive study submitted after a pile of batch work still takes
// the very next free slot. Exits when the server's base context dies.
func (s *Server) dispatch() {
	for {
		select {
		case s.slots <- struct{}{}:
		case <-s.base.Done():
			return
		}
		j, level, err := s.queue.Pop(s.base)
		if err != nil {
			<-s.slots
			return
		}
		queueGauge(level).Dec()
		if !j.claim(claimGranted) {
			// Cancelled while queued; its run goroutine already
			// finished the job. The slot goes back for the next pop.
			<-s.slots
			continue
		}
		close(j.grant)
	}
}

func (j *job) claim(who int32) bool { return j.claimed.CompareAndSwap(0, who) }

// Handler returns the HTTP handler for the service API, wrapped in
// the composable middleware chain: request logging and per-route
// metrics outermost (rejects are observable too), then bearer-token
// auth, then session resolution + per-session rate limiting. The
// process metrics registry is at /v1/metrics (Prometheus text, or
// JSON by content negotiation), the build identity at /v1/version.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/studies", s.handleSubmit)
	mux.HandleFunc("GET /v1/studies", s.handleList)
	mux.HandleFunc("GET /v1/studies/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/studies/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/studies/{id}/events", s.handleEvents)
	mux.HandleFunc("DELETE /v1/studies/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	mux.Handle("GET /v1/metrics", obs.Default().Handler())
	mux.Handle("GET /v1/version", obs.VersionHandler())
	return obs.Chain(mux,
		obs.RequestLog(serviceLog),
		obs.HTTPMetrics("service", nil),
		s.authMiddleware,
		s.sessionMiddleware,
	)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec StudySpec
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "invalid study spec: %v", err)
		return
	}
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "invalid study spec: %v", err)
		return
	}

	level, _ := priorityLevel(spec.Priority) // Validate vetted it
	replay := spec.Replay == nil || *spec.Replay
	study := harness.NewStudy(replay)
	study.SetMemo(s.memo) // shared server memo; nil when disabled
	j := &job{
		spec:      spec,
		study:     study,
		state:     StateQueued,
		submitted: time.Now(),
		updated:   make(chan struct{}),
		outputs:   make([]string, len(spec.Experiments)),
		priority:  level,
		grant:     make(chan struct{}),
	}

	// Per-session quota: the claim is atomic with the check, and every
	// rejection below must release it. The session is re-resolved here
	// rather than carried in the context — see sessionMiddleware.
	if ss, ok := s.resolveSession(r); ok && ss != nil {
		if !ss.tryAcquire(s.cfg.SessionMaxActive) {
			mRejectQuota.Inc()
			w.Header().Set("Retry-After", s.retryAfterSecs())
			writeError(w, http.StatusTooManyRequests,
				"session %q at its active-study quota (%d)", ss.id, s.cfg.SessionMaxActive)
			return
		}
		j.session = ss
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.releaseSession(j)
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	s.pruneLocked()
	active := 0
	for _, id := range s.order {
		switch s.jobs[id].status().State {
		case StateQueued, StateRunning:
			active++
		}
	}
	// Two bounds guard the queue: the admission count (active studies)
	// and the priority queue's own capacity (which can fill first if
	// cancelled-while-queued entries await reaping). Both reject the
	// same way — part of the client backoff contract (see package
	// doc): tell the client when resubmitting is worth trying.
	if active >= s.cfg.MaxQueued {
		s.mu.Unlock()
		s.releaseSession(j)
		mRejectQueueFull.Inc()
		w.Header().Set("Retry-After", s.retryAfterSecs())
		writeError(w, http.StatusTooManyRequests, "queue full (%d studies pending)", active)
		return
	}
	if err := s.queue.Push(level, j); err != nil {
		s.mu.Unlock()
		s.releaseSession(j)
		mRejectQueueFull.Inc()
		w.Header().Set("Retry-After", s.retryAfterSecs())
		writeError(w, http.StatusTooManyRequests, "queue full: %v", err)
		return
	}
	queueGauge(level).Inc()
	s.nextID++
	j.id = fmt.Sprintf("study-%04d", s.nextID)
	jobCtx, jobCancel := context.WithCancel(s.base)
	j.cancel = jobCancel
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.wg.Add(1)
	s.mu.Unlock()

	mStudiesSubmitted.Inc()
	mStudiesQueued.Inc()
	serviceLog.Info("study submitted",
		"id", j.id, "experiments", len(spec.Experiments), "frames", spec.Frames,
		"priority", priorityName(level))
	go s.run(jobCtx, j)
	writeJSON(w, http.StatusAccepted, j.status())
}

// releaseSession returns the job's quota claim to its session.
func (s *Server) releaseSession(j *job) {
	if j.session != nil {
		j.session.release()
	}
}

// run executes one job: wait for the dispatcher to grant a slot, then
// render the experiments in order through the Runner seam (local farm
// or worker fleet), publishing outputs and events as they complete.
func (s *Server) run(ctx context.Context, j *job) {
	defer s.wg.Done()
	defer j.cancel()
	defer s.releaseSession(j)
	select {
	case <-j.grant:
	case <-ctx.Done():
		if j.claim(claimAbandoned) {
			// The dispatcher never granted this job; it stays in the
			// queue as a claimed husk the dispatcher skips later.
			mStudiesQueued.Dec()
			mStudiesCancelled.Inc()
			j.fail(fmt.Errorf("cancelled while queued"))
			return
		}
		<-j.grant // the dispatcher won the race: run (and fail fast) below
	}
	defer func() { <-s.slots }()
	mStudiesQueued.Dec()
	mStudiesRunning.Inc()
	defer mStudiesRunning.Dec()
	start := time.Now()
	j.setState(StateRunning)
	serviceLog.Info("study started", "id", j.id,
		"experiments", len(j.spec.Experiments), "priority", priorityName(j.priority))
	ctx = harness.WithStudy(ctx, j.study)
	for i, e := range j.spec.Experiments {
		out, err := s.runner.Render(ctx, s.pool, e, j.spec.Frames, j.sinkFor(i, e.Label()))
		if err != nil {
			if ctx.Err() != nil {
				mStudiesCancelled.Inc()
				serviceLog.Info("study cancelled", "id", j.id, "during", e.Label())
				j.fail(fmt.Errorf("cancelled during %s", e.Label()))
			} else {
				mStudiesFailed.Inc()
				serviceLog.Warn("study failed", "id", j.id, "experiment", e.Label(), "err", err)
				j.fail(fmt.Errorf("%s: %w", e.Label(), err))
			}
			return
		}
		mExperimentsDone.Inc()
		j.setOutput(i, out)
	}
	mStudiesDone.Inc()
	mStudySeconds.ObserveSince(start)
	serviceLog.Info("study done", "id", j.id, "elapsed", time.Since(start))
	j.setState(StateDone)
}

// pruneLocked drops the oldest terminal jobs beyond MaxHistory so a
// long-lived server's job table stays bounded. Caller holds s.mu.
func (s *Server) pruneLocked() {
	terminal := 0
	for _, id := range s.order {
		switch s.jobs[id].status().State {
		case StateDone, StateFailed, StateCancelled:
			terminal++
		}
	}
	if terminal <= s.cfg.MaxHistory {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		st := s.jobs[id].status().State
		isTerminal := st == StateDone || st == StateFailed || st == StateCancelled
		if isTerminal && terminal > s.cfg.MaxHistory {
			delete(s.jobs, id)
			terminal--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *job {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, "no study %q", r.PathValue("id"))
	}
	return j
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]StudyStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].status())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j := s.lookup(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.status())
	}
}

// handleResult streams the job's outputs in experiment order, flushing
// each as it completes — a client can follow a long study live. If the
// study fails or is cancelled mid-stream, a final diagnostic line ends
// the body (the HTTP status is already committed by then; poll
// /v1/studies/{id} for machine-readable state).
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	flusher, _ := w.(http.Flusher)
	for i := 0; ; {
		j.mu.Lock()
		state, done, errMsg := j.state, j.done, j.errMsg
		var pending []string
		for ; i < done; i++ {
			pending = append(pending, j.outputs[i])
		}
		updated := j.updated
		j.mu.Unlock()

		for _, out := range pending {
			io.WriteString(w, out)
		}
		if len(pending) > 0 && flusher != nil {
			flusher.Flush()
		}
		switch state {
		case StateDone:
			if i >= done {
				return
			}
		case StateFailed, StateCancelled:
			fmt.Fprintf(w, "study %s: %s\n", state, errMsg)
			return
		}
		select {
		case <-updated:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	terminal := j.state == StateDone || j.state == StateFailed || j.state == StateCancelled
	if !terminal {
		j.state = StateCancelled
		j.errMsg = "cancelled by client"
		now := time.Now()
		j.finished = &now
		j.appendEventLocked(StudyEvent{Type: EventError, State: StateCancelled, Error: j.errMsg})
		j.notifyLocked()
	}
	j.mu.Unlock()
	if !terminal {
		j.cancel()
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleHealth reports liveness plus what a load balancer needs to
// drain intelligently: study gauges, queue depth by priority, session
// count, and — with a fleet configured — worker liveness split into
// alive/dead/barred.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	queued, running := 0, 0
	for _, id := range s.order {
		switch s.jobs[id].status().State {
		case StateQueued:
			queued++
		case StateRunning:
			running++
		}
	}
	closed := s.closed
	s.mu.Unlock()
	body := map[string]any{
		"ok":       !closed,
		"queued":   queued,
		"running":  running,
		"workers":  s.pool.Workers(),
		"shutdown": closed,
		"version":  obs.Version(),
		"queue_depth": map[string]int{
			PriorityInteractive: s.queue.Len(0),
			PriorityBatch:       s.queue.Len(1),
		},
		"sessions": s.sessionCount(),
	}
	if s.fleet != nil {
		alive, dead, barred := s.fleet.snapshot()
		body["fleet"] = map[string]any{
			"workers": len(s.cfg.Fleet.Workers),
			"alive":   alive,
			"dead":    dead,
			"barred":  barred,
		}
	}
	if s.memo != nil {
		c := s.memo.Counters()
		body["memo"] = map[string]any{
			"entries":   s.memo.Len(),
			"hits":      c.Hits,
			"misses":    c.Misses,
			"evictions": c.Evictions,
			"hit_rate":  c.HitRate(),
		}
	}
	writeJSON(w, http.StatusOK, body)
}

// Shutdown stops the server gracefully: new submissions are rejected
// immediately, running and queued studies get until ctx's deadline to
// finish, then everything still in flight is cancelled. It returns nil
// if all work drained, or ctx's error if the deadline forced
// cancellation.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.queue.Close()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		s.cancel() // stop the dispatcher and fleet monitor
		return nil
	case <-ctx.Done():
		s.cancel() // cancel every job context
		<-drained
		return ctx.Err()
	}
}
