package shape

import (
	"fmt"

	"repro/internal/bits"
	"repro/internal/simmem"
	"repro/internal/video"
)

// BABSize is the binary alpha block dimension (one macroblock).
const BABSize = 16

// BABMode classifies one binary alpha block.
type BABMode uint8

const (
	// BABTransparent marks an all-zero (outside the object) block.
	BABTransparent BABMode = iota
	// BABOpaque marks an all-255 (inside the object) block.
	BABOpaque
	// BABCoded marks a boundary block whose pixels are CAE coded.
	BABCoded
)

// Classify returns the mode of the BAB at macroblock (mbx, mby) of alpha.
func Classify(alpha *video.Plane, mbx, mby int) BABMode {
	zero, full := true, true
	for y := 0; y < BABSize; y++ {
		row := alpha.Pix[(mby+y)*alpha.Stride+mbx : (mby+y)*alpha.Stride+mbx+BABSize]
		for _, v := range row {
			if v != 0 {
				zero = false
			} else {
				full = false
			}
		}
	}
	switch {
	case zero:
		return BABTransparent
	case full:
		return BABOpaque
	default:
		return BABCoded
	}
}

// context gathers the 7-pixel causal context for (x, y) from the
// reconstructed binary plane (values 0/255). Out-of-plane neighbours
// read as 0, matching the reference coder's border extension. Pixels in
// the BAB rows (py >= babTop) at or beyond babRight belong to a
// right-hand neighbour that is not yet decoded; they also read as 0, so
// encoder and decoder always see identical contexts.
func context(rec *video.Plane, x, y, babTop, babRight int) int {
	at := func(px, py int) int {
		if px < 0 || py < 0 || px >= rec.W || py >= rec.H {
			return 0
		}
		if py >= babTop && px >= babRight {
			return 0
		}
		if rec.Pix[py*rec.Stride+px] != 0 {
			return 1
		}
		return 0
	}
	return at(x-1, y)<<6 | at(x-2, y)<<5 |
		at(x-1, y-1)<<4 | at(x, y-1)<<3 | at(x+1, y-1)<<2 | at(x+2, y-1)<<1 |
		at(x, y-2)
}

// opsPerShapePixel approximates the per-pixel decode cost of CAE.
const opsPerShapePixel = 22

// EncodePlane codes the binary alpha plane (dimensions multiples of 16):
// per-BAB modes as 2-bit codes, then one arithmetic-coded stream over
// the boundary-block pixels. Memory behaviour (context row loads and
// reconstruction stores) is reported to t.
func EncodePlane(w *bits.Writer, t simmem.Tracer, alpha *video.Plane) error {
	if alpha.W%BABSize != 0 || alpha.H%BABSize != 0 {
		return fmt.Errorf("shape: plane %dx%d not multiple of %d", alpha.W, alpha.H, BABSize)
	}
	mbw, mbh := alpha.W/BABSize, alpha.H/BABSize
	modes := make([]BABMode, mbw*mbh)
	for my := 0; my < mbh; my++ {
		for mx := 0; mx < mbw; mx++ {
			m := Classify(alpha, mx*BABSize, my*BABSize)
			modes[my*mbw+mx] = m
			w.PutBits(uint32(m), 2)
			// Classification loads are traced for blocks inside or
			// adjacent to the object only; the segmented input's
			// bounding box is known, so the coder never scans the far
			// background (bbox-sized buffers in the reference coder).
			if m != BABTransparent {
				simmem.AccessStrided(t, alpha.Addr+uint64(my*BABSize*alpha.Stride+mx*BABSize),
					BABSize, alpha.Stride, BABSize, simmem.Load)
				t.Ops(BABSize * BABSize / 2)
			}
		}
	}
	enc := NewBinEncoder(w)
	model := NewModel()
	for my := 0; my < mbh; my++ {
		for mx := 0; mx < mbw; mx++ {
			if modes[my*mbw+mx] != BABCoded {
				continue
			}
			bx, by := mx*BABSize, my*BABSize
			for y := 0; y < BABSize; y++ {
				rowOff := (by + y) * alpha.Stride
				for x := 0; x < BABSize; x++ {
					px, py := bx+x, by+y
					ctx := context(alpha, px, py, by, bx+BABSize)
					bit := 0
					if alpha.Pix[rowOff+px] != 0 {
						bit = 1
					}
					enc.Encode(bit, model.P1(ctx))
					model.Update(ctx, bit)
				}
				// Context reads touch the current and two previous rows.
				simmem.AccessRunUnit(t, alpha.Addr+uint64(rowOff+bx), BABSize, 1, simmem.Load)
				if by+y >= 1 {
					simmem.AccessRunUnit(t, alpha.Addr+uint64(rowOff-alpha.Stride+bx), BABSize, 1, simmem.Load)
				}
				t.Ops(BABSize * opsPerShapePixel)
			}
		}
	}
	enc.Flush()
	return nil
}

// DecodePlane reverses EncodePlane into alpha.
func DecodePlane(r *bits.Reader, t simmem.Tracer, alpha *video.Plane) error {
	if alpha.W%BABSize != 0 || alpha.H%BABSize != 0 {
		return fmt.Errorf("shape: plane %dx%d not multiple of %d", alpha.W, alpha.H, BABSize)
	}
	mbw, mbh := alpha.W/BABSize, alpha.H/BABSize
	modes := make([]BABMode, mbw*mbh)
	for i := range modes {
		v, err := r.Bits(2)
		if err != nil {
			return err
		}
		if BABMode(v) > BABCoded {
			return fmt.Errorf("shape: invalid BAB mode %d", v)
		}
		modes[i] = BABMode(v)
	}
	// Fill transparent/opaque blocks first so coded blocks see correct
	// context from their neighbours. Stores for opaque blocks are traced
	// (inside the object's bounding box); the transparent background
	// fill exists only in this API's full-frame alpha representation
	// (the reference decoder's alpha buffer is bbox-sized) and is
	// untraced.
	for my := 0; my < mbh; my++ {
		for mx := 0; mx < mbw; mx++ {
			mode := modes[my*mbw+mx]
			if mode == BABCoded {
				continue
			}
			v := byte(0)
			if mode == BABOpaque {
				v = 255
			}
			for y := 0; y < BABSize; y++ {
				off := (my*BABSize+y)*alpha.Stride + mx*BABSize
				row := alpha.Pix[off : off+BABSize]
				for i := range row {
					row[i] = v
				}
				if mode == BABOpaque {
					simmem.AccessRunUnit(t, alpha.Addr+uint64(off), BABSize, 1, simmem.Store)
				}
			}
			if mode == BABOpaque {
				t.Ops(BABSize * BABSize / 4)
			}
		}
	}
	dec := NewBinDecoder(r)
	model := NewModel()
	for my := 0; my < mbh; my++ {
		for mx := 0; mx < mbw; mx++ {
			if modes[my*mbw+mx] != BABCoded {
				continue
			}
			bx, by := mx*BABSize, my*BABSize
			for y := 0; y < BABSize; y++ {
				rowOff := (by + y) * alpha.Stride
				for x := 0; x < BABSize; x++ {
					px, py := bx+x, by+y
					ctx := context(alpha, px, py, by, bx+BABSize)
					bit := dec.Decode(model.P1(ctx))
					model.Update(ctx, bit)
					if bit != 0 {
						alpha.Pix[rowOff+px] = 255
					} else {
						alpha.Pix[rowOff+px] = 0
					}
				}
				simmem.AccessRunUnit(t, alpha.Addr+uint64(rowOff+bx), BABSize, 1, simmem.Store)
				if by+y >= 1 {
					simmem.AccessRunUnit(t, alpha.Addr+uint64(rowOff-alpha.Stride+bx), BABSize, 1, simmem.Load)
				}
				t.Ops(BABSize * opsPerShapePixel)
			}
		}
	}
	return nil
}
