package shape

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bits"
	"repro/internal/simmem"
	"repro/internal/video"
)

func TestBinCoderRoundTripFixedProb(t *testing.T) {
	w := bits.NewWriter(256)
	enc := NewBinEncoder(w)
	rng := rand.New(rand.NewSource(1))
	seq := make([]int, 2000)
	for i := range seq {
		seq[i] = rng.Intn(2)
		enc.Encode(seq[i], 32768)
	}
	enc.Flush()
	dec := NewBinDecoder(bits.NewReader(w.Bytes()))
	for i, want := range seq {
		if got := dec.Decode(32768); got != want {
			t.Fatalf("bit %d: got %d want %d", i, got, want)
		}
	}
}

func TestBinCoderRoundTripSkewedProb(t *testing.T) {
	for _, p1 := range []uint16{1, 100, 10000, 60000, 65535} {
		w := bits.NewWriter(256)
		enc := NewBinEncoder(w)
		rng := rand.New(rand.NewSource(int64(p1)))
		seq := make([]int, 1000)
		for i := range seq {
			if rng.Intn(65536) < int(p1) {
				seq[i] = 1
			}
			enc.Encode(seq[i], p1)
		}
		enc.Flush()
		dec := NewBinDecoder(bits.NewReader(w.Bytes()))
		for i, want := range seq {
			if got := dec.Decode(p1); got != want {
				t.Fatalf("p1=%d bit %d: got %d want %d", p1, i, got, want)
			}
		}
	}
}

func TestBinCoderCompressesSkewedSource(t *testing.T) {
	// 1000 highly skewed bits should code in far fewer than 1000 bits.
	w := bits.NewWriter(256)
	enc := NewBinEncoder(w)
	for i := 0; i < 1000; i++ {
		bit := 0
		if i%97 == 0 {
			bit = 1
		}
		enc.Encode(bit, 700) // model: P(1) ~ 1%
	}
	enc.Flush()
	if w.Len() > 400 {
		t.Fatalf("arithmetic coder produced %d bits for 1000 skewed bits", w.Len())
	}
}

func TestQuickBinCoderAdaptive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 500
		seq := make([]int, n)
		ctxs := make([]int, n)
		for i := range seq {
			seq[i] = rng.Intn(2)
			ctxs[i] = rng.Intn(numContexts)
		}
		w := bits.NewWriter(256)
		enc := NewBinEncoder(w)
		m := NewModel()
		for i := range seq {
			enc.Encode(seq[i], m.P1(ctxs[i]))
			m.Update(ctxs[i], seq[i])
		}
		enc.Flush()
		dec := NewBinDecoder(bits.NewReader(w.Bytes()))
		m2 := NewModel()
		for i := range seq {
			got := dec.Decode(m2.P1(ctxs[i]))
			m2.Update(ctxs[i], got)
			if got != seq[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestModelBounds(t *testing.T) {
	m := NewModel()
	for i := 0; i < 5000; i++ {
		m.Update(7, 1)
	}
	if p := m.P1(7); p < 1 || p > 65535 {
		t.Fatalf("P1 out of range: %d", p)
	}
	for i := 0; i < 5000; i++ {
		m.Update(9, 0)
	}
	if p := m.P1(9); p < 1 || p > 65535 {
		t.Fatalf("P1 out of range: %d", p)
	}
	if m.P1(7) <= m.P1(9) {
		t.Fatal("model did not adapt to observed bits")
	}
}

func TestClassify(t *testing.T) {
	sp := simmem.NewSpace(0)
	p := video.NewPlane(sp, 32, 32)
	if Classify(p, 0, 0) != BABTransparent {
		t.Fatal("zero block not transparent")
	}
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			p.Set(x, y, 255)
		}
	}
	if Classify(p, 0, 0) != BABOpaque {
		t.Fatal("full block not opaque")
	}
	p.Set(5, 5, 0)
	if Classify(p, 0, 0) != BABCoded {
		t.Fatal("mixed block not coded")
	}
}

func ellipsePlane(sp *simmem.Space, w, h int) *video.Plane {
	p := video.NewPlane(sp, w, h)
	cx, cy := float64(w)/2, float64(h)/2
	rx, ry := float64(w)*0.3, float64(h)*0.35
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			dx := (float64(x) - cx) / rx
			dy := (float64(y) - cy) / ry
			if dx*dx+dy*dy <= 1 {
				p.Set(x, y, 255)
			}
		}
	}
	return p
}

func TestPlaneRoundTripEllipse(t *testing.T) {
	sp := simmem.NewSpace(0)
	src := ellipsePlane(sp, 64, 48)
	w := bits.NewWriter(1024)
	if err := EncodePlane(w, simmem.Nop{}, src); err != nil {
		t.Fatal(err)
	}
	dst := video.NewPlane(sp, 64, 48)
	// Poison the destination to catch unwritten pixels.
	dst.Fill(7)
	if err := DecodePlane(bits.NewReader(w.Bytes()), simmem.Nop{}, dst); err != nil {
		t.Fatal(err)
	}
	for i := range src.Pix {
		if src.Pix[i] != dst.Pix[i] {
			t.Fatalf("shape roundtrip mismatch at %d: %d vs %d", i, src.Pix[i], dst.Pix[i])
		}
	}
}

func TestPlaneRoundTripRandomMasks(t *testing.T) {
	f := func(seed int64) bool {
		sp := simmem.NewSpace(0)
		rng := rand.New(rand.NewSource(seed))
		src := video.NewPlane(sp, 48, 32)
		// Random blobs: random rectangles of 255.
		for i := 0; i < 6; i++ {
			x0, y0 := rng.Intn(40), rng.Intn(24)
			for y := y0; y < y0+rng.Intn(16)+1 && y < 32; y++ {
				for x := x0; x < x0+rng.Intn(20)+1 && x < 48; x++ {
					src.Set(x, y, 255)
				}
			}
		}
		w := bits.NewWriter(1024)
		if err := EncodePlane(w, simmem.Nop{}, src); err != nil {
			return false
		}
		dst := video.NewPlane(sp, 48, 32)
		dst.Fill(1)
		if err := DecodePlane(bits.NewReader(w.Bytes()), simmem.Nop{}, dst); err != nil {
			return false
		}
		for i := range src.Pix {
			if src.Pix[i] != dst.Pix[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPlaneCompressionEffective(t *testing.T) {
	sp := simmem.NewSpace(0)
	src := ellipsePlane(sp, 128, 128)
	w := bits.NewWriter(4096)
	if err := EncodePlane(w, simmem.Nop{}, src); err != nil {
		t.Fatal(err)
	}
	raw := 128 * 128 // one bit per pixel baseline
	if int(w.Len()) > raw/4 {
		t.Fatalf("shape coding ineffective: %d bits vs %d raw", w.Len(), raw)
	}
}

func TestPlaneDimensionValidation(t *testing.T) {
	sp := simmem.NewSpace(0)
	p := video.NewPlane(sp, 20, 20)
	if err := EncodePlane(bits.NewWriter(8), simmem.Nop{}, p); err == nil {
		t.Fatal("non-multiple-of-16 plane accepted by encoder")
	}
	if err := DecodePlane(bits.NewReader(nil), simmem.Nop{}, p); err == nil {
		t.Fatal("non-multiple-of-16 plane accepted by decoder")
	}
}

func TestDecodePlaneTracesStores(t *testing.T) {
	sp := simmem.NewSpace(0)
	src := ellipsePlane(sp, 32, 32)
	w := bits.NewWriter(512)
	if err := EncodePlane(w, simmem.Nop{}, src); err != nil {
		t.Fatal(err)
	}
	dst := video.NewPlane(sp, 32, 32)
	var ct simmem.Count
	if err := DecodePlane(bits.NewReader(w.Bytes()), &ct, dst); err != nil {
		t.Fatal(err)
	}
	if ct.Stores == 0 || ct.OpCount == 0 {
		t.Fatal("decode reported no memory traffic")
	}
}
