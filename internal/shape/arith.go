// Package shape implements MPEG-4 binary shape (alpha) coding: binary
// alpha blocks (BABs) classified as transparent, opaque or coded, with
// coded blocks compressed by an adaptive context-based binary arithmetic
// coder in the style of the standard's CAE.
//
// The context model uses a 7-pixel causal neighbourhood (the standard's
// intra CAE uses 10; seven preserves the same decode structure — a
// context gather followed by one adaptive binary decode per pixel —
// while keeping the model small). Each BAB is coded independently of
// horizontally adjacent BABs but uses the reconstructed plane above and
// to the left for context, exactly like the reference coder.
package shape

import (
	"repro/internal/bits"
)

// BinEncoder is an adaptive binary arithmetic encoder writing to a bit
// writer (Witten–Neal–Cleary style with pending-bit carry resolution).
type BinEncoder struct {
	w       *bits.Writer
	low     uint32
	high    uint32
	pending int
}

// NewBinEncoder returns an encoder writing to w.
func NewBinEncoder(w *bits.Writer) *BinEncoder {
	return &BinEncoder{w: w, high: 0xFFFFFFFF}
}

const (
	topBit    = uint32(1) << 31
	secondBit = uint32(1) << 30
)

// Encode codes one bit with probability p1/65536 of being 1. p1 must be
// in [1, 65535].
func (e *BinEncoder) Encode(bit int, p1 uint16) {
	split := e.low + uint32((uint64(e.high-e.low)*uint64(p1))>>16)
	if bit != 0 {
		e.high = split
	} else {
		e.low = split + 1
	}
	for {
		switch {
		case e.high < topBit:
			e.emit(0)
		case e.low >= topBit:
			e.emit(1)
			e.low -= topBit
			e.high -= topBit
		case e.low >= secondBit && e.high < topBit|secondBit:
			e.pending++
			e.low -= secondBit
			e.high -= secondBit
		default:
			return
		}
		e.low <<= 1
		e.high = e.high<<1 | 1
	}
}

func (e *BinEncoder) emit(b uint32) {
	e.w.PutBit(b)
	for ; e.pending > 0; e.pending-- {
		e.w.PutBit(b ^ 1)
	}
}

// Flush terminates the code so the decoder can resolve the final
// interval. It writes two disambiguation bits plus padding.
func (e *BinEncoder) Flush() {
	e.pending++
	if e.low < secondBit {
		e.emit(0)
	} else {
		e.emit(1)
	}
	// Pad so the decoder's 32-bit value register can fill.
	for i := 0; i < 32; i++ {
		e.w.PutBit(0)
	}
}

// BinDecoder mirrors BinEncoder.
type BinDecoder struct {
	r     *bits.Reader
	low   uint32
	high  uint32
	value uint32
}

// NewBinDecoder returns a decoder reading from r. It consumes the first
// 32 bits immediately.
func NewBinDecoder(r *bits.Reader) *BinDecoder {
	d := &BinDecoder{r: r, high: 0xFFFFFFFF}
	for i := 0; i < 32; i++ {
		b, err := r.Bit()
		if err != nil {
			b = 0
		}
		d.value = d.value<<1 | b
	}
	return d
}

// Decode decodes one bit with probability p1/65536 of being 1.
func (d *BinDecoder) Decode(p1 uint16) int {
	split := d.low + uint32((uint64(d.high-d.low)*uint64(p1))>>16)
	var bit int
	if d.value <= split {
		bit = 1
		d.high = split
	} else {
		d.low = split + 1
	}
	for {
		switch {
		case d.high < topBit:
			// nothing
		case d.low >= topBit:
			d.low -= topBit
			d.high -= topBit
			d.value -= topBit
		case d.low >= secondBit && d.high < topBit|secondBit:
			d.low -= secondBit
			d.high -= secondBit
			d.value -= secondBit
		default:
			return bit
		}
		d.low <<= 1
		d.high = d.high<<1 | 1
		b, err := d.r.Bit()
		if err != nil {
			b = 0
		}
		d.value = d.value<<1 | b
	}
}

// numContexts is the size of the 7-bit causal context space.
const numContexts = 128

// Model is the adaptive probability model: per-context 0/1 counts.
type Model struct {
	c0, c1 [numContexts]uint16
}

// NewModel returns a model initialised to the uniform prior.
func NewModel() *Model {
	m := &Model{}
	for i := 0; i < numContexts; i++ {
		m.c0[i], m.c1[i] = 1, 1
	}
	return m
}

// P1 returns the current probability (scaled to 1..65535) that the next
// bit in context ctx is 1.
func (m *Model) P1(ctx int) uint16 {
	c0, c1 := uint32(m.c0[ctx]), uint32(m.c1[ctx])
	p := c1 * 65536 / (c0 + c1)
	if p < 1 {
		p = 1
	}
	if p > 65535 {
		p = 65535
	}
	return uint16(p)
}

// Update records an observed bit in context ctx, halving the counts when
// they saturate so the model adapts to local statistics.
func (m *Model) Update(ctx, bit int) {
	if bit != 0 {
		m.c1[ctx]++
	} else {
		m.c0[ctx]++
	}
	if m.c0[ctx]+m.c1[ctx] >= 1024 {
		m.c0[ctx] = m.c0[ctx]/2 + 1
		m.c1[ctx] = m.c1[ctx]/2 + 1
	}
}
