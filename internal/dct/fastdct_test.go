package dct

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFastForwardMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var a, b Block
		for i := range a {
			v := int32(rng.Intn(256)) - 128
			a[i], b[i] = v, v
		}
		Forward(&a)
		FastForward(&b)
		for i := range a {
			d := a[i] - b[i]
			if d < -2 || d > 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFastInverseMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var a, b Block
		for i := range a {
			v := int32(rng.Intn(512)) - 256
			a[i], b[i] = v, v
		}
		Inverse(&a)
		FastInverse(&b)
		for i := range a {
			d := a[i] - b[i]
			if d < -2 || d > 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFastRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var b, orig Block
		for i := range b {
			b[i] = int32(rng.Intn(256)) - 128
		}
		orig = b
		FastForward(&b)
		FastInverse(&b)
		for i := range b {
			d := b[i] - orig[i]
			if d < -3 || d > 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFastDCTConstantBlock(t *testing.T) {
	var b Block
	for i := range b {
		b[i] = 100
	}
	FastForward(&b)
	if b[0] < 798 || b[0] > 802 {
		t.Fatalf("fast DC of constant block = %d want ~800", b[0])
	}
	for i := 1; i < 64; i++ {
		if b[i] < -2 || b[i] > 2 {
			t.Fatalf("fast AC %d = %d want ~0", i, b[i])
		}
	}
}

func BenchmarkFastForward(b *testing.B) {
	var blk Block
	for i := range blk {
		blk[i] = int32(i * 3 % 255)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := blk
		FastForward(&c)
	}
}

func BenchmarkFastInverse(b *testing.B) {
	var blk Block
	for i := range blk {
		blk[i] = int32(i * 3 % 255)
	}
	FastForward(&blk)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := blk
		FastInverse(&c)
	}
}
