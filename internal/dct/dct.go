// Package dct implements the 8×8 forward and inverse discrete cosine
// transform, H.263-style quantization (the MPEG-4 "second quantization
// method" used by the MoMuSys reference software in short-header mode),
// and the zigzag coefficient scan.
//
// The transform is a separable floating-point DCT-II/DCT-III pair with
// precomputed basis tables. IDCT(DCT(x)) reproduces x to well under one
// quantization step, which is all the codec requires; a property test
// asserts the roundtrip error bound.
package dct

import "math"

// BlockSize is the transform dimension.
const BlockSize = 8

// Block is an 8×8 coefficient or sample-difference block in row-major
// order. Samples use the int32 range; coefficients after a forward
// transform of 9-bit input fit comfortably.
type Block [BlockSize * BlockSize]int32

// cosTable[u][x] = c(u) * cos((2x+1)uπ/16), the orthonormal DCT basis.
var cosTable [BlockSize][BlockSize]float64

func init() {
	for u := 0; u < BlockSize; u++ {
		cu := math.Sqrt(2.0 / BlockSize)
		if u == 0 {
			cu = math.Sqrt(1.0 / BlockSize)
		}
		for x := 0; x < BlockSize; x++ {
			cosTable[u][x] = cu * math.Cos(float64(2*x+1)*float64(u)*math.Pi/16)
		}
	}
}

// Forward transforms spatial block b in place to frequency coefficients.
func Forward(b *Block) {
	var tmp [BlockSize][BlockSize]float64
	// Rows.
	for y := 0; y < BlockSize; y++ {
		for u := 0; u < BlockSize; u++ {
			var s float64
			for x := 0; x < BlockSize; x++ {
				s += float64(b[y*BlockSize+x]) * cosTable[u][x]
			}
			tmp[y][u] = s
		}
	}
	// Columns.
	for u := 0; u < BlockSize; u++ {
		for v := 0; v < BlockSize; v++ {
			var s float64
			for y := 0; y < BlockSize; y++ {
				s += tmp[y][u] * cosTable[v][y]
			}
			b[v*BlockSize+u] = int32(math.RoundToEven(s))
		}
	}
}

// Inverse transforms frequency coefficients b in place back to spatial
// samples.
func Inverse(b *Block) {
	var tmp [BlockSize][BlockSize]float64
	// Columns (inverse of the second forward pass).
	for u := 0; u < BlockSize; u++ {
		for y := 0; y < BlockSize; y++ {
			var s float64
			for v := 0; v < BlockSize; v++ {
				s += float64(b[v*BlockSize+u]) * cosTable[v][y]
			}
			tmp[y][u] = s
		}
	}
	// Rows.
	for y := 0; y < BlockSize; y++ {
		for x := 0; x < BlockSize; x++ {
			var s float64
			for u := 0; u < BlockSize; u++ {
				s += tmp[y][u] * cosTable[u][x]
			}
			b[y*BlockSize+x] = int32(math.RoundToEven(s))
		}
	}
}

// OpsForward is the approximate graduated-instruction cost of one 8×8
// forward or inverse transform (two separable passes of 64
// multiply-accumulate pairs each, plus loop overhead), used by the
// timing model.
const OpsForward = 2*64*8*2 + 200

// Quantizer implements H.263-style scalar quantization with a quantizer
// parameter QP in [1, 31].
type Quantizer struct {
	QP int32
}

// NewQuantizer clamps qp into the legal range.
func NewQuantizer(qp int) Quantizer {
	if qp < 1 {
		qp = 1
	}
	if qp > 31 {
		qp = 31
	}
	return Quantizer{QP: int32(qp)}
}

// QuantIntra quantizes an intra block in place: the DC coefficient is
// divided by 8 (as MPEG-4 intra DC coding does at this level), AC
// coefficients by 2·QP.
func (q Quantizer) QuantIntra(b *Block) {
	b[0] = divRound(b[0], 8)
	for i := 1; i < len(b); i++ {
		b[i] = quantAC(b[i], q.QP, true)
	}
}

// DequantIntra reverses QuantIntra (up to quantization loss).
func (q Quantizer) DequantIntra(b *Block) {
	b[0] *= 8
	for i := 1; i < len(b); i++ {
		b[i] = dequantAC(b[i], q.QP)
	}
}

// QuantInter quantizes an inter (residual) block in place with the H.263
// dead zone.
func (q Quantizer) QuantInter(b *Block) {
	for i := range b {
		b[i] = quantAC(b[i], q.QP, false)
	}
}

// DequantInter reverses QuantInter (up to quantization loss).
func (q Quantizer) DequantInter(b *Block) {
	for i := range b {
		b[i] = dequantAC(b[i], q.QP)
	}
}

func quantAC(c, qp int32, intra bool) int32 {
	neg := c < 0
	if neg {
		c = -c
	}
	var lvl int32
	if intra {
		lvl = c / (2 * qp)
	} else {
		lvl = (c - qp/2) / (2 * qp)
		if lvl < 0 {
			lvl = 0
		}
	}
	if neg {
		return -lvl
	}
	return lvl
}

func dequantAC(lvl, qp int32) int32 {
	if lvl == 0 {
		return 0
	}
	neg := lvl < 0
	if neg {
		lvl = -lvl
	}
	var c int32
	if qp%2 == 1 {
		c = qp * (2*lvl + 1)
	} else {
		c = qp*(2*lvl+1) - 1
	}
	if neg {
		return -c
	}
	return c
}

func divRound(a, d int32) int32 {
	if a >= 0 {
		return (a + d/2) / d
	}
	return -((-a + d/2) / d)
}

// OpsQuant is the approximate instruction cost of quantizing or
// dequantizing one block.
const OpsQuant = 64 * 4

// ZigzagOrder is the standard zigzag scan mapping: position i of the
// scan reads coefficient ZigzagOrder[i] of the row-major block.
var ZigzagOrder = [64]int{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

// inverseZigzag[j] is the scan position of row-major coefficient j.
var inverseZigzag [64]int

func init() {
	for i, j := range ZigzagOrder {
		inverseZigzag[j] = i
	}
}

// Scan writes the zigzag scan of b into out.
func Scan(b *Block, out *[64]int32) {
	for i, j := range ZigzagOrder {
		out[i] = b[j]
	}
}

// Unscan reverses Scan.
func Unscan(in *[64]int32, b *Block) {
	for i, j := range ZigzagOrder {
		b[j] = in[i]
	}
}

// ScanPos returns the zigzag position of row-major coefficient index j.
func ScanPos(j int) int { return inverseZigzag[j] }
