package dct

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestForwardInverseRoundTrip(t *testing.T) {
	var b, orig Block
	rng := rand.New(rand.NewSource(1))
	for i := range b {
		b[i] = int32(rng.Intn(256)) - 128
	}
	orig = b
	Forward(&b)
	Inverse(&b)
	for i := range b {
		d := b[i] - orig[i]
		if d < -1 || d > 1 {
			t.Fatalf("roundtrip error at %d: %d vs %d", i, b[i], orig[i])
		}
	}
}

func TestQuickRoundTripBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var b, orig Block
		for i := range b {
			b[i] = int32(rng.Intn(511)) - 255 // inter residual range
		}
		orig = b
		Forward(&b)
		Inverse(&b)
		for i := range b {
			d := b[i] - orig[i]
			if d < -2 || d > 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDCTOfConstantBlock(t *testing.T) {
	var b Block
	for i := range b {
		b[i] = 100
	}
	Forward(&b)
	// DC = 8 * value for the orthonormal 8x8 DCT.
	if b[0] != 800 {
		t.Fatalf("DC of constant block = %d want 800", b[0])
	}
	for i := 1; i < 64; i++ {
		if b[i] != 0 {
			t.Fatalf("AC %d of constant block = %d want 0", i, b[i])
		}
	}
}

func TestDCTLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var a, b, sum Block
	for i := range a {
		a[i] = int32(rng.Intn(100))
		b[i] = int32(rng.Intn(100))
		sum[i] = a[i] + b[i]
	}
	Forward(&a)
	Forward(&b)
	Forward(&sum)
	for i := range sum {
		d := sum[i] - (a[i] + b[i])
		if d < -2 || d > 2 { // rounding tolerance
			t.Fatalf("linearity violated at %d: %d vs %d", i, sum[i], a[i]+b[i])
		}
	}
}

func TestDCTEnergyCompaction(t *testing.T) {
	// A smooth gradient should concentrate energy in low frequencies.
	var b Block
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			b[y*8+x] = int32(10*x + 5*y)
		}
	}
	Forward(&b)
	var low, high int64
	for i, j := range ZigzagOrder {
		e := int64(b[j]) * int64(b[j])
		if i < 10 {
			low += e
		} else {
			high += e
		}
	}
	if low < 100*high {
		t.Fatalf("poor energy compaction: low=%d high=%d", low, high)
	}
}

func TestQuantizerClamping(t *testing.T) {
	if NewQuantizer(0).QP != 1 || NewQuantizer(99).QP != 31 || NewQuantizer(8).QP != 8 {
		t.Fatal("QP clamping wrong")
	}
}

func TestQuantRoundTripErrorBound(t *testing.T) {
	f := func(seed int64, qpRaw uint8) bool {
		qp := int(qpRaw)%31 + 1
		q := NewQuantizer(qp)
		rng := rand.New(rand.NewSource(seed))
		var b Block
		for i := range b {
			b[i] = int32(rng.Intn(2047)) - 1023
		}
		orig := b
		q.QuantInter(&b)
		q.DequantInter(&b)
		for i := range b {
			d := b[i] - orig[i]
			if d < 0 {
				d = -d
			}
			// H.263 inter quantizer error bound: dead zone can swallow
			// values up to ~2.5*QP.
			if d > int32(3*qp) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantIntraDC(t *testing.T) {
	q := NewQuantizer(4)
	var b Block
	b[0] = 800
	q.QuantIntra(&b)
	if b[0] != 100 {
		t.Fatalf("intra DC quant: %d want 100", b[0])
	}
	q.DequantIntra(&b)
	if b[0] != 800 {
		t.Fatalf("intra DC dequant: %d want 800", b[0])
	}
}

func TestQuantSignSymmetry(t *testing.T) {
	f := func(v int32, qpRaw uint8) bool {
		v %= 2048
		qp := int32(qpRaw)%31 + 1
		p := quantAC(v, qp, false)
		n := quantAC(-v, qp, false)
		if p != -n {
			return false
		}
		return dequantAC(p, qp) == -dequantAC(n, qp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantZeroPreserved(t *testing.T) {
	for qp := int32(1); qp <= 31; qp++ {
		if dequantAC(0, qp) != 0 {
			t.Fatalf("dequant(0) != 0 at qp=%d", qp)
		}
	}
}

func TestZigzagIsPermutation(t *testing.T) {
	seen := make(map[int]bool)
	for _, j := range ZigzagOrder {
		if j < 0 || j > 63 || seen[j] {
			t.Fatalf("zigzag not a permutation at %d", j)
		}
		seen[j] = true
	}
	if len(seen) != 64 {
		t.Fatal("zigzag misses positions")
	}
}

func TestZigzagKnownPrefix(t *testing.T) {
	want := []int{0, 1, 8, 16, 9, 2}
	for i, w := range want {
		if ZigzagOrder[i] != w {
			t.Fatalf("zigzag[%d]=%d want %d", i, ZigzagOrder[i], w)
		}
	}
}

func TestScanUnscanRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var b, back Block
		var s [64]int32
		for i := range b {
			b[i] = rng.Int31n(1000) - 500
		}
		Scan(&b, &s)
		Unscan(&s, &back)
		return b == back
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestScanPosInverse(t *testing.T) {
	for j := 0; j < 64; j++ {
		if ZigzagOrder[ScanPos(j)] != j {
			t.Fatalf("ScanPos not inverse at %d", j)
		}
	}
}

func BenchmarkForward(b *testing.B) {
	var blk Block
	for i := range blk {
		blk[i] = int32(i * 3 % 255)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := blk
		Forward(&c)
	}
}

func BenchmarkInverse(b *testing.B) {
	var blk Block
	for i := range blk {
		blk[i] = int32(i * 3 % 255)
	}
	Forward(&blk)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := blk
		Inverse(&c)
	}
}
