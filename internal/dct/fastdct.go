package dct

// Fast integer approximations of the forward and inverse transform in
// the style of the AAN/Chen factorisations the production codecs use.
// The reference (float) transform in dct.go is what the study's
// instruction accounting models — the MoMuSys decoder runs the
// conformance IDCT — but the fast path is provided (and tested against
// the reference within a tolerance) for codec use outside the study.

// fxBasis is the Q13 fixed-point DCT basis; the fast transforms run
// direct fixed-point multiply-accumulate over it (not the minimal
// operation count of the true AAN flow graph, but integer-exact,
// branch-free, and allocation-free).
var fxBasis [8][8]int32

func init() {
	// Build the Q13 basis from the float basis used by the reference
	// transform so the two stay consistent by construction.
	for u := 0; u < 8; u++ {
		for x := 0; x < 8; x++ {
			v := cosTable[u][x] * 8192
			if v >= 0 {
				fxBasis[u][x] = int32(v + 0.5)
			} else {
				fxBasis[u][x] = int32(v - 0.5)
			}
		}
	}
}

// FastForward transforms spatial block b in place using fixed-point
// arithmetic. Results match Forward within ±2 per coefficient for 9-bit
// input (asserted by property test).
func FastForward(b *Block) {
	var tmp [64]int64
	for y := 0; y < 8; y++ {
		for u := 0; u < 8; u++ {
			var s int64
			for x := 0; x < 8; x++ {
				s += int64(b[y*8+x]) * int64(fxBasis[u][x])
			}
			tmp[y*8+u] = s
		}
	}
	for u := 0; u < 8; u++ {
		for v := 0; v < 8; v++ {
			var s int64
			for y := 0; y < 8; y++ {
				s += tmp[y*8+u] * int64(fxBasis[v][y])
			}
			b[v*8+u] = int32((s + (1 << 25)) >> 26)
		}
	}
}

// FastInverse inverts FastForward (and Forward) using fixed-point
// arithmetic, matching Inverse within ±2 per sample.
func FastInverse(b *Block) {
	var tmp [64]int64
	for u := 0; u < 8; u++ {
		for y := 0; y < 8; y++ {
			var s int64
			for v := 0; v < 8; v++ {
				s += int64(b[v*8+u]) * int64(fxBasis[v][y])
			}
			tmp[y*8+u] = s
		}
	}
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			var s int64
			for u := 0; u < 8; u++ {
				s += tmp[y*8+u] * int64(fxBasis[u][x])
			}
			b[y*8+x] = int32((s + (1 << 25)) >> 26)
		}
	}
}
