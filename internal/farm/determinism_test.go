// End-to-end determinism: the farm's core guarantee is that parallel
// execution of the paper's experiments is byte-identical to serial
// execution. These tests run the real harness sweeps — ratio sweep,
// every ablation, a full table, a figure series — at 1 and 8 workers
// and require identical structured results AND identical formatted
// text.
package farm_test

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/farm"
	"repro/internal/harness"
	"repro/internal/perf"
)

// pools under comparison: the serial reference and a deliberately
// oversubscribed parallel pool with a tiny queue to force scheduling
// interleavings.
func testPools() (*farm.Pool, *farm.Pool) {
	return farm.Serial(), farm.New(farm.Config{Workers: 8, Queue: 1})
}

func seriesText(t *testing.T, series []perf.Series) string {
	t.Helper()
	var sb strings.Builder
	for _, s := range series {
		s.Write(&sb)
		sb.WriteString("\n")
	}
	return sb.String()
}

func TestRatioSweepDeterminism(t *testing.T) {
	serial, parallel := testPools()
	wl := harness.Workload{W: 176, H: 144, Frames: 2}
	factors := []float64{1, 2, 4, 8, 16, 32, 64, 128}

	sPoints, err := harness.RunRatioSweepPool(context.Background(), serial, wl, factors)
	if err != nil {
		t.Fatal(err)
	}
	pPoints, err := harness.RunRatioSweepPool(context.Background(), parallel, wl, factors)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sPoints, pPoints) {
		t.Fatalf("ratio points differ:\nserial   %+v\nparallel %+v", sPoints, pPoints)
	}
	if s, p := harness.MemoryBoundCrossover(sPoints), harness.MemoryBoundCrossover(pPoints); s != p {
		t.Fatalf("crossover differs: serial %g parallel %g", s, p)
	}
	sText := seriesText(t, harness.RatioSweepSeries(sPoints))
	pText := seriesText(t, harness.RatioSweepSeries(pPoints))
	if sText != pText {
		t.Fatalf("ratio series text differs:\n--- serial ---\n%s--- parallel ---\n%s", sText, pText)
	}
}

func TestAblationDeterminism(t *testing.T) {
	serial, parallel := testPools()
	wl := harness.Workload{W: 176, H: 144, Frames: 2}
	colorWL := harness.Workload{W: 176, H: 144, Frames: 2, Objects: 2}

	cases := []struct {
		name string
		run  func(ctx context.Context, p *farm.Pool) ([]harness.AblationResult, error)
	}{
		{"search", func(ctx context.Context, p *farm.Pool) ([]harness.AblationResult, error) {
			return harness.RunSearchAblationPool(ctx, p, wl)
		}},
		{"prefetch", func(ctx context.Context, p *farm.Pool) ([]harness.AblationResult, error) {
			return harness.RunPrefetchAblationPool(ctx, p, wl, []int{0, 16, 48, 128})
		}},
		{"staging", func(ctx context.Context, p *farm.Pool) ([]harness.AblationResult, error) {
			return harness.RunStagingAblationPool(ctx, p, wl)
		}},
		{"coloring", func(ctx context.Context, p *farm.Pool) ([]harness.AblationResult, error) {
			return harness.RunColoringAblationPool(ctx, p, colorWL)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sRes, err := tc.run(context.Background(), serial)
			if err != nil {
				t.Fatal(err)
			}
			pRes, err := tc.run(context.Background(), parallel)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(sRes, pRes) {
				t.Fatalf("%s ablation results differ", tc.name)
			}
			sText := harness.FormatAblation(tc.name, sRes)
			pText := harness.FormatAblation(tc.name, pRes)
			if sText != pText {
				t.Fatalf("%s ablation text differs:\n--- serial ---\n%s--- parallel ---\n%s", tc.name, sText, pText)
			}
		})
	}
}

func TestTableDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full-resolution table in -short mode")
	}
	serial, parallel := testPools()
	spec, err := harness.TableSpecByNum(2)
	if err != nil {
		t.Fatal(err)
	}
	sTab, sRes, err := harness.RunTablePool(context.Background(), serial, spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	pTab, pRes, err := harness.RunTablePool(context.Background(), parallel, spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sTab.String() != pTab.String() {
		t.Fatalf("table text differs:\n--- serial ---\n%s--- parallel ---\n%s", sTab.String(), pTab.String())
	}
	if !reflect.DeepEqual(sRes, pRes) {
		t.Fatal("table raw results differ")
	}
	// The batch path must assemble the identical table from its flat
	// (table, resolution) job list.
	tabs, err := harness.RunTables(context.Background(), parallel, []harness.TableSpec{spec}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 1 || tabs[0].String() != sTab.String() {
		t.Fatal("RunTables output differs from RunTablePool")
	}
}

func TestFigureSweepDeterminism(t *testing.T) {
	serial, parallel := testPools()
	sizes := [][2]int{{160, 128}, {176, 144}, {320, 256}}
	sSeries, err := harness.Figure2Sweep(context.Background(), serial, 2, sizes)
	if err != nil {
		t.Fatal(err)
	}
	pSeries, err := harness.Figure2Sweep(context.Background(), parallel, 2, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sSeries, pSeries) {
		t.Fatalf("figure series differ:\nserial   %+v\nparallel %+v", sSeries, pSeries)
	}
	if sText, pText := seriesText(t, sSeries), seriesText(t, pSeries); sText != pText {
		t.Fatalf("figure series text differs:\n--- serial ---\n%s--- parallel ---\n%s", sText, pText)
	}
	// Each series must hold one point per size, in size order.
	for _, s := range sSeries {
		if len(s.X) != len(sizes) {
			t.Fatalf("series %q has %d points, want %d", s.Label, len(s.X), len(sizes))
		}
	}
	if sSeries[0].X[0] != "160x128" || sSeries[0].X[2] != "320x256" {
		t.Fatalf("points out of order: %v", sSeries[0].X)
	}
}
