package farm

// A bounded, multi-level FIFO queue — the admission-control primitive
// behind the study service's interactive-vs-batch scheduling. Lower
// level numbers pop first; within a level, strict FIFO. Push never
// blocks (a full queue is an error the caller turns into backpressure,
// e.g. 429 + Retry-After); Pop blocks until an item, context death, or
// Close.

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

var (
	// ErrQueueFull is returned by PriorityQueue.Push at capacity.
	ErrQueueFull = errors.New("farm: priority queue full")
	// ErrQueueClosed is returned by Push after Close, and by Pop once
	// the queue is closed and drained.
	ErrQueueClosed = errors.New("farm: priority queue closed")
)

// PriorityQueue is a bounded queue of `levels` FIFO lanes. All methods
// are safe for concurrent use.
type PriorityQueue[T any] struct {
	mu     sync.Mutex
	cond   *sync.Cond
	lanes  [][]T
	size   int
	cap    int
	closed bool
}

// NewPriorityQueue builds a queue with the given number of priority
// levels (level 0 pops first) and total capacity across levels.
// Both must be positive.
func NewPriorityQueue[T any](levels, capacity int) *PriorityQueue[T] {
	if levels <= 0 || capacity <= 0 {
		panic(fmt.Sprintf("farm: NewPriorityQueue(%d, %d): both must be positive", levels, capacity))
	}
	q := &PriorityQueue[T]{lanes: make([][]T, levels), cap: capacity}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push enqueues item at the given level, returning ErrQueueFull at
// capacity and ErrQueueClosed after Close. An out-of-range level is a
// caller bug and panics.
func (q *PriorityQueue[T]) Push(level int, item T) error {
	if level < 0 || level >= len(q.lanes) {
		panic(fmt.Sprintf("farm: PriorityQueue.Push level %d out of range [0, %d)", level, len(q.lanes)))
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrQueueClosed
	}
	if q.size >= q.cap {
		return ErrQueueFull
	}
	q.lanes[level] = append(q.lanes[level], item)
	q.size++
	q.cond.Signal()
	return nil
}

// Pop removes and returns the head of the highest-priority non-empty
// lane, with that lane's level, blocking while the queue is empty. It
// returns ctx.Err() if ctx dies first, and ErrQueueClosed once the
// queue is closed and fully drained (items pushed before Close still
// pop after it).
func (q *PriorityQueue[T]) Pop(ctx context.Context) (T, int, error) {
	var zero T
	// A context death must wake the cond.Wait below; the empty
	// critical section makes the broadcast ordered after either the
	// waiter is asleep or it has already seen ctx.Err().
	stop := context.AfterFunc(ctx, func() {
		q.mu.Lock()
		defer q.mu.Unlock()
		q.cond.Broadcast()
	})
	defer stop()
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if err := ctx.Err(); err != nil {
			return zero, 0, err
		}
		for level, lane := range q.lanes {
			if len(lane) == 0 {
				continue
			}
			item := lane[0]
			lane[0] = zero // release the reference for GC
			q.lanes[level] = lane[1:]
			if len(q.lanes[level]) == 0 {
				q.lanes[level] = nil // drop the drained backing array
			}
			q.size--
			return item, level, nil
		}
		if q.closed {
			return zero, 0, ErrQueueClosed
		}
		q.cond.Wait()
	}
}

// Close marks the queue closed: further Pushes fail, and Pops drain
// what remains then return ErrQueueClosed. Idempotent.
func (q *PriorityQueue[T]) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// Len reports how many items wait at the given level.
func (q *PriorityQueue[T]) Len(level int) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	if level < 0 || level >= len(q.lanes) {
		return 0
	}
	return len(q.lanes[level])
}

// Size reports the total queued items across levels.
func (q *PriorityQueue[T]) Size() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}
