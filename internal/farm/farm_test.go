package farm

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunPreservesOrder: results land at their job index no matter how
// workers interleave.
func TestRunPreservesOrder(t *testing.T) {
	const n = 64
	jobs := make([]Job[int], n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = Job[int]{
			Label: fmt.Sprintf("j%d", i),
			Run: func(ctx context.Context, env Env) (int, error) {
				// Reverse-staggered sleeps force out-of-order completion.
				time.Sleep(time.Duration((n-i)%7) * time.Millisecond)
				return i * i, nil
			},
		}
	}
	got, err := Run(context.Background(), New(Config{Workers: 8, Queue: 2}), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result %d = %d, want %d", i, v, i*i)
		}
	}
}

// TestEnvDeterminism: seeds and spaces depend on the index only.
func TestEnvDeterminism(t *testing.T) {
	collect := func(workers int) []int64 {
		seeds := make([]int64, 16)
		jobs := make([]Job[struct{}], 16)
		for i := range jobs {
			jobs[i] = Job[struct{}]{Run: func(ctx context.Context, env Env) (struct{}, error) {
				if env.Space == nil {
					t.Error("nil Space in Env")
				}
				if env.Seed == 0 {
					t.Error("zero seed in Env")
				}
				seeds[env.Index] = env.Seed
				return struct{}{}, nil
			}}
		}
		if _, err := Run(context.Background(), New(Config{Workers: workers, BaseSeed: 42}), jobs); err != nil {
			t.Fatal(err)
		}
		return seeds
	}
	serial := collect(1)
	parallel := collect(8)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("seed %d differs: serial %d parallel %d", i, serial[i], parallel[i])
		}
		if serial[i] != DeriveSeed(42, i) {
			t.Fatalf("seed %d is not DeriveSeed(42, %d)", i, i)
		}
	}
}

// TestFailFastErrorAttribution: Run reports a failure that really
// happened, correctly attributed to its job. With a single worker the
// choice is deterministic: the first failure in job order. With many
// workers either failing job may be the one that ran (the other can be
// skipped by the cancellation), but the attribution must always match.
func TestFailFastErrorAttribution(t *testing.T) {
	boom3 := errors.New("boom 3")
	boom7 := errors.New("boom 7")
	for _, workers := range []int{1, 4, 8} {
		jobs := make([]Job[int], 10)
		for i := range jobs {
			i := i
			jobs[i] = Job[int]{
				Label: fmt.Sprintf("j%d", i),
				Run: func(ctx context.Context, env Env) (int, error) {
					switch i {
					case 3:
						return 0, boom3
					case 7:
						return 0, boom7
					}
					return i, nil
				},
			}
		}
		_, err := Run(context.Background(), New(Config{Workers: workers}), jobs)
		var je *JobError
		if !errors.As(err, &je) {
			t.Fatalf("workers=%d: want *JobError, got %v", workers, err)
		}
		switch {
		case errors.Is(err, boom3) && je.Index == 3 && je.Label == "j3":
		case workers > 1 && errors.Is(err, boom7) && je.Index == 7 && je.Label == "j7":
		default:
			t.Fatalf("workers=%d: bad failure/attribution: %v", workers, err)
		}
		if workers == 1 && !errors.Is(err, boom3) {
			t.Fatalf("serial run must report the first failure in job order, got %v", err)
		}
	}
}

// TestCollectAllErrorDeterminism: collect-all mode reports the exact
// same failure set, in index order, at every worker count.
func TestCollectAllErrorDeterminism(t *testing.T) {
	boom := func(i int) error { return fmt.Errorf("boom %d", i) }
	render := func(workers int) string {
		jobs := make([]Job[int], 10)
		for i := range jobs {
			i := i
			jobs[i] = Job[int]{
				Label: fmt.Sprintf("j%d", i),
				Run: func(ctx context.Context, env Env) (int, error) {
					if i == 3 || i == 7 {
						return 0, boom(i)
					}
					return i, nil
				},
			}
		}
		_, err := Run(context.Background(), New(Config{Workers: workers, CollectAll: true}), jobs)
		if err == nil {
			t.Fatalf("workers=%d: want error", workers)
		}
		return err.Error()
	}
	serial := render(1)
	for _, workers := range []int{4, 8} {
		if got := render(workers); got != serial {
			t.Fatalf("collect-all error differs at workers=%d:\nserial   %s\nparallel %s", workers, serial, got)
		}
	}
}

// TestFailFastCancelsRemainingJobs: after the first failure, a running
// job observes cancellation and queued jobs are skipped.
func TestFailFastCancelsRemainingJobs(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int32
	blocked := Job[int]{Label: "blocked", Run: func(ctx context.Context, env Env) (int, error) {
		ran.Add(1)
		<-ctx.Done() // must be released by the pool's cancel
		return 0, ctx.Err()
	}}
	failing := Job[int]{Label: "failing", Run: func(ctx context.Context, env Env) (int, error) {
		ran.Add(1)
		return 0, boom
	}}
	tail := Job[int]{Label: "tail", Run: func(ctx context.Context, env Env) (int, error) {
		ran.Add(1)
		return 1, nil
	}}
	// Two workers: the blocked job and the failing job start together;
	// the tail jobs sit in the queue and must be skipped once the
	// failure cancels the run.
	jobs := []Job[int]{blocked, failing}
	for i := 0; i < 32; i++ {
		jobs = append(jobs, tail)
	}
	start := time.Now()
	_, err := Run(context.Background(), New(Config{Workers: 2, Queue: 1}), jobs)
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("run took %v: cancellation did not release the blocked job", elapsed)
	}
	if got := ran.Load(); got >= int32(len(jobs)) {
		t.Fatalf("all %d jobs ran despite fail-fast (ran=%d)", len(jobs), got)
	}
}

// TestCollectAllRunsEverythingAndReportsAllFailures.
func TestCollectAllRunsEverythingAndReportsAllFailures(t *testing.T) {
	var ran atomic.Int32
	jobs := make([]Job[int], 12)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{
			Label: fmt.Sprintf("j%d", i),
			Run: func(ctx context.Context, env Env) (int, error) {
				ran.Add(1)
				if i%4 == 1 {
					return 0, fmt.Errorf("fail %d", i)
				}
				return i, nil
			},
		}
	}
	got, err := Run(context.Background(), New(Config{Workers: 4, CollectAll: true}), jobs)
	if err == nil {
		t.Fatal("want error")
	}
	if ran.Load() != int32(len(jobs)) {
		t.Fatalf("collect-all ran %d of %d jobs", ran.Load(), len(jobs))
	}
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("want *RunError, got %T: %v", err, err)
	}
	if len(re.Failures) != 3 {
		t.Fatalf("want 3 failures, got %d: %v", len(re.Failures), err)
	}
	for i, f := range re.Failures {
		if want := 4*i + 1; f.Index != want {
			t.Fatalf("failure %d has index %d, want %d (index order)", i, f.Index, want)
		}
	}
	// Successful jobs still delivered their results.
	if got[0] != 0 || got[2] != 2 || got[11] != 11 {
		t.Fatalf("successful results corrupted: %v", got)
	}
}

// TestParentCancellationPropagates: cancelling the caller's context
// aborts the run and Run returns ctx.Err().
func TestParentCancellationPropagates(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once atomic.Bool
	jobs := make([]Job[int], 16)
	for i := range jobs {
		jobs[i] = Job[int]{Run: func(ctx context.Context, env Env) (int, error) {
			if once.CompareAndSwap(false, true) {
				close(started)
			}
			<-ctx.Done()
			return 0, ctx.Err()
		}}
	}
	go func() {
		<-started
		cancel()
	}()
	_, err := Run(ctx, New(Config{Workers: 2}), jobs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestPanicBecomesError: a panicking job fails its run instead of
// crashing the process.
func TestPanicBecomesError(t *testing.T) {
	jobs := []Job[int]{
		{Label: "ok", Run: func(ctx context.Context, env Env) (int, error) { return 1, nil }},
		{Label: "bad", Run: func(ctx context.Context, env Env) (int, error) { panic("kaboom") }},
	}
	_, err := Run(context.Background(), Serial(), jobs)
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("want panic converted to error, got %v", err)
	}
}

// TestProgressEventsAreSerializedAndComplete.
func TestProgressEventsAreSerializedAndComplete(t *testing.T) {
	const n = 20
	var events []Event
	p := New(Config{Workers: 5, Progress: func(ev Event) { events = append(events, ev) }})
	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{Label: fmt.Sprintf("j%d", i), Run: func(ctx context.Context, env Env) (int, error) {
			time.Sleep(time.Duration(i%3) * time.Millisecond)
			return i, nil
		}}
	}
	if _, err := Run(context.Background(), p, jobs); err != nil {
		t.Fatal(err)
	}
	if len(events) != n {
		t.Fatalf("got %d events, want %d", len(events), n)
	}
	seen := map[int]bool{}
	for i, ev := range events {
		if ev.Done != i+1 || ev.Total != n {
			t.Fatalf("event %d has Done=%d Total=%d", i, ev.Done, ev.Total)
		}
		if seen[ev.Index] {
			t.Fatalf("job %d reported twice", ev.Index)
		}
		seen[ev.Index] = true
		if ev.Label != fmt.Sprintf("j%d", ev.Index) {
			t.Fatalf("event %d label %q does not match index %d", i, ev.Label, ev.Index)
		}
	}
}

// TestMapPreservesItemOrder.
func TestMapPreservesItemOrder(t *testing.T) {
	items := []string{"a", "bb", "ccc", "dddd"}
	got, err := Map(context.Background(), New(Config{Workers: 3}), items,
		func(ctx context.Context, env Env, s string) (int, error) { return len(s), nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("Map result %v", got)
		}
	}
}

// TestEmptyAndNilPool: degenerate inputs behave.
func TestEmptyAndNilPool(t *testing.T) {
	got, err := Run(context.Background(), nil, []Job[int]{})
	if err != nil || len(got) != 0 {
		t.Fatalf("empty run: %v %v", got, err)
	}
	got, err = Run(context.Background(), nil, []Job[int]{
		{Run: func(ctx context.Context, env Env) (int, error) { return 7, nil }},
	})
	if err != nil || got[0] != 7 {
		t.Fatalf("nil pool run: %v %v", got, err)
	}
	if Default().Workers() <= 0 {
		t.Fatal("Default pool has no workers")
	}
	if Serial().Workers() != 1 {
		t.Fatal("Serial pool is not single-worker")
	}
}

// TestStress hammers the pool under the race detector: many jobs, a
// tiny queue, shared atomic counters.
func TestStress(t *testing.T) {
	const n = 500
	var sum atomic.Int64
	got, err := Map(context.Background(), New(Config{Workers: 16, Queue: 1}),
		make([]struct{}, n),
		func(ctx context.Context, env Env, _ struct{}) (int, error) {
			sum.Add(int64(env.Index))
			return env.Index, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Load() != n*(n-1)/2 {
		t.Fatalf("sum %d", sum.Load())
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("index %d got %d", i, v)
		}
	}
}

// TestDeriveSeedProperties: nonzero, stable, and spread.
func TestDeriveSeedProperties(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		s := DeriveSeed(1, i)
		if s == 0 {
			t.Fatalf("zero seed at %d", i)
		}
		if s != DeriveSeed(1, i) {
			t.Fatalf("unstable seed at %d", i)
		}
		if seen[s] {
			t.Fatalf("seed collision at %d", i)
		}
		seen[s] = true
	}
	if DeriveSeed(1, 0) == DeriveSeed(2, 0) {
		t.Fatal("base seed ignored")
	}
}
