package farm

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/obs"
)

// TestMetricsConcurrentRuns hammers the process-wide farm metrics from
// several concurrent Run calls (the production shape: nested sweeps and
// parallel studies share one pool type and one registry). Under -race
// this doubles as the data-race check on the instrumentation; the
// arithmetic checks prove the delta discipline — counters advance by
// exactly the work done, gauges return to zero.
func TestMetricsConcurrentRuns(t *testing.T) {
	reg := obs.Default()
	before := reg.Snapshot()

	const runs = 8
	const jobsPerRun = 24
	var wg sync.WaitGroup
	for r := 0; r < runs; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			p := New(Config{Workers: 3, BaseSeed: int64(r + 1)})
			_, err := Map(context.Background(), p, make([]struct{}, jobsPerRun),
				func(ctx context.Context, env Env, _ struct{}) (int, error) {
					return env.Index, nil
				})
			if err != nil {
				t.Errorf("run %d: %v", r, err)
			}
		}(r)
	}
	wg.Wait()

	after := reg.Snapshot()
	wantDone := uint64(runs * jobsPerRun)
	if got := after.Counters["farm_jobs_completed_total"] - before.Counters["farm_jobs_completed_total"]; got != wantDone {
		t.Errorf("completed delta = %d, want %d", got, wantDone)
	}
	if got := after.Histograms["farm_job_seconds"].Count - before.Histograms["farm_job_seconds"].Count; got != wantDone {
		t.Errorf("job_seconds delta = %d, want %d", got, wantDone)
	}
	if got := after.Gauges["farm_queue_depth"]; got != 0 {
		t.Errorf("queue depth after drain = %d, want 0", got)
	}
	if got := after.Gauges["farm_jobs_inflight"]; got != 0 {
		t.Errorf("in-flight after drain = %d, want 0", got)
	}
}

// TestMetricsFailureAccounting checks the outcome split: the failing
// job counts as failed, and every submitted job lands in exactly one of
// completed/failed/skipped (how many skip depends on how fast the
// fail-fast cancellation lands — the worker may pick up another queued
// job before the collector cancels, so only the sum is deterministic).
func TestMetricsFailureAccounting(t *testing.T) {
	reg := obs.Default()
	before := reg.Snapshot()

	boom := errors.New("boom")
	p := New(Config{Workers: 1})
	const n = 5
	_, err := Map(context.Background(), p, make([]struct{}, n),
		func(ctx context.Context, env Env, _ struct{}) (int, error) {
			if env.Index == 1 {
				return 0, boom
			}
			return env.Index, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}

	after := reg.Snapshot()
	delta := func(name string) uint64 { return after.Counters[name] - before.Counters[name] }
	if got := delta("farm_jobs_failed_total"); got != 1 {
		t.Errorf("failed delta = %d, want 1", got)
	}
	if got := delta("farm_jobs_completed_total"); got < 1 { // job 0 runs before the failure
		t.Errorf("completed delta = %d, want >= 1", got)
	}
	total := delta("farm_jobs_completed_total") + delta("farm_jobs_failed_total") + delta("farm_jobs_skipped_total")
	if total != n {
		t.Errorf("outcome total = %d, want %d (every job in exactly one bucket)", total, n)
	}
	if got := after.Gauges["farm_queue_depth"]; got != 0 {
		t.Errorf("queue depth after failure = %d, want 0", got)
	}
}
