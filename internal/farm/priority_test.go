package farm

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestPriorityQueueOrdering(t *testing.T) {
	q := NewPriorityQueue[string](2, 8)
	// Interleave pushes across levels; pops must drain level 0 first,
	// FIFO within each level.
	for _, p := range []struct {
		level int
		item  string
	}{{1, "b1"}, {0, "i1"}, {1, "b2"}, {0, "i2"}, {1, "b3"}} {
		if err := q.Push(p.level, p.item); err != nil {
			t.Fatalf("Push(%d, %s): %v", p.level, p.item, err)
		}
	}
	if got := q.Size(); got != 5 {
		t.Fatalf("Size() = %d, want 5", got)
	}
	if got := q.Len(0); got != 2 {
		t.Fatalf("Len(0) = %d, want 2", got)
	}
	want := []string{"i1", "i2", "b1", "b2", "b3"}
	for i, w := range want {
		item, level, err := q.Pop(context.Background())
		if err != nil {
			t.Fatalf("Pop %d: %v", i, err)
		}
		if item != w {
			t.Fatalf("Pop %d = %q (level %d), want %q", i, item, level, w)
		}
	}
}

func TestPriorityQueueFullAndClosed(t *testing.T) {
	q := NewPriorityQueue[int](2, 2)
	if err := q.Push(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := q.Push(0, 2); err != nil {
		t.Fatal(err)
	}
	// Capacity is shared across levels.
	if err := q.Push(0, 3); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Push at capacity: %v, want ErrQueueFull", err)
	}
	q.Close()
	if err := q.Push(0, 4); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("Push after Close: %v, want ErrQueueClosed", err)
	}
	// Items pushed before Close still drain, in priority order.
	if item, _, err := q.Pop(context.Background()); err != nil || item != 2 {
		t.Fatalf("Pop after Close = %d, %v; want 2, nil", item, err)
	}
	if item, _, err := q.Pop(context.Background()); err != nil || item != 1 {
		t.Fatalf("Pop after Close = %d, %v; want 1, nil", item, err)
	}
	if _, _, err := q.Pop(context.Background()); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("Pop on drained closed queue: %v, want ErrQueueClosed", err)
	}
}

func TestPriorityQueuePopBlocksUntilPushOrContext(t *testing.T) {
	q := NewPriorityQueue[int](1, 4)
	got := make(chan int, 1)
	go func() {
		item, _, err := q.Pop(context.Background())
		if err != nil {
			t.Error(err)
		}
		got <- item
	}()
	time.Sleep(10 * time.Millisecond) // let the popper block
	if err := q.Push(0, 42); err != nil {
		t.Fatal(err)
	}
	select {
	case item := <-got:
		if item != 42 {
			t.Fatalf("blocked Pop = %d, want 42", item)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Pop never woke after Push")
	}

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, err := q.Pop(ctx)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled Pop: %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Pop never woke after context cancellation")
	}
}

func TestPriorityQueueConcurrentProducersConsumers(t *testing.T) {
	const perProducer = 50
	q := NewPriorityQueue[int](3, 3*perProducer)
	var wg sync.WaitGroup
	for level := 0; level < 3; level++ {
		wg.Add(1)
		go func(level int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				for q.Push(level, level*perProducer+i) != nil {
					time.Sleep(time.Millisecond)
				}
			}
		}(level)
	}
	seen := make(chan int, 3*perProducer)
	var cg sync.WaitGroup
	for c := 0; c < 4; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for {
				item, _, err := q.Pop(context.Background())
				if err != nil {
					return
				}
				seen <- item
			}
		}()
	}
	wg.Wait()
	// Producers done; close once consumers drain the rest.
	q.Close()
	cg.Wait()
	close(seen)
	unique := map[int]bool{}
	for item := range seen {
		if unique[item] {
			t.Fatalf("item %d popped twice", item)
		}
		unique[item] = true
	}
	if len(unique) != 3*perProducer {
		t.Fatalf("popped %d unique items, want %d", len(unique), 3*perProducer)
	}
}
