// Package farm is the experiment-execution engine: it turns every
// simulation the repository can run into a schedulable Job executed by
// a context-aware worker pool.
//
// The paper's methodology is embarrassingly parallel — each table
// column, figure point and ablation configuration is an independent
// trace-driven simulation — so the farm provides exactly the structure
// that shape needs:
//
//   - a bounded job queue feeding a fixed set of workers (default
//     GOMAXPROCS), so arbitrarily long sweeps run with constant memory;
//   - per-job isolation: every job receives a fresh simmem.Space and a
//     deterministic seed derived from (BaseSeed, job index), never from
//     scheduling order;
//   - cancellation on first error (fail-fast, the default) or
//     collect-all mode that runs everything and reports every failure;
//   - progress callbacks serialized on the caller's goroutine;
//   - order-preserving aggregation: results come back indexed by job,
//     so parallel output is byte-identical to serial output.
//
// Determinism contract: a job must compute its result from its inputs
// and its Env only. Under that contract Run(p, jobs) returns identical
// results for every worker count, which the harness's determinism tests
// assert end-to-end (ratio sweep, ablations, tables, figures).
package farm

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/simmem"
)

// Farm metrics (process-wide, see internal/obs): queue depth counts
// jobs enqueued but not yet picked up by a worker, in-flight counts
// jobs mid-simulation, and the latency histogram times each job.
// Concurrent Run calls share them — the gauges are deltas, so the
// totals stay correct.
var (
	mQueueDepth = obs.Default().Gauge("farm_queue_depth")
	mInflight   = obs.Default().Gauge("farm_jobs_inflight")
	mCompleted  = obs.Default().Counter("farm_jobs_completed_total")
	mFailed     = obs.Default().Counter("farm_jobs_failed_total")
	mSkipped    = obs.Default().Counter("farm_jobs_skipped_total")
	mJobSeconds = obs.Default().Histogram("farm_job_seconds", nil)
)

// Env is the deterministic per-job environment. Seeds and spaces are
// functions of the job index alone, so results cannot depend on which
// worker ran the job or when.
type Env struct {
	Index int           // position of the job in the submitted slice
	Seed  int64         // DeriveSeed(pool BaseSeed, Index)
	Space *simmem.Space // fresh simulated address space, owned by the job
}

// Job is one schedulable simulation returning a value of type T.
type Job[T any] struct {
	Label string // for progress reporting and error messages
	Run   func(ctx context.Context, env Env) (T, error)
}

// ProgressFunc observes job completions. It is called from the
// goroutine that called Run — never concurrently — with Done increasing
// monotonically from 1 to Total.
type ProgressFunc func(Event)

// Event reports one completed (or skipped) job.
type Event struct {
	Index int    // job index
	Label string // job label
	Done  int    // jobs finished so far, including this one
	Total int    // total jobs in this Run
	Err   error  // non-nil if the job failed or was skipped
}

// Config parameterizes a Pool.
type Config struct {
	// Workers is the number of concurrent workers. <= 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// Queue bounds the dispatch queue depth. <= 0 means 2×Workers.
	Queue int
	// BaseSeed roots per-job seed derivation. 0 means 1.
	BaseSeed int64
	// CollectAll disables fail-fast: every job runs even after a
	// failure, and Run reports all failures together in index order.
	CollectAll bool
	// Progress, if non-nil, observes every job completion.
	Progress ProgressFunc
}

// Pool is a reusable execution configuration. Pools are stateless
// between Run calls (workers are spawned per call), so one Pool may be
// shared, reused, and used from nested Run calls freely.
type Pool struct {
	workers    int
	queue      int
	baseSeed   int64
	collectAll bool
	progress   ProgressFunc
}

// New builds a Pool from cfg, applying defaults.
func New(cfg Config) *Pool {
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	q := cfg.Queue
	if q <= 0 {
		q = 2 * w
	}
	seed := cfg.BaseSeed
	if seed == 0 {
		seed = 1
	}
	return &Pool{
		workers:    w,
		queue:      q,
		baseSeed:   seed,
		collectAll: cfg.CollectAll,
		progress:   cfg.Progress,
	}
}

// Default returns a pool sized to GOMAXPROCS — the right choice for
// CPU-bound trace simulation.
func Default() *Pool { return New(Config{}) }

// Serial returns a single-worker pool: the reference execution order
// that parallel runs must reproduce byte-for-byte.
func Serial() *Pool { return New(Config{Workers: 1}) }

// Workers reports the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// DeriveSeed maps (base, index) to a well-mixed nonzero seed using the
// splitmix64 finalizer. Deterministic: independent of scheduling.
func DeriveSeed(base int64, index int) int64 {
	z := uint64(base) + 0x9E3779B97F4A7C15*uint64(index+1)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return int64(z)
}

// JobError attributes a failure to one job.
type JobError struct {
	Index int
	Label string
	Err   error
}

func (e *JobError) Error() string {
	if e.Label != "" {
		return fmt.Sprintf("farm: job %d (%s): %v", e.Index, e.Label, e.Err)
	}
	return fmt.Sprintf("farm: job %d: %v", e.Index, e.Err)
}

func (e *JobError) Unwrap() error { return e.Err }

// RunError aggregates every failure of a collect-all Run, in job-index
// order.
type RunError struct {
	Failures []*JobError
}

func (e *RunError) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "farm: %d job(s) failed:", len(e.Failures))
	for _, f := range e.Failures {
		sb.WriteString("\n\t")
		sb.WriteString(f.Error())
	}
	return sb.String()
}

// Unwrap exposes the individual failures to errors.Is / errors.As.
func (e *RunError) Unwrap() []error {
	out := make([]error, len(e.Failures))
	for i, f := range e.Failures {
		out[i] = f
	}
	return out
}

// errSkipped marks jobs that never ran because an earlier failure
// cancelled the run (fail-fast mode).
var errSkipped = errors.New("farm: job skipped after earlier failure")

// outcome is one completion notice from a worker.
type outcome struct {
	index int
	err   error
}

// Run executes jobs on p's workers and returns the results in job
// order. A nil pool means Default().
//
// In fail-fast mode (the default) the first failure cancels the run
// context; jobs not yet started are skipped, and Run returns the
// lowest-indexed failure among the jobs that actually ran, wrapped in
// a *JobError. Which jobs ran depends on scheduling, so when several
// jobs can fail the reported one may vary with worker count — with a
// single worker it is always the first failure in job order. Use
// collect-all mode for fully deterministic error reporting: every job
// runs and all failures return together, in index order, as a
// *RunError. If ctx itself is cancelled, Run drains its workers and
// returns ctx's error.
func Run[T any](ctx context.Context, p *Pool, jobs []Job[T]) ([]T, error) {
	if p == nil {
		p = Default()
	}
	n := len(jobs)
	results := make([]T, n)
	if n == 0 {
		return results, ctx.Err()
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	workers := p.workers
	if workers > n {
		workers = n
	}
	queue := make(chan int, p.queue)
	done := make(chan outcome, workers)

	for w := 0; w < workers; w++ {
		go func() {
			// Workers drain the queue even after cancellation
			// (reporting a skip) so the feeder can never block
			// forever on the bounded queue and Run always sees
			// exactly n outcomes.
			for idx := range queue {
				mQueueDepth.Dec()
				var err error
				if runCtx.Err() != nil {
					err = errSkipped
				} else {
					env := Env{
						Index: idx,
						Seed:  DeriveSeed(p.baseSeed, idx),
						Space: simmem.NewSpace(0),
					}
					mInflight.Inc()
					start := time.Now()
					results[idx], err = runJob(runCtx, jobs[idx], env)
					mJobSeconds.ObserveSince(start)
					mInflight.Dec()
				}
				done <- outcome{index: idx, err: err}
			}
		}()
	}

	go func() {
		for i := range jobs {
			// Inc before the (possibly blocking) send: the gauge counts
			// "queued or being enqueued", so a full queue reads as deep,
			// not empty.
			mQueueDepth.Inc()
			queue <- i
		}
		close(queue)
	}()

	errs := make([]error, n)
	failed := false
	for completed := 1; completed <= n; completed++ {
		oc := <-done
		errs[oc.index] = oc.err
		switch {
		case oc.err == nil:
			mCompleted.Inc()
		case errors.Is(oc.err, errSkipped):
			mSkipped.Inc()
		default:
			mFailed.Inc()
		}
		if oc.err != nil && !failed && !p.collectAll {
			failed = true
			cancel()
		}
		if p.progress != nil {
			p.progress(Event{
				Index: oc.index,
				Label: jobs[oc.index].Label,
				Done:  completed,
				Total: n,
				Err:   oc.err,
			})
		}
	}

	if err := ctx.Err(); err != nil {
		return results, err
	}
	return results, selectError(p, jobs, errs)
}

// selectError reduces per-job errors to Run's return error,
// deterministically: index order, never completion order.
func selectError[T any](p *Pool, jobs []Job[T], errs []error) error {
	if p.collectAll {
		var re RunError
		for i, err := range errs {
			if err != nil {
				re.Failures = append(re.Failures, &JobError{Index: i, Label: jobs[i].Label, Err: err})
			}
		}
		if len(re.Failures) == 0 {
			return nil
		}
		return &re
	}
	// Fail-fast: prefer the lowest-indexed failure that is neither our
	// own skip marker nor cancellation fallout; fall back to the lowest
	// cancellation-shaped failure if nothing else exists.
	var fallback error
	var fallbackIdx int
	for i, err := range errs {
		if err == nil || errors.Is(err, errSkipped) {
			continue
		}
		if errors.Is(err, context.Canceled) {
			if fallback == nil {
				fallback, fallbackIdx = err, i
			}
			continue
		}
		return &JobError{Index: i, Label: jobs[i].Label, Err: err}
	}
	if fallback != nil {
		return &JobError{Index: fallbackIdx, Label: jobs[fallbackIdx].Label, Err: fallback}
	}
	return nil
}

// runJob executes one job, converting a panic into an error so one bad
// configuration cannot take down a whole sweep.
func runJob[T any](ctx context.Context, j Job[T], env Env) (out T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("farm: job %d (%s) panicked: %v\n%s", env.Index, j.Label, r, debug.Stack())
		}
	}()
	return j.Run(ctx, env)
}

// Map runs f over items with the pool and returns the outputs in item
// order. It is the common fan-out shape: the harness's sweeps are all
// Maps over configuration slices.
func Map[I, O any](ctx context.Context, p *Pool, items []I, f func(ctx context.Context, env Env, item I) (O, error)) ([]O, error) {
	return MapLabeled(ctx, p, items, nil, f)
}

// MapLabeled is Map with a per-item label for progress reporting and
// error attribution. A nil label falls back to "job N".
func MapLabeled[I, O any](ctx context.Context, p *Pool, items []I, label func(i int, item I) string, f func(ctx context.Context, env Env, item I) (O, error)) ([]O, error) {
	jobs := make([]Job[O], len(items))
	for i := range items {
		item := items[i]
		name := fmt.Sprintf("job %d", i)
		if label != nil {
			name = label(i, item)
		}
		jobs[i] = Job[O]{
			Label: name,
			Run: func(ctx context.Context, env Env) (O, error) {
				return f(ctx, env, item)
			},
		}
	}
	return Run(ctx, p, jobs)
}
