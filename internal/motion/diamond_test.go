package motion

import (
	"testing"
	"testing/quick"

	"repro/internal/simmem"
	"repro/internal/video"
)

// smooth returns a plane with a smooth 2-D gradient texture, on which
// the diamond descent's SAD landscape is monotone toward the optimum.
func smooth(sp *simmem.Space, w, h int) *video.Plane {
	p := video.NewPlane(sp, w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			p.Set(x, y, byte(2*x+3*y))
		}
	}
	return p
}

func TestDiamondFindsKnownShift(t *testing.T) {
	sp := simmem.NewSpace(0)
	ref := smooth(sp, 96, 96)
	// Diamond search descends the SAD gradient; on a smooth texture it
	// must find the exact displacement.
	for _, shift := range [][2]int{{0, 0}, {1, 0}, {0, 2}, {2, 2}, {-3, 1}} {
		cur := shifted(sp, ref, shift[0], shift[1])
		s := Searcher{Range: 8}
		mv, sad := s.SearchDiamond(simmem.Nop{}, cur, ref, nil, 32, 32)
		if sad != 0 {
			t.Errorf("shift %v: diamond SAD %d (mv %+v)", shift, sad, mv)
		}
	}
}

func TestDiamondFewerReferencesThanFull(t *testing.T) {
	sp := simmem.NewSpace(0)
	ref := textured(sp, 96, 96, 5)
	cur := shifted(sp, ref, 3, -2)
	var full, dia simmem.Count
	s1 := Searcher{Range: 8}
	s1.Search(&full, cur, ref, nil, 32, 32)
	s2 := Searcher{Range: 8}
	s2.SearchDiamond(&dia, cur, ref, nil, 32, 32)
	if dia.Loads >= full.Loads {
		t.Fatalf("diamond used %d loads, full %d — diamond should reference less", dia.Loads, full.Loads)
	}
}

func TestDiamondNeverWorseThanZeroMV(t *testing.T) {
	f := func(seed int64) bool {
		sp := simmem.NewSpace(0)
		ref := textured(sp, 64, 64, seed)
		cur := textured(sp, 64, 64, seed+1)
		s := Searcher{Range: 4}
		_, sad := s.SearchDiamond(simmem.Nop{}, cur, ref, nil, 16, 16)
		zero := SAD16(simmem.Nop{}, cur, ref, 16, 16, 16, 16, 1<<30)
		return sad <= zero
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDiamondRespectsBounds(t *testing.T) {
	sp := simmem.NewSpace(0)
	ref := textured(sp, 48, 48, 4)
	cur := textured(sp, 48, 48, 5)
	s := Searcher{Range: 16}
	// Corner macroblocks must not index out of the plane.
	s.SearchDiamond(simmem.Nop{}, cur, ref, nil, 0, 0)
	s.SearchDiamond(simmem.Nop{}, cur, ref, nil, 32, 32)
}

func TestSearchWithDispatch(t *testing.T) {
	sp := simmem.NewSpace(0)
	ref := textured(sp, 64, 64, 9)
	cur := shifted(sp, ref, 1, 1)
	s := Searcher{Range: 4}
	mvF, _ := s.SearchWith(FullSearch, simmem.Nop{}, cur, ref, nil, 16, 16)
	mvD, _ := s.SearchWith(DiamondSearch, simmem.Nop{}, cur, ref, nil, 16, 16)
	if mvF != (MV{X: -2, Y: -2}) {
		t.Errorf("full search found %+v", mvF)
	}
	if mvD != (MV{X: -2, Y: -2}) {
		t.Errorf("diamond search found %+v", mvD)
	}
}

func TestAlgorithmString(t *testing.T) {
	if FullSearch.String() != "full" || DiamondSearch.String() != "diamond" || Algorithm(9).String() != "unknown" {
		t.Fatal("Algorithm strings wrong")
	}
}

func TestDiamondPrefetches(t *testing.T) {
	sp := simmem.NewSpace(0)
	ref := textured(sp, 96, 96, 11)
	cur := textured(sp, 96, 96, 12)
	var ct simmem.Count
	s := Searcher{Range: 8, PrefetchInterval: 2}
	s.SearchDiamond(&ct, cur, ref, nil, 32, 32)
	if ct.Prefetches == 0 {
		t.Fatal("diamond search issued no prefetches with cadence set")
	}
}
