package motion

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/simmem"
	"repro/internal/video"
)

func textured(sp *simmem.Space, w, h int, seed int64) *video.Plane {
	p := video.NewPlane(sp, w, h)
	rng := rand.New(rand.NewSource(seed))
	for i := range p.Pix {
		p.Pix[i] = byte(rng.Intn(256))
	}
	return p
}

// shifted returns a copy of src displaced by (dx, dy): the content at
// (x, y) of the result equals src at (x-dx, y-dy), clamped.
func shifted(sp *simmem.Space, src *video.Plane, dx, dy int) *video.Plane {
	p := video.NewPlane(sp, src.W, src.H)
	for y := 0; y < p.H; y++ {
		for x := 0; x < p.W; x++ {
			sx := clampInt(x-dx, 0, src.W-1)
			sy := clampInt(y-dy, 0, src.H-1)
			p.Set(x, y, src.At(sx, sy))
		}
	}
	return p
}

func TestSADZeroForIdenticalBlocks(t *testing.T) {
	sp := simmem.NewSpace(0)
	p := textured(sp, 64, 64, 1)
	if sad := SAD16(simmem.Nop{}, p, p, 16, 16, 16, 16, 1<<30); sad != 0 {
		t.Fatalf("self-SAD = %d", sad)
	}
}

func TestSADTracesLoads(t *testing.T) {
	sp := simmem.NewSpace(0)
	a := textured(sp, 64, 64, 1)
	b := textured(sp, 64, 64, 2)
	var ct simmem.Count
	SAD16(&ct, a, b, 0, 0, 0, 0, 1<<30)
	if ct.LoadBytes != 2*16*16 {
		t.Fatalf("SAD16 traced %d load bytes, want 512", ct.LoadBytes)
	}
	if ct.OpCount == 0 {
		t.Fatal("SAD16 reported no ops")
	}
}

func TestSADEarlyTermination(t *testing.T) {
	sp := simmem.NewSpace(0)
	a := textured(sp, 64, 64, 1)
	b := textured(sp, 64, 64, 2)
	var full, short simmem.Count
	SAD16(&full, a, b, 0, 0, 0, 0, 1<<30)
	SAD16(&short, a, b, 0, 0, 0, 0, 0) // limit 0: stop after first row
	if short.LoadBytes >= full.LoadBytes {
		t.Fatalf("early termination did not reduce traffic: %d vs %d", short.LoadBytes, full.LoadBytes)
	}
}

func TestSearchFindsKnownShift(t *testing.T) {
	sp := simmem.NewSpace(0)
	ref := textured(sp, 96, 96, 3)
	for _, shift := range [][2]int{{0, 0}, {3, 2}, {-4, 5}, {7, -7}} {
		cur := shifted(sp, ref, shift[0], shift[1])
		s := Searcher{Range: 8}
		// Use an interior MB so the shifted content is fully present.
		// Convention: prediction = ref(x+mv), so content displaced by
		// (+dx,+dy) matches at MV (-dx,-dy).
		mv, sad := s.Search(simmem.Nop{}, cur, ref, nil, 32, 32)
		if mv.X != -shift[0]*2 || mv.Y != -shift[1]*2 {
			t.Errorf("shift %v: found MV (%d,%d) sad=%d", shift, mv.X/2, mv.Y/2, sad)
		}
		if sad != 0 {
			t.Errorf("shift %v: nonzero SAD %d at true offset", shift, sad)
		}
	}
}

func TestSearchRespectsBounds(t *testing.T) {
	sp := simmem.NewSpace(0)
	ref := textured(sp, 48, 48, 4)
	cur := textured(sp, 48, 48, 5)
	s := Searcher{Range: 16}
	// Corner macroblock: candidates must all stay in-plane (would panic
	// on slice bounds otherwise).
	mv, _ := s.Search(simmem.Nop{}, cur, ref, nil, 0, 0)
	if mv.X/2 < -0 && mv.Y/2 < 0 {
		t.Fatal("corner search produced out-of-range vector")
	}
	s.Search(simmem.Nop{}, cur, ref, nil, 32, 32) // bottom-right corner
}

func TestSearchMaskedIgnoresBackground(t *testing.T) {
	sp := simmem.NewSpace(0)
	ref := textured(sp, 96, 96, 6)
	cur := shifted(sp, ref, 2, 1)
	// Corrupt the current frame outside the mask: masked search must
	// still find the shift.
	alpha := video.NewPlane(sp, 96, 96)
	for y := 0; y < 96; y++ {
		for x := 0; x < 96; x++ {
			if x%2 == 0 {
				alpha.Set(x, y, 255)
			} else {
				cur.Set(x, y, byte(x*37+y)) // garbage on transparent pixels
			}
		}
	}
	s := Searcher{Range: 8}
	mv, sad := s.Search(simmem.Nop{}, cur, ref, alpha, 32, 32)
	if mv.X != -4 || mv.Y != -2 {
		t.Fatalf("masked search found (%d,%d) sad=%d want (-4,-2)", mv.X, mv.Y, sad)
	}
}

func TestSearchPrefetchCadence(t *testing.T) {
	sp := simmem.NewSpace(0)
	ref := textured(sp, 96, 96, 7)
	cur := textured(sp, 96, 96, 8)
	var ct simmem.Count
	s := Searcher{Range: 8, PrefetchInterval: 16}
	s.Search(&ct, cur, ref, nil, 32, 32)
	if ct.Prefetches == 0 {
		t.Fatal("no prefetches issued")
	}
	// The paper reports prefetches around 1/1000 of loads; ours should
	// be sparse too (well under 1% of loads with interval 16 and early
	// termination).
	if ct.Prefetches*50 > ct.Loads {
		t.Fatalf("prefetch cadence too dense: %d prefetches vs %d loads", ct.Prefetches, ct.Loads)
	}
}

func TestHalfPelRefinementImproves(t *testing.T) {
	sp := simmem.NewSpace(0)
	// Build ref, then current = ref shifted by exactly half a pixel
	// horizontally (average of neighbours).
	ref := textured(sp, 96, 96, 9)
	cur := video.NewPlane(sp, 96, 96)
	for y := 0; y < 96; y++ {
		for x := 0; x < 96; x++ {
			x1 := clampInt(x+1, 0, 95)
			cur.Set(x, y, byte((int(ref.At(x, y))+int(ref.At(x1, y))+1)>>1))
		}
	}
	s := Searcher{Range: 4}
	fullMV, fullSAD := s.Search(simmem.Nop{}, cur, ref, nil, 32, 32)
	mv, sad := RefineHalfPel(simmem.Nop{}, cur, ref, 32, 32, fullMV, fullSAD)
	if sad > fullSAD {
		t.Fatalf("refinement worsened SAD: %d -> %d", fullSAD, sad)
	}
	if mv.FullPel() {
		t.Fatalf("expected a half-pel winner, got %+v (sad %d vs full %d)", mv, sad, fullSAD)
	}
}

func TestCompensateFullPelExact(t *testing.T) {
	sp := simmem.NewSpace(0)
	ref := textured(sp, 64, 64, 10)
	dst := video.NewPlane(sp, 64, 64)
	Compensate(simmem.Nop{}, dst, ref, 16, 16, 16, MV{X: 2 * 2, Y: -3 * 2})
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			want := ref.At(16+x+2, 16+y-3)
			if got := dst.At(16+x, 16+y); got != want {
				t.Fatalf("MC mismatch at (%d,%d): %d want %d", x, y, got, want)
			}
		}
	}
}

func TestCompensateHalfPelAverages(t *testing.T) {
	sp := simmem.NewSpace(0)
	ref := video.NewPlane(sp, 32, 32)
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			ref.Set(x, y, byte(x*8))
		}
	}
	dst := video.NewPlane(sp, 32, 32)
	Compensate(simmem.Nop{}, dst, ref, 8, 8, 8, MV{X: 1, Y: 0})
	want := byte((int(ref.At(8, 8)) + int(ref.At(9, 8)) + 1) >> 1)
	if got := dst.At(8, 8); got != want {
		t.Fatalf("half-pel MC: %d want %d", got, want)
	}
}

func TestCompensateClampsAtEdges(t *testing.T) {
	sp := simmem.NewSpace(0)
	ref := textured(sp, 32, 32, 11)
	dst := video.NewPlane(sp, 32, 32)
	// Vector pointing far outside: must clamp, not panic.
	Compensate(simmem.Nop{}, dst, ref, 0, 0, 16, MV{X: -40, Y: -40})
	if dst.At(0, 0) != ref.At(0, 0) {
		t.Fatal("edge clamp wrong")
	}
}

func TestCompensateAvg(t *testing.T) {
	sp := simmem.NewSpace(0)
	f := video.NewPlane(sp, 32, 32)
	b := video.NewPlane(sp, 32, 32)
	f.Fill(100)
	b.Fill(50)
	dst := video.NewPlane(sp, 32, 32)
	sf := video.NewPlane(sp, 32, 32)
	sb := video.NewPlane(sp, 32, 32)
	CompensateAvg(simmem.Nop{}, dst, f, b, 8, 8, 16, MV{}, MV{}, sf, sb)
	if dst.At(10, 10) != 75 {
		t.Fatalf("bidirectional average = %d want 75", dst.At(10, 10))
	}
}

func TestQuickSearchNeverWorseThanZeroMV(t *testing.T) {
	f := func(seed int64) bool {
		sp := simmem.NewSpace(0)
		ref := textured(sp, 64, 64, seed)
		cur := textured(sp, 64, 64, seed+1)
		s := Searcher{Range: 4}
		_, sad := s.Search(simmem.Nop{}, cur, ref, nil, 16, 16)
		zero := SAD16(simmem.Nop{}, cur, ref, 16, 16, 16, 16, 1<<30)
		return sad <= zero
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMVFullPel(t *testing.T) {
	if !(MV{X: 2, Y: -4}).FullPel() {
		t.Fatal("even MV reported as half-pel")
	}
	if (MV{X: 1, Y: 0}).FullPel() {
		t.Fatal("odd MV reported as full-pel")
	}
}
