package motion

import (
	"repro/internal/simmem"
	"repro/internal/video"
)

// Algorithm selects the integer motion search strategy. The reference
// software supports both exhaustive and logarithmic searches; the
// ablation benchmarks compare their memory behaviour (the paper's
// locality argument — overlapping candidate windows — applies to the
// exhaustive search; diamond search trades references for a slightly
// worse match).
type Algorithm uint8

const (
	// FullSearch evaluates every candidate in the ±Range window.
	FullSearch Algorithm = iota
	// DiamondSearch runs the large/small diamond pattern descent.
	DiamondSearch
)

func (a Algorithm) String() string {
	switch a {
	case FullSearch:
		return "full"
	case DiamondSearch:
		return "diamond"
	default:
		return "unknown"
	}
}

// largeDiamond and smallDiamond are the classic LDSP/SDSP offsets.
var (
	largeDiamond = [8][2]int{{0, -2}, {1, -1}, {2, 0}, {1, 1}, {0, 2}, {-1, 1}, {-2, 0}, {-1, -1}}
	smallDiamond = [4][2]int{{0, -1}, {1, 0}, {0, 1}, {-1, 0}}
)

// SearchDiamond finds a full-pel MV with the diamond search pattern:
// repeat the large diamond around the best point until the centre wins,
// then refine with the small diamond. Bounds follow the same rules as
// Search. Returned MV is in half-pel units with zero low bits.
func (s *Searcher) SearchDiamond(t simmem.Tracer, cur, ref, alpha *video.Plane, mbx, mby int) (MV, int) {
	r := s.Range
	if r <= 0 {
		r = 8
	}
	sadAt := func(dx, dy, limit int) (int, bool) {
		if dx < -r || dx > r || dy < -r || dy > r {
			return 0, false
		}
		rx, ry := mbx+dx, mby+dy
		if rx < 0 || ry < 0 || rx+MBSize > ref.W || ry+MBSize > ref.H {
			return 0, false
		}
		if alpha != nil {
			return SAD16Masked(t, cur, ref, alpha, mbx, mby, rx, ry, limit), true
		}
		return SAD16(t, cur, ref, mbx, mby, rx, ry, limit), true
	}
	best, _ := sadAt(0, 0, 1<<30)
	cx, cy := 0, 0
	if best <= MBSize {
		return MV{}, best
	}
	// Large diamond descent.
	for step := 0; step < 2*r; step++ {
		improved := false
		for _, d := range largeDiamond {
			s.candidates++
			if s.PrefetchInterval > 0 && s.candidates%s.PrefetchInterval == 0 {
				py := mby + cy + d[1] + MBSize
				if py >= 0 && py < ref.H {
					t.Access(ref.Addr+uint64(py*ref.Stride+mbx), 0, simmem.Prefetch)
				}
			}
			if sad, ok := sadAt(cx+d[0], cy+d[1], best); ok && sad < best {
				best, cx, cy = sad, cx+d[0], cy+d[1]
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	// Small diamond refinement.
	for _, d := range smallDiamond {
		if sad, ok := sadAt(cx+d[0], cy+d[1], best); ok && sad < best {
			best, cx, cy = sad, cx+d[0], cy+d[1]
		}
	}
	return MV{X: cx * 2, Y: cy * 2}, best
}

// SearchWith dispatches on the algorithm.
func (s *Searcher) SearchWith(alg Algorithm, t simmem.Tracer, cur, ref, alpha *video.Plane, mbx, mby int) (MV, int) {
	if alg == DiamondSearch {
		return s.SearchDiamond(t, cur, ref, alpha, mbx, mby)
	}
	return s.Search(t, cur, ref, alpha, mbx, mby)
}
