// Package motion implements block motion estimation and compensation for
// 16×16 macroblocks (and 8×8 chroma blocks): instrumented SAD kernels,
// restricted-window full search with early termination, half-pel
// refinement with bilinear interpolation, and forward / backward /
// bidirectionally-interpolated compensation.
//
// The paper identifies motion estimation as the encoder's dominant
// kernel and explains why it generates cache locality despite streaming
// per-candidate references: the search proceeds over a restricted window
// with candidate offsets one pixel apart, so consecutive candidate
// blocks overlap almost entirely. The kernels here reproduce exactly
// that access pattern and report every pixel load to the tracer.
package motion

import (
	"repro/internal/simmem"
	"repro/internal/video"
)

// MV is a motion vector in half-pel units: full-pel displacement is
// X>>1, Y>>1, and the low bit selects half-pel interpolation.
type MV struct {
	X, Y int
}

// FullPel reports whether the vector has no half-pel component.
func (v MV) FullPel() bool { return v.X&1 == 0 && v.Y&1 == 0 }

// MBSize is the luma macroblock dimension.
const MBSize = 16

// opsPerSADRow approximates the graduated ALU instructions of one
// 16-pixel SAD row (load-expand, absolute difference, accumulate).
const opsPerSADRow = 40

// SAD16 computes the sum of absolute differences between the 16×16
// current-frame block at (cx, cy) and the reference block at (rx, ry),
// terminating early once the partial sum exceeds limit (pass a large
// limit to disable). Every pixel row read on both planes is reported to
// t. The caller guarantees both blocks lie inside their planes.
func SAD16(t simmem.Tracer, cur, ref *video.Plane, cx, cy, rx, ry, limit int) int {
	sad := 0
	rows := 0
	for row := 0; row < MBSize; row++ {
		co := (cy+row)*cur.Stride + cx
		ro := (ry+row)*ref.Stride + rx
		c := cur.Pix[co : co+MBSize]
		r := ref.Pix[ro : ro+MBSize]
		for i := 0; i < MBSize; i++ {
			d := int(c[i]) - int(r[i])
			if d < 0 {
				d = -d
			}
			sad += d
		}
		rows++
		if sad > limit {
			break
		}
	}
	// The rows actually traversed (early termination stops mid-block)
	// are reported as one strided block per plane: the same bytes and
	// graduated loads as per-row reporting, in one tracer event each.
	// Grouping by plane (cur rows, then ref rows) instead of
	// interleaving per row reorders the reference stream, which can
	// shift cache-state-dependent counters (misses) by a fraction of a
	// percent relative to pre-PR-2 output; every rate and trend the
	// paper reports is insensitive to it (asserted by the fallacies
	// tests), and live and replayed runs see the identical stream.
	simmem.AccessStrided(t, cur.Addr+uint64(cy*cur.Stride+cx), MBSize, cur.Stride, rows, simmem.Load)
	simmem.AccessStrided(t, ref.Addr+uint64(ry*ref.Stride+rx), MBSize, ref.Stride, rows, simmem.Load)
	t.Ops(uint64(rows) * opsPerSADRow)
	return sad
}

// SAD16Masked is SAD16 restricted to pixels whose alpha is nonzero in
// the current frame's binary alpha plane (arbitrary-shape VOPs match
// only object pixels). Alpha loads are reported too.
func SAD16Masked(t simmem.Tracer, cur, ref, alpha *video.Plane, cx, cy, rx, ry, limit int) int {
	sad := 0
	rows := 0
	for row := 0; row < MBSize; row++ {
		co := (cy+row)*cur.Stride + cx
		ro := (ry+row)*ref.Stride + rx
		ao := (cy+row)*alpha.Stride + cx
		c := cur.Pix[co : co+MBSize]
		r := ref.Pix[ro : ro+MBSize]
		a := alpha.Pix[ao : ao+MBSize]
		for i := 0; i < MBSize; i++ {
			if a[i] == 0 {
				continue
			}
			d := int(c[i]) - int(r[i])
			if d < 0 {
				d = -d
			}
			sad += d
		}
		rows++
		if sad > limit {
			break
		}
	}
	simmem.AccessStrided(t, cur.Addr+uint64(cy*cur.Stride+cx), MBSize, cur.Stride, rows, simmem.Load)
	simmem.AccessStrided(t, ref.Addr+uint64(ry*ref.Stride+rx), MBSize, ref.Stride, rows, simmem.Load)
	simmem.AccessStrided(t, alpha.Addr+uint64(cy*alpha.Stride+cx), MBSize, alpha.Stride, rows, simmem.Load)
	t.Ops(uint64(rows) * (opsPerSADRow + 16))
	return sad
}

// Searcher runs restricted-window full search as the MoMuSys encoder
// does: candidates at one-pixel offsets over a ±Range window, clamped to
// the plane interior, with the zero vector evaluated first to seed early
// termination. PrefetchInterval > 0 makes the kernel issue one software
// prefetch of the next candidate row every PrefetchInterval candidate
// evaluations, modelling the MIPSpro compiler's conservative prefetch
// insertion (about 1 prefetch per 1000 graduated loads in the paper).
type Searcher struct {
	Range            int
	PrefetchInterval int

	candidates int // internal counter driving prefetch cadence
}

// Search finds the best full-pel MV for the macroblock whose top-left
// luma corner is (mbx, mby), searching ref. alpha may be nil for
// rectangular VOPs. The returned MV is in half-pel units with zero low
// bits; the SAD of the winner is returned alongside.
func (s *Searcher) Search(t simmem.Tracer, cur, ref, alpha *video.Plane, mbx, mby int) (MV, int) {
	r := s.Range
	if r <= 0 {
		r = 8
	}
	sadAt := func(dx, dy, limit int) int {
		rx, ry := mbx+dx, mby+dy
		if alpha != nil {
			return SAD16Masked(t, cur, ref, alpha, mbx, mby, rx, ry, limit)
		}
		return SAD16(t, cur, ref, mbx, mby, rx, ry, limit)
	}
	// Zero vector first: seeds early termination and gets the bias the
	// standard gives it (favour (0,0) on ties to shorten MV codes).
	best := sadAt(0, 0, 1<<30)
	bestMV := MV{}
	if best <= MBSize { // essentially perfect match; stop immediately
		return bestMV, best
	}
	for dy := -r; dy <= r; dy++ {
		if mby+dy < 0 || mby+dy+MBSize > ref.H {
			continue
		}
		for dx := -r; dx <= r; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			if mbx+dx < 0 || mbx+dx+MBSize > ref.W {
				continue
			}
			s.candidates++
			if s.PrefetchInterval > 0 && s.candidates%s.PrefetchInterval == 0 {
				// Prefetch the first row of the next candidate line.
				py := mby + dy + MBSize
				if py < ref.H {
					t.Access(ref.Addr+uint64(py*ref.Stride+mbx), 0, simmem.Prefetch)
				}
			}
			sad := sadAt(dx, dy, best)
			if sad < best {
				best = sad
				bestMV = MV{X: dx * 2, Y: dy * 2}
			}
		}
	}
	return bestMV, best
}

// RefineHalfPel improves a full-pel winner by testing the eight half-pel
// neighbours on a bilinearly interpolated reference, as the MPEG-4
// encoder does after integer search. It returns the refined half-pel MV
// and its SAD.
func RefineHalfPel(t simmem.Tracer, cur, ref *video.Plane, mbx, mby int, full MV, fullSAD int) (MV, int) {
	best, bestMV := fullSAD, full
	for _, d := range [8][2]int{{-1, -1}, {0, -1}, {1, -1}, {-1, 0}, {1, 0}, {-1, 1}, {0, 1}, {1, 1}} {
		cand := MV{X: full.X + d[0], Y: full.Y + d[1]}
		sad, ok := sadHalfPel(t, cur, ref, mbx, mby, cand, best)
		if ok && sad < best {
			best, bestMV = sad, cand
		}
	}
	return bestMV, best
}

// sadHalfPel computes SAD against the half-pel interpolated reference.
// Returns ok=false if the interpolation support would leave the plane.
func sadHalfPel(t simmem.Tracer, cur, ref *video.Plane, mbx, mby int, mv MV, limit int) (int, bool) {
	bx := mbx + (mv.X >> 1)
	by := mby + (mv.Y >> 1)
	hx := mv.X & 1
	hy := mv.Y & 1
	if bx < 0 || by < 0 || bx+MBSize+hx > ref.W || by+MBSize+hy > ref.H {
		return 0, false
	}
	sad := 0
	rows := 0
	for row := 0; row < MBSize; row++ {
		co := (mby+row)*cur.Stride + mbx
		c := cur.Pix[co : co+MBSize]
		r0 := (by + row) * ref.Stride
		r1 := r0
		if hy == 1 {
			r1 = r0 + ref.Stride
		}
		for i := 0; i < MBSize; i++ {
			p := interpPixel(ref, r0, r1, bx+i, hx)
			d := int(c[i]) - p
			if d < 0 {
				d = -d
			}
			sad += d
		}
		rows++
		if sad > limit {
			break
		}
	}
	simmem.AccessStrided(t, cur.Addr+uint64(mby*cur.Stride+mbx), MBSize, cur.Stride, rows, simmem.Load)
	simmem.AccessStrided(t, ref.Addr+uint64(by*ref.Stride+bx), MBSize+hx, ref.Stride, rows, simmem.Load)
	if hy == 1 {
		simmem.AccessStrided(t, ref.Addr+uint64((by+1)*ref.Stride+bx), MBSize+hx, ref.Stride, rows, simmem.Load)
	}
	t.Ops(uint64(rows) * (opsPerSADRow + 24))
	return sad, true
}

func interpPixel(ref *video.Plane, r0, r1, x, hx int) int {
	switch {
	case hx == 0 && r0 == r1:
		return int(ref.Pix[r0+x])
	case hx == 1 && r0 == r1:
		return (int(ref.Pix[r0+x]) + int(ref.Pix[r0+x+1]) + 1) >> 1
	case hx == 0:
		return (int(ref.Pix[r0+x]) + int(ref.Pix[r1+x]) + 1) >> 1
	default:
		return (int(ref.Pix[r0+x]) + int(ref.Pix[r0+x+1]) +
			int(ref.Pix[r1+x]) + int(ref.Pix[r1+x+1]) + 2) >> 2
	}
}

// Compensate copies the motion-compensated size×size reference block for
// the block whose top-left corner in dst is (bx, by), displaced by the
// half-pel vector mv, into dst. Out-of-range interpolation support is
// clamped to the plane edge (unrestricted-MC clamping in place of
// physical padding). Loads from ref and stores to dst are traced.
func Compensate(t simmem.Tracer, dst, ref *video.Plane, bx, by, size int, mv MV) {
	CompensateTo(t, dst, ref, bx, by, bx, by, size, mv)
}

// CompensateTo is Compensate with independent block origins: the
// prediction for the reference block at (srcX, srcY) displaced by mv is
// written to dst at (dx, dy). The codec compensates into a small
// macroblock buffer (dx, dy = 0), as the reference software does.
func CompensateTo(t simmem.Tracer, dst, ref *video.Plane, dx, dy, srcX, srcY, size int, mv MV) {
	sx := srcX + (mv.X >> 1)
	sy := srcY + (mv.Y >> 1)
	hx := mv.X & 1
	hy := mv.Y & 1
	for row := 0; row < size; row++ {
		y0 := clampInt(sy+row, 0, ref.H-1)
		y1 := clampInt(y0+hy, 0, ref.H-1)
		do := (dy+row)*dst.Stride + dx
		d := dst.Pix[do : do+size]
		for i := 0; i < size; i++ {
			x0 := clampInt(sx+i, 0, ref.W-1)
			x1 := clampInt(x0+hx, 0, ref.W-1)
			v := (int(ref.Pix[y0*ref.Stride+x0]) + int(ref.Pix[y0*ref.Stride+x1]) +
				int(ref.Pix[y1*ref.Stride+x0]) + int(ref.Pix[y1*ref.Stride+x1]) + 2) >> 2
			if hx == 0 && hy == 0 {
				v = int(ref.Pix[y0*ref.Stride+x0])
			}
			d[i] = byte(v)
		}
		simmem.AccessRunUnit(t, ref.Addr+uint64(y0*ref.Stride+clampInt(sx, 0, ref.W-1)), size+hx, 1, simmem.Load)
		if hy == 1 {
			simmem.AccessRunUnit(t, ref.Addr+uint64(y1*ref.Stride+clampInt(sx, 0, ref.W-1)), size+hx, 1, simmem.Load)
		}
		simmem.AccessRunUnit(t, dst.Addr+uint64(do), size, 1, simmem.Store)
		t.Ops(uint64(size) * 3)
	}
}

// CompensateAvg writes the average of forward and backward compensated
// predictions (B-VOP interpolated mode) into dst.
func CompensateAvg(t simmem.Tracer, dst, fwd, bwd *video.Plane, bx, by, size int, fmv, bmv MV, scratchF, scratchB *video.Plane) {
	CompensateAvgTo(t, dst, fwd, bwd, bx, by, bx, by, size, fmv, bmv, scratchF, scratchB)
}

// CompensateAvgTo is CompensateAvg with independent destination origin;
// scratchF and scratchB are written at the destination origin and may be
// macroblock-sized buffers.
func CompensateAvgTo(t simmem.Tracer, dst, fwd, bwd *video.Plane, dx, dy, srcX, srcY, size int, fmv, bmv MV, scratchF, scratchB *video.Plane) {
	CompensateTo(t, scratchF, fwd, dx, dy, srcX, srcY, size, fmv)
	CompensateTo(t, scratchB, bwd, dx, dy, srcX, srcY, size, bmv)
	for row := 0; row < size; row++ {
		fo := (dy+row)*scratchF.Stride + dx
		bo := (dy+row)*scratchB.Stride + dx
		do := (dy+row)*dst.Stride + dx
		f := scratchF.Pix[fo : fo+size]
		b := scratchB.Pix[bo : bo+size]
		d := dst.Pix[do : do+size]
		for i := 0; i < size; i++ {
			d[i] = byte((int(f[i]) + int(b[i]) + 1) >> 1)
		}
		simmem.AccessRunUnit(t, scratchF.Addr+uint64(fo), size, 1, simmem.Load)
		simmem.AccessRunUnit(t, scratchB.Addr+uint64(bo), size, 1, simmem.Load)
		simmem.AccessRunUnit(t, dst.Addr+uint64(do), size, 1, simmem.Store)
		t.Ops(uint64(size) * 2)
	}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
