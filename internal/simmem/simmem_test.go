package simmem

import (
	"testing"
	"testing/quick"
)

func TestSpaceAllocAlignment(t *testing.T) {
	s := NewSpace(0)
	a := s.Alloc(100, 64)
	if a%64 != 0 {
		t.Fatalf("alloc not 64-aligned: %#x", a)
	}
	if a == 0 {
		t.Fatal("alloc returned address 0")
	}
	b := s.Alloc(10, 1)
	if b < a+100 {
		t.Fatalf("overlapping allocations: a=%#x..%#x b=%#x", a, a+100, b)
	}
	p := s.AllocPage(1)
	if p%PageSize != 0 {
		t.Fatalf("AllocPage not page-aligned: %#x", p)
	}
}

func TestSpaceZeroValueUsable(t *testing.T) {
	var s Space
	a := s.Alloc(8, 8)
	if a == 0 {
		t.Fatal("zero-value Space handed out address 0")
	}
}

func TestSpaceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var s Space
	s.Alloc(-1, 1)
}

func TestQuickAllocDisjoint(t *testing.T) {
	f := func(sizes []uint16) bool {
		s := NewSpace(0)
		type rng struct{ lo, hi uint64 }
		var prev []rng
		for _, sz := range sizes {
			n := int(sz)%4096 + 1
			a := s.Alloc(n, 16)
			if a%16 != 0 {
				return false
			}
			for _, p := range prev {
				if a < p.hi && a+uint64(n) > p.lo {
					return false // overlap
				}
			}
			prev = append(prev, rng{a, a + uint64(n)})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAccessRunCoversExactBytes(t *testing.T) {
	cases := []struct {
		addr uint64
		n    int
	}{
		{0x1000, 0}, {0x1000, 1}, {0x1000, 7}, {0x1000, 8}, {0x1000, 16},
		{0x1001, 16}, {0x1003, 29}, {0x1007, 1}, {0x1005, 3},
	}
	for _, c := range cases {
		var ct Count
		AccessRun(&ct, c.addr, c.n, Load)
		if ct.LoadBytes != uint64(c.n) {
			t.Errorf("addr=%#x n=%d: covered %d bytes", c.addr, c.n, ct.LoadBytes)
		}
	}
}

func TestQuickAccessRunExactCoverage(t *testing.T) {
	f := func(addrOff uint8, n uint16) bool {
		addr := 0x4000 + uint64(addrOff)
		nn := int(n) % 512
		var ct Count
		AccessRun(&ct, addr, nn, Store)
		return ct.StoreBytes == uint64(nn)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAccessRunWordEfficiency(t *testing.T) {
	// An aligned 64-byte run should be 8 word accesses, not 64 byte ones.
	var ct Count
	AccessRun(&ct, 0x2000, 64, Load)
	if ct.Loads != 8 {
		t.Fatalf("aligned 64B run used %d accesses, want 8", ct.Loads)
	}
}

func TestAccessStrided(t *testing.T) {
	var ct Count
	AccessStrided(&ct, 0x8000, 16, 720, 16, Load)
	if ct.LoadBytes != 16*16 {
		t.Fatalf("strided covered %d bytes, want 256", ct.LoadBytes)
	}
}

func TestCountTracerKinds(t *testing.T) {
	var ct Count
	ct.Access(0x100, 4, Load)
	ct.Access(0x104, 4, Store)
	ct.Access(0x108, 4, Prefetch)
	ct.Ops(42)
	if ct.Loads != 1 || ct.Stores != 1 || ct.Prefetches != 1 || ct.OpCount != 42 {
		t.Fatalf("counts wrong: %+v", ct)
	}
}

func TestKindString(t *testing.T) {
	if Load.String() != "load" || Store.String() != "store" ||
		Prefetch.String() != "prefetch" || Kind(9).String() != "unknown" {
		t.Fatal("Kind.String mismatch")
	}
}

func TestNopTracer(t *testing.T) {
	var n Nop
	n.Access(1, 2, Load) // must not panic
	n.Ops(3)
}

func TestMultiTracerFanout(t *testing.T) {
	var a, b Count
	m := Multi{&a, &b}
	m.Access(0x100, 4, Load)
	m.Run(0x200, 64, 1, Store)
	m.Ops(5)
	if a.Loads != 1 || b.Loads != 1 {
		t.Fatal("Access not fanned out")
	}
	if a.Stores != 64 || b.Stores != 64 {
		t.Fatal("Run not fanned out")
	}
	if a.OpCount != 5 || b.OpCount != 5 {
		t.Fatal("Ops not fanned out")
	}
}

func TestRunCountsUnits(t *testing.T) {
	var c Count
	c.Run(0x1000, 64, 4, Load)
	if c.Loads != 16 || c.LoadBytes != 64 {
		t.Fatalf("unit-4 run counted %d refs %d bytes", c.Loads, c.LoadBytes)
	}
	c.Run(0x1000, 65, 4, Load) // rounds up
	if c.Loads != 16+17 {
		t.Fatalf("partial unit not rounded up: %d", c.Loads)
	}
	c.Run(0x1000, 0, 4, Load) // no-op
	// Prefetch runs count per covered line — one prefetch instruction
	// fetches a whole line — matching cache.Hierarchy on the same stream.
	c.Run(0x1000, 8, 0, Prefetch)
	if c.Prefetches != 1 {
		t.Fatalf("one-line prefetch run should count once: %d", c.Prefetches)
	}
	c.Run(0x1000+DefaultLineBytes-4, 8, 0, Prefetch) // straddles a line boundary
	if c.Prefetches != 3 {
		t.Fatalf("straddling prefetch run should cover 2 lines: %d", c.Prefetches)
	}
}

func TestPageColoringStaggersAllocations(t *testing.T) {
	s := NewSpace(0)
	a := s.AllocPage(100)
	b := s.AllocPage(100)
	c := s.AllocPage(100)
	// Consecutive page allocations must land on distinct page offsets
	// (cache colours).
	if a%PageSize == b%PageSize || b%PageSize == c%PageSize {
		t.Fatalf("allocations share cache colour: %#x %#x %#x", a, b, c)
	}
	// With colouring disabled they are exactly page aligned.
	s2 := NewSpace(0)
	s2.DisableColoring()
	d := s2.AllocPage(100)
	e := s2.AllocPage(100)
	if d%PageSize != 0 || e%PageSize != 0 {
		t.Fatalf("uncoloured allocations not page aligned: %#x %#x", d, e)
	}
}

func TestBrkGrowsMonotonically(t *testing.T) {
	s := NewSpace(0)
	prev := s.Brk()
	for i := 0; i < 10; i++ {
		s.AllocPage(1000)
		if s.Brk() <= prev {
			t.Fatal("Brk did not grow")
		}
		prev = s.Brk()
	}
}
