// Package simmem provides a simulated flat address space and an access
// tracing interface that couples the codec's data structures to the cache
// simulator.
//
// The paper measures the MoMuSys codec with hardware performance counters
// on SGI machines. We do not have that hardware; instead every major
// buffer in the codec (frame planes, macroblock scratch, coefficient
// arrays, bitstream buffers) is assigned an address range in a simulated
// address space, and the codec's kernels report their loads, stores and
// prefetches to a Tracer. A trace-driven memory-hierarchy model behind
// the Tracer then computes exactly the counter values the paper reports.
//
// Tracing granularity: the MIPSpro compiler at -O3 issues mostly 32- and
// 64-bit loads over pixel data; kernels here report accesses at 4- or
// 8-byte granularity for contiguous runs (see AccessRun), which matches
// the graduated-load counts of compiled C within a small constant factor.
package simmem

// Kind distinguishes the access types the R10K/R12K counters distinguish.
type Kind uint8

const (
	Load Kind = iota
	Store
	Prefetch
)

func (k Kind) String() string {
	switch k {
	case Load:
		return "load"
	case Store:
		return "store"
	case Prefetch:
		return "prefetch"
	default:
		return "unknown"
	}
}

// Tracer receives the memory behaviour of instrumented code.
//
// Access reports a single memory operation of the given size in bytes.
//
// Run reports a contiguous run of n bytes referenced as unit-sized
// accesses (unit 1 models the byte loads the MIPSpro compiler emits in
// pixel kernels, unit 4 int32 coefficient traffic, unit 8 word copies).
// A Run counts n/unit graduated memory operations but — because
// same-line references cannot change an LRU cache's state between each
// other — implementations may probe each covered cache line only once.
// Prefetch runs count one prefetch per covered cache line (one prefetch
// instruction fetches one line); all Tracers in this repository agree on
// that convention so the same stream yields the same counters everywhere.
//
// Ops reports n non-memory (ALU/branch) instructions, used by the timing
// model to estimate graduated instruction counts.
type Tracer interface {
	Access(addr uint64, size uint32, kind Kind)
	Run(addr uint64, n int, unit uint32, kind Kind)
	Ops(n uint64)
}

// StridedTracer is an optional Tracer extension for 2-D block traffic:
// rows of rowBytes bytes separated by stride bytes, rows times, as
// unit-sized accesses — exactly equivalent to rows consecutive Run
// calls, but delivered as one event. The block kernels (SAD, motion
// compensation, DCT gathers) dominate the trace; batching their rows
// into one call removes the per-row call overhead from the live path
// and lets trace recorders store one fixed-width record per block
// instead of one per row.
type StridedTracer interface {
	RunStrided(addr uint64, rowBytes, stride, rows int, unit uint32, kind Kind)
}

// Nop is a Tracer that discards everything. It lets the codec run at full
// speed when no measurement is wanted.
type Nop struct{}

// Access implements Tracer.
func (Nop) Access(uint64, uint32, Kind) {}

// Run implements Tracer.
func (Nop) Run(uint64, int, uint32, Kind) {}

// RunStrided implements StridedTracer.
func (Nop) RunStrided(uint64, int, int, int, uint32, Kind) {}

// Ops implements Tracer.
func (Nop) Ops(uint64) {}

// Count is a Tracer that only counts events, useful in tests.
type Count struct {
	Loads, Stores, Prefetches uint64
	LoadBytes, StoreBytes     uint64
	OpCount                   uint64

	// LineBytes is the cache-line size used to count prefetches (one
	// prefetch instruction per covered line, matching what a hardware
	// counter behind a cache.Hierarchy reports for the same stream).
	// Zero means DefaultLineBytes.
	LineBytes int
}

// DefaultLineBytes is the L1 line size shared by every machine of the
// paper, used by Count when no explicit line size is configured.
const DefaultLineBytes = 32

// Access implements Tracer.
func (c *Count) Access(_ uint64, size uint32, kind Kind) {
	switch kind {
	case Load:
		c.Loads++
		c.LoadBytes += uint64(size)
	case Store:
		c.Stores++
		c.StoreBytes += uint64(size)
	case Prefetch:
		c.Prefetches++
	}
}

// Run implements Tracer. Prefetch runs count one prefetch per covered
// line (see Tracer), so Count and a cache.Hierarchy report identical
// prefetch totals for the same stream.
func (c *Count) Run(addr uint64, n int, unit uint32, kind Kind) {
	if n <= 0 {
		return
	}
	if unit == 0 {
		unit = 1
	}
	switch kind {
	case Load:
		c.Loads += RunRefs(n, unit)
		c.LoadBytes += uint64(n)
	case Store:
		c.Stores += RunRefs(n, unit)
		c.StoreBytes += uint64(n)
	case Prefetch:
		c.Prefetches += c.coveredLines(addr, n)
	}
}

// RunStrided implements StridedTracer: identical counting to rows
// consecutive Run calls.
func (c *Count) RunStrided(addr uint64, rowBytes, stride, rows int, unit uint32, kind Kind) {
	for r := 0; r < rows; r++ {
		c.Run(addr, rowBytes, unit, kind)
		addr += uint64(stride)
	}
}

// coveredLines returns the number of cache lines touched by [addr,
// addr+n).
func (c *Count) coveredLines(addr uint64, n int) uint64 {
	lb := uint64(c.LineBytes)
	if lb == 0 {
		lb = DefaultLineBytes
	}
	return (addr+uint64(n)-1)/lb - addr/lb + 1
}

// Ops implements Tracer.
func (c *Count) Ops(n uint64) { c.OpCount += n }

// Multi fans one access stream out to several tracers. The harness uses
// it to measure one codec run on all three machine models at once (the
// machines share the access trace; only their cache responses differ).
type Multi []Tracer

// Access implements Tracer.
func (m Multi) Access(addr uint64, size uint32, kind Kind) {
	for _, t := range m {
		t.Access(addr, size, kind)
	}
}

// Run implements Tracer.
func (m Multi) Run(addr uint64, n int, unit uint32, kind Kind) {
	for _, t := range m {
		t.Run(addr, n, unit, kind)
	}
}

// RunStrided implements StridedTracer, forwarding natively to elements
// that support it and decomposing into per-row Runs for those that
// don't.
func (m Multi) RunStrided(addr uint64, rowBytes, stride, rows int, unit uint32, kind Kind) {
	for _, t := range m {
		AccessStridedUnit(t, addr, rowBytes, stride, rows, unit, kind)
	}
}

// Ops implements Tracer.
func (m Multi) Ops(n uint64) {
	for _, t := range m {
		t.Ops(n)
	}
}

// Combine fans one access stream out to every given tracer. Unlike
// building a Multi directly, a single tracer is returned as itself, so
// the common one-machine case pays one virtual call per event instead
// of an extra Multi dispatch plus a loop.
func Combine(ts ...Tracer) Tracer {
	switch len(ts) {
	case 0:
		return Nop{}
	case 1:
		return ts[0]
	default:
		return Multi(append([]Tracer(nil), ts...))
	}
}

// PageSize is the allocation granularity of the simulated address space.
// IRIX used 16 KB pages on these machines.
const PageSize = 16 * 1024

// Space is a simulated address space. Allocations are bump-allocated and
// never freed, mirroring the stable resident set the paper reports (the
// codec allocates its large buffers once). The zero value starts
// allocating at a nonzero base so that address 0 never appears.
type Space struct {
	next    uint64
	color   uint64
	noColor bool
}

// DisableColoring makes AllocPage return exactly page-aligned addresses
// (no cache-colour stagger). Used by the ablation experiments to show
// the conflict-miss pathology coloured allocation avoids.
func (s *Space) DisableColoring() { s.noColor = true }

// colorStride staggers successive page allocations across cache sets.
// Without it every large buffer would share identical index bits (three
// pixel planes would contend for one 2-way L1 set in the SAD kernels) —
// a pathology real systems avoid through allocator offsets and IRIX's
// physical page colouring.
const colorStride = 2112 // 2 KB + one 64 B line

// NewSpace returns a Space whose first allocation begins at base (rounded
// up to a page). A nonzero base keeps simulated addresses away from 0.
func NewSpace(base uint64) *Space {
	if base == 0 {
		base = PageSize
	}
	return &Space{next: roundUp(base, PageSize)}
}

// Alloc reserves n bytes aligned to align (a power of two, at least 1)
// and returns the base address.
func (s *Space) Alloc(n int, align int) uint64 {
	if n < 0 {
		panic("simmem: negative allocation")
	}
	if align <= 0 {
		align = 1
	}
	if s.next == 0 {
		s.next = PageSize
	}
	addr := roundUp(s.next, uint64(align))
	s.next = addr + uint64(n)
	return addr
}

// AllocPage reserves n bytes for a large buffer: page aligned plus a
// rotating cache-colour offset, giving the realistic cache-index
// distribution of a real allocator (see colorStride).
func (s *Space) AllocPage(n int) uint64 {
	if s.noColor {
		return s.Alloc(n, PageSize)
	}
	off := (s.color * colorStride) % PageSize
	s.color++
	return s.Alloc(n+int(off), PageSize) + off
}

// Brk returns the current top of the allocated region, i.e. the resident
// memory footprint's end address.
func (s *Space) Brk() uint64 { return s.next }

func roundUp(v, align uint64) uint64 {
	return (v + align - 1) &^ (align - 1)
}

// AccessRun reports a contiguous run of n bytes starting at addr as
// word-sized (8-byte) accesses. This models compiler-optimised copies;
// pixel kernels should use AccessRunUnit with unit 1 instead (byte
// loads).
func AccessRun(t Tracer, addr uint64, n int, kind Kind) {
	t.Run(addr, n, 8, kind)
}

// AccessRunUnit reports a contiguous run of n bytes as unit-sized
// accesses.
func AccessRunUnit(t Tracer, addr uint64, n int, unit uint32, kind Kind) {
	t.Run(addr, n, unit, kind)
}

// AccessStrided reports rows of rowBytes bytes separated by stride
// bytes, rows times, as byte-sized accesses. It models 2-D block kernels
// (SAD, DCT block gathers, motion compensation). Tracers implementing
// StridedTracer receive the block as one event; others get the
// equivalent per-row Runs.
func AccessStrided(t Tracer, addr uint64, rowBytes, stride, rows int, kind Kind) {
	AccessStridedUnit(t, addr, rowBytes, stride, rows, 1, kind)
}

// RunRefs returns the graduated-operation count of a run of n bytes in
// unit-sized accesses — the counting rule of the Run contract — with
// the common power-of-two units strength-reduced. Tracer
// implementations share it so their counters cannot drift apart.
func RunRefs(n int, unit uint32) uint64 {
	switch unit {
	case 0, 1:
		return uint64(n)
	case 4:
		return uint64(n+3) >> 2
	case 8:
		return uint64(n+7) >> 3
	default:
		return uint64((n + int(unit) - 1) / int(unit))
	}
}

// AccessStridedUnit is AccessStrided with an explicit access unit.
func AccessStridedUnit(t Tracer, addr uint64, rowBytes, stride, rows int, unit uint32, kind Kind) {
	if rows <= 0 || rowBytes <= 0 {
		return
	}
	if st, ok := t.(StridedTracer); ok {
		st.RunStrided(addr, rowBytes, stride, rows, unit, kind)
		return
	}
	for r := 0; r < rows; r++ {
		t.Run(addr, rowBytes, unit, kind)
		addr += uint64(stride)
	}
}
