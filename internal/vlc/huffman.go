// Package vlc implements the variable-length entropy coding layer of the
// codec: a canonical Huffman code over (LAST, RUN, LEVEL) transform
// coefficient events with an escape mechanism for rare events, plus
// motion-vector-difference and intra-DC coding.
//
// The ISO tables (TCOEF, MVD) are replaced by a Huffman code built at
// init from a static frequency model with the same structure (short runs
// and small levels get the shortest codes, ESCAPE carries arbitrary
// events). The substitution preserves what the paper measures — a
// bit-serial variable-length decode loop over the coefficient stream —
// while keeping the tables auditable.
package vlc

import (
	"fmt"
	"sort"

	"repro/internal/bits"
)

// Code is one assigned codeword.
type Code struct {
	Bits uint32
	Len  uint
}

// huffNode is a node of the code-construction heap/tree.
type huffNode struct {
	weight      uint64
	symbol      int // -1 for internal
	left, right *huffNode
	depth       int
}

// BuildHuffman assigns prefix-free codewords to symbols 0..len(weights)-1
// with larger weights receiving shorter codes. Zero weights are treated
// as weight 1 so every symbol stays encodable. The construction is
// standard Huffman followed by canonicalisation, so code lengths are
// optimal for the weights and the code is uniquely decodable.
func BuildHuffman(weights []uint64) []Code {
	n := len(weights)
	if n == 0 {
		return nil
	}
	if n == 1 {
		return []Code{{Bits: 0, Len: 1}}
	}
	nodes := make([]*huffNode, n)
	for i, w := range weights {
		if w == 0 {
			w = 1
		}
		nodes[i] = &huffNode{weight: w, symbol: i}
	}
	// Simple O(n^2) merge is fine for our table sizes.
	pool := append([]*huffNode(nil), nodes...)
	for len(pool) > 1 {
		sort.Slice(pool, func(i, j int) bool {
			if pool[i].weight != pool[j].weight {
				return pool[i].weight < pool[j].weight
			}
			return pool[i].depth < pool[j].depth
		})
		a, b := pool[0], pool[1]
		m := &huffNode{weight: a.weight + b.weight, symbol: -1, left: a, right: b, depth: max(a.depth, b.depth) + 1}
		pool = append(pool[2:], m)
	}
	lengths := make([]uint, n)
	var walk func(nd *huffNode, d uint)
	walk = func(nd *huffNode, d uint) {
		if nd.symbol >= 0 {
			if d == 0 {
				d = 1
			}
			lengths[nd.symbol] = d
			return
		}
		walk(nd.left, d+1)
		walk(nd.right, d+1)
	}
	walk(pool[0], 0)
	return canonicalize(lengths)
}

// canonicalize assigns canonical codewords from code lengths.
func canonicalize(lengths []uint) []Code {
	type sl struct {
		sym int
		l   uint
	}
	order := make([]sl, len(lengths))
	for i, l := range lengths {
		order[i] = sl{i, l}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].l != order[j].l {
			return order[i].l < order[j].l
		}
		return order[i].sym < order[j].sym
	})
	codes := make([]Code, len(lengths))
	var code uint32
	var prevLen uint
	for _, e := range order {
		code <<= (e.l - prevLen)
		codes[e.sym] = Code{Bits: code, Len: e.l}
		code++
		prevLen = e.l
	}
	return codes
}

// Decoder is a bit-serial decoder for a canonical code: it walks the
// codeword one bit at a time through a flattened binary tree, the same
// inner loop a reference VLC decoder executes.
type Decoder struct {
	// tree nodes: child[i][b] is the next node index or -(symbol+1).
	child [][2]int32
}

// NewDecoder builds the decode tree for codes.
func NewDecoder(codes []Code) (*Decoder, error) {
	d := &Decoder{child: make([][2]int32, 1)}
	for sym, c := range codes {
		if c.Len == 0 {
			continue
		}
		node := int32(0)
		for i := int(c.Len) - 1; i >= 0; i-- {
			b := (c.Bits >> uint(i)) & 1
			next := d.child[node][b]
			if i == 0 {
				if next != 0 {
					return nil, fmt.Errorf("vlc: code for symbol %d collides", sym)
				}
				d.child[node][b] = -(int32(sym) + 1)
				break
			}
			if next < 0 {
				return nil, fmt.Errorf("vlc: code for symbol %d passes through a leaf", sym)
			}
			if next == 0 {
				d.child = append(d.child, [2]int32{})
				next = int32(len(d.child) - 1)
				d.child[node][b] = next
			}
			node = next
		}
	}
	return d, nil
}

// Decode reads one symbol from r.
func (d *Decoder) Decode(r *bits.Reader) (int, error) {
	node := int32(0)
	for {
		b, err := r.Bit()
		if err != nil {
			return 0, err
		}
		next := d.child[node][b]
		if next < 0 {
			return int(-next) - 1, nil
		}
		if next == 0 {
			return 0, fmt.Errorf("vlc: invalid codeword")
		}
		node = next
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
