package vlc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bits"
)

func TestBuildHuffmanPrefixFree(t *testing.T) {
	weights := []uint64{100, 50, 25, 12, 6, 3, 1, 1}
	codes := BuildHuffman(weights)
	for i, a := range codes {
		if a.Len == 0 {
			t.Fatalf("symbol %d has no code", i)
		}
		for j, b := range codes {
			if i == j {
				continue
			}
			// No code may be a prefix of another.
			minLen := a.Len
			if b.Len < minLen {
				minLen = b.Len
			}
			if a.Bits>>(a.Len-minLen) == b.Bits>>(b.Len-minLen) {
				t.Fatalf("codes %d and %d share a prefix", i, j)
			}
		}
	}
	// Higher weight must not get a longer code than a lower weight.
	for i := 1; i < len(codes); i++ {
		if codes[i-1].Len > codes[i].Len {
			t.Fatalf("weight order violated: len(%d)=%d > len(%d)=%d",
				i-1, codes[i-1].Len, i, codes[i].Len)
		}
	}
}

func TestBuildHuffmanKraft(t *testing.T) {
	f := func(ws []uint16) bool {
		if len(ws) < 2 {
			return true
		}
		if len(ws) > 64 {
			ws = ws[:64]
		}
		weights := make([]uint64, len(ws))
		for i, w := range ws {
			weights[i] = uint64(w)
		}
		codes := BuildHuffman(weights)
		// Kraft equality for a complete binary code.
		var kraft float64
		for _, c := range codes {
			kraft += 1 / float64(uint64(1)<<c.Len)
		}
		return kraft > 0.999 && kraft < 1.001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHuffmanDecoderRoundTrip(t *testing.T) {
	weights := []uint64{1000, 400, 200, 90, 30, 10, 4, 2, 1}
	codes := BuildHuffman(weights)
	dec, err := NewDecoder(codes)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	syms := make([]int, 500)
	w := bits.NewWriter(256)
	for i := range syms {
		syms[i] = rng.Intn(len(weights))
		c := codes[syms[i]]
		w.PutBits(c.Bits, c.Len)
	}
	r := bits.NewReader(w.Bytes())
	for i, want := range syms {
		got, err := dec.Decode(r)
		if err != nil {
			t.Fatalf("symbol %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("symbol %d: got %d want %d", i, got, want)
		}
	}
}

func TestSingleSymbolAlphabet(t *testing.T) {
	codes := BuildHuffman([]uint64{5})
	if len(codes) != 1 || codes[0].Len != 1 {
		t.Fatalf("single-symbol code wrong: %+v", codes)
	}
}

func TestBlockRoundTripSimple(t *testing.T) {
	var blk [64]int32
	blk[0] = 17
	blk[1] = -3
	blk[5] = 1
	blk[63] = -2
	w := bits.NewWriter(64)
	EncodeBlock(w, &blk)
	var got [64]int32
	r := bits.NewReader(w.Bytes())
	if err := DecodeBlock(r, &got); err != nil {
		t.Fatal(err)
	}
	if got != blk {
		t.Fatalf("roundtrip mismatch:\n%v\n%v", blk, got)
	}
}

func TestBlockRoundTripEmpty(t *testing.T) {
	var blk [64]int32
	w := bits.NewWriter(8)
	EncodeBlock(w, &blk)
	var got [64]int32
	got[3] = 99 // must be cleared
	r := bits.NewReader(w.Bytes())
	if err := DecodeBlock(r, &got); err != nil {
		t.Fatal(err)
	}
	if got != blk {
		t.Fatal("empty block roundtrip failed")
	}
}

func TestQuickBlockRoundTrip(t *testing.T) {
	f := func(seed int64, density uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var blk [64]int32
		d := int(density)%64 + 1
		for i := 0; i < d; i++ {
			pos := rng.Intn(64)
			lv := int32(rng.Intn(4001) - 2000) // exercise escapes
			blk[pos] = lv
		}
		w := bits.NewWriter(256)
		EncodeBlock(w, &blk)
		var got [64]int32
		r := bits.NewReader(w.Bytes())
		if err := DecodeBlock(r, &got); err != nil {
			return false
		}
		return got == blk
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockSequenceRoundTrip(t *testing.T) {
	// Several blocks back to back must stay in sync.
	rng := rand.New(rand.NewSource(9))
	var blocks [10][64]int32
	w := bits.NewWriter(1024)
	for b := range blocks {
		for i := 0; i < 5; i++ {
			blocks[b][rng.Intn(64)] = int32(rng.Intn(21) - 10)
		}
		EncodeBlock(w, &blocks[b])
	}
	r := bits.NewReader(w.Bytes())
	for b := range blocks {
		var got [64]int32
		if err := DecodeBlock(r, &got); err != nil {
			t.Fatalf("block %d: %v", b, err)
		}
		if got != blocks[b] {
			t.Fatalf("block %d out of sync", b)
		}
	}
}

func TestCompressionBeatsFixedLength(t *testing.T) {
	// Sparse, small-level blocks (typical after quantization) should
	// code far below the 64*12-bit fixed-length baseline.
	rng := rand.New(rand.NewSource(4))
	w := bits.NewWriter(4096)
	n := 100
	for b := 0; b < n; b++ {
		var blk [64]int32
		for i := 0; i < 4; i++ {
			blk[rng.Intn(16)] = int32(rng.Intn(5) - 2)
		}
		EncodeBlock(w, &blk)
	}
	avg := float64(w.Len()) / float64(n)
	if avg > 120 {
		t.Fatalf("average block size %.0f bits; entropy coding ineffective", avg)
	}
}

func TestMVDAndDCDRoundTrip(t *testing.T) {
	w := bits.NewWriter(64)
	mvds := []int{0, 1, -1, 15, -16, 63}
	dcds := []int32{0, 5, -200, 1020}
	for _, v := range mvds {
		EncodeMVD(w, v)
	}
	for _, v := range dcds {
		EncodeDCD(w, v)
	}
	r := bits.NewReader(w.Bytes())
	for _, v := range mvds {
		got, err := DecodeMVD(r)
		if err != nil || got != v {
			t.Fatalf("MVD got %d,%v want %d", got, err, v)
		}
	}
	for _, v := range dcds {
		got, err := DecodeDCD(r)
		if err != nil || got != v {
			t.Fatalf("DCD got %d,%v want %d", got, err, v)
		}
	}
}

func TestDecodeBlockRejectsGarbage(t *testing.T) {
	// A long run of ones will eventually hit an invalid codeword or
	// overflow; either way DecodeBlock must error, not hang or panic.
	data := make([]byte, 64)
	for i := range data {
		data[i] = 0x5A
	}
	var got [64]int32
	// Try a few offsets; at least one must produce an error (the stream
	// is finite so even "valid" decodes terminate).
	r := bits.NewReader(data)
	for {
		if err := DecodeBlock(r, &got); err != nil {
			return // expected: malformed somewhere
		}
		if r.Remaining() == 0 {
			t.Skip("garbage happened to decode as valid blocks")
		}
	}
}

func TestDecoderRejectsCollidingCodes(t *testing.T) {
	codes := []Code{{Bits: 0b0, Len: 1}, {Bits: 0b0, Len: 1}}
	if _, err := NewDecoder(codes); err == nil {
		t.Fatal("colliding codes accepted")
	}
	codes = []Code{{Bits: 0b0, Len: 1}, {Bits: 0b00, Len: 2}}
	if _, err := NewDecoder(codes); err == nil {
		t.Fatal("prefix-passing code accepted")
	}
}
