package vlc

import (
	"fmt"

	"repro/internal/bits"
)

// Coefficient-event table geometry: events with run in [0, maxRun] and
// |level| in [1, maxLevel] (for both LAST values) are in the Huffman
// table; anything else escapes.
const (
	maxRun   = 8
	maxLevel = 4
)

// symbol packs (last, run, level) into a table index; the final index is
// the escape symbol.
func symbolOf(last bool, run, level int) int {
	l := 0
	if last {
		l = 1
	}
	return (l*(maxRun+1)+run)*maxLevel + (level - 1)
}

const (
	numEventSymbols = 2 * (maxRun + 1) * maxLevel
	escapeSymbol    = numEventSymbols
)

var (
	coeffCodes   []Code
	coeffDecoder *Decoder
)

func init() {
	// Static frequency model: geometric decay in run and level, LAST
	// events rarer, ESCAPE moderately rare. This mirrors the shape of
	// the ISO TCOEF statistics.
	weights := make([]uint64, numEventSymbols+1)
	for last := 0; last < 2; last++ {
		for run := 0; run <= maxRun; run++ {
			for level := 1; level <= maxLevel; level++ {
				w := 1 << 24 >> (uint(run) + 2*uint(level-1) + 2*uint(last))
				sym := symbolOf(last == 1, run, level)
				weights[sym] = uint64(w) + 1
			}
		}
	}
	weights[escapeSymbol] = 1 << 18
	coeffCodes = BuildHuffman(weights)
	var err error
	coeffDecoder, err = NewDecoder(coeffCodes)
	if err != nil {
		panic(err)
	}
}

// EncodeBlock writes the zigzag-scanned coefficient vector as
// (LAST, RUN, LEVEL) events. The all-zero block writes a single "coded
// block" flag upstream; callers should not call EncodeBlock for
// uncoded blocks. Returns the number of events written.
func EncodeBlock(w *bits.Writer, scanned *[64]int32) int {
	lastNZ := -1
	for i := 63; i >= 0; i-- {
		if scanned[i] != 0 {
			lastNZ = i
			break
		}
	}
	if lastNZ < 0 {
		// Degenerate: encode as a single LAST event of level 1 at run 0
		// would corrupt; instead write an escape event encoding a zero
		// level, which the decoder treats as an empty block.
		emitEscape(w, true, 0, 0)
		return 1
	}
	events := 0
	run := 0
	for i := 0; i <= lastNZ; i++ {
		v := scanned[i]
		if v == 0 {
			run++
			continue
		}
		last := i == lastNZ
		emitEvent(w, last, run, v)
		events++
		run = 0
	}
	return events
}

func emitEvent(w *bits.Writer, last bool, run int, level int32) {
	alevel := level
	if alevel < 0 {
		alevel = -alevel
	}
	if run <= maxRun && alevel <= maxLevel {
		c := coeffCodes[symbolOf(last, run, int(alevel))]
		w.PutBits(c.Bits, c.Len)
		if level < 0 {
			w.PutBit(1)
		} else {
			w.PutBit(0)
		}
		return
	}
	emitEscape(w, last, run, level)
}

func emitEscape(w *bits.Writer, last bool, run int, level int32) {
	c := coeffCodes[escapeSymbol]
	w.PutBits(c.Bits, c.Len)
	if last {
		w.PutBit(1)
	} else {
		w.PutBit(0)
	}
	w.PutUE(uint32(run))
	w.PutSE(level)
}

// DecodeBlock reads events until LAST and fills the zigzag-scanned
// vector. It returns an error for malformed streams (invalid codewords,
// coefficient overflow past position 63).
func DecodeBlock(r *bits.Reader, scanned *[64]int32) error {
	for i := range scanned {
		scanned[i] = 0
	}
	pos := 0
	for {
		sym, err := coeffDecoder.Decode(r)
		if err != nil {
			return err
		}
		var last bool
		var run int
		var level int32
		if sym == escapeSymbol {
			lb, err := r.Bit()
			if err != nil {
				return err
			}
			last = lb == 1
			ru, err := r.UE()
			if err != nil {
				return err
			}
			lv, err := r.SE()
			if err != nil {
				return err
			}
			run, level = int(ru), lv
			if level == 0 {
				if !last || pos != 0 {
					return fmt.Errorf("vlc: zero-level escape inside block")
				}
				return nil // empty-block escape
			}
		} else {
			lastPart := sym / ((maxRun + 1) * maxLevel)
			rem := sym % ((maxRun + 1) * maxLevel)
			run = rem / maxLevel
			level = int32(rem%maxLevel) + 1
			last = lastPart == 1
			sb, err := r.Bit()
			if err != nil {
				return err
			}
			if sb == 1 {
				level = -level
			}
		}
		pos += run
		if pos > 63 {
			return fmt.Errorf("vlc: run overflow at position %d", pos)
		}
		scanned[pos] = level
		pos++
		if last {
			return nil
		}
		if pos > 63 {
			return fmt.Errorf("vlc: missing LAST event")
		}
	}
}

// OpsPerEvent approximates the decode cost of one coefficient event for
// the timing model (bit loop iterations plus reconstruction).
const OpsPerEvent = 30

// EncodeMVD writes a motion-vector difference component (half-pel units).
func EncodeMVD(w *bits.Writer, d int) { w.PutSE(int32(d)) }

// DecodeMVD reads a motion-vector difference component.
func DecodeMVD(r *bits.Reader) (int, error) {
	v, err := r.SE()
	return int(v), err
}

// EncodeDCD writes an intra-DC difference.
func EncodeDCD(w *bits.Writer, d int32) { w.PutSE(d) }

// DecodeDCD reads an intra-DC difference.
func DecodeDCD(r *bits.Reader) (int32, error) { return r.SE() }
