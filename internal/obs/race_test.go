package obs

import (
	"io"
	"sync"
	"testing"
)

// TestConcurrentRegistry hammers one registry from many goroutines —
// get-or-create lookups, counter/gauge/histogram writes, and snapshots
// plus exports racing the writers. Run under -race (CI does) this
// proves the atomic hot paths and the RWMutex registry compose.
func TestConcurrentRegistry(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const iters = 2000

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("hammer_total")
			ga := r.Gauge("hammer_depth")
			h := r.Histogram("hammer_seconds", nil)
			for i := 0; i < iters; i++ {
				c.Inc()
				ga.Inc()
				h.Observe(float64(i%7) * 0.01)
				ga.Dec()
				// Re-lookup: the read path of the registry maps.
				r.Counter("hammer_total").Add(1)
			}
		}()
	}
	// Readers race the writers: snapshots and both export formats.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = r.Snapshot()
				r.WriteJSON(io.Discard)
				r.WritePrometheus(io.Discard)
			}
		}()
	}
	wg.Wait()

	if got, want := r.Counter("hammer_total").Value(), uint64(goroutines*iters*2); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got := r.Gauge("hammer_depth").Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	if got, want := r.Histogram("hammer_seconds", nil).Count(), uint64(goroutines*iters); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
}
