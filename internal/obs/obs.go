// Package obs is the repository's observability layer: a
// dependency-free process-wide metrics registry (counters, gauges,
// histograms — all atomic on the hot path), per-component structured
// logging on log/slog, lightweight span timing, build/version
// introspection, and the HTTP middleware + export endpoints the
// long-running binaries (mp4served, mp4worker) mount.
//
// The paper this repository reproduces is a measurement study; obs
// applies the same discipline to the reproduction itself. Every layer
// that does work reports it:
//
//   - internal/farm exposes queue depth, in-flight jobs and per-job
//     latency histograms;
//   - internal/trace reports replay throughput (records/sec and
//     events/sec) from the replay loops themselves;
//   - internal/dist turns the end-of-sweep SweepStats accounting into
//     live counters and gauges (uploads, failovers, workers alive) and
//     emits structured upload/failover/worker-health events;
//   - internal/service wraps its API in a middleware chain (request
//     logging, in-flight gauge, per-route latency) and serves the
//     registry at /v1/metrics.
//
// Metric naming convention: snake_case, prefixed with the owning
// component, suffixed with the unit or `_total` for monotonic counters
// (Prometheus style): `farm_queue_depth`, `dist_uploads_total`,
// `service_http_request_seconds`. One optional label dimension rides
// inside the name via Label ("name{route=\"GET /v1/studies\"}").
//
// Instrumentation cost: counters and gauges are single atomic
// operations; a histogram observation is a binary search over its
// bounds plus two atomic adds. Hot-loop instrumentation (the trace
// replay loops) measures per *call*, never per record, and is gated on
// Enabled() so BenchmarkObsOverhead can prove the disabled path free.
package obs

import (
	"sync/atomic"
	"time"
)

// enabled gates the instrumentation helpers (Span, Timer) and the
// replay-loop hooks. Metrics written directly through a Counter/Gauge/
// Histogram handle are always live — they are single atomics, cheaper
// than a branch-plus-load dance would make them look.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// Enabled reports whether span/timer instrumentation is on. Hot paths
// check it once per operation, not per record.
func Enabled() bool { return enabled.Load() }

// SetEnabled switches span/timer instrumentation. The uninstrumented
// half of BenchmarkObsOverhead runs under SetEnabled(false).
func SetEnabled(on bool) { enabled.Store(on) }

// noopEnd is the shared return of disabled spans, so Span allocates
// nothing when instrumentation is off.
var noopEnd = func() {}

// Span starts a named timing span against the default registry and
// returns the function that ends it:
//
//	defer obs.Span("replay.chunk")()
//
// Ending the span observes the elapsed seconds into the histogram
// "<name>_seconds" and increments the counter "<name>_total". Dots in
// the span name are exported as underscores (metric names are
// snake_case). When instrumentation is disabled the returned func is a
// shared no-op.
func Span(name string) func() {
	return Default().Span(name)
}

// Span is the registry-scoped form of the package-level Span.
func (r *Registry) Span(name string) func() {
	if !enabled.Load() {
		return noopEnd
	}
	base := metricName(name)
	h := r.Histogram(base+"_seconds", nil)
	c := r.Counter(base + "_total")
	start := time.Now()
	return func() {
		h.Observe(time.Since(start).Seconds())
		c.Inc()
	}
}

// metricName maps a span name to its metric family: dots (the span
// convention) become underscores (the metric convention).
func metricName(name string) string {
	b := []byte(name)
	changed := false
	for i, c := range b {
		if c == '.' {
			b[i] = '_'
			changed = true
		}
	}
	if !changed {
		return name
	}
	return string(b)
}
