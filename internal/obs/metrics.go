package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing uint64. The zero value is
// ready to use, but counters normally come from Registry.Counter so
// they appear in snapshots and exports.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous int64 value (queue depths, in-flight
// counts, last-observed rates). All operations are single atomics.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (negative deltas subtract). Concurrent sweeps sharing
// one gauge must use Add, not Set, so their contributions compose.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefBuckets are the default histogram bounds: latency-shaped,
// exponential from 0.5ms to 60s. They suit everything the repo times —
// per-job farm latencies, HTTP requests, shard replays.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Histogram counts observations into fixed cumulative-exportable
// buckets. Observe is lock-free: a binary search over the bounds, one
// atomic bucket add, one atomic count add and one CAS-loop float add
// for the sum.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf bucket is implicit
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomicFloat
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bound >= v: standard le (less-or-equal) bucket semantics.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.buckets[lo].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// atomicFloat is a float64 with atomic add, stored as bits.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// Registry holds a process's metrics by name. Lookup (Counter, Gauge,
// Histogram) is get-or-create under an RWMutex; instrumented code
// resolves its metrics once into package variables, so the map is
// never on a hot path.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry. Tests that need isolation
// from the process-wide Default build their own.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry — the one the instrumented
// packages write to and /v1/metrics serves.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// ascending bucket bounds on first use (nil means DefBuckets). Later
// callers get the existing histogram whatever bounds they pass — the
// first registration wins, as with every get-or-create here.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		if bounds == nil {
			bounds = DefBuckets
		}
		h = &Histogram{
			bounds:  append([]float64(nil), bounds...),
			buckets: make([]atomic.Uint64, len(bounds)+1),
		}
		r.hists[name] = h
	}
	return h
}

// Label appends one label dimension to a metric name, Prometheus
// style: Label("x_total", "route", "GET /v1/studies") is
// `x_total{route="GET /v1/studies"}`. Applied to a name that already
// carries labels it appends inside the existing braces. Backslashes
// and quotes in the value are escaped.
func Label(name, key, value string) string {
	value = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(value)
	if strings.HasSuffix(name, "}") {
		return name[:len(name)-1] + "," + key + "=\"" + value + "\"}"
	}
	return name + "{" + key + "=\"" + value + "\"}"
}

// HistogramSnapshot is one histogram's state in a Snapshot.
type HistogramSnapshot struct {
	Count   uint64        `json:"count"`
	Sum     float64       `json:"sum"`
	Buckets []BucketCount `json:"buckets"`
}

// BucketCount is one cumulative histogram bucket: the count of
// observations <= LE ("+Inf" for the overflow bucket). LE is a string
// because +Inf has no JSON number representation.
type BucketCount struct {
	LE    string `json:"le"`
	Count uint64 `json:"count"`
}

// Snapshot is a point-in-time copy of a registry, JSON-marshalable —
// the payload of /v1/metrics (JSON mode) and mp4study -metrics-out.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the registry's current values. Counters and gauges
// are read atomically per metric; the snapshot as a whole is not a
// consistent cut (it never needs to be — these are monitoring data).
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Count:   h.Count(),
			Sum:     h.Sum(),
			Buckets: make([]BucketCount, 0, len(h.buckets)),
		}
		cum := uint64(0)
		for i := range h.buckets {
			cum += h.buckets[i].Load()
			le := "+Inf"
			if i < len(h.bounds) {
				le = formatFloat(h.bounds[i])
			}
			hs.Buckets = append(hs.Buckets, BucketCount{LE: le, Count: cum})
		}
		s.Histograms[name] = hs
	}
	return s
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteJSON writes the snapshot as indented JSON (expvar-style).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// splitLabels cuts a metric name into its family and the inner label
// list: `a{b="c"}` → ("a", `b="c"`); an unlabeled name returns itself
// and "".
func splitLabels(name string) (family, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// WritePrometheus writes the registry in the Prometheus text
// exposition format (text/plain; version=0.0.4): counters, gauges,
// then histograms with cumulative le buckets, _sum and _count. Names
// sort so scrapes diff cleanly; the # TYPE line is emitted once per
// family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	bw := &errWriter{w: w}
	typed := map[string]bool{}
	typeLine := func(family, kind string) {
		if !typed[family] {
			typed[family] = true
			fmt.Fprintf(bw, "# TYPE %s %s\n", family, kind)
		}
	}

	for _, name := range sortedKeys(snap.Counters) {
		family, _ := splitLabels(name)
		typeLine(family, "counter")
		fmt.Fprintf(bw, "%s %d\n", name, snap.Counters[name])
	}
	for _, name := range sortedKeys(snap.Gauges) {
		family, _ := splitLabels(name)
		typeLine(family, "gauge")
		fmt.Fprintf(bw, "%s %d\n", name, snap.Gauges[name])
	}
	for _, name := range sortedKeys(snap.Histograms) {
		family, labels := splitLabels(name)
		typeLine(family, "histogram")
		h := snap.Histograms[name]
		for _, b := range h.Buckets {
			sep := ""
			if labels != "" {
				sep = ","
			}
			fmt.Fprintf(bw, "%s_bucket{%s%sle=%q} %d\n", family, labels, sep, b.LE, b.Count)
		}
		suffix := ""
		if labels != "" {
			suffix = "{" + labels + "}"
		}
		fmt.Fprintf(bw, "%s_sum%s %s\n", family, suffix, formatFloat(h.Sum))
		fmt.Fprintf(bw, "%s_count%s %d\n", family, suffix, h.Count)
	}
	return bw.err
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// errWriter latches the first write error so the format loops stay
// uncluttered.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) Write(p []byte) (int, error) {
	if ew.err != nil {
		return 0, ew.err
	}
	n, err := ew.w.Write(p)
	ew.err = err
	return n, err
}

// Handler serves the registry over HTTP with content negotiation:
// an Accept header naming application/json (or ?format=json) gets the
// JSON snapshot; everything else gets the Prometheus text format —
// what a scraper or plain curl sees.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if wantsJSON(req) {
			w.Header().Set("Content-Type", "application/json")
			r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

func wantsJSON(req *http.Request) bool {
	if req.URL.Query().Get("format") == "json" {
		return true
	}
	return strings.Contains(req.Header.Get("Accept"), "application/json")
}
