package obs

import (
	"net/http"
	"net/http/pprof"
)

// WithPprof mounts the net/http/pprof handlers under /debug/pprof/ in
// front of next when enabled; otherwise it returns next unchanged. The
// profiling endpoints are opt-in (a -pprof flag on the server binaries)
// because they expose process internals and an unauthenticated CPU
// profile is a free denial-of-service lever.
//
// The handlers are mounted explicitly rather than through
// http.DefaultServeMux, so a binary that serves its own mux never
// exposes them by accident.
func WithPprof(next http.Handler, enabled bool) http.Handler {
	if !enabled {
		return next
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/", next)
	return mux
}
