package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
	if r.Counter("c_total") != c {
		t.Error("Counter is not get-or-create: second lookup returned a different counter")
	}

	g := r.Gauge("g")
	g.Set(10)
	g.Add(-3)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 7 {
		t.Errorf("gauge = %d, want 7", got)
	}
	if r.Gauge("g") != g {
		t.Error("Gauge is not get-or-create")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 106 {
		t.Errorf("sum = %g, want 106", h.Sum())
	}
	snap := r.Snapshot().Histograms["h_seconds"]
	// Cumulative le counts: <=1: {0.5, 1}, <=2: +{1.5}, <=4: +{3}, +Inf: all.
	want := []BucketCount{{"1", 2}, {"2", 3}, {"4", 4}, {"+Inf", 5}}
	if len(snap.Buckets) != len(want) {
		t.Fatalf("buckets = %v, want %v", snap.Buckets, want)
	}
	for i, b := range want {
		if snap.Buckets[i] != b {
			t.Errorf("bucket %d = %v, want %v", i, snap.Buckets[i], b)
		}
	}

	// First registration wins: later bounds are ignored.
	if r.Histogram("h_seconds", []float64{9}) != h {
		t.Error("Histogram is not get-or-create")
	}
	// nil bounds mean DefBuckets.
	d := r.Histogram("d_seconds", nil)
	if len(d.bounds) != len(DefBuckets) {
		t.Errorf("default bounds = %d, want %d", len(d.bounds), len(DefBuckets))
	}
}

func TestLabel(t *testing.T) {
	for _, tc := range []struct{ name, key, value, want string }{
		{"x_total", "route", "GET /v1/studies", `x_total{route="GET /v1/studies"}`},
		{`x_total{route="a"}`, "code", "200", `x_total{route="a",code="200"}`},
		{"x", "k", `q"\v`, `x{k="q\"\\v"}`},
	} {
		if got := Label(tc.name, tc.key, tc.value); got != tc.want {
			t.Errorf("Label(%q, %q, %q) = %q, want %q", tc.name, tc.key, tc.value, got, tc.want)
		}
	}
}

func TestSplitLabels(t *testing.T) {
	if f, l := splitLabels(`a_total{b="c"}`); f != "a_total" || l != `b="c"` {
		t.Errorf("splitLabels = %q, %q", f, l)
	}
	if f, l := splitLabels("plain"); f != "plain" || l != "" {
		t.Errorf("splitLabels(plain) = %q, %q", f, l)
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(3)
	r.Gauge("b").Set(-2)
	r.Histogram("c_seconds", []float64{1}).Observe(0.5)

	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(sb.String()), &snap); err != nil {
		t.Fatalf("WriteJSON produced invalid JSON: %v\n%s", err, sb.String())
	}
	if snap.Counters["a_total"] != 3 || snap.Gauges["b"] != -2 {
		t.Errorf("snapshot = %+v", snap)
	}
	h := snap.Histograms["c_seconds"]
	if h.Count != 1 || h.Buckets[len(h.Buckets)-1].LE != "+Inf" {
		t.Errorf("histogram snapshot = %+v", h)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter(Label("req_total", "code", "200")).Add(7)
	r.Counter(Label("req_total", "code", "500")).Inc()
	r.Gauge("depth").Set(3)
	r.Histogram(Label("lat_seconds", "route", "GET /x"), []float64{1}).Observe(0.5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE req_total counter\n",
		`req_total{code="200"} 7` + "\n",
		`req_total{code="500"} 1` + "\n",
		"# TYPE depth gauge\ndepth 3\n",
		"# TYPE lat_seconds histogram\n",
		`lat_seconds_bucket{route="GET /x",le="1"} 1` + "\n",
		`lat_seconds_bucket{route="GET /x",le="+Inf"} 1` + "\n",
		`lat_seconds_sum{route="GET /x"} 0.5` + "\n",
		`lat_seconds_count{route="GET /x"} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// One TYPE line per family even with two labeled children.
	if strings.Count(out, "# TYPE req_total") != 1 {
		t.Errorf("want exactly one TYPE line for req_total:\n%s", out)
	}
}

func TestHandlerContentNegotiation(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total").Inc()
	h := r.Handler()

	// Default: Prometheus text.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("default Content-Type = %q, want text/plain...", ct)
	}
	if !strings.Contains(rec.Body.String(), "x_total 1") {
		t.Errorf("prometheus body = %q", rec.Body.String())
	}

	// Accept: application/json.
	rec = httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/v1/metrics", nil)
	req.Header.Set("Accept", "application/json")
	h.ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Accept json Content-Type = %q", ct)
	}
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("JSON body invalid: %v", err)
	}
	if snap.Counters["x_total"] != 1 {
		t.Errorf("JSON snapshot = %+v", snap)
	}

	// ?format=json without an Accept header.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/metrics?format=json", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("format=json Content-Type = %q", ct)
	}
}

func TestSpan(t *testing.T) {
	r := NewRegistry()
	end := r.Span("replay.chunk")
	end()
	if got := r.Counter("replay_chunk_total").Value(); got != 1 {
		t.Errorf("span counter = %d, want 1", got)
	}
	if got := r.Histogram("replay_chunk_seconds", nil).Count(); got != 1 {
		t.Errorf("span histogram count = %d, want 1", got)
	}
}

func TestSpanDisabled(t *testing.T) {
	defer SetEnabled(true)
	SetEnabled(false)
	if Enabled() {
		t.Fatal("SetEnabled(false) did not take")
	}
	r := NewRegistry()
	r.Span("off.span")()
	if n := r.Counter("off_span_total").Value(); n != 0 {
		t.Errorf("disabled span still counted: %d", n)
	}
}
