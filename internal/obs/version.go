package obs

import (
	"encoding/json"
	"net/http"
	"runtime"
	"runtime/debug"
	"sync"
)

// BuildInfo identifies a running binary: the /v1/version payload of
// mp4served and mp4worker, and part of their health output. Fields
// come from runtime/debug.ReadBuildInfo; VCS fields are empty when the
// binary was built outside a checkout (go test binaries, plain go run).
type BuildInfo struct {
	Module    string `json:"module"`
	Version   string `json:"version,omitempty"`
	Revision  string `json:"revision,omitempty"`
	BuildTime string `json:"build_time,omitempty"`
	Modified  bool   `json:"modified,omitempty"`
	GoVersion string `json:"go_version"`
}

var readVersion = sync.OnceValue(func() BuildInfo {
	info := BuildInfo{GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	info.Module = bi.Main.Path
	info.Version = bi.Main.Version
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.time":
			info.BuildTime = s.Value
		case "vcs.modified":
			info.Modified = s.Value == "true"
		}
	}
	return info
})

// Version returns the running binary's build identity (cached after
// the first call).
func Version() BuildInfo { return readVersion() }

// VersionHandler serves Version() as JSON — the GET /v1/version
// endpoint.
func VersionHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(Version())
	})
}
