package obs

import (
	"log/slog"
	"net/http"
	"strconv"
	"time"
)

// Middleware wraps an http.Handler. The service and worker APIs are
// assembled as Chain(mux, RequestLog(...), HTTPMetrics(...)).
type Middleware func(http.Handler) http.Handler

// Chain applies middlewares around h, first argument outermost:
// Chain(h, a, b) serves a(b(h)).
func Chain(h http.Handler, mws ...Middleware) http.Handler {
	for i := len(mws) - 1; i >= 0; i-- {
		h = mws[i](h)
	}
	return h
}

// statusWriter records the response status and body size while passing
// everything through — including Flush, which the service's streaming
// result endpoint depends on.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer when it can flush, so
// wrapping never breaks chunked streaming.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap supports http.ResponseController.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

func (w *statusWriter) code() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

// routeOf labels a request by its matched ServeMux pattern. The mux
// sets Pattern on the request itself, so middleware reads it after the
// inner handler ran; unmatched requests fall back to the method alone
// (never the raw path — client-chosen strings must not mint unbounded
// metric names).
func routeOf(req *http.Request) string {
	if req.Pattern != "" {
		return req.Pattern
	}
	return req.Method + " unmatched"
}

// HTTPMetrics is the measuring middleware: an in-flight gauge
// ("<component>_http_inflight"), a per-route/status request counter
// ("<component>_http_requests_total{route=...,code=...}") and a
// per-route latency histogram
// ("<component>_http_request_seconds{route=...}"), all in r (nil means
// Default()).
func HTTPMetrics(component string, r *Registry) Middleware {
	if r == nil {
		r = Default()
	}
	inflight := r.Gauge(component + "_http_inflight")
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
			inflight.Inc()
			defer inflight.Dec()
			sw := &statusWriter{ResponseWriter: w}
			start := time.Now()
			next.ServeHTTP(sw, req)
			route := routeOf(req)
			r.Counter(Label(Label(component+"_http_requests_total", "route", route),
				"code", strconv.Itoa(sw.code()))).Inc()
			r.Histogram(Label(component+"_http_request_seconds", "route", route), nil).
				ObserveSince(start)
		})
	}
}

// RequestLog logs one Info record per completed request: method,
// matched route, status, response bytes and duration. At the default
// Warn level these are suppressed; servers opt in with -log-level
// info.
func RequestLog(logger *slog.Logger) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
			sw := &statusWriter{ResponseWriter: w}
			start := time.Now()
			next.ServeHTTP(sw, req)
			logger.Info("http request",
				"method", req.Method,
				"path", req.URL.Path,
				"route", routeOf(req),
				"status", sw.code(),
				"bytes", sw.bytes,
				"duration", time.Since(start).Round(time.Microsecond).String(),
			)
		})
	}
}
