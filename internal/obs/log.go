package obs

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"sync/atomic"
)

// The logging side of obs: one process-wide slog root with a dynamic
// level and a swappable output writer, and per-component child loggers
// carrying a `component` attribute. The default level is Warn so the
// short-lived CLIs stay quiet; the long-running servers raise it to
// Info via their -log-level flag.

var (
	logLevel  = newLevelVar()
	logOutput atomic.Pointer[io.Writer]
	root      *slog.Logger
)

func newLevelVar() *slog.LevelVar {
	v := new(slog.LevelVar)
	v.Set(slog.LevelWarn)
	return v
}

func init() {
	var w io.Writer = os.Stderr
	logOutput.Store(&w)
	root = slog.New(slog.NewTextHandler(swappableWriter{}, &slog.HandlerOptions{Level: logLevel}))
}

// swappableWriter forwards to the current SetLogOutput target. slog's
// TextHandler serializes its Write calls, so the forwarded writer sees
// whole records.
type swappableWriter struct{}

func (swappableWriter) Write(p []byte) (int, error) { return (*logOutput.Load()).Write(p) }

// Logger returns the structured logger for one component
// ("farm", "dist", "service", ...). Children share the root's level
// and output, so SetLogLevel/SetLogOutput affect every component at
// once.
func Logger(component string) *slog.Logger {
	return root.With("component", component)
}

// SetLogLevel sets the process log level (default Warn).
func SetLogLevel(l slog.Level) { logLevel.Set(l) }

// SetLogOutput redirects all obs logging (default os.Stderr). Tests
// point it at a buffer.
func SetLogOutput(w io.Writer) { logOutput.Store(&w) }

// ParseLevel maps the usual level names (debug, info, warn, error —
// case-insensitive) to slog levels; the -log-level flags go through
// it.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug|info|warn|error)", s)
}
