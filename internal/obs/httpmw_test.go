package obs

import (
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
)

// tag is a Middleware that appends its name on the way in, so chain
// order is observable.
func tag(name string, order *[]string) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			*order = append(*order, name)
			next.ServeHTTP(w, r)
		})
	}
}

func TestChainOrder(t *testing.T) {
	var order []string
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		order = append(order, "handler")
	}), tag("outer", &order), tag("inner", &order))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	if got := strings.Join(order, ","); got != "outer,inner,handler" {
		t.Errorf("chain order = %s, want outer,inner,handler", got)
	}
}

func TestHTTPMetrics(t *testing.T) {
	reg := NewRegistry()
	inflightDuring := int64(-1)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/things/{id}", func(w http.ResponseWriter, r *http.Request) {
		inflightDuring = reg.Gauge("t_http_inflight").Value()
		w.WriteHeader(http.StatusTeapot)
		io.WriteString(w, "short and stout")
	})
	h := Chain(mux, HTTPMetrics("t", reg))

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/things/42", nil))
	if rec.Code != http.StatusTeapot {
		t.Fatalf("status = %d", rec.Code)
	}
	if inflightDuring != 1 {
		t.Errorf("in-flight gauge during handler = %d, want 1", inflightDuring)
	}
	if got := reg.Gauge("t_http_inflight").Value(); got != 0 {
		t.Errorf("in-flight gauge after request = %d, want 0", got)
	}
	// Route label is the matched pattern, not the raw path; code label
	// is the written status.
	name := Label(Label("t_http_requests_total", "route", "GET /v1/things/{id}"), "code", "418")
	if got := reg.Counter(name).Value(); got != 1 {
		t.Errorf("counter %s = %d, want 1", name, got)
	}
	if got := reg.Histogram(Label("t_http_request_seconds", "route", "GET /v1/things/{id}"), nil).Count(); got != 1 {
		t.Errorf("latency histogram count = %d, want 1", got)
	}

	// Unmatched request: method fallback, never the client's path.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/nope/unbounded-client-string", nil))
	name = Label(Label("t_http_requests_total", "route", "GET unmatched"), "code", "404")
	if got := reg.Counter(name).Value(); got != 1 {
		t.Errorf("unmatched counter = %d, want 1", got)
	}
	for metric := range reg.Snapshot().Counters {
		if strings.Contains(metric, "unbounded-client-string") {
			t.Errorf("client path leaked into metric name: %s", metric)
		}
	}
}

func TestHTTPMetricsImplicit200(t *testing.T) {
	reg := NewRegistry()
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok") // no explicit WriteHeader
	}), HTTPMetrics("t", reg))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	name := Label(Label("t_http_requests_total", "route", "GET unmatched"), "code", "200")
	if got := reg.Counter(name).Value(); got != 1 {
		t.Errorf("implicit 200 counter = %d, want 1", got)
	}
}

// flushRecorder counts Flush calls so the streaming passthrough is
// observable through the middleware stack.
type flushRecorder struct {
	*httptest.ResponseRecorder
	flushes int
}

func (f *flushRecorder) Flush() { f.flushes++ }

func TestStatusWriterFlushPassthrough(t *testing.T) {
	rec := &flushRecorder{ResponseRecorder: httptest.NewRecorder()}
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "chunk")
		f, ok := w.(http.Flusher)
		if !ok {
			t.Fatal("middleware hid http.Flusher from the handler")
		}
		f.Flush()
	}), HTTPMetrics("t", NewRegistry()), RequestLog(slog.New(slog.NewTextHandler(io.Discard, nil))))
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.flushes == 0 {
		t.Error("Flush did not reach the underlying writer")
	}
}

func TestRequestLog(t *testing.T) {
	var mu sync.Mutex
	var sb strings.Builder
	SetLogOutput(writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return sb.Write(p)
	}))
	SetLogLevel(slog.LevelInfo)
	defer func() {
		SetLogOutput(os.Stderr)
		SetLogLevel(slog.LevelWarn)
	}()

	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/ping", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "pong")
	})
	h := Chain(mux, RequestLog(Logger("test")))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/v1/ping", nil))

	mu.Lock()
	out := sb.String()
	mu.Unlock()
	for _, want := range []string{"component=test", "method=GET", `route="GET /v1/ping"`, "status=200", "bytes=4"} {
		if !strings.Contains(out, want) {
			t.Errorf("request log missing %q:\n%s", want, out)
		}
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "INFO": slog.LevelInfo,
		"warn": slog.LevelWarn, "warning": slog.LevelWarn, "error": slog.LevelError,
	} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel(loud) did not fail")
	}
}

func TestVersionHandler(t *testing.T) {
	rec := httptest.NewRecorder()
	VersionHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/version", nil))
	var bi BuildInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &bi); err != nil {
		t.Fatalf("version body invalid: %v", err)
	}
	if bi.GoVersion == "" {
		t.Error("version missing go_version")
	}
}

func TestWithPprof(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "app")
	})
	// Disabled: identity, pprof paths fall through to the app.
	if h := WithPprof(inner, false); h == nil {
		t.Fatal("nil handler")
	} else {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
		if rec.Body.String() != "app" {
			t.Errorf("disabled pprof intercepted the request: %q", rec.Body.String())
		}
	}
	// Enabled: pprof index served, app still reachable.
	h := WithPprof(inner, true)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "pprof") {
		t.Errorf("pprof index = %d %q", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/anything", nil))
	if rec.Body.String() != "app" {
		t.Errorf("app not reachable behind pprof mux: %q", rec.Body.String())
	}
}
