package obs

import (
	"flag"
	"net/http"
)

// ServerFlags is the observability flag surface every long-running
// server binary shares (mp4served, mp4worker): -log-level, -pprof and
// -metrics behave identically everywhere because they are registered
// and applied here, not re-implemented per command.
type ServerFlags struct {
	LogLevel string
	Pprof    bool
	Metrics  bool
}

// RegisterServerFlags registers the shared flags on fs (the default
// flag.CommandLine in the binaries) and returns the destination
// struct; call Apply after fs.Parse.
func RegisterServerFlags(fs *flag.FlagSet) *ServerFlags {
	f := &ServerFlags{}
	fs.StringVar(&f.LogLevel, "log-level", "info", "structured-log threshold: debug, info, warn, error")
	fs.BoolVar(&f.Pprof, "pprof", false, "mount net/http/pprof under /debug/pprof/")
	fs.BoolVar(&f.Metrics, "metrics", true, "collect span/timer instrumentation (false disables recording; /v1/metrics stays mounted)")
	return f
}

// Apply installs the parsed flags into process-wide observability
// state: log threshold and instrumentation on/off. Returns the
// ParseLevel error verbatim so commands can prefix their own name.
func (f *ServerFlags) Apply() error {
	lvl, err := ParseLevel(f.LogLevel)
	if err != nil {
		return err
	}
	SetLogLevel(lvl)
	SetEnabled(f.Metrics)
	return nil
}

// Wrap applies the handler-level effects (today: the pprof mount) to a
// command's root handler.
func (f *ServerFlags) Wrap(h http.Handler) http.Handler {
	return WithPprof(h, f.Pprof)
}
