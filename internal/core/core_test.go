package core

import (
	"strings"
	"testing"
)

func TestStudyMinimalRun(t *testing.T) {
	// A compact configuration: one table, one figure, no sweep. The
	// default 352x288 fallacy workload still runs.
	st := NewStudy(Options{Frames: 4, Tables: []int{1}, Figures: []int{3}, SkipSweeps: true})
	rep, err := st.Run()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rep.Tables[1]; !ok {
		t.Fatal("table 1 missing")
	}
	if len(rep.Figures[3]) == 0 {
		t.Fatal("figure 3 missing")
	}
	if len(rep.Fallacy) != 5 {
		t.Fatalf("want 5 fallacy verdicts, got %d", len(rep.Fallacy))
	}
	for _, f := range rep.Fallacy {
		if !f.Refuted {
			t.Errorf("fallacy %q not refuted: %s", f.Name, f.Detail)
		}
	}
	text := rep.Text()
	for _, want := range []string{"Table 1", "Figure 3", "fallacy verdicts", "REFUTED"} {
		if !strings.Contains(text, want) {
			t.Errorf("report text missing %q", want)
		}
	}
}

func TestStudyDefaultsCoverEverything(t *testing.T) {
	st := NewStudy(Options{})
	if len(st.opt.Tables) != 8 || len(st.opt.Figures) != 3 {
		t.Fatalf("defaults wrong: %+v", st.opt)
	}
}

func TestStudyRejectsUnknownFigure(t *testing.T) {
	st := NewStudy(Options{Frames: 4, Tables: []int{1}, Figures: []int{9}, SkipSweeps: true})
	if _, err := st.Run(); err == nil {
		t.Fatal("unknown figure accepted")
	}
}
