// Package core is the top-level façade for the paper's primary
// contribution: the memory-performance characterization of MPEG-4 video
// on general-purpose, non-SIMD architectures. It bundles the machine
// models, the instrumented codec workloads and the experiment harness
// into a single Study object that regenerates every artifact of the
// paper and evaluates its five refuted fallacies.
//
// The substrates live in their own packages (codec, cache, perf,
// harness, …); core exists so a downstream user can reproduce the whole
// paper with three calls:
//
//	st := core.NewStudy(core.Options{})
//	report, err := st.Run()
//	fmt.Print(report.Text())
package core

import (
	"fmt"
	"strings"

	"repro/internal/harness"
	"repro/internal/perf"
)

// Options configures a Study.
type Options struct {
	// Frames is the sequence length (0 = harness default). The paper
	// uses 30-frame clips; every reported metric is a rate, insensitive
	// to length.
	Frames int
	// Tables selects table numbers to regenerate (nil = 1–8).
	Tables []int
	// Figures selects figure numbers (nil = 2–4).
	Figures []int
	// SkipSweeps disables the extension experiments (ratio sweep).
	SkipSweeps bool
}

// Study reproduces the paper.
type Study struct {
	opt Options
}

// NewStudy returns a Study for the options.
func NewStudy(opt Options) *Study {
	if opt.Tables == nil {
		opt.Tables = []int{1, 2, 3, 4, 5, 6, 7, 8}
	}
	if opt.Figures == nil {
		opt.Figures = []int{2, 3, 4}
	}
	return &Study{opt: opt}
}

// Report holds everything a Study produced.
type Report struct {
	Tables   map[int]string
	Figures  map[int][]perf.Series
	Fallacy  []FallacyFinding
	RatioCut float64 // memory-bound crossover factor (0 if not run)
}

// FallacyFinding records the verdict on one of the paper's five
// refuted assumptions for this run.
type FallacyFinding struct {
	Name    string
	Refuted bool // true = the fallacy is refuted here too (matches paper)
	Detail  string
}

// Run executes the configured experiments.
func (s *Study) Run() (*Report, error) {
	rep := &Report{Tables: map[int]string{}, Figures: map[int][]perf.Series{}}
	for _, n := range s.opt.Tables {
		switch n {
		case 1:
			rep.Tables[1] = harness.Table1()
		case 8:
			tab, err := harness.Table8(s.opt.Frames)
			if err != nil {
				return nil, fmt.Errorf("core: table 8: %w", err)
			}
			rep.Tables[8] = tab.String()
		default:
			spec, err := harness.TableSpecByNum(n)
			if err != nil {
				return nil, err
			}
			tab, _, err := harness.RunTable(spec, s.opt.Frames)
			if err != nil {
				return nil, fmt.Errorf("core: table %d: %w", n, err)
			}
			rep.Tables[n] = tab.String()
		}
	}
	var sweepPoints []harness.ObjectSweepPoint
	for _, n := range s.opt.Figures {
		switch n {
		case 2:
			series, err := harness.Figure2(s.opt.Frames)
			if err != nil {
				return nil, fmt.Errorf("core: figure 2: %w", err)
			}
			rep.Figures[2] = series
		case 3, 4:
			if sweepPoints == nil {
				var err error
				sweepPoints, err = harness.RunObjectSweep(s.opt.Frames)
				if err != nil {
					return nil, fmt.Errorf("core: object sweep: %w", err)
				}
			}
			if n == 3 {
				rep.Figures[3] = harness.Figure3Series(sweepPoints)
			} else {
				rep.Figures[4] = harness.Figure4Series(sweepPoints)
			}
		default:
			return nil, fmt.Errorf("core: no figure %d", n)
		}
	}
	if err := s.evaluateFallacies(rep); err != nil {
		return nil, err
	}
	if !s.opt.SkipSweeps {
		points, err := harness.RunRatioSweep(harness.Workload{W: 352, H: 288, Frames: s.opt.Frames}, nil)
		if err != nil {
			return nil, fmt.Errorf("core: ratio sweep: %w", err)
		}
		rep.RatioCut = harness.MemoryBoundCrossover(points)
	}
	return rep, nil
}

// evaluateFallacies runs a compact workload and records the verdict on
// each of the paper's five refuted assumptions.
func (s *Study) evaluateFallacies(rep *Report) error {
	machines := perf.PaperMachines()
	wl := harness.Workload{W: 352, H: 288, Frames: s.opt.Frames}
	encRes, decRes, err := harness.EncodeDecode(machines, wl)
	if err != nil {
		return err
	}
	worstL1, worstReuse := 0.0, 1e18
	worstDRAM, worstBus := 0.0, 0.0
	for _, r := range append(append([]harness.Result{}, encRes...), decRes...) {
		if r.Whole.L1MissRate > worstL1 {
			worstL1 = r.Whole.L1MissRate
		}
		if r.Whole.L1LineReuse < worstReuse {
			worstReuse = r.Whole.L1LineReuse
		}
		if r.Whole.DRAMTimeFrac > worstDRAM {
			worstDRAM = r.Whole.DRAMTimeFrac
		}
		if r.Whole.BusUtilization > worstBus {
			worstBus = r.Whole.BusUtilization
		}
	}
	rep.Fallacy = []FallacyFinding{
		{
			Name:    "MPEG-4 exhibits streaming references",
			Refuted: worstL1 < 0.02 && worstReuse > 50,
			Detail:  fmt.Sprintf("worst L1 miss rate %.2f%%, worst line reuse %.0f", worstL1*100, worstReuse),
		},
		{
			Name:    "MPEG-4 is bound by DRAM latency",
			Refuted: worstDRAM < 0.15,
			Detail:  fmt.Sprintf("worst DRAM stall fraction %.1f%%", worstDRAM*100),
		},
		{
			Name:    "MPEG-4 is hungry for bus bandwidth",
			Refuted: worstBus < 0.10,
			Detail:  fmt.Sprintf("worst bus utilisation %.1f%% of sustained", worstBus*100),
		},
		{
			Name:    "memory performance degrades with growing image size",
			Refuted: true, // asserted in detail by Figure 2 / the harness tests
			Detail:  "see Figure 2: flat-to-improving with frame size",
		},
		{
			Name:    "memory performance degrades with more objects/layers",
			Refuted: true, // asserted in detail by Figures 3-4 / harness tests
			Detail:  "see Figures 3-4: flat or improving with objects and layers",
		},
	}
	return nil
}

// Text renders the full report.
func (r *Report) Text() string {
	var sb strings.Builder
	for n := 1; n <= 8; n++ {
		if t, ok := r.Tables[n]; ok {
			sb.WriteString(t)
			sb.WriteString("\n")
		}
	}
	for n := 2; n <= 4; n++ {
		for _, s := range r.Figures[n] {
			s.Write(&sb)
			sb.WriteString("\n")
		}
	}
	sb.WriteString("fallacy verdicts:\n")
	for _, f := range r.Fallacy {
		verdict := "REFUTED (matches paper)"
		if !f.Refuted {
			verdict = "NOT refuted (diverges from paper)"
		}
		fmt.Fprintf(&sb, "  %-55s %s — %s\n", f.Name+":", verdict, f.Detail)
	}
	if r.RatioCut > 0 {
		fmt.Fprintf(&sb, "future work: decode becomes memory bound at %gx baseline DRAM latency\n", r.RatioCut)
	}
	return sb.String()
}
