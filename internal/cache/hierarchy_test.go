package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/simmem"
)

func testHier() *Hierarchy {
	return NewHierarchy(
		Config{Name: "L1", SizeBytes: 1024, LineBytes: 32, Ways: 2},
		Config{Name: "L2", SizeBytes: 8192, LineBytes: 128, Ways: 2},
	)
}

func TestHierarchyBasicCounts(t *testing.T) {
	h := testHier()
	h.Access(0x1000, 4, simmem.Load)
	h.Access(0x1004, 4, simmem.Load) // same L1 line: hit
	h.Access(0x1000, 4, simmem.Store)
	if h.Loads != 2 || h.Stores != 1 {
		t.Fatalf("loads=%d stores=%d", h.Loads, h.Stores)
	}
	if h.L1Misses != 1 {
		t.Fatalf("L1Misses=%d want 1", h.L1Misses)
	}
	if h.L2Misses != 1 {
		t.Fatalf("L2Misses=%d want 1", h.L2Misses)
	}
}

func TestStraddlingAccessSplits(t *testing.T) {
	h := testHier()
	// 8-byte access spanning two 32B lines at offset 28.
	h.Access(0x1000+28, 8, simmem.Load)
	if h.L1Misses != 2 {
		t.Fatalf("straddling access caused %d L1 misses, want 2", h.L1Misses)
	}
	if h.Loads != 1 {
		t.Fatalf("straddling access counted as %d loads, want 1", h.Loads)
	}
}

func TestL2SpatialLocality(t *testing.T) {
	h := testHier()
	// Four consecutive L1 lines share one 128B L2 line: only the first
	// should miss in L2.
	for i := 0; i < 4; i++ {
		h.Access(uint64(0x2000+i*32), 4, simmem.Load)
	}
	if h.L1Misses != 4 {
		t.Fatalf("L1Misses=%d want 4", h.L1Misses)
	}
	if h.L2Misses != 1 {
		t.Fatalf("L2Misses=%d want 1", h.L2Misses)
	}
}

func TestPrefetchCounting(t *testing.T) {
	h := testHier()
	h.Access(0x3000, 4, simmem.Load)     // bring line in
	h.Access(0x3000, 0, simmem.Prefetch) // size ignored for prefetch
	if h.Prefetches != 1 || h.PrefetchL1Hits != 1 {
		t.Fatalf("prefetch counters: %d/%d", h.Prefetches, h.PrefetchL1Hits)
	}
	h.Access(0x9000, 4, simmem.Prefetch) // cold: useful prefetch
	if h.PrefetchL1Hits != 1 {
		t.Fatalf("cold prefetch miscounted as L1 hit")
	}
	// The prefetched line should now be resident.
	before := h.L1Misses
	h.Access(0x9000, 4, simmem.Load)
	if h.L1Misses != before {
		t.Fatal("prefetched line not installed in L1")
	}
}

func TestDirtyL1VictimWritesIntoL2(t *testing.T) {
	h := testHier()
	// L1: 1KB 2-way 32B lines -> 16 sets; same set every 512B.
	h.Access(0x0000, 4, simmem.Store) // dirty line in set 0
	h.Access(0x0200, 4, simmem.Load)  // same L1 set
	h.Access(0x0400, 4, simmem.Load)  // evicts dirty 0x0000
	if h.L1Writebacks != 1 {
		t.Fatalf("L1Writebacks=%d want 1", h.L1Writebacks)
	}
	// The written-back line must be dirty in L2 now: evicting it from L2
	// later should produce an L2 writeback. Force L2 conflicts:
	// L2 is 8KB 2-way 128B lines -> 32 sets; same set every 4KB.
	h.Access(0x0000+4096, 4, simmem.Load)
	h.Access(0x0000+8192, 4, simmem.Load)
	h.Access(0x0000+12288, 4, simmem.Load)
	if h.L2Writebacks == 0 {
		t.Fatal("dirty L1 victim's data lost: no L2 writeback observed")
	}
}

func TestZeroSizeAccessIgnored(t *testing.T) {
	h := testHier()
	h.Access(0x1000, 0, simmem.Load)
	if h.Loads != 0 && h.L1Misses != 0 {
		t.Fatal("zero-size access should be ignored")
	}
}

func TestStatsSubAdd(t *testing.T) {
	a := Stats{Loads: 10, Stores: 5, L1Misses: 2, Ops: 100}
	b := Stats{Loads: 4, Stores: 1, L1Misses: 1, Ops: 40}
	d := a.Sub(b)
	if d.Loads != 6 || d.Stores != 4 || d.L1Misses != 1 || d.Ops != 60 {
		t.Fatalf("Sub wrong: %+v", d)
	}
	s := d.Add(b)
	if s != a {
		t.Fatalf("Add(Sub) != original: %+v vs %+v", s, a)
	}
	if a.References() != 15 {
		t.Fatalf("References=%d", a.References())
	}
	if a.Instructions() != 115 {
		t.Fatalf("Instructions=%d", a.Instructions())
	}
}

func TestQuickHierarchyInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := testHier()
		for i := 0; i < 2000; i++ {
			kind := simmem.Kind(rng.Intn(3))
			h.Access(uint64(rng.Intn(1<<16)), uint32(1+rng.Intn(8)), kind)
		}
		// Conservation: L2 demand misses cannot exceed L1 misses;
		// prefetch L1 hits cannot exceed prefetches; the L1's raw
		// counter agrees with the hierarchy's.
		if h.L2Misses > h.L1Misses+h.Prefetches {
			return false
		}
		if h.PrefetchL1Hits > h.Prefetches {
			return false
		}
		if h.L1.CheckLRUInvariant() != nil || h.L2.CheckLRUInvariant() != nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchyReset(t *testing.T) {
	h := testHier()
	h.Access(0x1000, 4, simmem.Load)
	h.Ops(10)
	h.Reset()
	if h.Stats != (Stats{}) {
		t.Fatalf("stats not cleared: %+v", h.Stats)
	}
	if h.L1.Occupancy() != 0 || h.L2.Occupancy() != 0 {
		t.Fatal("caches not cleared")
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	h := testHier()
	h.Access(0x1000, 4, simmem.Load)
	s := h.Snapshot()
	h.Access(0x5000, 4, simmem.Load)
	if s.Loads != 1 {
		t.Fatal("snapshot mutated by later accesses")
	}
}

func TestAccessRunThroughHierarchy(t *testing.T) {
	h := testHier()
	simmem.AccessRun(h, 0x7000, 256, simmem.Load)
	if h.LoadBytes != 256 {
		t.Fatalf("LoadBytes=%d want 256", h.LoadBytes)
	}
	// 256 aligned bytes = 8 L1 lines.
	if h.L1Misses != 8 {
		t.Fatalf("L1Misses=%d want 8", h.L1Misses)
	}
	// = 2 L2 lines.
	if h.L2Misses != 2 {
		t.Fatalf("L2Misses=%d want 2", h.L2Misses)
	}
}

// TestRunStridedEquivalentToPerRowRuns: the strided fast path must be
// event-for-event equivalent to per-row Run calls, for every kind,
// under random block shapes.
func TestRunStridedEquivalentToPerRowRuns(t *testing.T) {
	a, b := testHier(), testHier()
	rng := rand.New(rand.NewSource(3))
	kinds := []simmem.Kind{simmem.Load, simmem.Store, simmem.Prefetch}
	units := []uint32{1, 1, 4, 8}
	for i := 0; i < 5000; i++ {
		addr := uint64(rng.Intn(1 << 14))
		rowBytes := 1 + rng.Intn(40)
		stride := 32 + rng.Intn(300)
		rows := 1 + rng.Intn(20)
		kind := kinds[rng.Intn(len(kinds))]
		unit := units[rng.Intn(len(units))]
		a.RunStrided(addr, rowBytes, stride, rows, unit, kind)
		rowAddr := addr
		for r := 0; r < rows; r++ {
			b.Run(rowAddr, rowBytes, unit, kind)
			rowAddr += uint64(stride)
		}
		if a.Snapshot() != b.Snapshot() {
			t.Fatalf("step %d: strided %+v != per-row %+v", i, a.Snapshot(), b.Snapshot())
		}
	}
	if err := a.L1.CheckLRUInvariant(); err != nil {
		t.Fatal(err)
	}
}

// TestPrefetchRunCountsPerLine: prefetch runs count one prefetch per
// covered line, the convention shared with simmem.Count.
func TestPrefetchRunCountsPerLine(t *testing.T) {
	h := testHier()
	h.Run(0x1000, 96, 1, simmem.Prefetch) // 3 lines of 32 B
	if h.Prefetches != 3 {
		t.Fatalf("prefetch run over 3 lines counted %d", h.Prefetches)
	}
	var c simmem.Count
	c.LineBytes = h.L1.LineBytes()
	c.Run(0x1000, 96, 1, simmem.Prefetch)
	if c.Prefetches != h.Prefetches {
		t.Fatalf("Count (%d) and Hierarchy (%d) disagree on prefetch run", c.Prefetches, h.Prefetches)
	}
}
