package cache

import "testing"

// TestTryNewRejectsInvalidGeometry: every ingress-shaped bad geometry
// is an error from TryNew — and a panic from New, which stays reserved
// for compiled-in machine descriptions.
func TestTryNewRejectsInvalidGeometry(t *testing.T) {
	good := Config{Name: "L1", SizeBytes: 32 << 10, LineBytes: 32, Ways: 2}
	bad := []Config{
		{},
		{Name: "neg", SizeBytes: -1, LineBytes: 32, Ways: 2},
		{Name: "line-not-pow2", SizeBytes: 32 << 10, LineBytes: 48, Ways: 2},
		{Name: "size-not-multiple", SizeBytes: 1000, LineBytes: 32, Ways: 2},
		{Name: "ways-not-divisor", SizeBytes: 32 << 10, LineBytes: 32, Ways: 3},
		{Name: "sets-not-pow2", SizeBytes: 96 << 10, LineBytes: 32, Ways: 2},
		// Structurally fine but absurdly large: must be rejected by the
		// size bound BEFORE TryNew's array allocation, or a network
		// request naming it would OOM the process at validation time.
		{Name: "huge", SizeBytes: 1 << 45, LineBytes: 128, Ways: 2},
	}
	for _, cfg := range bad {
		if _, err := TryNew(cfg); err == nil {
			t.Errorf("TryNew(%+v) accepted invalid geometry", cfg)
		}
		if _, err := TryNewHierarchy(good, cfg); err == nil {
			t.Errorf("TryNewHierarchy(good, %+v) accepted invalid geometry", cfg)
		}
		if _, err := TryNewHierarchy(cfg, good); err == nil {
			t.Errorf("TryNewHierarchy(%+v, good) accepted invalid geometry", cfg)
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
	c, err := TryNew(good)
	if err != nil || c == nil {
		t.Fatalf("TryNew(good) = %v, %v", c, err)
	}
	h, err := TryNewHierarchy(good, Config{Name: "L2", SizeBytes: 1 << 20, LineBytes: 128, Ways: 2})
	if err != nil || h == nil {
		t.Fatalf("TryNewHierarchy(good) = %v, %v", h, err)
	}
}
