package cache

import (
	"repro/internal/simmem"
)

// Stats is the raw event-counter block the hierarchy maintains. The
// fields mirror the R10K/R12K countable events used by the paper
// (graduated loads, graduated stores, primary data cache misses,
// secondary data cache misses, writebacks, prefetch instructions and
// prefetches hitting the primary cache) plus the graduated-instruction
// estimate fed in through Ops.
type Stats struct {
	Loads          uint64
	Stores         uint64
	LoadBytes      uint64
	StoreBytes     uint64
	Ops            uint64 // non-memory graduated instructions (estimate)
	L1Misses       uint64
	L1Writebacks   uint64
	L2Accesses     uint64
	L2Misses       uint64
	L2Writebacks   uint64
	Prefetches     uint64
	PrefetchL1Hits uint64
}

// Sub returns s - b, the counter delta across a phase.
func (s Stats) Sub(b Stats) Stats {
	return Stats{
		Loads:          s.Loads - b.Loads,
		Stores:         s.Stores - b.Stores,
		LoadBytes:      s.LoadBytes - b.LoadBytes,
		StoreBytes:     s.StoreBytes - b.StoreBytes,
		Ops:            s.Ops - b.Ops,
		L1Misses:       s.L1Misses - b.L1Misses,
		L1Writebacks:   s.L1Writebacks - b.L1Writebacks,
		L2Accesses:     s.L2Accesses - b.L2Accesses,
		L2Misses:       s.L2Misses - b.L2Misses,
		L2Writebacks:   s.L2Writebacks - b.L2Writebacks,
		Prefetches:     s.Prefetches - b.Prefetches,
		PrefetchL1Hits: s.PrefetchL1Hits - b.PrefetchL1Hits,
	}
}

// Add returns s + b.
func (s Stats) Add(b Stats) Stats {
	return Stats{
		Loads:          s.Loads + b.Loads,
		Stores:         s.Stores + b.Stores,
		LoadBytes:      s.LoadBytes + b.LoadBytes,
		StoreBytes:     s.StoreBytes + b.StoreBytes,
		Ops:            s.Ops + b.Ops,
		L1Misses:       s.L1Misses + b.L1Misses,
		L1Writebacks:   s.L1Writebacks + b.L1Writebacks,
		L2Accesses:     s.L2Accesses + b.L2Accesses,
		L2Misses:       s.L2Misses + b.L2Misses,
		L2Writebacks:   s.L2Writebacks + b.L2Writebacks,
		Prefetches:     s.Prefetches + b.Prefetches,
		PrefetchL1Hits: s.PrefetchL1Hits + b.PrefetchL1Hits,
	}
}

// References returns graduated loads + stores.
func (s Stats) References() uint64 { return s.Loads + s.Stores }

// Instructions estimates graduated instructions: memory operations plus
// the ALU/branch estimate reported by the kernels.
func (s Stats) Instructions() uint64 {
	return s.Loads + s.Stores + s.Prefetches + s.Ops
}

// Hierarchy is a two-level inclusive data-cache hierarchy implementing
// simmem.Tracer. An access that misses L1 probes L2; an L2 miss goes to
// (counted) DRAM. L1 victims that are dirty are written back into L2;
// dirty L2 victims count as DRAM writeback traffic.
type Hierarchy struct {
	L1 *Cache
	L2 *Cache
	Stats
}

// NewHierarchy builds the two-level hierarchy. Like New, it panics on
// invalid geometry and is reserved for static machine descriptions;
// ingress paths use TryNewHierarchy.
func NewHierarchy(l1, l2 Config) *Hierarchy {
	return &Hierarchy{L1: New(l1), L2: New(l2)}
}

// TryNewHierarchy builds the two-level hierarchy, returning an error
// on invalid geometry — the constructor for configurations that arrive
// as data (service requests, manifests, distributed shards).
func TryNewHierarchy(l1, l2 Config) (*Hierarchy, error) {
	c1, err := TryNew(l1)
	if err != nil {
		return nil, err
	}
	c2, err := TryNew(l2)
	if err != nil {
		return nil, err
	}
	return &Hierarchy{L1: c1, L2: c2}, nil
}

var (
	_ simmem.Tracer        = (*Hierarchy)(nil)
	_ simmem.StridedTracer = (*Hierarchy)(nil)
)

// Access implements simmem.Tracer. Accesses that straddle an L1 line
// boundary are split per line, as the hardware would split them into
// separate cache references (the compiler mostly avoids such accesses;
// the split keeps the model exact regardless).
func (h *Hierarchy) Access(addr uint64, size uint32, kind simmem.Kind) {
	switch kind {
	case simmem.Load:
		h.Loads++
		h.LoadBytes += uint64(size)
	case simmem.Store:
		h.Stores++
		h.StoreBytes += uint64(size)
	case simmem.Prefetch:
		h.Prefetches++
		// A prefetch that hits L1 is a wasted instruction slot; the
		// R12K counts these. It does not re-reference the hierarchy.
		if h.L1.Lookup(addr) {
			h.PrefetchL1Hits++
			return
		}
		h.lineRef(addr, false)
		return
	}
	if size == 0 {
		return
	}
	lineBytes := uint64(1) << h.L1.lineShift
	first := addr &^ (lineBytes - 1)
	last := (addr + uint64(size) - 1) &^ (lineBytes - 1)
	write := kind == simmem.Store
	if first == last {
		h.lineRef(addr, write)
		return
	}
	for a := first; a <= last; a += lineBytes {
		h.lineRef(a, write)
	}
}

// Run implements simmem.Tracer: a contiguous run of n bytes referenced
// in unit-sized accesses. The graduated-operation counters advance by
// n/unit, but each covered L1 line is probed exactly once — consecutive
// same-line references cannot change LRU state in between, so the
// hit/miss outcome is identical to per-access probing at a fraction of
// the simulation cost.
func (h *Hierarchy) Run(addr uint64, n int, unit uint32, kind simmem.Kind) {
	if n <= 0 {
		return
	}
	refs := simmem.RunRefs(n, unit)
	switch kind {
	case simmem.Load:
		h.Loads += refs
		h.LoadBytes += uint64(n)
	case simmem.Store:
		h.Stores += refs
		h.StoreBytes += uint64(n)
	case simmem.Prefetch:
		// Prefetch runs degenerate to per-line prefetch probes.
		lineBytes := uint64(1) << h.L1.lineShift
		for a := addr &^ (lineBytes - 1); a < addr+uint64(n); a += lineBytes {
			h.Access(a, 0, simmem.Prefetch)
		}
		return
	}
	write := kind == simmem.Store
	lineBytes := uint64(1) << h.L1.lineShift
	first := addr &^ (lineBytes - 1)
	last := (addr + uint64(n) - 1) &^ (lineBytes - 1)
	for a := first; a <= last; a += lineBytes {
		h.lineRef(a, write)
	}
}

// RunStrided implements simmem.StridedTracer: exactly equivalent to
// rows consecutive Run calls, with the counter updates batched outside
// the per-row line loop. The SAD and compensation kernels deliver their
// blocks through this path, so it carries most of the simulated stream.
func (h *Hierarchy) RunStrided(addr uint64, rowBytes, stride, rows int, unit uint32, kind simmem.Kind) {
	if rowBytes <= 0 || rows <= 0 {
		return
	}
	if kind == simmem.Prefetch {
		for r := 0; r < rows; r++ {
			h.Run(addr, rowBytes, unit, simmem.Prefetch)
			addr += uint64(stride)
		}
		return
	}
	refs := uint64(rows) * simmem.RunRefs(rowBytes, unit)
	bytes := uint64(rows) * uint64(rowBytes)
	write := kind == simmem.Store
	if write {
		h.Stores += refs
		h.StoreBytes += bytes
	} else {
		h.Loads += refs
		h.LoadBytes += bytes
	}
	lineBytes := uint64(1) << h.L1.lineShift
	for r := 0; r < rows; r++ {
		first := addr &^ (lineBytes - 1)
		last := (addr + uint64(rowBytes) - 1) &^ (lineBytes - 1)
		for a := first; a <= last; a += lineBytes {
			h.lineRef(a, write)
		}
		addr += uint64(stride)
	}
}

// lineRef performs one L1 reference and handles the miss path.
func (h *Hierarchy) lineRef(addr uint64, write bool) {
	r1 := h.L1.Access(addr, write)
	if r1.Hit {
		return
	}
	h.L1Misses++
	if r1.EvictedDirty {
		h.L1Writebacks++
		// The dirty L1 victim is written into L2. With an inclusive L2
		// this is a hit that dirties the line; count it as an L2 access
		// but not a demand miss even in the (rare, non-inclusive) case
		// it is absent.
		// Writeback installs are not demand misses: the data travels
		// L1→L2 without a DRAM fill (the victim is a full L1 line and
		// the enclosing L2 line is present in the inclusive common
		// case). Only a dirty L2 victim displaced by the install adds
		// DRAM traffic. Hierarchy.L2Misses (demand misses) is therefore
		// not incremented here; the Cache's internal Misses counter is
		// raw and includes installs.
		wbAddr := r1.EvictedLine << h.L1.lineShift
		h.L2Accesses++
		r2 := h.L2.Access(wbAddr, true)
		if !r2.Hit && r2.EvictedDirty {
			h.L2Writebacks++
		}
	}
	// Demand fill from L2.
	h.L2Accesses++
	r2 := h.L2.Access(addr, false)
	if !r2.Hit {
		h.L2Misses++
		if r2.EvictedDirty {
			h.L2Writebacks++
		}
	}
}

// Ops implements simmem.Tracer.
func (h *Hierarchy) Ops(n uint64) { h.Stats.Ops += n }

// Snapshot returns a copy of the current counters.
func (h *Hierarchy) Snapshot() Stats { return h.Stats }

// Reset clears both cache levels and all counters.
func (h *Hierarchy) Reset() {
	h.L1.Reset()
	h.L2.Reset()
	h.Stats = Stats{}
}
