// Package cache implements a trace-driven two-level cache and memory
// hierarchy model with the event counters of the MIPS R10000/R12000.
//
// The model is deliberately close to the SGI machines the paper measures:
// a split primary cache (we model the 32 KB 2-way data cache with 32-byte
// lines; instruction-cache misses are negligible in the paper and are not
// modelled), a unified set-associative write-back second-level cache of
// 1/2/8 MB with 128-byte lines, and interleaved SDRAM behind a 64-bit
// 133 MHz split-transaction bus.
//
// Accesses are fed through the simmem.Tracer interface; the hierarchy
// counts the events a hardware counter unit would count (graduated loads
// and stores, primary and secondary data-cache misses, writebacks,
// prefetches and prefetches that hit in L1).
package cache

import (
	"fmt"
)

// Config describes one cache level. The JSON tags are the wire shape
// used by service requests, batch manifests and distributed shard
// jobs; geometry arriving through any of those paths is validated (see
// TryNew) before a cache is built from it.
type Config struct {
	Name      string `json:"name,omitempty"`
	SizeBytes int    `json:"size"`
	LineBytes int    `json:"line"` // power of two
	Ways      int    `json:"ways"`
	// Policy selects the replacement policy (see policy.go). Empty
	// means LRU, so pre-policy configurations keep their meaning on
	// every wire shape.
	Policy Policy `json:"policy,omitempty"`
	// Seed parameterizes PolicyRandom's deterministic victim stream.
	// Zero selects the fixed default seed; any other value gives an
	// independent (still deterministic) stream for seed-sensitivity
	// studies.
	Seed uint64 `json:"seed,omitempty"`
}

// MaxSizeBytes bounds a single cache level's capacity (1 GiB — far
// above any geometry the study sweeps). The bound exists because
// geometries arrive in network requests and manifests: without it, a
// well-formed request naming an absurd size would pass the structural
// checks and then OOM the process inside TryNew's array allocation
// instead of returning an error.
const MaxSizeBytes = 1 << 30

// Validate checks the geometry for consistency.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache %s: nonpositive geometry %+v", c.Name, c)
	}
	if c.SizeBytes > MaxSizeBytes {
		return fmt.Errorf("cache %s: size %d exceeds the %d-byte bound", c.Name, c.SizeBytes, MaxSizeBytes)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache %s: line size %d not a power of two", c.Name, c.LineBytes)
	}
	lines := c.SizeBytes / c.LineBytes
	if lines*c.LineBytes != c.SizeBytes {
		return fmt.Errorf("cache %s: size %d not a multiple of line size %d", c.Name, c.SizeBytes, c.LineBytes)
	}
	sets := lines / c.Ways
	if sets*c.Ways != lines {
		return fmt.Errorf("cache %s: %d lines not divisible by %d ways", c.Name, lines, c.Ways)
	}
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: set count %d not a power of two", c.Name, sets)
	}
	if err := c.Policy.Validate(); err != nil {
		return fmt.Errorf("cache %s: %w", c.Name, err)
	}
	if c.Policy == PolicyPLRU {
		if c.Ways&(c.Ways-1) != 0 {
			return fmt.Errorf("cache %s: tree-plru needs power-of-two ways, have %d", c.Name, c.Ways)
		}
		if c.Ways > 64 {
			return fmt.Errorf("cache %s: tree-plru supports at most 64 ways, have %d", c.Name, c.Ways)
		}
	}
	return nil
}

// Cache is one set-associative, write-back, write-allocate cache level
// with a configurable replacement policy (true LRU by default).
type Cache struct {
	cfg       Config
	lineShift uint
	setMask   uint64
	ways      int

	// Flat arrays indexed by set*ways+way. Under LRU (and the victim
	// wrapper), ways within a set are kept in recency order: way 0 is
	// most recently used. Under the fixed-way policies (plru, fifo,
	// random) lines stay in the way they were installed in.
	tags  []uint64 // line-number tags (full address >> lineShift)
	valid []bool
	dirty []bool

	// Replacement-policy state (see policy.go). pol dispatches the
	// access path; state is one word per set (plru tree bits or the
	// fifo round-robin pointer); rng is the PolicyRandom stream;
	// victim is non-nil only for PolicyVictim.
	pol    uint8
	state  []uint64
	rng    uint64
	victim *victimBuf

	// Counters.
	Accesses   uint64
	Misses     uint64
	Writebacks uint64
	// VictimHits counts misses of the set array that were served by
	// the PolicyVictim buffer (always zero otherwise). Such accesses
	// count as hits in Accesses/Misses terms: no next-level reference
	// happens.
	VictimHits uint64
}

// New builds a cache from cfg. It panics on invalid geometry, which is
// a programming error for its callers: New is reserved for static
// machine descriptions (the built-in SGI platforms and compiled-in
// sweep axes). Geometry that arrives from outside the binary — service
// requests, manifests, distributed shard jobs — must go through TryNew
// (or validate with Config.Validate first) so a bad request is an
// error response, not a crashed process.
func New(cfg Config) *Cache {
	c, err := TryNew(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// TryNew builds a cache from cfg, returning an error on invalid
// geometry. This is the constructor for every ingress path where the
// geometry is data rather than code.
func TryNew(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	lines := cfg.SizeBytes / cfg.LineBytes
	sets := lines / cfg.Ways
	shift := uint(0)
	for 1<<shift != cfg.LineBytes {
		shift++
	}
	c := &Cache{
		cfg:       cfg,
		lineShift: shift,
		setMask:   uint64(sets - 1),
		ways:      cfg.Ways,
		tags:      make([]uint64, lines),
		valid:     make([]bool, lines),
		dirty:     make([]bool, lines),
	}
	switch cfg.Policy {
	case "", PolicyLRU:
		c.pol = polLRU
	case PolicyVictim:
		c.pol = polLRU
		c.victim = newVictimBuf(VictimLines)
	case PolicyPLRU:
		c.pol = polPLRU
		c.state = make([]uint64, sets)
	case PolicyFIFO:
		c.pol = polFIFO
		c.state = make([]uint64, sets)
	case PolicyRandom:
		c.pol = polRandom
		c.rng = cfg.Seed
		if c.rng == 0 {
			c.rng = defaultSeed
		}
	}
	return c, nil
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// LineBytes returns the line size.
func (c *Cache) LineBytes() int { return c.cfg.LineBytes }

// LineOf returns the line number containing addr.
func (c *Cache) LineOf(addr uint64) uint64 { return addr >> c.lineShift }

// Lookup probes for the line containing addr without allocating. A
// line parked in the PolicyVictim buffer counts as present: the buffer
// sits beside the set array at this level, not behind it.
func (c *Cache) Lookup(addr uint64) bool {
	ln := addr >> c.lineShift
	set := int(ln&c.setMask) * c.ways
	for w := 0; w < c.ways; w++ {
		if c.valid[set+w] && c.tags[set+w] == ln {
			return true
		}
	}
	return c.victim != nil && c.victim.lookup(ln)
}

// Result of a cache access.
type Result struct {
	Hit          bool
	Evicted      bool   // a valid line was displaced
	EvictedDirty bool   // the displaced line was dirty (writeback needed)
	EvictedLine  uint64 // line number of the displaced line
}

// Access references the line containing addr, allocating on miss and
// marking dirty when write is true. The common hit path is kept minimal:
// tag match in LRU position 0 falls through with only the access counter
// incremented. Non-LRU policies dispatch to the fixed-way path up
// front so the LRU fast paths below stay exactly as they were; the
// victim-buffer probes sit on the miss path only and are skipped
// entirely (nil check) outside PolicyVictim.
func (c *Cache) Access(addr uint64, write bool) Result {
	if c.pol != polLRU {
		return c.accessIndexed(addr, write)
	}
	c.Accesses++
	ln := addr >> c.lineShift
	base := int(ln&c.setMask) * c.ways
	// Fast path: MRU hit.
	if c.valid[base] && c.tags[base] == ln {
		if write {
			c.dirty[base] = true
		}
		return Result{Hit: true}
	}
	// 2-way sets (the paper's L1 and L2 geometry) need no slice
	// shuffling: an LRU-way hit is a swap of the two slots, a miss
	// demotes the MRU slot and installs in its place.
	if c.ways == 2 {
		lru := base + 1
		if c.valid[lru] && c.tags[lru] == ln {
			c.tags[lru] = c.tags[base]
			c.tags[base] = ln
			d := c.dirty[lru]
			c.dirty[lru] = c.dirty[base]
			c.dirty[base] = d || write
			c.valid[lru] = c.valid[base]
			c.valid[base] = true
			return Result{Hit: true}
		}
		if c.victim != nil {
			if d, ok := c.victim.take(ln); ok {
				// Victim hit: swap — the line re-installs at MRU and the
				// displaced LRU-way line parks in the slot the hit freed,
				// so nothing leaves this level.
				c.VictimHits++
				if c.valid[lru] {
					c.victim.insert(c.tags[lru], c.dirty[lru])
				}
				c.tags[lru] = c.tags[base]
				c.dirty[lru] = c.dirty[base]
				c.valid[lru] = c.valid[base]
				c.tags[base] = ln
				c.valid[base] = true
				c.dirty[base] = d || write
				return Result{Hit: true}
			}
		}
		c.Misses++
		res := Result{}
		c.evictSlot(&res, lru)
		c.tags[lru] = c.tags[base]
		c.dirty[lru] = c.dirty[base]
		c.valid[lru] = c.valid[base]
		c.tags[base] = ln
		c.valid[base] = true
		c.dirty[base] = write
		return res
	}
	for w := 1; w < c.ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == ln {
			// Move to MRU position.
			d := c.dirty[i]
			copy(c.tags[base+1:i+1], c.tags[base:i])
			copy(c.dirty[base+1:i+1], c.dirty[base:i])
			copy(c.valid[base+1:i+1], c.valid[base:i])
			c.tags[base] = ln
			c.valid[base] = true
			c.dirty[base] = d || write
			return Result{Hit: true}
		}
	}
	// Miss: victim is the LRU way (last slot).
	v := base + c.ways - 1
	if c.victim != nil {
		if d, ok := c.victim.take(ln); ok {
			c.VictimHits++
			if c.valid[v] {
				c.victim.insert(c.tags[v], c.dirty[v])
			}
			copy(c.tags[base+1:v+1], c.tags[base:v])
			copy(c.dirty[base+1:v+1], c.dirty[base:v])
			copy(c.valid[base+1:v+1], c.valid[base:v])
			c.tags[base] = ln
			c.valid[base] = true
			c.dirty[base] = d || write
			return Result{Hit: true}
		}
	}
	c.Misses++
	res := Result{}
	c.evictSlot(&res, v)
	copy(c.tags[base+1:v+1], c.tags[base:v])
	copy(c.dirty[base+1:v+1], c.dirty[base:v])
	copy(c.valid[base+1:v+1], c.valid[base:v])
	c.tags[base] = ln
	c.valid[base] = true
	c.dirty[base] = write
	return res
}

// FillClean installs the line containing addr in the clean state (used for
// L2 receiving an L1 writeback of a line it already holds would instead
// mark dirty; FillClean is used when warming or installing lines without
// an explicit demand reference semantic).
func (c *Cache) FillClean(addr uint64) Result { return c.Access(addr, false) }

// Reset clears contents, counters and replacement-policy state (the
// PolicyRandom stream rewinds to its seed, so a reset cache replays a
// stream identically to a fresh one).
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
		c.dirty[i] = false
	}
	for i := range c.state {
		c.state[i] = 0
	}
	if c.pol == polRandom {
		c.rng = c.cfg.Seed
		if c.rng == 0 {
			c.rng = defaultSeed
		}
	}
	if c.victim != nil {
		c.victim.reset()
	}
	c.Accesses, c.Misses, c.Writebacks, c.VictimHits = 0, 0, 0, 0
}

// Occupancy returns the number of valid lines (for tests and diagnostics).
func (c *Cache) Occupancy() int {
	n := 0
	for _, v := range c.valid {
		if v {
			n++
		}
	}
	return n
}

// CheckLRUInvariant is the pre-policy name of CheckInvariant, kept as
// a thin wrapper so existing tests and callers compile unchanged. On a
// non-LRU cache it checks that cache's own policy invariants (the name
// is historical, the dispatch is per-policy).
func (c *Cache) CheckLRUInvariant() error { return c.CheckInvariant() }
