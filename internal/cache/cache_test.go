package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func small() Config {
	return Config{Name: "t", SizeBytes: 256, LineBytes: 32, Ways: 2} // 4 sets
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Name: "a", SizeBytes: 0, LineBytes: 32, Ways: 2},
		{Name: "b", SizeBytes: 256, LineBytes: 33, Ways: 2},
		{Name: "c", SizeBytes: 250, LineBytes: 32, Ways: 2},
		{Name: "d", SizeBytes: 256, LineBytes: 32, Ways: 3},
		{Name: "e", SizeBytes: 96, LineBytes: 32, Ways: 1}, // 3 sets: not pow2
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %s should be invalid", c.Name)
		}
	}
	if err := small().Validate(); err != nil {
		t.Errorf("small config invalid: %v", err)
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Name: "bad", SizeBytes: 100, LineBytes: 32, Ways: 2})
}

func TestColdMissThenHit(t *testing.T) {
	c := New(small())
	r := c.Access(0x1000, false)
	if r.Hit {
		t.Fatal("cold access hit")
	}
	r = c.Access(0x1004, false)
	if !r.Hit {
		t.Fatal("same-line access missed")
	}
	if c.Accesses != 2 || c.Misses != 1 {
		t.Fatalf("counters: %d accesses %d misses", c.Accesses, c.Misses)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(small()) // 2-way, 4 sets, 32B lines; same set every 128B
	a0 := uint64(0x0000)
	a1 := a0 + 128 // same set
	a2 := a0 + 256 // same set
	c.Access(a0, false)
	c.Access(a1, false)
	c.Access(a0, false) // a0 MRU, a1 LRU
	r := c.Access(a2, false)
	if r.Hit {
		t.Fatal("a2 should miss")
	}
	if !r.Evicted || r.EvictedLine != c.LineOf(a1) {
		t.Fatalf("expected a1 evicted, got %+v (want line %#x)", r, c.LineOf(a1))
	}
	if !c.Lookup(a0) {
		t.Fatal("a0 should have survived")
	}
	if c.Lookup(a1) {
		t.Fatal("a1 should be gone")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := New(small())
	c.Access(0x0000, true) // dirty
	c.Access(0x0080, false)
	r := c.Access(0x0100, false) // evicts dirty 0x0000
	if !r.EvictedDirty {
		t.Fatalf("expected dirty eviction, got %+v", r)
	}
	if c.Writebacks != 1 {
		t.Fatalf("writebacks = %d", c.Writebacks)
	}
}

func TestWriteHitDirties(t *testing.T) {
	c := New(small())
	c.Access(0x0000, false)
	c.Access(0x0000, true) // hit, mark dirty
	c.Access(0x0080, false)
	r := c.Access(0x0100, false)
	if !r.EvictedDirty {
		t.Fatal("write-hit did not dirty the line")
	}
}

func TestHitOnNonMRUWayPreservesDirty(t *testing.T) {
	c := New(small())
	c.Access(0x0000, true)  // A dirty
	c.Access(0x0080, false) // B; A now LRU
	r := c.Access(0x0000, false)
	if !r.Hit {
		t.Fatal("expected hit on LRU way")
	}
	c.Access(0x0080, false)
	r = c.Access(0x0100, false) // evict A (LRU after B,B? no: order B MRU, A LRU)
	if !r.Evicted {
		t.Fatal("expected eviction")
	}
	if r.EvictedLine == c.LineOf(0x0000) && !r.EvictedDirty {
		t.Fatal("A's dirty bit lost during LRU reordering")
	}
}

func TestOccupancyAndReset(t *testing.T) {
	c := New(small())
	for i := 0; i < 8; i++ {
		c.Access(uint64(i*32), false)
	}
	if c.Occupancy() != 8 {
		t.Fatalf("occupancy %d want 8", c.Occupancy())
	}
	c.Reset()
	if c.Occupancy() != 0 || c.Accesses != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestQuickLRUInvariant(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(Config{Name: "q", SizeBytes: 1024, LineBytes: 32, Ways: 4})
		for i := 0; i < int(n)%2000; i++ {
			c.Access(uint64(rng.Intn(8192)), rng.Intn(2) == 0)
		}
		return c.CheckLRUInvariant() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMissesNeverExceedAccesses(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(small())
		for i := 0; i < 500; i++ {
			c.Access(uint64(rng.Intn(4096)), rng.Intn(2) == 0)
		}
		return c.Misses <= c.Accesses && c.Writebacks <= c.Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFullyAssociativeBehaviour(t *testing.T) {
	// 1-set cache: 8 ways of 32B = 256B.
	c := New(Config{Name: "fa", SizeBytes: 256, LineBytes: 32, Ways: 8})
	for i := 0; i < 8; i++ {
		c.Access(uint64(i)*32, false)
	}
	// All 8 should hit now.
	for i := 0; i < 8; i++ {
		if r := c.Access(uint64(i)*32, false); !r.Hit {
			t.Fatalf("line %d missed in fully-associative fill", i)
		}
	}
	// Ninth distinct line evicts the LRU (line 0 after sequential re-touch).
	r := c.Access(8*32, false)
	if r.Hit || !r.Evicted || r.EvictedLine != 0 {
		t.Fatalf("unexpected result %+v", r)
	}
}

func TestDirectMapped(t *testing.T) {
	c := New(Config{Name: "dm", SizeBytes: 128, LineBytes: 32, Ways: 1})
	c.Access(0, false)
	r := c.Access(128, false) // same set, conflict
	if r.Hit || !r.Evicted {
		t.Fatalf("direct-mapped conflict not detected: %+v", r)
	}
}

// refLRUSet is a trivially-correct LRU set model (slice reordering) the
// fast paths are differenced against.
type refLRUSet struct {
	lines []struct {
		tag   uint64
		dirty bool
	}
	ways int
}

func (s *refLRUSet) access(tag uint64, write bool) Result {
	for i, l := range s.lines {
		if l.tag == tag {
			s.lines = append(s.lines[:i], s.lines[i+1:]...)
			l.dirty = l.dirty || write
			s.lines = append([]struct {
				tag   uint64
				dirty bool
			}{l}, s.lines...)
			return Result{Hit: true}
		}
	}
	res := Result{}
	if len(s.lines) == s.ways {
		v := s.lines[len(s.lines)-1]
		s.lines = s.lines[:len(s.lines)-1]
		res.Evicted = true
		res.EvictedLine = v.tag
		res.EvictedDirty = v.dirty
	}
	s.lines = append([]struct {
		tag   uint64
		dirty bool
	}{{tag: tag, dirty: write}}, s.lines...)
	return res
}

// TestAccessMatchesReferenceLRU differences Cache.Access — including
// the specialised 2-way swap path — against the reference model, for
// 2-way and 4-way geometries under random access/write sequences.
func TestAccessMatchesReferenceLRU(t *testing.T) {
	for _, ways := range []int{1, 2, 4} {
		cfg := Config{Name: "t", SizeBytes: 32 * 4 * ways, LineBytes: 32, Ways: ways} // 4 sets
		c := New(cfg)
		refs := make([]*refLRUSet, 4)
		for i := range refs {
			refs[i] = &refLRUSet{ways: ways}
		}
		rng := rand.New(rand.NewSource(int64(ways)))
		for i := 0; i < 20000; i++ {
			addr := uint64(rng.Intn(64)) * 32 // 64 distinct lines over 4 sets
			write := rng.Intn(3) == 0
			got := c.Access(addr, write)
			ln := addr >> 5
			want := refs[ln&3].access(ln, write)
			if got != want {
				t.Fatalf("ways=%d step %d addr %#x write=%v: got %+v want %+v", ways, i, addr, write, got, want)
			}
		}
		if err := c.CheckLRUInvariant(); err != nil {
			t.Fatalf("ways=%d: %v", ways, err)
		}
	}
}
