// Replacement policies. The paper's machines (and the original model)
// use true LRU everywhere, but real second-level caches ship tree-PLRU,
// FIFO ("round-robin" in vendor manuals) or random replacement, and
// some primaries hide conflict misses behind a small victim buffer
// (Jouppi, ISCA 1990). Config.Policy selects the policy per cache
// level; the default (empty string) is the original true-LRU model,
// whose hot paths in cache.go are untouched and byte-identical.
//
// The seam is deliberately enum-dispatched rather than an interface:
// Access is the innermost loop of every simulation, and the LRU fast
// paths (MRU probe, 2-way swap) must stay free of indirect calls. LRU
// keeps the recency-ordered set array of cache.go; the other policies
// share one fixed-way-placement path (accessIndexed) with per-set
// policy state in Cache.state.
package cache

import "fmt"

// Policy names a replacement policy. The zero value means LRU, so
// configurations that predate the policy axis — JSON manifests, shard
// specs, wire-format traces — keep their meaning unchanged.
type Policy string

const (
	// PolicyLRU is true least-recently-used replacement (the default;
	// "" is accepted as an alias so pre-policy configurations decode
	// unchanged).
	PolicyLRU Policy = "lru"
	// PolicyPLRU is tree pseudo-LRU: one bit per internal node of a
	// binary tree over the ways, flipped away from every access and
	// followed to the victim. Requires power-of-two associativity (at
	// most 64 ways). Identical to true LRU for 1- and 2-way sets.
	PolicyPLRU Policy = "plru"
	// PolicyFIFO evicts in installation order (round-robin): hits do
	// not refresh a line's position.
	PolicyFIFO Policy = "fifo"
	// PolicyRandom evicts a uniformly random way of a full set, drawn
	// from a deterministic per-cache xorshift stream (see Config.Seed)
	// so every replay of one capture reproduces the same Stats.
	PolicyRandom Policy = "random"
	// PolicyVictim is true LRU plus a VictimLines-entry fully
	// associative victim buffer: displaced lines park in the buffer and
	// a miss that hits there is re-installed without a next-level
	// access. Meaningful on an L1 (where conflict misses dominate);
	// accepted on any level.
	PolicyVictim Policy = "victim"
)

// VictimLines is the capacity of the PolicyVictim buffer, in cache
// lines — Jouppi's classic 1–16 line range, mid-point.
const VictimLines = 8

// defaultSeed feeds PolicyRandom when Config.Seed is zero. The value
// is arbitrary but fixed: determinism across runs, machines and
// distributed workers is what makes random-replacement results
// comparable at all.
const defaultSeed = 0x9E3779B97F4A7C15

// Internal dispatch codes. polLRU covers PolicyVictim too: the victim
// buffer wraps the LRU set array, it does not change its ordering.
const (
	polLRU uint8 = iota
	polPLRU
	polFIFO
	polRandom
)

// Policies lists every valid policy, in display order.
func Policies() []Policy {
	return []Policy{PolicyLRU, PolicyPLRU, PolicyFIFO, PolicyRandom, PolicyVictim}
}

// ParsePolicy maps a configuration string to a Policy. The empty
// string is LRU (the pre-policy default); anything unknown is an error
// naming the valid set — ingress paths (manifests, service requests,
// shard specs, CLI flags) rely on this never panicking.
func ParsePolicy(s string) (Policy, error) {
	switch p := Policy(s); p {
	case "":
		return PolicyLRU, nil
	case PolicyLRU, PolicyPLRU, PolicyFIFO, PolicyRandom, PolicyVictim:
		return p, nil
	default:
		return "", fmt.Errorf("unknown replacement policy %q (have lru, plru, fifo, random, victim)", s)
	}
}

// Validate checks that p names a known policy ("" counts as LRU).
func (p Policy) Validate() error {
	_, err := ParsePolicy(string(p))
	return err
}

// Canonical returns c with its Policy normalized ("" becomes "lru" —
// the two spellings name the same cache). Use it when comparing
// configurations that may have crossed a wire or a JSON boundary,
// where either spelling can appear; an unknown policy is returned
// unchanged (validation rejects it elsewhere).
func (c Config) Canonical() Config {
	if p, err := ParsePolicy(string(c.Policy)); err == nil {
		c.Policy = p
	}
	return c
}

// ForL2 maps a hierarchy-wide policy choice onto a second-level cache:
// the victim buffer is an L1 wrapper, so "victim" means an LRU L2;
// every other policy applies as-is.
func (p Policy) ForL2() Policy {
	if p == PolicyVictim {
		return PolicyLRU
	}
	return p
}

// victimBuf is the fully associative buffer behind PolicyVictim. Like
// the reference LRU set model, entries are kept in recency order
// (index 0 most recent); with VictimLines = 8 entries the linear scans
// are cheaper than any map.
type victimBuf struct {
	tags  []uint64
	dirty []bool
	cap   int
}

func newVictimBuf(lines int) *victimBuf {
	return &victimBuf{
		tags:  make([]uint64, 0, lines),
		dirty: make([]bool, 0, lines),
		cap:   lines,
	}
}

// lookup reports whether the buffer holds line ln, without touching
// recency (used by Cache.Lookup / prefetch probes).
func (v *victimBuf) lookup(ln uint64) bool {
	for _, t := range v.tags {
		if t == ln {
			return true
		}
	}
	return false
}

// take removes line ln, returning its dirty bit — the victim-hit half
// of the swap (the caller re-installs the line in the set array).
func (v *victimBuf) take(ln uint64) (dirty, ok bool) {
	for i, t := range v.tags {
		if t != ln {
			continue
		}
		dirty = v.dirty[i]
		v.tags = append(v.tags[:i], v.tags[i+1:]...)
		v.dirty = append(v.dirty[:i], v.dirty[i+1:]...)
		return dirty, true
	}
	return false, false
}

// insert parks a line displaced from the set array. When the buffer is
// full its least recent entry falls out and is returned — that entry
// is the true eviction of the L1+victim complex.
func (v *victimBuf) insert(ln uint64, dirty bool) (outTag uint64, outDirty, evicted bool) {
	if len(v.tags) == v.cap {
		last := len(v.tags) - 1
		outTag, outDirty, evicted = v.tags[last], v.dirty[last], true
		v.tags = v.tags[:last]
		v.dirty = v.dirty[:last]
	}
	v.tags = append(v.tags, 0)
	v.dirty = append(v.dirty, false)
	copy(v.tags[1:], v.tags)
	copy(v.dirty[1:], v.dirty)
	v.tags[0] = ln
	v.dirty[0] = dirty
	return outTag, outDirty, evicted
}

func (v *victimBuf) reset() {
	v.tags = v.tags[:0]
	v.dirty = v.dirty[:0]
}

// accessIndexed is the fixed-way-placement access path shared by PLRU,
// FIFO and random replacement: lines stay in the way they were
// installed in, and the per-set policy state (tree bits or round-robin
// pointer in c.state, the xorshift stream in c.rng) picks victims.
// Counter and Result semantics match the LRU path exactly.
func (c *Cache) accessIndexed(addr uint64, write bool) Result {
	c.Accesses++
	ln := addr >> c.lineShift
	set := int(ln & c.setMask)
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == ln {
			if write {
				c.dirty[i] = true
			}
			if c.pol == polPLRU {
				c.touchPLRU(set, w)
			}
			return Result{Hit: true}
		}
	}
	c.Misses++
	// Invalid ways fill first, lowest index first (lines never
	// invalidate mid-run, so this only shapes the cold start — and for
	// FIFO it fills ways in exactly the order the round-robin pointer
	// will later evict them, preserving installation order).
	w := -1
	for j := 0; j < c.ways; j++ {
		if !c.valid[base+j] {
			w = j
			break
		}
	}
	if w < 0 {
		switch c.pol {
		case polPLRU:
			w = c.plruVictim(set)
		case polFIFO:
			w = int(c.state[set])
			c.state[set] = uint64((w + 1) % c.ways)
		default: // polRandom
			w = int(c.nextRand() % uint64(c.ways))
		}
	}
	i := base + w
	res := Result{}
	c.evictSlot(&res, i)
	c.tags[i] = ln
	c.valid[i] = true
	c.dirty[i] = write
	if c.pol == polPLRU {
		c.touchPLRU(set, w)
	}
	return res
}

// evictSlot accounts the displacement of the line in slot i by a miss
// fill, shared by every access path: without a victim buffer a valid
// line leaves the cache (Result eviction, writeback count); with one
// it parks in the buffer and only the buffer's own castout — if the
// insert overflowed — leaves this level.
func (c *Cache) evictSlot(res *Result, i int) {
	if !c.valid[i] {
		return
	}
	tag, dirty := c.tags[i], c.dirty[i]
	if c.victim != nil {
		var overflowed bool
		tag, dirty, overflowed = c.victim.insert(tag, dirty)
		if !overflowed {
			return
		}
	}
	res.Evicted = true
	res.EvictedLine = tag
	if dirty {
		res.EvictedDirty = true
		c.Writebacks++
	}
}

// touchPLRU flips the tree bits on the path to way w to point away
// from it. Nodes are heap-numbered from 1; node i's bit lives at
// position i-1 of c.state[set]; bit 0 sends the victim walk left,
// bit 1 right.
func (c *Cache) touchPLRU(set, w int) {
	bits := c.state[set]
	node, lo, span := 1, 0, c.ways
	for span > 1 {
		half := span >> 1
		if w < lo+half {
			bits |= 1 << (node - 1) // w went left; victim is right
			node = 2 * node
		} else {
			bits &^= 1 << (node - 1) // w went right; victim is left
			node = 2*node + 1
			lo += half
		}
		span = half
	}
	c.state[set] = bits
}

// plruVictim follows the tree bits of set to the pseudo-LRU way.
func (c *Cache) plruVictim(set int) int {
	bits := c.state[set]
	node, lo, span := 1, 0, c.ways
	for span > 1 {
		half := span >> 1
		if bits&(1<<(node-1)) != 0 {
			node = 2*node + 1
			lo += half
		} else {
			node = 2 * node
		}
		span = half
	}
	return lo
}

// nextRand advances the xorshift64 stream behind PolicyRandom. One
// draw per full-set victim choice, nothing else — replays of the same
// reference stream therefore consume identical sequences.
func (c *Cache) nextRand() uint64 {
	x := c.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	c.rng = x
	return x
}

// CheckInvariant verifies the cache's internal consistency under its
// configured policy: no duplicate tags within a set, every tag mapped
// to its own set, plus per-policy structure — LRU keeps valid lines
// packed ahead of invalid slots (installs happen at the MRU end), the
// victim buffer never shadows a resident line, FIFO's round-robin
// pointer and PLRU's tree bits stay in range. Intended for property
// tests; returns an error describing the first violation.
func (c *Cache) CheckInvariant() error {
	sets := len(c.tags) / c.ways
	for s := 0; s < sets; s++ {
		base := s * c.ways
		seen := make(map[uint64]bool, c.ways)
		invalidAt := -1
		for w := 0; w < c.ways; w++ {
			i := base + w
			if !c.valid[i] {
				if invalidAt < 0 {
					invalidAt = w
				}
				continue
			}
			if c.pol == polLRU && invalidAt >= 0 {
				return fmt.Errorf("set %d: valid way %d after invalid way %d breaks LRU packing", s, w, invalidAt)
			}
			if int(c.tags[i]&c.setMask) != s {
				return fmt.Errorf("set %d way %d holds tag %#x mapping to wrong set", s, w, c.tags[i])
			}
			if seen[c.tags[i]] {
				return fmt.Errorf("set %d: duplicate tag %#x", s, c.tags[i])
			}
			seen[c.tags[i]] = true
		}
		switch c.pol {
		case polFIFO:
			if int(c.state[s]) >= c.ways {
				return fmt.Errorf("set %d: fifo pointer %d out of range (%d ways)", s, c.state[s], c.ways)
			}
		case polPLRU:
			if c.ways > 1 && c.state[s]>>(c.ways-1) != 0 {
				return fmt.Errorf("set %d: plru state %#x has bits beyond the %d tree nodes", s, c.state[s], c.ways-1)
			}
		}
	}
	if c.victim != nil {
		if len(c.victim.tags) > c.victim.cap {
			return fmt.Errorf("victim buffer holds %d lines, capacity %d", len(c.victim.tags), c.victim.cap)
		}
		seen := make(map[uint64]bool, len(c.victim.tags))
		for _, ln := range c.victim.tags {
			if seen[ln] {
				return fmt.Errorf("victim buffer: duplicate line %#x", ln)
			}
			seen[ln] = true
			base := int(ln&c.setMask) * c.ways
			for w := 0; w < c.ways; w++ {
				if c.valid[base+w] && c.tags[base+w] == ln {
					return fmt.Errorf("line %#x resident in both set array and victim buffer", ln)
				}
			}
		}
	}
	return nil
}
