package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Differential tests: every policy runs against a trivially-correct
// reference model (the refLRUSet pattern of cache_test.go), over random
// access/write streams and several geometries, comparing every Result
// and the invariant after the run.

// refFIFOSet models FIFO replacement as the literal spec: a queue of
// way indices in installation order; the victim is the front.
type refFIFOSet struct {
	tags  []uint64
	valid []bool
	dirty []bool
	queue []int
}

func newRefFIFOSet(ways int) *refFIFOSet {
	return &refFIFOSet{tags: make([]uint64, ways), valid: make([]bool, ways), dirty: make([]bool, ways)}
}

func (s *refFIFOSet) access(tag uint64, write bool) Result {
	for w := range s.tags {
		if s.valid[w] && s.tags[w] == tag {
			s.dirty[w] = s.dirty[w] || write
			return Result{Hit: true} // hits do not refresh FIFO order
		}
	}
	w := -1
	for j := range s.valid {
		if !s.valid[j] {
			w = j
			break
		}
	}
	res := Result{}
	if w < 0 {
		w = s.queue[0]
		s.queue = s.queue[1:]
		res.Evicted = true
		res.EvictedLine = s.tags[w]
		res.EvictedDirty = s.dirty[w]
	}
	s.queue = append(s.queue, w)
	s.tags[w], s.valid[w], s.dirty[w] = tag, true, write
	return res
}

// refPLRUSet models tree-PLRU with an explicit recursive tree walk
// over heap-numbered node bits (true = victim in the right subtree).
type refPLRUSet struct {
	tags  []uint64
	valid []bool
	dirty []bool
	bits  []bool
}

func newRefPLRUSet(ways int) *refPLRUSet {
	return &refPLRUSet{
		tags: make([]uint64, ways), valid: make([]bool, ways),
		dirty: make([]bool, ways), bits: make([]bool, ways), // heap nodes 1..ways-1
	}
}

func (s *refPLRUSet) victimIn(node, lo, span int) int {
	if span == 1 {
		return lo
	}
	half := span / 2
	if s.bits[node-1] {
		return s.victimIn(2*node+1, lo+half, half)
	}
	return s.victimIn(2*node, lo, half)
}

func (s *refPLRUSet) touch(node, lo, span, w int) {
	if span == 1 {
		return
	}
	half := span / 2
	if w < lo+half {
		s.bits[node-1] = true
		s.touch(2*node, lo, half, w)
	} else {
		s.bits[node-1] = false
		s.touch(2*node+1, lo+half, half, w)
	}
}

func (s *refPLRUSet) access(tag uint64, write bool) Result {
	ways := len(s.tags)
	for w := range s.tags {
		if s.valid[w] && s.tags[w] == tag {
			s.dirty[w] = s.dirty[w] || write
			s.touch(1, 0, ways, w)
			return Result{Hit: true}
		}
	}
	w := -1
	for j := range s.valid {
		if !s.valid[j] {
			w = j
			break
		}
	}
	res := Result{}
	if w < 0 {
		w = s.victimIn(1, 0, ways)
		res.Evicted = true
		res.EvictedLine = s.tags[w]
		res.EvictedDirty = s.dirty[w]
	}
	s.tags[w], s.valid[w], s.dirty[w] = tag, true, write
	s.touch(1, 0, ways, w)
	return res
}

// refXorshift mirrors the PolicyRandom stream so the random reference
// model draws the same victims as the cache under test.
type refXorshift uint64

func (r *refXorshift) next() uint64 {
	x := uint64(*r)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*r = refXorshift(x)
	return x
}

// refRandomCache models the whole cache (the PRNG stream is shared
// across sets, so per-set models cannot reproduce it).
type refRandomCache struct {
	sets []struct {
		tags  []uint64
		valid []bool
		dirty []bool
	}
	ways int
	rng  refXorshift
}

func newRefRandomCache(sets, ways int, seed uint64) *refRandomCache {
	c := &refRandomCache{ways: ways, rng: refXorshift(seed)}
	c.sets = make([]struct {
		tags  []uint64
		valid []bool
		dirty []bool
	}, sets)
	for i := range c.sets {
		c.sets[i].tags = make([]uint64, ways)
		c.sets[i].valid = make([]bool, ways)
		c.sets[i].dirty = make([]bool, ways)
	}
	return c
}

func (c *refRandomCache) access(set int, tag uint64, write bool) Result {
	s := &c.sets[set]
	for w := range s.tags {
		if s.valid[w] && s.tags[w] == tag {
			s.dirty[w] = s.dirty[w] || write
			return Result{Hit: true}
		}
	}
	w := -1
	for j := range s.valid {
		if !s.valid[j] {
			w = j
			break
		}
	}
	res := Result{}
	if w < 0 {
		w = int(c.rng.next() % uint64(c.ways))
		res.Evicted = true
		res.EvictedLine = s.tags[w]
		res.EvictedDirty = s.dirty[w]
	}
	s.tags[w], s.valid[w], s.dirty[w] = tag, true, write
	return res
}

// refVictimCache models PolicyVictim: per-set reference LRU plus one
// shared fully associative LRU victim list of VictimLines entries.
type refVictimCache struct {
	sets   []*refLRUSet
	victim []struct {
		tag   uint64
		dirty bool
	}
	setMask uint64
}

func (c *refVictimCache) access(set int, tag uint64, write bool) Result {
	s := c.sets[set]
	for _, l := range s.lines {
		if l.tag == tag {
			return s.access(tag, write) // plain LRU hit
		}
	}
	// Victim probe.
	for i, v := range c.victim {
		if v.tag != tag {
			continue
		}
		c.victim = append(c.victim[:i], c.victim[i+1:]...)
		inner := s.access(tag, write || v.dirty)
		if inner.Evicted {
			c.victim = append([]struct {
				tag   uint64
				dirty bool
			}{{inner.EvictedLine, inner.EvictedDirty}}, c.victim...)
		}
		return Result{Hit: true}
	}
	inner := s.access(tag, write)
	res := Result{}
	if inner.Evicted {
		if len(c.victim) == VictimLines {
			last := c.victim[len(c.victim)-1]
			c.victim = c.victim[:len(c.victim)-1]
			res.Evicted, res.EvictedLine, res.EvictedDirty = true, last.tag, last.dirty
		}
		c.victim = append([]struct {
			tag   uint64
			dirty bool
		}{{inner.EvictedLine, inner.EvictedDirty}}, c.victim...)
	}
	return res
}

// diffGeometries are the set-array shapes every differential test
// sweeps: 4 sets of 32-byte lines at several associativities.
func diffConfig(ways int, p Policy) Config {
	return Config{Name: "diff", SizeBytes: 32 * 4 * ways, LineBytes: 32, Ways: ways, Policy: p}
}

func TestAccessMatchesReferenceFIFO(t *testing.T) {
	for _, ways := range []int{1, 2, 4, 8} {
		c := New(diffConfig(ways, PolicyFIFO))
		refs := make([]*refFIFOSet, 4)
		for i := range refs {
			refs[i] = newRefFIFOSet(ways)
		}
		rng := rand.New(rand.NewSource(int64(ways)))
		for i := 0; i < 20000; i++ {
			addr := uint64(rng.Intn(64)) * 32
			write := rng.Intn(3) == 0
			got := c.Access(addr, write)
			ln := addr >> 5
			want := refs[ln&3].access(ln, write)
			if got != want {
				t.Fatalf("ways=%d step %d addr %#x write=%v: got %+v want %+v", ways, i, addr, write, got, want)
			}
		}
		if err := c.CheckInvariant(); err != nil {
			t.Fatalf("ways=%d: %v", ways, err)
		}
	}
}

func TestAccessMatchesReferencePLRU(t *testing.T) {
	for _, ways := range []int{1, 2, 4, 8} {
		c := New(diffConfig(ways, PolicyPLRU))
		refs := make([]*refPLRUSet, 4)
		for i := range refs {
			refs[i] = newRefPLRUSet(ways)
		}
		rng := rand.New(rand.NewSource(int64(ways)))
		for i := 0; i < 20000; i++ {
			addr := uint64(rng.Intn(64)) * 32
			write := rng.Intn(3) == 0
			got := c.Access(addr, write)
			ln := addr >> 5
			want := refs[ln&3].access(ln, write)
			if got != want {
				t.Fatalf("ways=%d step %d addr %#x write=%v: got %+v want %+v", ways, i, addr, write, got, want)
			}
		}
		if err := c.CheckInvariant(); err != nil {
			t.Fatalf("ways=%d: %v", ways, err)
		}
	}
}

func TestAccessMatchesReferenceRandom(t *testing.T) {
	for _, seed := range []uint64{0, 1, 0xDEADBEEF} {
		for _, ways := range []int{1, 2, 4} {
			cfg := diffConfig(ways, PolicyRandom)
			cfg.Seed = seed
			c := New(cfg)
			effective := seed
			if effective == 0 {
				effective = defaultSeed
			}
			ref := newRefRandomCache(4, ways, effective)
			rng := rand.New(rand.NewSource(int64(ways)))
			for i := 0; i < 20000; i++ {
				addr := uint64(rng.Intn(64)) * 32
				write := rng.Intn(3) == 0
				got := c.Access(addr, write)
				ln := addr >> 5
				want := ref.access(int(ln&3), ln, write)
				if got != want {
					t.Fatalf("seed=%d ways=%d step %d: got %+v want %+v", seed, ways, i, got, want)
				}
			}
			if err := c.CheckInvariant(); err != nil {
				t.Fatalf("seed=%d ways=%d: %v", seed, ways, err)
			}
		}
	}
}

func TestAccessMatchesReferenceVictim(t *testing.T) {
	for _, ways := range []int{1, 2, 4} {
		c := New(diffConfig(ways, PolicyVictim))
		ref := &refVictimCache{sets: make([]*refLRUSet, 4), setMask: 3}
		for i := range ref.sets {
			ref.sets[i] = &refLRUSet{ways: ways}
		}
		rng := rand.New(rand.NewSource(int64(ways)))
		for i := 0; i < 20000; i++ {
			addr := uint64(rng.Intn(64)) * 32
			write := rng.Intn(3) == 0
			got := c.Access(addr, write)
			ln := addr >> 5
			want := ref.access(int(ln&3), ln, write)
			if got != want {
				t.Fatalf("ways=%d step %d addr %#x write=%v: got %+v want %+v", ways, i, addr, write, got, want)
			}
		}
		if err := c.CheckInvariant(); err != nil {
			t.Fatalf("ways=%d: %v", ways, err)
		}
	}
}

// TestPLRUMatchesLRUTwoWay: for 2-way sets the pseudo-LRU tree IS true
// LRU, so the two policies must agree access for access — a strong
// cross-check between the recency-ordered and fixed-way code paths.
func TestPLRUMatchesLRUTwoWay(t *testing.T) {
	lru := New(diffConfig(2, PolicyLRU))
	plru := New(diffConfig(2, PolicyPLRU))
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 30000; i++ {
		addr := uint64(rng.Intn(64)) * 32
		write := rng.Intn(3) == 0
		a, b := lru.Access(addr, write), plru.Access(addr, write)
		if a != b {
			t.Fatalf("step %d addr %#x: lru %+v plru %+v", i, addr, a, b)
		}
	}
	if lru.Misses != plru.Misses || lru.Writebacks != plru.Writebacks {
		t.Fatalf("counters diverged: lru %d/%d plru %d/%d",
			lru.Misses, lru.Writebacks, plru.Misses, plru.Writebacks)
	}
}

// TestPLRUDivergesFromLRUFourWay pins the classic divergence: after
// touching ways 0,1,2,3,0 of a full 4-way set, true LRU evicts the
// line in way 1 but the PLRU tree points at way 2.
func TestPLRUDivergesFromLRUFourWay(t *testing.T) {
	cfg := Config{Name: "t", SizeBytes: 32 * 4, LineBytes: 32, Ways: 4, Policy: PolicyPLRU}
	c := New(cfg) // one set
	for _, ln := range []uint64{0, 1, 2, 3, 0} {
		c.Access(ln*32, false)
	}
	r := c.Access(4*32, false)
	if !r.Evicted || r.EvictedLine != 2 {
		t.Fatalf("PLRU should evict line 2, got %+v", r)
	}
}

// TestFIFOIgnoresHits pins the defining FIFO property: re-referencing
// the oldest line does not save it.
func TestFIFOIgnoresHits(t *testing.T) {
	cfg := Config{Name: "t", SizeBytes: 32 * 2, LineBytes: 32, Ways: 2, Policy: PolicyFIFO}
	c := New(cfg) // one set, 2 ways
	c.Access(0*32, false)
	c.Access(1*32, false)
	c.Access(0*32, false) // hit; FIFO order unchanged
	r := c.Access(2*32, false)
	if !r.Evicted || r.EvictedLine != 0 {
		t.Fatalf("FIFO should evict line 0 despite its recent hit, got %+v", r)
	}
}

// TestVictimBufferCatchesConflicts: ping-ponging N+1 lines through one
// set thrashes a bare LRU cache but mostly hits the victim buffer.
func TestVictimBufferCatchesConflicts(t *testing.T) {
	base := Config{Name: "t", SizeBytes: 32 * 2, LineBytes: 32, Ways: 2}
	lru := New(base)
	vcfg := base
	vcfg.Policy = PolicyVictim
	vc := New(vcfg)
	// 3 lines over a 2-way single set: LRU misses every access after
	// warmup; the victim buffer holds the displaced third line.
	for i := 0; i < 300; i++ {
		ln := uint64(i % 3)
		lru.Access(ln*32, false)
		vc.Access(ln*32, false)
	}
	if vc.Misses >= lru.Misses {
		t.Fatalf("victim cache did not reduce misses: %d vs %d", vc.Misses, lru.Misses)
	}
	if vc.VictimHits == 0 {
		t.Fatal("no victim hits recorded")
	}
	if vc.Misses+vc.VictimHits+3 < lru.Misses { // sanity: hits moved, not vanished
		t.Fatalf("miss accounting inconsistent: vc %d+%d vs lru %d", vc.Misses, vc.VictimHits, lru.Misses)
	}
}

// TestRandomPolicyDeterminism: same seed, same stream, identical
// counters; different seeds diverge (on a stream long enough to make
// coincidence implausible).
func TestRandomPolicyDeterminism(t *testing.T) {
	run := func(seed uint64) (uint64, uint64) {
		cfg := diffConfig(2, PolicyRandom)
		cfg.Seed = seed
		c := New(cfg)
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < 20000; i++ {
			c.Access(uint64(rng.Intn(4096)), rng.Intn(2) == 0)
		}
		return c.Misses, c.Writebacks
	}
	m1, w1 := run(42)
	m2, w2 := run(42)
	if m1 != m2 || w1 != w2 {
		t.Fatalf("same seed diverged: %d/%d vs %d/%d", m1, w1, m2, w2)
	}
	m3, _ := run(43)
	if m1 == m3 {
		t.Fatalf("different seeds produced identical miss counts (%d) — stream likely ignored", m1)
	}
}

// TestResetRewindsPolicyState: a reset cache must replay a stream
// exactly as a fresh one, for every policy.
func TestResetRewindsPolicyState(t *testing.T) {
	for _, p := range Policies() {
		c := New(diffConfig(4, p))
		stream := func(c *Cache) (uint64, uint64, uint64) {
			rng := rand.New(rand.NewSource(3))
			for i := 0; i < 5000; i++ {
				c.Access(uint64(rng.Intn(4096)), rng.Intn(2) == 0)
			}
			return c.Misses, c.Writebacks, c.VictimHits
		}
		m1, w1, v1 := stream(c)
		c.Reset()
		m2, w2, v2 := stream(c)
		if m1 != m2 || w1 != w2 || v1 != v2 {
			t.Fatalf("policy %s: reset diverged: %d/%d/%d vs %d/%d/%d", p, m1, w1, v1, m2, w2, v2)
		}
	}
}

// TestQuickPolicyInvariants runs the per-policy invariant checker over
// random streams for every policy and several associativities.
func TestQuickPolicyInvariants(t *testing.T) {
	for _, p := range Policies() {
		p := p
		f := func(seed int64, n uint16) bool {
			rng := rand.New(rand.NewSource(seed))
			c := New(Config{Name: "q", SizeBytes: 1024, LineBytes: 32, Ways: 4, Policy: p})
			for i := 0; i < int(n)%2000; i++ {
				c.Access(uint64(rng.Intn(8192)), rng.Intn(2) == 0)
			}
			return c.CheckInvariant() == nil &&
				c.Misses <= c.Accesses && c.Writebacks <= c.Misses
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
			t.Fatalf("policy %s: %v", p, err)
		}
	}
}

// TestPolicyValidation: unknown names and impossible PLRU geometries
// are errors from TryNew — the ingress constructor — never panics.
func TestPolicyValidation(t *testing.T) {
	if _, err := TryNew(Config{Name: "bad", SizeBytes: 256, LineBytes: 32, Ways: 2, Policy: "mru"}); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := TryNew(Config{Name: "bad", SizeBytes: 96 << 5, LineBytes: 32, Ways: 3, Policy: PolicyPLRU}); err == nil {
		t.Error("plru with non-power-of-two ways accepted")
	}
	for _, p := range Policies() {
		if _, err := TryNew(diffConfig(2, p)); err != nil {
			t.Errorf("policy %s rejected: %v", p, err)
		}
	}
	if _, err := ParsePolicy(""); err != nil {
		t.Errorf("empty policy should parse as LRU: %v", err)
	}
	if p, _ := ParsePolicy("plru"); p != PolicyPLRU {
		t.Errorf("ParsePolicy(plru) = %q", p)
	}
	if PolicyVictim.ForL2() != PolicyLRU || PolicyPLRU.ForL2() != PolicyPLRU {
		t.Error("ForL2 mapping wrong")
	}
}
