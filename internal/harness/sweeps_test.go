package harness

import (
	"strings"
	"testing"
)

func TestRatioSweepMonotone(t *testing.T) {
	wl := Workload{W: 160, H: 128, Frames: 5}
	// This reduced frame fits the 1MB L2 better than the paper-sized
	// runs, so push the sweep further than the default factors to reach
	// the crossover.
	points, err := RunRatioSweep(wl, []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 10 {
		t.Fatalf("want 10 factors, got %d", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].DecodeDRAM < points[i-1].DecodeDRAM {
			t.Errorf("decode DRAM fraction not monotone at factor %g", points[i].Factor)
		}
		if points[i].DecodeSeconds < points[i-1].DecodeSeconds {
			t.Errorf("decode time not monotone at factor %g", points[i].Factor)
		}
	}
	// At baseline the workload is NOT memory bound (the paper's claim)…
	if points[0].DecodeDRAM > 0.2 {
		t.Errorf("baseline decode already memory bound: %.1f%%", points[0].DecodeDRAM*100)
	}
	// …but at some large enough ratio it must become so (the future-work
	// question has an answer).
	cross := MemoryBoundCrossover(points)
	if cross == 0 {
		t.Error("decode never became memory bound within a 64x latency sweep")
	}
	series := RatioSweepSeries(points)
	if len(series) != 2 || len(series[0].X) != len(points) {
		t.Error("sweep series malformed")
	}
}

func TestSearchAblation(t *testing.T) {
	wl := Workload{W: 160, H: 128, Frames: 4}
	results, err := RunSearchAblation(wl)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("want 2 configs, got %d", len(results))
	}
	full, dia := results[0], results[1]
	// Diamond search issues far fewer references than exhaustive search.
	if dia.Encode.Raw.References() >= full.Encode.Raw.References() {
		t.Errorf("diamond (%d refs) not cheaper than full (%d refs)",
			dia.Encode.Raw.References(), full.Encode.Raw.References())
	}
	// Both must produce working bitstreams of the same order of size.
	if dia.Bytes == 0 || full.Bytes == 0 {
		t.Error("empty bitstreams")
	}
	out := FormatAblation("search", results)
	if !strings.Contains(out, "search=full") || !strings.Contains(out, "search=diamond") {
		t.Errorf("format missing configs:\n%s", out)
	}
}

func TestPrefetchAblation(t *testing.T) {
	wl := Workload{W: 160, H: 128, Frames: 4}
	results, err := RunPrefetchAblation(wl, []int{0, 32})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Encode.Raw.Prefetches != 0 {
		t.Error("interval 0 still prefetched")
	}
	if results[1].Encode.Raw.Prefetches == 0 {
		t.Error("interval 32 issued no prefetches")
	}
	// The paper's point: most conservative prefetches hit L1 (wasted).
	r := results[1].Encode.Raw
	if r.PrefetchL1Hits*2 < r.Prefetches {
		t.Errorf("only %d of %d prefetches hit L1; expected the majority",
			r.PrefetchL1Hits, r.Prefetches)
	}
}

func TestStagingAblation(t *testing.T) {
	wl := Workload{W: 160, H: 128, Frames: 4}
	results, err := RunStagingAblation(wl)
	if err != nil {
		t.Fatal(err)
	}
	on, off := results[0], results[1]
	// Staging adds L2-level traffic: disabling it must reduce L2 misses.
	if off.Encode.Raw.L2Misses >= on.Encode.Raw.L2Misses {
		t.Errorf("staging off (%d L2 misses) not below staging on (%d)",
			off.Encode.Raw.L2Misses, on.Encode.Raw.L2Misses)
	}
}

func TestColoringAblation(t *testing.T) {
	wl := Workload{W: 160, H: 128, Frames: 4, Objects: 2}
	results, err := RunColoringAblation(wl)
	if err != nil {
		t.Fatal(err)
	}
	on, off := results[0], results[1]
	// Page-aligned (uncoloured) allocation thrashes the 2-way L1 in the
	// masked SAD kernels: the miss rate must degrade dramatically.
	if off.Encode.L1MissRate < on.Encode.L1MissRate*3 {
		t.Errorf("colouring off (%.3f%%) should thrash vs on (%.3f%%)",
			off.Encode.L1MissRate*100, on.Encode.L1MissRate*100)
	}
}
