package harness

import (
	"fmt"

	"repro/internal/perf"
)

// Resolutions used by the paper's tables: PAL 720×576 and a 1024×768
// size between NTSC and HDTV.
var TableResolutions = [][2]int{{720, 576}, {1024, 768}}

// TableSpec identifies one of the paper's measurement tables.
type TableSpec struct {
	Num     int
	Title   string
	Encode  bool
	Objects int
	Layers  int
}

// TableSpecs enumerates Tables 2–7 in paper order.
func TableSpecs() []TableSpec {
	return []TableSpec{
		{2, "Video Encoding: One Visual Object, One Layer", true, 1, 1},
		{3, "Video Decoding: One Visual Object, One Layer", false, 1, 1},
		{4, "Video Encoding: Three Visual Objects, One Layer Each", true, 3, 1},
		{5, "Video Decoding: Three Visual Objects, One Layer Each", false, 3, 1},
		{6, "Video Encoding: Three Visual Objects, Two Layers Each", true, 3, 2},
		{7, "Video Decoding: Three Visual Objects, Two Layers Each", false, 3, 2},
	}
}

// TableSpecByNum returns the spec for table n (2..7).
func TableSpecByNum(n int) (TableSpec, error) {
	for _, s := range TableSpecs() {
		if s.Num == n {
			return s, nil
		}
	}
	return TableSpec{}, fmt.Errorf("harness: no table %d", n)
}

// RunTable regenerates one of Tables 2–7 with the given sequence length
// (0 = default). It also returns the per-column raw results keyed the
// same way as the columns.
func RunTable(spec TableSpec, frames int) (*perf.Table, []Result, error) {
	machines := perf.PaperMachines()
	tab := perf.NewTable(fmt.Sprintf("Table %d. %s", spec.Num, spec.Title))
	var all []Result
	for _, res := range TableResolutions {
		wl := Workload{W: res[0], H: res[1], Frames: frames,
			Objects: spec.Objects, Layers: spec.Layers}
		encRes, ss, err := RunEncode(machines, wl)
		if err != nil {
			return nil, nil, err
		}
		results := encRes
		if !spec.Encode {
			results, err = RunDecode(machines, wl, ss)
			if err != nil {
				return nil, nil, err
			}
		}
		for i, r := range results {
			tab.AddColumn(fmt.Sprintf("%s %s", wl.Label(), machines[i].Label()), r.Whole)
			all = append(all, r)
		}
	}
	return tab, all, nil
}

// Table1 renders the platform-highlights table (paper Table 1).
func Table1() string {
	out := "Table 1. Common Platform Highlights\n"
	out += fmt.Sprintf("%-18s %s\n", "L1 D-cache", "32 KB, 2-way, 32 B lines")
	out += fmt.Sprintf("%-18s %s\n", "L2 cache", "128 B lines (size varies by machine)")
	out += fmt.Sprintf("%-18s %s\n", "system bus", "64 bits, 133 MHz, split transaction")
	out += fmt.Sprintf("%-18s %s\n", "main memory", "4-way interleaved SDRAM")
	out += fmt.Sprintf("%-18s %s\n", "bus bandwidth", "680 MB/s sustained, 1064 MB/s peak")
	out += fmt.Sprintf("%-18s %s\n", "operating system", "IRIX64 V6.5 (modelled)")
	out += "\nmachines:\n"
	for _, m := range perf.PaperMachines() {
		out += fmt.Sprintf("  %-14s %s, %.0f MHz, L2 %d MB\n",
			m.Name, m.CPU, m.ClockMHz, m.L2.SizeBytes>>20)
	}
	return out
}

// Table8 regenerates the burstiness table: per-phase (VopEncode /
// VopDecode) metrics against whole-program metrics, on the R12K/8MB
// machine, at both table resolutions. Cells are "phase (whole)".
func Table8(frames int) (*perf.Table, error) {
	m := perf.Onyx2R12K8MB()
	tab := &perf.Table{
		Title: "Table 8. Burstiness of VopEncode/VopDecode vs whole program (R12K, 8MB L2C)",
		Cells: map[string][]string{},
		Rows: []string{
			"L1C miss rate",
			"L2C miss rate",
			"L1-L2 b/w (MB/s)",
			"L2-DRAM b/w (MB/s)",
		},
	}
	for _, res := range TableResolutions {
		wl := Workload{W: res[0], H: res[1], Frames: frames}
		encRes, ss, err := RunEncode([]perf.Machine{m}, wl)
		if err != nil {
			return nil, err
		}
		decRes, err := RunDecode([]perf.Machine{m}, wl, ss)
		if err != nil {
			return nil, err
		}
		addPhaseColumn(tab, fmt.Sprintf("VopEncode %s", wl.Label()), encRes[0], "VopEncode")
		addPhaseColumn(tab, fmt.Sprintf("VopDecode %s", wl.Label()), decRes[0], "VopDecode")
	}
	return tab, nil
}

func addPhaseColumn(tab *perf.Table, label string, r Result, phase string) {
	ph, ok := r.Phases[phase]
	if !ok {
		ph = r.Whole
	}
	cells := map[string]string{}
	for _, row := range tab.Rows {
		cells[row] = fmt.Sprintf("%s (%s)", ph.RowValue(row), r.Whole.RowValue(row))
	}
	tab.AddCustomColumn(label, cells)
}
