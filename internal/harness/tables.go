package harness

import (
	"context"
	"fmt"

	"repro/internal/farm"
	"repro/internal/perf"
)

// Resolutions used by the paper's tables: PAL 720×576 and a 1024×768
// size between NTSC and HDTV.
var TableResolutions = [][2]int{{720, 576}, {1024, 768}}

// TableSpec identifies one of the paper's measurement tables.
type TableSpec struct {
	Num     int
	Title   string
	Encode  bool
	Objects int
	Layers  int
}

// TableSpecs enumerates Tables 2–7 in paper order.
func TableSpecs() []TableSpec {
	return []TableSpec{
		{2, "Video Encoding: One Visual Object, One Layer", true, 1, 1},
		{3, "Video Decoding: One Visual Object, One Layer", false, 1, 1},
		{4, "Video Encoding: Three Visual Objects, One Layer Each", true, 3, 1},
		{5, "Video Decoding: Three Visual Objects, One Layer Each", false, 3, 1},
		{6, "Video Encoding: Three Visual Objects, Two Layers Each", true, 3, 2},
		{7, "Video Decoding: Three Visual Objects, Two Layers Each", false, 3, 2},
	}
}

// TableSpecByNum returns the spec for table n (2..7).
func TableSpecByNum(n int) (TableSpec, error) {
	for _, s := range TableSpecs() {
		if s.Num == n {
			return s, nil
		}
	}
	return TableSpec{}, fmt.Errorf("harness: no table %d", n)
}

// runTableCell runs the simulation behind one resolution of one table:
// an encode on all machines, followed by a decode for decode tables.
// It is the farm job body for all table generation.
func runTableCell(env farm.Env, spec TableSpec, res [2]int, frames int) ([]Result, error) {
	machines := perf.PaperMachines()
	wl := Workload{W: res[0], H: res[1], Frames: frames,
		Objects: spec.Objects, Layers: spec.Layers}
	encRes, ss, err := RunEncodeIn(env.Space, machines, wl)
	if err != nil {
		return nil, err
	}
	if spec.Encode {
		return encRes, nil
	}
	return RunDecode(machines, wl, ss)
}

// assembleTable lays per-resolution results into the paper's column
// order (resolution outer, machine inner) — identical to what a serial
// loop produces, whatever order the cells were computed in.
func assembleTable(spec TableSpec, cells [][]Result) (*perf.Table, []Result) {
	machines := perf.PaperMachines()
	tab := perf.NewTable(fmt.Sprintf("Table %d. %s", spec.Num, spec.Title))
	var all []Result
	for ri, res := range TableResolutions {
		wl := Workload{W: res[0], H: res[1]}
		for i, r := range cells[ri] {
			tab.AddColumn(fmt.Sprintf("%s %s", wl.Label(), machines[i].Label()), r.Whole)
			all = append(all, r)
		}
	}
	return tab, all
}

// RunTable regenerates one of Tables 2–7 on the default pool; see
// RunTablePool.
func RunTable(spec TableSpec, frames int) (*perf.Table, []Result, error) {
	return RunTablePool(context.Background(), nil, spec, frames)
}

// RunTablePool regenerates one of Tables 2–7 with the given sequence
// length (0 = default), fanning the per-resolution simulations out on
// the pool. It also returns the per-column raw results keyed the same
// way as the columns.
func RunTablePool(ctx context.Context, p *farm.Pool, spec TableSpec, frames int) (*perf.Table, []Result, error) {
	jobs := make([]farm.Job[[]Result], len(TableResolutions))
	for i, res := range TableResolutions {
		res := res
		jobs[i] = farm.Job[[]Result]{
			Label: fmt.Sprintf("table%d/%dx%d", spec.Num, res[0], res[1]),
			Run: func(ctx context.Context, env farm.Env) ([]Result, error) {
				return runTableCell(env, spec, res, frames)
			},
		}
	}
	cells, err := farm.Run(ctx, p, jobs)
	if err != nil {
		return nil, nil, err
	}
	tab, all := assembleTable(spec, cells)
	return tab, all, nil
}

// RunTables regenerates several of Tables 2–7 in one batch, fanning
// every (table, resolution) simulation out on the pool — the
// multi-workload generation path behind `mp4study -all`. Tables return
// in spec order.
func RunTables(ctx context.Context, p *farm.Pool, specs []TableSpec, frames int) ([]*perf.Table, error) {
	nRes := len(TableResolutions)
	jobs := make([]farm.Job[[]Result], 0, len(specs)*nRes)
	for _, spec := range specs {
		spec := spec
		for _, res := range TableResolutions {
			res := res
			jobs = append(jobs, farm.Job[[]Result]{
				Label: fmt.Sprintf("table%d/%dx%d", spec.Num, res[0], res[1]),
				Run: func(ctx context.Context, env farm.Env) ([]Result, error) {
					return runTableCell(env, spec, res, frames)
				},
			})
		}
	}
	cells, err := farm.Run(ctx, p, jobs)
	if err != nil {
		return nil, err
	}
	out := make([]*perf.Table, len(specs))
	for si, spec := range specs {
		tab, _ := assembleTable(spec, cells[si*nRes:(si+1)*nRes])
		out[si] = tab
	}
	return out, nil
}

// Table1 renders the platform-highlights table (paper Table 1).
func Table1() string {
	out := "Table 1. Common Platform Highlights\n"
	out += fmt.Sprintf("%-18s %s\n", "L1 D-cache", "32 KB, 2-way, 32 B lines")
	out += fmt.Sprintf("%-18s %s\n", "L2 cache", "128 B lines (size varies by machine)")
	out += fmt.Sprintf("%-18s %s\n", "system bus", "64 bits, 133 MHz, split transaction")
	out += fmt.Sprintf("%-18s %s\n", "main memory", "4-way interleaved SDRAM")
	out += fmt.Sprintf("%-18s %s\n", "bus bandwidth", "680 MB/s sustained, 1064 MB/s peak")
	out += fmt.Sprintf("%-18s %s\n", "operating system", "IRIX64 V6.5 (modelled)")
	out += "\nmachines:\n"
	for _, m := range perf.PaperMachines() {
		out += fmt.Sprintf("  %-14s %s, %.0f MHz, L2 %d MB\n",
			m.Name, m.CPU, m.ClockMHz, m.L2.SizeBytes>>20)
	}
	return out
}

// Table8 regenerates the burstiness table on the default pool; see
// Table8Pool.
func Table8(frames int) (*perf.Table, error) {
	return Table8Pool(context.Background(), nil, frames)
}

// table8Cell is the encode+decode measurement of one resolution.
type table8Cell struct {
	enc, dec Result
}

// Table8Pool regenerates the burstiness table: per-phase (VopEncode /
// VopDecode) metrics against whole-program metrics, on the R12K/8MB
// machine, at both table resolutions. Cells are "phase (whole)". The
// per-resolution runs fan out on the pool.
func Table8Pool(ctx context.Context, p *farm.Pool, frames int) (*perf.Table, error) {
	m := perf.Onyx2R12K8MB()
	cells, err := farm.MapLabeled(ctx, p, TableResolutions,
		func(i int, res [2]int) string { return fmt.Sprintf("table8/%dx%d", res[0], res[1]) },
		func(ctx context.Context, env farm.Env, res [2]int) (table8Cell, error) {
			wl := Workload{W: res[0], H: res[1], Frames: frames}
			encRes, ss, err := RunEncodeIn(env.Space, []perf.Machine{m}, wl)
			if err != nil {
				return table8Cell{}, err
			}
			decRes, err := RunDecode([]perf.Machine{m}, wl, ss)
			if err != nil {
				return table8Cell{}, err
			}
			return table8Cell{enc: encRes[0], dec: decRes[0]}, nil
		})
	if err != nil {
		return nil, err
	}
	tab := &perf.Table{
		Title: "Table 8. Burstiness of VopEncode/VopDecode vs whole program (R12K, 8MB L2C)",
		Cells: map[string][]string{},
		Rows: []string{
			"L1C miss rate",
			"L2C miss rate",
			"L1-L2 b/w (MB/s)",
			"L2-DRAM b/w (MB/s)",
		},
	}
	for ri, res := range TableResolutions {
		wl := Workload{W: res[0], H: res[1]}
		addPhaseColumn(tab, fmt.Sprintf("VopEncode %s", wl.Label()), cells[ri].enc, "VopEncode")
		addPhaseColumn(tab, fmt.Sprintf("VopDecode %s", wl.Label()), cells[ri].dec, "VopDecode")
	}
	return tab, nil
}

func addPhaseColumn(tab *perf.Table, label string, r Result, phase string) {
	ph, ok := r.Phases[phase]
	if !ok {
		ph = r.Whole
	}
	cells := map[string]string{}
	for _, row := range tab.Rows {
		cells[row] = fmt.Sprintf("%s (%s)", ph.RowValue(row), r.Whole.RowValue(row))
	}
	tab.AddCustomColumn(label, cells)
}
