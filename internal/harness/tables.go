package harness

import (
	"context"
	"fmt"

	"repro/internal/simmem"

	"repro/internal/farm"
	"repro/internal/perf"
)

// Resolutions used by the paper's tables: PAL 720×576 and a 1024×768
// size between NTSC and HDTV.
var TableResolutions = [][2]int{{720, 576}, {1024, 768}}

// TableSpec identifies one of the paper's measurement tables.
type TableSpec struct {
	Num     int
	Title   string
	Encode  bool
	Objects int
	Layers  int
}

// TableSpecs enumerates Tables 2–7 in paper order.
func TableSpecs() []TableSpec {
	return []TableSpec{
		{2, "Video Encoding: One Visual Object, One Layer", true, 1, 1},
		{3, "Video Decoding: One Visual Object, One Layer", false, 1, 1},
		{4, "Video Encoding: Three Visual Objects, One Layer Each", true, 3, 1},
		{5, "Video Decoding: Three Visual Objects, One Layer Each", false, 3, 1},
		{6, "Video Encoding: Three Visual Objects, Two Layers Each", true, 3, 2},
		{7, "Video Decoding: Three Visual Objects, Two Layers Each", false, 3, 2},
	}
}

// TableSpecByNum returns the spec for table n (2..7).
func TableSpecByNum(n int) (TableSpec, error) {
	for _, s := range TableSpecs() {
		if s.Num == n {
			return s, nil
		}
	}
	return TableSpec{}, fmt.Errorf("harness: no table %d", n)
}

// runTableCell runs the simulation behind one resolution of one table.
// Encode tables measure the encode on all machines; decode tables
// encode untraced (only the coded stream matters) and measure the
// decode. It is the farm job body for single-table generation.
func runTableCell(ctx context.Context, env farm.Env, spec TableSpec, res [2]int, frames int) ([]Result, error) {
	machines := perf.PaperMachines()
	wl := Workload{W: res[0], H: res[1], Frames: frames,
		Objects: spec.Objects, Layers: spec.Layers}
	if spec.Encode {
		encRes, _, err := RunEncodeCtx(ctx, env.Space, machines, wl)
		return encRes, err
	}
	_, ss, err := RunEncodeCtx(ctx, env.Space, nil, wl)
	if err != nil {
		return nil, err
	}
	return RunDecodeCtx(ctx, simmem.NewSpace(0), machines, wl, ss)
}

// assembleTable lays per-resolution results into the paper's column
// order (resolution outer, machine inner) — identical to what a serial
// loop produces, whatever order the cells were computed in.
func assembleTable(spec TableSpec, cells [][]Result) (*perf.Table, []Result) {
	machines := perf.PaperMachines()
	tab := perf.NewTable(fmt.Sprintf("Table %d. %s", spec.Num, spec.Title))
	var all []Result
	for ri, res := range TableResolutions {
		wl := Workload{W: res[0], H: res[1]}
		for i, r := range cells[ri] {
			tab.AddColumn(fmt.Sprintf("%s %s", wl.Label(), machines[i].Label()), r.Whole)
			all = append(all, r)
		}
	}
	return tab, all
}

// RunTable regenerates one of Tables 2–7 on the default pool; see
// RunTablePool.
func RunTable(spec TableSpec, frames int) (*perf.Table, []Result, error) {
	return RunTablePool(context.Background(), nil, spec, frames)
}

// RunTablePool regenerates one of Tables 2–7 with the given sequence
// length (0 = default), fanning the per-resolution simulations out on
// the pool. It also returns the per-column raw results keyed the same
// way as the columns.
func RunTablePool(ctx context.Context, p *farm.Pool, spec TableSpec, frames int) (*perf.Table, []Result, error) {
	jobs := make([]farm.Job[[]Result], len(TableResolutions))
	for i, res := range TableResolutions {
		res := res
		jobs[i] = farm.Job[[]Result]{
			Label: fmt.Sprintf("table%d/%dx%d", spec.Num, res[0], res[1]),
			Run: func(ctx context.Context, env farm.Env) ([]Result, error) {
				return runTableCell(ctx, env, spec, res, frames)
			},
		}
	}
	cells, err := farm.Run(ctx, p, jobs)
	if err != nil {
		return nil, nil, err
	}
	tab, all := assembleTable(spec, cells)
	return tab, all, nil
}

// RunTables regenerates several of Tables 2–7 in one batch — the
// multi-workload generation path behind `mp4study -all`. Table pairs
// sharing a workload (2/3, 4/5, 6/7 are the encode/decode views of the
// same configuration) share one farm job per resolution: the workload
// is encoded once, its encode measured if an encode table wants it and
// its stream decoded-and-measured if a decode table does. That turns
// O(tables × resolutions) codec runs into O(workloads), with every
// machine served by capture replay inside RunEncodeIn/RunDecodeIn.
// Tables return in spec order, byte-identical to RunTablePool per spec.
func RunTables(ctx context.Context, p *farm.Pool, specs []TableSpec, frames int) ([]*perf.Table, error) {
	type group struct{ objects, layers int }
	type need struct{ enc, dec bool }
	needs := map[group]*need{}
	var order []group
	for _, spec := range specs {
		g := group{spec.Objects, spec.Layers}
		n, ok := needs[g]
		if !ok {
			n = &need{}
			needs[g] = n
			order = append(order, g)
		}
		if spec.Encode {
			n.enc = true
		} else {
			n.dec = true
		}
	}

	type cellKey struct {
		g   group
		res [2]int
	}
	type cellOut struct{ enc, dec []Result }
	var keys []cellKey
	for _, g := range order {
		for _, res := range TableResolutions {
			keys = append(keys, cellKey{g: g, res: res})
		}
	}
	cells, err := farm.MapLabeled(ctx, p, keys,
		func(i int, k cellKey) string {
			return fmt.Sprintf("tables/%dobj%dlay/%dx%d", k.g.objects, k.g.layers, k.res[0], k.res[1])
		},
		func(ctx context.Context, env farm.Env, k cellKey) (cellOut, error) {
			machines := perf.PaperMachines()
			wl := Workload{W: k.res[0], H: k.res[1], Frames: frames,
				Objects: k.g.objects, Layers: k.g.layers}
			n := needs[k.g]
			var out cellOut
			var encMachines []perf.Machine
			if n.enc {
				encMachines = machines
			}
			encRes, ss, err := RunEncodeCtx(ctx, env.Space, encMachines, wl)
			if err != nil {
				return cellOut{}, err
			}
			out.enc = encRes
			if n.dec {
				if out.dec, err = RunDecodeCtx(ctx, simmem.NewSpace(0), machines, wl, ss); err != nil {
					return cellOut{}, err
				}
			}
			return out, nil
		})
	if err != nil {
		return nil, err
	}
	byKey := map[cellKey]cellOut{}
	for i, k := range keys {
		byKey[k] = cells[i]
	}

	out := make([]*perf.Table, len(specs))
	for si, spec := range specs {
		specCells := make([][]Result, len(TableResolutions))
		for ri, res := range TableResolutions {
			c := byKey[cellKey{g: group{spec.Objects, spec.Layers}, res: res}]
			if spec.Encode {
				specCells[ri] = c.enc
			} else {
				specCells[ri] = c.dec
			}
		}
		tab, _ := assembleTable(spec, specCells)
		out[si] = tab
	}
	return out, nil
}

// Table1 renders the platform-highlights table (paper Table 1).
func Table1() string {
	out := "Table 1. Common Platform Highlights\n"
	out += fmt.Sprintf("%-18s %s\n", "L1 D-cache", "32 KB, 2-way, 32 B lines")
	out += fmt.Sprintf("%-18s %s\n", "L2 cache", "128 B lines (size varies by machine)")
	out += fmt.Sprintf("%-18s %s\n", "system bus", "64 bits, 133 MHz, split transaction")
	out += fmt.Sprintf("%-18s %s\n", "main memory", "4-way interleaved SDRAM")
	out += fmt.Sprintf("%-18s %s\n", "bus bandwidth", "680 MB/s sustained, 1064 MB/s peak")
	out += fmt.Sprintf("%-18s %s\n", "operating system", "IRIX64 V6.5 (modelled)")
	out += "\nmachines:\n"
	for _, m := range perf.PaperMachines() {
		out += fmt.Sprintf("  %-14s %s, %.0f MHz, L2 %d MB\n",
			m.Name, m.CPU, m.ClockMHz, m.L2.SizeBytes>>20)
	}
	return out
}

// Table8 regenerates the burstiness table on the default pool; see
// Table8Pool.
func Table8(frames int) (*perf.Table, error) {
	return Table8Pool(context.Background(), nil, frames)
}

// table8Cell is the encode+decode measurement of one resolution.
type table8Cell struct {
	enc, dec Result
}

// Table8Pool regenerates the burstiness table: per-phase (VopEncode /
// VopDecode) metrics against whole-program metrics, on the R12K/8MB
// machine, at both table resolutions. Cells are "phase (whole)". The
// per-resolution runs fan out on the pool.
func Table8Pool(ctx context.Context, p *farm.Pool, frames int) (*perf.Table, error) {
	m := perf.Onyx2R12K8MB()
	cells, err := farm.MapLabeled(ctx, p, TableResolutions,
		func(i int, res [2]int) string { return fmt.Sprintf("table8/%dx%d", res[0], res[1]) },
		func(ctx context.Context, env farm.Env, res [2]int) (table8Cell, error) {
			wl := Workload{W: res[0], H: res[1], Frames: frames}
			encRes, ss, err := RunEncodeCtx(ctx, env.Space, []perf.Machine{m}, wl)
			if err != nil {
				return table8Cell{}, err
			}
			decRes, err := RunDecodeCtx(ctx, simmem.NewSpace(0), []perf.Machine{m}, wl, ss)
			if err != nil {
				return table8Cell{}, err
			}
			return table8Cell{enc: encRes[0], dec: decRes[0]}, nil
		})
	if err != nil {
		return nil, err
	}
	tab := &perf.Table{
		Title: "Table 8. Burstiness of VopEncode/VopDecode vs whole program (R12K, 8MB L2C)",
		Cells: map[string][]string{},
		Rows: []string{
			"L1C miss rate",
			"L2C miss rate",
			"L1-L2 b/w (MB/s)",
			"L2-DRAM b/w (MB/s)",
		},
	}
	for ri, res := range TableResolutions {
		wl := Workload{W: res[0], H: res[1]}
		addPhaseColumn(tab, fmt.Sprintf("VopEncode %s", wl.Label()), cells[ri].enc, "VopEncode")
		addPhaseColumn(tab, fmt.Sprintf("VopDecode %s", wl.Label()), cells[ri].dec, "VopDecode")
	}
	return tab, nil
}

func addPhaseColumn(tab *perf.Table, label string, r Result, phase string) {
	ph, ok := r.Phases[phase]
	if !ok {
		ph = r.Whole
	}
	cells := map[string]string{}
	for _, row := range tab.Rows {
		cells[row] = fmt.Sprintf("%s (%s)", ph.RowValue(row), r.Whole.RowValue(row))
	}
	tab.AddCustomColumn(label, cells)
}
