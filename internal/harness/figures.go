package harness

import (
	"context"
	"fmt"

	"repro/internal/farm"
	"repro/internal/perf"
	"repro/internal/simmem"
)

// Figure2Sizes is the growing-image-size sweep (the paper reports
// 720×576 through 2048×1024; we add smaller points to show the trend).
var Figure2Sizes = [][2]int{{512, 384}, {720, 576}, {1024, 768}, {1440, 960}, {2048, 1024}}

// Figure2 regenerates the growing-image-size figure on the default
// pool; see Figure2Pool.
func Figure2(frames int) ([]perf.Series, error) {
	return Figure2Pool(context.Background(), nil, frames)
}

// Figure2Pool regenerates "Memory Statistics for Growing Image Size
// (Decoding, 1MB L2C)": L2 miss rate, L2–DRAM bandwidth and DRAM stall
// time as functions of frame size, all of which the paper shows flat or
// falling. Every size is one pool job producing a single-point series
// chunk; perf.MergeSeries reassembles the chunks in size order, so the
// result is byte-identical to a serial sweep.
func Figure2Pool(ctx context.Context, p *farm.Pool, frames int) ([]perf.Series, error) {
	return Figure2Sweep(ctx, p, frames, Figure2Sizes)
}

// Figure2Sweep is Figure2Pool over a caller-chosen size list (the
// determinism tests sweep small sizes; the paper figure uses
// Figure2Sizes).
func Figure2Sweep(ctx context.Context, p *farm.Pool, frames int, sizes [][2]int) ([]perf.Series, error) {
	m := perf.O2R12K1MB()
	chunks, err := farm.MapLabeled(ctx, p, sizes,
		func(i int, sz [2]int) string { return fmt.Sprintf("figure2/%dx%d", sz[0], sz[1]) },
		func(ctx context.Context, env farm.Env, sz [2]int) ([]perf.Series, error) {
			wl := Workload{W: sz[0], H: sz[1], Frames: frames}
			_, ss, err := RunEncodeCtx(ctx, env.Space, []perf.Machine{m}, wl)
			if err != nil {
				return nil, err
			}
			res, err := RunDecodeCtx(ctx, simmem.NewSpace(0), []perf.Machine{m}, wl, ss)
			if err != nil {
				return nil, err
			}
			missRate := perf.Series{Label: "Figure 2a: L2C miss rate (decode, 1MB L2C)", YUnit: "%"}
			bw := perf.Series{Label: "Figure 2b: L2-DRAM bandwidth (decode, 1MB L2C)", YUnit: "MB/s"}
			stall := perf.Series{Label: "Figure 2c: DRAM stall time (decode, 1MB L2C)", YUnit: "%"}
			x := wl.Label()
			missRate.Append(x, res[0].Whole.L2MissRate*100)
			bw.Append(x, res[0].Whole.L2DRAMMBps)
			stall.Append(x, res[0].Whole.DRAMTimeFrac*100)
			return []perf.Series{missRate, bw, stall}, nil
		})
	if err != nil {
		return nil, err
	}
	return perf.MergeSeries(chunks...)
}

// ObjectSweepPoint is one bar of Figures 3/4: a (VO count, layer count)
// configuration measured for encode and decode at one resolution.
type ObjectSweepPoint struct {
	Label      string
	Objects    int
	Layers     int
	Resolution string
	EncodeL1   float64 // percent
	DecodeL1   float64
	EncodeL2   float64
	DecodeL2   float64
}

// ObjectSweepConfigs are the paper's three bar groups.
var ObjectSweepConfigs = []struct {
	Objects, Layers int
	Label           string
}{
	{1, 1, "1 VO, 1 layer"},
	{3, 1, "3 VOs, 1 layer each"},
	{3, 2, "3 VOs, 2 layers each"},
}

// RunObjectSweep measures the Figures 3/4 sweep on the default pool;
// see RunObjectSweepPool.
func RunObjectSweep(frames int) ([]ObjectSweepPoint, error) {
	return RunObjectSweepPool(context.Background(), nil, frames)
}

// RunObjectSweepPool measures the Figures 3/4 sweep on the R10K/2MB
// machine (the machine the paper plots). Every (resolution, object
// configuration) pair is one pool job; the points return in the paper's
// order (resolution outer, configuration inner).
func RunObjectSweepPool(ctx context.Context, p *farm.Pool, frames int) ([]ObjectSweepPoint, error) {
	m := perf.OnyxR10K2MB()
	type sweepCase struct {
		res [2]int
		cfg struct {
			Objects, Layers int
			Label           string
		}
	}
	var cases []sweepCase
	for _, res := range TableResolutions {
		for _, cfgPt := range ObjectSweepConfigs {
			cases = append(cases, sweepCase{res: res, cfg: cfgPt})
		}
	}
	return farm.Map(ctx, p, cases, func(ctx context.Context, env farm.Env, c sweepCase) (ObjectSweepPoint, error) {
		wl := Workload{W: c.res[0], H: c.res[1], Frames: frames,
			Objects: c.cfg.Objects, Layers: c.cfg.Layers}
		encRes, ss, err := RunEncodeCtx(ctx, env.Space, []perf.Machine{m}, wl)
		if err != nil {
			return ObjectSweepPoint{}, err
		}
		decRes, err := RunDecodeCtx(ctx, simmem.NewSpace(0), []perf.Machine{m}, wl, ss)
		if err != nil {
			return ObjectSweepPoint{}, err
		}
		return ObjectSweepPoint{
			Label:      c.cfg.Label,
			Objects:    c.cfg.Objects,
			Layers:     c.cfg.Layers,
			Resolution: wl.Label(),
			EncodeL1:   encRes[0].Whole.L1MissRate * 100,
			DecodeL1:   decRes[0].Whole.L1MissRate * 100,
			EncodeL2:   encRes[0].Whole.L2MissRate * 100,
			DecodeL2:   decRes[0].Whole.L2MissRate * 100,
		}, nil
	})
}

// Figure3Series converts sweep points into the Figure 3 bar series
// (L1C miss rates for varying numbers of objects and layers).
func Figure3Series(points []ObjectSweepPoint) []perf.Series {
	return sweepSeries(points, "Figure 3: L1C miss rate", func(p ObjectSweepPoint) (float64, float64) {
		return p.EncodeL1, p.DecodeL1
	})
}

// Figure4Series converts sweep points into the Figure 4 bar series
// (L2C miss rates).
func Figure4Series(points []ObjectSweepPoint) []perf.Series {
	return sweepSeries(points, "Figure 4: L2C miss rate", func(p ObjectSweepPoint) (float64, float64) {
		return p.EncodeL2, p.DecodeL2
	})
}

func sweepSeries(points []ObjectSweepPoint, title string, pick func(ObjectSweepPoint) (enc, dec float64)) []perf.Series {
	var out []perf.Series
	byRes := map[string][]ObjectSweepPoint{}
	var resOrder []string
	for _, p := range points {
		if _, ok := byRes[p.Resolution]; !ok {
			resOrder = append(resOrder, p.Resolution)
		}
		byRes[p.Resolution] = append(byRes[p.Resolution], p)
	}
	for _, res := range resOrder {
		s := perf.Series{Label: fmt.Sprintf("%s, %s (R10K 2MB)", title, res), YUnit: "%"}
		for _, p := range byRes[res] {
			e, d := pick(p)
			s.Append("encode "+p.Label, e)
			s.Append("decode "+p.Label, d)
		}
		out = append(out, s)
	}
	return out
}
