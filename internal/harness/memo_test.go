package harness

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/memo"
	"repro/internal/simmem"
)

// TestGeometrySweepMemoized pins the memo acceptance contract: a
// memoized sweep is byte-identical to an unmemoized one, a repeat of
// the same sweep is served entirely from the memo with zero replays,
// and a subset sweep replays only the cells the memo has not seen.
func TestGeometrySweepMemoized(t *testing.T) {
	wl := Workload{W: 96, H: 80, Frames: 2}
	capture, err := RecordEncodeIn(simmem.NewSpace(0), wl)
	if err != nil {
		t.Fatal(err)
	}
	l1s := GeometryL1Configs()[:2]
	sizes := []int{256 << 10, 1 << 20, 4 << 20}
	cells := uint64(len(l1s) * len(sizes))

	baseline, err := RunGeometrySweepFromTrace(context.Background(), nil, capture.Enc, l1s, sizes)
	if err != nil {
		t.Fatal(err)
	}

	mc, err := memo.New(memo.Config{Version: CodeVersion})
	if err != nil {
		t.Fatal(err)
	}
	study := NewStudy(true)
	study.SetMemo(mc)
	ctx := WithStudy(context.Background(), study)

	cold, err := RunGeometrySweepFromTrace(ctx, nil, capture.Enc, l1s, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, baseline) {
		t.Fatal("cold memoized sweep differs from the unmemoized sweep")
	}
	if u := study.Usage(); u.MemoHits != 0 || u.MemoMisses != cells || u.Replays != cells {
		t.Fatalf("cold usage = %+v, want 0 hits / %d misses / %d replays", u, cells, cells)
	}

	study.ResetUsage()
	warm, err := RunGeometrySweepFromTrace(ctx, nil, capture.Enc, l1s, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm, baseline) {
		t.Fatal("warm memoized sweep differs from the unmemoized sweep")
	}
	if u := study.Usage(); u.MemoHits != cells || u.MemoMisses != 0 || u.Replays != 0 {
		t.Fatalf("warm usage = %+v, want %d hits / 0 misses / 0 replays (100%% hit rate)", u, cells)
	}
	// A fully memoized sweep never rebuilds the L1-filtered traces —
	// that is where the saved work actually lives.
	if u := study.Usage(); u.L2Traces != 0 {
		t.Fatalf("warm sweep still filtered %d L1 rows", u.L2Traces)
	}

	// Subset + one unseen size: only the unseen cells replay.
	study.ResetUsage()
	subset := []int{1 << 20, 2 << 20}
	pts, err := RunGeometrySweepFromTrace(ctx, nil, capture.Enc, l1s, subset)
	if err != nil {
		t.Fatal(err)
	}
	u := study.Usage()
	if u.MemoHits != uint64(len(l1s)) || u.MemoMisses != uint64(len(l1s)) || u.Replays != uint64(len(l1s)) {
		t.Fatalf("subset usage = %+v, want %d hits / %d misses / %d replays", u, len(l1s), len(l1s), len(l1s))
	}
	// The hit cells must agree with the baseline points for the same
	// configurations.
	for i := range l1s {
		got := pts[i*len(subset)]
		want := baseline[i*len(sizes)+1] // 1 MB is index 1 of sizes
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("memoized 1MB cell of l1 %d differs:\n got %+v\nwant %+v", i, got, want)
		}
	}

	// A different trace misses everything: content addressing keys the
	// memo, not workload identity.
	study.ResetUsage()
	capture2, err := RecordEncodeIn(simmem.NewSpace(0), Workload{W: 96, H: 80, Frames: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunGeometrySweepFromTrace(ctx, nil, capture2.Enc, l1s, sizes); err != nil {
		t.Fatal(err)
	}
	if u := study.Usage(); u.MemoHits != 0 || u.MemoMisses != cells {
		t.Fatalf("different trace usage = %+v, want all misses", u)
	}
}
