package harness

import (
	"strings"
	"testing"

	"repro/internal/perf"
)

// Tests use reduced frame sizes/counts: every reported metric is a rate
// or ratio, insensitive to scale (asserted by TestRunLengthInvariance).

func testWL(objects, layers int) Workload {
	return Workload{W: 160, H: 128, Frames: 6, Objects: objects, Layers: layers}
}

func TestWorkloadNormalize(t *testing.T) {
	wl := Workload{W: 64, H: 48}.normalize()
	if wl.Frames != DefaultFrames || wl.Objects != 1 || wl.Layers != 1 || wl.QP != 8 || wl.Seed == 0 {
		t.Fatalf("normalize wrong: %+v", wl)
	}
	if wl.Label() != "64x48" {
		t.Fatalf("label %q", wl.Label())
	}
}

func TestRunEncodeProducesSaneMetrics(t *testing.T) {
	machines := perf.PaperMachines()
	res, ss, err := RunEncode(machines, testWL(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 || ss == nil || ss.TotalBytes() == 0 {
		t.Fatal("missing results or stream")
	}
	for _, r := range res {
		m := r.Whole
		if m.L1MissRate <= 0 || m.L1MissRate > 0.05 {
			t.Errorf("%s: implausible L1 miss rate %v", r.Machine.Name, m.L1MissRate)
		}
		if m.Cycles <= 0 || m.Seconds <= 0 {
			t.Errorf("%s: nonpositive time", r.Machine.Name)
		}
		if _, ok := r.Phases["VopEncode"]; !ok {
			t.Errorf("%s: missing VopEncode phase", r.Machine.Name)
		}
	}
	// L1-level counters are machine independent (same geometry), L2
	// differs: the 8MB machine must not miss more than the 1MB machine.
	if res[0].Whole.Raw.L1Misses != res[2].Whole.Raw.L1Misses {
		t.Error("L1 misses differ across machines with identical L1s")
	}
	if res[2].Whole.Raw.L2Misses > res[0].Whole.Raw.L2Misses {
		t.Error("8MB L2 misses more than 1MB L2")
	}
}

func TestRunDecodeProducesSaneMetrics(t *testing.T) {
	machines := perf.PaperMachines()
	wl := testWL(1, 1)
	_, ss, err := RunEncode(machines[:1], wl)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunDecode(machines, wl, ss)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Whole.Raw.References() == 0 {
			t.Fatal("decode produced no references")
		}
		if _, ok := r.Phases["VopDecode"]; !ok {
			t.Errorf("%s: missing VopDecode phase", r.Machine.Name)
		}
	}
}

func TestMultiObjectMultiLayerRuns(t *testing.T) {
	machines := []perf.Machine{perf.OnyxR10K2MB()}
	encRes, decRes, err := EncodeDecode(machines, testWL(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	if encRes[0].Whole.Raw.References() == 0 || decRes[0].Whole.Raw.References() == 0 {
		t.Fatal("empty multi-object run")
	}
}

// TestRunLengthInvariance checks the DESIGN.md claim that the reported
// rates are insensitive to sequence length, justifying short runs.
func TestRunLengthInvariance(t *testing.T) {
	m := []perf.Machine{perf.O2R12K1MB()}
	short := Workload{W: 160, H: 128, Frames: 5}
	long := Workload{W: 160, H: 128, Frames: 10}
	sRes, _, err := RunEncode(m, short)
	if err != nil {
		t.Fatal(err)
	}
	lRes, _, err := RunEncode(m, long)
	if err != nil {
		t.Fatal(err)
	}
	s, l := sRes[0].Whole, lRes[0].Whole
	if !within(s.L1MissRate, l.L1MissRate, 0.5) {
		t.Errorf("L1 miss rate varies with length: %v vs %v", s.L1MissRate, l.L1MissRate)
	}
	if !within(s.DRAMTimeFrac+1e-6, l.DRAMTimeFrac+1e-6, 0.6) {
		t.Errorf("DRAM time varies with length: %v vs %v", s.DRAMTimeFrac, l.DRAMTimeFrac)
	}
}

func within(a, b, relTol float64) bool {
	if a == 0 && b == 0 {
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	max := a
	if b > max {
		max = b
	}
	return d/max <= relTol
}

func TestTableSpecs(t *testing.T) {
	specs := TableSpecs()
	if len(specs) != 6 {
		t.Fatalf("want 6 table specs, got %d", len(specs))
	}
	for n := 2; n <= 7; n++ {
		s, err := TableSpecByNum(n)
		if err != nil || s.Num != n {
			t.Errorf("TableSpecByNum(%d): %+v, %v", n, s, err)
		}
	}
	if _, err := TableSpecByNum(9); err == nil {
		t.Error("table 9 should not exist")
	}
	// Encode/decode pairing and object/layer counts per the paper.
	want := []struct {
		enc      bool
		obj, lay int
	}{
		{true, 1, 1}, {false, 1, 1}, {true, 3, 1}, {false, 3, 1}, {true, 3, 2}, {false, 3, 2},
	}
	for i, s := range specs {
		if s.Encode != want[i].enc || s.Objects != want[i].obj || s.Layers != want[i].lay {
			t.Errorf("spec %d wrong: %+v", s.Num, s)
		}
	}
}

func TestTable1Rendering(t *testing.T) {
	out := Table1()
	for _, want := range []string{"32 KB", "128 B lines", "133 MHz", "SGI O2", "SGI Onyx2 IR", "8 MB"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestSweepSeriesGrouping(t *testing.T) {
	points := []ObjectSweepPoint{
		{Label: "1 VO, 1 layer", Resolution: "a", EncodeL1: 1, DecodeL1: 2, EncodeL2: 3, DecodeL2: 4},
		{Label: "3 VOs, 1 layer each", Resolution: "a", EncodeL1: 5, DecodeL1: 6, EncodeL2: 7, DecodeL2: 8},
		{Label: "1 VO, 1 layer", Resolution: "b", EncodeL1: 9, DecodeL1: 10, EncodeL2: 11, DecodeL2: 12},
	}
	s3 := Figure3Series(points)
	if len(s3) != 2 {
		t.Fatalf("want 2 series (one per resolution), got %d", len(s3))
	}
	if s3[0].Y[0] != 1 || s3[0].Y[1] != 2 || s3[0].Y[2] != 5 {
		t.Fatalf("figure 3 series values wrong: %v", s3[0].Y)
	}
	s4 := Figure4Series(points)
	if s4[1].Y[0] != 11 {
		t.Fatalf("figure 4 series values wrong: %v", s4[1].Y)
	}
}
