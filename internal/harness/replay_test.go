package harness

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/perf"
	"repro/internal/simmem"
)

// liveResults runs the workload on every machine through the legacy
// live path (hierarchies attached to the codec run), one machine at a
// time so no path under test is shared.
func liveResults(t *testing.T, wl Workload, decode bool) []Result {
	t.Helper()
	var out []Result
	for _, m := range perf.PaperMachines() {
		encRes, ss, err := RunEncodeLiveIn(simmem.NewSpace(0), []perf.Machine{m}, wl)
		if err != nil {
			t.Fatal(err)
		}
		if !decode {
			out = append(out, encRes[0])
			continue
		}
		decRes, err := RunDecodeLiveIn(simmem.NewSpace(0), []perf.Machine{m}, wl, ss)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, decRes[0])
	}
	return out
}

// requireIdentical asserts counter-identical results: raw whole-run
// Stats and every per-phase Stats must match exactly.
func requireIdentical(t *testing.T, label string, live, replayed []Result) {
	t.Helper()
	if len(live) != len(replayed) {
		t.Fatalf("%s: %d live vs %d replayed results", label, len(live), len(replayed))
	}
	for i := range live {
		l, r := live[i], replayed[i]
		if l.Whole.Raw != r.Whole.Raw {
			t.Errorf("%s %s: whole-run stats differ\nlive   %+v\nreplay %+v",
				label, l.Machine.Label(), l.Whole.Raw, r.Whole.Raw)
		}
		if len(l.Phases) != len(r.Phases) {
			t.Errorf("%s %s: phase sets differ: %d vs %d", label, l.Machine.Label(), len(l.Phases), len(r.Phases))
		}
		for name, lp := range l.Phases {
			rp, ok := r.Phases[name]
			if !ok {
				t.Errorf("%s %s: phase %s missing after replay", label, l.Machine.Label(), name)
				continue
			}
			if lp.Raw != rp.Raw {
				t.Errorf("%s %s phase %s: stats differ\nlive   %+v\nreplay %+v",
					label, l.Machine.Label(), name, lp.Raw, rp.Raw)
			}
		}
		if l.Bytes != r.Bytes {
			t.Errorf("%s %s: coded bytes differ: %d vs %d", label, l.Machine.Label(), l.Bytes, r.Bytes)
		}
	}
}

// TestReplayGoldenEquivalence is the golden acceptance test: for an
// encode and a decode workload, on all three paper machines, both
// replay strategies (full-trace replay and L1-filtered L2 replay)
// reproduce exactly the Stats of live tracing.
func TestReplayGoldenEquivalence(t *testing.T) {
	machines := perf.PaperMachines()
	for _, wl := range []Workload{
		{W: 160, H: 128, Frames: 6},           // rectangular single-object
		{W: 96, H: 96, Frames: 4, Objects: 2}, // shaped multi-object
	} {
		liveEnc := liveResults(t, wl, false)
		liveDec := liveResults(t, wl, true)

		// Full-trace record + per-machine replay.
		capture, err := RecordEncodeIn(simmem.NewSpace(0), wl)
		if err != nil {
			t.Fatal(err)
		}
		if err := capture.RecordDecodeIn(simmem.NewSpace(0)); err != nil {
			t.Fatal(err)
		}
		var encReplay, decReplay []Result
		for _, m := range machines {
			encReplay = append(encReplay, ReplayOn(m, capture.Enc, capture.SS.TotalBytes()))
			decReplay = append(decReplay, ReplayOn(m, capture.Dec, capture.SS.TotalBytes()))
		}
		requireIdentical(t, "full-trace encode", liveEnc, encReplay)
		requireIdentical(t, "full-trace decode", liveDec, decReplay)

		// L1-filtered path, as used by RunEncodeIn/RunDecodeIn.
		encFilt, ss, err := RunEncodeIn(simmem.NewSpace(0), machines, wl)
		if err != nil {
			t.Fatal(err)
		}
		decFilt, err := RunDecodeIn(simmem.NewSpace(0), machines, wl, ss)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, "filtered encode", liveEnc, encFilt)
		requireIdentical(t, "filtered decode", liveDec, decFilt)

		// The multi-machine live path (simmem.Multi fan-out) must agree
		// with per-machine live runs too — replay disabled explicitly.
		SetReplayEnabled(false)
		encLiveMulti, _, err := RunEncodeIn(simmem.NewSpace(0), machines, wl)
		SetReplayEnabled(true)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, "live multi encode", liveEnc, encLiveMulti)
	}
}

// TestReplayGeometryIndependence: a single capture replayed against a
// geometry must match a live run against that geometry, including
// geometries the trace was not recorded "for" (different L1s).
func TestReplayGeometryIndependence(t *testing.T) {
	wl := Workload{W: 160, H: 128, Frames: 4}
	capture, err := RecordEncodeIn(simmem.NewSpace(0), wl)
	if err != nil {
		t.Fatal(err)
	}
	for _, l1 := range GeometryL1Configs() {
		for _, size := range []int{512 << 10, 2 << 20} {
			m := geometryMachine(l1, size)
			live, _, err := RunEncodeLiveIn(simmem.NewSpace(0), []perf.Machine{m}, wl)
			if err != nil {
				t.Fatal(err)
			}
			got := ReplayOn(m, capture.Enc, capture.SS.TotalBytes())
			if live[0].Whole.Raw != got.Whole.Raw {
				t.Errorf("%s: replayed stats differ\nlive   %+v\nreplay %+v",
					m.Name, live[0].Whole.Raw, got.Whole.Raw)
			}
		}
	}
}

// TestGeometrySweepMatchesLive: the replay-based geometry sweep and the
// re-encode baseline agree point for point.
func TestGeometrySweepMatchesLive(t *testing.T) {
	wl := Workload{W: 96, H: 80, Frames: 4}
	l1s := GeometryL1Configs()[:2]
	l2s := []int{512 << 10, 1 << 20}
	replay, err := RunGeometrySweep(wl, l1s, l2s)
	if err != nil {
		t.Fatal(err)
	}
	live, err := RunGeometrySweepLive(context.Background(), nil, wl, l1s, l2s)
	if err != nil {
		t.Fatal(err)
	}
	if len(replay) != len(live) {
		t.Fatalf("point counts differ: %d vs %d", len(replay), len(live))
	}
	for i := range replay {
		if replay[i].Label != live[i].Label {
			t.Fatalf("point %d: label %q vs %q", i, replay[i].Label, live[i].Label)
		}
		if replay[i].Encode.Raw != live[i].Encode.Raw {
			t.Errorf("%s: stats differ\nlive   %+v\nreplay %+v",
				replay[i].Label, live[i].Encode.Raw, replay[i].Encode.Raw)
		}
	}
	if s := GeometrySweepSeries(replay); len(s) != len(l1s) {
		t.Fatalf("series count %d, want %d", len(s), len(l1s))
	}
	if out := FormatGeometrySweep("sweep", replay); len(out) == 0 {
		t.Fatal("empty sweep rendering")
	}
}

// TestTraceUsageAccounting: captures and replays are visible in the
// usage counters that feed mp4study's trace report.
func TestTraceUsageAccounting(t *testing.T) {
	ResetTraceUsage()
	wl := Workload{W: 96, H: 80, Frames: 2}
	if _, _, err := RunEncode(perf.PaperMachines(), wl); err != nil {
		t.Fatal(err)
	}
	u := TraceUsageSnapshot()
	if u.L2Traces != 1 || u.Replays != 3 || u.L2Events == 0 || u.L2Bytes == 0 {
		t.Fatalf("unexpected usage after filtered encode: %+v", u)
	}
	if _, err := RecordEncodeIn(simmem.NewSpace(0), wl); err != nil {
		t.Fatal(err)
	}
	u = TraceUsageSnapshot()
	if u.Traces != 1 || u.TraceRecords == 0 || u.TraceBytes == 0 {
		t.Fatalf("unexpected usage after full record: %+v", u)
	}
	ResetTraceUsage()
	if u := TraceUsageSnapshot(); !reflect.DeepEqual(u, TraceUsage{}) {
		t.Fatalf("reset left counters: %+v", u)
	}
}

// TestReplayToggle: disabling replay routes multi-machine runs through
// the live path (no captures recorded) and still produces identical
// results.
func TestReplayToggle(t *testing.T) {
	wl := Workload{W: 96, H: 80, Frames: 2}
	on, _, err := RunEncode(perf.PaperMachines(), wl)
	if err != nil {
		t.Fatal(err)
	}
	ResetTraceUsage()
	SetReplayEnabled(false)
	defer SetReplayEnabled(true)
	if ReplayEnabled() {
		t.Fatal("toggle did not stick")
	}
	off, _, err := RunEncode(perf.PaperMachines(), wl)
	if err != nil {
		t.Fatal(err)
	}
	if u := TraceUsageSnapshot(); u.L2Traces != 0 || u.Traces != 0 {
		t.Fatalf("live mode recorded captures: %+v", u)
	}
	requireIdentical(t, "toggle", on, off)
}
