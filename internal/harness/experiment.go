package harness

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/farm"
	"repro/internal/perf"
)

// ExperimentSpec is one schedulable unit of the study: a table, a
// figure, or an extension sweep. Exactly one of Table/Figure/Sweep is
// set. The JSON shape is shared by mp4study's batch manifests and the
// study service's submissions, so a manifest file posts to the service
// unchanged.
//
// The geometry sweep accepts optional axes. They are data, not code —
// manifests and network requests carry them — so Validate builds every
// axis entry through cache.TryNew before any simulation starts.
type ExperimentSpec struct {
	Table  int    `json:"table,omitempty"`
	Figure int    `json:"figure,omitempty"`
	Sweep  string `json:"sweep,omitempty"`

	// Geometry-sweep axes (sweep == "geometry" only). Empty axes use
	// GeometryL1Configs / GeometryL2Sizes.
	L1s  []cache.Config `json:"l1,omitempty"`
	L2KB []int          `json:"l2_kb,omitempty"`
}

// Sweeps lists the valid Sweep values.
var Sweeps = []string{"ratio", "geometry", "search", "prefetch", "staging", "coloring"}

// Label names the experiment for progress reporting and error
// attribution.
func (e ExperimentSpec) Label() string {
	switch {
	case e.Table != 0:
		return fmt.Sprintf("table %d", e.Table)
	case e.Figure != 0:
		return fmt.Sprintf("figure %d", e.Figure)
	default:
		return "sweep " + e.Sweep
	}
}

// GeometryAxes converts the spec's optional axes into the sweep's
// argument shape (nil where defaulted).
func (e ExperimentSpec) GeometryAxes() (l1s []cache.Config, l2Sizes []int) {
	for _, l1 := range e.L1s {
		if l1.Name == "" {
			l1.Name = "L1D"
		}
		l1s = append(l1s, l1)
	}
	for _, kb := range e.L2KB {
		l2Sizes = append(l2Sizes, kb<<10)
	}
	return l1s, l2Sizes
}

// Validate checks the spec without running anything: exactly one
// experiment kind, a known table/figure/sweep, and — because geometry
// axes arrive from manifests and network requests — every axis entry
// must build via cache.TryNew.
func (e ExperimentSpec) Validate() error {
	set := 0
	if e.Table != 0 {
		set++
	}
	if e.Figure != 0 {
		set++
	}
	if e.Sweep != "" {
		set++
	}
	if set != 1 {
		return fmt.Errorf("experiment must set exactly one of table/figure/sweep, has %d", set)
	}
	switch {
	case e.Table != 0:
		if e.Table != 1 && e.Table != 8 {
			if _, err := TableSpecByNum(e.Table); err != nil {
				return err
			}
		}
	case e.Figure != 0:
		if e.Figure < 2 || e.Figure > 4 {
			return fmt.Errorf("no figure %d (the paper's data figures are 2-4)", e.Figure)
		}
	default:
		known := false
		for _, s := range Sweeps {
			if e.Sweep == s {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("unknown sweep %q (have %s)", e.Sweep, strings.Join(Sweeps, ", "))
		}
	}
	if len(e.L1s) > 0 || len(e.L2KB) > 0 {
		if e.Sweep != "geometry" {
			return fmt.Errorf("geometry axes are only valid with sweep \"geometry\"")
		}
		// Bound the KB values before the <<10 conversion so an absurd
		// request cannot overflow int into a nonsense (or accidentally
		// plausible) byte count.
		for _, kb := range e.L2KB {
			if kb <= 0 || kb > cache.MaxSizeBytes>>10 {
				return fmt.Errorf("l2 axis: %d KB out of range (1..%d)", kb, cache.MaxSizeBytes>>10)
			}
		}
		l1s, l2Sizes := e.GeometryAxes()
		for _, l1 := range l1s {
			if _, err := cache.TryNew(l1); err != nil {
				return fmt.Errorf("l1 axis: %w", err)
			}
		}
		base := perf.O2R12K1MB().L2
		for _, size := range l2Sizes {
			l2 := base
			l2.SizeBytes = size
			if _, err := cache.TryNew(l2); err != nil {
				return fmt.Errorf("l2 axis: %w", err)
			}
		}
	}
	return nil
}

// RenderExperiment produces the text of one experiment, running its
// internal fan-out (resolutions, sizes, configurations) on the pool.
// Strategy and usage accounting follow the context's Study. It is the
// rendering engine behind cmd/mp4study and the study service.
func RenderExperiment(ctx context.Context, pool *farm.Pool, e ExperimentSpec, frames int) (string, error) {
	if err := e.Validate(); err != nil {
		return "", err
	}
	switch {
	case e.Table != 0:
		return renderTable(ctx, pool, e.Table, frames)
	case e.Figure != 0:
		return renderFigure(ctx, pool, e.Figure, frames)
	default:
		return renderSweep(ctx, pool, e, frames)
	}
}

func renderTable(ctx context.Context, pool *farm.Pool, n, frames int) (string, error) {
	switch n {
	case 1:
		return Table1() + "\n", nil
	case 8:
		tab, err := Table8Pool(ctx, pool, frames)
		if err != nil {
			return "", err
		}
		return tab.String() + "\n", nil
	default:
		spec, err := TableSpecByNum(n)
		if err != nil {
			return "", err
		}
		tab, _, err := RunTablePool(ctx, pool, spec, frames)
		if err != nil {
			return "", err
		}
		return tab.String() + "\n", nil
	}
}

func renderFigure(ctx context.Context, pool *farm.Pool, n, frames int) (string, error) {
	var sb strings.Builder
	switch n {
	case 2:
		series, err := Figure2Pool(ctx, pool, frames)
		if err != nil {
			return "", err
		}
		writeSeries(&sb, series)
		return sb.String(), nil
	case 3, 4:
		points, err := RunObjectSweepPool(ctx, pool, frames)
		if err != nil {
			return "", err
		}
		series := Figure3Series(points)
		if n == 4 {
			series = Figure4Series(points)
		}
		writeSeries(&sb, series)
		return sb.String(), nil
	default:
		return "", fmt.Errorf("no figure %d (the paper's data figures are 2-4)", n)
	}
}

func writeSeries(sb *strings.Builder, series []perf.Series) {
	for _, s := range series {
		s.Write(sb)
		sb.WriteString("\n")
	}
}

// renderSweep runs the extension experiments: the paper's future-work
// processor/memory ratio study, the cache-geometry sweep and the
// design-choice ablations.
func renderSweep(ctx context.Context, pool *farm.Pool, e ExperimentSpec, frames int) (string, error) {
	wl := Workload{W: 352, H: 288, Frames: frames}
	switch e.Sweep {
	case "geometry":
		// The geometry sweep is a replay experiment by nature: its whole
		// point is simulating every configuration from one capture. The
		// live variant survives only as the re-encode baseline for a
		// study that explicitly disables replay.
		l1s, l2Sizes := e.GeometryAxes()
		var points []GeometryPoint
		var err error
		title := "cache geometry sweep (encode, one trace replayed per config)"
		if StudyFrom(ctx).ReplayEnabled() {
			points, err = RunGeometrySweepPool(ctx, pool, wl, l1s, l2Sizes)
		} else {
			title = "cache geometry sweep (encode, re-encoded live per config)"
			points, err = RunGeometrySweepLive(ctx, pool, wl, l1s, l2Sizes)
		}
		if err != nil {
			return "", err
		}
		return GeometrySweepReport(title, points), nil
	case "ratio":
		points, err := RunRatioSweepPool(ctx, pool, wl, nil)
		if err != nil {
			return "", err
		}
		var sb strings.Builder
		writeSeries(&sb, RatioSweepSeries(points))
		if c := MemoryBoundCrossover(points); c > 0 {
			fmt.Fprintf(&sb, "decode becomes memory bound (>=50%% DRAM stall) at %gx the baseline DRAM latency\n", c)
		} else {
			sb.WriteString("decode never becomes memory bound within the sweep\n")
		}
		return sb.String(), nil
	case "search":
		res, err := RunSearchAblationPool(ctx, pool, wl)
		if err != nil {
			return "", err
		}
		return FormatAblation("motion search ablation (encode, R12K 1MB)", res), nil
	case "prefetch":
		res, err := RunPrefetchAblationPool(ctx, pool, wl, nil)
		if err != nil {
			return "", err
		}
		return FormatAblation("prefetch cadence ablation (encode, R12K 1MB)", res), nil
	case "staging":
		res, err := RunStagingAblationPool(ctx, pool, wl)
		if err != nil {
			return "", err
		}
		return FormatAblation("per-VOP staging ablation (encode, R12K 1MB)", res), nil
	case "coloring":
		wl.Objects = 2
		res, err := RunColoringAblationPool(ctx, pool, wl)
		if err != nil {
			return "", err
		}
		return FormatAblation("page coloring ablation (encode, R12K 1MB)", res), nil
	default:
		return "", fmt.Errorf("unknown sweep %q", e.Sweep)
	}
}
