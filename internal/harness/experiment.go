package harness

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/farm"
	"repro/internal/perf"
)

// ExperimentSpec is one schedulable unit of the study: a table, a
// figure, or an extension sweep. Exactly one of Table/Figure/Sweep is
// set. The JSON shape is shared by mp4study's batch manifests and the
// study service's submissions, so a manifest file posts to the service
// unchanged.
//
// The geometry sweep accepts optional axes. They are data, not code —
// manifests and network requests carry them — so Validate builds every
// axis entry through cache.TryNew before any simulation starts.
type ExperimentSpec struct {
	Table  int    `json:"table,omitempty"`
	Figure int    `json:"figure,omitempty"`
	Sweep  string `json:"sweep,omitempty"`

	// Geometry-sweep axes (sweep == "geometry" only). Empty axes use
	// GeometryL1Configs / GeometryL2Sizes.
	L1s  []cache.Config `json:"l1,omitempty"`
	L2KB []int          `json:"l2_kb,omitempty"`

	// Policies is the replacement-policy axis, valid with sweep
	// "geometry" (crossed with the L1 axis) and sweep "policy" (the
	// dedicated policy comparison; empty means every implemented
	// policy). Names are data from manifests, requests and flags;
	// Validate parses each through cache.ParsePolicy.
	Policies []string `json:"policies,omitempty"`
}

// Sweeps lists the valid Sweep values.
var Sweeps = []string{"ratio", "geometry", "policy", "search", "prefetch", "staging", "coloring"}

// Label names the experiment for progress reporting and error
// attribution.
func (e ExperimentSpec) Label() string {
	switch {
	case e.Table != 0:
		return fmt.Sprintf("table %d", e.Table)
	case e.Figure != 0:
		return fmt.Sprintf("figure %d", e.Figure)
	default:
		return "sweep " + e.Sweep
	}
}

// GeometryAxes converts the spec's optional axes into the sweep's
// argument shape (nil where defaulted).
func (e ExperimentSpec) GeometryAxes() (l1s []cache.Config, l2Sizes []int) {
	for _, l1 := range e.L1s {
		if l1.Name == "" {
			l1.Name = "L1D"
		}
		l1s = append(l1s, l1)
	}
	for _, kb := range e.L2KB {
		l2Sizes = append(l2Sizes, kb<<10)
	}
	return l1s, l2Sizes
}

// PolicyAxis parses the spec's policy names. The caller is expected to
// have validated the spec; unknown names still return an error, never
// a panic.
func (e ExperimentSpec) PolicyAxis() ([]cache.Policy, error) {
	var out []cache.Policy
	for _, s := range e.Policies {
		p, err := cache.ParsePolicy(s)
		if err != nil {
			return nil, fmt.Errorf("policy axis: %w", err)
		}
		out = append(out, p)
	}
	return out, nil
}

// SweepAxes resolves the spec's L1/L2/policy axes into the concrete L1
// axis and L2 size list the geometry or policy sweep will simulate —
// the single source of truth shared by Validate (which TryNews every
// resolved entry) and renderSweep (which simulates them), so ingress
// validation cannot drift from execution. For sweep "geometry" the
// policy axis crosses the L1 axis (empty = LRU only, the pre-policy
// sweep); for sweep "policy" an empty policy list means every
// implemented policy, over the base L1 unless an explicit L1 axis is
// given. A policies list cannot be combined with L1 entries that name
// their own policy — the expansion would silently override them, so
// the conflict is an error instead.
func (e ExperimentSpec) SweepAxes() ([]cache.Config, []int, error) {
	policies, err := e.PolicyAxis()
	if err != nil {
		return nil, nil, err
	}
	l1s, l2Sizes := e.GeometryAxes()
	if len(policies) > 0 {
		// The policies axis stamps its policy onto every L1 entry; an
		// entry carrying its own explicit policy would be silently
		// overridden, so the combination is rejected rather than
		// guessed at.
		for _, l1 := range l1s {
			if l1.Policy != "" {
				return nil, nil, fmt.Errorf(
					"l1 axis entry %s names policy %q while a policies axis is also given — use one or the other",
					l1.Name, l1.Policy)
			}
		}
	}
	switch e.Sweep {
	case "policy":
		switch {
		case len(l1s) == 0:
			l1s = PolicyAxisConfigs(policies)
		case len(policies) > 0:
			// No entry carries its own policy (guarded above).
			l1s = ExpandPolicyAxis(l1s, policies)
		default:
			// Explicit L1 axis, no policies list: entries naming their
			// own policy are the axis as given; all-unlabelled entries
			// expand over every implemented policy.
			explicit := false
			for _, l1 := range l1s {
				if l1.Policy != "" {
					explicit = true
					break
				}
			}
			if !explicit {
				l1s = ExpandPolicyAxis(l1s, cache.Policies())
			}
		}
	case "geometry":
		if len(policies) > 0 {
			l1s = ExpandPolicyAxis(l1s, policies)
		}
	}
	return l1s, l2Sizes, nil
}

// Validate checks the spec without running anything: exactly one
// experiment kind, a known table/figure/sweep, and — because geometry
// axes arrive from manifests and network requests — every axis entry
// must build via cache.TryNew.
func (e ExperimentSpec) Validate() error {
	set := 0
	if e.Table != 0 {
		set++
	}
	if e.Figure != 0 {
		set++
	}
	if e.Sweep != "" {
		set++
	}
	if set != 1 {
		return fmt.Errorf("experiment must set exactly one of table/figure/sweep, has %d", set)
	}
	switch {
	case e.Table != 0:
		if e.Table != 1 && e.Table != 8 {
			if _, err := TableSpecByNum(e.Table); err != nil {
				return err
			}
		}
	case e.Figure != 0:
		if e.Figure < 2 || e.Figure > 4 {
			return fmt.Errorf("no figure %d (the paper's data figures are 2-4)", e.Figure)
		}
	default:
		known := false
		for _, s := range Sweeps {
			if e.Sweep == s {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("unknown sweep %q (have %s)", e.Sweep, strings.Join(Sweeps, ", "))
		}
	}
	sweepWithAxes := e.Sweep == "geometry" || e.Sweep == "policy"
	if len(e.L1s) > 0 || len(e.L2KB) > 0 {
		if !sweepWithAxes {
			return fmt.Errorf("geometry axes are only valid with sweep \"geometry\" or \"policy\"")
		}
	}
	if len(e.Policies) > 0 && !sweepWithAxes {
		return fmt.Errorf("a policy axis is only valid with sweep \"geometry\" or \"policy\"")
	}
	if sweepWithAxes {
		// Bound the KB values before the <<10 conversion so an absurd
		// request cannot overflow int into a nonsense (or accidentally
		// plausible) byte count.
		for _, kb := range e.L2KB {
			if kb <= 0 || kb > cache.MaxSizeBytes>>10 {
				return fmt.Errorf("l2 axis: %d KB out of range (1..%d)", kb, cache.MaxSizeBytes>>10)
			}
		}
		// Check every configuration the sweep will actually simulate —
		// the policy axis crossed with the L1 axis, and the base L2
		// under each inherited policy — so policy/geometry interactions
		// (e.g. tree-PLRU on a non-power-of-two axis entry) are
		// rejected here and not inside a farm job. Config.Validate is
		// the exact precondition of cache.TryNew without its array
		// allocations: axes arrive from the network, and a hostile
		// near-MaxSizeBytes grid must not cost gigabytes of transient
		// backing arrays just to be validated.
		l1s, l2Sizes, err := e.SweepAxes()
		if err != nil {
			return err
		}
		for _, l1 := range l1s {
			if err := l1.Validate(); err != nil {
				return fmt.Errorf("l1 axis: %w", err)
			}
			sizes := l2Sizes
			if len(sizes) == 0 {
				sizes = GeometryL2Sizes() // the defaults the sweep will use
			}
			for _, size := range sizes {
				if err := GeometryL2For(l1, size).Validate(); err != nil {
					return fmt.Errorf("l2 axis: %w", err)
				}
			}
		}
	}
	return nil
}

// SweepTitle names the geometry/policy sweep report for the given
// simulation strategy. It is shared by renderSweep and cmd/mp4study's
// trace-file and fleet paths, whose outputs are documented as
// identical to the plain sweep — one source keeps them so.
func SweepTitle(sweep string, replayed bool) string {
	kind := "cache geometry"
	if sweep == "policy" {
		kind = "replacement policy"
	}
	if replayed {
		return kind + " sweep (encode, one trace replayed per config)"
	}
	return kind + " sweep (encode, re-encoded live per config)"
}

// RenderExperiment produces the text of one experiment, running its
// internal fan-out (resolutions, sizes, configurations) on the pool.
// Strategy and usage accounting follow the context's Study. It is the
// rendering engine behind cmd/mp4study and the study service.
func RenderExperiment(ctx context.Context, pool *farm.Pool, e ExperimentSpec, frames int) (string, error) {
	if err := e.Validate(); err != nil {
		return "", err
	}
	switch {
	case e.Table != 0:
		return renderTable(ctx, pool, e.Table, frames)
	case e.Figure != 0:
		return renderFigure(ctx, pool, e.Figure, frames)
	default:
		return renderSweep(ctx, pool, e, frames)
	}
}

func renderTable(ctx context.Context, pool *farm.Pool, n, frames int) (string, error) {
	switch n {
	case 1:
		return Table1() + "\n", nil
	case 8:
		tab, err := Table8Pool(ctx, pool, frames)
		if err != nil {
			return "", err
		}
		return tab.String() + "\n", nil
	default:
		spec, err := TableSpecByNum(n)
		if err != nil {
			return "", err
		}
		tab, _, err := RunTablePool(ctx, pool, spec, frames)
		if err != nil {
			return "", err
		}
		return tab.String() + "\n", nil
	}
}

func renderFigure(ctx context.Context, pool *farm.Pool, n, frames int) (string, error) {
	var sb strings.Builder
	switch n {
	case 2:
		series, err := Figure2Pool(ctx, pool, frames)
		if err != nil {
			return "", err
		}
		writeSeries(&sb, series)
		return sb.String(), nil
	case 3, 4:
		points, err := RunObjectSweepPool(ctx, pool, frames)
		if err != nil {
			return "", err
		}
		series := Figure3Series(points)
		if n == 4 {
			series = Figure4Series(points)
		}
		writeSeries(&sb, series)
		return sb.String(), nil
	default:
		return "", fmt.Errorf("no figure %d (the paper's data figures are 2-4)", n)
	}
}

func writeSeries(sb *strings.Builder, series []perf.Series) {
	for _, s := range series {
		s.Write(sb)
		sb.WriteString("\n")
	}
}

// renderSweep runs the extension experiments: the paper's future-work
// processor/memory ratio study, the cache-geometry sweep and the
// design-choice ablations.
func renderSweep(ctx context.Context, pool *farm.Pool, e ExperimentSpec, frames int) (string, error) {
	wl := Workload{W: 352, H: 288, Frames: frames}
	switch e.Sweep {
	case "geometry", "policy":
		// The geometry and policy sweeps are replay experiments by
		// nature: their whole point is simulating every configuration
		// (every replacement policy) from one capture. The live variant
		// survives only as the re-encode baseline for a study that
		// explicitly disables replay.
		l1s, l2Sizes, err := e.SweepAxes()
		if err != nil {
			return "", err
		}
		var points []GeometryPoint
		replayed := StudyFrom(ctx).ReplayEnabled()
		if replayed {
			points, err = RunGeometrySweepPool(ctx, pool, wl, l1s, l2Sizes)
		} else {
			points, err = RunGeometrySweepLive(ctx, pool, wl, l1s, l2Sizes)
		}
		if err != nil {
			return "", err
		}
		return GeometrySweepReport(SweepTitle(e.Sweep, replayed), points), nil
	case "ratio":
		points, err := RunRatioSweepPool(ctx, pool, wl, nil)
		if err != nil {
			return "", err
		}
		var sb strings.Builder
		writeSeries(&sb, RatioSweepSeries(points))
		if c := MemoryBoundCrossover(points); c > 0 {
			fmt.Fprintf(&sb, "decode becomes memory bound (>=50%% DRAM stall) at %gx the baseline DRAM latency\n", c)
		} else {
			sb.WriteString("decode never becomes memory bound within the sweep\n")
		}
		return sb.String(), nil
	case "search":
		res, err := RunSearchAblationPool(ctx, pool, wl)
		if err != nil {
			return "", err
		}
		return FormatAblation("motion search ablation (encode, R12K 1MB)", res), nil
	case "prefetch":
		res, err := RunPrefetchAblationPool(ctx, pool, wl, nil)
		if err != nil {
			return "", err
		}
		return FormatAblation("prefetch cadence ablation (encode, R12K 1MB)", res), nil
	case "staging":
		res, err := RunStagingAblationPool(ctx, pool, wl)
		if err != nil {
			return "", err
		}
		return FormatAblation("per-VOP staging ablation (encode, R12K 1MB)", res), nil
	case "coloring":
		wl.Objects = 2
		res, err := RunColoringAblationPool(ctx, pool, wl)
		if err != nil {
			return "", err
		}
		return FormatAblation("page coloring ablation (encode, R12K 1MB)", res), nil
	default:
		return "", fmt.Errorf("unknown sweep %q", e.Sweep)
	}
}
