package harness

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/farm"
	"repro/internal/memo"
	"repro/internal/obs"
	"repro/internal/perf"
	"repro/internal/simmem"
	"repro/internal/trace"
)

// CodeVersion names the simulator semantics memoized results depend
// on: the cache models, the replay machinery, and perf.Compute. Bump
// it whenever any of those change observable output — every memo entry
// recorded under the old version then misses instead of replaying
// stale results.
const CodeVersion = "sim-v1"

// Sweep metrics: every geometry/policy sweep — local, trace-file or
// the shard replays a distributed worker runs — passes through
// RunGeometrySweepFromTrace or GeometryRowFromL2Trace, so these two
// counters plus the harness_geometry_sweep span (see obs.Span) give
// points/sec for the whole fleet's rows.
var (
	mSweepPoints = obs.Default().Counter("harness_sweep_points_total")
	mSweepRows   = obs.Default().Counter("harness_sweep_rows_total")
)

// The cache-geometry sweep is the purest form of the record/replay
// methodology: one encode produces one trace, and every (L1, L2)
// geometry is simulated from it — the classic trace-driven study the
// paper's own figures perform by machine shopping, generalised to
// machines SGI never built. Per L1 the full trace replays once through
// an L1 filter; the surviving L2-bound stream (orders of magnitude
// shorter) then replays once per L2 size.

// GeometryPoint is one simulated configuration of the sweep.
type GeometryPoint struct {
	Label  string
	L1     cache.Config
	L2     cache.Config
	Encode perf.Metrics
}

// GeometryL1Configs returns the default L1 axis: the paper's 32 KB
// 2-way data cache plus a half-size and a double-associativity
// variant.
func GeometryL1Configs() []cache.Config {
	base := perf.O2R12K1MB().L1
	half := base
	half.SizeBytes = base.SizeBytes / 2
	assoc := base
	assoc.Ways = base.Ways * 2
	return []cache.Config{base, half, assoc}
}

// GeometryL2Sizes returns the default L2 axis, bracketing the paper's
// 1/2/8 MB machines.
func GeometryL2Sizes() []int {
	return []int{256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20, 8 << 20}
}

// geometryMachine builds the timing model for one configuration: the
// O2's clocks and penalties with the caches swapped. The sweep's
// policy axis is hierarchy-wide: the L2 inherits the L1 entry's
// replacement policy (with the victim wrapper mapped back to LRU — it
// is an L1 structure), so one axis entry names one consistently
// configured machine.
func geometryMachine(l1 cache.Config, l2Size int) perf.Machine {
	m := perf.O2R12K1MB()
	m.Name = fmt.Sprintf("geom L1:%dK/%dw L2:%dM", l1.SizeBytes>>10, l1.Ways, l2Size>>20)
	m.L1 = l1
	m.L2.SizeBytes = l2Size
	m.L2.Policy = l1.Policy.ForL2()
	m.L2.Seed = l1.Seed
	return m
}

// GeometryL2For returns the exact L2 configuration the sweep
// simulates for one (L1 entry, L2 size) pair — the O2's L2 with the
// size swapped in and the L1's replacement policy inherited. It is the
// single source of the inheritance rule, shared by the sweep itself
// (via geometryMachine) and every ingress validator (ExperimentSpec,
// the dist coordinator and worker), so validation cannot drift from
// execution.
func GeometryL2For(l1 cache.Config, l2Size int) cache.Config {
	return geometryMachine(l1, l2Size).L2
}

// GeometryMemoKey is the memo identity of one sweep cell: the
// capture's content hash plus the exact (L1, L2) pair the cell
// simulates. Shared by the local sweep and the dist coordinator so
// both populate and consult the same entries.
func GeometryMemoKey(traceHash trace.Hash, l1 cache.Config, l2Size int) memo.Key {
	return memo.Key{
		TraceHash: traceHash.String(),
		L1:        l1,
		L2:        GeometryL2For(l1, l2Size),
	}
}

// GeometryPointFromStats reconstructs one sweep point from memoized
// whole-run stats — field-for-field identical to simulating the cell,
// because perf.Compute is deterministic in (machine, stats).
func GeometryPointFromStats(l1 cache.Config, l2Size int, whole cache.Stats) GeometryPoint {
	m := geometryMachine(l1, l2Size)
	return GeometryPoint{
		Label:  geometryLabel(l1, l2Size),
		L1:     l1,
		L2:     m.L2,
		Encode: perf.Compute(m, whole),
	}
}

func geometryLabel(l1 cache.Config, l2Size int) string {
	base := fmt.Sprintf("L1 %dKB/%d-way, L2 %s", l1.SizeBytes>>10, l1.Ways, humanBytes(l2Size))
	if suffix := policySuffix(l1.Policy); suffix != "" {
		return base + ", " + suffix
	}
	return base
}

// policySuffix names a non-default policy in labels; the LRU default
// stays unnamed so every pre-policy output remains byte-identical.
func policySuffix(p cache.Policy) string {
	if p == "" || p == cache.PolicyLRU {
		return ""
	}
	return string(p)
}

// ExpandPolicyAxis crosses an L1 axis with a policy axis: for each
// policy (outer), each L1 entry (inner) reappears under that policy.
// Nil/empty axes use the defaults (GeometryL1Configs, LRU only), so
// expanding with a nil policy list is the identity on the default
// sweep.
func ExpandPolicyAxis(l1s []cache.Config, policies []cache.Policy) []cache.Config {
	if len(l1s) == 0 {
		l1s = GeometryL1Configs()
	}
	if len(policies) == 0 {
		return l1s
	}
	out := make([]cache.Config, 0, len(l1s)*len(policies))
	for _, p := range policies {
		for _, l1 := range l1s {
			l1.Policy = p
			out = append(out, l1)
		}
	}
	return out
}

// PolicyAxisConfigs returns the policy sweep's L1 axis: the paper's
// base 32 KB 2-way L1 under each named policy (nil means every
// implemented policy). The geometry is held fixed on purpose — the
// sweep isolates the replacement policy as the only moving part, all
// replayed from one capture.
func PolicyAxisConfigs(policies []cache.Policy) []cache.Config {
	if len(policies) == 0 {
		policies = cache.Policies()
	}
	return ExpandPolicyAxis([]cache.Config{perf.O2R12K1MB().L1}, policies)
}

func humanBytes(b int) string {
	if b >= 1<<20 {
		return fmt.Sprintf("%dMB", b>>20)
	}
	return fmt.Sprintf("%dKB", b>>10)
}

// RunGeometrySweep runs the sweep on the default pool; see
// RunGeometrySweepPool.
func RunGeometrySweep(wl Workload, l1s []cache.Config, l2Sizes []int) ([]GeometryPoint, error) {
	return RunGeometrySweepPool(context.Background(), nil, wl, l1s, l2Sizes)
}

// RunGeometrySweepPool encodes the workload exactly once, then
// simulates every (L1, L2 size) combination by replaying the capture
// (see RunGeometrySweepFromTrace). Points return in (L1 outer, L2
// inner) order. Nil/empty axes use the defaults.
func RunGeometrySweepPool(ctx context.Context, p *farm.Pool, wl Workload, l1s []cache.Config, l2Sizes []int) ([]GeometryPoint, error) {
	capture, err := RecordEncodeCtx(ctx, simmem.NewSpace(0), wl)
	if err != nil {
		return nil, err
	}
	return RunGeometrySweepFromTrace(ctx, p, capture.Enc, l1s, l2Sizes)
}

// RunGeometrySweepFromTrace runs the geometry sweep against an existing
// capture — recorded in-process or decoded from a trace file (mp4study
// -trace-in, or a shard request arriving at a distributed worker): the
// full trace replays through an L1 filter per L1 configuration (one
// farm job each), and each filtered trace replays per L2 size. Points
// return in (L1 outer, L2 inner) order, identical to
// RunGeometrySweepPool on the workload the trace captures. Nil/empty
// axes use the defaults; every geometry is validated before simulation
// (traces and axes may arrive over the network).
func RunGeometrySweepFromTrace(ctx context.Context, p *farm.Pool, tr *trace.Trace, l1s []cache.Config, l2Sizes []int) ([]GeometryPoint, error) {
	defer obs.Span("harness.geometry_sweep")()
	if len(l1s) == 0 {
		l1s = GeometryL1Configs()
	}
	if len(l2Sizes) == 0 {
		l2Sizes = GeometryL2Sizes()
	}
	// Validate the exact configurations the sweep will simulate: the
	// L2 geometry derives from both the size axis and the L1 entry's
	// policy (geometryMachine), so each (L1, size) pair is checked.
	for _, l1 := range l1s {
		if err := l1.Validate(); err != nil {
			return nil, err
		}
		for _, size := range l2Sizes {
			if err := geometryMachine(l1, size).L2.Validate(); err != nil {
				return nil, err
			}
		}
	}
	rows, err := farm.MapLabeled(ctx, p, l1s,
		func(i int, l1 cache.Config) string {
			label := fmt.Sprintf("geometry/l1=%dK-%dw", l1.SizeBytes>>10, l1.Ways)
			if suffix := policySuffix(l1.Policy); suffix != "" {
				label += "-" + suffix
			}
			return label
		},
		func(ctx context.Context, env farm.Env, l1 cache.Config) ([]GeometryPoint, error) {
			return geometryRowMemo(ctx, tr, l1, l2Sizes)
		})
	if err != nil {
		return nil, err
	}
	var out []GeometryPoint
	for _, r := range rows {
		out = append(out, r...)
	}
	return out, nil
}

// geometryRowMemo computes one L1 row of the sweep, serving cells from
// the study's memo when one is attached. Only the missing cells pay
// for simulation — and a fully memoized row skips the L1 filter replay
// entirely, which is the row's dominant cost. Without a memo this is
// exactly the historical filter-then-replay path.
func geometryRowMemo(ctx context.Context, tr *trace.Trace, l1 cache.Config, l2Sizes []int) ([]GeometryPoint, error) {
	s := StudyFrom(ctx)
	mc := s.Memo()
	if mc == nil {
		lt := FilterGeometryL1(ctx, tr, l1)
		return GeometryRowFromL2Trace(ctx, lt, l2Sizes)
	}
	hash := tr.Hash()
	points := make([]GeometryPoint, len(l2Sizes))
	var missing []int
	for i, size := range l2Sizes {
		if whole, ok := mc.Get(GeometryMemoKey(hash, l1, size)); ok {
			points[i] = GeometryPointFromStats(l1, size, whole)
			s.noteMemoHit()
			continue
		}
		missing = append(missing, i)
		s.noteMemoMiss()
	}
	if len(missing) > 0 {
		lt := FilterGeometryL1(ctx, tr, l1)
		cfgs := make([]cache.Config, len(missing))
		for j, i := range missing {
			cfgs[j] = GeometryL2For(l1, l2Sizes[i])
		}
		rr := lt.ReplayMany(cfgs, trace.ReplayWorkers())
		for j, i := range missing {
			size := l2Sizes[i]
			s.noteReplay()
			points[i] = GeometryPointFromStats(l1, size, rr[j].Whole)
			mc.Put(GeometryMemoKey(hash, l1, size), rr[j].Whole)
		}
	}
	// Same row/point accounting as GeometryRowFromL2Trace, so the sweep
	// throughput metrics mean the same thing with or without a memo.
	mSweepRows.Inc()
	mSweepPoints.Add(uint64(len(points)))
	return points, nil
}

// FilterGeometryL1 replays a full capture through one L1 configuration
// of the geometry sweep and returns the surviving L2-bound stream — the
// per-L1 half of the sweep, accounted to the context's Study. The
// caller must have validated l1 (it is the seam the local sweep and the
// distributed coordinator share; both validate their axes at ingress).
func FilterGeometryL1(ctx context.Context, tr *trace.Trace, l1 cache.Config) *trace.L2Trace {
	lt := tr.FilterL2Parallel(l1, trace.ReplayWorkers())
	StudyFrom(ctx).noteL2Trace(lt)
	return lt
}

// GeometryRowFromL2Trace simulates one L1 row of the geometry sweep
// from an L1-filtered capture: one replay per L2 size against the
// trace's embedded L1, in axis order — the per-L2 half of the sweep,
// shared by the local sweep and the distributed worker's M4L2 path so
// the two cannot drift apart. Nil/empty l2Sizes use the defaults; the
// sizes are validated before simulation (they may arrive over the
// network).
func GeometryRowFromL2Trace(ctx context.Context, lt *trace.L2Trace, l2Sizes []int) ([]GeometryPoint, error) {
	points, _, err := GeometryRowStatsFromL2Trace(ctx, lt, l2Sizes)
	return points, err
}

// GeometryRowStatsFromL2Trace is GeometryRowFromL2Trace returning the
// whole-run stats alongside each point — what a distributed worker
// ships back so the coordinator can memoize the cells it replayed
// remotely (the stats are the memo value; points derive from them).
func GeometryRowStatsFromL2Trace(ctx context.Context, lt *trace.L2Trace, l2Sizes []int) ([]GeometryPoint, []cache.Stats, error) {
	if len(l2Sizes) == 0 {
		l2Sizes = GeometryL2Sizes()
	}
	for _, size := range l2Sizes {
		// Validate the exact L2 the row will simulate — including the
		// policy it inherits from the trace's embedded L1.
		l2 := geometryMachine(lt.L1, size).L2
		if err := l2.Validate(); err != nil {
			return nil, nil, err
		}
	}
	s := StudyFrom(ctx)
	l1 := lt.L1
	points := make([]GeometryPoint, len(l2Sizes))
	stats := make([]cache.Stats, len(l2Sizes))
	cfgs := make([]cache.Config, len(l2Sizes))
	for i, size := range l2Sizes {
		cfgs[i] = geometryMachine(l1, size).L2
	}
	rr := lt.ReplayMany(cfgs, trace.ReplayWorkers())
	for i, size := range l2Sizes {
		m := geometryMachine(l1, size)
		s.noteReplay()
		stats[i] = rr[i].Whole
		points[i] = GeometryPoint{
			Label:  geometryLabel(l1, size),
			L1:     l1,
			L2:     m.L2,
			Encode: perf.Compute(m, rr[i].Whole),
		}
	}
	mSweepRows.Inc()
	mSweepPoints.Add(uint64(len(points)))
	return points, stats, nil
}

// RunGeometrySweepLive is the re-encode baseline: every configuration
// re-runs the instrumented codec with its hierarchy attached — the
// O(configs × encode) shape the replay sweep collapses. Kept for the
// replay speedup benchmark and for -replay=false runs.
func RunGeometrySweepLive(ctx context.Context, p *farm.Pool, wl Workload, l1s []cache.Config, l2Sizes []int) ([]GeometryPoint, error) {
	if len(l1s) == 0 {
		l1s = GeometryL1Configs()
	}
	if len(l2Sizes) == 0 {
		l2Sizes = GeometryL2Sizes()
	}
	type cfg struct {
		l1   cache.Config
		size int
	}
	var cases []cfg
	for _, l1 := range l1s {
		for _, size := range l2Sizes {
			cases = append(cases, cfg{l1, size})
		}
	}
	return farm.MapLabeled(ctx, p, cases,
		func(i int, c cfg) string {
			return fmt.Sprintf("geometry-live/l1=%dK-%dw/l2=%s", c.l1.SizeBytes>>10, c.l1.Ways, humanBytes(c.size))
		},
		func(ctx context.Context, env farm.Env, c cfg) (GeometryPoint, error) {
			m := geometryMachine(c.l1, c.size)
			res, _, err := RunEncodeLiveIn(env.Space, []perf.Machine{m}, wl)
			if err != nil {
				return GeometryPoint{}, err
			}
			return GeometryPoint{
				Label:  geometryLabel(c.l1, c.size),
				L1:     c.l1,
				L2:     m.L2,
				Encode: res[0].Whole,
			}, nil
		})
}

// GeometrySweepSeries renders the sweep as one series per L1
// configuration (L2 size on the x axis, L2 miss rate on y).
func GeometrySweepSeries(points []GeometryPoint) []perf.Series {
	var out []perf.Series
	var curL1 cache.Config
	for _, p := range points {
		if len(out) == 0 || p.L1 != curL1 {
			label := fmt.Sprintf("L2C miss rate vs L2 size (encode, L1 %dKB/%d-way)", p.L1.SizeBytes>>10, p.L1.Ways)
			if suffix := policySuffix(p.L1.Policy); suffix != "" {
				label = fmt.Sprintf("L2C miss rate vs L2 size (encode, L1 %dKB/%d-way, %s)", p.L1.SizeBytes>>10, p.L1.Ways, suffix)
			}
			out = append(out, perf.Series{
				Label: label,
				YUnit: "%",
			})
			curL1 = p.L1
		}
		out[len(out)-1].Append(humanBytes(p.L2.SizeBytes), p.Encode.L2MissRate*100)
	}
	return out
}

// GeometrySweepReport renders the sweep's full output block — aligned
// table plus display series — shared by renderSweep and the CLI's
// -trace-in/-trace-out paths so their outputs cannot drift apart.
func GeometrySweepReport(title string, points []GeometryPoint) string {
	var sb strings.Builder
	sb.WriteString(FormatGeometrySweep(title, points))
	sb.WriteString("\n")
	for _, s := range GeometrySweepSeries(points) {
		s.Write(&sb)
		sb.WriteString("\n")
	}
	return sb.String()
}

// FormatGeometrySweep renders the sweep as an aligned text block. The
// config column widens only when a label (e.g. with a policy suffix)
// overflows the historical 28 characters, so pre-policy sweeps render
// byte-identically.
func FormatGeometrySweep(title string, points []GeometryPoint) string {
	width := 28
	for _, p := range points {
		if len(p.Label) > width {
			width = len(p.Label)
		}
	}
	out := title + "\n"
	out += fmt.Sprintf("  %-*s %9s %9s %10s %12s\n", width, "config", "L1miss%", "L2miss%", "DRAM%", "L2DRAM MB/s")
	for _, p := range points {
		out += fmt.Sprintf("  %-*s %8.3f%% %8.2f%% %9.2f%% %12.1f\n",
			width, p.Label, p.Encode.L1MissRate*100, p.Encode.L2MissRate*100,
			p.Encode.DRAMTimeFrac*100, p.Encode.L2DRAMMBps)
	}
	return out
}
