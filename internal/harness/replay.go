package harness

import (
	"context"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/codec"
	"repro/internal/memo"
	"repro/internal/perf"
	"repro/internal/simmem"
	"repro/internal/trace"
)

// This file is the record/replay layer of the harness: workloads are
// executed once to capture their memory-reference stream, and machines
// and cache geometries are simulated by replaying the capture. Two
// capture forms exist (see internal/trace):
//
//   - a full Trace replays against any cache geometry;
//   - an L1-filtered L2Trace replays only the L2-bound stream, valid
//     for any L2 behind the same L1 — the shape of the paper's three
//     machines — at a tiny fraction of the cost and memory.
//
// Both reproduce counter-identical Stats to live tracing (asserted by
// the equivalence tests in replay_test.go), so every path below is
// interchangeable with the live Multi-tracer path it replaced.

// Study bundles the per-run simulation policy and accounting: the
// capture/replay strategy and the TraceUsage counters. Every run
// belongs to exactly one Study, carried through the context (see
// WithStudy); runs without one share the process-default Study, which
// the CLI configures via SetReplayEnabled.
//
// The split exists because the service front-end runs many unrelated
// studies concurrently in one process: with process-global state, one
// request flipping the strategy would race every other request, and
// usage accounting would interleave across clients. A Study isolates
// both per request while staying safe for the farm's worker
// concurrency inside one study (the counters are atomics).
type Study struct {
	replayDisabled atomic.Bool
	// memoCache, when set, memoizes per-cell sweep stats by trace
	// content hash (see RunGeometrySweepFromTrace). Nil disables
	// memoization; output is byte-identical either way.
	memoCache atomic.Pointer[memo.Cache]
	usage     struct {
		traces, traceRecords, traceBytes atomic.Uint64
		l2Traces, l2Events, l2Bytes      atomic.Uint64
		replays, memoHits, memoMisses    atomic.Uint64
	}
}

// NewStudy returns a Study with the given capture/replay strategy and
// zeroed usage counters.
func NewStudy(replay bool) *Study {
	s := &Study{}
	s.replayDisabled.Store(!replay)
	return s
}

// SetReplayEnabled switches the study's multi-machine simulation
// strategy: capture-and-replay (default) or the legacy live path that
// attaches every hierarchy to the codec run. The live path remains for
// baselines and for memory-constrained runs (mp4study -replay=false).
func (s *Study) SetReplayEnabled(on bool) { s.replayDisabled.Store(!on) }

// ReplayEnabled reports whether capture-and-replay is in use.
func (s *Study) ReplayEnabled() bool { return !s.replayDisabled.Load() }

// SetMemo attaches a result memo: geometry sweeps consult it per grid
// cell and replay only the misses. Nil detaches. Several studies may
// share one memo cache (the service does — that is what makes a
// resubmitted study incremental).
func (s *Study) SetMemo(m *memo.Cache) { s.memoCache.Store(m) }

// Memo returns the study's memo cache, or nil when memoization is off.
func (s *Study) Memo() *memo.Cache { return s.memoCache.Load() }

// Usage returns the capture/replay counters accumulated by this study.
func (s *Study) Usage() TraceUsage {
	return TraceUsage{
		Traces:       s.usage.traces.Load(),
		TraceRecords: s.usage.traceRecords.Load(),
		TraceBytes:   s.usage.traceBytes.Load(),
		L2Traces:     s.usage.l2Traces.Load(),
		L2Events:     s.usage.l2Events.Load(),
		L2Bytes:      s.usage.l2Bytes.Load(),
		Replays:      s.usage.replays.Load(),
		MemoHits:     s.usage.memoHits.Load(),
		MemoMisses:   s.usage.memoMisses.Load(),
	}
}

// ResetUsage zeroes the study's counters.
func (s *Study) ResetUsage() {
	s.usage.traces.Store(0)
	s.usage.traceRecords.Store(0)
	s.usage.traceBytes.Store(0)
	s.usage.l2Traces.Store(0)
	s.usage.l2Events.Store(0)
	s.usage.l2Bytes.Store(0)
	s.usage.replays.Store(0)
	s.usage.memoHits.Store(0)
	s.usage.memoMisses.Store(0)
}

func (s *Study) noteTrace(t *trace.Trace) {
	s.usage.traces.Add(1)
	s.usage.traceRecords.Add(uint64(t.Records()))
	s.usage.traceBytes.Add(uint64(t.SizeBytes()))
}

func (s *Study) noteL2Trace(t *trace.L2Trace) {
	s.usage.l2Traces.Add(1)
	s.usage.l2Events.Add(uint64(t.Events()))
	s.usage.l2Bytes.Add(uint64(t.SizeBytes()))
}

func (s *Study) noteReplay() { s.usage.replays.Add(1) }

func (s *Study) noteMemoHit()  { s.usage.memoHits.Add(1) }
func (s *Study) noteMemoMiss() { s.usage.memoMisses.Add(1) }

// CountMemo folds externally served memo cells into the study's usage
// — the fleet path consults the memo in the dist coordinator rather
// than through this study's replay seam, and its sweep stats land here
// so TraceUsage reports one coherent hit/miss picture either way.
func (s *Study) CountMemo(hits, misses uint64) {
	s.usage.memoHits.Add(hits)
	s.usage.memoMisses.Add(misses)
}

// defaultStudy backs the package-level strategy and usage functions:
// the process-wide defaults that cmd/mp4study's flags configure. Runs
// whose context carries no explicit Study land here.
var defaultStudy = NewStudy(true)

// SetReplayEnabled switches the default study's strategy (the CLI
// -replay flag). Server-style callers should configure a per-request
// Study via WithStudy instead of mutating the process default.
func SetReplayEnabled(on bool) { defaultStudy.SetReplayEnabled(on) }

// ReplayEnabled reports the default study's strategy.
func ReplayEnabled() bool { return defaultStudy.ReplayEnabled() }

// SetMemo attaches a result memo to the default study (the CLI
// -memo-dir / -no-memo flags). Server-style callers should attach a
// memo to their per-request Study instead.
func SetMemo(m *memo.Cache) { defaultStudy.SetMemo(m) }

// Memo returns the default study's memo cache, or nil when
// memoization is off — the CLI hands it to the dist coordinator so
// local and fleet sweeps share one memo.
func Memo() *memo.Cache { return defaultStudy.Memo() }

// TraceUsageSnapshot returns the default study's counters.
func TraceUsageSnapshot() TraceUsage { return defaultStudy.Usage() }

// ResetTraceUsage zeroes the default study's counters.
func ResetTraceUsage() { defaultStudy.ResetUsage() }

// studyKey carries the Study through a context.
type studyKey struct{}

// WithStudy returns a context whose harness runs use s for strategy
// selection and usage accounting. The farm propagates the context into
// every job, so one WithStudy at submission scope covers a whole
// fanned-out experiment.
func WithStudy(ctx context.Context, s *Study) context.Context {
	return context.WithValue(ctx, studyKey{}, s)
}

// StudyFrom returns the context's Study, or the process default when
// none (or a nil context) is present.
func StudyFrom(ctx context.Context) *Study {
	if ctx != nil {
		if s, ok := ctx.Value(studyKey{}).(*Study); ok {
			return s
		}
	}
	return defaultStudy
}

// TraceUsage aggregates capture/replay activity across all experiments
// of one Study — the -replay trace report of cmd/mp4study.
type TraceUsage struct {
	Traces       uint64 // full traces recorded
	TraceRecords uint64
	TraceBytes   uint64
	L2Traces     uint64 // L1-filtered traces recorded
	L2Events     uint64
	L2Bytes      uint64
	Replays      uint64 // machine/geometry simulations served from captures
	MemoHits     uint64 // sweep cells served from the result memo
	MemoMisses   uint64 // sweep cells the memo had to simulate
}

// Zero reports whether no capture/replay activity was recorded.
func (u TraceUsage) Zero() bool { return u == TraceUsage{} }

// Capture bundles the recorded reference streams of one workload: the
// encode trace, optionally the decode trace, and the coded stream the
// decode consumes. One Capture simulates the workload on any number of
// machines without re-running the codec.
type Capture struct {
	Workload Workload
	Enc      *trace.Trace
	Dec      *trace.Trace
	SS       *codec.SessionStream
}

// RecordEncodeIn encodes the workload once with only a trace recorder
// attached — no cache simulation — and returns the capture, accounted
// to the default study.
func RecordEncodeIn(space *simmem.Space, wl Workload) (*Capture, error) {
	return RecordEncodeCtx(context.Background(), space, wl)
}

// RecordEncodeCtx is RecordEncodeIn accounted to the context's Study.
func RecordEncodeCtx(ctx context.Context, space *simmem.Space, wl Workload) (*Capture, error) {
	wl = wl.normalize()
	frames := wl.frames(space)
	rec := trace.NewRecorder()
	ss, err := codec.EncodeSession(wl.sessionConfig(), space, rec, rec, frames)
	if err != nil {
		return nil, err
	}
	tr := rec.Finish()
	StudyFrom(ctx).noteTrace(tr)
	return &Capture{Workload: wl, Enc: tr, SS: ss}, nil
}

// RecordDecodeIn records the decode (playback) trace of the capture's
// coded stream into c.Dec.
func (c *Capture) RecordDecodeIn(space *simmem.Space) error {
	return c.recordDecode(defaultStudy, space)
}

func (c *Capture) recordDecode(s *Study, space *simmem.Space) error {
	rec := trace.NewRecorder()
	if err := streamDecode(c.SS, space, rec, rec); err != nil {
		return err
	}
	c.Dec = rec.Finish()
	s.noteTrace(c.Dec)
	return nil
}

// ReplayOn simulates a captured trace on machine m, reproducing the
// Stats (and per-phase deltas) a live run on m would have counted. The
// replay is accounted to the default study; use ReplayOnCtx inside a
// service request.
func ReplayOn(m perf.Machine, tr *trace.Trace, bytes int) Result {
	return ReplayOnCtx(context.Background(), m, tr, bytes)
}

// ReplayOnCtx is ReplayOn accounted to the context's Study. With
// -replay-workers > 1 (trace.SetReplayWorkers) the replay runs the
// parallel filter + L2 composition across cores; the counters are
// byte-identical to the serial hierarchy replay either way.
func ReplayOnCtx(ctx context.Context, m perf.Machine, tr *trace.Trace, bytes int) Result {
	if w := trace.ReplayWorkers(); w > 1 {
		whole, phases := tr.ReplayHierarchyParallel(m.L1, m.L2, w)
		StudyFrom(ctx).noteReplay()
		return resultFromStats(m, whole, phases, bytes)
	}
	h := m.NewHierarchy()
	pt := newPhaseTracker(h)
	tr.Replay(h, pt)
	StudyFrom(ctx).noteReplay()
	return makeResult(m, h, pt, bytes)
}

// sameL1 reports whether all machines share one L1 configuration,
// making the L1-filtered replay path valid for the set. The
// replacement policy (and its seed) is part of the configuration: the
// L2-bound stream is a pure function of the whole L1, so machines
// differing only in L1 policy must fall back to full-trace replay.
// The display name is not: configs differing only in Name (or in the
// "" vs "lru" spelling of the default policy) simulate identically
// and keep the shared filter.
func sameL1(machines []perf.Machine) bool {
	key := func(c cache.Config) cache.Config {
		c = c.Canonical()
		c.Name = ""
		return c
	}
	first := key(machines[0].L1)
	for _, m := range machines[1:] {
		if key(m.L1) != first {
			return false
		}
	}
	return true
}

// resultFromStats derives a Result from raw whole-run counters and
// per-phase deltas.
func resultFromStats(m perf.Machine, whole cache.Stats, phases map[string]cache.Stats, bytes int) Result {
	res := Result{
		Machine: m,
		Whole:   perf.Compute(m, whole),
		Phases:  map[string]perf.Metrics{},
		Bytes:   bytes,
	}
	for name, st := range phases {
		res.Phases[name] = perf.Compute(m, st)
	}
	return res
}

// replayL2All simulates an L1-filtered capture on every machine of the
// (same-L1) set, in one fused pass over the event stream (split across
// replay workers when several are configured).
func replayL2All(s *Study, machines []perf.Machine, lt *trace.L2Trace, bytes int) []Result {
	cfgs := make([]cache.Config, len(machines))
	for i, m := range machines {
		cfgs[i] = m.L2
	}
	rr := lt.ReplayMany(cfgs, trace.ReplayWorkers())
	results := make([]Result, len(machines))
	for i, m := range machines {
		s.noteReplay()
		results[i] = resultFromStats(m, rr[i].Whole, rr[i].Phases, bytes)
	}
	return results
}

// runEncodeFiltered encodes once behind the shared L1 filter and
// replays the L2-bound stream per machine: O(encode + L1 sim) codec
// work for any number of machines.
func runEncodeFiltered(s *Study, space *simmem.Space, machines []perf.Machine, wl Workload) ([]Result, *codec.SessionStream, error) {
	wl = wl.normalize()
	frames := wl.frames(space)
	f := trace.NewL2Filter(machines[0].L1)
	ss, err := codec.EncodeSession(wl.sessionConfig(), space, f, f, frames)
	if err != nil {
		return nil, nil, err
	}
	lt := f.Trace()
	s.noteL2Trace(lt)
	return replayL2All(s, machines, lt, ss.TotalBytes()), ss, nil
}

// runEncodeRecorded captures the full trace once and replays it per
// machine — the general path for machine sets with differing L1s.
func runEncodeRecorded(ctx context.Context, space *simmem.Space, machines []perf.Machine, wl Workload) ([]Result, *codec.SessionStream, error) {
	c, err := RecordEncodeCtx(ctx, space, wl)
	if err != nil {
		return nil, nil, err
	}
	results := make([]Result, len(machines))
	for i, m := range machines {
		results[i] = ReplayOnCtx(ctx, m, c.Enc, c.SS.TotalBytes())
	}
	return results, c.SS, nil
}

// runDecodeFiltered / runDecodeRecorded mirror the encode variants for
// the playback pipeline.
func runDecodeFiltered(s *Study, space *simmem.Space, machines []perf.Machine, ss *codec.SessionStream) ([]Result, error) {
	f := trace.NewL2Filter(machines[0].L1)
	if err := streamDecode(ss, space, f, f); err != nil {
		return nil, err
	}
	lt := f.Trace()
	s.noteL2Trace(lt)
	return replayL2All(s, machines, lt, ss.TotalBytes()), nil
}

func runDecodeRecorded(ctx context.Context, space *simmem.Space, machines []perf.Machine, wl Workload, ss *codec.SessionStream) ([]Result, error) {
	c := &Capture{Workload: wl, SS: ss}
	if err := c.recordDecode(StudyFrom(ctx), space); err != nil {
		return nil, err
	}
	results := make([]Result, len(machines))
	for i, m := range machines {
		results[i] = ReplayOnCtx(ctx, m, c.Dec, ss.TotalBytes())
	}
	return results, nil
}
