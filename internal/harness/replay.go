package harness

import (
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/codec"
	"repro/internal/perf"
	"repro/internal/simmem"
	"repro/internal/trace"
)

// This file is the record/replay layer of the harness: workloads are
// executed once to capture their memory-reference stream, and machines
// and cache geometries are simulated by replaying the capture. Two
// capture forms exist (see internal/trace):
//
//   - a full Trace replays against any cache geometry;
//   - an L1-filtered L2Trace replays only the L2-bound stream, valid
//     for any L2 behind the same L1 — the shape of the paper's three
//     machines — at a tiny fraction of the cost and memory.
//
// Both reproduce counter-identical Stats to live tracing (asserted by
// the equivalence tests in replay_test.go), so every path below is
// interchangeable with the live Multi-tracer path it replaced.

// replayEnabled selects the multi-machine strategy of RunEncodeIn /
// RunDecodeIn: capture-and-replay (default) or the legacy live path
// that attaches every hierarchy to the codec run. The live path remains
// for baselines and for memory-constrained runs (mp4study -replay=false).
var replayDisabled atomic.Bool

// SetReplayEnabled switches the multi-machine simulation strategy.
func SetReplayEnabled(on bool) { replayDisabled.Store(!on) }

// ReplayEnabled reports whether capture-and-replay is in use.
func ReplayEnabled() bool { return !replayDisabled.Load() }

// TraceUsage aggregates capture/replay activity across all experiments
// since the last reset — the -replay trace report of cmd/mp4study.
type TraceUsage struct {
	Traces       uint64 // full traces recorded
	TraceRecords uint64
	TraceBytes   uint64
	L2Traces     uint64 // L1-filtered traces recorded
	L2Events     uint64
	L2Bytes      uint64
	Replays      uint64 // machine/geometry simulations served from captures
}

var usage struct {
	traces, traceRecords, traceBytes atomic.Uint64
	l2Traces, l2Events, l2Bytes      atomic.Uint64
	replays                          atomic.Uint64
}

// TraceUsageSnapshot returns the counters accumulated so far.
func TraceUsageSnapshot() TraceUsage {
	return TraceUsage{
		Traces:       usage.traces.Load(),
		TraceRecords: usage.traceRecords.Load(),
		TraceBytes:   usage.traceBytes.Load(),
		L2Traces:     usage.l2Traces.Load(),
		L2Events:     usage.l2Events.Load(),
		L2Bytes:      usage.l2Bytes.Load(),
		Replays:      usage.replays.Load(),
	}
}

// ResetTraceUsage zeroes the counters.
func ResetTraceUsage() {
	usage.traces.Store(0)
	usage.traceRecords.Store(0)
	usage.traceBytes.Store(0)
	usage.l2Traces.Store(0)
	usage.l2Events.Store(0)
	usage.l2Bytes.Store(0)
	usage.replays.Store(0)
}

func noteTrace(t *trace.Trace) {
	usage.traces.Add(1)
	usage.traceRecords.Add(uint64(t.Records()))
	usage.traceBytes.Add(uint64(t.SizeBytes()))
}

func noteL2Trace(t *trace.L2Trace) {
	usage.l2Traces.Add(1)
	usage.l2Events.Add(uint64(t.Events()))
	usage.l2Bytes.Add(uint64(t.SizeBytes()))
}

// Capture bundles the recorded reference streams of one workload: the
// encode trace, optionally the decode trace, and the coded stream the
// decode consumes. One Capture simulates the workload on any number of
// machines without re-running the codec.
type Capture struct {
	Workload Workload
	Enc      *trace.Trace
	Dec      *trace.Trace
	SS       *codec.SessionStream
}

// RecordEncodeIn encodes the workload once with only a trace recorder
// attached — no cache simulation — and returns the capture.
func RecordEncodeIn(space *simmem.Space, wl Workload) (*Capture, error) {
	wl = wl.normalize()
	frames := wl.frames(space)
	rec := trace.NewRecorder()
	ss, err := codec.EncodeSession(wl.sessionConfig(), space, rec, rec, frames)
	if err != nil {
		return nil, err
	}
	tr := rec.Finish()
	noteTrace(tr)
	return &Capture{Workload: wl, Enc: tr, SS: ss}, nil
}

// RecordDecodeIn records the decode (playback) trace of the capture's
// coded stream into c.Dec.
func (c *Capture) RecordDecodeIn(space *simmem.Space) error {
	rec := trace.NewRecorder()
	if err := streamDecode(c.SS, space, rec, rec); err != nil {
		return err
	}
	c.Dec = rec.Finish()
	noteTrace(c.Dec)
	return nil
}

// ReplayOn simulates a captured trace on machine m, reproducing the
// Stats (and per-phase deltas) a live run on m would have counted.
func ReplayOn(m perf.Machine, tr *trace.Trace, bytes int) Result {
	h := m.NewHierarchy()
	pt := newPhaseTracker(h)
	tr.Replay(h, pt)
	usage.replays.Add(1)
	return makeResult(m, h, pt, bytes)
}

// sameL1 reports whether all machines share one L1 geometry, making the
// L1-filtered replay path valid for the set.
func sameL1(machines []perf.Machine) bool {
	for _, m := range machines[1:] {
		if m.L1.SizeBytes != machines[0].L1.SizeBytes ||
			m.L1.LineBytes != machines[0].L1.LineBytes ||
			m.L1.Ways != machines[0].L1.Ways {
			return false
		}
	}
	return true
}

// resultFromStats derives a Result from raw whole-run counters and
// per-phase deltas.
func resultFromStats(m perf.Machine, whole cache.Stats, phases map[string]cache.Stats, bytes int) Result {
	res := Result{
		Machine: m,
		Whole:   perf.Compute(m, whole),
		Phases:  map[string]perf.Metrics{},
		Bytes:   bytes,
	}
	for name, st := range phases {
		res.Phases[name] = perf.Compute(m, st)
	}
	return res
}

// replayL2All simulates an L1-filtered capture on every machine of the
// (same-L1) set.
func replayL2All(machines []perf.Machine, lt *trace.L2Trace, bytes int) []Result {
	results := make([]Result, len(machines))
	for i, m := range machines {
		whole, phases := lt.Replay(m.L2)
		usage.replays.Add(1)
		results[i] = resultFromStats(m, whole, phases, bytes)
	}
	return results
}

// runEncodeFiltered encodes once behind the shared L1 filter and
// replays the L2-bound stream per machine: O(encode + L1 sim) codec
// work for any number of machines.
func runEncodeFiltered(space *simmem.Space, machines []perf.Machine, wl Workload) ([]Result, *codec.SessionStream, error) {
	wl = wl.normalize()
	frames := wl.frames(space)
	f := trace.NewL2Filter(machines[0].L1)
	ss, err := codec.EncodeSession(wl.sessionConfig(), space, f, f, frames)
	if err != nil {
		return nil, nil, err
	}
	lt := f.Trace()
	noteL2Trace(lt)
	return replayL2All(machines, lt, ss.TotalBytes()), ss, nil
}

// runEncodeRecorded captures the full trace once and replays it per
// machine — the general path for machine sets with differing L1s.
func runEncodeRecorded(space *simmem.Space, machines []perf.Machine, wl Workload) ([]Result, *codec.SessionStream, error) {
	c, err := RecordEncodeIn(space, wl)
	if err != nil {
		return nil, nil, err
	}
	results := make([]Result, len(machines))
	for i, m := range machines {
		results[i] = ReplayOn(m, c.Enc, c.SS.TotalBytes())
	}
	return results, c.SS, nil
}

// runDecodeFiltered / runDecodeRecorded mirror the encode variants for
// the playback pipeline.
func runDecodeFiltered(space *simmem.Space, machines []perf.Machine, ss *codec.SessionStream) ([]Result, error) {
	f := trace.NewL2Filter(machines[0].L1)
	if err := streamDecode(ss, space, f, f); err != nil {
		return nil, err
	}
	lt := f.Trace()
	noteL2Trace(lt)
	return replayL2All(machines, lt, ss.TotalBytes()), nil
}

func runDecodeRecorded(space *simmem.Space, machines []perf.Machine, wl Workload, ss *codec.SessionStream) ([]Result, error) {
	c := &Capture{Workload: wl, SS: ss}
	if err := c.RecordDecodeIn(space); err != nil {
		return nil, err
	}
	results := make([]Result, len(machines))
	for i, m := range machines {
		results[i] = ReplayOn(m, c.Dec, ss.TotalBytes())
	}
	return results, nil
}
