package harness

import (
	"context"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/perf"
	"repro/internal/simmem"
)

// policyMachine is the O2 with every cache level under policy p (the
// same hierarchy-wide rule the geometry sweep's policy axis applies).
func policyMachine(p cache.Policy) perf.Machine {
	m := perf.O2R12K1MB()
	m.L1.Policy = p
	m.L2.Policy = p.ForL2()
	return m
}

// TestReplayPolicyAgnostic is the proof the policy axis rests on: a
// full capture records the codec's reference stream BEFORE any cache —
// it is a pure function of the workload — so one capture replayed
// through a policy-configured hierarchy is counter-identical to
// re-running the codec live against that hierarchy, for every policy.
// (The L1-filtered L2Trace is policy-dependent by design: it embeds
// the L1, policy included, and is only replayed behind that exact L1.)
func TestReplayPolicyAgnostic(t *testing.T) {
	wl := Workload{W: 160, H: 128, Frames: 4}
	capture, err := RecordEncodeIn(simmem.NewSpace(0), wl)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range cache.Policies() {
		m := policyMachine(p)
		liveRes, _, err := RunEncodeLiveIn(simmem.NewSpace(0), []perf.Machine{m}, wl)
		if err != nil {
			t.Fatal(err)
		}
		replayed := ReplayOn(m, capture.Enc, capture.SS.TotalBytes())
		requireIdentical(t, "policy "+string(p), []Result{{
			Machine: m, Whole: liveRes[0].Whole, Phases: liveRes[0].Phases, Bytes: replayed.Bytes,
		}}, []Result{replayed})
	}
}

// TestGeometrySweepPolicyMatchesLive: the replayed policy sweep (L1
// filter per policy row + L2 replay per size) equals the re-encode
// baseline configuration for configuration — the filtered half of the
// policy-agnosticism proof.
func TestGeometrySweepPolicyMatchesLive(t *testing.T) {
	wl := Workload{W: 160, H: 128, Frames: 3}
	l1s := PolicyAxisConfigs([]cache.Policy{cache.PolicyLRU, cache.PolicyFIFO, cache.PolicyVictim})
	l2Sizes := []int{512 << 10, 1 << 20}
	replayed, err := RunGeometrySweep(wl, l1s, l2Sizes)
	if err != nil {
		t.Fatal(err)
	}
	live, err := RunGeometrySweepLive(context.Background(), nil, wl, l1s, l2Sizes)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != len(live) || len(replayed) != len(l1s)*len(l2Sizes) {
		t.Fatalf("point counts: %d replayed, %d live", len(replayed), len(live))
	}
	for i := range replayed {
		if replayed[i].Label != live[i].Label {
			t.Fatalf("point %d label %q != %q", i, replayed[i].Label, live[i].Label)
		}
		if replayed[i].Encode.Raw != live[i].Encode.Raw {
			t.Errorf("point %s: replayed stats differ from live\nreplay %+v\nlive   %+v",
				replayed[i].Label, replayed[i].Encode.Raw, live[i].Encode.Raw)
		}
	}
}

// TestPolicySweepDiffersAcrossPolicies: one capture, every policy —
// the sweep must actually measure something. FIFO, random and the
// victim wrapper must diverge from LRU; tree-PLRU must match LRU
// EXACTLY at the paper's 2-way geometry (a 2-way PLRU tree is true
// LRU), which doubles as an end-to-end cross-check of the two access
// paths.
func TestPolicySweepDiffersAcrossPolicies(t *testing.T) {
	wl := Workload{W: 160, H: 128, Frames: 3}
	l2Sizes := []int{512 << 10}
	points, err := RunGeometrySweep(wl, PolicyAxisConfigs(nil), l2Sizes)
	if err != nil {
		t.Fatal(err)
	}
	byPolicy := map[cache.Policy]GeometryPoint{}
	for _, pt := range points {
		p, _ := cache.ParsePolicy(string(pt.L1.Policy))
		byPolicy[p] = pt
	}
	if len(byPolicy) != len(cache.Policies()) {
		t.Fatalf("got %d policy rows, want %d", len(byPolicy), len(cache.Policies()))
	}
	lru := byPolicy[cache.PolicyLRU].Encode.Raw
	if plru := byPolicy[cache.PolicyPLRU].Encode.Raw; plru != lru {
		t.Errorf("plru must equal lru at 2-way geometry\nlru  %+v\nplru %+v", lru, plru)
	}
	for _, p := range []cache.Policy{cache.PolicyFIFO, cache.PolicyRandom, cache.PolicyVictim} {
		if got := byPolicy[p].Encode.Raw; got == lru {
			t.Errorf("policy %s produced stats identical to lru — axis not wired through? %+v", p, got)
		}
	}
}

// TestPolicySpecValidation: the experiment schema rejects unknown
// policy names and impossible policy/geometry combinations with
// errors (the ingress contract the service and manifests rely on).
func TestPolicySpecValidation(t *testing.T) {
	bad := []ExperimentSpec{
		{Sweep: "policy", Policies: []string{"mru"}},
		{Sweep: "geometry", Policies: []string{"plru", "bogus"}},
		{Sweep: "ratio", Policies: []string{"lru"}}, // axis on a sweep without one
		{Table: 2, Policies: []string{"lru"}},
		// tree-PLRU over a 3-way L1 axis entry is impossible.
		{Sweep: "geometry", Policies: []string{"plru"},
			L1s: []cache.Config{{SizeBytes: 96 << 10, LineBytes: 32, Ways: 3}}},
		// A policies list combined with an entry naming its own policy
		// would silently override the entry — rejected instead.
		{Sweep: "geometry", Policies: []string{"fifo"},
			L1s: []cache.Config{{SizeBytes: 32 << 10, LineBytes: 32, Ways: 2, Policy: cache.PolicyPLRU}}},
		{Sweep: "policy", Policies: []string{"fifo"},
			L1s: []cache.Config{{SizeBytes: 32 << 10, LineBytes: 32, Ways: 2, Policy: cache.PolicyLRU}}},
	}
	for _, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("spec %+v validated", e)
		}
	}
	good := []ExperimentSpec{
		{Sweep: "policy"},
		{Sweep: "policy", Policies: []string{"lru", "random"}, L2KB: []int{512}},
		{Sweep: "geometry", Policies: []string{"fifo"}},
		// Per-entry policies without a policies list are the axis as
		// given.
		{Sweep: "policy", L1s: []cache.Config{
			{SizeBytes: 32 << 10, LineBytes: 32, Ways: 2, Policy: cache.PolicyFIFO},
			{SizeBytes: 32 << 10, LineBytes: 32, Ways: 2, Policy: cache.PolicyRandom},
		}},
	}
	for _, e := range good {
		if err := e.Validate(); err != nil {
			t.Errorf("spec %+v rejected: %v", e, err)
		}
	}
	// Per-entry policies are honoured, not expanded or overridden.
	l1s, _, err := good[3].SweepAxes()
	if err != nil {
		t.Fatal(err)
	}
	if len(l1s) != 2 || l1s[0].Policy != cache.PolicyFIFO || l1s[1].Policy != cache.PolicyRandom {
		t.Errorf("explicit per-entry policy axis mangled: %+v", l1s)
	}
}

// TestSameL1IgnoresNameAndPolicySpelling: the shared-L1 filtered
// replay must survive cosmetic config differences (display name, ""
// vs "lru") but not a real policy difference.
func TestSameL1IgnoresNameAndPolicySpelling(t *testing.T) {
	a := perf.O2R12K1MB()
	b := perf.O2R12K1MB()
	b.L1.Name = "L1"
	b.L1.Policy = cache.PolicyLRU // explicit spelling of a's "" default
	if !sameL1([]perf.Machine{a, b}) {
		t.Error("name/spelling differences broke the shared-L1 path")
	}
	c := perf.O2R12K1MB()
	c.L1.Policy = cache.PolicyFIFO
	if sameL1([]perf.Machine{a, c}) {
		t.Error("differing L1 policies must not share one filter")
	}
}

// TestRenderPolicySweep drives the full rendering path (the one the
// CLI, manifests and the service share) and checks the policy rows
// appear labelled in the report.
func TestRenderPolicySweep(t *testing.T) {
	out, err := RenderExperiment(context.Background(), nil,
		ExperimentSpec{Sweep: "policy", Policies: []string{"lru", "fifo"}, L2KB: []int{512}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "replacement policy sweep") {
		t.Errorf("missing title in:\n%s", out)
	}
	if !strings.Contains(out, "fifo") {
		t.Errorf("missing fifo row in:\n%s", out)
	}
	if strings.Contains(out, "lru,") || strings.Contains(out, ", lru") {
		t.Errorf("lru rows must stay unlabelled (pre-policy output shape):\n%s", out)
	}
}
