package harness

import (
	"context"
	"fmt"

	"repro/internal/cache"
	"repro/internal/codec"
	"repro/internal/farm"
	"repro/internal/motion"
	"repro/internal/perf"
	"repro/internal/simmem"
)

// RatioPoint is one point of the processor-to-memory speed sweep: the
// DRAM latency scaled by Factor relative to the baseline machine, with
// the resulting modelled stall fractions.
type RatioPoint struct {
	Factor        float64
	EncodeDRAM    float64 // fraction of encode time stalled on DRAM
	DecodeDRAM    float64
	EncodeSeconds float64
	DecodeSeconds float64
}

// RunRatioSweep performs the study the paper names as future work on
// the default pool; see RunRatioSweepPool.
func RunRatioSweep(wl Workload, factors []float64) ([]RatioPoint, error) {
	return RunRatioSweepPool(context.Background(), nil, wl, factors)
}

// RunRatioSweepPool performs the study the paper names as future work:
// "determine at what ratio of processor-to-memory speed ... the
// performance of MPEG-4 does finally become memory limited". The
// workload is traced once; the timing model is then re-evaluated with
// the DRAM penalty scaled by each factor (counters are
// latency-independent, so this is exact, not an approximation). The
// per-factor re-evaluations fan out through the pool.
func RunRatioSweepPool(ctx context.Context, p *farm.Pool, wl Workload, factors []float64) ([]RatioPoint, error) {
	if len(factors) == 0 {
		factors = []float64{1, 2, 4, 8, 16, 32, 64}
	}
	base := perf.O2R12K1MB()
	encRes, ss, err := RunEncodeCtx(ctx, simmem.NewSpace(0), []perf.Machine{base}, wl)
	if err != nil {
		return nil, err
	}
	decRes, err := RunDecodeCtx(ctx, simmem.NewSpace(0), []perf.Machine{base}, wl, ss)
	if err != nil {
		return nil, err
	}
	encRaw := encRes[0].Whole.Raw
	decRaw := decRes[0].Whole.Raw
	return farm.MapLabeled(ctx, p, factors,
		func(i int, f float64) string { return fmt.Sprintf("ratio/factor=%gx", f) },
		func(ctx context.Context, env farm.Env, f float64) (RatioPoint, error) {
			m := base
			m.DRAMCycles = base.DRAMCycles * f
			e := perf.Compute(m, encRaw)
			d := perf.Compute(m, decRaw)
			return RatioPoint{
				Factor:        f,
				EncodeDRAM:    e.DRAMTimeFrac,
				DecodeDRAM:    d.DRAMTimeFrac,
				EncodeSeconds: e.Seconds,
				DecodeSeconds: d.Seconds,
			}, nil
		})
}

// MemoryBoundCrossover returns the first sweep factor at which decoding
// spends at least half its time in DRAM stalls, or 0 if none does.
func MemoryBoundCrossover(points []RatioPoint) float64 {
	for _, p := range points {
		if p.DecodeDRAM >= 0.5 {
			return p.Factor
		}
	}
	return 0
}

// RatioSweepSeries renders the sweep for display.
func RatioSweepSeries(points []RatioPoint) []perf.Series {
	enc := perf.Series{Label: "DRAM stall fraction vs memory-latency factor (encode)", YUnit: "%"}
	dec := perf.Series{Label: "DRAM stall fraction vs memory-latency factor (decode)", YUnit: "%"}
	for _, p := range points {
		x := fmt.Sprintf("%gx", p.Factor)
		enc.Append(x, p.EncodeDRAM*100)
		dec.Append(x, p.DecodeDRAM*100)
	}
	return []perf.Series{enc, dec}
}

// AblationResult is one configuration of an ablation experiment.
type AblationResult struct {
	Name    string
	Encode  perf.Metrics
	Bytes   int
	Scratch cache.Stats
}

// RunSearchAblation runs the motion-search ablation on the default
// pool; see RunSearchAblationPool.
func RunSearchAblation(wl Workload) ([]AblationResult, error) {
	return RunSearchAblationPool(context.Background(), nil, wl)
}

// RunSearchAblationPool compares full search against diamond search on
// the same workload and machine: the memory-behaviour cost of the
// exhaustive search the paper's locality argument rests on. The two
// configurations encode concurrently on the pool.
func RunSearchAblationPool(ctx context.Context, p *farm.Pool, wl Workload) ([]AblationResult, error) {
	algs := []motion.Algorithm{motion.FullSearch, motion.DiamondSearch}
	return farm.MapLabeled(ctx, p, algs,
		func(i int, alg motion.Algorithm) string { return "search=" + alg.String() },
		func(ctx context.Context, env farm.Env, alg motion.Algorithm) (AblationResult, error) {
			res, ss, err := runEncodeConfiguredIn(env.Space, wl, func(c *codec.Config) { c.SearchAlg = alg })
			if err != nil {
				return AblationResult{}, err
			}
			return AblationResult{Name: "search=" + alg.String(), Encode: res, Bytes: ss.TotalBytes()}, nil
		})
}

// RunPrefetchAblation runs the prefetch-cadence ablation on the default
// pool; see RunPrefetchAblationPool.
func RunPrefetchAblation(wl Workload, intervals []int) ([]AblationResult, error) {
	return RunPrefetchAblationPool(context.Background(), nil, wl, intervals)
}

// RunPrefetchAblationPool sweeps the software-prefetch cadence,
// reproducing the paper's observation that conservative prefetching
// mostly hits L1. One pool job per cadence.
func RunPrefetchAblationPool(ctx context.Context, p *farm.Pool, wl Workload, intervals []int) ([]AblationResult, error) {
	if len(intervals) == 0 {
		intervals = []int{0, 16, 48, 128}
	}
	return farm.MapLabeled(ctx, p, intervals,
		func(i int, iv int) string { return fmt.Sprintf("prefetch=%d", iv) },
		func(ctx context.Context, env farm.Env, iv int) (AblationResult, error) {
			res, ss, err := runEncodeConfiguredIn(env.Space, wl, func(c *codec.Config) { c.PrefetchInterval = iv })
			if err != nil {
				return AblationResult{}, err
			}
			return AblationResult{Name: fmt.Sprintf("prefetch=%d", iv), Encode: res, Bytes: ss.TotalBytes()}, nil
		})
}

// RunStagingAblation runs the staging ablation on the default pool; see
// RunStagingAblationPool.
func RunStagingAblation(wl Workload) ([]AblationResult, error) {
	return RunStagingAblationPool(context.Background(), nil, wl)
}

// RunStagingAblationPool compares the full MoMuSys-style per-VOP
// staging model against a lean codec without it — the design choice
// that dominates L2-level traffic (DESIGN.md).
func RunStagingAblationPool(ctx context.Context, p *farm.Pool, wl Workload) ([]AblationResult, error) {
	return farm.MapLabeled(ctx, p, []bool{false, true},
		func(i int, disable bool) string {
			if disable {
				return "staging=off"
			}
			return "staging=on"
		},
		func(ctx context.Context, env farm.Env, disable bool) (AblationResult, error) {
			name := "staging=on"
			if disable {
				name = "staging=off"
			}
			res, ss, err := runEncodeConfiguredIn(env.Space, wl, func(c *codec.Config) { c.DisableStaging = disable })
			if err != nil {
				return AblationResult{}, err
			}
			return AblationResult{Name: name, Encode: res, Bytes: ss.TotalBytes()}, nil
		})
}

// RunColoringAblation runs the page-coloring ablation on the default
// pool; see RunColoringAblationPool.
func RunColoringAblation(wl Workload) ([]AblationResult, error) {
	return RunColoringAblationPool(context.Background(), nil, wl)
}

// RunColoringAblationPool compares cache-coloured allocation against
// naive page-aligned allocation: without colouring, the three planes of
// the masked SAD kernel fall into the same L1 set and thrash. Each
// configuration gets its own job (and so its own Space to colour or
// not).
func RunColoringAblationPool(ctx context.Context, p *farm.Pool, wl Workload) ([]AblationResult, error) {
	return farm.MapLabeled(ctx, p, []bool{true, false},
		func(i int, color bool) string {
			if color {
				return "coloring=on"
			}
			return "coloring=off"
		},
		func(ctx context.Context, env farm.Env, color bool) (AblationResult, error) {
			name := "coloring=on"
			space := env.Space
			if !color {
				name = "coloring=off"
				space.DisableColoring()
			}
			res, ss, err := runEncodeInSpace(wl, space)
			if err != nil {
				return AblationResult{}, err
			}
			return AblationResult{Name: name, Encode: res, Bytes: ss.TotalBytes()}, nil
		})
}

// runEncodeConfiguredIn encodes wl on the O2 model in the given address
// space with a modified codec configuration.
func runEncodeConfiguredIn(space *simmem.Space, wl Workload, mod func(*codec.Config)) (perf.Metrics, *codec.SessionStream, error) {
	wl = wl.normalize()
	frames := wl.frames(space)
	m := perf.O2R12K1MB()
	h := m.NewHierarchy()
	cfg := wl.sessionConfig()
	mod(&cfg.Object)
	ss, err := codec.EncodeSession(cfg, space, h, nil, frames)
	if err != nil {
		return perf.Metrics{}, nil, err
	}
	return perf.Compute(m, h.Snapshot()), ss, nil
}

func runEncodeInSpace(wl Workload, space *simmem.Space) (perf.Metrics, *codec.SessionStream, error) {
	wl = wl.normalize()
	frames := wl.frames(space)
	m := perf.O2R12K1MB()
	h := m.NewHierarchy()
	ss, err := codec.EncodeSession(wl.sessionConfig(), space, h, nil, frames)
	if err != nil {
		return perf.Metrics{}, nil, err
	}
	return perf.Compute(m, h.Snapshot()), ss, nil
}

// FormatAblation renders ablation results as an aligned text block.
func FormatAblation(title string, results []AblationResult) string {
	out := title + "\n"
	out += fmt.Sprintf("  %-16s %9s %9s %10s %12s %10s\n",
		"config", "L1miss%", "L2miss%", "DRAM%", "L2DRAM MB/s", "bytes")
	for _, r := range results {
		out += fmt.Sprintf("  %-16s %8.3f%% %8.2f%% %9.2f%% %12.1f %10d\n",
			r.Name, r.Encode.L1MissRate*100, r.Encode.L2MissRate*100,
			r.Encode.DRAMTimeFrac*100, r.Encode.L2DRAMMBps, r.Bytes)
	}
	return out
}
