package harness

import (
	"context"
	"sync"
	"testing"

	"repro/internal/perf"
	"repro/internal/simmem"
)

// TestStudyContextPlumbing: a Study carried through the context scopes
// both the strategy and the usage accounting, leaving the process
// default untouched.
func TestStudyContextPlumbing(t *testing.T) {
	ResetTraceUsage()
	wl := Workload{W: 96, H: 80, Frames: 2}
	s := NewStudy(true)
	ctx := WithStudy(context.Background(), s)
	if StudyFrom(ctx) != s {
		t.Fatal("StudyFrom did not return the attached study")
	}
	if StudyFrom(context.Background()) == s {
		t.Fatal("bare context resolved to the attached study")
	}
	if _, _, err := RunEncodeCtx(ctx, simmem.NewSpace(0), perf.PaperMachines(), wl); err != nil {
		t.Fatal(err)
	}
	if u := s.Usage(); u.L2Traces != 1 || u.Replays != 3 {
		t.Fatalf("study usage after filtered encode: %+v", u)
	}
	if u := TraceUsageSnapshot(); !u.Zero() {
		t.Fatalf("scoped run leaked into the default study: %+v", u)
	}
}

// TestConcurrentStudiesDistinctStrategies is the regression test for
// the process-global replay state: two studies running concurrently in
// one process, one in capture-and-replay mode and one on the legacy
// live path, must neither race (run under -race in CI) nor observe each
// other's strategy or usage counters.
func TestConcurrentStudiesDistinctStrategies(t *testing.T) {
	ResetTraceUsage()
	wl := Workload{W: 96, H: 80, Frames: 2}
	machines := perf.PaperMachines()

	type studyRun struct {
		study   *Study
		results []Result
		err     error
	}
	runs := [2]studyRun{
		{study: NewStudy(true)},
		{study: NewStudy(false)},
	}
	const rounds = 3
	var wg sync.WaitGroup
	for i := range runs {
		wg.Add(1)
		go func(r *studyRun) {
			defer wg.Done()
			ctx := WithStudy(context.Background(), r.study)
			for round := 0; round < rounds; round++ {
				r.results, _, r.err = RunEncodeCtx(ctx, simmem.NewSpace(0), machines, wl)
				if r.err != nil {
					return
				}
			}
		}(&runs[i])
	}
	wg.Wait()

	for i := range runs {
		if runs[i].err != nil {
			t.Fatalf("study %d: %v", i, runs[i].err)
		}
	}
	// Strategy isolation shows up in the usage counters: the replay
	// study captured one L2 trace per run and served every machine from
	// it; the live study never captured anything.
	if u := runs[0].study.Usage(); u.L2Traces != rounds || u.Replays != rounds*uint64(len(machines)) {
		t.Fatalf("replay study usage: %+v, want %d traces / %d replays",
			u, rounds, rounds*len(machines))
	}
	if u := runs[1].study.Usage(); !u.Zero() {
		t.Fatalf("live study recorded captures: %+v", u)
	}
	if u := TraceUsageSnapshot(); !u.Zero() {
		t.Fatalf("concurrent studies leaked into the default study: %+v", u)
	}
	// Both strategies must agree on the simulated counters regardless of
	// what ran next to them.
	requireIdentical(t, "concurrent strategies", runs[0].results, runs[1].results)
}

// TestStudyStrategyToggleIsScoped: flipping one study's strategy does
// not affect another study or the package default.
func TestStudyStrategyToggleIsScoped(t *testing.T) {
	a, b := NewStudy(true), NewStudy(true)
	a.SetReplayEnabled(false)
	if a.ReplayEnabled() {
		t.Fatal("study A toggle did not stick")
	}
	if !b.ReplayEnabled() {
		t.Fatal("study A toggle leaked into study B")
	}
	if !ReplayEnabled() {
		t.Fatal("study A toggle leaked into the process default")
	}
}
