package harness

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/cache"
	"repro/internal/farm"
	"repro/internal/perf"
	"repro/internal/simmem"
	"repro/internal/trace"
)

// TestParallelReplayEndToEndIdentical is the harness-level acceptance
// test for chunk-speculative replay: the same capture produces
// byte-identical Results with one replay worker (the pre-parallel
// serial path) and with several (parallel L1 filter + parallel L2
// replay + fused multi-config pass). The workload is sized so the
// trace spans multiple speculation chunks at both layers — small
// traces would silently fall back to the serial engine and prove
// nothing.
func TestParallelReplayEndToEndIdentical(t *testing.T) {
	defer trace.SetReplayWorkers(0)
	wl := Workload{W: 352, H: 288, Frames: 2}
	capture, err := RecordEncodeIn(simmem.NewSpace(0), wl)
	if err != nil {
		t.Fatal(err)
	}

	// Single-machine replay on every paper machine.
	for _, m := range perf.PaperMachines() {
		trace.SetReplayWorkers(1)
		serial := ReplayOn(m, capture.Enc, capture.SS.TotalBytes())
		trace.SetReplayWorkers(4)
		par := ReplayOn(m, capture.Enc, capture.SS.TotalBytes())
		if !reflect.DeepEqual(serial, par) {
			t.Errorf("%s: parallel replay differs\nserial   %+v\nparallel %+v",
				m.Label(), serial, par)
		}
	}

	// Local geometry sweep: parallel filter feeding the fused
	// multi-size L2 pass.
	pool := farm.Default()
	l1s := GeometryL1Configs()[:2]
	l2Sizes := []int{256 << 10, 1 << 20, 2 << 20}
	trace.SetReplayWorkers(1)
	serialPts, err := RunGeometrySweepFromTrace(context.Background(), pool, capture.Enc, l1s, l2Sizes)
	if err != nil {
		t.Fatal(err)
	}
	trace.SetReplayWorkers(4)
	parPts, err := RunGeometrySweepFromTrace(context.Background(), pool, capture.Enc, l1s, l2Sizes)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serialPts, parPts) {
		for i := range serialPts {
			if !reflect.DeepEqual(serialPts[i], parPts[i]) {
				t.Fatalf("geometry point %d differs\nserial   %+v\nparallel %+v",
					i, serialPts[i], parPts[i])
			}
		}
		t.Fatal("geometry sweeps differ")
	}

	// Fused policy sweep: non-LRU policies must route through the
	// serial fallback and still match exactly.
	pl1s := PolicyAxisConfigs([]cache.Policy{
		cache.PolicyLRU, cache.PolicyPLRU, cache.PolicyFIFO, cache.PolicyRandom, cache.PolicyVictim,
	})
	trace.SetReplayWorkers(1)
	serialPol, err := RunGeometrySweepFromTrace(context.Background(), pool, capture.Enc, pl1s, []int{512 << 10, 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	trace.SetReplayWorkers(4)
	parPol, err := RunGeometrySweepFromTrace(context.Background(), pool, capture.Enc, pl1s, []int{512 << 10, 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serialPol, parPol) {
		t.Fatal("policy sweeps differ between serial and parallel replay")
	}
}
