// Package harness runs the paper's experiments: it generates the
// synthetic workloads, drives the instrumented codec over the simulated
// memory hierarchies of the three SGI platforms, and derives the metric
// tables (Tables 2–8) and figure series (Figures 2–4).
package harness

import (
	"context"
	"fmt"

	"repro/internal/cache"
	"repro/internal/codec"
	"repro/internal/perf"
	"repro/internal/simmem"
	"repro/internal/video"
	"repro/internal/vop"
)

// Workload describes one experimental input configuration.
type Workload struct {
	W, H    int
	Frames  int
	Objects int // 1 = single rectangular VO; >1 = background + shaped objects
	Layers  int // 1 or 2
	Seed    int64
	QP      int // 0 = default (8)
}

// DefaultFrames is the default sequence length. The paper uses 30-frame
// clips; rates and ratios are insensitive to run length (asserted by a
// test), so the default trades trace time for identical metrics.
const DefaultFrames = 6

// normalize fills defaults.
func (wl Workload) normalize() Workload {
	if wl.Frames <= 0 {
		wl.Frames = DefaultFrames
	}
	if wl.Objects <= 0 {
		wl.Objects = 1
	}
	if wl.Layers <= 0 {
		wl.Layers = 1
	}
	if wl.Seed == 0 {
		wl.Seed = 1
	}
	if wl.QP <= 0 {
		wl.QP = 8
	}
	return wl
}

// Label names the workload as the paper's tables do.
func (wl Workload) Label() string {
	return fmt.Sprintf("%dx%d", wl.W, wl.H)
}

// sessionConfig builds the codec session configuration for the workload.
func (wl Workload) sessionConfig() codec.SessionConfig {
	obj := codec.DefaultConfig(wl.W, wl.H)
	obj.QP = wl.QP
	obj.Shape = wl.Objects > 1
	return codec.SessionConfig{Object: obj, Objects: wl.Objects, Layers: wl.Layers}
}

// frames renders the per-object input sequences (untraced: frame
// synthesis stands in for the camera/disk source, which the paper's
// counters of course also exclude from the codec's cache behaviour only
// in the sense that the input is read through the codec's own loads —
// which our encoder's gather kernels do trace).
func (wl Workload) frames(space *simmem.Space) [][]*video.Frame {
	synth := video.NewSynth(wl.W, wl.H, wl.Seed)
	out := make([][]*video.Frame, wl.Objects)
	if wl.Objects == 1 {
		out[0] = synth.Sequence(space, wl.Frames)
		return out
	}
	for o := 0; o < wl.Objects; o++ {
		if o == 0 {
			out[o] = synth.ObjectSequence(space, -1, wl.Frames) // background
		} else {
			out[o] = synth.ObjectSequence(space, o-1, wl.Frames)
		}
	}
	return out
}

// Result bundles the measurements of one run on one machine.
type Result struct {
	Machine perf.Machine
	Whole   perf.Metrics
	Phases  map[string]perf.Metrics
	Bytes   int // coded stream size (encode runs)
}

// phaseTracker implements codec.PhaseRecorder over a hierarchy,
// accumulating counter deltas per phase name.
type phaseTracker struct {
	h     *cache.Hierarchy
	start map[string]cache.Stats
	acc   map[string]cache.Stats
}

func newPhaseTracker(h *cache.Hierarchy) *phaseTracker {
	return &phaseTracker{h: h, start: map[string]cache.Stats{}, acc: map[string]cache.Stats{}}
}

func (p *phaseTracker) PhaseBegin(name string) { p.start[name] = p.h.Snapshot() }

func (p *phaseTracker) PhaseEnd(name string) {
	s, ok := p.start[name]
	if !ok {
		return
	}
	delete(p.start, name)
	p.acc[name] = p.acc[name].Add(p.h.Snapshot().Sub(s))
}

// multiPhases fans phase events to several trackers.
type multiPhases []*phaseTracker

func (m multiPhases) PhaseBegin(n string) {
	for _, p := range m {
		p.PhaseBegin(n)
	}
}

func (m multiPhases) PhaseEnd(n string) {
	for _, p := range m {
		p.PhaseEnd(n)
	}
}

// RunEncode encodes the workload once, measured on all machines, and
// returns one Result per machine plus the session stream for subsequent
// decode experiments.
func RunEncode(machines []perf.Machine, wl Workload) ([]Result, *codec.SessionStream, error) {
	return RunEncodeIn(simmem.NewSpace(0), machines, wl)
}

// RunEncodeIn is RunEncode in a caller-provided simulated address
// space. The experiment farm passes each job's isolated Space here, so
// concurrent runs can never share allocator state. Strategy and usage
// accounting come from the process-default Study; use RunEncodeCtx to
// scope them to a request.
func RunEncodeIn(space *simmem.Space, machines []perf.Machine, wl Workload) ([]Result, *codec.SessionStream, error) {
	return RunEncodeCtx(context.Background(), space, machines, wl)
}

// RunEncodeCtx is RunEncodeIn with the simulation strategy and usage
// accounting taken from the context's Study (see WithStudy; a bare
// context uses the process default, which the CLI flags configure).
//
// Multi-machine sets run in capture-and-replay mode (unless the study
// disables it): machines sharing one L1 geometry — the paper's three
// platforms — cost one codec run plus one L1 simulation, with each
// machine served by a replay of the L2-bound stream; machine sets with
// differing L1s replay a full recorded trace per machine. Either way
// the Stats are counter-identical to the live path (see
// replay_test.go).
func RunEncodeCtx(ctx context.Context, space *simmem.Space, machines []perf.Machine, wl Workload) ([]Result, *codec.SessionStream, error) {
	s := StudyFrom(ctx)
	if len(machines) > 1 && s.ReplayEnabled() {
		if sameL1(machines) {
			return runEncodeFiltered(s, space, machines, wl)
		}
		return runEncodeRecorded(ctx, space, machines, wl)
	}
	return RunEncodeLiveIn(space, machines, wl)
}

// RunEncodeLiveIn is the legacy simulation strategy: every machine's
// hierarchy is attached to the codec run and simulates inline. It is
// the baseline the replay benchmarks compare against, and the fallback
// when replay is disabled.
func RunEncodeLiveIn(space *simmem.Space, machines []perf.Machine, wl Workload) ([]Result, *codec.SessionStream, error) {
	wl = wl.normalize()
	frames := wl.frames(space)

	hiers := make([]*cache.Hierarchy, len(machines))
	trackers := make(multiPhases, len(machines))
	tracers := make([]simmem.Tracer, len(machines))
	for i, m := range machines {
		hiers[i] = m.NewHierarchy()
		trackers[i] = newPhaseTracker(hiers[i])
		tracers[i] = hiers[i]
	}

	ss, err := codec.EncodeSession(wl.sessionConfig(), space, simmem.Combine(tracers...), trackers, frames)
	if err != nil {
		return nil, nil, err
	}
	results := make([]Result, len(machines))
	for i, m := range machines {
		results[i] = makeResult(m, hiers[i], trackers[i], ss.TotalBytes())
	}
	return results, ss, nil
}

// RunDecode decodes a previously encoded session on all machines as a
// streaming playback pipeline: VOPs are decoded in coding order,
// reordered to display order, enhanced (two-layer sessions), composed
// into the scene (multi-object sessions) and their buffers recycled —
// the stable resident set of a real-time player, which the paper's
// machines measure.
func RunDecode(machines []perf.Machine, wl Workload, ss *codec.SessionStream) ([]Result, error) {
	return RunDecodeIn(simmem.NewSpace(0), machines, wl, ss)
}

// RunDecodeIn is RunDecode in a caller-provided simulated address
// space (see RunEncodeIn for the simulation strategies and study
// scoping).
func RunDecodeIn(space *simmem.Space, machines []perf.Machine, wl Workload, ss *codec.SessionStream) ([]Result, error) {
	return RunDecodeCtx(context.Background(), space, machines, wl, ss)
}

// RunDecodeCtx is RunDecodeIn with strategy and usage accounting taken
// from the context's Study (see RunEncodeCtx).
func RunDecodeCtx(ctx context.Context, space *simmem.Space, machines []perf.Machine, wl Workload, ss *codec.SessionStream) ([]Result, error) {
	s := StudyFrom(ctx)
	if len(machines) > 1 && s.ReplayEnabled() {
		if sameL1(machines) {
			return runDecodeFiltered(s, space, machines, ss)
		}
		return runDecodeRecorded(ctx, space, machines, wl.normalize(), ss)
	}
	return RunDecodeLiveIn(space, machines, wl, ss)
}

// RunDecodeLiveIn is the legacy inline-simulation decode path (see
// RunEncodeLiveIn).
func RunDecodeLiveIn(space *simmem.Space, machines []perf.Machine, wl Workload, ss *codec.SessionStream) ([]Result, error) {
	hiers := make([]*cache.Hierarchy, len(machines))
	trackers := make(multiPhases, len(machines))
	tracers := make([]simmem.Tracer, len(machines))
	for i, m := range machines {
		hiers[i] = m.NewHierarchy()
		trackers[i] = newPhaseTracker(hiers[i])
		tracers[i] = hiers[i]
	}

	if err := streamDecode(ss, space, simmem.Combine(tracers...), trackers); err != nil {
		return nil, err
	}
	results := make([]Result, len(machines))
	for i, m := range machines {
		results[i] = makeResult(m, hiers[i], trackers[i], ss.TotalBytes())
	}
	return results, nil
}

// streamDecode is the playback loop: per coding step it decodes one VOP
// of every object, then drains all display frames that became ready —
// enhancement application and buffer release. Scene composition is NOT
// part of the measured loop: the reference decoder writes per-object
// output (composition happens offline), and the paper's counters cover
// the decoder binary only. The per-VOP display write is modelled inside
// the decoder (its display stager).
func streamDecode(ss *codec.SessionStream, space *simmem.Space, t simmem.Tracer, ph codec.PhaseRecorder) error {
	nObj := ss.Objects
	decs := make([]*codec.Decoder, nObj)
	for o := 0; o < nObj; o++ {
		decs[o] = codec.NewDecoder(space, t, ph)
		if err := decs[o].Begin(ss.Base[o]); err != nil {
			return fmt.Errorf("object %d header: %w", o, err)
		}
	}
	var enh []*codec.EnhDecoder
	if ss.Layers == 2 {
		enh = make([]*codec.EnhDecoder, nObj)
		for o := 0; o < nObj; o++ {
			enh[o] = codec.NewEnhDecoder(space, t, ph)
			if err := enh[o].Begin(ss.Enh[o]); err != nil {
				return fmt.Errorf("object %d enhancement header: %w", o, err)
			}
		}
	}
	n := decs[0].NFrames()
	rbs := make([]vop.ReorderBuffer, nObj)
	ready := make([][]*video.Frame, nObj) // display-order queues
	byDisp := make([]map[int]*video.Frame, nObj)
	for o := range byDisp {
		byDisp[o] = map[int]*video.Frame{}
	}

	for step := 0; step < n; step++ {
		for o := 0; o < nObj; o++ {
			it, f, err := decs[o].DecodeNext()
			if err != nil {
				return fmt.Errorf("object %d step %d: %w", o, step, err)
			}
			byDisp[o][it.Display] = f
			for _, e := range rbs[o].Push(it) {
				ready[o] = append(ready[o], byDisp[o][e.Display])
				delete(byDisp[o], e.Display)
			}
		}
		if err := drainReady(ready, enh, decs); err != nil {
			return err
		}
	}
	for o := 0; o < nObj; o++ {
		for _, e := range rbs[o].Flush() {
			ready[o] = append(ready[o], byDisp[o][e.Display])
			delete(byDisp[o], e.Display)
		}
	}
	if err := drainReady(ready, enh, decs); err != nil {
		return err
	}
	for o := 0; o < nObj; o++ {
		if err := decs[o].CheckEnd(); err != nil {
			return err
		}
		if enh != nil {
			if err := enh[o].End(); err != nil {
				return err
			}
		}
	}
	return nil
}

// drainReady processes every frame index for which all objects have a
// ready frame: enhancement application, then buffer release.
func drainReady(ready [][]*video.Frame, enh []*codec.EnhDecoder, decs []*codec.Decoder) error {
	for {
		for _, q := range ready {
			if len(q) == 0 {
				return nil
			}
		}
		layers := make([]*video.Frame, len(ready))
		for o := range ready {
			layers[o] = ready[o][0]
			ready[o] = ready[o][1:]
		}
		if enh != nil {
			for o, f := range layers {
				if err := enh[o].ApplyNext(f); err != nil {
					return fmt.Errorf("object %d enhancement: %w", o, err)
				}
			}
		}
		for o, f := range layers {
			decs[o].Release(f)
		}
	}
}

// EncodeDecode runs both directions, returning (encode, decode) results.
func EncodeDecode(machines []perf.Machine, wl Workload) ([]Result, []Result, error) {
	encRes, ss, err := RunEncode(machines, wl)
	if err != nil {
		return nil, nil, err
	}
	decRes, err := RunDecode(machines, wl, ss)
	if err != nil {
		return nil, nil, err
	}
	return encRes, decRes, nil
}

func makeResult(m perf.Machine, h *cache.Hierarchy, tr *phaseTracker, bytes int) Result {
	return resultFromStats(m, h.Snapshot(), tr.acc, bytes)
}
