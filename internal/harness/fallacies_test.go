package harness

import (
	"testing"

	"repro/internal/perf"
)

// These integration tests assert the paper's five refuted fallacies
// (Section 3.2) as invariants of the reproduction, at reduced scale.
// Each test name states the fallacy; the assertions encode the paper's
// refutation.

// Fallacy 1: "MPEG-4 exhibits streaming references." Refutation: primary
// cache behaviour is nearly optimal — high hit rates and high line reuse.
func TestFallacyStreamingReferences(t *testing.T) {
	machines := perf.PaperMachines()
	encRes, decRes, err := EncodeDecode(machines, Workload{W: 320, H: 256, Frames: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range encRes {
		if r.Whole.L1MissRate > 0.005 {
			t.Errorf("encode %s: L1 miss rate %.3f%% exceeds 0.5%%", r.Machine.Label(), r.Whole.L1MissRate*100)
		}
		if r.Whole.L1LineReuse < 200 {
			t.Errorf("encode %s: L1 line reuse %.0f below 200", r.Machine.Label(), r.Whole.L1LineReuse)
		}
	}
	for _, r := range decRes {
		if r.Whole.L1MissRate > 0.02 {
			t.Errorf("decode %s: L1 miss rate %.3f%% exceeds 2%%", r.Machine.Label(), r.Whole.L1MissRate*100)
		}
		if r.Whole.L1LineReuse < 50 {
			t.Errorf("decode %s: L1 line reuse %.0f below 50", r.Machine.Label(), r.Whole.L1LineReuse)
		}
	}
}

// Fallacy 2: "MPEG-4 is bound by DRAM latency." Refutation: processor
// stall time waiting for DRAM stays modest (paper: <= ~12% worst case),
// and conservative software prefetching is mostly wasted (over half of
// prefetches hit L1).
func TestFallacyDRAMLatencyBound(t *testing.T) {
	machines := perf.PaperMachines()
	encRes, decRes, err := EncodeDecode(machines, Workload{W: 320, H: 256, Frames: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range append(encRes, decRes...) {
		if r.Whole.DRAMTimeFrac > 0.15 {
			t.Errorf("%s: DRAM stall %.1f%% exceeds 15%%", r.Machine.Label(), r.Whole.DRAMTimeFrac*100)
		}
	}
	for _, r := range encRes {
		if !r.Machine.HasPrefetchHitCounter {
			continue
		}
		hitFrac := 1 - r.Whole.PrefetchL1Miss
		if hitFrac < 0.5 {
			t.Errorf("%s: only %.0f%% of prefetches hit L1; expected wasted prefetching (>50%%)",
				r.Machine.Label(), hitFrac*100)
		}
	}
}

// Fallacy 3: "MPEG-4 is hungry for bus bandwidth." Refutation: only a
// few percent of the sustained bus bandwidth is consumed.
func TestFallacyBusBandwidthBound(t *testing.T) {
	machines := perf.PaperMachines()
	encRes, decRes, err := EncodeDecode(machines, Workload{W: 320, H: 256, Frames: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range append(encRes, decRes...) {
		if r.Whole.BusUtilization > 0.10 {
			t.Errorf("%s: bus utilisation %.1f%% exceeds 10%% of sustained bandwidth",
				r.Machine.Label(), r.Whole.BusUtilization*100)
		}
	}
}

// Fallacy 4: "Memory performance degrades with growing image size."
// Refutation: cache performance is roughly independent of frame size
// (and some metrics improve).
func TestFallacyImageSizeDegradation(t *testing.T) {
	if testing.Short() {
		t.Skip("size sweep is slow")
	}
	m := []perf.Machine{perf.O2R12K1MB()}
	sizes := [][2]int{{160, 128}, {320, 256}, {480, 384}}
	var l1 []float64
	for _, sz := range sizes {
		wl := Workload{W: sz[0], H: sz[1], Frames: 5}
		_, decRes, err := EncodeDecode(m, wl)
		if err != nil {
			t.Fatal(err)
		}
		l1 = append(l1, decRes[0].Whole.L1MissRate)
	}
	// Tripling the frame area must not even double the L1 miss rate.
	for i := 1; i < len(l1); i++ {
		if l1[i] > 2*l1[0] {
			t.Errorf("L1 miss rate grew with image size: %v", l1)
		}
	}
}

// Fallacy 5: "Memory performance degrades as the number of visual
// objects and layers grows." Refutation: miss rates stay flat or improve
// ("improving under pressure").
func TestFallacyObjectLayerDegradation(t *testing.T) {
	if testing.Short() {
		t.Skip("object sweep is slow")
	}
	m := []perf.Machine{perf.OnyxR10K2MB()}
	configs := []struct{ obj, lay int }{{1, 1}, {3, 1}, {3, 2}}
	var encL1, decL1 []float64
	for _, c := range configs {
		encRes, decRes, err := EncodeDecode(m, Workload{W: 160, H: 128, Frames: 6, Objects: c.obj, Layers: c.lay})
		if err != nil {
			t.Fatal(err)
		}
		encL1 = append(encL1, encRes[0].Whole.L1MissRate)
		decL1 = append(decL1, decRes[0].Whole.L1MissRate)
	}
	// The claim is "does not change noticeably"; at this reduced frame
	// size the per-object constant costs weigh relatively more than at
	// PAL size, so allow 2x headroom. All rates stay well under 1%.
	for i := 1; i < len(encL1); i++ {
		if encL1[i] > encL1[0]*2.0 {
			t.Errorf("encode L1 miss rate degraded with objects/layers: %v", encL1)
		}
		if decL1[i] > decL1[0]*2.0 {
			t.Errorf("decode L1 miss rate degraded with objects/layers: %v", decL1)
		}
	}
	// The paper's headline paradox — decoding *improves* going from one
	// layer to two ("improving under pressure") — must reproduce.
	if decL1[2] >= decL1[1] {
		t.Errorf("decode did not improve from 3VO/1L to 3VO/2L: %v", decL1)
	}
}

// The paper's concluding observation: even on non-SIMD hardware "the
// performance bottleneck is still the fetch/issue rate" — execution is
// dominated by issue-bound cycles, not memory stalls.
func TestConclusionFetchIssueBound(t *testing.T) {
	machines := perf.PaperMachines()
	encRes, decRes, err := EncodeDecode(machines, Workload{W: 320, H: 256, Frames: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range append(encRes, decRes...) {
		if r.Whole.IssueTimeFrac < 0.75 {
			t.Errorf("%s: only %.0f%% of time issue-bound; memory dominates unexpectedly",
				r.Machine.Label(), r.Whole.IssueTimeFrac*100)
		}
	}
}
