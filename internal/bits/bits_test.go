package bits

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPutBitsRoundTrip(t *testing.T) {
	cases := []struct {
		v uint32
		n uint
	}{
		{0, 1}, {1, 1}, {0b101, 3}, {0xFF, 8}, {0x12345, 20},
		{0xFFFFFFFF, 32}, {0, 32}, {7, 5},
	}
	w := NewWriter(16)
	for _, c := range cases {
		w.PutBits(c.v, c.n)
	}
	r := NewReader(w.Bytes())
	for i, c := range cases {
		got, err := r.Bits(c.n)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got != c.v {
			t.Errorf("case %d: got %#x want %#x", i, got, c.v)
		}
	}
}

func TestPutBitsWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for width > 32")
		}
	}()
	var w Writer
	w.PutBits(0, 33)
}

func TestBitsPastEnd(t *testing.T) {
	r := NewReader([]byte{0xAB})
	if _, err := r.Bits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Bit(); err != ErrEndOfStream {
		t.Fatalf("got %v want ErrEndOfStream", err)
	}
	if _, err := r.Bits(4); err != ErrEndOfStream {
		t.Fatalf("got %v want ErrEndOfStream", err)
	}
}

func TestQuickRandomBitSequences(t *testing.T) {
	f := func(seed int64, count uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(count)%200 + 1
		type item struct {
			v uint32
			w uint
		}
		items := make([]item, n)
		w := NewWriter(64)
		for i := range items {
			width := uint(rng.Intn(32) + 1)
			v := rng.Uint32() & (0xFFFFFFFF >> (32 - width))
			items[i] = item{v, width}
			w.PutBits(v, width)
		}
		r := NewReader(w.Bytes())
		for _, it := range items {
			got, err := r.Bits(it.w)
			if err != nil || got != it.v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestExpGolombRoundTrip(t *testing.T) {
	w := NewWriter(64)
	vals := []uint32{0, 1, 2, 3, 7, 8, 100, 65535, 1 << 20}
	for _, v := range vals {
		w.PutUE(v)
	}
	svals := []int32{0, 1, -1, 2, -2, 1000, -100000}
	for _, v := range svals {
		w.PutSE(v)
	}
	r := NewReader(w.Bytes())
	for _, v := range vals {
		got, err := r.UE()
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Errorf("UE got %d want %d", got, v)
		}
	}
	for _, v := range svals {
		got, err := r.SE()
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Errorf("SE got %d want %d", got, v)
		}
	}
}

func TestQuickExpGolomb(t *testing.T) {
	f := func(v uint32) bool {
		v &= 0x3FFFFFFF
		w := NewWriter(8)
		w.PutUE(v)
		r := NewReader(w.Bytes())
		got, err := r.UE()
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	g := func(v int32) bool {
		v %= 1 << 28
		w := NewWriter(8)
		w.PutSE(v)
		r := NewReader(w.Bytes())
		got, err := r.SE()
		return err == nil && got == v
	}
	if err := quick.Check(g, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStartcodeEmissionAndScan(t *testing.T) {
	w := NewWriter(64)
	w.PutBits(0b1011, 4) // unaligned payload before the startcode
	w.PutStartcode(SCVOP)
	w.PutBits(0xDEAD, 16)
	w.PutStartcode(SCEndOfSequence)
	data := w.Bytes()

	r := NewReader(data)
	sc, err := r.NextStartcode()
	if err != nil {
		t.Fatal(err)
	}
	if sc != SCVOP {
		t.Fatalf("first startcode %#x want %#x", sc, SCVOP)
	}
	v, err := r.Bits(16)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xDEAD {
		t.Fatalf("payload %#x want 0xDEAD", v)
	}
	sc, err = r.NextStartcode()
	if err != nil {
		t.Fatal(err)
	}
	if sc != SCEndOfSequence {
		t.Fatalf("second startcode %#x want %#x", sc, SCEndOfSequence)
	}
	if _, err := r.NextStartcode(); err != ErrEndOfStream {
		t.Fatalf("expected ErrEndOfStream, got %v", err)
	}
}

func TestStuffingAlignment(t *testing.T) {
	// Aligned: stuffing writes a full 0x7F byte.
	w := NewWriter(8)
	w.PutBits(0xFF, 8)
	w.AlignStuffing()
	b := w.Bytes()
	if len(b) != 2 || b[1] != 0x7F {
		t.Fatalf("aligned stuffing got % x want ff 7f", b)
	}
	// Unaligned: zero then ones.
	w.Reset()
	w.PutBits(0b1, 1)
	w.AlignStuffing()
	b = w.Bytes()
	if len(b) != 1 || b[0] != 0xBF { // 1 0 111111
		t.Fatalf("unaligned stuffing got % x want bf", b)
	}
}

func TestAlignSkipStuffing(t *testing.T) {
	w := NewWriter(8)
	w.PutBits(0b101, 3)
	w.AlignStuffing()
	w.PutBits(0xCC, 8)
	r := NewReader(w.Bytes())
	if _, err := r.Bits(3); err != nil {
		t.Fatal(err)
	}
	r.AlignSkipStuffing()
	v, err := r.Bits(8)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xCC {
		t.Fatalf("after stuffing got %#x want 0xCC", v)
	}

	// Aligned case with explicit 0x7F stuffing byte.
	w.Reset()
	w.PutBits(0xAA, 8)
	w.AlignStuffing()
	w.PutBits(0xBB, 8)
	r = NewReader(w.Bytes())
	if _, err := r.Bits(8); err != nil {
		t.Fatal(err)
	}
	r.AlignSkipStuffing()
	v, err = r.Bits(8)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xBB {
		t.Fatalf("after aligned stuffing got %#x want 0xBB", v)
	}
}

func TestAtStartcode(t *testing.T) {
	w := NewWriter(16)
	w.PutStartcode(SCGOV)
	data := w.Bytes()
	r := NewReader(data)
	if !r.AtStartcode() {
		t.Fatal("expected startcode at position 0")
	}
	// After a stuffing byte.
	w.Reset()
	w.PutBits(0x12, 8)
	w.PutStartcode(SCVOP) // aligned, so stuffing byte 0x7F precedes
	r = NewReader(w.Bytes())
	r.Skip(8)
	if !r.AtStartcode() {
		t.Fatal("expected startcode after stuffing byte")
	}
}

func TestPeekDoesNotConsume(t *testing.T) {
	r := NewReader([]byte{0xF0, 0x0F})
	if got := r.Peek(4); got != 0xF {
		t.Fatalf("peek got %#x", got)
	}
	if got := r.Peek(8); got != 0xF0 {
		t.Fatalf("peek got %#x", got)
	}
	v, _ := r.Bits(16)
	if v != 0xF00F {
		t.Fatalf("read got %#x", v)
	}
	// Peek past end reads zeros.
	if got := r.Peek(8); got != 0 {
		t.Fatalf("peek past end got %#x", got)
	}
}

func TestWriterLenAndRemaining(t *testing.T) {
	var w Writer
	w.PutBits(0, 13)
	if w.Len() != 13 {
		t.Fatalf("Len got %d want 13", w.Len())
	}
	r := NewReader(w.Bytes())
	if r.Remaining() != 16 {
		t.Fatalf("Remaining got %d want 16 (padded)", r.Remaining())
	}
	r.Skip(20)
	if r.Remaining() != 0 {
		t.Fatalf("Remaining past end got %d want 0", r.Remaining())
	}
}
