// Package bits implements MSB-first bitstream writing and reading as used
// by the MPEG-4 visual bitstream syntax, including startcode emission and
// resynchronisation scanning.
//
// The MPEG-4 decoder locates sections of the hierarchical stream by
// scanning for unique byte-aligned bit patterns (startcodes); the writer
// therefore guarantees that startcodes are byte aligned and that no
// emulation of a startcode prefix can occur inside stuffing.
package bits

import (
	"errors"
	"fmt"
)

// Startcode values from the MPEG-4 visual syntax (ISO/IEC 14496-2).
// All startcodes are 0x000001xx, byte aligned.
const (
	StartcodePrefix = 0x000001

	// Startcode suffixes used by this implementation.
	SCVisualObjectSequence = 0xB0
	SCVisualObject         = 0xB5
	SCVideoObject          = 0x00 // 0x00..0x1F video_object_start_code
	SCVideoObjectLayer     = 0x20 // 0x20..0x2F video_object_layer_start_code
	SCVOP                  = 0xB6
	SCGOV                  = 0xB3
	SCEndOfSequence        = 0xB1
	SCUserData             = 0xB2
)

// ErrEndOfStream is returned when a read requests more bits than remain.
var ErrEndOfStream = errors.New("bits: end of stream")

// Writer accumulates bits MSB first into an internal byte buffer.
// The zero value is ready to use.
type Writer struct {
	buf  []byte
	cur  uint8 // bits accumulated in the current partial byte
	nCur uint  // number of valid bits in cur (0..7)
	n    uint64
}

// NewWriter returns a Writer with capacity preallocated for sizeHint bytes.
func NewWriter(sizeHint int) *Writer {
	return &Writer{buf: make([]byte, 0, sizeHint)}
}

// PutBit appends a single bit.
func (w *Writer) PutBit(b uint32) {
	w.cur = w.cur<<1 | uint8(b&1)
	w.nCur++
	w.n++
	if w.nCur == 8 {
		w.buf = append(w.buf, w.cur)
		w.cur, w.nCur = 0, 0
	}
}

// PutBits appends the low n bits of v, most significant first. n must be
// in [0, 32].
func (w *Writer) PutBits(v uint32, n uint) {
	if n > 32 {
		panic(fmt.Sprintf("bits: PutBits width %d out of range", n))
	}
	for i := int(n) - 1; i >= 0; i-- {
		w.PutBit(v >> uint(i))
	}
}

// PutUE appends v in unsigned Exp-Golomb form. MPEG-4 proper does not use
// Exp-Golomb, but side information in this implementation (for example
// arbitrary dimensions) uses it as a compact self-delimiting integer code.
func (w *Writer) PutUE(v uint32) {
	vv := uint64(v) + 1
	nbits := 0
	for t := vv; t > 1; t >>= 1 {
		nbits++
	}
	for i := 0; i < nbits; i++ {
		w.PutBit(0)
	}
	for i := nbits; i >= 0; i-- {
		w.PutBit(uint32(vv >> uint(i)))
	}
}

// PutSE appends v in signed Exp-Golomb form (0, 1, -1, 2, -2, ...).
func (w *Writer) PutSE(v int32) {
	if v <= 0 {
		w.PutUE(uint32(-2 * v))
	} else {
		w.PutUE(uint32(2*v - 1))
	}
}

// AlignZero pads the stream with zero bits to the next byte boundary.
func (w *Writer) AlignZero() {
	for w.nCur != 0 {
		w.PutBit(0)
	}
}

// AlignStuffing writes the MPEG-4 next_start_code() stuffing pattern:
// a zero bit followed by ones up to the byte boundary. If the stream is
// already aligned a full stuffing byte 0x7F is written, as the standard
// requires, so the decoder can always strip stuffing unambiguously.
func (w *Writer) AlignStuffing() {
	w.PutBit(0)
	for w.nCur != 0 {
		w.PutBit(1)
	}
}

// PutStartcode aligns with stuffing and emits 0x000001 followed by suffix.
func (w *Writer) PutStartcode(suffix uint8) {
	w.AlignStuffing()
	w.PutBits(StartcodePrefix, 24)
	w.PutBits(uint32(suffix), 8)
}

// Len returns the number of bits written so far.
func (w *Writer) Len() uint64 { return w.n }

// Bytes flushes any partial byte (zero padded) and returns the buffer.
// The writer remains usable; subsequent writes continue byte aligned.
func (w *Writer) Bytes() []byte {
	w.AlignZero()
	return w.buf
}

// Reset truncates the writer to empty.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.cur, w.nCur, w.n = 0, 0, 0
}

// Reader consumes bits MSB first from a byte slice.
type Reader struct {
	buf []byte
	pos uint64 // bit position
}

// NewReader returns a Reader over data. The slice is not copied.
func NewReader(data []byte) *Reader {
	return &Reader{buf: data}
}

// Bit reads a single bit.
func (r *Reader) Bit() (uint32, error) {
	if r.pos >= uint64(len(r.buf))*8 {
		return 0, ErrEndOfStream
	}
	byteIdx := r.pos >> 3
	bitIdx := 7 - (r.pos & 7)
	r.pos++
	return uint32(r.buf[byteIdx]>>bitIdx) & 1, nil
}

// Bits reads n bits (n <= 32) and returns them right aligned.
func (r *Reader) Bits(n uint) (uint32, error) {
	if n > 32 {
		return 0, fmt.Errorf("bits: Bits width %d out of range", n)
	}
	var v uint32
	for i := uint(0); i < n; i++ {
		b, err := r.Bit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | b
	}
	return v, nil
}

// Peek returns the next n bits without consuming them. Missing bits past
// the end of the stream read as zero, which is convenient for VLC table
// lookups near the stream tail.
func (r *Reader) Peek(n uint) uint32 {
	save := r.pos
	var v uint32
	for i := uint(0); i < n; i++ {
		b, err := r.Bit()
		if err != nil {
			b = 0
		}
		v = v<<1 | b
	}
	r.pos = save
	return v
}

// Skip advances the position by n bits (possibly past the end).
func (r *Reader) Skip(n uint) { r.pos += uint64(n) }

// UE reads an unsigned Exp-Golomb value.
func (r *Reader) UE() (uint32, error) {
	zeros := 0
	for {
		b, err := r.Bit()
		if err != nil {
			return 0, err
		}
		if b == 1 {
			break
		}
		zeros++
		if zeros > 32 {
			return 0, errors.New("bits: malformed Exp-Golomb code")
		}
	}
	v := uint32(1)
	for i := 0; i < zeros; i++ {
		b, err := r.Bit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | b
	}
	return v - 1, nil
}

// SE reads a signed Exp-Golomb value.
func (r *Reader) SE() (int32, error) {
	u, err := r.UE()
	if err != nil {
		return 0, err
	}
	if u%2 == 0 {
		return -int32(u / 2), nil
	}
	return int32(u+1) / 2, nil
}

// AlignSkipStuffing consumes next_start_code() stuffing: if mid-byte it
// expects a zero bit followed by ones to the boundary; if aligned and the
// next byte is 0x7F it consumes it. Malformed stuffing is tolerated (the
// reader simply aligns), matching the error resilience of the reference
// decoder.
func (r *Reader) AlignSkipStuffing() {
	if r.pos%8 == 0 {
		if r.pos/8 < uint64(len(r.buf)) && r.buf[r.pos/8] == 0x7F {
			r.pos += 8
		}
		return
	}
	r.pos = (r.pos + 7) &^ 7
}

// NextStartcode scans forward (from the current byte boundary) for the
// next 0x000001 prefix and positions the reader immediately after the
// suffix byte, which it returns. It returns ErrEndOfStream if no further
// startcode exists.
func (r *Reader) NextStartcode() (uint8, error) {
	i := (r.pos + 7) / 8
	n := uint64(len(r.buf))
	for ; i+3 < n+1 && i+3 <= n; i++ {
		if i+4 > n {
			break
		}
		if r.buf[i] == 0x00 && r.buf[i+1] == 0x00 && r.buf[i+2] == 0x01 {
			r.pos = (i + 4) * 8
			return r.buf[i+3], nil
		}
	}
	return 0, ErrEndOfStream
}

// AtStartcode reports whether a startcode prefix begins at the current
// (byte-aligned) position, tolerating a preceding stuffing byte.
func (r *Reader) AtStartcode() bool {
	i := (r.pos + 7) / 8
	n := uint64(len(r.buf))
	if i+4 > n {
		return false
	}
	if r.buf[i] == 0x00 && r.buf[i+1] == 0x00 && r.buf[i+2] == 0x01 {
		return true
	}
	// A stuffing byte may precede the startcode.
	if r.buf[i] == 0x7F && i+5 <= n &&
		r.buf[i+1] == 0x00 && r.buf[i+2] == 0x00 && r.buf[i+3] == 0x01 {
		return true
	}
	return false
}

// Pos returns the current bit position.
func (r *Reader) Pos() uint64 { return r.pos }

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() uint64 {
	total := uint64(len(r.buf)) * 8
	if r.pos >= total {
		return 0
	}
	return total - r.pos
}
