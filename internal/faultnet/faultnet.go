// Package faultnet injects network faults into HTTP clients for chaos
// testing. A Transport wraps any http.RoundTripper and, per matching
// Rule, adds latency, fails requests with connection-level errors or
// injected timeout errors, substitutes 5xx responses, severs response
// bodies mid-read (the "worker died while streaming its answer"
// shape), and runs N-failures-then-heal schedules (the "worker was
// down, then came back" shape re-admission logic needs).
//
// Fault decisions are driven by a seeded xorshift generator, so a test
// that fixes the seed replays the same fault *rates* every run; the
// exact per-request assignment additionally depends on request arrival
// order, which concurrency may interleave. Schedules that must be
// exact regardless of interleaving use the deterministic counters
// (FailFirst), not the rates.
//
// The package exists so fault suites across packages share one
// fault vocabulary instead of growing ad-hoc misbehaving test servers
// per failure mode.
package faultnet

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"syscall"
	"time"
)

// Matcher selects the requests a Rule applies to.
type Matcher func(*http.Request) bool

// Host returns a Matcher selecting requests whose URL host equals the
// host of rawURL (a bare host:port is accepted too) — "everything sent
// to this worker".
func Host(rawURL string) Matcher {
	host := strings.TrimPrefix(strings.TrimPrefix(rawURL, "http://"), "https://")
	host = strings.TrimSuffix(host, "/")
	return func(r *http.Request) bool { return r.URL.Host == host }
}

// Path returns a Matcher selecting requests whose URL path equals p —
// "only replay calls", say.
func Path(p string) Matcher {
	return func(r *http.Request) bool { return r.URL.Path == p }
}

// And composes Matchers conjunctively.
func And(ms ...Matcher) Matcher {
	return func(r *http.Request) bool {
		for _, m := range ms {
			if !m(r) {
				return false
			}
		}
		return true
	}
}

// Rule is one fault schedule. The zero value injects nothing. At most
// one fault fires per request: FailFirst takes precedence while its
// budget lasts, then a single random draw picks among the rates (so
// ErrRate+TimeoutRate+StatusRate+ResetRate must be <= 1).
type Rule struct {
	// Name labels the rule in Injected accounting.
	Name string
	// Match selects the requests the rule applies to; nil matches all.
	Match Matcher
	// Latency is added to every matched request (fault or not) before
	// it is dispatched or failed, honoring request-context cancellation.
	Latency time.Duration
	// FailFirst fails the first N matched requests with a connection
	// error and then heals — a deterministic down-then-recovered
	// schedule, independent of the seed.
	FailFirst int
	// ErrRate is the probability of a connection error (ECONNREFUSED).
	ErrRate float64
	// TimeoutRate is the probability of an error satisfying
	// net.Error.Timeout().
	TimeoutRate float64
	// StatusRate is the probability of substituting an HTTP response
	// with Status (default 503) without reaching the inner transport.
	StatusRate float64
	Status     int
	// ResetRate is the probability of severing the response body with
	// ECONNRESET after ResetAfter bytes (default 32). The request does
	// reach the server — the caller sees a mid-body connection reset,
	// exactly the crash-while-responding failure shape.
	ResetRate  float64
	ResetAfter int64
}

// Transport is a fault-injecting http.RoundTripper. Safe for
// concurrent use.
type Transport struct {
	inner http.RoundTripper
	rules []*Rule

	mu       sync.Mutex
	rng      uint64
	matched  map[string]int
	injected map[string]int
}

// New wraps inner (nil means http.DefaultTransport) with the given
// fault rules. The first matching rule decides a request's fate; a
// request no rule matches passes through untouched. seed 0 is remapped
// to 1 (xorshift has no zero state).
func New(seed uint64, inner http.RoundTripper, rules ...*Rule) *Transport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	if seed == 0 {
		seed = 1
	}
	return &Transport{
		inner:    inner,
		rules:    rules,
		rng:      seed,
		matched:  map[string]int{},
		injected: map[string]int{},
	}
}

// Injected reports how many faults the named rule has injected.
func (t *Transport) Injected(name string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.injected[name]
}

// InjectedTotal reports the fault count across all rules.
func (t *Transport) InjectedTotal() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, v := range t.injected {
		n += v
	}
	return n
}

// Matched reports how many requests the named rule has matched
// (faulted or passed through).
func (t *Transport) Matched(name string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.matched[name]
}

// fault kinds, in draw-partition order.
type faultKind int

const (
	faultNone faultKind = iota
	faultConnErr
	faultTimeout
	faultStatus
	faultReset
)

// randLocked steps the xorshift64 generator and returns a float in
// [0, 1).
func (t *Transport) randLocked() float64 {
	t.rng ^= t.rng << 13
	t.rng ^= t.rng >> 7
	t.rng ^= t.rng << 17
	return float64(t.rng>>11) / (1 << 53)
}

// decide picks the fault for the nth match of r, consuming exactly one
// random draw iff any rate is set — the draw stream stays aligned with
// the match sequence, whatever faults fire.
func (t *Transport) decide(r *Rule) faultKind {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.matched[r.Name]++
	if t.matched[r.Name] <= r.FailFirst {
		return faultConnErr
	}
	total := r.ErrRate + r.TimeoutRate + r.StatusRate + r.ResetRate
	if total <= 0 {
		return faultNone
	}
	u := t.randLocked()
	switch {
	case u < r.ErrRate:
		return faultConnErr
	case u < r.ErrRate+r.TimeoutRate:
		return faultTimeout
	case u < r.ErrRate+r.TimeoutRate+r.StatusRate:
		return faultStatus
	case u < total:
		return faultReset
	}
	return faultNone
}

func (t *Transport) count(r *Rule) {
	t.mu.Lock()
	t.injected[r.Name]++
	t.mu.Unlock()
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	var rule *Rule
	for _, r := range t.rules {
		if r.Match == nil || r.Match(req) {
			rule = r
			break
		}
	}
	if rule == nil {
		return t.inner.RoundTrip(req)
	}
	fault := t.decide(rule)
	if rule.Latency > 0 {
		timer := time.NewTimer(rule.Latency)
		select {
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
			discardBody(req)
			return nil, req.Context().Err()
		}
	}
	switch fault {
	case faultConnErr:
		t.count(rule)
		discardBody(req)
		return nil, &net.OpError{Op: "dial", Net: "tcp", Err: syscall.ECONNREFUSED}
	case faultTimeout:
		t.count(rule)
		discardBody(req)
		return nil, timeoutError{}
	case faultStatus:
		t.count(rule)
		discardBody(req)
		status := rule.Status
		if status == 0 {
			status = http.StatusServiceUnavailable
		}
		return injectedResponse(req, status), nil
	case faultReset:
		resp, err := t.inner.RoundTrip(req)
		if err != nil {
			return resp, err
		}
		t.count(rule)
		after := rule.ResetAfter
		if after <= 0 {
			after = 32
		}
		resp.Body = &resetBody{rc: resp.Body, remain: after}
		return resp, nil
	}
	return t.inner.RoundTrip(req)
}

// discardBody consumes and closes the request body, per the
// RoundTripper contract, when the request will not reach the inner
// transport.
func discardBody(req *http.Request) {
	if req.Body != nil {
		io.Copy(io.Discard, req.Body)
		req.Body.Close()
	}
}

// timeoutError satisfies net.Error with Timeout() true — what a
// deadline-hit transport surfaces.
type timeoutError struct{}

func (timeoutError) Error() string   { return "faultnet: injected timeout" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

// injectedResponse fabricates a minimal JSON error response without
// touching the network.
func injectedResponse(req *http.Request, status int) *http.Response {
	body := fmt.Sprintf("{\"error\":\"faultnet: injected HTTP %d\"}", status)
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", status, http.StatusText(status)),
		StatusCode:    status,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": []string{"application/json"}},
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// resetBody delivers the first remain bytes of the real response, then
// fails every read with ECONNRESET — a connection severed mid-body.
// If the body ends before the reset point the fault never manifests
// (short responses can win the race, as on a real network).
type resetBody struct {
	rc     io.ReadCloser
	remain int64
}

func (b *resetBody) Read(p []byte) (int, error) {
	if b.remain <= 0 {
		return 0, &net.OpError{Op: "read", Net: "tcp", Err: syscall.ECONNRESET}
	}
	if int64(len(p)) > b.remain {
		p = p[:b.remain]
	}
	n, err := b.rc.Read(p)
	b.remain -= int64(n)
	return n, err
}

func (b *resetBody) Close() error { return b.rc.Close() }
