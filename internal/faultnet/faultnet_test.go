package faultnet

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"syscall"
	"testing"
	"time"
)

// echoServer answers every request with a fixed body large enough that
// a mid-body reset always fires before EOF.
func echoServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		io.WriteString(w, strings.Repeat("x", 4096))
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestSeededRatesAreReproducible: the same seed against the same
// request sequence injects the same faults, and a different seed
// injects a different pattern — the property the chaos suites build
// on.
func TestSeededRatesAreReproducible(t *testing.T) {
	srv := echoServer(t)
	run := func(seed uint64) (string, int) {
		ft := New(seed, nil, &Rule{Name: "soup", ErrRate: 0.3, StatusRate: 0.2})
		client := &http.Client{Transport: ft}
		var outcomes strings.Builder
		for i := 0; i < 64; i++ {
			resp, err := client.Get(srv.URL)
			switch {
			case err != nil:
				outcomes.WriteByte('E')
			case resp.StatusCode != http.StatusOK:
				outcomes.WriteByte('S')
				resp.Body.Close()
			default:
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				outcomes.WriteByte('.')
			}
		}
		return outcomes.String(), ft.InjectedTotal()
	}
	a1, n1 := run(42)
	a2, n2 := run(42)
	if a1 != a2 || n1 != n2 {
		t.Fatalf("same seed diverged:\n%s (%d)\n%s (%d)", a1, n1, a2, n2)
	}
	b, _ := run(43)
	if a1 == b {
		t.Fatalf("different seeds produced identical fault patterns: %s", a1)
	}
	if n1 == 0 || strings.Count(a1, ".") == 0 {
		t.Fatalf("rates injected nothing or everything: %s", a1)
	}
}

// TestFailFirstHeals: exactly the first N matched requests fail with a
// connection error, then the rule heals — regardless of seed.
func TestFailFirstHeals(t *testing.T) {
	srv := echoServer(t)
	ft := New(7, nil, &Rule{Name: "down", FailFirst: 3})
	client := &http.Client{Transport: ft}
	for i := 0; i < 3; i++ {
		_, err := client.Get(srv.URL)
		var op *net.OpError
		if err == nil || !errors.As(err, &op) || !errors.Is(op.Err, syscall.ECONNREFUSED) {
			t.Fatalf("request %d: want ECONNREFUSED, got %v", i, err)
		}
	}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("request after heal failed: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healed request: status %d", resp.StatusCode)
	}
	if got := ft.Injected("down"); got != 3 {
		t.Fatalf("injected = %d, want 3", got)
	}
}

// TestMidBodyReset: the response starts normally and the body read
// fails with ECONNRESET after the configured byte count.
func TestMidBodyReset(t *testing.T) {
	srv := echoServer(t)
	ft := New(1, nil, &Rule{Name: "reset", ResetRate: 1, ResetAfter: 100})
	resp, err := (&http.Client{Transport: ft}).Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err == nil {
		t.Fatalf("body read succeeded (%d bytes), want mid-body reset", len(got))
	}
	var op *net.OpError
	if !errors.As(err, &op) || !errors.Is(op.Err, syscall.ECONNRESET) {
		t.Fatalf("want ECONNRESET, got %v", err)
	}
	if len(got) != 100 {
		t.Fatalf("delivered %d bytes before reset, want 100", len(got))
	}
}

// TestInjectedTimeoutIsNetError: the injected timeout satisfies
// net.Error.Timeout(), the predicate retry classifiers key on.
func TestInjectedTimeoutIsNetError(t *testing.T) {
	srv := echoServer(t)
	ft := New(1, nil, &Rule{Name: "slowloss", TimeoutRate: 1})
	_, err := (&http.Client{Transport: ft}).Get(srv.URL)
	var ne net.Error
	if err == nil || !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("want a net.Error timeout, got %v", err)
	}
}

// TestLatencyHonorsContext: injected latency aborts promptly when the
// request context is cancelled — fault injection must not break caller
// cancellation.
func TestLatencyHonorsContext(t *testing.T) {
	srv := echoServer(t)
	ft := New(1, nil, &Rule{Name: "slow", Latency: time.Minute})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	start := time.Now()
	_, err := (&http.Client{Transport: ft}).Do(req)
	if err == nil {
		t.Fatal("request under injected minute latency succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, want prompt abort", elapsed)
	}
}

// TestMatchersRoute: rules apply only to matching requests, first
// match wins, and unmatched requests pass through untouched.
func TestMatchersRoute(t *testing.T) {
	srv1, srv2 := echoServer(t), echoServer(t)
	ft := New(1, nil,
		&Rule{Name: "kill-1-replay", Match: And(Host(srv1.URL), Path("/v1/replay")), ErrRate: 1},
	)
	client := &http.Client{Transport: ft}
	if _, err := client.Get(srv1.URL + "/v1/replay"); err == nil {
		t.Fatal("matched request was not faulted")
	}
	for _, url := range []string{srv1.URL + "/v1/healthz", srv2.URL + "/v1/replay"} {
		resp, err := client.Get(url)
		if err != nil {
			t.Fatalf("unmatched request %s faulted: %v", url, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if ft.Matched("kill-1-replay") != 1 {
		t.Fatalf("matched = %d, want 1", ft.Matched("kill-1-replay"))
	}
}
