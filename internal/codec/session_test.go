package codec

import (
	"testing"

	"repro/internal/simmem"
	"repro/internal/video"
)

func sessionFrames(sp *simmem.Space, w, h, objects, n int) [][]*video.Frame {
	synth := video.NewSynth(w, h, 21)
	out := make([][]*video.Frame, objects)
	for o := 0; o < objects; o++ {
		if o == 0 {
			out[o] = synth.ObjectSequence(sp, -1, n) // background
		} else {
			out[o] = synth.ObjectSequence(sp, o-1, n)
		}
	}
	return out
}

func TestSessionValidate(t *testing.T) {
	cfg := SessionConfig{Object: DefaultConfig(64, 48), Objects: 3, Layers: 1}
	if cfg.Validate() != nil {
		t.Fatal("valid session rejected")
	}
	cfg.Objects = 0
	if cfg.Validate() == nil {
		t.Fatal("zero objects accepted")
	}
	cfg.Objects = 3
	cfg.Layers = 3
	if cfg.Validate() == nil {
		t.Fatal("three layers accepted")
	}
}

func TestSessionSingleObjectMatchesPlainCodec(t *testing.T) {
	sp := simmem.NewSpace(0)
	cfg := SessionConfig{Object: DefaultConfig(64, 48), Objects: 1, Layers: 1}
	cfg.Object.Shape = true
	frames := sessionFrames(sp, 64, 48, 1, 5)
	ss, err := EncodeSession(cfg, sp, nil, nil, frames)
	if err != nil {
		t.Fatal(err)
	}
	if len(ss.Base) != 1 || ss.Enh != nil {
		t.Fatalf("session shape wrong: %d base, %v enh", len(ss.Base), ss.Enh)
	}
	out, err := DecodeSession(ss, simmem.NewSpace(0), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || len(out[0]) != 5 {
		t.Fatalf("decoded shape wrong")
	}
	for i := range out[0] {
		if p := video.PSNR(frames[0][i], out[0][i]); p < 20 {
			t.Errorf("frame %d PSNR %.1f", i, p)
		}
	}
}

func TestSessionThreeObjects(t *testing.T) {
	sp := simmem.NewSpace(0)
	cfg := SessionConfig{Object: DefaultConfig(64, 48), Objects: 3, Layers: 1}
	cfg.Object.Shape = true
	frames := sessionFrames(sp, 64, 48, 3, 5)
	ss, err := EncodeSession(cfg, sp, nil, nil, frames)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeSession(ss, simmem.NewSpace(0), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for o := range out {
		for i := range out[o] {
			// Alpha must roundtrip losslessly per object.
			for j := range frames[o][i].Alpha.Pix {
				if frames[o][i].Alpha.Pix[j] != out[o][i].Alpha.Pix[j] {
					t.Fatalf("object %d frame %d alpha mismatch", o, i)
				}
			}
		}
	}
}

func TestSessionTwoLayersImprovesQuality(t *testing.T) {
	sp := simmem.NewSpace(0)
	base := DefaultConfig(64, 48)
	base.QP = 16
	frames := sessionFrames(sp, 64, 48, 1, 5)

	one, err := EncodeSession(SessionConfig{Object: base, Objects: 1, Layers: 1}, sp, nil, nil, frames)
	if err != nil {
		t.Fatal(err)
	}
	two, err := EncodeSession(SessionConfig{Object: base, Objects: 1, Layers: 2, EnhQP: 3}, sp, nil, nil, frames)
	if err != nil {
		t.Fatal(err)
	}
	if len(two.Enh) != 1 || len(two.Enh[0]) == 0 {
		t.Fatal("no enhancement stream produced")
	}
	out1, err := DecodeSession(one, simmem.NewSpace(0), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	out2, err := DecodeSession(two, simmem.NewSpace(0), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var p1, p2 float64
	for i := range frames[0] {
		p1 += video.PSNR(frames[0][i], out1[0][i])
		p2 += video.PSNR(frames[0][i], out2[0][i])
	}
	if p2 <= p1 {
		t.Fatalf("enhancement layer did not improve quality: %.1f vs %.1f", p2/5, p1/5)
	}
}

func TestSessionRejectsMismatchedFrames(t *testing.T) {
	sp := simmem.NewSpace(0)
	cfg := SessionConfig{Object: DefaultConfig(64, 48), Objects: 2, Layers: 1}
	frames := sessionFrames(sp, 64, 48, 2, 4)
	frames[1] = frames[1][:3]
	if _, err := EncodeSession(cfg, sp, nil, nil, frames); err == nil {
		t.Fatal("ragged frame sequences accepted")
	}
	if _, err := EncodeSession(cfg, sp, nil, nil, frames[:1]); err == nil {
		t.Fatal("missing object sequence accepted")
	}
}

func TestSessionTotalBytes(t *testing.T) {
	ss := &SessionStream{Objects: 2, Layers: 2,
		Base: [][]byte{make([]byte, 10), make([]byte, 20)},
		Enh:  [][]byte{make([]byte, 5), make([]byte, 1)}}
	if ss.TotalBytes() != 36 {
		t.Fatalf("TotalBytes=%d", ss.TotalBytes())
	}
}

func TestEnhConfigValidate(t *testing.T) {
	if (EnhConfig{W: 64, H: 48, QP: 4}).Validate() != nil {
		t.Fatal("valid enh config rejected")
	}
	if (EnhConfig{W: 63, H: 48, QP: 4}).Validate() == nil {
		t.Fatal("bad width accepted")
	}
	if (EnhConfig{W: 64, H: 48, QP: 0}).Validate() == nil {
		t.Fatal("bad QP accepted")
	}
}

func TestEnhRoundTripExactWithQP1(t *testing.T) {
	// QP 1 residual coding should recover the original almost exactly.
	sp := simmem.NewSpace(0)
	synth := video.NewSynth(64, 48, 31)
	orig := synth.Sequence(sp, 2)
	base := make([]*video.Frame, 2)
	for i := range base {
		base[i] = video.NewFrame(sp, 64, 48)
		base[i].CopyFrom(orig[i])
		// Degrade the base copy.
		for j := range base[i].Y.Pix {
			base[i].Y.Pix[j] = base[i].Y.Pix[j]/2 + 60
		}
	}
	enc, err := NewEnhEncoder(EnhConfig{W: 64, H: 48, QP: 1}, sp, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := enc.EncodeSequence(orig, base)
	if err != nil {
		t.Fatal(err)
	}
	dec := NewEnhDecoder(sp, nil, nil)
	out, err := dec.DecodeSequence(stream, base)
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if p := video.PSNR(orig[i], out[i]); p < 40 {
			t.Errorf("frame %d enhancement PSNR %.1f too low", i, p)
		}
	}
}

func TestEnhDecoderRejectsWrongBaseCount(t *testing.T) {
	sp := simmem.NewSpace(0)
	synth := video.NewSynth(64, 48, 31)
	orig := synth.Sequence(sp, 2)
	enc, _ := NewEnhEncoder(EnhConfig{W: 64, H: 48, QP: 4}, sp, nil, nil)
	stream, err := enc.EncodeSequence(orig, orig)
	if err != nil {
		t.Fatal(err)
	}
	dec := NewEnhDecoder(sp, nil, nil)
	if _, err := dec.DecodeSequence(stream, orig[:1]); err == nil {
		t.Fatal("wrong base count accepted")
	}
}
