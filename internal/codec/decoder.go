package codec

import (
	"fmt"

	"repro/internal/bits"
	"repro/internal/dct"
	"repro/internal/motion"
	"repro/internal/shape"
	"repro/internal/simmem"
	"repro/internal/video"
	"repro/internal/vop"
)

// Decoder decodes one video object layer bitstream. Decoded frames are
// returned in display order; the decoder maintains the anchor ring and
// the reorder buffer the out-of-order VOP stream requires.
type Decoder struct {
	cfg   Config
	space *simmem.Space
	t     simmem.Tracer
	ph    PhaseRecorder

	r  *bits.Reader
	st *streamTracer

	// Anchor ring: the decoded I/P display frames currently serving as
	// prediction references. Frames are decoded in place and displayed
	// from the same buffer (no display copy), as the reference decoder
	// does; the pool below will not recycle a frame while it is here.
	ring     [3]*video.Frame
	ringDisp [3]int

	pred     *video.Frame
	scratchF *video.Frame
	scratchB *video.Frame
	blkAddr  uint64
	tabs     kernelTables

	// padStager models the per-anchor padded-reference rebuild; the
	// display stager models the per-VOP display-conversion pass (see
	// staging.go).
	padStager     *vopStager
	displayStager *vopStager

	mbCount uint64 // drives the modelled compiler-prefetch cadence

	// pool recycles display frames returned through Release. The
	// reference decoder's resident set is stable — output buffers are
	// reused, not reallocated — which is what lets larger L2 caches
	// capture the working set (paper Table 3's miss-rate trend).
	pool []*video.Frame

	nFrames int
}

// NewDecoder prepares a decoder that reports memory traffic to t.
// Buffers are allocated lazily once the header reveals the dimensions.
func NewDecoder(space *simmem.Space, t simmem.Tracer, ph PhaseRecorder) *Decoder {
	if t == nil {
		t = simmem.Nop{}
	}
	if ph == nil {
		ph = NopPhases{}
	}
	return &Decoder{space: space, t: t, ph: ph}
}

// Config returns the configuration parsed from the layer header. Valid
// after DecodeSequence begins (i.e. after it returns).
func (d *Decoder) Config() Config { return d.cfg }

// DecodeSequence decodes a full layer bitstream and returns the frames
// in display order. When the stream carries shape, the returned frames
// have alpha planes.
func (d *Decoder) DecodeSequence(stream []byte) ([]*video.Frame, error) {
	if err := d.Begin(stream); err != nil {
		return nil, err
	}
	out := make([]*video.Frame, d.nFrames)
	var rb vop.ReorderBuffer
	decoded := make(map[int]*video.Frame)

	emit := func(items []vop.Item) {
		for _, it := range items {
			out[it.Display] = decoded[it.Display]
		}
	}
	for i := 0; i < d.nFrames; i++ {
		it, f, err := d.DecodeNext()
		if err != nil {
			return nil, fmt.Errorf("codec: VOP %d: %w", i, err)
		}
		decoded[it.Display] = f
		emit(rb.Push(it))
	}
	emit(rb.Flush())
	if err := d.CheckEnd(); err != nil {
		return nil, err
	}
	for i, f := range out {
		if f == nil {
			return nil, fmt.Errorf("codec: display frame %d never decoded", i)
		}
	}
	return out, nil
}

// Begin parses the layer header of stream, preparing for DecodeNext
// calls (interleaved multi-object sessions use this directly).
func (d *Decoder) Begin(stream []byte) error {
	d.r = bits.NewReader(stream)
	d.st = newStreamTracer(d.t, d.space, len(stream), simmem.Load)
	return d.readHeader()
}

// NFrames returns the display frame count announced by the header.
func (d *Decoder) NFrames() int { return d.nFrames }

// DecodeNext decodes the next VOP in coding order.
func (d *Decoder) DecodeNext() (vop.Item, *video.Frame, error) {
	return d.decodeVOP()
}

// CheckEnd verifies the end-of-sequence startcode.
func (d *Decoder) CheckEnd() error {
	sc, err := d.r.NextStartcode()
	if err != nil || sc != bits.SCEndOfSequence {
		return fmt.Errorf("codec: missing end-of-sequence startcode (got %#x, %v)", sc, err)
	}
	return nil
}

func (d *Decoder) readHeader() error {
	sc, err := d.r.NextStartcode()
	if err != nil {
		return err
	}
	if sc != bits.SCVideoObjectLayer {
		return fmt.Errorf("codec: expected VOL startcode, got %#x", sc)
	}
	mbw, err := d.r.UE()
	if err != nil {
		return err
	}
	mbh, err := d.r.UE()
	if err != nil {
		return err
	}
	n, err := d.r.UE()
	if err != nil {
		return err
	}
	m, err := d.r.UE()
	if err != nil {
		return err
	}
	qp, err := d.r.UE()
	if err != nil {
		return err
	}
	shapeBit, err := d.r.Bit()
	if err != nil {
		return err
	}
	nf, err := d.r.UE()
	if err != nil {
		return err
	}
	d.cfg = Config{
		W: int(mbw) * 16, H: int(mbh) * 16,
		GOP:         vop.GOP{N: int(n), M: int(m)},
		QP:          int(qp),
		SearchRange: 8,
		Shape:       shapeBit == 1,
	}
	if err := d.cfg.Validate(); err != nil {
		return err
	}
	d.nFrames = int(nf)
	if d.nFrames > 1<<20 {
		return fmt.Errorf("codec: implausible frame count %d", d.nFrames)
	}
	d.pred = video.NewFrame(d.space, 16, 16)
	d.scratchF = video.NewFrame(d.space, 16, 16)
	d.scratchB = video.NewFrame(d.space, 16, 16)
	d.blkAddr = d.space.Alloc(256, 64)
	d.tabs = newKernelTables(d.space)
	frameBytes := d.cfg.W * d.cfg.H * 3 / 2
	d.padStager = newVOPStager(d.space, d.t, frameBytes, 6, 2)
	d.displayStager = newVOPStager(d.space, d.t, frameBytes, 4, 1)
	for i := range d.ring {
		d.ring[i] = nil
		d.ringDisp[i] = -1
	}
	d.st.advance(d.r.Pos())
	return nil
}

func (d *Decoder) ringSlot(disp int) *video.Frame {
	for i, rd := range d.ringDisp {
		if rd == disp {
			return d.ring[i]
		}
	}
	return nil
}

// ringInstall registers f as the anchor for display index disp,
// evicting the oldest anchor (whose buffer becomes recyclable once the
// display side has released it).
func (d *Decoder) ringInstall(disp int, f *video.Frame) {
	oldest, oi := 1<<30, 0
	for i, rd := range d.ringDisp {
		if rd < 0 {
			oi = i
			break
		}
		if rd < oldest {
			oldest, oi = rd, i
		}
	}
	d.ringDisp[oi] = disp
	d.ring[oi] = f
}

// inRing reports whether f is currently a prediction reference.
func (d *Decoder) inRing(f *video.Frame) bool {
	for _, rf := range d.ring {
		if rf == f {
			return true
		}
	}
	return false
}

// decodeVOP decodes the next VOP and returns its schedule item and the
// output frame (a fresh frame for display; anchors also enter the ring).
// decodeVOP decodes the next VOP. The VopDecode phase covers what the
// paper's DecodeVopCombMotionShapeTexture() covers — shape, motion and
// texture decoding; the padded-reference rebuild and display conversion
// run outside the phase, as in the reference decoder's VOP loop.
func (d *Decoder) decodeVOP() (vop.Item, *video.Frame, error) {
	sc, err := d.r.NextStartcode()
	if err != nil {
		return vop.Item{}, nil, err
	}
	if sc != bits.SCVOP {
		return vop.Item{}, nil, fmt.Errorf("expected VOP startcode, got %#x", sc)
	}
	typRaw, err := d.r.Bits(2)
	if err != nil {
		return vop.Item{}, nil, err
	}
	typ := vop.Type(typRaw)
	if typ > vop.TypeB {
		return vop.Item{}, nil, fmt.Errorf("invalid VOP type %d", typRaw)
	}
	dispRaw, err := d.r.UE()
	if err != nil {
		return vop.Item{}, nil, err
	}
	disp := int(dispRaw)
	qpRaw, err := d.r.UE()
	if err != nil {
		return vop.Item{}, nil, err
	}
	quant := dct.NewQuantizer(int(qpRaw))
	d.st.advance(d.r.Pos())

	out := d.acquireFrame()
	d.ph.PhaseBegin(PhaseVopDecode)
	bx0, by0, bx1, by1 := 0, 0, d.cfg.W, d.cfg.H
	if d.cfg.Shape {
		if err := d.readShapeSegment(out.Alpha); err != nil {
			d.ph.PhaseEnd(PhaseVopDecode)
			return vop.Item{}, nil, err
		}
		// The VOP is coded over its bounding box only (the reference
		// decoder's VOP buffers are bbox-sized mallocs).
		bx0, by0, bx1, by1 = video.BBox(out.Alpha, d.cfg.W, d.cfg.H)
	}
	out.TimeIndex = disp

	it := vop.Item{Display: disp, Type: typ, Fwd: -1, Bwd: -1}
	// References: the two most recent anchors in the ring. The encoder's
	// schedule guarantees the forward anchor is the older and the
	// backward anchor the newer of the two most recent when decoding B.
	var fwd, bwd *video.Frame
	if typ != vop.TypeI {
		newest, second := -1, -1
		for _, rd := range d.ringDisp {
			if rd > newest {
				second, newest = newest, rd
			} else if rd > second {
				second = rd
			}
		}
		switch typ {
		case vop.TypeP:
			// Forward anchor: the most recent anchor older than disp.
			best := -1
			for _, rd := range d.ringDisp {
				if rd >= 0 && rd < disp && rd > best {
					best = rd
				}
			}
			if best < 0 {
				return vop.Item{}, nil, fmt.Errorf("P-VOP %d has no forward anchor", disp)
			}
			it.Fwd = best
			fwd = d.ringSlot(best)
		case vop.TypeB:
			if second < 0 || newest < 0 {
				return vop.Item{}, nil, fmt.Errorf("B-VOP %d lacks two anchors", disp)
			}
			it.Fwd, it.Bwd = second, newest
			fwd, bwd = d.ringSlot(second), d.ringSlot(newest)
		}
	}

	if typ != vop.TypeB {
		d.ringInstall(disp, out)
	}

	for mby := by0 / 16; mby < (by1+15)/16; mby++ {
		predF, predB := motion.MV{}, motion.MV{}
		dcPredState := newDCPred()
		for mbx := bx0 / 16; mbx < (bx1+15)/16; mbx++ {
			x, y := mbx*16, mby*16
			if d.cfg.Shape && shape.Classify(out.Alpha, x, y) == shape.BABTransparent {
				fillGreyMB(d.t, out, x, y)
				continue
			}
			predF, predB, err = d.decodeMB(quant, typ, out, fwd, bwd, x, y, predF, predB, &dcPredState)
			if err != nil {
				d.ph.PhaseEnd(PhaseVopDecode)
				return vop.Item{}, nil, err
			}
			d.st.advance(d.r.Pos())
		}
	}
	d.ph.PhaseEnd(PhaseVopDecode)
	if typ != vop.TypeB {
		// Rebuild the padded reference image (unrestricted-MC support).
		d.padStager.stageRegion(out, bx0, by0, bx1, by1)
	}
	// Display conversion reads every decoded VOP once and writes the
	// display buffer.
	d.displayStager.stageRegion(out, bx0, by0, bx1, by1)
	return it, out, nil
}

// decodeMB decodes one macroblock into target.
func (d *Decoder) decodeMB(quant dct.Quantizer, typ vop.Type, target, fwd, bwd *video.Frame, x, y int, predF, predB motion.MV, dc *dcPred) (motion.MV, motion.MV, error) {
	modeRaw, err := d.r.Bits(3)
	if err != nil {
		return predF, predB, err
	}
	if modeRaw >= numMBModes {
		return predF, predB, fmt.Errorf("invalid MB mode %d", modeRaw)
	}
	mode := mbMode(modeRaw)
	d.tabs.traceMBStruct(d.t)
	d.tabs.traceCalls(d.t, 3)
	d.t.Ops(8)
	// The compiler inserts conservative prefetches in the decoder's MC
	// loops too (the paper's decode tables include prefetch-hit rates).
	d.mbCount++
	if fwd != nil && d.mbCount%4 == 0 {
		py := y + 16
		if py < fwd.Y.H {
			d.t.Access(fwd.Y.Addr+uint64(py*fwd.Y.Stride+x), 0, simmem.Prefetch)
		}
	}

	switch mode {
	case mbIntra:
		return predF, predB, d.decodeIntraMB(quant, target, x, y, dc)
	case mbSkip:
		if fwd == nil {
			return predF, predB, fmt.Errorf("skip MB without reference at (%d,%d)", x, y)
		}
		d.compensateMBInto(target, fwd, x, y, motion.MV{})
		return motion.MV{}, predB, nil
	case mbInterFwd:
		if fwd == nil {
			return predF, predB, fmt.Errorf("inter MB without forward reference")
		}
		mv, err := DecodeMVDPair(d.r, predF)
		if err != nil {
			return predF, predB, err
		}
		d.compensateMB(fwd, x, y, mv)
		if err := d.decodeResidualMB(quant, target, x, y); err != nil {
			return predF, predB, err
		}
		return mv, predB, nil
	case mbInterBwd:
		if bwd == nil {
			return predF, predB, fmt.Errorf("backward MB without backward reference")
		}
		mv, err := DecodeMVDPair(d.r, predB)
		if err != nil {
			return predF, predB, err
		}
		d.compensateMB(bwd, x, y, mv)
		if err := d.decodeResidualMB(quant, target, x, y); err != nil {
			return predF, predB, err
		}
		return predF, mv, nil
	case mbInterInterp:
		if fwd == nil || bwd == nil {
			return predF, predB, fmt.Errorf("interpolated MB lacks references")
		}
		fMV, err := DecodeMVDPair(d.r, predF)
		if err != nil {
			return predF, predB, err
		}
		bMV, err := DecodeMVDPair(d.r, predB)
		if err != nil {
			return predF, predB, err
		}
		motion.CompensateAvgTo(d.t, d.pred.Y, fwd.Y, bwd.Y, 0, 0, x, y, 16, fMV, bMV, d.scratchF.Y, d.scratchB.Y)
		fcx, fcy := chromaMV(fMV.X, fMV.Y)
		bcx, bcy := chromaMV(bMV.X, bMV.Y)
		motion.CompensateAvgTo(d.t, d.pred.Cb, fwd.Cb, bwd.Cb, 0, 0, x/2, y/2, 8,
			motion.MV{X: fcx, Y: fcy}, motion.MV{X: bcx, Y: bcy}, d.scratchF.Cb, d.scratchB.Cb)
		motion.CompensateAvgTo(d.t, d.pred.Cr, fwd.Cr, bwd.Cr, 0, 0, x/2, y/2, 8,
			motion.MV{X: fcx, Y: fcy}, motion.MV{X: bcx, Y: bcy}, d.scratchF.Cr, d.scratchB.Cr)
		if err := d.decodeResidualMB(quant, target, x, y); err != nil {
			return predF, predB, err
		}
		return fMV, bMV, nil
	}
	return predF, predB, fmt.Errorf("unreachable MB mode %d", mode)
}

// compensateMB builds the prediction macroblock in the MB-sized d.pred
// buffer.
func (d *Decoder) compensateMB(ref *video.Frame, x, y int, mv motion.MV) {
	motion.CompensateTo(d.t, d.pred.Y, ref.Y, 0, 0, x, y, 16, mv)
	cx, cy := chromaMV(mv.X, mv.Y)
	cmv := motion.MV{X: cx, Y: cy}
	motion.CompensateTo(d.t, d.pred.Cb, ref.Cb, 0, 0, x/2, y/2, 8, cmv)
	motion.CompensateTo(d.t, d.pred.Cr, ref.Cr, 0, 0, x/2, y/2, 8, cmv)
}

// compensateMBInto writes the prediction macroblock directly into dst at
// its frame position (skip macroblocks copy the co-located reference).
func (d *Decoder) compensateMBInto(dst, ref *video.Frame, x, y int, mv motion.MV) {
	motion.Compensate(d.t, dst.Y, ref.Y, x, y, 16, mv)
	cx, cy := chromaMV(mv.X, mv.Y)
	cmv := motion.MV{X: cx, Y: cy}
	motion.Compensate(d.t, dst.Cb, ref.Cb, x/2, y/2, 8, cmv)
	motion.Compensate(d.t, dst.Cr, ref.Cr, x/2, y/2, 8, cmv)
}

func (d *Decoder) decodeIntraMB(quant dct.Quantizer, target *video.Frame, x, y int, dc *dcPred) error {
	var blk dct.Block
	var scan [64]int32
	decode := func(p *video.Plane, bx, by int, pred *int32) error {
		d.tabs.traceCalls(d.t, 5)
		dcd, err := DecodeDCD(d.r)
		if err != nil {
			return err
		}
		dcLevel := *pred + dcd
		*pred = dcLevel
		if err := DecodeCoeffBlock(d.r, &scan); err != nil {
			return err
		}
		d.tabs.traceVLC(d.t, countEvents(&scan))
		d.t.Ops(64 * 4)
		dct.Unscan(&scan, &blk)
		blk[0] = dcLevel
		d.traceBlockOp(64 * 2)
		quant.DequantIntra(&blk)
		d.traceBlockOp(dct.OpsQuant)
		dct.Inverse(&blk)
		d.traceDCTOp()
		d.storeBlock(p, bx, by, &blk)
		return nil
	}
	for _, b := range lumaBlocks(x, y) {
		if err := decode(target.Y, b[0], b[1], &dc.y); err != nil {
			return err
		}
	}
	if err := decode(target.Cb, x/2, y/2, &dc.cb); err != nil {
		return err
	}
	return decode(target.Cr, x/2, y/2, &dc.cr)
}

// decodeResidualMB reads the coded flags and residual blocks, adding
// them to d.pred and writing the sum into target.
func (d *Decoder) decodeResidualMB(quant dct.Quantizer, target *video.Frame, x, y int) error {
	var flags [6]bool
	for i := range flags {
		b, err := d.r.Bit()
		if err != nil {
			return err
		}
		flags[i] = b == 1
	}
	var blk dct.Block
	var scan [64]int32
	apply := func(cp, pp *video.Plane, bx, by, px, py int, coded bool) error {
		d.tabs.traceCalls(d.t, 4)
		if coded {
			if err := DecodeCoeffBlock(d.r, &scan); err != nil {
				return err
			}
			d.tabs.traceVLC(d.t, countEvents(&scan))
			d.t.Ops(64 * 4)
			dct.Unscan(&scan, &blk)
			d.traceBlockOp(64 * 2)
			quant.DequantInter(&blk)
			d.traceBlockOp(dct.OpsQuant)
			dct.Inverse(&blk)
			d.traceDCTOp()
		} else {
			blk = dct.Block{}
		}
		d.addBlock(pp, cp, bx, by, px, py, &blk)
		return nil
	}
	for i, b := range lumaBlocks(x, y) {
		if err := apply(target.Y, d.pred.Y, b[0], b[1], b[0]-x, b[1]-y, flags[i]); err != nil {
			return err
		}
	}
	if err := apply(target.Cb, d.pred.Cb, x/2, y/2, 0, 0, flags[4]); err != nil {
		return err
	}
	return apply(target.Cr, d.pred.Cr, x/2, y/2, 0, 0, flags[5])
}

func (d *Decoder) readShapeSegment(alpha *video.Plane) error {
	nBytes, err := d.r.UE()
	if err != nil {
		return err
	}
	if uint64(nBytes) > d.r.Remaining()/8+1 {
		return fmt.Errorf("shape segment length %d exceeds stream", nBytes)
	}
	d.r.Skip(uint((8 - d.r.Pos()%8) % 8)) // AlignZero on the encode side
	payload := make([]byte, nBytes)
	for i := range payload {
		v, err := d.r.Bits(8)
		if err != nil {
			return err
		}
		payload[i] = byte(v)
	}
	d.st.advance(d.r.Pos())
	return shape.DecodePlane(bits.NewReader(payload), d.t, alpha)
}

// acquireFrame takes a display frame from the recycle pool, allocating
// only when the pool is empty.
func (d *Decoder) acquireFrame() *video.Frame {
	for i := len(d.pool) - 1; i >= 0; i-- {
		f := d.pool[i]
		if d.inRing(f) {
			continue // released by the display side but still a reference
		}
		d.pool = append(d.pool[:i], d.pool[i+1:]...)
		d.initFrame(f)
		return f
	}
	var f *video.Frame
	if d.cfg.Shape {
		f = video.NewAlphaFrame(d.space, d.cfg.W, d.cfg.H)
	} else {
		f = video.NewFrame(d.space, d.cfg.W, d.cfg.H)
	}
	d.initFrame(f)
	return f
}

// initFrame paints a frame neutral grey. Untraced: the reference
// decoder's VOP buffers are bounding-box sized, so the full-frame region
// outside the box exists only in this API's representation — clearing it
// is not part of the measured workload.
func (d *Decoder) initFrame(f *video.Frame) {
	if !d.cfg.Shape {
		return
	}
	f.Y.Fill(128)
	f.Cb.Fill(128)
	f.Cr.Fill(128)
}

// Release returns a display frame to the decoder's buffer pool once the
// caller (display/compositor) is done with it. Releasing a frame that
// is still referenced by the caller is a use-after-free-style bug, as
// with any buffer pool.
func (d *Decoder) Release(f *video.Frame) {
	if f == nil {
		return
	}
	d.pool = append(d.pool, f)
}

// traceBlockOp mirrors the encoder's scratch accounting.
func (d *Decoder) traceBlockOp(ops uint64) {
	simmem.AccessRunUnit(d.t, d.blkAddr, 256, 4, simmem.Load)
	simmem.AccessRunUnit(d.t, d.blkAddr, 256, 4, simmem.Store)
	d.t.Ops(ops)
}

// traceDCTOp accounts one inverse transform. The decoder uses the
// direct-form conformance IDCT of the reference software.
func (d *Decoder) traceDCTOp() {
	d.tabs.traceIDCT(d.t, d.blkAddr)
}

func (d *Decoder) storeBlock(p *video.Plane, x, y int, blk *dct.Block) {
	for r := 0; r < 8; r++ {
		off := (y+r)*p.Stride + x
		row := p.Pix[off : off+8]
		for i := 0; i < 8; i++ {
			row[i] = clampPix(blk[r*8+i])
		}
	}
	simmem.AccessStrided(d.t, p.Addr+uint64(y*p.Stride+x), 8, p.Stride, 8, simmem.Store)
	simmem.AccessRunUnit(d.t, d.blkAddr, 256, 4, simmem.Load)
	d.tabs.traceClip(d.t)
	d.t.Ops(8 * 10)
}

func (d *Decoder) addBlock(pred, out *video.Plane, x, y, px, py int, blk *dct.Block) {
	for r := 0; r < 8; r++ {
		po := (py+r)*pred.Stride + px
		oo := (y+r)*out.Stride + x
		pr := pred.Pix[po : po+8]
		or := out.Pix[oo : oo+8]
		for i := 0; i < 8; i++ {
			or[i] = clampPix(int32(pr[i]) + blk[r*8+i])
		}
	}
	simmem.AccessStrided(d.t, pred.Addr+uint64(py*pred.Stride+px), 8, pred.Stride, 8, simmem.Load)
	simmem.AccessStrided(d.t, out.Addr+uint64(y*out.Stride+x), 8, out.Stride, 8, simmem.Store)
	simmem.AccessRunUnit(d.t, d.blkAddr, 256, 4, simmem.Load)
	d.tabs.traceClip(d.t)
	d.t.Ops(8 * 12)
}

// fillGreyMB paints a transparent macroblock mid-grey (the synthetic
// renderer's convention for outside-object pixels).
func fillGreyMB(t simmem.Tracer, f *video.Frame, x, y int) {
	for r := 0; r < 16; r++ {
		off := (y+r)*f.Y.Stride + x
		row := f.Y.Pix[off : off+16]
		for i := range row {
			row[i] = 128
		}
	}
	simmem.AccessStridedUnit(t, f.Y.Addr+uint64(y*f.Y.Stride+x), 16, f.Y.Stride, 16, 8, simmem.Store)
	for r := 0; r < 8; r++ {
		for _, p := range []*video.Plane{f.Cb, f.Cr} {
			off := (y/2+r)*p.Stride + x/2
			row := p.Pix[off : off+8]
			for i := range row {
				row[i] = 128
			}
		}
	}
	for _, p := range []*video.Plane{f.Cb, f.Cr} {
		simmem.AccessStridedUnit(t, p.Addr+uint64((y/2)*p.Stride+x/2), 8, p.Stride, 8, 8, simmem.Store)
	}
	t.Ops(16 * 16 / 4)
}
