package codec

import (
	"fmt"

	"repro/internal/bits"
	"repro/internal/dct"
	"repro/internal/motion"
	"repro/internal/shape"
	"repro/internal/simmem"
	"repro/internal/video"
	"repro/internal/vop"
)

// Encoder encodes one video object layer. It owns the reconstruction
// ring (the decoded-picture buffer an encoder must maintain to predict
// from what the decoder will see) and all scratch storage, allocated in
// the simulated address space.
type Encoder struct {
	cfg   Config
	space *simmem.Space
	t     simmem.Tracer
	ph    PhaseRecorder

	search motion.Searcher
	quant  dct.Quantizer
	qp     int

	w  *bits.Writer
	st *streamTracer

	// Reconstruction ring: anchors the following VOPs predict from.
	ring     [3]*video.Frame
	ringDisp [3]int // display index held by each slot, -1 if empty

	pred     *video.Frame // macroblock-sized motion-compensated prediction buffer
	scratchF *video.Frame // B-VOP forward prediction MB buffer
	scratchB *video.Frame // B-VOP backward prediction MB buffer

	blkAddr uint64 // simulated address of the DCT scratch block
	tabs    kernelTables

	// padStager models the per-anchor padded/interpolated reference
	// image rebuild of the reference encoder (see staging.go).
	padStager *vopStager

	// Per-VOP statistics.
	VOPBits  []int
	VOPTypes []vop.Type
}

// NewEncoder builds an encoder for cfg, allocating its buffers in space
// and reporting memory traffic to t.
func NewEncoder(cfg Config, space *simmem.Space, t simmem.Tracer, ph PhaseRecorder) (*Encoder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if t == nil {
		t = simmem.Nop{}
	}
	if ph == nil {
		ph = NopPhases{}
	}
	if cfg.FrameRate <= 0 {
		cfg.FrameRate = 30
	}
	e := &Encoder{
		cfg:   cfg,
		space: space,
		t:     t,
		ph:    ph,
		search: motion.Searcher{
			Range:            cfg.SearchRange,
			PrefetchInterval: cfg.PrefetchInterval,
		},
		quant:    dct.NewQuantizer(cfg.QP),
		qp:       cfg.QP,
		pred:     video.NewFrame(space, 16, 16),
		scratchF: video.NewFrame(space, 16, 16),
		scratchB: video.NewFrame(space, 16, 16),
		blkAddr:  space.Alloc(256, 64),
		tabs:     newKernelTables(space),
	}
	for i := range e.ring {
		e.ring[i] = video.NewFrame(space, cfg.W, cfg.H)
		e.ringDisp[i] = -1
	}
	frameBytes := cfg.W * cfg.H * 3 / 2
	e.padStager = newVOPStager(space, t, frameBytes, 8, 2)
	return e, nil
}

// EncodeSequence encodes display-order frames and returns the layer
// bitstream. Frames must match the configured dimensions; when Shape is
// set each frame must carry an alpha plane.
func (e *Encoder) EncodeSequence(frames []*video.Frame) ([]byte, error) {
	if err := e.Begin(len(frames)); err != nil {
		return nil, err
	}
	items, err := e.cfg.GOP.Schedule(len(frames))
	if err != nil {
		return nil, err
	}
	for _, it := range items {
		if err := e.EncodeItem(it, frames[it.Display]); err != nil {
			return nil, err
		}
	}
	return e.End()
}

// Begin starts a new bitstream for nFrames display frames. Use with
// EncodeItem/End for interleaved multi-object sessions; EncodeSequence
// wraps the three for the single-object case.
func (e *Encoder) Begin(nFrames int) error {
	e.w = bits.NewWriter(1 << 16)
	e.st = newStreamTracer(e.t, e.space, 1<<20, simmem.Store)
	e.VOPBits = e.VOPBits[:0]
	e.VOPTypes = e.VOPTypes[:0]
	for i := range e.ringDisp {
		e.ringDisp[i] = -1
	}
	e.qp = e.cfg.QP
	return e.writeHeader(nFrames)
}

// EncodeItem codes one scheduled VOP. Items must arrive in a valid
// coding order (references already coded).
func (e *Encoder) EncodeItem(it vop.Item, f *video.Frame) error {
	if f.W != e.cfg.W || f.H != e.cfg.H {
		return fmt.Errorf("codec: frame %d is %dx%d, config %dx%d",
			it.Display, f.W, f.H, e.cfg.W, e.cfg.H)
	}
	if e.cfg.Shape && f.Alpha == nil {
		return fmt.Errorf("codec: shape coding enabled but frame %d has no alpha", it.Display)
	}
	return e.encodeVOP(it, f)
}

// End terminates the stream and returns its bytes.
func (e *Encoder) End() ([]byte, error) {
	e.w.PutStartcode(bits.SCEndOfSequence)
	e.st.advance(e.w.Len())
	return e.w.Bytes(), nil
}

func (e *Encoder) writeHeader(nFrames int) error {
	w := e.w
	w.PutStartcode(bits.SCVideoObjectLayer)
	w.PutUE(uint32(e.cfg.W / 16))
	w.PutUE(uint32(e.cfg.H / 16))
	w.PutUE(uint32(e.cfg.GOP.N))
	w.PutUE(uint32(e.cfg.GOP.M))
	w.PutUE(uint32(e.cfg.QP))
	if e.cfg.Shape {
		w.PutBit(1)
	} else {
		w.PutBit(0)
	}
	w.PutUE(uint32(nFrames))
	e.st.advance(w.Len())
	return nil
}

// ringSlot returns the reconstruction frame holding display index d.
func (e *Encoder) ringSlot(d int) *video.Frame {
	for i, rd := range e.ringDisp {
		if rd == d {
			return e.ring[i]
		}
	}
	return nil
}

// ringClaim returns a slot for a new anchor at display d, evicting the
// oldest held anchor.
func (e *Encoder) ringClaim(d int) *video.Frame {
	oldest, oi := 1<<30, 0
	for i, rd := range e.ringDisp {
		if rd < 0 {
			oi = i
			break
		}
		if rd < oldest {
			oldest, oi = rd, i
		}
	}
	e.ringDisp[oi] = d
	return e.ring[oi]
}

// encodeVOP codes one VOP. The VopEncode phase covers exactly what the
// paper's instrumented VopCode() covers — shape, texture and motion
// coding of the plane; reference staging and rate control sit outside
// the phase, like the reference encoder's surrounding VOP loop.
func (e *Encoder) encodeVOP(it vop.Item, f *video.Frame) error {
	startBits := e.w.Len()
	w := e.w
	w.PutStartcode(bits.SCVOP)
	w.PutBits(uint32(it.Type), 2)
	w.PutUE(uint32(it.Display))
	w.PutUE(uint32(e.qp))
	e.st.advance(w.Len())

	quant := dct.NewQuantizer(e.qp)

	var fwd, bwd *video.Frame
	if it.Fwd >= 0 {
		if fwd = e.ringSlot(it.Fwd); fwd == nil {
			return fmt.Errorf("codec: forward reference %d not in ring", it.Fwd)
		}
	}
	if it.Bwd >= 0 {
		if bwd = e.ringSlot(it.Bwd); bwd == nil {
			return fmt.Errorf("codec: backward reference %d not in ring", it.Bwd)
		}
	}

	var recon *video.Frame
	if it.Type != vop.TypeB {
		recon = e.ringClaim(it.Display)
	}

	e.ph.PhaseBegin(PhaseVopEncode)
	if e.cfg.Shape {
		if err := e.writeShapeSegment(f.Alpha); err != nil {
			e.ph.PhaseEnd(PhaseVopEncode)
			return err
		}
	}
	ebx0, eby0, ebx1, eby1 := 0, 0, e.cfg.W, e.cfg.H
	if e.cfg.Shape {
		// Shaped VOPs are coded over their bounding box only.
		ebx0, eby0, ebx1, eby1 = video.BBox(f.Alpha, e.cfg.W, e.cfg.H)
	}
	for mby := eby0 / 16; mby < (eby1+15)/16; mby++ {
		// MV and intra-DC prediction reset per macroblock row.
		predF, predB := motion.MV{}, motion.MV{}
		dcPred := newDCPred()
		for mbx := ebx0 / 16; mbx < (ebx1+15)/16; mbx++ {
			x, y := mbx*16, mby*16
			if e.cfg.Shape && shape.Classify(f.Alpha, x, y) == shape.BABTransparent {
				// Fully transparent macroblocks carry no texture bits;
				// both sides derive this from the decoded alpha.
				continue
			}
			e.tabs.traceMBStruct(e.t)
			var err error
			switch it.Type {
			case vop.TypeI:
				err = e.encodeIntraMB(quant, f, recon, x, y, &dcPred)
			case vop.TypeP:
				predF, err = e.encodeInterMB(quant, f, fwd, recon, x, y, predF)
			case vop.TypeB:
				predF, predB, err = e.encodeBMB(quant, f, fwd, bwd, x, y, predF, predB)
			}
			if err != nil {
				e.ph.PhaseEnd(PhaseVopEncode)
				return err
			}
			e.st.advance(w.Len())
		}
	}
	e.ph.PhaseEnd(PhaseVopEncode)
	if recon != nil && !e.cfg.DisableStaging {
		// Rebuild the padded + interpolated reference images the next
		// VOPs' motion search and compensation read (reference-encoder
		// behaviour; see staging.go). Shaped VOPs stage their bounding
		// box only.
		e.padStager.stageRegion(recon, ebx0, eby0, ebx1, eby1)
	}
	bitsUsed := int(e.w.Len() - startBits)
	e.VOPBits = append(e.VOPBits, bitsUsed)
	e.VOPTypes = append(e.VOPTypes, it.Type)
	e.rateControl(bitsUsed)
	return nil
}

// writeShapeSegment codes the alpha plane as a length-prefixed segment
// so the decoder can hand exactly those bytes to the arithmetic decoder.
func (e *Encoder) writeShapeSegment(alpha *video.Plane) error {
	sub := bits.NewWriter(1024)
	if err := shape.EncodePlane(sub, e.t, alpha); err != nil {
		return err
	}
	payload := sub.Bytes()
	e.w.PutUE(uint32(len(payload)))
	e.w.AlignZero()
	for _, b := range payload {
		e.w.PutBits(uint32(b), 8)
	}
	e.st.advance(e.w.Len())
	return nil
}

// rateControl nudges QP toward the bit budget (a minimal TM5-flavoured
// reaction loop; the paper's runs target 38400 bit/s).
func (e *Encoder) rateControl(bitsUsed int) {
	if e.cfg.TargetBitrate <= 0 {
		return
	}
	target := e.cfg.TargetBitrate / e.cfg.FrameRate
	switch {
	case bitsUsed > target*5/4 && e.qp < 31:
		e.qp++
	case bitsUsed < target*3/4 && e.qp > 1:
		e.qp--
	}
}

// traceBlockOp accounts the scratch-block traffic and ALU work of one
// 8×8 transform-domain operation (DCT, quant, ...) at the timing model's
// granularity: the 256-byte coefficient block is read and written once.
func (e *Encoder) traceBlockOp(ops uint64) {
	simmem.AccessRunUnit(e.t, e.blkAddr, 256, 4, simmem.Load)
	simmem.AccessRunUnit(e.t, e.blkAddr, 256, 4, simmem.Store)
	e.t.Ops(ops)
}

// traceDCTOp accounts one forward or inverse transform, including the
// basis-table loads.
func (e *Encoder) traceDCTOp() {
	e.tabs.traceDCT(e.t, e.blkAddr)
}

// gatherBlock loads the 8×8 samples at (x, y) of p into blk, tracing the
// plane loads and scratch stores.
func (e *Encoder) gatherBlock(p *video.Plane, x, y int, blk *dct.Block) {
	for r := 0; r < 8; r++ {
		off := (y+r)*p.Stride + x
		row := p.Pix[off : off+8]
		for i := 0; i < 8; i++ {
			blk[r*8+i] = int32(row[i])
		}
	}
	simmem.AccessStrided(e.t, p.Addr+uint64(y*p.Stride+x), 8, p.Stride, 8, simmem.Load)
	simmem.AccessRunUnit(e.t, e.blkAddr, 256, 4, simmem.Store)
	e.t.Ops(8 * 10)
}

// gatherDiffBlock loads cur−pred into blk; (px, py) is the block origin
// inside the (macroblock-sized) prediction plane.
func (e *Encoder) gatherDiffBlock(cur, pred *video.Plane, x, y, px, py int, blk *dct.Block) {
	for r := 0; r < 8; r++ {
		co := (y+r)*cur.Stride + x
		po := (py+r)*pred.Stride + px
		cr := cur.Pix[co : co+8]
		pr := pred.Pix[po : po+8]
		for i := 0; i < 8; i++ {
			blk[r*8+i] = int32(cr[i]) - int32(pr[i])
		}
	}
	simmem.AccessStrided(e.t, cur.Addr+uint64(y*cur.Stride+x), 8, cur.Stride, 8, simmem.Load)
	simmem.AccessStrided(e.t, pred.Addr+uint64(py*pred.Stride+px), 8, pred.Stride, 8, simmem.Load)
	simmem.AccessRunUnit(e.t, e.blkAddr, 256, 4, simmem.Store)
	e.t.Ops(8 * 14)
}

// storeBlock writes clamp(blk) into recon at (x, y).
func (e *Encoder) storeBlock(recon *video.Plane, x, y int, blk *dct.Block) {
	for r := 0; r < 8; r++ {
		off := (y+r)*recon.Stride + x
		row := recon.Pix[off : off+8]
		for i := 0; i < 8; i++ {
			row[i] = clampPix(blk[r*8+i])
		}
	}
	simmem.AccessStrided(e.t, recon.Addr+uint64(y*recon.Stride+x), 8, recon.Stride, 8, simmem.Store)
	simmem.AccessRunUnit(e.t, e.blkAddr, 256, 4, simmem.Load)
	e.tabs.traceClip(e.t)
	e.t.Ops(8 * 10)
}

// addBlock writes clamp(pred + blk) into recon at (x, y); (px, py) is
// the block origin inside the prediction plane.
func (e *Encoder) addBlock(pred, recon *video.Plane, x, y, px, py int, blk *dct.Block) {
	for r := 0; r < 8; r++ {
		po := (py+r)*pred.Stride + px
		ro := (y+r)*recon.Stride + x
		pr := pred.Pix[po : po+8]
		rr := recon.Pix[ro : ro+8]
		for i := 0; i < 8; i++ {
			rr[i] = clampPix(int32(pr[i]) + blk[r*8+i])
		}
	}
	simmem.AccessStrided(e.t, pred.Addr+uint64(py*pred.Stride+px), 8, pred.Stride, 8, simmem.Load)
	simmem.AccessStrided(e.t, recon.Addr+uint64(y*recon.Stride+x), 8, recon.Stride, 8, simmem.Store)
	simmem.AccessRunUnit(e.t, e.blkAddr, 256, 4, simmem.Load)
	e.tabs.traceClip(e.t)
	e.t.Ops(8 * 12)
}

// lumaBlocks returns the four 8×8 luma block origins of the macroblock
// at (x, y).
func lumaBlocks(x, y int) [4][2]int {
	return [4][2]int{{x, y}, {x + 8, y}, {x, y + 8}, {x + 8, y + 8}}
}

// encodeIntraMB codes one intra macroblock: 4 luma + 2 chroma blocks,
// forward DCT, intra quantization with DC prediction (the DC level is
// coded differentially against the previous block of the same plane in
// the macroblock row, as the standard's simplified DC gradient rule
// does), zigzag and run-level VLC, followed by reconstruction into
// recon.
func (e *Encoder) encodeIntraMB(quant dct.Quantizer, f, recon *video.Frame, x, y int, dc *dcPred) error {
	e.w.PutBits(uint32(mbIntra), 3)
	var blk dct.Block
	var scan [64]int32
	code := func(p, rp *video.Plane, bx, by int, pred *int32) {
		e.tabs.traceCalls(e.t, 5)
		e.gatherBlock(p, bx, by, &blk)
		dct.Forward(&blk)
		e.traceDCTOp()
		quant.QuantIntra(&blk)
		e.traceBlockOp(dct.OpsQuant)
		// Differential DC against the row predictor.
		EncodeDCD(e.w, blk[0]-*pred)
		*pred = blk[0]
		dcLevel := blk[0]
		blk[0] = 0
		dct.Scan(&blk, &scan)
		e.traceBlockOp(64 * 2)
		events := EncodeCoeffBlock(e.w, &scan)
		e.tabs.traceVLC(e.t, events)
		// Reconstruct exactly as the decoder will.
		blk[0] = dcLevel
		quant.DequantIntra(&blk)
		e.traceBlockOp(dct.OpsQuant)
		dct.Inverse(&blk)
		e.traceDCTOp()
		e.storeBlock(rp, bx, by, &blk)
	}
	for _, b := range lumaBlocks(x, y) {
		code(f.Y, recon.Y, b[0], b[1], &dc.y)
	}
	code(f.Cb, recon.Cb, x/2, y/2, &dc.cb)
	code(f.Cr, recon.Cr, x/2, y/2, &dc.cr)
	return nil
}

// residualBlock transforms and codes one residual block against pred,
// reconstructing into recon when recon != nil. (px, py) is the block's
// origin inside the macroblock-sized prediction plane. Returns whether
// the block had any nonzero quantized coefficients.
func (e *Encoder) residualBlock(quant dct.Quantizer, cur, pred, recon *video.Plane, bx, by, px, py int) bool {
	var blk dct.Block
	var scan [64]int32
	e.tabs.traceCalls(e.t, 5)
	e.gatherDiffBlock(cur, pred, bx, by, px, py, &blk)
	dct.Forward(&blk)
	e.traceDCTOp()
	quant.QuantInter(&blk)
	e.traceBlockOp(dct.OpsQuant)
	coded := false
	for _, v := range blk {
		if v != 0 {
			coded = true
			break
		}
	}
	e.t.Ops(64)
	if coded {
		dct.Scan(&blk, &scan)
		e.traceBlockOp(64 * 2)
		events := EncodeCoeffBlock(e.w, &scan)
		e.tabs.traceVLC(e.t, events)
	}
	if recon != nil {
		if coded {
			quant.DequantInter(&blk)
			e.traceBlockOp(dct.OpsQuant)
			dct.Inverse(&blk)
			e.traceDCTOp()
			e.addBlock(pred, recon, bx, by, px, py, &blk)
		} else {
			// Reconstruction is the prediction itself.
			var zero dct.Block
			e.addBlock(pred, recon, bx, by, px, py, &zero)
		}
	}
	return coded
}

// compensateMB produces the full prediction macroblock (luma + chroma)
// in the MB-sized e.pred buffer from ref displaced by mv.
func (e *Encoder) compensateMB(ref *video.Frame, x, y int, mv motion.MV) {
	motion.CompensateTo(e.t, e.pred.Y, ref.Y, 0, 0, x, y, 16, mv)
	cx, cy := chromaMV(mv.X, mv.Y)
	cmv := motion.MV{X: cx, Y: cy}
	motion.CompensateTo(e.t, e.pred.Cb, ref.Cb, 0, 0, x/2, y/2, 8, cmv)
	motion.CompensateTo(e.t, e.pred.Cr, ref.Cr, 0, 0, x/2, y/2, 8, cmv)
}

// encodeInterMB codes one P-VOP macroblock: motion search, prediction,
// residual coding and reconstruction. predMV is the left-neighbour MV
// predictor; the (possibly updated) predictor is returned.
func (e *Encoder) encodeInterMB(quant dct.Quantizer, f, ref, recon *video.Frame, x, y int, predMV motion.MV) (motion.MV, error) {
	var alpha *video.Plane
	if e.cfg.Shape {
		alpha = f.Alpha
	}
	full, sad := e.search.SearchWith(e.cfg.SearchAlg, e.t, f.Y, ref.Y, alpha, x, y)
	mv, _ := motion.RefineHalfPel(e.t, f.Y, ref.Y, x, y, full, sad)

	e.compensateMB(ref, x, y, mv)

	// Residual blocks are coded into a side buffer first so the
	// macroblock can collapse to a skip when the zero vector predicts
	// perfectly (bitstream order is mode, MVD, coded flags, blocks).
	var codedFlags [6]bool
	anyCoded := false
	sub := bits.NewWriter(512)
	savedW := e.w
	e.w = sub
	for i, b := range lumaBlocks(x, y) {
		codedFlags[i] = e.residualBlock(quant, f.Y, e.pred.Y, recon.Y, b[0], b[1], b[0]-x, b[1]-y)
		anyCoded = anyCoded || codedFlags[i]
	}
	codedFlags[4] = e.residualBlock(quant, f.Cb, e.pred.Cb, recon.Cb, x/2, y/2, 0, 0)
	codedFlags[5] = e.residualBlock(quant, f.Cr, e.pred.Cr, recon.Cr, x/2, y/2, 0, 0)
	anyCoded = anyCoded || codedFlags[4] || codedFlags[5]
	e.w = savedW

	if !anyCoded && mv == (motion.MV{}) {
		e.w.PutBits(uint32(mbSkip), 3)
		return motion.MV{}, nil // skip resets the MV predictor
	}
	e.w.PutBits(uint32(mbInterFwd), 3)
	EncodeMVDPair(e.w, mv, predMV)
	for _, c := range codedFlags {
		if c {
			e.w.PutBit(1)
		} else {
			e.w.PutBit(0)
		}
	}
	appendWriter(e.w, sub)
	return mv, nil
}

// encodeBMB codes one B-VOP macroblock, choosing among forward,
// backward and interpolated prediction by SAD.
func (e *Encoder) encodeBMB(quant dct.Quantizer, f, fwd, bwd *video.Frame, x, y int, predF, predB motion.MV) (motion.MV, motion.MV, error) {
	var alpha *video.Plane
	if e.cfg.Shape {
		alpha = f.Alpha
	}
	fFull, fSAD := e.search.SearchWith(e.cfg.SearchAlg, e.t, f.Y, fwd.Y, alpha, x, y)
	fMV, fSAD := motion.RefineHalfPel(e.t, f.Y, fwd.Y, x, y, fFull, fSAD)
	bFull, bSAD := e.search.SearchWith(e.cfg.SearchAlg, e.t, f.Y, bwd.Y, alpha, x, y)
	bMV, bSAD := motion.RefineHalfPel(e.t, f.Y, bwd.Y, x, y, bFull, bSAD)

	// Interpolated cost: build the averaged prediction and measure SAD.
	motion.CompensateAvgTo(e.t, e.pred.Y, fwd.Y, bwd.Y, 0, 0, x, y, 16, fMV, bMV, e.scratchF.Y, e.scratchB.Y)
	iSAD := motion.SAD16(e.t, f.Y, e.pred.Y, x, y, 0, 0, 1<<30)

	mode := mbInterInterp
	switch {
	case fSAD <= bSAD && fSAD <= iSAD:
		mode = mbInterFwd
	case bSAD < fSAD && bSAD <= iSAD:
		mode = mbInterBwd
	}

	// Build the chosen prediction (luma already correct for interp).
	switch mode {
	case mbInterFwd:
		e.compensateMB(fwd, x, y, fMV)
	case mbInterBwd:
		e.compensateMB(bwd, x, y, bMV)
	case mbInterInterp:
		fcx, fcy := chromaMV(fMV.X, fMV.Y)
		bcx, bcy := chromaMV(bMV.X, bMV.Y)
		motion.CompensateAvgTo(e.t, e.pred.Cb, fwd.Cb, bwd.Cb, 0, 0, x/2, y/2, 8,
			motion.MV{X: fcx, Y: fcy}, motion.MV{X: bcx, Y: bcy}, e.scratchF.Cb, e.scratchB.Cb)
		motion.CompensateAvgTo(e.t, e.pred.Cr, fwd.Cr, bwd.Cr, 0, 0, x/2, y/2, 8,
			motion.MV{X: fcx, Y: fcy}, motion.MV{X: bcx, Y: bcy}, e.scratchF.Cr, e.scratchB.Cr)
	}

	e.w.PutBits(uint32(mode), 3)
	if mode == mbInterFwd || mode == mbInterInterp {
		EncodeMVDPair(e.w, fMV, predF)
		predF = fMV
	}
	if mode == mbInterBwd || mode == mbInterInterp {
		EncodeMVDPair(e.w, bMV, predB)
		predB = bMV
	}

	var codedFlags [6]bool
	sub := bits.NewWriter(512)
	savedW := e.w
	e.w = sub
	for i, b := range lumaBlocks(x, y) {
		codedFlags[i] = e.residualBlock(quant, f.Y, e.pred.Y, nil, b[0], b[1], b[0]-x, b[1]-y)
	}
	codedFlags[4] = e.residualBlock(quant, f.Cb, e.pred.Cb, nil, x/2, y/2, 0, 0)
	codedFlags[5] = e.residualBlock(quant, f.Cr, e.pred.Cr, nil, x/2, y/2, 0, 0)
	e.w = savedW
	for _, c := range codedFlags {
		if c {
			e.w.PutBit(1)
		} else {
			e.w.PutBit(0)
		}
	}
	appendWriter(e.w, sub)
	return predF, predB, nil
}

// appendWriter copies the bits of src onto dst. src is byte-padded; the
// trailing pad inside a macroblock would desynchronise the decoder, so
// the exact bit length is transferred.
func appendWriter(dst *bits.Writer, src *bits.Writer) {
	n := src.Len()
	data := src.Bytes()
	var i uint64
	for ; i+8 <= n; i += 8 {
		dst.PutBits(uint32(data[i/8]), 8)
	}
	for ; i < n; i++ {
		b := (data[i/8] >> (7 - i%8)) & 1
		dst.PutBit(uint32(b))
	}
}

// Recon returns the reconstructed anchor for display index d, or nil;
// the enhancement layer and tests use it.
func (e *Encoder) Recon(d int) *video.Frame { return e.ringSlot(d) }
