package codec

import (
	"repro/internal/bits"
	"repro/internal/motion"
	"repro/internal/vlc"
)

// EncodeCoeffBlock writes one zigzag-scanned quantized block with the
// run-level VLC. Returns the number of coefficient events.
func EncodeCoeffBlock(w *bits.Writer, scan *[64]int32) int {
	return vlc.EncodeBlock(w, scan)
}

// DecodeCoeffBlock reads one coefficient block.
func DecodeCoeffBlock(r *bits.Reader, scan *[64]int32) error {
	return vlc.DecodeBlock(r, scan)
}

// EncodeMVDPair writes the motion vector as differences against the
// predictor (half-pel units, x then y).
func EncodeMVDPair(w *bits.Writer, mv, pred motion.MV) {
	vlc.EncodeMVD(w, mv.X-pred.X)
	vlc.EncodeMVD(w, mv.Y-pred.Y)
}

// DecodeMVDPair reads a motion vector given its predictor.
func DecodeMVDPair(r *bits.Reader, pred motion.MV) (motion.MV, error) {
	dx, err := vlc.DecodeMVD(r)
	if err != nil {
		return motion.MV{}, err
	}
	dy, err := vlc.DecodeMVD(r)
	if err != nil {
		return motion.MV{}, err
	}
	return motion.MV{X: pred.X + dx, Y: pred.Y + dy}, nil
}

// countEvents returns the number of run-level events a decoded scan
// contained (the nonzero coefficients), for table-traffic accounting.
func countEvents(scan *[64]int32) int {
	n := 0
	for _, v := range scan {
		if v != 0 {
			n++
		}
	}
	return n
}

// EncodeDCD writes a differential intra-DC level.
func EncodeDCD(w *bits.Writer, d int32) { vlc.EncodeDCD(w, d) }

// DecodeDCD reads a differential intra-DC level.
func DecodeDCD(r *bits.Reader) (int32, error) { return vlc.DecodeDCD(r) }
