package codec

import (
	"fmt"

	"repro/internal/simmem"
	"repro/internal/video"
	"repro/internal/vop"
)

// SessionConfig describes a multi-object, possibly multi-layer coding
// session (the paper's Tables 4–7 use 3 VOs with 1 or 2 VOLs each).
type SessionConfig struct {
	Object  Config // per-object layer configuration
	Objects int    // number of visual objects
	Layers  int    // 1 (base only) or 2 (base + enhancement)
	EnhQP   int    // enhancement quantizer (0 = half the base QP)
}

// Validate checks the session configuration.
func (c SessionConfig) Validate() error {
	if err := c.Object.Validate(); err != nil {
		return err
	}
	if c.Objects < 1 || c.Objects > 16 {
		return fmt.Errorf("codec: object count %d out of [1,16]", c.Objects)
	}
	if c.Layers < 1 || c.Layers > 2 {
		return fmt.Errorf("codec: layer count %d out of [1,2]", c.Layers)
	}
	return nil
}

func (c SessionConfig) enhQP() int {
	if c.EnhQP > 0 {
		return c.EnhQP
	}
	qp := c.Object.QP / 2
	if qp < 1 {
		qp = 1
	}
	return qp
}

// SessionStream is the muxed output of a session: one base stream per
// object, plus one enhancement stream per object for two-layer sessions.
type SessionStream struct {
	Objects int
	Layers  int
	Base    [][]byte
	Enh     [][]byte
}

// TotalBytes returns the total coded size across objects and layers.
func (s *SessionStream) TotalBytes() int {
	n := 0
	for _, b := range s.Base {
		n += len(b)
	}
	for _, b := range s.Enh {
		n += len(b)
	}
	return n
}

// EncodeSession encodes objFrames (one display-order frame sequence per
// visual object) under cfg. Objects are interleaved per coded VOP, as
// the reference encoder's object loop is inside the frame loop — this
// is what makes the multi-object working set compete for cache in the
// way the paper measures.
//
// For two-layer sessions the encoder also runs the embedded base-layer
// decode (a scalable encoder reconstructs the base to predict the
// enhancement) and codes the per-object enhancement residuals.
func EncodeSession(cfg SessionConfig, space *simmem.Space, t simmem.Tracer, ph PhaseRecorder, objFrames [][]*video.Frame) (*SessionStream, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(objFrames) != cfg.Objects {
		return nil, fmt.Errorf("codec: %d frame sequences for %d objects", len(objFrames), cfg.Objects)
	}
	n := len(objFrames[0])
	for i, fs := range objFrames {
		if len(fs) != n {
			return nil, fmt.Errorf("codec: object %d has %d frames, want %d", i, len(fs), n)
		}
	}
	encs := make([]*Encoder, cfg.Objects)
	for i := range encs {
		e, err := NewEncoder(cfg.Object, space, t, ph)
		if err != nil {
			return nil, err
		}
		if err := e.Begin(n); err != nil {
			return nil, err
		}
		encs[i] = e
	}
	items, err := cfg.Object.GOP.Schedule(n)
	if err != nil {
		return nil, err
	}
	for _, it := range items {
		for o, e := range encs {
			if err := e.EncodeItem(it, objFrames[o][it.Display]); err != nil {
				return nil, fmt.Errorf("codec: object %d VOP %d: %w", o, it.Display, err)
			}
		}
	}
	ss := &SessionStream{Objects: cfg.Objects, Layers: cfg.Layers, Base: make([][]byte, cfg.Objects)}
	for i, e := range encs {
		b, err := e.End()
		if err != nil {
			return nil, err
		}
		ss.Base[i] = b
	}
	if cfg.Layers == 1 {
		return ss, nil
	}
	// Two layers: embedded base decode plus enhancement residual coding.
	ss.Enh = make([][]byte, cfg.Objects)
	for o := 0; o < cfg.Objects; o++ {
		dec := NewDecoder(space, t, NopPhases{})
		baseOut, err := dec.DecodeSequence(ss.Base[o])
		if err != nil {
			return nil, fmt.Errorf("codec: embedded base decode of object %d: %w", o, err)
		}
		enh, err := NewEnhEncoder(EnhConfig{W: cfg.Object.W, H: cfg.Object.H, QP: cfg.enhQP()}, space, t, ph)
		if err != nil {
			return nil, err
		}
		es, err := enh.EncodeSequence(objFrames[o], baseOut)
		if err != nil {
			return nil, err
		}
		ss.Enh[o] = es
	}
	return ss, nil
}

// DecodeSession decodes a session stream, returning one display-order
// frame sequence per object. Objects are interleaved per VOP like the
// encoder; enhancement layers are applied after the base pass.
func DecodeSession(ss *SessionStream, space *simmem.Space, t simmem.Tracer, ph PhaseRecorder) ([][]*video.Frame, error) {
	if ss.Objects != len(ss.Base) {
		return nil, fmt.Errorf("codec: session has %d base streams for %d objects", len(ss.Base), ss.Objects)
	}
	decs := make([]*Decoder, ss.Objects)
	for i := range decs {
		d := NewDecoder(space, t, ph)
		if err := d.Begin(ss.Base[i]); err != nil {
			return nil, fmt.Errorf("codec: object %d header: %w", i, err)
		}
		decs[i] = d
	}
	n := decs[0].NFrames()
	out := make([][]*video.Frame, ss.Objects)
	rbs := make([]vop.ReorderBuffer, ss.Objects)
	decoded := make([]map[int]*video.Frame, ss.Objects)
	for i := range out {
		if decs[i].NFrames() != n {
			return nil, fmt.Errorf("codec: object %d frame count mismatch", i)
		}
		out[i] = make([]*video.Frame, n)
		decoded[i] = make(map[int]*video.Frame)
	}
	for v := 0; v < n; v++ {
		for o, d := range decs {
			it, f, err := d.DecodeNext()
			if err != nil {
				return nil, fmt.Errorf("codec: object %d VOP %d: %w", o, v, err)
			}
			decoded[o][it.Display] = f
			for _, e := range rbs[o].Push(it) {
				out[o][e.Display] = decoded[o][e.Display]
			}
		}
	}
	for o := range decs {
		for _, e := range rbs[o].Flush() {
			out[o][e.Display] = decoded[o][e.Display]
		}
		if err := decs[o].CheckEnd(); err != nil {
			return nil, fmt.Errorf("codec: object %d: %w", o, err)
		}
		for i, f := range out[o] {
			if f == nil {
				return nil, fmt.Errorf("codec: object %d frame %d missing", o, i)
			}
		}
	}
	if ss.Layers == 2 {
		if len(ss.Enh) != ss.Objects {
			return nil, fmt.Errorf("codec: session missing enhancement streams")
		}
		for o := 0; o < ss.Objects; o++ {
			ed := NewEnhDecoder(space, t, ph)
			if _, err := ed.DecodeSequence(ss.Enh[o], out[o]); err != nil {
				return nil, fmt.Errorf("codec: object %d enhancement: %w", o, err)
			}
		}
	}
	return out, nil
}
