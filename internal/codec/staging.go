package codec

import (
	"repro/internal/simmem"
	"repro/internal/video"
)

// vopStager models the reference software's per-VOP big-buffer traffic.
//
// The MoMuSys codec does not operate on bare frame arrays: every VOP is
// staged through large working images — border-padded reference copies
// for unrestricted motion compensation, interpolated images for half-pel
// search, and display-conversion output buffers. The paper's "120 MB of
// stable, resident memory" for a 1.2 MB frame comes from exactly this
// buffer population. These passes stream whole frames through the cache
// hierarchy once per VOP: they dominate the L2-level behaviour the paper
// measures (L2 line reuse of only ~2–7, L2 miss rates in the tens of
// percent, falling as the L2 grows large enough to retain the staging
// set between VOPs).
//
// The stager reproduces that traffic pattern without simulating the
// byte-exact padding arithmetic: per staged VOP it reads the source
// frame once and writes a rotation of padded-size buffers, at one
// reference per pixel, exactly as a pixel-copy loop compiled from C
// would.
type vopStager struct {
	t    simmem.Tracer
	bufs []uint64
	size int // bytes per staged buffer
	idx  int
}

// newVOPStager builds a stager whose rotation buffers are factor/4 times
// the frame size (factor 4 = one full frame), with `rotation` buffers.
func newVOPStager(space *simmem.Space, t simmem.Tracer, frameBytes, factorQuarters, rotation int) *vopStager {
	size := frameBytes * factorQuarters / 4
	s := &vopStager{t: t, size: size}
	for i := 0; i < rotation; i++ {
		s.bufs = append(s.bufs, space.AllocPage(size))
	}
	return s
}

// stage runs one full-frame staging pass: the source frame is read and
// the next rotation buffer written, pixel by pixel.
func (s *vopStager) stage(f *video.Frame) {
	s.stageRegion(f, 0, 0, f.W, f.H)
}

// stageRegion stages only the (x0, y0)–(x1, y1) region. Arbitrary-shape
// VOPs are coded over their bounding box, so their staged buffers scale
// with the object, not the frame — without this, multi-object sessions
// would overstate the staging traffic by the object count.
func (s *vopStager) stageRegion(f *video.Frame, x0, y0, x1, y1 int) {
	if x1 <= x0 || y1 <= y0 {
		return
	}
	s.loadRegion(f, x0, y0, x1, y1)
	frac := float64((x1-x0)*(y1-y0)) / float64(f.W*f.H)
	size := int(float64(s.size) * frac)
	buf := s.bufs[s.idx]
	s.idx = (s.idx + 1) % len(s.bufs)
	const chunk = 1 << 16
	for off := 0; off < size; off += chunk {
		n := size - off
		if n > chunk {
			n = chunk
		}
		simmem.AccessRunUnit(s.t, buf+uint64(off), n, 1, simmem.Store)
	}
	s.t.Ops(uint64(size) * 2)
}

// loadRegion reads every sample of the region once (a display-conversion
// or analysis read pass without a buffer write).
func (s *vopStager) loadRegion(f *video.Frame, x0, y0, x1, y1 int) {
	simmem.AccessStrided(s.t, f.Y.Addr+uint64(y0*f.Y.Stride+x0), x1-x0, f.Y.Stride, y1-y0, simmem.Load)
	crows := y1/2 - y0/2
	simmem.AccessStrided(s.t, f.Cb.Addr+uint64((y0/2)*f.Cb.Stride+x0/2), (x1-x0)/2, f.Cb.Stride, crows, simmem.Load)
	simmem.AccessStrided(s.t, f.Cr.Addr+uint64((y0/2)*f.Cr.Stride+x0/2), (x1-x0)/2, f.Cr.Stride, crows, simmem.Load)
	s.t.Ops(uint64((x1-x0)*(y1-y0)) * 2)
}
