// Package codec implements the MPEG-4 visual-profile encoder and decoder
// that the paper profiles: I/P/B video object planes over a GOP
// structure, 16×16 macroblock motion estimation and compensation with
// half-pel refinement, 8×8 DCT with H.263-style quantization, run-level
// VLC entropy coding, binary shape coding for arbitrary-shape objects,
// and multi-layer (scalable) coding via an enhancement layer.
//
// Every pixel buffer lives in the simulated address space and every hot
// kernel reports its memory traffic to a simmem.Tracer, so running the
// codec against a cache.Hierarchy reproduces the hardware-counter
// measurements of the paper (Tables 2–8, Figures 2–4).
package codec

import (
	"fmt"

	"repro/internal/motion"
	"repro/internal/simmem"
	"repro/internal/vop"
)

// MaxDimension bounds frame dimensions; it protects the decoder from
// allocating absurd buffers for a corrupt header (the largest size the
// study uses is 2048x1024).
const MaxDimension = 4096

// Config describes one video object layer's coding parameters.
type Config struct {
	W, H             int              // luma dimensions (multiples of 16)
	GOP              vop.GOP          // I/P/B structure
	QP               int              // quantizer parameter (1..31)
	SearchRange      int              // full-pel motion search radius
	PrefetchInterval int              // software-prefetch cadence (0 = none)
	Shape            bool             // arbitrary-shape (alpha) coding
	TargetBitrate    int              // bits/s for rate control (0 = constant QP)
	FrameRate        int              // Hz, used by rate control (default 30)
	SearchAlg        motion.Algorithm // integer search strategy (default full search)
	DisableStaging   bool             // ablation: skip the per-VOP staging passes
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.W <= 0 || c.H <= 0 || c.W%16 != 0 || c.H%16 != 0 {
		return fmt.Errorf("codec: dimensions %dx%d must be positive multiples of 16", c.W, c.H)
	}
	if c.W > MaxDimension || c.H > MaxDimension {
		return fmt.Errorf("codec: dimensions %dx%d exceed the %d limit", c.W, c.H, MaxDimension)
	}
	if err := c.GOP.Validate(); err != nil {
		return err
	}
	if c.QP < 1 || c.QP > 31 {
		return fmt.Errorf("codec: QP %d out of [1,31]", c.QP)
	}
	if c.SearchRange < 1 || c.SearchRange > 64 {
		return fmt.Errorf("codec: search range %d out of [1,64]", c.SearchRange)
	}
	return nil
}

// DefaultConfig returns the parameters used by the paper's workloads
// (adapted: the paper uses a 30 Hz 30-frame sequence at QP driven by a
// 38400 bit/s target; we default to constant QP 8 with rate control
// optional).
func DefaultConfig(w, h int) Config {
	return Config{
		W: w, H: h,
		GOP:              vop.DefaultGOP(),
		QP:               8,
		SearchRange:      8,
		PrefetchInterval: 48,
		FrameRate:        30,
	}
}

// PhaseRecorder observes the start and end of named codec phases. The
// harness uses it to reproduce Table 8 (per-phase counter deltas for
// VopEncode / VopDecode, the paper's instrumented VopCode() and
// DecodeVopCombMotionShapeTexture()).
type PhaseRecorder interface {
	PhaseBegin(name string)
	PhaseEnd(name string)
}

// NopPhases is a PhaseRecorder that ignores everything.
type NopPhases struct{}

// PhaseBegin implements PhaseRecorder.
func (NopPhases) PhaseBegin(string) {}

// PhaseEnd implements PhaseRecorder.
func (NopPhases) PhaseEnd(string) {}

// Phase names exposed to recorders.
const (
	PhaseVopEncode = "VopEncode" // the paper's VopCode()
	PhaseVopDecode = "VopDecode" // the paper's DecodeVopCombMotionShapeTexture()
)

// mbMode is the macroblock coding mode written to the bitstream.
type mbMode uint8

const (
	mbSkip mbMode = iota
	mbIntra
	mbInterFwd
	mbInterBwd
	mbInterInterp
)

const numMBModes = 5

// dcPred holds the per-plane intra DC predictors for one macroblock
// row. The reset value is the DC level of mid grey (128 samples × the
// DC weight 8, quantized by 8).
type dcPred struct {
	y, cb, cr int32
}

func newDCPred() dcPred {
	return dcPred{y: 128, cb: 128, cr: 128}
}

// clampPix clamps an int to the 8-bit sample range.
func clampPix(v int32) byte {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return byte(v)
}

// chromaMV derives the chroma-plane vector from a luma half-pel vector:
// the displacement halves, staying in half-pel units of the chroma grid.
func chromaMV(mx, my int) (int, int) {
	return divRound2(mx), divRound2(my)
}

func divRound2(v int) int {
	if v >= 0 {
		return v / 2
	}
	return -((-v) / 2)
}

// kernelTables holds the simulated addresses of the lookup tables the
// codec's kernels hit constantly: the pixel clip (saturation) table, the
// DCT cosine/basis tables, and the VLC code tables. These small tables
// stay resident in L1 and account for a large share of a real codec's
// graduated loads — omitting them would overstate the miss rate.
type kernelTables struct {
	clip  uint64 // 1 KB clip/saturation table
	cos   uint64 // 512 B DCT basis table
	vlc   uint64 // 4 KB VLC code tables
	stack uint64 // call-frame region (spills/restores)
}

func newKernelTables(space *simmem.Space) kernelTables {
	return kernelTables{
		clip:  space.Alloc(1024, 64),
		cos:   space.Alloc(512, 64),
		vlc:   space.Alloc(4096, 64),
		stack: space.Alloc(2048, 64),
	}
}

// traceDCT accounts one 8×8 separable transform at the reference code's
// granularity: each of the two passes runs 64 output coefficients × 8
// multiply-accumulates, every MAC loading a block element and a basis
// element (the reference software keeps both in memory, not registers).
// All of this traffic hits the resident block and table lines — it is
// the bulk of the L1-hitting reference stream the paper's counters see.
func (kt kernelTables) traceDCT(t simmem.Tracer, blkAddr uint64) {
	for pass := 0; pass < 2; pass++ {
		// 64 outputs × 8 MACs: one block load and one basis load each.
		for g := 0; g < 8; g++ {
			simmem.AccessRunUnit(t, blkAddr, 256, 4, simmem.Load)
			simmem.AccessRunUnit(t, kt.cos, 512, 8, simmem.Load)
		}
		simmem.AccessRunUnit(t, blkAddr, 256, 4, simmem.Store)
	}
	t.Ops(dctOpsForward)
}

// traceCalls accounts n function calls' register spill/restore traffic
// on the stack (the reference decoder calls per-block and per-event
// helpers; their frames stay L1 resident).
func (kt kernelTables) traceCalls(t simmem.Tracer, n int) {
	for i := 0; i < n; i++ {
		simmem.AccessRunUnit(t, kt.stack, 96, 8, simmem.Store)
		simmem.AccessRunUnit(t, kt.stack, 96, 8, simmem.Load)
	}
	t.Ops(uint64(n) * 8)
}

// traceClip accounts the per-pixel saturation lookups of one 8×8 block
// store.
func (kt kernelTables) traceClip(t simmem.Tracer) {
	simmem.AccessRunUnit(t, kt.clip, 64, 1, simmem.Load)
}

// traceVLC accounts the table walks and bit-buffer manipulation of n
// coefficient events (the reference decoder's showbits/flushbits pair
// reloads state from memory on every event).
func (kt kernelTables) traceVLC(t simmem.Tracer, n int) {
	if n <= 0 {
		return
	}
	if n > 64 {
		n = 64
	}
	for i := 0; i < 5; i++ {
		simmem.AccessRunUnit(t, kt.vlc, n*8, 2, simmem.Load)
	}
	t.Ops(uint64(n) * 30)
}

// traceIDCT accounts one direct-form (conformance) inverse transform:
// the reference decoder computes each of the 64 outputs as a 64-term
// double-precision sum over the coefficient block and a 64×64 basis
// matrix — 4096 multiply-accumulates, each loading a coefficient and a
// basis element. This is why reference decoders spend most of their
// graduated loads inside the IDCT.
func (kt kernelTables) traceIDCT(t simmem.Tracer, blkAddr uint64) {
	for g := 0; g < 32; g++ {
		simmem.AccessRunUnit(t, blkAddr, 256, 4, simmem.Load)
		simmem.AccessRunUnit(t, kt.cos, 512, 4, simmem.Load)
	}
	simmem.AccessRunUnit(t, blkAddr, 256, 4, simmem.Store)
	t.Ops(4096 * 2)
}

// traceMBStruct accounts the reference software's per-macroblock data
// staging: coefficients and parameters are copied into and out of
// macroblock structs on the way through the pipeline.
func (kt kernelTables) traceMBStruct(t simmem.Tracer) {
	simmem.AccessRunUnit(t, kt.stack+1024, 768, 2, simmem.Load)
	simmem.AccessRunUnit(t, kt.stack+1024, 768, 2, simmem.Store)
	t.Ops(256)
}

const dctOpsForward = 2*64*8*2 + 200

// streamTracer accounts the bitstream buffer's memory traffic: the
// encoder stores coded bytes sequentially, the decoder loads them. The
// cursor advances with the bit position so the traffic lands on
// realistic streaming addresses.
type streamTracer struct {
	t        simmem.Tracer
	base     uint64
	lastBits uint64
	kind     simmem.Kind
}

func newStreamTracer(t simmem.Tracer, space *simmem.Space, sizeHint int, kind simmem.Kind) *streamTracer {
	return &streamTracer{t: t, base: space.AllocPage(sizeHint), kind: kind}
}

// advance records traffic for the bits consumed/produced since the last
// call. Bit-serial VLC code references the stream buffer roughly once
// per few bits (the reference software's showbits()/flushbits() reload
// from memory on every call), modelled as four unit references per byte.
func (st *streamTracer) advance(nowBits uint64) {
	if nowBits <= st.lastBits {
		return
	}
	startByte := st.lastBits / 8
	endByte := (nowBits + 7) / 8
	n := int(endByte - startByte)
	for i := 0; i < 4; i++ {
		simmem.AccessRunUnit(st.t, st.base+startByte, n, 1, st.kind)
	}
	// Bit manipulation costs a few ops per buffer reference.
	st.t.Ops(uint64(n) * 12)
	st.lastBits = nowBits
}
