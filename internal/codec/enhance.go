package codec

import (
	"fmt"

	"repro/internal/bits"
	"repro/internal/dct"
	"repro/internal/motion"
	"repro/internal/simmem"
	"repro/internal/video"
)

// The enhancement layer implements two-layer scalable coding. Each
// enhancement VOP is a P-type plane predicting from the *decoded base
// layer* frame at the same time instant: per macroblock, a short motion
// search against the base reconstruction (MPEG-4 scalability codes
// enhancement VOPs with motion compensation from the reference layer),
// then a finer-quantizer residual. Shaped objects code their bounding
// box only. See DESIGN.md for the substitution note versus the MoMuSys
// scalable VOL tool.

// EnhConfig parameterises the enhancement layer.
type EnhConfig struct {
	W, H        int
	QP          int // enhancement quantizer, typically base QP / 2
	SearchRange int // motion search radius against the base layer (default 4)
}

// Validate checks the configuration.
func (c EnhConfig) Validate() error {
	if c.W <= 0 || c.H <= 0 || c.W%16 != 0 || c.H%16 != 0 {
		return fmt.Errorf("codec: enhancement dimensions %dx%d invalid", c.W, c.H)
	}
	if c.QP < 1 || c.QP > 31 {
		return fmt.Errorf("codec: enhancement QP %d out of [1,31]", c.QP)
	}
	return nil
}

func (c EnhConfig) searchRange() int {
	if c.SearchRange > 0 {
		return c.SearchRange
	}
	return 4
}

// EnhEncoder codes enhancement-layer VOPs.
type EnhEncoder struct {
	cfg     EnhConfig
	space   *simmem.Space
	t       simmem.Tracer
	ph      PhaseRecorder
	blkAddr uint64
	tabs    kernelTables
	search  motion.Searcher
	pred    *video.Frame // MB-sized prediction buffer
	w       *bits.Writer
	st      *streamTracer
}

// NewEnhEncoder builds an enhancement encoder.
func NewEnhEncoder(cfg EnhConfig, space *simmem.Space, t simmem.Tracer, ph PhaseRecorder) (*EnhEncoder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if t == nil {
		t = simmem.Nop{}
	}
	if ph == nil {
		ph = NopPhases{}
	}
	return &EnhEncoder{
		cfg: cfg, space: space, t: t, ph: ph,
		blkAddr: space.Alloc(256, 64),
		tabs:    newKernelTables(space),
		search:  motion.Searcher{Range: cfg.searchRange()},
		pred:    video.NewFrame(space, 16, 16),
	}, nil
}

// EncodeSequence codes the enhancement VOPs predicting orig from base
// (the decoded base layer), returning the enhancement bitstream. Both
// slices must have equal length and dimensions.
func (e *EnhEncoder) EncodeSequence(orig, base []*video.Frame) ([]byte, error) {
	if len(orig) != len(base) {
		return nil, fmt.Errorf("codec: enhancement needs matching sequences (%d vs %d)", len(orig), len(base))
	}
	e.w = bits.NewWriter(1 << 14)
	e.st = newStreamTracer(e.t, e.space, 1<<20, simmem.Store)
	e.w.PutStartcode(bits.SCVideoObjectLayer)
	e.w.PutUE(uint32(e.cfg.W / 16))
	e.w.PutUE(uint32(e.cfg.H / 16))
	e.w.PutUE(uint32(e.cfg.QP))
	e.w.PutUE(uint32(len(orig)))
	e.st.advance(e.w.Len())
	for i := range orig {
		if err := e.encodeFrame(orig[i], base[i]); err != nil {
			return nil, err
		}
	}
	e.w.PutStartcode(bits.SCEndOfSequence)
	e.st.advance(e.w.Len())
	return e.w.Bytes(), nil
}

func (e *EnhEncoder) encodeFrame(orig, base *video.Frame) error {
	e.ph.PhaseBegin(PhaseVopEncode)
	defer e.ph.PhaseEnd(PhaseVopEncode)
	if orig.W != e.cfg.W || orig.H != e.cfg.H || base.W != e.cfg.W || base.H != e.cfg.H {
		return fmt.Errorf("codec: enhancement frame size mismatch")
	}
	e.w.PutStartcode(bits.SCVOP)
	// Shaped objects code their bounding box only (signalled).
	x0, y0, x1, y1 := video.BBox(orig.Alpha, e.cfg.W, e.cfg.H)
	e.w.PutUE(uint32(x0 / 16))
	e.w.PutUE(uint32(y0 / 16))
	e.w.PutUE(uint32((x1 + 15) / 16))
	e.w.PutUE(uint32((y1 + 15) / 16))
	e.st.advance(e.w.Len())
	quant := dct.NewQuantizer(e.cfg.QP)

	for mby := y0 / 16; mby < (y1+15)/16; mby++ {
		predMV := motion.MV{}
		for mbx := x0 / 16; mbx < (x1+15)/16; mbx++ {
			x, y := mbx*16, mby*16
			e.tabs.traceMBStruct(e.t)
			full, sad := e.search.Search(e.t, orig.Y, base.Y, nil, x, y)
			mv, _ := motion.RefineHalfPel(e.t, orig.Y, base.Y, x, y, full, sad)
			e.compensate(base, x, y, mv)
			EncodeMVDPair(e.w, mv, predMV)
			predMV = mv
			var flags [6]bool
			sub := bits.NewWriter(256)
			for i, b := range lumaBlocks(x, y) {
				flags[i] = e.residual(sub, quant, orig.Y, e.pred.Y, b[0], b[1], b[0]-x, b[1]-y)
			}
			flags[4] = e.residual(sub, quant, orig.Cb, e.pred.Cb, x/2, y/2, 0, 0)
			flags[5] = e.residual(sub, quant, orig.Cr, e.pred.Cr, x/2, y/2, 0, 0)
			for _, c := range flags {
				if c {
					e.w.PutBit(1)
				} else {
					e.w.PutBit(0)
				}
			}
			appendWriter(e.w, sub)
			e.st.advance(e.w.Len())
		}
	}
	return nil
}

func (e *EnhEncoder) compensate(base *video.Frame, x, y int, mv motion.MV) {
	motion.CompensateTo(e.t, e.pred.Y, base.Y, 0, 0, x, y, 16, mv)
	cx, cy := chromaMV(mv.X, mv.Y)
	cmv := motion.MV{X: cx, Y: cy}
	motion.CompensateTo(e.t, e.pred.Cb, base.Cb, 0, 0, x/2, y/2, 8, cmv)
	motion.CompensateTo(e.t, e.pred.Cr, base.Cr, 0, 0, x/2, y/2, 8, cmv)
}

// residual codes one 8×8 residual block into w; returns whether any
// coefficient survived quantization.
func (e *EnhEncoder) residual(w *bits.Writer, quant dct.Quantizer, cur, pred *video.Plane, bx, by, px, py int) bool {
	e.tabs.traceCalls(e.t, 5)
	var blk dct.Block
	var scan [64]int32
	gatherDiffAt(e.t, e.blkAddr, cur, pred, bx, by, px, py, &blk)
	dct.Forward(&blk)
	e.tabs.traceDCT(e.t, e.blkAddr)
	quant.QuantInter(&blk)
	traceBlock(e.t, e.blkAddr, dct.OpsQuant)
	coded := false
	for _, v := range blk {
		if v != 0 {
			coded = true
			break
		}
	}
	e.t.Ops(64)
	if coded {
		dct.Scan(&blk, &scan)
		traceBlock(e.t, e.blkAddr, 64*2)
		events := EncodeCoeffBlock(w, &scan)
		e.tabs.traceVLC(e.t, events)
	}
	return coded
}

// EnhDecoder decodes enhancement VOPs onto decoded base frames.
type EnhDecoder struct {
	space   *simmem.Space
	t       simmem.Tracer
	ph      PhaseRecorder
	blkAddr uint64
	tabs    kernelTables
	pred    *video.Frame

	r       *bits.Reader
	st      *streamTracer
	quant   dct.Quantizer
	w, h    int
	nFrames int
}

// NewEnhDecoder builds an enhancement decoder.
func NewEnhDecoder(space *simmem.Space, t simmem.Tracer, ph PhaseRecorder) *EnhDecoder {
	if t == nil {
		t = simmem.Nop{}
	}
	if ph == nil {
		ph = NopPhases{}
	}
	return &EnhDecoder{
		space: space, t: t, ph: ph,
		blkAddr: space.Alloc(256, 64),
		tabs:    newKernelTables(space),
		pred:    video.NewFrame(space, 16, 16),
	}
}

// DecodeSequence applies the enhancement stream to base (in place,
// upgrading the frames) and returns them.
func (d *EnhDecoder) DecodeSequence(stream []byte, base []*video.Frame) ([]*video.Frame, error) {
	if err := d.Begin(stream); err != nil {
		return nil, err
	}
	if d.nFrames != len(base) {
		return nil, fmt.Errorf("codec: enhancement frame count %d vs base %d", d.nFrames, len(base))
	}
	for _, f := range base {
		if err := d.ApplyNext(f); err != nil {
			return nil, err
		}
	}
	if err := d.End(); err != nil {
		return nil, err
	}
	return base, nil
}

// Begin parses the enhancement stream header, preparing for per-frame
// ApplyNext calls (the streaming playback path).
func (d *EnhDecoder) Begin(stream []byte) error {
	d.r = bits.NewReader(stream)
	d.st = newStreamTracer(d.t, d.space, len(stream), simmem.Load)
	sc, err := d.r.NextStartcode()
	if err != nil || sc != bits.SCVideoObjectLayer {
		return fmt.Errorf("codec: bad enhancement header (%#x, %v)", sc, err)
	}
	mbw, err := d.r.UE()
	if err != nil {
		return err
	}
	mbh, err := d.r.UE()
	if err != nil {
		return err
	}
	qp, err := d.r.UE()
	if err != nil {
		return err
	}
	n, err := d.r.UE()
	if err != nil {
		return err
	}
	d.w, d.h = int(mbw)*16, int(mbh)*16
	d.quant = dct.NewQuantizer(int(qp))
	d.nFrames = int(n)
	d.st.advance(d.r.Pos())
	return nil
}

// NFrames returns the frame count announced by the header.
func (d *EnhDecoder) NFrames() int { return d.nFrames }

// ApplyNext decodes the next enhancement VOP onto f in place. The frame
// must still hold the base-layer reconstruction for the same instant.
func (d *EnhDecoder) ApplyNext(f *video.Frame) error {
	if f.W != d.w || f.H != d.h {
		return fmt.Errorf("codec: enhancement size %dx%d vs base %dx%d", d.w, d.h, f.W, f.H)
	}
	return d.decodeFrame(f)
}

// End verifies the end-of-sequence marker.
func (d *EnhDecoder) End() error {
	sc, err := d.r.NextStartcode()
	if err != nil || sc != bits.SCEndOfSequence {
		return fmt.Errorf("codec: enhancement missing EOS (%#x, %v)", sc, err)
	}
	return nil
}

func (d *EnhDecoder) decodeFrame(f *video.Frame) error {
	d.ph.PhaseBegin(PhaseVopDecode)
	defer d.ph.PhaseEnd(PhaseVopDecode)
	sc, err := d.r.NextStartcode()
	if err != nil || sc != bits.SCVOP {
		return fmt.Errorf("codec: enhancement VOP startcode missing (%#x, %v)", sc, err)
	}
	var coords [4]int
	for i := range coords {
		v, err := d.r.UE()
		if err != nil {
			return err
		}
		coords[i] = int(v) * 16
	}
	x0, y0, x1, y1 := coords[0], coords[1], coords[2], coords[3]
	if x1 > f.W {
		x1 = f.W
	}
	if y1 > f.H {
		y1 = f.H
	}
	d.st.advance(d.r.Pos())

	for mby := y0 / 16; mby < (y1+15)/16; mby++ {
		predMV := motion.MV{}
		for mbx := x0 / 16; mbx < (x1+15)/16; mbx++ {
			x, y := mbx*16, mby*16
			d.tabs.traceMBStruct(d.t)
			mv, err := DecodeMVDPair(d.r, predMV)
			if err != nil {
				return err
			}
			predMV = mv
			// Predict from the base reconstruction still held in f.
			motion.CompensateTo(d.t, d.pred.Y, f.Y, 0, 0, x, y, 16, mv)
			cx, cy := chromaMV(mv.X, mv.Y)
			cmv := motion.MV{X: cx, Y: cy}
			motion.CompensateTo(d.t, d.pred.Cb, f.Cb, 0, 0, x/2, y/2, 8, cmv)
			motion.CompensateTo(d.t, d.pred.Cr, f.Cr, 0, 0, x/2, y/2, 8, cmv)
			var flags [6]bool
			for i := range flags {
				b, err := d.r.Bit()
				if err != nil {
					return err
				}
				flags[i] = b == 1
			}
			apply := func(cp, pp *video.Plane, bx, by, px, py int, coded bool) error {
				d.tabs.traceCalls(d.t, 4)
				var blk dct.Block
				var scan [64]int32
				if coded {
					if err := DecodeCoeffBlock(d.r, &scan); err != nil {
						return err
					}
					d.tabs.traceVLC(d.t, countEvents(&scan))
					dct.Unscan(&scan, &blk)
					traceBlock(d.t, d.blkAddr, 64*2)
					d.quant.DequantInter(&blk)
					traceBlock(d.t, d.blkAddr, dct.OpsQuant)
					dct.Inverse(&blk)
					d.tabs.traceIDCT(d.t, d.blkAddr)
				}
				addBlockAt(d.t, d.blkAddr, pp, cp, bx, by, px, py, &blk)
				return nil
			}
			for i, b := range lumaBlocks(x, y) {
				if err := apply(f.Y, d.pred.Y, b[0], b[1], b[0]-x, b[1]-y, flags[i]); err != nil {
					return err
				}
			}
			if err := apply(f.Cb, d.pred.Cb, x/2, y/2, 0, 0, flags[4]); err != nil {
				return err
			}
			if err := apply(f.Cr, d.pred.Cr, x/2, y/2, 0, 0, flags[5]); err != nil {
				return err
			}
			d.st.advance(d.r.Pos())
		}
	}
	return nil
}

// gatherDiffAt, traceBlock and addBlockAt are the shared residual-path
// helpers of the enhancement coder.

func gatherDiffAt(t simmem.Tracer, blkAddr uint64, a, b *video.Plane, x, y, px, py int, blk *dct.Block) {
	for r := 0; r < 8; r++ {
		ao := (y+r)*a.Stride + x
		bo := (py+r)*b.Stride + px
		ar := a.Pix[ao : ao+8]
		br := b.Pix[bo : bo+8]
		for i := 0; i < 8; i++ {
			blk[r*8+i] = int32(ar[i]) - int32(br[i])
		}
	}
	simmem.AccessStrided(t, a.Addr+uint64(y*a.Stride+x), 8, a.Stride, 8, simmem.Load)
	simmem.AccessStrided(t, b.Addr+uint64(py*b.Stride+px), 8, b.Stride, 8, simmem.Load)
	simmem.AccessRunUnit(t, blkAddr, 256, 4, simmem.Store)
	t.Ops(8 * 14)
}

func traceBlock(t simmem.Tracer, blkAddr uint64, ops uint64) {
	simmem.AccessRunUnit(t, blkAddr, 256, 4, simmem.Load)
	simmem.AccessRunUnit(t, blkAddr, 256, 4, simmem.Store)
	t.Ops(ops)
}

// addBlockAt writes clamp(pred(px,py) + blk) into out at (x, y).
func addBlockAt(t simmem.Tracer, blkAddr uint64, pred, out *video.Plane, x, y, px, py int, blk *dct.Block) {
	for r := 0; r < 8; r++ {
		po := (py+r)*pred.Stride + px
		oo := (y+r)*out.Stride + x
		pr := pred.Pix[po : po+8]
		or := out.Pix[oo : oo+8]
		for i := 0; i < 8; i++ {
			or[i] = clampPix(int32(pr[i]) + blk[r*8+i])
		}
	}
	simmem.AccessStrided(t, pred.Addr+uint64(py*pred.Stride+px), 8, pred.Stride, 8, simmem.Load)
	simmem.AccessStrided(t, out.Addr+uint64(y*out.Stride+x), 8, out.Stride, 8, simmem.Store)
	simmem.AccessRunUnit(t, blkAddr, 256, 4, simmem.Load)
	t.Ops(8 * 12)
}
