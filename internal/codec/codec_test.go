package codec

import (
	"testing"

	"repro/internal/simmem"
	"repro/internal/video"
	"repro/internal/vop"
)

// encodeDecode runs a full roundtrip for cfg over n synthetic frames and
// returns originals, decoded frames and the bitstream.
func encodeDecode(t *testing.T, cfg Config, n int) ([]*video.Frame, []*video.Frame, []byte) {
	t.Helper()
	sp := simmem.NewSpace(0)
	synth := video.NewSynth(cfg.W, cfg.H, 11)
	var frames []*video.Frame
	if cfg.Shape {
		frames = synth.ObjectSequence(sp, 0, n)
	} else {
		frames = synth.Sequence(sp, n)
	}
	enc, err := NewEncoder(cfg, sp, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := enc.EncodeSequence(frames)
	if err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(simmem.NewSpace(0), nil, nil)
	got, err := dec.DecodeSequence(stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("decoded %d frames want %d", len(got), n)
	}
	return frames, got, stream
}

func TestConfigValidate(t *testing.T) {
	if DefaultConfig(64, 48).Validate() != nil {
		t.Fatal("default config invalid")
	}
	bad := []Config{
		{W: 60, H: 48, GOP: vop.DefaultGOP(), QP: 8, SearchRange: 8},
		{W: 64, H: 48, GOP: vop.GOP{N: 5, M: 2}, QP: 8, SearchRange: 8},
		{W: 64, H: 48, GOP: vop.DefaultGOP(), QP: 0, SearchRange: 8},
		{W: 64, H: 48, GOP: vop.DefaultGOP(), QP: 8, SearchRange: 0},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestRoundTripIOnly(t *testing.T) {
	cfg := DefaultConfig(64, 48)
	cfg.GOP = vop.GOP{N: 1, M: 1} // all intra
	orig, got, _ := encodeDecode(t, cfg, 3)
	for i := range orig {
		if p := video.PSNR(orig[i], got[i]); p < 30 {
			t.Errorf("I-frame %d PSNR %.1f dB too low", i, p)
		}
	}
}

func TestRoundTripIPP(t *testing.T) {
	cfg := DefaultConfig(64, 48)
	cfg.GOP = vop.GOP{N: 12, M: 1} // I P P P ...
	orig, got, _ := encodeDecode(t, cfg, 6)
	for i := range orig {
		if p := video.PSNR(orig[i], got[i]); p < 28 {
			t.Errorf("frame %d PSNR %.1f dB too low", i, p)
		}
	}
}

func TestRoundTripIBBP(t *testing.T) {
	cfg := DefaultConfig(64, 48)
	orig, got, _ := encodeDecode(t, cfg, 8)
	for i := range orig {
		if got[i].TimeIndex != i {
			t.Fatalf("frame %d has TimeIndex %d (reorder broken)", i, got[i].TimeIndex)
		}
		if p := video.PSNR(orig[i], got[i]); p < 26 {
			t.Errorf("frame %d PSNR %.1f dB too low", i, p)
		}
	}
}

func TestRoundTripLargerQP(t *testing.T) {
	cfg := DefaultConfig(64, 48)
	cfg.QP = 20
	orig, got, streamHi := encodeDecode(t, cfg, 4)
	for i := range orig {
		if p := video.PSNR(orig[i], got[i]); p < 18 {
			t.Errorf("frame %d PSNR %.1f dB too low for QP 20", i, p)
		}
	}
	cfg.QP = 4
	_, _, streamLo := encodeDecode(t, cfg, 4)
	if len(streamLo) <= len(streamHi) {
		t.Errorf("finer QP should cost more bits: %d vs %d", len(streamLo), len(streamHi))
	}
}

func TestRoundTripShape(t *testing.T) {
	cfg := DefaultConfig(64, 48)
	cfg.Shape = true
	orig, got, _ := encodeDecode(t, cfg, 5)
	for i := range orig {
		if got[i].Alpha == nil {
			t.Fatalf("frame %d missing decoded alpha", i)
		}
		// Shape coding is lossless.
		for j := range orig[i].Alpha.Pix {
			if orig[i].Alpha.Pix[j] != got[i].Alpha.Pix[j] {
				t.Fatalf("frame %d alpha mismatch at %d", i, j)
			}
		}
		// Texture quality measured inside the object support only.
		var sse, n float64
		for y := 0; y < cfg.H; y++ {
			for x := 0; x < cfg.W; x++ {
				if orig[i].Alpha.At(x, y) == 0 {
					continue
				}
				d := float64(int(orig[i].Y.At(x, y)) - int(got[i].Y.At(x, y)))
				sse += d * d
				n++
			}
		}
		if n > 0 && sse/n > 150 {
			t.Errorf("frame %d object MSE %.1f too high", i, sse/n)
		}
	}
}

func TestBitstreamHasStartcodes(t *testing.T) {
	cfg := DefaultConfig(64, 48)
	_, _, stream := encodeDecode(t, cfg, 4)
	// Header + 4 VOPs + EOS = at least 6 startcodes.
	count := 0
	for i := 0; i+3 < len(stream); i++ {
		if stream[i] == 0 && stream[i+1] == 0 && stream[i+2] == 1 {
			count++
		}
	}
	if count < 6 {
		t.Fatalf("found %d startcodes, want >= 6", count)
	}
}

func TestDecoderRejectsTruncated(t *testing.T) {
	cfg := DefaultConfig(64, 48)
	_, _, stream := encodeDecode(t, cfg, 4)
	dec := NewDecoder(simmem.NewSpace(0), nil, nil)
	if _, err := dec.DecodeSequence(stream[:len(stream)/2]); err == nil {
		t.Fatal("truncated stream decoded without error")
	}
}

func TestDecoderRejectsGarbageHeader(t *testing.T) {
	dec := NewDecoder(simmem.NewSpace(0), nil, nil)
	if _, err := dec.DecodeSequence([]byte{1, 2, 3, 4, 5}); err == nil {
		t.Fatal("garbage stream decoded")
	}
	// Valid startcode, wrong suffix.
	if _, err := dec.DecodeSequence([]byte{0, 0, 1, 0xB6, 0, 0}); err == nil {
		t.Fatal("wrong startcode accepted")
	}
}

func TestEncoderValidatesFrames(t *testing.T) {
	sp := simmem.NewSpace(0)
	cfg := DefaultConfig(64, 48)
	enc, err := NewEncoder(cfg, sp, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	wrong := video.NewFrame(sp, 32, 32)
	if _, err := enc.EncodeSequence([]*video.Frame{wrong}); err == nil {
		t.Fatal("wrong-size frame accepted")
	}
	cfg.Shape = true
	enc2, err := NewEncoder(cfg, sp, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	noAlpha := video.NewFrame(sp, 64, 48)
	if _, err := enc2.EncodeSequence([]*video.Frame{noAlpha}); err == nil {
		t.Fatal("missing alpha accepted with Shape=true")
	}
}

func TestTracedEncodeProducesTraffic(t *testing.T) {
	sp := simmem.NewSpace(0)
	cfg := DefaultConfig(64, 48)
	var ct simmem.Count
	synth := video.NewSynth(64, 48, 5)
	frames := synth.Sequence(sp, 4)
	enc, err := NewEncoder(cfg, sp, &ct, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := enc.EncodeSequence(frames); err != nil {
		t.Fatal(err)
	}
	if ct.Loads == 0 || ct.Stores == 0 || ct.OpCount == 0 {
		t.Fatalf("traced encode produced no traffic: %+v", ct)
	}
	if ct.Prefetches == 0 {
		t.Fatal("no software prefetches with PrefetchInterval set")
	}
	// Loads should dominate stores heavily (motion estimation reads).
	if ct.Loads < ct.Stores*2 {
		t.Errorf("unexpected load/store balance: %d / %d", ct.Loads, ct.Stores)
	}
}

func TestPhaseRecorderCalled(t *testing.T) {
	sp := simmem.NewSpace(0)
	cfg := DefaultConfig(64, 48)
	rec := &countingPhases{}
	synth := video.NewSynth(64, 48, 5)
	frames := synth.Sequence(sp, 4)
	enc, err := NewEncoder(cfg, sp, nil, rec)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := enc.EncodeSequence(frames)
	if err != nil {
		t.Fatal(err)
	}
	if rec.begins[PhaseVopEncode] != 4 || rec.ends[PhaseVopEncode] != 4 {
		t.Fatalf("encode phases: %+v", rec)
	}
	dec := NewDecoder(simmem.NewSpace(0), nil, rec)
	if _, err := dec.DecodeSequence(stream); err != nil {
		t.Fatal(err)
	}
	if rec.begins[PhaseVopDecode] != 4 || rec.ends[PhaseVopDecode] != 4 {
		t.Fatalf("decode phases: %+v", rec)
	}
}

type countingPhases struct {
	begins, ends map[string]int
}

func (c *countingPhases) PhaseBegin(n string) {
	if c.begins == nil {
		c.begins = map[string]int{}
	}
	c.begins[n]++
}

func (c *countingPhases) PhaseEnd(n string) {
	if c.ends == nil {
		c.ends = map[string]int{}
	}
	c.ends[n]++
}

func TestVOPStatsRecorded(t *testing.T) {
	sp := simmem.NewSpace(0)
	cfg := DefaultConfig(64, 48)
	synth := video.NewSynth(64, 48, 5)
	frames := synth.Sequence(sp, 6)
	enc, _ := NewEncoder(cfg, sp, nil, nil)
	if _, err := enc.EncodeSequence(frames); err != nil {
		t.Fatal(err)
	}
	if len(enc.VOPBits) != 6 || len(enc.VOPTypes) != 6 {
		t.Fatalf("VOP stats missing: %d/%d", len(enc.VOPBits), len(enc.VOPTypes))
	}
	if enc.VOPTypes[0] != vop.TypeI {
		t.Fatal("first VOP not intra")
	}
	// I frames should usually cost more bits than B frames.
	if enc.VOPBits[0] == 0 {
		t.Fatal("zero-bit VOP")
	}
}

func TestRateControlAdjustsQP(t *testing.T) {
	sp := simmem.NewSpace(0)
	cfg := DefaultConfig(64, 48)
	cfg.TargetBitrate = 2000 // tiny: QP must rise
	cfg.QP = 4
	synth := video.NewSynth(64, 48, 5)
	frames := synth.Sequence(sp, 8)
	enc, _ := NewEncoder(cfg, sp, nil, nil)
	if _, err := enc.EncodeSequence(frames); err != nil {
		t.Fatal(err)
	}
	if enc.qp <= 4 {
		t.Fatalf("rate control did not raise QP (still %d)", enc.qp)
	}
}

func TestDecoderConfigMatchesEncoder(t *testing.T) {
	cfg := DefaultConfig(64, 48)
	cfg.Shape = true
	sp := simmem.NewSpace(0)
	synth := video.NewSynth(64, 48, 5)
	frames := synth.ObjectSequence(sp, 0, 3)
	enc, _ := NewEncoder(cfg, sp, nil, nil)
	stream, err := enc.EncodeSequence(frames)
	if err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(simmem.NewSpace(0), nil, nil)
	if _, err := dec.DecodeSequence(stream); err != nil {
		t.Fatal(err)
	}
	got := dec.Config()
	if got.W != 64 || got.H != 48 || !got.Shape || got.GOP != cfg.GOP {
		t.Fatalf("decoder config %+v", got)
	}
}

// TestDecoderSurvivesBitFlips flips bits throughout a valid stream and
// requires the decoder to fail cleanly (error or success, never a panic
// or runaway allocation). This is the error-resilience floor a decoder
// exposed to network streams needs.
func TestDecoderSurvivesBitFlips(t *testing.T) {
	cfg := DefaultConfig(64, 48)
	_, _, stream := encodeDecode(t, cfg, 4)
	for trial := 0; trial < 200; trial++ {
		corrupted := append([]byte(nil), stream...)
		// Deterministic pseudo-random positions.
		pos := (trial*7919 + 13) % (len(corrupted) * 8)
		corrupted[pos/8] ^= 1 << (pos % 8)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d (bit %d): decoder panicked: %v", trial, pos, r)
				}
			}()
			dec := NewDecoder(simmem.NewSpace(0), nil, nil)
			_, _ = dec.DecodeSequence(corrupted)
		}()
	}
}

// TestDecoderSurvivesTruncationEverywhere truncates the stream at many
// byte boundaries; every prefix must decode or error cleanly.
func TestDecoderSurvivesTruncationEverywhere(t *testing.T) {
	cfg := DefaultConfig(64, 48)
	cfg.Shape = true
	_, _, stream := encodeDecode(t, cfg, 3)
	step := len(stream)/64 + 1
	for cut := 0; cut < len(stream); cut += step {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("cut %d: decoder panicked: %v", cut, r)
				}
			}()
			dec := NewDecoder(simmem.NewSpace(0), nil, nil)
			_, _ = dec.DecodeSequence(stream[:cut])
		}()
	}
}

func TestConfigRejectsHugeDimensions(t *testing.T) {
	cfg := DefaultConfig(MaxDimension+16, 48)
	if cfg.Validate() == nil {
		t.Fatal("oversize width accepted")
	}
}

// TestDeterministicBitstream guards reproducibility: the whole pipeline
// is seed-deterministic, so two encodes of the same synthetic input
// must produce identical bytes.
func TestDeterministicBitstream(t *testing.T) {
	make1 := func() []byte {
		sp := simmem.NewSpace(0)
		frames := video.NewSynth(64, 48, 99).Sequence(sp, 5)
		enc, err := NewEncoder(DefaultConfig(64, 48), sp, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		stream, err := enc.EncodeSequence(frames)
		if err != nil {
			t.Fatal(err)
		}
		return stream
	}
	a, b := make1(), make1()
	if len(a) != len(b) {
		t.Fatalf("stream lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams differ at byte %d", i)
		}
	}
}

// TestEncoderReusableAcrossSequences checks that Begin resets all
// per-sequence state (rings, rate control, stats).
func TestEncoderReusableAcrossSequences(t *testing.T) {
	sp := simmem.NewSpace(0)
	frames := video.NewSynth(64, 48, 7).Sequence(sp, 4)
	enc, err := NewEncoder(DefaultConfig(64, 48), sp, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := enc.EncodeSequence(frames)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := enc.EncodeSequence(frames)
	if err != nil {
		t.Fatal(err)
	}
	if len(s1) != len(s2) {
		t.Fatalf("re-encode differs: %d vs %d bytes", len(s1), len(s2))
	}
	dec := NewDecoder(simmem.NewSpace(0), nil, nil)
	if _, err := dec.DecodeSequence(s2); err != nil {
		t.Fatalf("second-use stream undecodable: %v", err)
	}
}
