package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/harness"
)

// The chaos suite drives the self-healing coordinator through
// faultnet's seeded fault injection: timeout/5xx/mid-body-reset soups,
// deterministic down-then-healed schedules for re-admission, total
// fleet loss for the local fallback, and injected 4xx for the
// fail-fast path. The contract under test is the acceptance criterion:
// every sweep either completes byte-identical to the local sweep or
// fails with a classified, budget-bounded error.

// chaosCoordinator wires a coordinator to a fault-injecting client
// with retry/breaker knobs tightened so a chaos run costs
// milliseconds of backoff, not the production defaults.
func chaosCoordinator(ft *faultnet.Transport, urls ...string) *Coordinator {
	return &Coordinator{
		Workers:        urls,
		Client:         &http.Client{Transport: ft},
		UploadTimeout:  10 * time.Second,
		ReplayTimeout:  60 * time.Second,
		RetryBaseDelay: time.Millisecond,
		RetryMaxDelay:  5 * time.Millisecond,
		ProbeInterval:  10 * time.Millisecond,
		ProbeTimeout:   time.Second,
		Seed:           1,
	}
}

// localBaseline computes the local sweep the chaos sweeps must match.
func localBaseline(t *testing.T) []harness.GeometryPoint {
	t.Helper()
	l1s, l2Sizes := faultAxes()
	points, err := harness.RunGeometrySweep(faultWorkload, l1s, l2Sizes)
	if err != nil {
		t.Fatal(err)
	}
	return points
}

// TestChaosSweepSurvivesFaultSoup: under a seeded mix of injected
// timeouts, 503 bursts, and mid-body connection resets on every
// worker, each sweep must either complete byte-identical to the local
// sweep or fail with a classified, budget-bounded error — never hang,
// never return silently wrong points.
func TestChaosSweepSurvivesFaultSoup(t *testing.T) {
	local := localBaseline(t)
	l1s, l2Sizes := faultAxes()
	injected := 0
	for _, seed := range []uint64{3, 17, 1001} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			w1, w2 := goodWorker(t), goodWorker(t)
			ft := faultnet.New(seed, nil, &faultnet.Rule{
				Name:        "soup",
				TimeoutRate: 0.12,
				StatusRate:  0.12,
				ResetRate:   0.12,
				ResetAfter:  64,
			})
			coord := chaosCoordinator(ft, w1.URL, w2.URL)
			// High budget and threshold: this test exercises the
			// retry/backoff path under sustained noise; the breaker and
			// re-admission paths get their own deterministic tests.
			coord.MaxAttempts = 10
			coord.BreakerThreshold = 10
			points, stats, err := coord.GeometrySweepWithStats(context.Background(), faultWorkload, l1s, l2Sizes)
			injected += ft.InjectedTotal()
			if err != nil {
				// A loss is acceptable only if it is classified and
				// budget-bounded — the one shape the scheduler may give up in.
				msg := err.Error()
				if !strings.Contains(msg, "attempt budget") &&
					!strings.Contains(msg, "workers failed") &&
					!strings.Contains(msg, "permanent") {
					t.Fatalf("unclassified chaos failure: %v", err)
				}
				t.Logf("sweep failed within budget (acceptable): %v", err)
				return
			}
			if !reflect.DeepEqual(points, local) {
				t.Fatalf("chaos sweep differs from local (injected=%d, stats=%+v)",
					ft.InjectedTotal(), stats)
			}
			t.Logf("survived: injected=%d retries=%d failovers=%d dead=%d readmitted=%d",
				ft.InjectedTotal(), stats.Retries, stats.Failovers, stats.DeadWorkers, stats.Readmissions)
		})
	}
	if injected == 0 {
		t.Error("fault soup injected nothing across all seeds — rates are not exercising the scheduler")
	}
}

// TestChaosWorkerDownThenHealedIsReadmitted is the deterministic
// in-process re-admission test: worker 0 refuses its first four
// requests (two upload attempts trip the breaker, two health probes
// fail) and then heals; worker 1 is slowed so work remains when the
// prober's next probe succeeds. The sweep must re-admit worker 0
// mid-sweep, hand it queued work, and still match the local sweep.
func TestChaosWorkerDownThenHealedIsReadmitted(t *testing.T) {
	w0, w1 := goodWorker(t), goodWorker(t)
	ft := faultnet.New(1, nil,
		&faultnet.Rule{Name: "down-then-heal", Match: faultnet.Host(w0.URL), FailFirst: 4},
		&faultnet.Rule{
			Name:    "slow-survivor",
			Match:   faultnet.And(faultnet.Host(w1.URL), faultnet.Path("/v1/replay")),
			Latency: 300 * time.Millisecond,
		},
	)
	coord := chaosCoordinator(ft, w0.URL, w1.URL)
	coord.BreakerThreshold = 2
	coord.BreakerCooldown = time.Millisecond
	l1s, l2Sizes := faultAxes()

	points, stats, err := coord.GeometrySweepWithStats(context.Background(), faultWorkload, l1s, l2Sizes)
	if err != nil {
		t.Fatalf("sweep did not survive the down-then-healed worker: %v (stats %+v)", err, stats)
	}
	if !reflect.DeepEqual(points, localBaseline(t)) {
		t.Fatal("re-admission sweep differs from local")
	}
	if stats.DeadWorkers != 1 || stats.BreakerTrips == 0 {
		t.Errorf("expected worker 0 breaker-dropped once, got %+v", stats)
	}
	if stats.Readmissions < 1 {
		t.Errorf("worker 0 healed but was never re-admitted: %+v", stats)
	}
	if stats.Probes < 1 {
		t.Errorf("re-admission without probes recorded: %+v", stats)
	}
	if stats.ShardsByWorker[w0.URL] == 0 {
		t.Errorf("re-admitted worker served no shards: %+v", stats.ShardsByWorker)
	}
}

// TestChaosFallbackLocalCompletes: with the whole fleet unreachable,
// FallbackLocal must replay every shard through the local harness path
// and return byte-identical results instead of failing the sweep.
func TestChaosFallbackLocalCompletes(t *testing.T) {
	w0, w1 := goodWorker(t), goodWorker(t)
	ft := faultnet.New(1, nil, &faultnet.Rule{Name: "fleet-down", ErrRate: 1})
	coord := chaosCoordinator(ft, w0.URL, w1.URL)
	coord.FallbackLocal = true
	l1s, l2Sizes := faultAxes()

	points, stats, err := coord.GeometrySweepWithStats(context.Background(), faultWorkload, l1s, l2Sizes)
	if err != nil {
		t.Fatalf("fallback did not rescue the dead fleet: %v", err)
	}
	if !reflect.DeepEqual(points, localBaseline(t)) {
		t.Fatal("fallback sweep differs from local")
	}
	if stats.FallbackShards == 0 {
		t.Errorf("no shards attributed to the fallback path: %+v", stats)
	}
	if stats.DeadWorkers != 2 {
		t.Errorf("expected both workers dropped before the fallback, got %+v", stats)
	}

	// Without FallbackLocal the same fleet loss must stay a classified
	// failure — degradation is opt-in.
	strict := chaosCoordinator(faultnet.New(1, nil, &faultnet.Rule{Name: "fleet-down", ErrRate: 1}), w0.URL, w1.URL)
	_, _, err = strict.GeometrySweepWithStats(context.Background(), faultWorkload, l1s, l2Sizes)
	if err == nil || !strings.Contains(err.Error(), "workers failed") {
		t.Errorf("without FallbackLocal, want a classified fleet-loss error, got %v", err)
	}
}

// TestChaosPermanentErrorFailsFast: an injected 4xx is a permanent
// failure — the sweep must abort with the classification in the error,
// without dropping workers or burning the retry budget.
func TestChaosPermanentErrorFailsFast(t *testing.T) {
	w0, w1 := goodWorker(t), goodWorker(t)
	ft := faultnet.New(1, nil, &faultnet.Rule{Name: "reject", StatusRate: 1, Status: http.StatusBadRequest})
	coord := chaosCoordinator(ft, w0.URL, w1.URL)
	l1s, l2Sizes := faultAxes()

	_, stats, err := coord.GeometrySweepWithStats(context.Background(), faultWorkload, l1s, l2Sizes)
	if err == nil || !strings.Contains(err.Error(), "permanent") {
		t.Fatalf("want a permanent-classified failure, got %v", err)
	}
	if stats.DeadWorkers != 0 {
		t.Errorf("permanent error blamed on workers: %+v", stats)
	}
	if stats.Retries != 0 {
		t.Errorf("permanent error was retried %d times", stats.Retries)
	}
}

// TestChaosCancellationDuringBackoff: caller cancellation must abort a
// sweep parked in a retry backoff immediately — classified as
// cancellation, not as worker failure — proving the sweep context
// reaches every wait point, not just the in-flight requests.
func TestChaosCancellationDuringBackoff(t *testing.T) {
	w0 := goodWorker(t)
	ft := faultnet.New(1, nil, &faultnet.Rule{Name: "refuse", ErrRate: 1})
	coord := chaosCoordinator(ft, w0.URL)
	coord.RetryBaseDelay = time.Minute // park the retry in backoff
	coord.RetryMaxDelay = time.Minute
	l1s, l2Sizes := faultAxes()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	var stats SweepStats
	start := time.Now()
	go func() {
		var err error
		_, stats, err = coord.GeometrySweepWithStats(ctx, faultWorkload, l1s, l2Sizes)
		done <- err
	}()
	// Cancel once the first injected failure has happened — i.e. while
	// the scheduler sits in its minute-long backoff.
	for ft.Injected("refuse") == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancellation did not abort the backoff sleep")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v, want prompt abort", elapsed)
	}
	if stats.DeadWorkers != 0 || len(stats.WorkerFailures) != 0 {
		t.Errorf("cancellation reported as worker failure: %+v", stats)
	}
}

// TestChaosHealthzCarriesProberState pins the worker half of the
// re-admission protocol: /v1/healthz lists resident trace IDs (what
// the prober reconciles the upload cache against) and the in-flight
// shard count.
func TestChaosHealthzCarriesProberState(t *testing.T) {
	w := NewWorker(WorkerConfig{Workers: 1})
	w.mu.Lock()
	w.traces["trace-0002"] = &storedTrace{}
	w.traces["trace-0001"] = &storedTrace{}
	w.mu.Unlock()
	w.inFlight.Add(3)

	rec := httptest.NewRecorder()
	w.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/healthz", nil))
	var hs HealthStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &hs); err != nil {
		t.Fatalf("healthz: %v (%s)", err, rec.Body.String())
	}
	if !hs.OK || hs.Traces != 2 {
		t.Errorf("healthz = %+v, want ok with 2 traces", hs)
	}
	if !reflect.DeepEqual(hs.TraceIDs, []string{"trace-0001", "trace-0002"}) {
		t.Errorf("trace IDs = %v, want sorted [trace-0001 trace-0002]", hs.TraceIDs)
	}
	if hs.InFlightShards != 3 {
		t.Errorf("in-flight shards = %d, want 3", hs.InFlightShards)
	}
	if hs.Version.GoVersion == "" {
		t.Error("healthz lost the build identity")
	}
}
