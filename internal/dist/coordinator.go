package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/harness"
	"repro/internal/memo"
	"repro/internal/obs"
	"repro/internal/perf"
	"repro/internal/simmem"
	"repro/internal/trace"
)

// Fleet metrics: the live counterparts of SweepStats. SweepStats stays
// the per-sweep return value; these accumulate process-wide and move
// WHILE a sweep runs, so /v1/metrics (or mp4study -metrics-out) shows
// a hung fleet as a stalled dist_replays_total and a dying one as a
// falling dist_workers_alive. Gauges are maintained with deltas only,
// so concurrent sweeps in one process compose instead of clobbering.
var (
	mUploads       = obs.Default().Counter("dist_uploads_total")
	mUploadBytes   = obs.Default().Counter("dist_upload_bytes_total")
	mUploadDedup   = obs.Default().Counter("dist_upload_dedup_total")
	mUploadSecs    = obs.Default().Histogram("dist_upload_seconds", nil)
	mBatchReplays  = obs.Default().Counter("dist_replays_total")
	mReplayShards  = obs.Default().Counter("dist_replay_shards_total")
	mReplaySecs    = obs.Default().Histogram("dist_replay_batch_seconds", nil)
	mFailovers     = obs.Default().Counter("dist_failovers_total")
	mWorkerDeaths  = obs.Default().Counter("dist_worker_failures_total")
	mWorkersAlive  = obs.Default().Gauge("dist_workers_alive")
	mBatchesPend   = obs.Default().Gauge("dist_batches_pending")
	mSweepsStarted = obs.Default().Counter("dist_sweeps_total")
)

// distLog carries the coordinator's worker-health and transport
// events; mp4study surfaces them at -log-level info/debug.
var distLog = obs.Logger("dist")

// Coordinator drives a distributed geometry sweep: capture once
// locally, filter the capture down to the per-L1 L2-bound traces,
// shard the (L1 × L2 size) grid across the workers, and merge the
// results in deterministic shard order. Workers that fail or time out
// are dropped and their shards re-planned onto the survivors (see
// the package comment for the failover semantics).
type Coordinator struct {
	// Workers are the base URLs of the worker processes, e.g.
	// "http://10.0.0.7:8375". At least one is required.
	Workers []string
	// Client is the HTTP client used for all calls. Nil means a
	// default client with connect/TLS/response-header timeouts (but no
	// overall request timeout — per-attempt deadlines bound each
	// upload and replay instead, see UploadTimeout/ReplayTimeout).
	Client *http.Client
	// ShipFullTrace uploads the full M4TR capture to the workers
	// instead of the per-L1 filtered M4L2 traces. The filtered path is
	// the default — every shard of an L1 row shares that L1, so the
	// row only ever needs the ~40× smaller L2-bound stream. The full
	// path remains as the baseline (and the benchmark's comparison
	// point).
	ShipFullTrace bool
	// UploadTimeout bounds one trace-upload attempt. <= 0 means 2m.
	UploadTimeout time.Duration
	// ReplayTimeout bounds one shard-batch replay attempt. <= 0 means
	// 10m. Raise it (and supply a Client whose transport allows it)
	// for very long traces.
	ReplayTimeout time.Duration
	// MaxAttempts bounds how many attempts one shard batch may consume
	// — retries on the same worker and failovers onto others both
	// count — before the sweep fails. <= 0 means 3.
	MaxAttempts int

	// RetryBaseDelay is the backoff before the first retry of a
	// transient failure; it doubles per retry up to RetryMaxDelay, with
	// seeded jitter in [0.5, 1)×. <= 0 means 100ms / 2s.
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration
	// BreakerThreshold is how many consecutive transient failures open
	// a worker's circuit breaker (dropping the worker into the
	// prober's care instead of burning the batch budget on it).
	// <= 0 means 2.
	BreakerThreshold int
	// BreakerCooldown is how long a dropped worker stays unprobed; it
	// doubles with every re-open of the same worker's breaker.
	// <= 0 means 500ms.
	BreakerCooldown time.Duration
	// ProbeInterval and ProbeTimeout pace the health prober that
	// re-admits recovered workers mid-sweep. <= 0 means 250ms / 2s.
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// DisableReadmission turns the health prober off: a dropped worker
	// stays dropped for the sweep's lifetime (the pre-self-healing
	// behavior, and the baseline of BenchmarkFailoverOverhead).
	DisableReadmission bool
	// FallbackLocal replays whatever shards the fleet could not
	// deliver through the local harness path instead of failing the
	// sweep — byte-identical output, degraded wall-clock. Caller
	// cancellation is never rescued.
	FallbackLocal bool
	// Memo, when non-nil, makes the sweep incremental: every (trace
	// hash, L1, L2) grid cell already in the memo is served locally
	// from its memoized stats — no shard dispatched, no trace filtered
	// or uploaded for rows the memo fully covers — and every cell the
	// fleet does replay is memoized on success. Output is byte-identical
	// with or without a memo: values are whole-run cache.Stats and
	// perf.Compute is deterministic. Memo-served shards reach OnShard
	// with Worker == MemoWorker.
	Memo *memo.Cache
	// OnShard, when non-nil, receives every completed shard in strict
	// shard-index order — the streaming counterpart of the merged
	// return value (the study service feeds its SSE event log from
	// it). The callback runs on scheduler goroutines with internal
	// state locked: it must be fast and must not call back into the
	// Coordinator — hand the event to a channel or buffer and return.
	OnShard func(ShardEvent)
	// Seed drives the backoff jitter. 0 means 1 (deterministic
	// default), so two identically-seeded sweeps retry on the same
	// schedule.
	Seed uint64
}

// defaultClient is used when Coordinator.Client is nil. It bounds
// connection establishment and header latency — so one unreachable or
// hung worker cannot stall a sweep forever — but sets no overall
// request timeout: replay calls legitimately take as long as the
// simulation they run, and the coordinator's per-attempt context
// deadlines are the authoritative bound. The response-header ceiling
// is therefore generous; it only exists to reap connections whose
// per-attempt context was never going to fire (custom ReplayTimeout
// beyond it requires a custom Client).
var defaultClient = &http.Client{
	Transport: &http.Transport{
		Proxy: http.ProxyFromEnvironment,
		DialContext: (&net.Dialer{
			Timeout:   10 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		TLSHandshakeTimeout:   10 * time.Second,
		ResponseHeaderTimeout: 15 * time.Minute,
		ExpectContinueTimeout: 1 * time.Second,
		MaxIdleConnsPerHost:   4,
	},
}

func (c *Coordinator) client() *http.Client {
	if c.Client != nil {
		return c.Client
	}
	return defaultClient
}

func (c *Coordinator) uploadTimeout() time.Duration {
	if c.UploadTimeout > 0 {
		return c.UploadTimeout
	}
	return 2 * time.Minute
}

func (c *Coordinator) replayTimeout() time.Duration {
	if c.ReplayTimeout > 0 {
		return c.ReplayTimeout
	}
	return 10 * time.Minute
}

func (c *Coordinator) maxAttempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return 3
}

// SweepStats reports what one distributed sweep actually shipped and
// survived — the observability half of the failover scheduler.
type SweepStats struct {
	// L2Shipped reports whether per-L1 filtered M4L2 traces were
	// uploaded instead of the full capture.
	L2Shipped bool
	// Uploads and UploadBytes count every trace upload that succeeded,
	// including re-uploads forced by failover.
	Uploads     int
	UploadBytes int64
	// UploadsDeduped counts uploads skipped entirely because the worker
	// already held the payload's content hash (HEAD probe hit) — zero
	// bytes moved for each.
	UploadsDeduped int
	// MemoHits and MemoMisses count grid cells served from the result
	// memo versus actually planned for replay. Both zero when the
	// coordinator has no memo attached.
	MemoHits   int
	MemoMisses int
	// Replays counts successful shard-batch replay calls.
	Replays int
	// Failovers counts shard batches re-planned onto another worker
	// after a worker failure (including batches the dead worker had
	// queued but never started).
	Failovers int
	// DeadWorkers counts workers dropped from the sweep.
	DeadWorkers int
	// WorkerFailures carries the diagnostic of every dropped worker,
	// in failure order — a sweep that survived failovers should still
	// say what went wrong.
	WorkerFailures []string
	// Retries counts transient batch failures retried on the same
	// worker after backoff (failovers onto another worker are counted
	// separately, in Failovers).
	Retries int
	// BreakerTrips counts circuit breakers opened (a worker can trip
	// more than once if it is re-admitted and fails again).
	BreakerTrips int
	// Probes and Readmissions count the health prober's work: probes
	// sent to dropped workers, and workers brought back mid-sweep.
	Probes       int
	Readmissions int
	// FallbackShards counts shards replayed through the local fallback
	// path because the fleet could not deliver them.
	FallbackShards int
	// BarredWorkers lists the workers dropped as protocol violators —
	// barred from re-admission for the sweep's lifetime — by URL. The
	// study service's fleet health surfaces them separately from
	// merely-dead workers.
	BarredWorkers []string
	// ShardsByWorker counts successfully replayed shards per worker
	// URL — the direct record of who actually served what (a
	// re-admitted worker shows up here with its post-restart shards).
	ShardsByWorker map[string]int
}

// planShards cuts the (L1 × L2 size) grid into shards: per L1, the L2
// axis splits into at most `workers` contiguous chunks. Flattening
// shard results by Index therefore reproduces the (L1 outer, L2
// inner) point order of the local sweep exactly, independent of which
// worker ran what or when it finished.
func planShards(l1s []cache.Config, l2Sizes []int, workers int) []Shard {
	var shards []Shard
	for _, l1 := range l1s {
		chunks := workers
		if chunks > len(l2Sizes) {
			chunks = len(l2Sizes)
		}
		for j := 0; j < chunks; j++ {
			lo := j * len(l2Sizes) / chunks
			hi := (j + 1) * len(l2Sizes) / chunks
			if lo == hi {
				continue
			}
			shards = append(shards, Shard{
				Index:   len(shards),
				L1:      l1,
				L2Sizes: append([]int(nil), l2Sizes[lo:hi]...),
			})
		}
	}
	return shards
}

// GeometrySweep runs the distributed counterpart of
// harness.RunGeometrySweep: one local capture, every configuration
// replayed on the worker fleet. Nil/empty axes use the harness
// defaults. The returned points are identical — field for field — to
// the local sweep of the same workload and axes.
func (c *Coordinator) GeometrySweep(ctx context.Context, wl harness.Workload, l1s []cache.Config, l2Sizes []int) ([]harness.GeometryPoint, error) {
	points, _, err := c.GeometrySweepWithStats(ctx, wl, l1s, l2Sizes)
	return points, err
}

// GeometrySweepWithStats is GeometrySweep plus the sweep's transport
// and failover accounting.
func (c *Coordinator) GeometrySweepWithStats(ctx context.Context, wl harness.Workload, l1s []cache.Config, l2Sizes []int) ([]harness.GeometryPoint, SweepStats, error) {
	shardPoints, stats, err := c.geometrySweepShards(ctx, wl, l1s, l2Sizes)
	if err != nil {
		return nil, stats, err
	}
	var out []harness.GeometryPoint
	for _, pts := range shardPoints {
		out = append(out, pts...)
	}
	return out, stats, nil
}

// GeometrySweepSeries runs the distributed sweep and renders it as the
// usual per-L1 display series. Each shard contributes a series chunk;
// chunks of the same L1 row are reassembled X-wise with
// perf.MergeSeries in shard order — the same merge discipline the
// figure sweeps use — so the output is byte-identical to
// harness.GeometrySweepSeries over a local sweep.
func (c *Coordinator) GeometrySweepSeries(ctx context.Context, wl harness.Workload, l1s []cache.Config, l2Sizes []int) ([]perf.Series, error) {
	shardPoints, _, err := c.geometrySweepShards(ctx, wl, l1s, l2Sizes)
	if err != nil {
		return nil, err
	}
	var merged []perf.Series
	for start := 0; start < len(shardPoints); {
		// Shards of one L1 row are contiguous in plan order; merge the
		// row's chunks, then move to the next row.
		end := start + 1
		for end < len(shardPoints) && shardPoints[end][0].L1 == shardPoints[start][0].L1 {
			end++
		}
		chunks := make([][]perf.Series, 0, end-start)
		for _, pts := range shardPoints[start:end] {
			chunks = append(chunks, harness.GeometrySweepSeries(pts))
		}
		row, err := perf.MergeSeries(chunks...)
		if err != nil {
			return nil, fmt.Errorf("dist: merging shard series: %w", err)
		}
		merged = append(merged, row...)
		start = end
	}
	return merged, nil
}

// payload is one serialized trace the sweep ships: the full capture
// (fullKey) or one L1 row's filtered stream. key is a human label for
// logs and per-sweep batch grouping; hash is the trace's content hash
// — its identity on every worker, this sweep or any other.
type payload struct {
	key         string
	hash        string
	contentType string
	wire        []byte
}

const fullKey = "full-trace"

// batch is one dispatchable unit of work: a set of shards that replay
// against the same payload, plus its failover accounting.
type batch struct {
	payload  *payload
	shards   []Shard
	attempts int
	lastErr  error
}

func (b *batch) label() string {
	lo, hi := b.shards[0].Index, b.shards[len(b.shards)-1].Index
	return fmt.Sprintf("shards %d-%d (%s)", lo, hi, b.payload.key)
}

// geometrySweepShards performs the capture/filter/upload/replay cycle
// and returns per-shard points ordered by shard index.
func (c *Coordinator) geometrySweepShards(ctx context.Context, wl harness.Workload, l1s []cache.Config, l2Sizes []int) ([][]harness.GeometryPoint, SweepStats, error) {
	var stats SweepStats
	if len(c.Workers) == 0 {
		return nil, stats, fmt.Errorf("dist: no workers configured")
	}
	if len(l1s) == 0 {
		l1s = harness.GeometryL1Configs()
	}
	if len(l2Sizes) == 0 {
		l2Sizes = harness.GeometryL2Sizes()
	}
	// Validate both axes before any capture work: they may come from
	// flags or manifests, and a bad axis entry must not cost an encode
	// — nor masquerade as fleet-wide worker failure when every worker
	// rejects the same invalid shard.
	for _, l1 := range l1s {
		if err := l1.Validate(); err != nil {
			return nil, stats, fmt.Errorf("dist: l1 axis: %w", err)
		}
		// Validate the exact L2 each (L1, size) pair will simulate —
		// harness.GeometryL2For is the same rule the replay executes
		// (allocation-free: axes may be hostile network data).
		for _, size := range l2Sizes {
			if err := harness.GeometryL2For(l1, size).Validate(); err != nil {
				return nil, stats, fmt.Errorf("dist: l2 axis: %w", err)
			}
		}
	}

	// Capture once. The capture precedes planning because a memoized
	// plan is keyed by the capture's content hash; in the default
	// (filtered) mode each L1 row then ships only its L2-bound stream.
	capture, err := harness.RecordEncodeCtx(ctx, simmem.NewSpace(0), wl)
	if err != nil {
		return nil, stats, fmt.Errorf("dist: capture: %w", err)
	}

	// Plan the shards. Without a memo this is the plain grid cut; with
	// one, memo-covered cells become prefilled shards that never reach
	// a worker. Planning before payload serialization matters either
	// way: small grids can leave workers without assignments, and fully
	// memoized L1 rows never get filtered or uploaded at all.
	var (
		shards      []Shard
		prefill     map[int][]harness.GeometryPoint
		captureHash trace.Hash
	)
	if c.Memo != nil {
		captureHash = capture.Enc.Hash()
		var hits, misses int
		shards, prefill, hits, misses = c.planMemoShards(captureHash, l1s, l2Sizes)
		stats.MemoHits, stats.MemoMisses = hits, misses
	} else {
		shards = planShards(l1s, l2Sizes, len(c.Workers))
	}
	dispatch := make([]Shard, 0, len(shards))
	for _, sh := range shards {
		if _, ok := prefill[sh.Index]; !ok {
			dispatch = append(dispatch, sh)
		}
	}
	payloadOf, err := c.buildPayloads(ctx, capture, l1s, dispatch)
	if err != nil {
		return nil, stats, err
	}
	stats.L2Shipped = !c.ShipFullTrace

	// Initial assignment: shards round-robin across workers (as the
	// pre-failover coordinator did), then each worker's shards group
	// per payload into one batch — one replay call per (worker,
	// trace). Assignment only affects scheduling, never results:
	// points merge by shard index.
	byWorker := make([][]Shard, len(c.Workers))
	for i, sh := range dispatch {
		w := i % len(c.Workers)
		byWorker[w] = append(byWorker[w], sh)
	}
	s := newSweepState(c, shards)
	s.stats.MemoHits, s.stats.MemoMisses = stats.MemoHits, stats.MemoMisses
	for idx, pts := range prefill {
		s.results[idx] = pts
		s.servedBy[idx] = MemoWorker
	}
	for wi, mine := range byWorker {
		group := map[*payload]*batch{}
		for _, sh := range mine {
			p := payloadOf[sh.Index]
			b, ok := group[p]
			if !ok {
				b = &batch{payload: p}
				group[p] = b
				s.queues[wi] = append(s.queues[wi], b)
				s.pendingN++
			}
			b.shards = append(b.shards, sh)
		}
	}

	// Run the fleet. Cleanup is registered before the error check: a
	// partially failed sweep must still release the traces that did
	// land, or repeated failures would fill the surviving workers'
	// stores.
	mSweepsStarted.Inc()
	mWorkersAlive.Add(int64(s.aliveN))
	mBatchesPend.Add(int64(s.pendingN))
	distLog.Info("sweep started",
		"workers", len(c.Workers), "shards", len(shards),
		"memo_shards", len(shards)-len(dispatch),
		"batches", s.pendingN, "l2_shipped", !c.ShipFullTrace)
	// Stream the memo-served prefix before any worker runs: emission is
	// strict shard-index order, and a fully memoized sweep must deliver
	// every event even though no worker goroutine ever completes a batch.
	s.mu.Lock()
	s.emitReadyLocked()
	s.mu.Unlock()
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	s.cancel = cancel
	s.ctx = sctx
	s.running = len(c.Workers)
	for wi := range c.Workers {
		go s.runWorker(sctx, wi)
	}
	if c.DisableReadmission {
		close(s.proberDone)
	} else {
		go s.runProber(sctx)
	}
	// Join on the goroutine counter, not a WaitGroup: re-admission
	// spawns fresh runWorker goroutines mid-sweep, which a WaitGroup
	// whose Wait already began cannot absorb.
	s.mu.Lock()
	for s.running > 0 {
		s.cond.Wait()
	}
	s.mu.Unlock()
	// All work is decided (done or fatal); cancel the sweep context so
	// an in-flight health probe aborts instead of delaying the join.
	cancel()
	<-s.proberDone
	// Return the gauges' contributions (survivors, open breakers, and
	// any batches a fatal error left undone) so they read zero once no
	// sweep runs.
	mWorkersAlive.Add(-int64(s.aliveN))
	mBatchesPend.Add(-int64(s.pendingN))
	mBreakersOpen.Add(-int64(s.openN))
	distLog.Info("sweep finished",
		"replays", s.stats.Replays, "uploads", s.stats.Uploads,
		"upload_bytes", s.stats.UploadBytes, "dedup", s.stats.UploadsDeduped,
		"failovers", s.stats.Failovers,
		"retries", s.stats.Retries, "readmissions", s.stats.Readmissions,
		"dead_workers", s.stats.DeadWorkers, "fatal", s.fatal != nil)

	// Traces deliberately survive a successful sweep: the store is
	// content-addressed, so the next sweep over the same capture dedupes
	// its uploads against them with a HEAD probe instead of moving
	// megabytes (workers bound their stores and evict by LRU). A FAILED
	// sweep still releases what it landed — repeated failing sweeps must
	// not squat the fleet's stores.
	fail := func(err error) ([][]harness.GeometryPoint, SweepStats, error) {
		c.deleteAll(s.uploaded)
		return nil, s.stats, err
	}
	s.stats.L2Shipped = stats.L2Shipped
	if s.fatal != nil {
		// Graceful degradation: with FallbackLocal, a fleet-fatal sweep
		// replays its undelivered shards through the local harness path —
		// byte-identical output, degraded wall-clock. Caller cancellation
		// is never rescued: the caller asked the whole sweep to stop.
		if c.FallbackLocal && ctx.Err() == nil {
			n, ferr := s.fallbackLocal(ctx, capture, shards)
			if ferr != nil {
				return fail(fmt.Errorf("%w (local fallback failed after %d shards: %v)", s.fatal, n, ferr))
			}
			distLog.Warn("sweep completed via local fallback",
				"shards", n, "fleet_error", s.fatal)
			s.memoize(captureHash, prefill)
			return s.results, s.stats, nil
		}
		return fail(s.fatal)
	}
	for i, pts := range s.results {
		if len(pts) == 0 {
			return fail(fmt.Errorf("dist: shard %d missing from worker responses", i))
		}
	}
	s.memoize(captureHash, prefill)
	return s.results, s.stats, nil
}

// memoize records every fleet-replayed cell of a successful sweep in
// the coordinator's memo, so the next sweep over the same capture can
// serve them without dispatching anything. Prefilled shards are
// already in the memo; shards without stats (full-trace workers,
// pre-stats workers, local-fallback shards) are simply skipped — the
// memo is an optimization, never required for completeness.
func (s *sweepState) memoize(captureHash trace.Hash, prefill map[int][]harness.GeometryPoint) {
	if s.c.Memo == nil {
		return
	}
	for i, sh := range s.shards {
		if _, ok := prefill[sh.Index]; ok {
			continue
		}
		sts := s.cellStats[i]
		if len(sts) != len(sh.L2Sizes) {
			continue
		}
		for j, size := range sh.L2Sizes {
			s.c.Memo.Put(harness.GeometryMemoKey(captureHash, sh.L1, size), sts[j])
		}
	}
}

// planMemoShards cuts the (L1 × L2 size) grid against the memo: per
// L1 row, maximal runs of memo-hit cells become one prefilled shard
// each (results reconstructed from memoized stats — byte-identical to
// a replay because perf.Compute is deterministic), and runs of misses
// split into at most `workers` contiguous chunks exactly as planShards
// would. Flattening by shard index still reproduces the local sweep's
// (L1 outer, L2 inner) point order.
func (c *Coordinator) planMemoShards(captureHash trace.Hash, l1s []cache.Config, l2Sizes []int) (shards []Shard, prefill map[int][]harness.GeometryPoint, hits, misses int) {
	prefill = map[int][]harness.GeometryPoint{}
	for _, l1 := range l1s {
		memoized := make([]cache.Stats, len(l2Sizes))
		hit := make([]bool, len(l2Sizes))
		for j, size := range l2Sizes {
			memoized[j], hit[j] = c.Memo.Get(harness.GeometryMemoKey(captureHash, l1, size))
		}
		for lo := 0; lo < len(l2Sizes); {
			hi := lo + 1
			for hi < len(l2Sizes) && hit[hi] == hit[lo] {
				hi++
			}
			run := l2Sizes[lo:hi]
			if hit[lo] {
				hits += len(run)
				pts := make([]harness.GeometryPoint, len(run))
				for j := range run {
					pts[j] = harness.GeometryPointFromStats(l1, run[j], memoized[lo+j])
				}
				prefill[len(shards)] = pts
				shards = append(shards, Shard{
					Index:   len(shards),
					L1:      l1,
					L2Sizes: append([]int(nil), run...),
				})
			} else {
				misses += len(run)
				chunks := len(c.Workers)
				if chunks > len(run) {
					chunks = len(run)
				}
				for k := 0; k < chunks; k++ {
					a := k * len(run) / chunks
					b := (k + 1) * len(run) / chunks
					if a == b {
						continue
					}
					shards = append(shards, Shard{
						Index:   len(shards),
						L1:      l1,
						L2Sizes: append([]int(nil), run[a:b]...),
					})
				}
			}
			lo = hi
		}
	}
	return shards, prefill, hits, misses
}

// buildPayloads serializes what the sweep will ship: either the full
// capture as one payload, or — the default — one M4L2 payload per L1
// row, produced by replaying the capture through each row's L1 filter
// exactly once (the same FilterGeometryL1 seam the local sweep uses,
// so a worker replaying the payload cannot diverge from a local run).
// payloadOf maps each shard index to its payload.
func (c *Coordinator) buildPayloads(ctx context.Context, capture *harness.Capture, l1s []cache.Config, shards []Shard) (map[int]*payload, error) {
	payloadOf := make(map[int]*payload, len(shards))
	if c.ShipFullTrace {
		var wire bytes.Buffer
		if _, err := capture.Enc.WriteTo(&wire); err != nil {
			return nil, fmt.Errorf("dist: serialize: %w", err)
		}
		p := &payload{
			key:         fullKey,
			hash:        capture.Enc.Hash().String(), // cached by WriteTo above
			contentType: ContentTypeTrace,
			wire:        wire.Bytes(),
		}
		for _, sh := range shards {
			payloadOf[sh.Index] = p
		}
		return payloadOf, nil
	}

	// One filter replay per L1 row, concurrently — this is the work
	// the workers would otherwise each repeat per shard. Only rows some
	// shard actually dispatches are filtered: a memoized plan can cover
	// whole rows, and those must cost neither a filter replay nor an
	// upload.
	needed := make([]bool, len(l1s))
	for _, sh := range shards {
		for li := range l1s {
			if sh.L1 == l1s[li] {
				needed[li] = true
				break
			}
		}
	}
	payloads := make([]*payload, len(l1s))
	errs := make([]error, len(l1s))
	var wg sync.WaitGroup
	for li, l1 := range l1s {
		if !needed[li] {
			continue
		}
		wg.Add(1)
		go func(li int, l1 cache.Config) {
			defer wg.Done()
			lt := harness.FilterGeometryL1(ctx, capture.Enc, l1)
			var wire bytes.Buffer
			if _, err := lt.WriteTo(&wire); err != nil {
				errs[li] = fmt.Errorf("dist: serialize l2 trace %d: %w", li, err)
				return
			}
			key := fmt.Sprintf("l2/l1=%dK-%dw", l1.SizeBytes>>10, l1.Ways)
			if l1.Policy != "" && l1.Policy != cache.PolicyLRU {
				key += "-" + string(l1.Policy)
			}
			payloads[li] = &payload{
				key:         fmt.Sprintf("%s#%d", key, li),
				hash:        lt.Hash().String(), // cached by WriteTo above
				contentType: ContentTypeL2Trace,
				wire:        wire.Bytes(),
			}
		}(li, l1)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, sh := range shards {
		for li := range l1s {
			if sh.L1 == l1s[li] {
				payloadOf[sh.Index] = payloads[li]
				break
			}
		}
	}
	return payloadOf, nil
}

// sweepState is the failover scheduler's shared state. Batches queue
// per worker; a worker goroutine drains its own queue and, when it
// fails, hands its remaining work to the survivors.
type sweepState struct {
	c      *Coordinator
	cancel context.CancelFunc
	// ctx is the sweep context, kept so the prober can hand it to the
	// runWorker goroutines it spawns on re-admission.
	ctx context.Context
	// proberDone closes when the prober loop exits (immediately if
	// re-admission is disabled); the sweep joins on it after the worker
	// goroutines so nothing touches shared state during cleanup.
	proberDone chan struct{}

	mu       sync.Mutex
	cond     *sync.Cond
	queues   [][]*batch
	pendingN int // batches not yet completed (queued + running)
	running  int // live runWorker goroutines (a WaitGroup cannot re-Add
	// after Wait began, and re-admission does exactly that)
	alive  []bool
	aliveN int
	busy   []bool // worker is mid-batch (its queue length alone lies)
	// breakers, downSince and noReadmit are the self-healing state:
	// per-worker circuit breakers, when each dropped worker went down
	// (for the prober's cooldown), and the workers barred from
	// re-admission (protocol violators).
	breakers  []breaker
	downSince []time.Time
	noReadmit []bool
	openN     int    // breakers currently open, for the gauge drain
	rng       uint64 // seeded jitter state (mu-guarded)
	fatal     error
	stats     SweepStats

	// results is indexed by shard index; each element is written by
	// exactly one in-flight batch at a time. servedBy records, per
	// shard index, which worker's replay produced the element (same
	// exclusive-writer discipline). shards keeps the plan so emitted
	// events carry the shard they report; emitted is the length of the
	// contiguous completed prefix already streamed to OnShard.
	results  [][]harness.GeometryPoint
	servedBy []string
	// cellStats holds, per dispatched shard, the whole-run stats the
	// worker reported alongside its points (empty when the worker
	// omitted them) — the raw material the memo stores after success.
	cellStats [][]cache.Stats
	shards    []Shard
	emitted   int
	// uploaded maps payload key → trace ID per worker. Each worker's
	// map is touched only by its own goroutine while the sweep runs;
	// deleteAll reads them all after the goroutines join.
	uploaded []map[string]string
}

func newSweepState(c *Coordinator, shards []Shard) *sweepState {
	seed := c.Seed
	if seed == 0 {
		seed = 1
	}
	s := &sweepState{
		c:          c,
		proberDone: make(chan struct{}),
		queues:     make([][]*batch, len(c.Workers)),
		alive:      make([]bool, len(c.Workers)),
		aliveN:     len(c.Workers),
		busy:       make([]bool, len(c.Workers)),
		breakers:   make([]breaker, len(c.Workers)),
		downSince:  make([]time.Time, len(c.Workers)),
		noReadmit:  make([]bool, len(c.Workers)),
		rng:        seed,
		results:    make([][]harness.GeometryPoint, len(shards)),
		servedBy:   make([]string, len(shards)),
		cellStats:  make([][]cache.Stats, len(shards)),
		shards:     shards,
		uploaded:   make([]map[string]string, len(c.Workers)),
	}
	s.stats.ShardsByWorker = map[string]int{}
	s.cond = sync.NewCond(&s.mu)
	for i := range s.alive {
		s.alive[i] = true
		s.uploaded[i] = map[string]string{}
	}
	return s
}

// emitReadyLocked (mu held) streams the contiguous prefix of completed
// shards to OnShard. Emission order is shard-index order — the exact
// discipline the merged return value uses — so however completion
// interleaves across workers, failovers and fallbacks, a consumer
// appending Points event by event ends up byte-identical to the batch
// result.
func (s *sweepState) emitReadyLocked() {
	if s.c.OnShard == nil {
		return
	}
	for s.emitted < len(s.results) && len(s.results[s.emitted]) > 0 {
		i := s.emitted
		s.emitted++
		s.c.OnShard(ShardEvent{
			Shard:  s.shards[i],
			Points: s.results[i],
			Worker: s.servedBy[i],
			Done:   s.emitted,
			Total:  len(s.shards),
		})
	}
}

// runWorker drains worker wi's queue until the sweep completes, the
// sweep aborts, or the worker itself is dropped (at which point its
// work is re-planned, the goroutine exits, and — unless the worker
// violated the protocol — the prober may later re-admit it with a
// fresh goroutine). Transient failures retry on the same worker under
// exponential backoff while the batch budget and the worker's breaker
// allow; permanent failures abort the sweep fast.
func (s *sweepState) runWorker(ctx context.Context, wi int) {
	defer func() {
		s.mu.Lock()
		s.running--
		s.mu.Unlock()
		s.cond.Broadcast()
	}()
	for {
		s.mu.Lock()
		for s.fatal == nil && s.pendingN > 0 && len(s.queues[wi]) == 0 {
			s.cond.Wait()
		}
		if s.fatal != nil || s.pendingN == 0 {
			s.mu.Unlock()
			return
		}
		b := s.queues[wi][0]
		s.queues[wi] = s.queues[wi][1:]
		s.busy[wi] = true
		s.mu.Unlock()

		err := s.runBatch(ctx, wi, b)

		s.mu.Lock()
		s.busy[wi] = false
		if err == nil {
			s.breakers[wi].fails = 0
			s.breakers[wi].halfOpen = false
			s.pendingN--
			s.stats.Replays++
			s.stats.ShardsByWorker[s.c.Workers[wi]] += len(b.shards)
			s.emitReadyLocked()
			mBatchesPend.Dec()
			s.mu.Unlock()
			s.cond.Broadcast()
			continue
		}
		if ctx.Err() != nil {
			// The sweep's context died (caller cancellation, or the
			// abort broadcast of an earlier fatal error) — the worker
			// did not fail, so no death, no re-plan, no attempt
			// burned. setFatal is a no-op if a real fatal error (or
			// the cancellation) is already recorded.
			s.setFatal(fmt.Errorf("dist: sweep cancelled: %w", ctx.Err()))
			s.mu.Unlock()
			s.cond.Broadcast()
			return
		}
		b.attempts++
		b.lastErr = fmt.Errorf("worker %s: %w", s.c.Workers[wi], err)
		switch class := classify(err); class {
		case classViolation:
			// The worker is up but wrong: drop it now and bar it from
			// re-admission for the rest of the sweep.
			s.noReadmit[wi] = true
			s.stats.BarredWorkers = append(s.stats.BarredWorkers, s.c.Workers[wi])
			s.failWorker(wi, b, err)
			s.mu.Unlock()
			s.cond.Broadcast()
			return
		case classPermanent:
			// 4xx: every worker would answer the same; retrying anywhere
			// burns budget to learn nothing.
			s.setFatal(fmt.Errorf("dist: %s on worker %s: permanent error: %w",
				b.label(), s.c.Workers[wi], err))
			s.mu.Unlock()
			s.cond.Broadcast()
			return
		}
		// Transient. A replay 404 means the worker restarted and lost
		// its store — every upload ID cached for it is stale, so forget
		// them all and let the retry re-upload.
		if isStatus(err, http.StatusNotFound) {
			s.uploaded[wi] = map[string]string{}
		}
		if b.attempts >= s.c.maxAttempts() {
			s.setFatal(fmt.Errorf("dist: %s failed after %d attempts (attempt budget %d): %w",
				b.label(), b.attempts, s.c.maxAttempts(), b.lastErr))
			s.mu.Unlock()
			s.cond.Broadcast()
			return
		}
		s.breakers[wi].fails++
		if s.breakers[wi].halfOpen || s.breakers[wi].fails >= s.c.breakerThreshold() {
			// Consecutive failures (or any failure while half-open):
			// open the breaker and drop the worker — its batches fail
			// over now, and the prober decides when it may return.
			s.tripBreakerLocked(wi)
			s.failWorker(wi, b, err)
			s.mu.Unlock()
			s.cond.Broadcast()
			return
		}
		// Retry here after backoff. The batch returns to the FRONT of
		// this worker's queue so it keeps its place — and stays visible
		// to the re-admission rebalancer while we sleep.
		s.queues[wi] = append([]*batch{b}, s.queues[wi]...)
		s.stats.Retries++
		delay := s.backoffLocked(b.attempts)
		mRetries.Inc()
		distLog.Info("transient failure, retrying after backoff",
			"worker", s.c.Workers[wi], "batch", b.label(),
			"attempt", b.attempts, "delay", delay.Round(time.Millisecond).String(),
			"err", err)
		s.mu.Unlock()
		if !sleepCtx(ctx, delay) {
			s.mu.Lock()
			s.setFatal(fmt.Errorf("dist: sweep cancelled: %w", ctx.Err()))
			s.mu.Unlock()
			s.cond.Broadcast()
			return
		}
	}
}

// failWorker (mu held) drops worker wi from the sweep and re-plans its
// current batch plus everything still queued to it onto the surviving
// workers. The caller has already charged the failed attempt to cur's
// budget and set cur.lastErr; batches the worker never started carry
// their counts unchanged. The sweep aborts when no workers remain or a
// batch exhausts its budget — though with re-admission the prober may
// still bring this worker back later.
func (s *sweepState) failWorker(wi int, cur *batch, err error) {
	if s.fatal != nil {
		return
	}
	s.alive[wi] = false
	s.aliveN--
	s.downSince[wi] = time.Now()
	s.stats.DeadWorkers++
	mWorkerDeaths.Inc()
	mWorkersAlive.Dec()
	s.stats.WorkerFailures = append(s.stats.WorkerFailures, cur.lastErr.Error())
	distLog.Warn("worker dropped from sweep",
		"worker", s.c.Workers[wi], "batch", cur.label(),
		"attempts", cur.attempts, "survivors", s.aliveN, "err", err)
	orphans := append([]*batch{cur}, s.queues[wi]...)
	s.queues[wi] = nil
	for _, b := range orphans {
		if b.attempts >= s.c.maxAttempts() {
			s.setFatal(fmt.Errorf("dist: %s failed on %d workers (attempt budget %d): %w",
				b.label(), b.attempts, s.c.maxAttempts(), b.lastErr))
			return
		}
		if s.aliveN == 0 {
			s.setFatal(fmt.Errorf("dist: all %d workers failed: %w", len(s.c.Workers), cur.lastErr))
			return
		}
		// Re-plan onto the least-loaded survivor — an idle worker beats
		// one mid-replay with an empty queue, so the orphan does not
		// queue behind a long replay while capacity sits free.
		target, best := -1, 0
		for w := range s.queues {
			if !s.alive[w] {
				continue
			}
			load := len(s.queues[w])
			if s.busy[w] {
				load++
			}
			if target == -1 || load < best {
				target, best = w, load
			}
		}
		s.queues[target] = append(s.queues[target], b)
		s.stats.Failovers++
		mFailovers.Inc()
		distLog.Info("batch re-planned onto survivor",
			"batch", b.label(), "target", s.c.Workers[target], "attempts", b.attempts)
	}
}

// setFatal (mu held) aborts the sweep: every in-flight request is
// cancelled and every worker goroutine unblocks and exits.
func (s *sweepState) setFatal(err error) {
	if s.fatal == nil {
		s.fatal = err
		if s.cancel != nil {
			s.cancel()
		}
	}
}

// runBatch executes one batch on worker wi: upload the batch's payload
// if this worker does not hold it yet (failover re-plans land here
// with the trace absent), then replay the shards — each step under its
// own deadline — and store the returned points by shard index.
func (s *sweepState) runBatch(ctx context.Context, wi int, b *batch) error {
	base := s.c.Workers[wi]
	id, ok := s.uploaded[wi][b.payload.key]
	if !ok && s.c.headTrace(ctx, base, b.payload.hash) {
		// Content-hash dedup: the worker already holds these exact bytes
		// — left by an earlier sweep, another coordinator, or a failover
		// — so no upload moves. Any probe failure (404, error, a worker
		// that predates HEAD) just falls through to the normal upload.
		id, ok = b.payload.hash, true
		s.uploaded[wi][b.payload.key] = id
		s.mu.Lock()
		s.stats.UploadsDeduped++
		s.mu.Unlock()
		mUploadDedup.Inc()
		distLog.Debug("upload deduped by content hash",
			"worker", base, "key", b.payload.key, "id", id)
	}
	if !ok {
		upload := func() (*TraceInfo, error) {
			uctx, cancel := context.WithTimeout(ctx, s.c.uploadTimeout())
			defer cancel()
			start := time.Now()
			info, err := s.c.upload(uctx, base, b.payload)
			if err == nil {
				mUploadSecs.ObserveSince(start)
			}
			return info, err
		}
		info, err := upload()
		var he *httpError
		if errors.As(err, &he) && he.status == http.StatusInsufficientStorage {
			// The worker's trace store is full of OUR earlier uploads
			// (one payload per L1 row served, more after failovers) —
			// that is this sweep's footprint, not a worker fault. Evict
			// the payloads no queued batch here still needs and retry
			// once before treating it as a failure.
			if s.evictUnneeded(ctx, wi, b) > 0 {
				info, err = upload()
			}
		}
		if err != nil {
			return fmt.Errorf("upload %s: %w", b.payload.key, err)
		}
		id = info.ID
		s.uploaded[wi][b.payload.key] = id
		s.mu.Lock()
		s.stats.Uploads++
		s.stats.UploadBytes += int64(len(b.payload.wire))
		s.mu.Unlock()
		mUploads.Inc()
		mUploadBytes.Add(uint64(len(b.payload.wire)))
		distLog.Debug("trace uploaded",
			"worker", base, "key", b.payload.key, "id", id, "bytes", len(b.payload.wire))
	}

	rctx, cancel := context.WithTimeout(ctx, s.c.replayTimeout())
	replayStart := time.Now()
	resp, err := s.c.replay(rctx, base, ReplayRequest{TraceID: id, Shards: b.shards})
	cancel()
	if err != nil {
		return fmt.Errorf("replay %s: %w", b.label(), err)
	}
	mReplaySecs.ObserveSince(replayStart)
	mBatchReplays.Inc()
	mReplayShards.Add(uint64(len(b.shards)))
	distLog.Debug("batch replayed",
		"worker", base, "batch", b.label(), "shards", len(b.shards),
		"duration", time.Since(replayStart).Round(time.Millisecond).String())

	// Only indices this batch carries may be written: the results
	// slice is shared across workers, so an index echoed back wrong
	// (buggy or stale worker) must be an error — and a failover — not
	// a silent overwrite of another shard's element. Validate the whole
	// response first, then commit under the sweep lock: emitReadyLocked
	// scans results/servedBy from other workers' goroutines, so every
	// write to them must be synchronized.
	mine := make(map[int]bool, len(b.shards))
	for _, sh := range b.shards {
		mine[sh.Index] = true
	}
	for _, res := range resp.Results {
		if !mine[res.Index] {
			return violationf("returned shard index %d it was not assigned", res.Index)
		}
		if len(res.Points) == 0 {
			return violationf("shard %d returned no points", res.Index)
		}
		delete(mine, res.Index)
	}
	if len(mine) > 0 {
		return violationf("response missing %d of %d shards", len(mine), len(b.shards))
	}
	s.mu.Lock()
	for _, res := range resp.Results {
		s.results[res.Index] = res.Points
		s.servedBy[res.Index] = base
		if len(res.Stats) == len(res.Points) {
			s.cellStats[res.Index] = res.Stats
		}
	}
	s.mu.Unlock()
	return nil
}

// evictUnneeded frees store room on worker wi for the upload cur
// needs: every resident trace that neither cur nor any batch still
// queued to wi references is deleted. Residency comes from the
// worker's own healthz — the store is shared across sweeps now, so
// leftovers from earlier sweeps are eviction candidates exactly like
// this sweep's stale uploads. Returns how many traces were released.
// Only wi's own goroutine calls this, so the uploads map needs no
// extra locking; the queue snapshot does.
func (s *sweepState) evictUnneeded(ctx context.Context, wi int, cur *batch) int {
	base := s.c.Workers[wi]
	// A resident trace is needed if cur or any batch still queued to wi
	// replays it — identified by content hash, or by whatever ID this
	// sweep's upload was given (a fake or legacy worker may not name
	// traces by hash). Only wi's goroutine touches s.uploaded[wi].
	needed := map[string]bool{}
	keep := func(p *payload) {
		needed[p.hash] = true
		if id, ok := s.uploaded[wi][p.key]; ok {
			needed[id] = true
		}
	}
	keep(cur.payload)
	s.mu.Lock()
	for _, b := range s.queues[wi] {
		keep(b.payload)
	}
	s.mu.Unlock()

	resident := func() []string {
		hctx, cancel := context.WithTimeout(ctx, s.c.uploadTimeout())
		defer cancel()
		req, err := http.NewRequestWithContext(hctx, http.MethodGet, base+"/v1/healthz", nil)
		if err != nil {
			return nil
		}
		var hs HealthStatus
		if s.c.do(req, http.StatusOK, &hs) != nil {
			return nil
		}
		return hs.TraceIDs
	}()
	// Without a healthz answer, fall back to what this sweep uploaded.
	if resident == nil {
		for _, id := range s.uploaded[wi] {
			resident = append(resident, id)
		}
	}

	evicted := 0
	for _, id := range resident {
		if needed[id] {
			continue
		}
		dctx, cancel := context.WithTimeout(ctx, s.c.uploadTimeout())
		req, err := http.NewRequestWithContext(dctx, http.MethodDelete, base+"/v1/traces/"+id, nil)
		if err == nil {
			err = s.c.do(req, http.StatusNoContent, nil)
		}
		cancel()
		if err != nil {
			continue
		}
		evicted++
		for key, uid := range s.uploaded[wi] {
			if uid == id {
				delete(s.uploaded[wi], key)
			}
		}
	}
	return evicted
}

// headTrace reports whether base already holds the content hash —
// the cheap exists probe that replaces moving bytes. Strictly an
// optimization: every failure mode returns false and the caller
// uploads normally.
func (c *Coordinator) headTrace(ctx context.Context, base, hash string) bool {
	if hash == "" {
		return false
	}
	hctx, cancel := context.WithTimeout(ctx, c.uploadTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(hctx, http.MethodHead, base+"/v1/traces/"+hash, nil)
	if err != nil {
		return false
	}
	return c.do(req, http.StatusOK, nil) == nil
}

// upload ships one payload to a worker.
func (c *Coordinator) upload(ctx context.Context, base string, p *payload) (*TraceInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/traces", bytes.NewReader(p.wire))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", p.contentType)
	var info TraceInfo
	if err := c.do(req, http.StatusCreated, &info); err != nil {
		return nil, err
	}
	if info.ID == "" {
		return nil, violationf("worker returned an empty trace ID")
	}
	return &info, nil
}

// replay posts one shard batch.
func (c *Coordinator) replay(ctx context.Context, base string, rr ReplayRequest) (*ReplayResponse, error) {
	body, err := json.Marshal(rr)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/replay", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	var resp ReplayResponse
	if err := c.do(req, http.StatusOK, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// deleteAll releases the uploaded traces (best effort; workers also
// bound their stores). Deletes run concurrently, each under its own
// short timeout — the call runs deferred, possibly after the sweep's
// context is already cancelled, and the dead worker that triggered a
// failover must not add its timeout to everyone else's cleanup.
func (c *Coordinator) deleteAll(uploaded []map[string]string) {
	var wg sync.WaitGroup
	for wi, ids := range uploaded {
		for _, id := range ids {
			wg.Add(1)
			go func(base, id string) {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				req, err := http.NewRequestWithContext(ctx, http.MethodDelete, base+"/v1/traces/"+id, nil)
				if err != nil {
					return
				}
				if resp, err := c.client().Do(req); err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}(c.Workers[wi], id)
		}
	}
	wg.Wait()
}

// httpError is a non-expected-status response, keeping the code
// inspectable (the scheduler treats a full trace store differently
// from a dead worker).
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return fmt.Sprintf("HTTP %d: %s", e.status, e.msg) }

// do executes a request, decodes a JSON response into out on the
// expected status, and turns everything else into an *httpError
// carrying the server's diagnostic. The body is always drained before
// close so the transport can reuse the connection — a sweep makes many
// upload/replay/delete calls per worker and must not pay a new
// connection for each.
func (c *Coordinator) do(req *http.Request, wantStatus int, out any) error {
	resp, err := c.client().Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}()
	if resp.StatusCode != wantStatus {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		var eb errorBody
		if json.Unmarshal(raw, &eb) == nil && eb.Error != "" {
			return &httpError{status: resp.StatusCode, msg: eb.Error}
		}
		return &httpError{status: resp.StatusCode, msg: string(bytes.TrimSpace(raw))}
	}
	if out == nil { // status-only call (e.g. DELETE → 204, no body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
