package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/harness"
	"repro/internal/perf"
	"repro/internal/simmem"
)

// Coordinator drives a distributed geometry sweep: capture once
// locally, upload the serialized trace to every worker, shard the
// (L1 × L2 size) grid across them, and merge the results in
// deterministic shard order.
type Coordinator struct {
	// Workers are the base URLs of the worker processes, e.g.
	// "http://10.0.0.7:8375". At least one is required.
	Workers []string
	// Client is the HTTP client used for all calls. Nil means
	// http.DefaultClient.
	Client *http.Client
}

func (c *Coordinator) client() *http.Client {
	if c.Client != nil {
		return c.Client
	}
	return http.DefaultClient
}

// planShards cuts the (L1 × L2 size) grid into shards: per L1, the L2
// axis splits into at most `workers` contiguous chunks. Flattening
// shard results by Index therefore reproduces the (L1 outer, L2
// inner) point order of the local sweep exactly, independent of which
// worker ran what or when it finished.
func planShards(l1s []cache.Config, l2Sizes []int, workers int) []Shard {
	var shards []Shard
	for _, l1 := range l1s {
		chunks := workers
		if chunks > len(l2Sizes) {
			chunks = len(l2Sizes)
		}
		for j := 0; j < chunks; j++ {
			lo := j * len(l2Sizes) / chunks
			hi := (j + 1) * len(l2Sizes) / chunks
			if lo == hi {
				continue
			}
			shards = append(shards, Shard{
				Index:   len(shards),
				L1:      l1,
				L2Sizes: append([]int(nil), l2Sizes[lo:hi]...),
			})
		}
	}
	return shards
}

// GeometrySweep runs the distributed counterpart of
// harness.RunGeometrySweep: one local capture, every configuration
// replayed on the worker fleet. Nil/empty axes use the harness
// defaults. The returned points are identical — field for field — to
// the local sweep of the same workload and axes.
func (c *Coordinator) GeometrySweep(ctx context.Context, wl harness.Workload, l1s []cache.Config, l2Sizes []int) ([]harness.GeometryPoint, error) {
	shardPoints, err := c.geometrySweepShards(ctx, wl, l1s, l2Sizes)
	if err != nil {
		return nil, err
	}
	var out []harness.GeometryPoint
	for _, pts := range shardPoints {
		out = append(out, pts...)
	}
	return out, nil
}

// GeometrySweepSeries runs the distributed sweep and renders it as the
// usual per-L1 display series. Each shard contributes a series chunk;
// chunks of the same L1 row are reassembled X-wise with
// perf.MergeSeries in shard order — the same merge discipline the
// figure sweeps use — so the output is byte-identical to
// harness.GeometrySweepSeries over a local sweep.
func (c *Coordinator) GeometrySweepSeries(ctx context.Context, wl harness.Workload, l1s []cache.Config, l2Sizes []int) ([]perf.Series, error) {
	shardPoints, err := c.geometrySweepShards(ctx, wl, l1s, l2Sizes)
	if err != nil {
		return nil, err
	}
	var merged []perf.Series
	for start := 0; start < len(shardPoints); {
		// Shards of one L1 row are contiguous in plan order; merge the
		// row's chunks, then move to the next row.
		end := start + 1
		for end < len(shardPoints) && shardPoints[end][0].L1 == shardPoints[start][0].L1 {
			end++
		}
		chunks := make([][]perf.Series, 0, end-start)
		for _, pts := range shardPoints[start:end] {
			chunks = append(chunks, harness.GeometrySweepSeries(pts))
		}
		row, err := perf.MergeSeries(chunks...)
		if err != nil {
			return nil, fmt.Errorf("dist: merging shard series: %w", err)
		}
		merged = append(merged, row...)
		start = end
	}
	return merged, nil
}

// geometrySweepShards performs the capture/upload/replay cycle and
// returns per-shard points ordered by shard index.
func (c *Coordinator) geometrySweepShards(ctx context.Context, wl harness.Workload, l1s []cache.Config, l2Sizes []int) ([][]harness.GeometryPoint, error) {
	if len(c.Workers) == 0 {
		return nil, fmt.Errorf("dist: no workers configured")
	}
	if len(l1s) == 0 {
		l1s = harness.GeometryL1Configs()
	}
	if len(l2Sizes) == 0 {
		l2Sizes = harness.GeometryL2Sizes()
	}

	// Plan the shards first: small grids can leave workers without
	// assignments, and those must not receive (or store) an upload.
	shards := planShards(l1s, l2Sizes, len(c.Workers))
	byWorker := make([][]Shard, len(c.Workers))
	for i, sh := range shards {
		w := i % len(c.Workers)
		byWorker[w] = append(byWorker[w], sh)
	}

	// Capture once; serialize once. Every assigned worker receives
	// the same bytes.
	capture, err := harness.RecordEncodeCtx(ctx, simmem.NewSpace(0), wl)
	if err != nil {
		return nil, fmt.Errorf("dist: capture: %w", err)
	}
	var wire bytes.Buffer
	if _, err := capture.Enc.WriteTo(&wire); err != nil {
		return nil, fmt.Errorf("dist: serialize: %w", err)
	}

	// Register cleanup before checking the upload error: a partial
	// upload failure must still release the traces that did land, or
	// repeated failures would fill the surviving workers' stores.
	ids, err := c.uploadAll(ctx, wire.Bytes(), byWorker)
	defer c.deleteAll(ids)
	if err != nil {
		return nil, err
	}

	results := make([][]harness.GeometryPoint, len(shards))
	var wg sync.WaitGroup
	errs := make([]error, len(c.Workers))
	for wi := range c.Workers {
		if len(byWorker[wi]) == 0 {
			continue
		}
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			// Only indices this worker was assigned may be written:
			// concurrent goroutines share the results slice, so an
			// index echoed back wrong (buggy or stale worker) must be
			// an error, not a silent overwrite of another worker's
			// element.
			mine := map[int]bool{}
			for _, sh := range byWorker[wi] {
				mine[sh.Index] = true
			}
			resp, err := c.replay(ctx, wi, ReplayRequest{TraceID: ids[wi], Shards: byWorker[wi]})
			if err != nil {
				errs[wi] = err
				return
			}
			for _, res := range resp.Results {
				if !mine[res.Index] {
					errs[wi] = fmt.Errorf("dist: worker %s returned shard index %d it was not assigned", c.Workers[wi], res.Index)
					return
				}
				delete(mine, res.Index)
				results[res.Index] = res.Points
			}
		}(wi)
	}
	wg.Wait()
	for wi, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("dist: worker %s: %w", c.Workers[wi], err)
		}
	}
	for i, pts := range results {
		if len(pts) == 0 {
			return nil, fmt.Errorf("dist: shard %d missing from worker responses", i)
		}
	}
	return results, nil
}

// uploadAll ships the serialized trace to every worker with shard
// assignments, concurrently. The returned slice always reflects the
// uploads that succeeded (empty ID where one failed or none was
// needed), even when err is non-nil, so the caller can release them.
func (c *Coordinator) uploadAll(ctx context.Context, wire []byte, byWorker [][]Shard) ([]string, error) {
	ids := make([]string, len(c.Workers))
	errs := make([]error, len(c.Workers))
	var wg sync.WaitGroup
	for wi, base := range c.Workers {
		if len(byWorker[wi]) == 0 {
			continue
		}
		wg.Add(1)
		go func(wi int, base string) {
			defer wg.Done()
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/traces", bytes.NewReader(wire))
			if err != nil {
				errs[wi] = err
				return
			}
			req.Header.Set("Content-Type", "application/octet-stream")
			var info TraceInfo
			if err := c.do(req, http.StatusCreated, &info); err != nil {
				errs[wi] = err
				return
			}
			ids[wi] = info.ID
		}(wi, base)
	}
	wg.Wait()
	for wi, err := range errs {
		if err != nil {
			return ids, fmt.Errorf("dist: upload to %s: %w", c.Workers[wi], err)
		}
	}
	return ids, nil
}

// deleteAll releases the uploaded traces (best effort; workers also
// bound their stores). Each delete carries its own short timeout — it
// runs deferred, possibly after the sweep's context is already
// cancelled, and a hung worker must not stall the coordinator's
// return.
func (c *Coordinator) deleteAll(ids []string) {
	for wi, id := range ids {
		if id == "" {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.Workers[wi]+"/v1/traces/"+id, nil)
		if err != nil {
			cancel()
			continue
		}
		if resp, err := c.client().Do(req); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		cancel()
	}
}

// replay posts one worker's shard batch.
func (c *Coordinator) replay(ctx context.Context, wi int, rr ReplayRequest) (*ReplayResponse, error) {
	body, err := json.Marshal(rr)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Workers[wi]+"/v1/replay", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	var resp ReplayResponse
	if err := c.do(req, http.StatusOK, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// do executes a request, decodes a JSON response into out on the
// expected status, and turns everything else into an error carrying
// the server's diagnostic.
func (c *Coordinator) do(req *http.Request, wantStatus int, out any) error {
	resp, err := c.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		var eb errorBody
		if json.Unmarshal(raw, &eb) == nil && eb.Error != "" {
			return fmt.Errorf("HTTP %d: %s", resp.StatusCode, eb.Error)
		}
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
