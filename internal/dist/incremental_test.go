package dist

import (
	"context"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/harness"
	"repro/internal/memo"
	"repro/internal/obs"
)

// TestSecondSweepUploadsNoTraceBytes is the incremental-fleet
// regression test: traces are content-addressed and survive a
// successful sweep, so a second identical sweep — even from a fresh
// coordinator with a cold upload cache — must discover every payload
// already resident via HEAD probes and move zero trace bytes. A
// single worker keeps batch placement deterministic across the two
// sweeps.
func TestSecondSweepUploadsNoTraceBytes(t *testing.T) {
	srv := httptest.NewServer(NewWorker(WorkerConfig{Workers: 1}).Handler())
	defer srv.Close()

	wl := harness.Workload{W: 160, H: 128, Frames: 1}
	l1s, l2Sizes := sweepAxes()

	first := &Coordinator{Workers: []string{srv.URL}}
	p1, s1, err := first.GeometrySweepWithStats(context.Background(), wl, l1s, l2Sizes)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Uploads == 0 || s1.UploadBytes == 0 {
		t.Fatalf("first sweep moved no trace bytes: %+v", s1)
	}

	before := obs.Default().Snapshot()
	// A fresh coordinator has no memory of the first sweep; only the
	// worker's content-addressed store can save the bytes.
	second := &Coordinator{Workers: []string{srv.URL}}
	p2, s2, err := second.GeometrySweepWithStats(context.Background(), wl, l1s, l2Sizes)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Uploads != 0 || s2.UploadBytes != 0 {
		t.Errorf("second sweep re-uploaded %d traces / %d bytes, want zero", s2.Uploads, s2.UploadBytes)
	}
	if s2.UploadsDeduped != s1.Uploads {
		t.Errorf("second sweep deduped %d uploads, want all %d", s2.UploadsDeduped, s1.Uploads)
	}
	if !reflect.DeepEqual(p1, p2) {
		t.Error("second sweep's points differ from the first")
	}

	after := obs.Default().Snapshot()
	if got := after.Counters["dist_upload_dedup_total"] - before.Counters["dist_upload_dedup_total"]; got != uint64(s2.UploadsDeduped) {
		t.Errorf("dist_upload_dedup_total delta = %d, want %d", got, s2.UploadsDeduped)
	}
	if got := after.Counters["dist_upload_bytes_total"] - before.Counters["dist_upload_bytes_total"]; got != 0 {
		t.Errorf("dist_upload_bytes_total delta = %d, want 0", got)
	}
}

// TestMemoizedSweepDispatchesNothing is the memo acceptance test at
// the fleet layer: with a memo attached, a repeat of the same sweep
// dispatches zero shards, uploads zero traces, reports a 100% hit
// rate, attributes every streamed shard to the memo — and is
// byte-identical to the cold run. A partially covered sweep replays
// only its missing cells.
func TestMemoizedSweepDispatchesNothing(t *testing.T) {
	srv := httptest.NewServer(NewWorker(WorkerConfig{Workers: 2}).Handler())
	defer srv.Close()

	wl := harness.Workload{W: 160, H: 128, Frames: 1}
	l1s, l2Sizes := sweepAxes()
	cells := len(l1s) * len(l2Sizes)

	mc, err := memo.New(memo.Config{Version: harness.CodeVersion})
	if err != nil {
		t.Fatal(err)
	}
	coord := &Coordinator{Workers: []string{srv.URL}, Memo: mc}
	cold, s1, err := coord.GeometrySweepWithStats(context.Background(), wl, l1s, l2Sizes)
	if err != nil {
		t.Fatal(err)
	}
	if s1.MemoHits != 0 || s1.MemoMisses != cells {
		t.Fatalf("cold sweep memo accounting = %d/%d, want 0/%d", s1.MemoHits, s1.MemoMisses, cells)
	}

	// Unmemoized reference: the memo must never change output.
	plain, err := (&Coordinator{Workers: []string{srv.URL}}).GeometrySweep(context.Background(), wl, l1s, l2Sizes)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, plain) {
		t.Fatal("memoized sweep differs from unmemoized sweep")
	}

	var memoEvents, otherEvents atomic.Int64
	warmCoord := &Coordinator{Workers: []string{srv.URL}, Memo: mc, OnShard: func(ev ShardEvent) {
		if ev.Worker == MemoWorker {
			memoEvents.Add(1)
		} else {
			otherEvents.Add(1)
		}
	}}
	warm, s2, err := warmCoord.GeometrySweepWithStats(context.Background(), wl, l1s, l2Sizes)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm, cold) {
		t.Fatal("warm sweep differs from cold sweep")
	}
	if s2.MemoHits != cells || s2.MemoMisses != 0 {
		t.Errorf("warm sweep memo accounting = %d/%d, want %d/0 (100%% hit rate)", s2.MemoHits, s2.MemoMisses, cells)
	}
	if s2.Replays != 0 || s2.Uploads != 0 || s2.UploadsDeduped != 0 || s2.UploadBytes != 0 {
		t.Errorf("warm sweep touched the fleet: %+v", s2)
	}
	if memoEvents.Load() != int64(len(l1s)) || otherEvents.Load() != 0 {
		t.Errorf("warm sweep events = %d memo / %d other, want %d / 0",
			memoEvents.Load(), otherEvents.Load(), len(l1s))
	}

	// A superset sweep replays only the unseen sizes.
	wider := append(append([]int(nil), l2Sizes...), 4<<20)
	_, s3, err := coord.GeometrySweepWithStats(context.Background(), wl, l1s, wider)
	if err != nil {
		t.Fatal(err)
	}
	if s3.MemoHits != cells || s3.MemoMisses != len(l1s) {
		t.Errorf("superset sweep memo accounting = %d/%d, want %d/%d",
			s3.MemoHits, s3.MemoMisses, cells, len(l1s))
	}
}
