package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/farm"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Worker-side metrics: resident-store pressure and the replay work a
// worker actually serves. The HTTP layer (request counts, per-route
// latency, in-flight) comes from the obs middleware the Handler mounts.
var (
	mTracesResident = obs.Default().Gauge("worker_traces_resident")
	mStoreBytes     = obs.Default().Gauge("worker_trace_store_bytes")
	mUploadsDeduped = obs.Default().Counter("worker_upload_dedup_total")
	mStoreEvictions = obs.Default().Counter("worker_store_evictions_total")
	mShardsServed   = obs.Default().Counter("worker_shards_replayed_total")
	mReplayCalls    = obs.Default().Counter("worker_replay_calls_total")
	mWorkerReplayS  = obs.Default().Histogram("worker_replay_seconds", nil)
)

var workerLog = obs.Logger("worker")

// WorkerConfig parameterizes a Worker.
type WorkerConfig struct {
	// Workers sizes the farm pool shards execute on. <= 0 means
	// GOMAXPROCS.
	Workers int
	// MaxTraces bounds resident uploaded traces. <= 0 means 8. The
	// count bound is a hard 507 — the coordinator owns eviction there
	// (it knows which traces its sweep still needs).
	MaxTraces int
	// MaxTraceBytes bounds one upload's wire size. <= 0 means 1 GiB.
	MaxTraceBytes int64
	// MaxStoreBytes bounds the resident store's total wire bytes.
	// Unlike MaxTraces, this bound self-serves: crossing it evicts
	// least-recently-used traces (uploads, HEAD probes, and replays all
	// refresh recency) until the new upload fits. A coordinator that
	// still needed an evicted trace sees a replay 404 and re-uploads —
	// the same self-healing path a worker restart exercises. <= 0 means
	// unbounded.
	MaxStoreBytes int64
}

// storedTrace is one resident trace of either kind: exactly one of
// full/l2 is non-nil. The store is keyed by content hash, so a trace
// has one identity everywhere and re-uploads dedupe for free.
type storedTrace struct {
	full    *trace.Trace
	l2      *trace.L2Trace
	kind    string
	records int
	bytes   int64
	lastUse uint64 // logical clock tick of the last touch, for LRU
}

func (st *storedTrace) info(id string) TraceInfo {
	return TraceInfo{ID: id, Kind: st.kind, Records: st.records, Bytes: st.bytes}
}

// Worker executes replay shards against uploaded traces. Mount its
// Handler on any HTTP server (cmd/mp4worker is the standalone binary).
type Worker struct {
	cfg  WorkerConfig
	pool *farm.Pool

	// inFlight counts shards currently replaying, reported by
	// /v1/healthz so a coordinator probing for re-admission sees load
	// alongside liveness.
	inFlight atomic.Int64

	mu         sync.Mutex
	traces     map[string]*storedTrace // content hash → trace
	storeBytes int64
	clock      uint64
}

// NewWorker builds a Worker from cfg.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.MaxTraces <= 0 {
		cfg.MaxTraces = 8
	}
	if cfg.MaxTraceBytes <= 0 {
		cfg.MaxTraceBytes = 1 << 30
	}
	return &Worker{
		cfg:    cfg,
		pool:   farm.New(farm.Config{Workers: cfg.Workers}),
		traces: map[string]*storedTrace{},
	}
}

// touchLocked refreshes st's LRU recency. Callers hold w.mu.
func (w *Worker) touchLocked(st *storedTrace) {
	w.clock++
	st.lastUse = w.clock
}

// dropLocked removes id from the store and settles the accounting.
// Callers hold w.mu. In-flight replays keep their *storedTrace alive.
func (w *Worker) dropLocked(id string) {
	st, ok := w.traces[id]
	if !ok {
		return
	}
	delete(w.traces, id)
	w.storeBytes -= st.bytes
	mTracesResident.Dec()
	mStoreBytes.Add(-st.bytes)
}

// evictForLocked frees LRU traces until n more bytes fit under
// MaxStoreBytes. Reports whether the upload can proceed (a single
// trace larger than the whole bound cannot). Callers hold w.mu.
func (w *Worker) evictForLocked(n int64) bool {
	if w.cfg.MaxStoreBytes <= 0 {
		return true
	}
	if n > w.cfg.MaxStoreBytes {
		return false
	}
	for w.storeBytes+n > w.cfg.MaxStoreBytes {
		victim, oldest := "", uint64(0)
		for id, st := range w.traces {
			if victim == "" || st.lastUse < oldest {
				victim, oldest = id, st.lastUse
			}
		}
		if victim == "" {
			return false
		}
		workerLog.Debug("trace evicted (store byte bound)", "id", victim)
		w.dropLocked(victim)
		mStoreEvictions.Inc()
	}
	return true
}

// Handler returns the worker protocol handler, wrapped in the obs
// middleware chain (request logging, in-flight gauge, per-route
// latency) and exposing the process metrics registry at /v1/metrics
// (Prometheus text, or JSON by content negotiation) plus the build
// identity at /v1/version.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/traces", w.handleUpload)
	mux.HandleFunc("HEAD /v1/traces/{id}", w.handleExists)
	mux.HandleFunc("DELETE /v1/traces/{id}", w.handleDelete)
	mux.HandleFunc("POST /v1/replay", w.handleReplay)
	mux.HandleFunc("GET /v1/healthz", w.handleHealth)
	mux.Handle("GET /v1/metrics", obs.Default().Handler())
	mux.Handle("GET /v1/version", obs.VersionHandler())
	return obs.Chain(mux,
		obs.RequestLog(workerLog),
		obs.HTTPMetrics("worker", nil),
	)
}

func (w *Worker) writeError(rw http.ResponseWriter, code int, format string, args ...any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(code)
	json.NewEncoder(rw).Encode(errorBody{Error: fmt.Sprintf(format, args...)})
}

// uploadKind maps the request Content-Type to a trace kind: exactly
// application/x-m4l2 selects the L1-filtered decoder, every other type
// (x-m4tr, octet-stream, whatever a plain curl sends) means a full
// trace — the pre-L2 protocol, so old clients keep working unchanged.
// The wire magic still validates either way: M4L2 bytes under a
// full-trace type are a 400 ("not a trace file"), never a misfiled
// trace.
func uploadKind(contentType string) string {
	ct, _, _ := strings.Cut(contentType, ";")
	if strings.EqualFold(strings.TrimSpace(ct), ContentTypeL2Trace) { // MIME types are case-insensitive
		return KindL2Trace
	}
	return KindTrace
}

// handleUpload decodes a wire-format trace body — full M4TR or
// L1-filtered M4L2, selected by Content-Type — and stores it for
// replay under its content hash. The decoders validate everything
// (including the hash trailer when present); corrupt input is a 400.
// Uploading a hash that is already resident is not an error and not a
// second copy: the existing trace's info is returned, whatever name
// the bytes arrived under before. A full store is only decided after
// decoding — the bytes may dedupe against a resident trace, which no
// bound should refuse.
func (w *Worker) handleUpload(rw http.ResponseWriter, r *http.Request) {
	kind := uploadKind(r.Header.Get("Content-Type"))
	body := io.LimitReader(r.Body, w.cfg.MaxTraceBytes+1)
	st := &storedTrace{kind: kind}
	var err error
	var id string
	if kind == KindL2Trace {
		lt := &trace.L2Trace{}
		st.bytes, err = lt.ReadFrom(body)
		st.l2, st.records = lt, lt.Events()
		id = lt.Hash().String()
	} else {
		tr := &trace.Trace{}
		st.bytes, err = tr.ReadFrom(body)
		st.full, st.records = tr, tr.Records()
		id = tr.Hash().String()
	}
	if err != nil {
		if errors.Is(err, trace.ErrBadFormat) {
			w.writeError(rw, http.StatusBadRequest, "trace upload: %v", err)
		} else {
			w.writeError(rw, http.StatusInternalServerError, "trace upload: %v", err)
		}
		return
	}
	if st.bytes > w.cfg.MaxTraceBytes {
		w.writeError(rw, http.StatusRequestEntityTooLarge, "trace exceeds %d bytes", w.cfg.MaxTraceBytes)
		return
	}

	w.mu.Lock()
	if prev, ok := w.traces[id]; ok {
		w.touchLocked(prev)
		info := prev.info(id)
		w.mu.Unlock()
		mUploadsDeduped.Inc()
		workerLog.Debug("trace upload deduped", "id", id, "kind", prev.kind)
		w.writeCreated(rw, info)
		return
	}
	if len(w.traces) >= w.cfg.MaxTraces {
		w.mu.Unlock()
		w.writeError(rw, http.StatusInsufficientStorage, "trace store full (%d resident)", w.cfg.MaxTraces)
		return
	}
	if !w.evictForLocked(st.bytes) {
		w.mu.Unlock()
		w.writeError(rw, http.StatusInsufficientStorage,
			"trace store full (%d of %d bytes)", st.bytes, w.cfg.MaxStoreBytes)
		return
	}
	w.touchLocked(st)
	w.traces[id] = st
	w.storeBytes += st.bytes
	// Deltas, not Set: several Worker instances can share one process
	// (tests, embedded workers), and deltas compose across them.
	mTracesResident.Inc()
	mStoreBytes.Add(st.bytes)
	info := st.info(id)
	w.mu.Unlock()
	workerLog.Debug("trace stored", "id", id, "kind", kind, "records", st.records, "bytes", st.bytes)
	w.writeCreated(rw, info)
}

func (w *Worker) writeCreated(rw http.ResponseWriter, info TraceInfo) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(http.StatusCreated)
	json.NewEncoder(rw).Encode(info)
}

// handleExists is the coordinator's cheap dedup probe: 200 if the
// content hash is resident (refreshing its LRU recency — a probe means
// someone is about to replay it), 404 otherwise. No bytes move either
// way.
func (w *Worker) handleExists(rw http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	w.mu.Lock()
	st, ok := w.traces[id]
	if ok {
		w.touchLocked(st)
	}
	w.mu.Unlock()
	if !ok {
		rw.WriteHeader(http.StatusNotFound)
		return
	}
	rw.WriteHeader(http.StatusOK)
}

func (w *Worker) handleDelete(rw http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	w.mu.Lock()
	_, ok := w.traces[id]
	w.dropLocked(id)
	w.mu.Unlock()
	if !ok {
		w.writeError(rw, http.StatusNotFound, "no trace %q", id)
		return
	}
	rw.WriteHeader(http.StatusNoContent)
}

// handleReplay runs the requested shards on the farm pool. Geometry is
// network data: every shard axis is validated via cache.TryNew before
// any simulation, and the whole request is rejected on the first
// invalid shard.
func (w *Worker) handleReplay(rw http.ResponseWriter, r *http.Request) {
	var req ReplayRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		w.writeError(rw, http.StatusBadRequest, "invalid replay request: %v", err)
		return
	}
	if len(req.Shards) == 0 {
		w.writeError(rw, http.StatusBadRequest, "no shards")
		return
	}
	for _, sh := range req.Shards {
		if err := validateShard(sh); err != nil {
			w.writeError(rw, http.StatusBadRequest, "shard %d: %v", sh.Index, err)
			return
		}
	}
	w.mu.Lock()
	st, ok := w.traces[req.TraceID]
	if ok {
		w.touchLocked(st) // a replayed trace is a live trace
	}
	w.mu.Unlock()
	if !ok {
		w.writeError(rw, http.StatusNotFound, "no trace %q", req.TraceID)
		return
	}
	if st.l2 != nil {
		// An M4L2 trace is the L2-bound stream behind ONE specific L1;
		// replaying it under any other L1 (policy included) would
		// silently simulate a hierarchy that never existed. Compare
		// canonicalized configs so the two spellings of LRU ("" and
		// "lru") — both legal on the wire — name the same cache.
		for _, sh := range req.Shards {
			if sh.L1.Canonical() != st.l2.L1.Canonical() {
				w.writeError(rw, http.StatusBadRequest,
					"shard %d: L1 %+v does not match the L1 %+v embedded in l2 trace %q",
					sh.Index, sh.L1, st.l2.L1, req.TraceID)
				return
			}
		}
	}

	mReplayCalls.Inc()
	w.inFlight.Add(int64(len(req.Shards)))
	defer w.inFlight.Add(-int64(len(req.Shards)))
	replayStart := time.Now()
	study := harness.NewStudy(true)
	ctx := harness.WithStudy(r.Context(), study)
	results, err := farm.MapLabeled(ctx, w.pool, req.Shards,
		func(i int, sh Shard) string {
			return fmt.Sprintf("shard%d/l1=%dK-%dw", sh.Index, sh.L1.SizeBytes>>10, sh.L1.Ways)
		},
		func(ctx context.Context, env farm.Env, sh Shard) (ShardResult, error) {
			// The L2-trace path also returns the whole-run stats behind
			// each point so the coordinator can memoize the cells; the
			// full-trace path returns points only (Stats stays empty and
			// the coordinator simply skips memoizing those shards).
			if st.l2 != nil {
				points, stats, err := harness.GeometryRowStatsFromL2Trace(ctx, st.l2, sh.L2Sizes)
				if err != nil {
					return ShardResult{}, err
				}
				return ShardResult{Index: sh.Index, Points: points, Stats: stats}, nil
			}
			points, err := harness.RunGeometrySweepFromTrace(ctx, farm.Serial(), st.full, []cache.Config{sh.L1}, sh.L2Sizes)
			if err != nil {
				return ShardResult{}, err
			}
			return ShardResult{Index: sh.Index, Points: points}, nil
		})
	if err != nil {
		w.writeError(rw, http.StatusInternalServerError, "replay: %v", err)
		return
	}
	mWorkerReplayS.ObserveSince(replayStart)
	mShardsServed.Add(uint64(len(req.Shards)))
	workerLog.Debug("replay served",
		"trace", req.TraceID, "shards", len(req.Shards),
		"elapsed", time.Since(replayStart))
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(ReplayResponse{Results: results, Usage: study.Usage()})
}

// validateShard checks every geometry the shard names with
// Config.Validate — the exact precondition of cache.TryNew, without
// allocating the cache arrays for what is pure request validation —
// so invalid requests stop here.
func validateShard(sh Shard) error {
	if err := sh.L1.Validate(); err != nil {
		return fmt.Errorf("l1: %w", err)
	}
	if len(sh.L2Sizes) == 0 {
		return errors.New("no l2 sizes")
	}
	// Validate the exact L2 geometry each size will simulate —
	// harness.GeometryL2For is the same rule the replay executes
	// (size swapped into the O2's L2, shard L1's policy inherited), so
	// ingress validation cannot drift from execution.
	for _, size := range sh.L2Sizes {
		if err := harness.GeometryL2For(sh.L1, size).Validate(); err != nil {
			return fmt.Errorf("l2 size %d: %w", size, err)
		}
	}
	return nil
}

// handleHealth reports liveness plus the state a re-admission prober
// needs in one round-trip: which traces are still resident (a restart
// empties the list, flagging every coordinator-cached upload ID as
// stale) and the in-flight shard count.
func (w *Worker) handleHealth(rw http.ResponseWriter, r *http.Request) {
	w.mu.Lock()
	ids := make([]string, 0, len(w.traces))
	for id := range w.traces {
		ids = append(ids, id)
	}
	w.mu.Unlock()
	sort.Strings(ids)
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(HealthStatus{
		OK:             true,
		Traces:         len(ids),
		TraceIDs:       ids,
		InFlightShards: int(w.inFlight.Load()),
		Workers:        w.pool.Workers(),
		Version:        obs.Version(),
	})
}
