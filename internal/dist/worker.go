package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"

	"repro/internal/cache"
	"repro/internal/farm"
	"repro/internal/harness"
	"repro/internal/perf"
	"repro/internal/trace"
)

// WorkerConfig parameterizes a Worker.
type WorkerConfig struct {
	// Workers sizes the farm pool shards execute on. <= 0 means
	// GOMAXPROCS.
	Workers int
	// MaxTraces bounds resident uploaded traces. <= 0 means 8.
	MaxTraces int
	// MaxTraceBytes bounds one upload's wire size. <= 0 means 1 GiB.
	MaxTraceBytes int64
}

// Worker executes replay shards against uploaded traces. Mount its
// Handler on any HTTP server (cmd/mp4worker is the standalone binary).
type Worker struct {
	cfg  WorkerConfig
	pool *farm.Pool

	mu     sync.Mutex
	traces map[string]*trace.Trace
	nextID int
}

// NewWorker builds a Worker from cfg.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.MaxTraces <= 0 {
		cfg.MaxTraces = 8
	}
	if cfg.MaxTraceBytes <= 0 {
		cfg.MaxTraceBytes = 1 << 30
	}
	return &Worker{
		cfg:    cfg,
		pool:   farm.New(farm.Config{Workers: cfg.Workers}),
		traces: map[string]*trace.Trace{},
	}
}

// Handler returns the worker protocol handler.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/traces", w.handleUpload)
	mux.HandleFunc("DELETE /v1/traces/{id}", w.handleDelete)
	mux.HandleFunc("POST /v1/replay", w.handleReplay)
	mux.HandleFunc("GET /v1/healthz", w.handleHealth)
	return mux
}

func (w *Worker) writeError(rw http.ResponseWriter, code int, format string, args ...any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(code)
	json.NewEncoder(rw).Encode(errorBody{Error: fmt.Sprintf(format, args...)})
}

// handleUpload decodes a wire-format trace body and stores it for
// replay. The decoder validates everything; corrupt input is a 400.
func (w *Worker) handleUpload(rw http.ResponseWriter, r *http.Request) {
	w.mu.Lock()
	full := len(w.traces) >= w.cfg.MaxTraces
	w.mu.Unlock()
	if full {
		w.writeError(rw, http.StatusInsufficientStorage, "trace store full (%d resident)", w.cfg.MaxTraces)
		return
	}
	body := io.LimitReader(r.Body, w.cfg.MaxTraceBytes+1)
	var tr trace.Trace
	n, err := tr.ReadFrom(body)
	if err != nil {
		if errors.Is(err, trace.ErrBadFormat) {
			w.writeError(rw, http.StatusBadRequest, "trace upload: %v", err)
		} else {
			w.writeError(rw, http.StatusInternalServerError, "trace upload: %v", err)
		}
		return
	}
	if n > w.cfg.MaxTraceBytes {
		w.writeError(rw, http.StatusRequestEntityTooLarge, "trace exceeds %d bytes", w.cfg.MaxTraceBytes)
		return
	}

	// Re-check the bound under the lock at insert time: several
	// uploads may pass the early check concurrently, and the early
	// reject only exists to skip decoding work.
	w.mu.Lock()
	if len(w.traces) >= w.cfg.MaxTraces {
		w.mu.Unlock()
		w.writeError(rw, http.StatusInsufficientStorage, "trace store full (%d resident)", w.cfg.MaxTraces)
		return
	}
	w.nextID++
	id := fmt.Sprintf("trace-%04d", w.nextID)
	w.traces[id] = &tr
	w.mu.Unlock()

	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(http.StatusCreated)
	json.NewEncoder(rw).Encode(TraceInfo{ID: id, Records: tr.Records(), Bytes: n})
}

func (w *Worker) handleDelete(rw http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	w.mu.Lock()
	_, ok := w.traces[id]
	delete(w.traces, id)
	w.mu.Unlock()
	if !ok {
		w.writeError(rw, http.StatusNotFound, "no trace %q", id)
		return
	}
	rw.WriteHeader(http.StatusNoContent)
}

// handleReplay runs the requested shards on the farm pool. Geometry is
// network data: every shard axis is validated via cache.TryNew before
// any simulation, and the whole request is rejected on the first
// invalid shard.
func (w *Worker) handleReplay(rw http.ResponseWriter, r *http.Request) {
	var req ReplayRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		w.writeError(rw, http.StatusBadRequest, "invalid replay request: %v", err)
		return
	}
	if len(req.Shards) == 0 {
		w.writeError(rw, http.StatusBadRequest, "no shards")
		return
	}
	for _, sh := range req.Shards {
		if err := validateShard(sh); err != nil {
			w.writeError(rw, http.StatusBadRequest, "shard %d: %v", sh.Index, err)
			return
		}
	}
	w.mu.Lock()
	tr := w.traces[req.TraceID]
	w.mu.Unlock()
	if tr == nil {
		w.writeError(rw, http.StatusNotFound, "no trace %q", req.TraceID)
		return
	}

	study := harness.NewStudy(true)
	ctx := harness.WithStudy(r.Context(), study)
	results, err := farm.MapLabeled(ctx, w.pool, req.Shards,
		func(i int, sh Shard) string {
			return fmt.Sprintf("shard%d/l1=%dK-%dw", sh.Index, sh.L1.SizeBytes>>10, sh.L1.Ways)
		},
		func(ctx context.Context, env farm.Env, sh Shard) (ShardResult, error) {
			points, err := harness.RunGeometrySweepFromTrace(ctx, farm.Serial(), tr, []cache.Config{sh.L1}, sh.L2Sizes)
			if err != nil {
				return ShardResult{}, err
			}
			return ShardResult{Index: sh.Index, Points: points}, nil
		})
	if err != nil {
		w.writeError(rw, http.StatusInternalServerError, "replay: %v", err)
		return
	}
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(ReplayResponse{Results: results, Usage: study.Usage()})
}

// validateShard builds every geometry the shard names through
// cache.TryNew — the error-returning ingress constructor — so invalid
// requests stop here.
func validateShard(sh Shard) error {
	if _, err := cache.TryNew(sh.L1); err != nil {
		return fmt.Errorf("l1: %w", err)
	}
	if len(sh.L2Sizes) == 0 {
		return errors.New("no l2 sizes")
	}
	// Validate against the same base L2 geometry the sweep will
	// actually simulate (geometryMachine swaps only the size into the
	// O2's L2), so ingress validation cannot drift from execution.
	base := perf.O2R12K1MB().L2
	for _, size := range sh.L2Sizes {
		l2 := base
		l2.SizeBytes = size
		if _, err := cache.TryNew(l2); err != nil {
			return fmt.Errorf("l2 size %d: %w", size, err)
		}
	}
	return nil
}

func (w *Worker) handleHealth(rw http.ResponseWriter, r *http.Request) {
	w.mu.Lock()
	n := len(w.traces)
	w.mu.Unlock()
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(map[string]any{"ok": true, "traces": n, "workers": w.pool.Workers()})
}
