package dist

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/harness"
	"repro/internal/perf"
	"repro/internal/simmem"
	"repro/internal/trace"
)

// TestMain doubles as the worker-process entry point: the end-to-end
// tests re-exec this test binary with DIST_TEST_WORKER=1 to get real,
// separate worker OS processes (not just goroutines), which is the
// shape the coordinator is built for.
func TestMain(m *testing.M) {
	if os.Getenv("DIST_TEST_WORKER") == "1" {
		runWorkerProcess()
		return
	}
	os.Exit(m.Run())
}

// runWorkerProcess serves the worker protocol on an ephemeral loopback
// port, announces the address on stdout, and exits when stdin closes
// (i.e. when the parent test dies — including by panic or kill). With
// DIST_TEST_DIE_ON_REPLAY=1 the process kills itself the moment a
// replay request arrives — the harness for the kill-a-worker e2e
// tests. DIST_TEST_REPLAY_DELAY_MS slows every replay (so a sweep is
// still in progress when a restarted worker comes back), and
// DIST_TEST_ADDR binds a fixed address instead of an ephemeral one —
// retrying while the kernel releases a just-killed predecessor's port
// — which is how the re-admission e2e restarts a worker at the URL the
// coordinator already knows.
func runWorkerProcess() {
	w := NewWorker(WorkerConfig{Workers: 2})
	var handler http.Handler = w.Handler()
	if os.Getenv("DIST_TEST_DIE_ON_REPLAY") == "1" {
		inner := handler
		handler = http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost && r.URL.Path == "/v1/replay" {
				os.Exit(1)
			}
			inner.ServeHTTP(rw, r)
		})
	}
	if ms, _ := strconv.Atoi(os.Getenv("DIST_TEST_REPLAY_DELAY_MS")); ms > 0 {
		inner := handler
		delay := time.Duration(ms) * time.Millisecond
		handler = http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost && r.URL.Path == "/v1/replay" {
				time.Sleep(delay)
			}
			inner.ServeHTTP(rw, r)
		})
	}
	if addr := os.Getenv("DIST_TEST_ADDR"); addr != "" {
		var ln net.Listener
		var err error
		for i := 0; i < 100; i++ {
			ln, err = net.Listen("tcp", addr)
			if err == nil {
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "worker: bind %s: %v\n", addr, err)
			os.Exit(1)
		}
		srv := &http.Server{Handler: handler}
		go srv.Serve(ln)
		fmt.Printf("WORKER http://%s\n", ln.Addr())
		io.Copy(io.Discard, os.Stdin)
		srv.Close()
		return
	}
	srv := httptest.NewServer(handler)
	fmt.Printf("WORKER %s\n", srv.URL)
	io.Copy(io.Discard, os.Stdin)
	srv.Close()
}

// workerProc is a spawned worker OS process the test can watch die
// (Wait) — the handle the kill-and-restart e2e needs beyond the URL.
type workerProc struct {
	url string
	cmd *exec.Cmd
}

// spawnWorkerProc launches one worker process (with optional extra
// environment) and returns its handle. The worker dies with the test
// via its stdin pipe.
func spawnWorkerProc(t *testing.T, extraEnv ...string) *workerProc {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^$")
	cmd.Env = append(append(os.Environ(), "DIST_TEST_WORKER=1"), extraEnv...)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		stdin.Close()
		cmd.Wait()
	})
	sc := bufio.NewScanner(stdout)
	deadline := time.AfterFunc(30*time.Second, func() { cmd.Process.Kill() })
	url := ""
	for sc.Scan() {
		if u, ok := strings.CutPrefix(sc.Text(), "WORKER "); ok {
			url = u
			break
		}
	}
	deadline.Stop()
	if url == "" {
		t.Fatal("worker never announced its address")
	}
	return &workerProc{url: url, cmd: cmd}
}

// spawnWorker launches one worker process and returns its base URL.
func spawnWorker(t *testing.T, extraEnv ...string) string {
	t.Helper()
	return spawnWorkerProc(t, extraEnv...).url
}

// spawnWorkers launches n worker processes and returns their base
// URLs.
func spawnWorkers(t *testing.T, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		urls[i] = spawnWorker(t)
	}
	return urls
}

// sweepAxes returns the compact grid the end-to-end tests sweep: two
// L1 configurations by four L2 sizes, enough to exercise multi-shard
// plans on two workers.
func sweepAxes() ([]cache.Config, []int) {
	return harness.GeometryL1Configs()[:2], []int{256 << 10, 512 << 10, 1 << 20, 2 << 20}
}

// TestDistributedSweepMatchesLocalAcrossProcesses is the end-to-end
// acceptance test: a geometry sweep sharded across two real worker
// processes returns results identical — field for field and byte for
// byte — to the local RunGeometrySweep of the same workload and axes.
func TestDistributedSweepMatchesLocalAcrossProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	urls := spawnWorkers(t, 2)
	coord := &Coordinator{Workers: urls}
	wl := harness.Workload{W: 160, H: 128, Frames: 2}
	l1s, l2Sizes := sweepAxes()

	distPoints, stats, err := coord.GeometrySweepWithStats(context.Background(), wl, l1s, l2Sizes)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.L2Shipped || stats.Uploads == 0 || stats.UploadBytes == 0 {
		t.Errorf("expected L2-filtered uploads, got stats %+v", stats)
	}
	if stats.DeadWorkers != 0 || stats.Failovers != 0 {
		t.Errorf("healthy fleet reported failures: %+v", stats)
	}
	localPoints, err := harness.RunGeometrySweep(wl, l1s, l2Sizes)
	if err != nil {
		t.Fatal(err)
	}
	if len(distPoints) != len(localPoints) {
		t.Fatalf("%d distributed points vs %d local", len(distPoints), len(localPoints))
	}
	if !reflect.DeepEqual(distPoints, localPoints) {
		for i := range distPoints {
			if !reflect.DeepEqual(distPoints[i], localPoints[i]) {
				t.Fatalf("point %d differs\ndist  %+v\nlocal %+v", i, distPoints[i], localPoints[i])
			}
		}
		t.Fatal("points differ")
	}
	// Byte-identical rendering.
	distText := harness.FormatGeometrySweep("sweep", distPoints)
	localText := harness.FormatGeometrySweep("sweep", localPoints)
	if distText != localText {
		t.Fatalf("rendered sweeps differ\n--- dist ---\n%s\n--- local ---\n%s", distText, localText)
	}

	// Series path: shard chunks merged via perf.MergeSeries must be
	// byte-identical to the locally derived series.
	distSeries, err := coord.GeometrySweepSeries(context.Background(), wl, l1s, l2Sizes)
	if err != nil {
		t.Fatal(err)
	}
	localSeries := harness.GeometrySweepSeries(localPoints)
	if !reflect.DeepEqual(distSeries, localSeries) {
		t.Fatalf("series differ\ndist  %+v\nlocal %+v", distSeries, localSeries)
	}
}

// TestDistributedPolicySweepMatchesLocal is the policy-axis
// acceptance test: a replacement-policy sweep — the policy riding
// inside each shard's L1 config, no new trace kinds — sharded across
// two real worker processes returns results identical to the local
// sweep, and the policies measurably diverge (one capture, differing
// Stats per policy).
func TestDistributedPolicySweepMatchesLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	urls := spawnWorkers(t, 2)
	coord := &Coordinator{Workers: urls}
	wl := harness.Workload{W: 160, H: 128, Frames: 2}
	l1s := harness.PolicyAxisConfigs([]cache.Policy{cache.PolicyLRU, cache.PolicyFIFO, cache.PolicyRandom})
	l2Sizes := []int{512 << 10, 1 << 20}

	distPoints, stats, err := coord.GeometrySweepWithStats(context.Background(), wl, l1s, l2Sizes)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.L2Shipped || stats.Uploads == 0 {
		t.Errorf("expected per-policy L2-filtered uploads, got stats %+v", stats)
	}
	localPoints, err := harness.RunGeometrySweep(wl, l1s, l2Sizes)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(distPoints, localPoints) {
		t.Fatalf("policy sweep differs from local\ndist  %+v\nlocal %+v", distPoints, localPoints)
	}
	// The axis must measure something: same capture, same geometry,
	// different replacement policy, different counters.
	byPolicy := map[cache.Policy]cache.Stats{}
	for _, pt := range distPoints {
		if pt.L2.SizeBytes == 512<<10 {
			byPolicy[pt.L1.Policy] = pt.Encode.Raw
		}
	}
	if len(byPolicy) != 3 {
		t.Fatalf("expected 3 policy rows at 512KB, got %d", len(byPolicy))
	}
	if byPolicy[cache.PolicyFIFO] == byPolicy[cache.PolicyLRU] {
		t.Error("fifo stats identical to lru — policy did not reach the workers")
	}
	if byPolicy[cache.PolicyRandom] == byPolicy[cache.PolicyLRU] {
		t.Error("random stats identical to lru — policy did not reach the workers")
	}
}

// TestWorkerPolicyIngress: unknown policy names in a shard are a 400,
// and a shard whose L1 policy differs from the one embedded in an
// M4L2 upload is a 400 — the L2-bound stream is a pure function of the
// whole L1 configuration, policy included.
func TestWorkerPolicyIngress(t *testing.T) {
	srv := httptest.NewServer(NewWorker(WorkerConfig{Workers: 1}).Handler())
	defer srv.Close()

	fifoL1 := perf.O2R12K1MB().L1
	fifoL1.Policy = cache.PolicyFIFO
	f := trace.NewL2Filter(fifoL1)
	f.Run(0, 4096, 1, 0)
	var wire bytes.Buffer
	if _, err := f.Trace().WriteTo(&wire); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/traces", ContentTypeL2Trace, bytes.NewReader(wire.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var info TraceInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: HTTP %d", resp.StatusCode)
	}

	post := func(rr ReplayRequest) int {
		body, _ := json.Marshal(rr)
		resp, err := http.Post(srv.URL+"/v1/replay", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	badPolicy := fifoL1
	badPolicy.Policy = "mru"
	if code := post(ReplayRequest{TraceID: info.ID, Shards: []Shard{{L1: badPolicy, L2Sizes: []int{1 << 20}}}}); code != http.StatusBadRequest {
		t.Errorf("unknown policy shard: HTTP %d, want 400", code)
	}
	lruL1 := fifoL1
	lruL1.Policy = cache.PolicyLRU
	if code := post(ReplayRequest{TraceID: info.ID, Shards: []Shard{{L1: lruL1, L2Sizes: []int{1 << 20}}}}); code != http.StatusBadRequest {
		t.Errorf("policy-mismatched shard against fifo-filtered trace: HTTP %d, want 400", code)
	}
	if code := post(ReplayRequest{TraceID: info.ID, Shards: []Shard{{L1: fifoL1, L2Sizes: []int{1 << 20}}}}); code != http.StatusOK {
		t.Errorf("matching policy shard: HTTP %d, want 200", code)
	}

	// "" and "lru" are two spellings of the same cache: a shard naming
	// lru explicitly must match a trace filtered under the default.
	defL1 := perf.O2R12K1MB().L1
	fd := trace.NewL2Filter(defL1)
	fd.Run(0, 4096, 1, 0)
	var defWire bytes.Buffer
	if _, err := fd.Trace().WriteTo(&defWire); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(srv.URL+"/v1/traces", ContentTypeL2Trace, bytes.NewReader(defWire.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var defInfo TraceInfo
	if err := json.NewDecoder(resp.Body).Decode(&defInfo); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	explicitLRU := defL1
	explicitLRU.Policy = cache.PolicyLRU
	if code := post(ReplayRequest{TraceID: defInfo.ID, Shards: []Shard{{L1: explicitLRU, L2Sizes: []int{1 << 20}}}}); code != http.StatusOK {
		t.Errorf("explicit-lru shard against default-policy trace: HTTP %d, want 200", code)
	}
}

// TestDistributedSweepSurvivesKilledWorkerProcess is the failover
// acceptance test at full fidelity: three real worker OS processes,
// one of which kills itself (os.Exit) the moment its first replay
// request arrives — mid-sweep, after accepting its uploads. The
// coordinator must drop the dead worker, re-plan its shards onto the
// two survivors (re-uploading the traces they lack), and still produce
// results identical to the local sweep.
func TestDistributedSweepSurvivesKilledWorkerProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	urls := []string{
		spawnWorker(t, "DIST_TEST_DIE_ON_REPLAY=1"),
		spawnWorker(t),
		spawnWorker(t),
	}
	coord := &Coordinator{Workers: urls}
	wl := harness.Workload{W: 160, H: 128, Frames: 2}
	l1s, l2Sizes := sweepAxes()

	distPoints, stats, err := coord.GeometrySweepWithStats(context.Background(), wl, l1s, l2Sizes)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DeadWorkers != 1 || stats.Failovers == 0 {
		t.Errorf("expected one dead worker and re-planned shards, got stats %+v", stats)
	}
	localPoints, err := harness.RunGeometrySweep(wl, l1s, l2Sizes)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(distPoints, localPoints) {
		t.Fatalf("failover sweep differs from local\ndist  %+v\nlocal %+v", distPoints, localPoints)
	}
}

// TestDistributedSweepReadmitsRestartedWorkerProcess is the
// self-healing acceptance test at full fidelity: three real worker OS
// processes, one of which kills itself on its first replay request.
// The test restarts the dead worker at the SAME address mid-sweep
// (the two survivors are slowed so work remains), and the
// coordinator's health prober must re-admit it: the sweep completes
// byte-identical to the local sweep, SweepStats records the
// re-admission, and the restarted worker serves post-restart shards.
func TestDistributedSweepReadmitsRestartedWorkerProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	victim := spawnWorkerProc(t, "DIST_TEST_DIE_ON_REPLAY=1")
	survivors := []string{
		spawnWorker(t, "DIST_TEST_REPLAY_DELAY_MS=400"),
		spawnWorker(t, "DIST_TEST_REPLAY_DELAY_MS=400"),
	}
	urls := append([]string{victim.url}, survivors...)
	coord := &Coordinator{
		Workers:         urls,
		MaxAttempts:     5,
		RetryBaseDelay:  5 * time.Millisecond,
		RetryMaxDelay:   25 * time.Millisecond,
		BreakerCooldown: 10 * time.Millisecond,
		ProbeInterval:   25 * time.Millisecond,
		ProbeTimeout:    2 * time.Second,
	}
	wl := harness.Workload{W: 160, H: 128, Frames: 2}
	l1s, l2Sizes := sweepAxes()

	type sweepResult struct {
		points []harness.GeometryPoint
		stats  SweepStats
		err    error
	}
	done := make(chan sweepResult, 1)
	go func() {
		points, stats, err := coord.GeometrySweepWithStats(context.Background(), wl, l1s, l2Sizes)
		done <- sweepResult{points, stats, err}
	}()

	// The victim os.Exit(1)s on its first replay; restart it at the
	// same address the moment it dies, while the slowed survivors keep
	// the sweep in flight.
	victim.cmd.Wait()
	addr := strings.TrimPrefix(victim.url, "http://")
	restarted := spawnWorkerProc(t, "DIST_TEST_ADDR="+addr)
	if restarted.url != victim.url {
		t.Fatalf("restarted worker came up at %s, want %s", restarted.url, victim.url)
	}

	res := <-done
	if res.err != nil {
		t.Fatalf("sweep did not survive the kill-and-restart: %v (stats %+v)", res.err, res.stats)
	}
	if res.stats.DeadWorkers < 1 {
		t.Errorf("the killed worker was never detected: %+v", res.stats)
	}
	if res.stats.Readmissions < 1 {
		t.Errorf("the restarted worker was never re-admitted: %+v", res.stats)
	}
	if res.stats.ShardsByWorker[victim.url] == 0 {
		t.Errorf("the re-admitted worker served no post-restart shards: %+v", res.stats.ShardsByWorker)
	}
	localPoints, err := harness.RunGeometrySweep(wl, l1s, l2Sizes)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.points, localPoints) {
		t.Fatalf("re-admission sweep differs from local\ndist  %+v\nlocal %+v", res.points, localPoints)
	}
}

// TestSerializedTraceCounterIdenticalOnPaperMachines is the wire-level
// acceptance test: a capture serialized to the portable format and
// decoded back replays to counter-identical cache.Stats on all three
// paper machines.
func TestSerializedTraceCounterIdenticalOnPaperMachines(t *testing.T) {
	wl := harness.Workload{W: 160, H: 128, Frames: 2}
	capture, err := harness.RecordEncodeIn(simmem.NewSpace(0), wl)
	if err != nil {
		t.Fatal(err)
	}
	var wire bytes.Buffer
	if _, err := capture.Enc.WriteTo(&wire); err != nil {
		t.Fatal(err)
	}
	decoded, err := trace.ReadTrace(bytes.NewReader(wire.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range perf.PaperMachines() {
		want := harness.ReplayOn(m, capture.Enc, capture.SS.TotalBytes())
		got := harness.ReplayOn(m, decoded, capture.SS.TotalBytes())
		if want.Whole.Raw != got.Whole.Raw {
			t.Errorf("%s: decoded replay differs\nwant %+v\ngot  %+v", m.Label(), want.Whole.Raw, got.Whole.Raw)
		}
		for name, wp := range want.Phases {
			if gp := got.Phases[name]; gp.Raw != wp.Raw {
				t.Errorf("%s phase %s: %+v != %+v", m.Label(), name, gp.Raw, wp.Raw)
			}
		}
	}
}

// TestWorkerValidatesIngress: corrupt trace uploads and invalid shard
// geometries are 4xx responses with diagnostics, never worker crashes.
func TestWorkerValidatesIngress(t *testing.T) {
	srv := httptest.NewServer(NewWorker(WorkerConfig{Workers: 1}).Handler())
	defer srv.Close()

	post := func(path, ctype string, body []byte) (int, string) {
		t.Helper()
		resp, err := http.Post(srv.URL+path, ctype, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(raw)
	}

	// Corrupt trace bodies.
	for _, body := range [][]byte{nil, []byte("garbage"), []byte("M4TR\x07")} {
		if code, msg := post("/v1/traces", "application/octet-stream", body); code != http.StatusBadRequest {
			t.Errorf("corrupt upload %q: status %d (%s), want 400", body, code, msg)
		}
	}

	// A valid trace for the shard tests.
	rec := trace.NewRecorder()
	rec.Run(0, 4096, 1, 0)
	var wire bytes.Buffer
	if _, err := rec.Finish().WriteTo(&wire); err != nil {
		t.Fatal(err)
	}
	code, body := post("/v1/traces", "application/octet-stream", wire.Bytes())
	if code != http.StatusCreated {
		t.Fatalf("upload: status %d: %s", code, body)
	}
	var info TraceInfo
	if err := json.Unmarshal([]byte(body), &info); err != nil {
		t.Fatal(err)
	}

	valid := cache.Config{Name: "L1D", SizeBytes: 32 << 10, LineBytes: 32, Ways: 2}
	for name, req := range map[string]ReplayRequest{
		"bad l1":       {TraceID: info.ID, Shards: []Shard{{L1: cache.Config{SizeBytes: 31, LineBytes: 7, Ways: 3}, L2Sizes: []int{1 << 20}}}},
		"bad l2 size":  {TraceID: info.ID, Shards: []Shard{{L1: valid, L2Sizes: []int{12345}}}},
		"no l2 sizes":  {TraceID: info.ID, Shards: []Shard{{L1: valid}}},
		"no shards":    {TraceID: info.ID},
		"zero ways l1": {TraceID: info.ID, Shards: []Shard{{L1: cache.Config{SizeBytes: 32 << 10, LineBytes: 32}, L2Sizes: []int{1 << 20}}}},
	} {
		raw, _ := json.Marshal(req)
		if code, msg := post("/v1/replay", "application/json", raw); code != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", name, code, msg)
		}
	}

	// Unknown trace ID.
	raw, _ := json.Marshal(ReplayRequest{TraceID: "trace-9999", Shards: []Shard{{L1: valid, L2Sizes: []int{1 << 20}}}})
	if code, msg := post("/v1/replay", "application/json", raw); code != http.StatusNotFound {
		t.Errorf("unknown trace: status %d (%s), want 404", code, msg)
	}

	// The valid shard still works after all the rejected ones.
	raw, _ = json.Marshal(ReplayRequest{TraceID: info.ID, Shards: []Shard{{L1: valid, L2Sizes: []int{1 << 20}}}})
	if code, msg := post("/v1/replay", "application/json", raw); code != http.StatusOK {
		t.Errorf("valid replay after rejects: status %d (%s)", code, msg)
	}
}

// TestWorkerTraceStoreBound: the store is content-addressed, so
// re-uploading resident bytes dedupes instead of consuming a slot; a
// genuinely new trace beyond MaxTraces is refused, and DELETE frees
// slots.
func TestWorkerTraceStoreBound(t *testing.T) {
	srv := httptest.NewServer(NewWorker(WorkerConfig{Workers: 1, MaxTraces: 1}).Handler())
	defer srv.Close()

	encode := func(addr uint64) []byte {
		rec := trace.NewRecorder()
		rec.Run(addr, 64, 1, 0)
		var wire bytes.Buffer
		if _, err := rec.Finish().WriteTo(&wire); err != nil {
			t.Fatal(err)
		}
		return wire.Bytes()
	}
	wireA, wireB := encode(0), encode(1)
	upload := func(wire []byte) (int, TraceInfo) {
		resp, err := http.Post(srv.URL+"/v1/traces", "application/octet-stream", bytes.NewReader(wire))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var info TraceInfo
		json.NewDecoder(resp.Body).Decode(&info)
		return resp.StatusCode, info
	}

	code, info := upload(wireA)
	if code != http.StatusCreated {
		t.Fatalf("first upload: %d", code)
	}
	if code, dup := upload(wireA); code != http.StatusCreated || dup.ID != info.ID {
		t.Fatalf("re-upload of resident bytes: %d id=%q, want dedup 201 with id %q", code, dup.ID, info.ID)
	}
	if code, _ := upload(wireB); code != http.StatusInsufficientStorage {
		t.Fatalf("distinct trace beyond MaxTraces: %d, want 507", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/traces/"+info.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %d", resp.StatusCode)
	}
	if code, _ := upload(wireB); code != http.StatusCreated {
		t.Fatalf("upload after delete: %d", code)
	}
}

// TestPlanShardsCoversGridInOrder: the shard plan partitions the grid
// into contiguous chunks whose flattening is the (L1 outer, L2 inner)
// enumeration, for every worker count.
func TestPlanShardsCoversGridInOrder(t *testing.T) {
	l1s := harness.GeometryL1Configs()
	l2s := harness.GeometryL2Sizes()
	for workers := 1; workers <= 8; workers++ {
		shards := planShards(l1s, l2s, workers)
		var gotL1 []cache.Config
		var gotL2 []int
		for i, sh := range shards {
			if sh.Index != i {
				t.Fatalf("workers=%d: shard %d has index %d", workers, i, sh.Index)
			}
			for range sh.L2Sizes {
				gotL1 = append(gotL1, sh.L1)
			}
			gotL2 = append(gotL2, sh.L2Sizes...)
		}
		var wantL1 []cache.Config
		var wantL2 []int
		for _, l1 := range l1s {
			for _, s := range l2s {
				wantL1 = append(wantL1, l1)
				wantL2 = append(wantL2, s)
			}
		}
		if !reflect.DeepEqual(gotL1, wantL1) || !reflect.DeepEqual(gotL2, wantL2) {
			t.Fatalf("workers=%d: shard plan does not flatten to the local enumeration", workers)
		}
	}
}

// TestCoordinatorSurfacesWorkerErrors: a worker returning an error
// fails the sweep with the worker's diagnostic attached.
func TestCoordinatorSurfacesWorkerErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/v1/traces" {
			w.WriteHeader(http.StatusCreated)
			json.NewEncoder(w).Encode(TraceInfo{ID: "trace-0001"})
			return
		}
		w.WriteHeader(http.StatusInternalServerError)
		json.NewEncoder(w).Encode(errorBody{Error: "worker exploded"})
	}))
	defer srv.Close()
	coord := &Coordinator{Workers: []string{srv.URL}}
	_, err := coord.GeometrySweep(context.Background(),
		harness.Workload{W: 96, H: 80, Frames: 2}, nil, []int{1 << 20})
	if err == nil || !strings.Contains(err.Error(), "worker exploded") {
		t.Fatalf("worker error not surfaced: %v", err)
	}
}
