package dist

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/harness"
	"repro/internal/obs"
)

// TestWorkerObservabilityEndpoints checks the worker's introspection
// surface: /v1/metrics (Prometheus text and JSON by negotiation),
// /v1/version, and the build identity riding in the health payload.
func TestWorkerObservabilityEndpoints(t *testing.T) {
	srv := httptest.NewServer(NewWorker(WorkerConfig{Workers: 1}).Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics Content-Type = %q, want text/plain...", ct)
	}
	if !strings.Contains(string(body), "# TYPE") {
		t.Errorf("prometheus scrape has no TYPE lines:\n%.400s", body)
	}

	req, _ := http.NewRequest("GET", srv.URL+"/v1/metrics", nil)
	req.Header.Set("Accept", "application/json")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("JSON metrics invalid: %v", err)
	}
	// The middleware counted the first scrape by its matched route.
	name := obs.Label(obs.Label("worker_http_requests_total", "route", "GET /v1/metrics"), "code", "200")
	if snap.Counters[name] == 0 {
		t.Errorf("first scrape not counted (%s)", name)
	}

	resp, err = http.Get(srv.URL + "/v1/version")
	if err != nil {
		t.Fatal(err)
	}
	var bi obs.BuildInfo
	err = json.NewDecoder(resp.Body).Decode(&bi)
	resp.Body.Close()
	if err != nil || bi.GoVersion == "" {
		t.Errorf("version = %+v, %v", bi, err)
	}

	resp, err = http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		OK      bool           `json:"ok"`
		Version *obs.BuildInfo `json:"version"`
	}
	err = json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if err != nil || !health.OK || health.Version == nil || health.Version.GoVersion == "" {
		t.Errorf("health = %+v, %v; want ok with embedded version", health, err)
	}
}

// TestFleetMetricsAccounting runs one fleet sweep against in-process
// workers (so both coordinator and worker metrics land in this
// process's registry) and checks the accounting: uploads and replays
// counted on both sides, the alive/pending gauges drained back to
// zero, and every uploaded trace still resident afterwards — a
// successful sweep leaves its content-addressed traces in place so
// the next sweep can dedupe against them.
func TestFleetMetricsAccounting(t *testing.T) {
	reg := obs.Default()
	before := reg.Snapshot()

	var urls []string
	for i := 0; i < 2; i++ {
		srv := httptest.NewServer(NewWorker(WorkerConfig{Workers: 1}).Handler())
		defer srv.Close()
		urls = append(urls, srv.URL)
	}
	coord := &Coordinator{Workers: urls}
	wl := harness.Workload{W: 160, H: 128, Frames: 1}
	l1s, l2Sizes := sweepAxes()
	points, stats, err := coord.GeometrySweepWithStats(context.Background(), wl, l1s, l2Sizes)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 {
		t.Fatal("fleet sweep returned no points")
	}

	after := reg.Snapshot()
	delta := func(name string) uint64 { return after.Counters[name] - before.Counters[name] }
	if got := delta("dist_uploads_total"); got != uint64(stats.Uploads) {
		t.Errorf("uploads counter delta = %d, want %d (SweepStats)", got, stats.Uploads)
	}
	if got := delta("dist_upload_bytes_total"); got != uint64(stats.UploadBytes) {
		t.Errorf("upload bytes delta = %d, want %d (SweepStats)", got, stats.UploadBytes)
	}
	if got := delta("dist_replays_total"); got != uint64(stats.Replays) {
		t.Errorf("replay batches delta = %d, want %d (SweepStats)", got, stats.Replays)
	}
	if delta("dist_sweeps_total") != 1 {
		t.Errorf("sweeps delta = %d, want 1", delta("dist_sweeps_total"))
	}
	if delta("worker_replay_calls_total") == 0 {
		t.Error("workers served no replay calls")
	}
	if delta("worker_shards_replayed_total") == 0 {
		t.Error("workers served no shards")
	}
	// Deltas, not absolutes: the gauges are process-wide, and earlier
	// tests' workers may legitimately still hold traces.
	for _, gauge := range []string{"dist_workers_alive", "dist_batches_pending"} {
		if got := after.Gauges[gauge] - before.Gauges[gauge]; got != 0 {
			t.Errorf("%s delta across sweep = %+d, want 0", gauge, got)
		}
	}
	// Traces survive a successful sweep (content-addressed dedup feeds
	// on them), so the resident gauge grows by exactly the uploads.
	if got := after.Gauges["worker_traces_resident"] - before.Gauges["worker_traces_resident"]; got != int64(stats.Uploads) {
		t.Errorf("worker_traces_resident delta = %+d, want %d (uploads)", got, stats.Uploads)
	}
}
