package dist

import (
	"context"
	"net/http/httptest"
	"reflect"
	"testing"

	"repro/internal/harness"
	"repro/internal/trace"
)

// TestDistributedSweepParallelReplayIdentical: a two-worker sweep with
// chunk-speculative parallel replay enabled on the workers returns
// points byte-identical to the serial local sweep — the distributed
// acceptance criterion for the parallel replay engine.
func TestDistributedSweepParallelReplayIdentical(t *testing.T) {
	defer trace.SetReplayWorkers(0)
	wl := harness.Workload{W: 160, H: 128, Frames: 3}
	l1s, l2Sizes := sweepAxes()

	trace.SetReplayWorkers(1)
	localPoints, err := harness.RunGeometrySweep(wl, l1s, l2Sizes)
	if err != nil {
		t.Fatal(err)
	}

	trace.SetReplayWorkers(4)
	srv1 := httptest.NewServer(NewWorker(WorkerConfig{Workers: 2}).Handler())
	defer srv1.Close()
	srv2 := httptest.NewServer(NewWorker(WorkerConfig{Workers: 2}).Handler())
	defer srv2.Close()
	coord := &Coordinator{Workers: []string{srv1.URL, srv2.URL}}
	distPoints, err := coord.GeometrySweep(context.Background(), wl, l1s, l2Sizes)
	if err != nil {
		t.Fatal(err)
	}
	if len(distPoints) != len(localPoints) {
		t.Fatalf("%d distributed points vs %d local", len(distPoints), len(localPoints))
	}
	if !reflect.DeepEqual(distPoints, localPoints) {
		for i := range distPoints {
			if !reflect.DeepEqual(distPoints[i], localPoints[i]) {
				t.Fatalf("point %d differs\ndist(parallel) %+v\nlocal(serial)  %+v",
					i, distPoints[i], localPoints[i])
			}
		}
		t.Fatal("points differ")
	}
}
