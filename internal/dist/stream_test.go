package dist

// Tests of the coordinator's ordered shard event stream (OnShard):
// strict index order regardless of which worker finishes first, exact
// agreement with the merged sweep result, and attribution through the
// local fallback.

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/harness"
)

// collectShardEvents runs a two-worker sweep with an OnShard hook and
// returns (events, merged points).
func collectShardEvents(t *testing.T, coord *Coordinator) ([]ShardEvent, []harness.GeometryPoint) {
	t.Helper()
	var mu sync.Mutex
	var events []ShardEvent
	coord.OnShard = func(ev ShardEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}
	wl := harness.Workload{W: 176, H: 144, Frames: 2}
	l1s, l2Sizes := sweepAxes()
	points, err := coord.GeometrySweep(context.Background(), wl, l1s, l2Sizes)
	if err != nil {
		t.Fatalf("GeometrySweep: %v", err)
	}
	return events, points
}

// verifyShardStream asserts the ordering contract: events arrive in
// strict shard-index order with dense Done counters, and concatenating
// their point slices reproduces the merged sweep exactly.
func verifyShardStream(t *testing.T, events []ShardEvent, points []harness.GeometryPoint) {
	t.Helper()
	if len(events) == 0 {
		t.Fatal("no shard events emitted")
	}
	total := events[0].Total
	if len(events) != total {
		t.Fatalf("got %d events, Total says %d", len(events), total)
	}
	var streamed []harness.GeometryPoint
	for i, ev := range events {
		if ev.Shard.Index != i {
			t.Fatalf("event %d carries shard index %d — stream is out of order", i, ev.Shard.Index)
		}
		if ev.Done != i+1 {
			t.Fatalf("event %d: Done = %d, want %d", i, ev.Done, i+1)
		}
		if ev.Total != total {
			t.Fatalf("event %d: Total = %d, want %d", i, ev.Total, total)
		}
		if ev.Worker == "" {
			t.Fatalf("event %d has no worker attribution", i)
		}
		if len(ev.Points) == 0 {
			t.Fatalf("event %d carries no points", i)
		}
		streamed = append(streamed, ev.Points...)
	}
	if len(streamed) != len(points) {
		t.Fatalf("streamed %d points, merged sweep has %d", len(streamed), len(points))
	}
	for i := range streamed {
		if streamed[i] != points[i] {
			t.Fatalf("streamed point %d = %+v, merged = %+v", i, streamed[i], points[i])
		}
	}
}

func TestCoordinatorStreamsShardsInOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("encodes a workload")
	}
	coord := &Coordinator{
		Workers: []string{goodWorker(t).URL, goodWorker(t).URL},
	}
	events, points := collectShardEvents(t, coord)
	verifyShardStream(t, events, points)
	for _, ev := range events {
		if ev.Worker == FallbackWorker {
			t.Fatalf("healthy fleet attributed shard %d to the local fallback", ev.Shard.Index)
		}
	}
}

// TestCoordinatorStreamsFallbackShards: when the whole fleet is down
// and FallbackLocal rescues the sweep, the stream still emits every
// shard in order, attributed to the fallback pseudo-worker.
func TestCoordinatorStreamsFallbackShards(t *testing.T) {
	if testing.Short() {
		t.Skip("encodes a workload")
	}
	dead := goodWorker(t)
	dead.Close() // refused connections from the first byte
	coord := &Coordinator{
		Workers:        []string{dead.URL},
		MaxAttempts:    2,
		RetryBaseDelay: 5 * time.Millisecond,
		FallbackLocal:  true,
	}
	events, points := collectShardEvents(t, coord)
	verifyShardStream(t, events, points)
	for _, ev := range events {
		if ev.Worker != FallbackWorker {
			t.Fatalf("shard %d attributed to %q, want the local fallback", ev.Shard.Index, ev.Worker)
		}
	}
}
