package dist

// The self-healing layer of the failover scheduler: failure
// classification, per-worker circuit breakers, exponential backoff
// with seeded jitter, the health prober that re-admits recovered
// workers mid-sweep, and the opt-in local fallback that replays
// whatever the fleet could not. coordinator.go owns dispatch and
// re-planning; this file owns everything about deciding whether and
// when to try again.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/cache"
	"repro/internal/farm"
	"repro/internal/harness"
	"repro/internal/obs"
)

// Self-healing metrics, live counterparts of the new SweepStats
// fields. dist_breakers_open is delta-maintained like the other dist
// gauges so concurrent sweeps compose and it reads zero when no sweep
// runs.
var (
	mRetries      = obs.Default().Counter("dist_retries_total")
	mBreakerTrips = obs.Default().Counter("dist_breaker_trips_total")
	mBreakersOpen = obs.Default().Gauge("dist_breakers_open")
	mProbes       = obs.Default().Counter("dist_health_probes_total")
	mReadmissions = obs.Default().Counter("dist_readmissions_total")
	mFallbackSh   = obs.Default().Counter("dist_fallback_shards_total")
)

// errClass sorts a batch failure into what the scheduler should do
// about it.
type errClass int

const (
	// classTransient: timeouts, connection refused/reset, 5xx —
	// retrying the same worker may well succeed. Retried under backoff
	// until the batch budget or the worker's breaker gives out.
	classTransient errClass = iota
	// classPermanent: 4xx validation responses. The request itself is
	// wrong (axes are validated at ingress, so in practice a
	// version-skewed or misconfigured worker); retrying anywhere would
	// return the same answer, so the sweep fails fast with the
	// diagnostic.
	classPermanent
	// classViolation: the worker answered 200 with a protocol-breaking
	// body (foreign shard indices, missing shards, empty trace IDs).
	// The worker cannot be trusted; it is dropped immediately and never
	// re-admitted this sweep.
	classViolation
)

func (c errClass) String() string {
	switch c {
	case classPermanent:
		return "permanent"
	case classViolation:
		return "protocol-violation"
	}
	return "transient"
}

// protocolViolation marks a well-formed HTTP exchange whose content
// broke the worker protocol — the one failure shape where the worker
// is up but wrong.
type protocolViolation struct{ msg string }

func (e *protocolViolation) Error() string { return e.msg }

func violationf(format string, args ...any) error {
	return &protocolViolation{msg: fmt.Sprintf(format, args...)}
}

// classify maps a batch error to its class. Anything that is not a
// recognizable 4xx or a protocol violation — transport errors,
// timeouts, severed connections, 5xx, garbage bodies — is transient:
// when in doubt, retry under the budget rather than kill the sweep.
func classify(err error) errClass {
	var pv *protocolViolation
	if errors.As(err, &pv) {
		return classViolation
	}
	var he *httpError
	if errors.As(err, &he) && he.status >= 400 && he.status < 500 {
		switch he.status {
		case http.StatusNotFound:
			// A replay 404 means the worker lost the trace (restarted
			// store) — re-uploading fixes it, so it retries as transient;
			// see the uploaded-map invalidation in runWorker.
			return classTransient
		case http.StatusTooManyRequests, http.StatusRequestTimeout:
			return classTransient
		}
		return classPermanent
	}
	return classTransient
}

// isStatus reports whether err carries the given HTTP status.
func isStatus(err error, code int) bool {
	var he *httpError
	return errors.As(err, &he) && he.status == code
}

// breaker is one worker's consecutive-failure circuit breaker.
// Closed = fails below threshold; open = the worker was dropped (its
// runWorker goroutine exited) and the prober owns it; half-open = just
// re-admitted, where a single further transient failure re-opens it
// instead of burning threshold-many retries on a still-flaky worker.
type breaker struct {
	fails    int  // consecutive transient failures while closed
	opens    int  // times tripped — escalates the re-probe cooldown
	halfOpen bool // re-admitted but not yet proven by a success
}

// Self-healing defaults. Like the deadline accessors, zero values on
// Coordinator mean these.
func (c *Coordinator) retryBaseDelay() time.Duration {
	if c.RetryBaseDelay > 0 {
		return c.RetryBaseDelay
	}
	return 100 * time.Millisecond
}

func (c *Coordinator) retryMaxDelay() time.Duration {
	if c.RetryMaxDelay > 0 {
		return c.RetryMaxDelay
	}
	return 2 * time.Second
}

func (c *Coordinator) breakerThreshold() int {
	if c.BreakerThreshold > 0 {
		return c.BreakerThreshold
	}
	return 2
}

func (c *Coordinator) breakerCooldown() time.Duration {
	if c.BreakerCooldown > 0 {
		return c.BreakerCooldown
	}
	return 500 * time.Millisecond
}

func (c *Coordinator) probeInterval() time.Duration {
	if c.ProbeInterval > 0 {
		return c.ProbeInterval
	}
	return 250 * time.Millisecond
}

func (c *Coordinator) probeTimeout() time.Duration {
	if c.ProbeTimeout > 0 {
		return c.ProbeTimeout
	}
	return 2 * time.Second
}

// backoffLocked (mu held, for the rng) returns the delay before retry
// number `attempt` (1-based: the delay after the attempt'th failure):
// exponential from RetryBaseDelay, capped at RetryMaxDelay, with
// seeded jitter in [0.5, 1)× so identically-configured sweeps are
// reproducible while concurrently-failing batches still decorrelate.
func (s *sweepState) backoffLocked(attempt int) time.Duration {
	d := s.c.retryBaseDelay()
	max := s.c.retryMaxDelay()
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	// xorshift64, same generator faultnet uses: cheap, seedable, and
	// plenty for jitter.
	s.rng ^= s.rng << 13
	s.rng ^= s.rng >> 7
	s.rng ^= s.rng << 17
	frac := float64(s.rng>>11) / (1 << 53)
	return time.Duration(float64(d) * (0.5 + 0.5*frac))
}

// sleepCtx sleeps for d, aborting early if ctx dies. Reports whether
// the full sleep completed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// cooldownLocked returns how long worker wi must stay down before the
// prober tries it: the breaker cooldown, doubling with every re-open
// (capped at 30s) so a flapping worker is probed ever less eagerly.
func (s *sweepState) cooldownLocked(wi int) time.Duration {
	d := s.c.breakerCooldown()
	const cap = 30 * time.Second
	for i := 1; i < s.breakers[wi].opens && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	return d
}

// tripBreakerLocked (mu held) opens worker wi's breaker: the caller
// drops the worker right after, and the prober takes over from there.
func (s *sweepState) tripBreakerLocked(wi int) {
	s.breakers[wi].opens++
	s.openN++
	s.stats.BreakerTrips++
	mBreakerTrips.Inc()
	mBreakersOpen.Inc()
	distLog.Warn("circuit breaker opened",
		"worker", s.c.Workers[wi],
		"consecutive_failures", s.breakers[wi].fails,
		"opens", s.breakers[wi].opens)
}

// runProber is the sweep's re-admission loop: while work remains, it
// periodically health-probes dropped workers (past their escalating
// cooldown) and re-admits the ones that answer. Violation-dropped
// workers are never probed — a worker that lied about shard indices
// does not get a second chance inside the same sweep.
func (s *sweepState) runProber(ctx context.Context) {
	defer close(s.proberDone)
	ticker := time.NewTicker(s.c.probeInterval())
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		s.mu.Lock()
		if s.fatal != nil || s.pendingN == 0 {
			s.mu.Unlock()
			return
		}
		now := time.Now()
		var todo []int
		for wi := range s.alive {
			if s.alive[wi] || s.noReadmit[wi] {
				continue
			}
			if now.Sub(s.downSince[wi]) < s.cooldownLocked(wi) {
				continue
			}
			todo = append(todo, wi)
		}
		s.mu.Unlock()
		for _, wi := range todo {
			s.mu.Lock()
			s.stats.Probes++
			s.mu.Unlock()
			mProbes.Inc()
			hs, err := s.probeWorker(ctx, wi)
			if err != nil {
				s.mu.Lock()
				s.downSince[wi] = time.Now() // re-arm the cooldown
				s.mu.Unlock()
				distLog.Debug("health probe failed",
					"worker", s.c.Workers[wi], "err", err)
				continue
			}
			s.readmit(wi, hs)
		}
	}
}

// probeWorker is the half-open probe: one GET /v1/healthz under its
// own timeout (cancelled with the sweep context, like every other
// in-flight request).
func (s *sweepState) probeWorker(ctx context.Context, wi int) (*HealthStatus, error) {
	pctx, cancel := context.WithTimeout(ctx, s.c.probeTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, s.c.Workers[wi]+"/v1/healthz", nil)
	if err != nil {
		return nil, err
	}
	var hs HealthStatus
	if err := s.c.do(req, http.StatusOK, &hs); err != nil {
		return nil, err
	}
	if !hs.OK {
		return nil, fmt.Errorf("worker reports not ok")
	}
	return &hs, nil
}

// readmit brings a probed-healthy worker back into the sweep:
// reconcile the upload cache against what the worker actually still
// holds (a restarted process lost its store; stale IDs would 404 and
// burn retries), move it to half-open, steal it a fair share of queued
// work, and restart its goroutine. No-ops if the sweep meanwhile
// finished, failed, or the worker is somehow alive.
func (s *sweepState) readmit(wi int, hs *HealthStatus) {
	s.mu.Lock()
	if s.fatal != nil || s.pendingN == 0 || s.alive[wi] {
		s.mu.Unlock()
		return
	}
	resident := make(map[string]bool, len(hs.TraceIDs))
	for _, id := range hs.TraceIDs {
		resident[id] = true
	}
	kept := 0
	for key, id := range s.uploaded[wi] {
		if resident[id] {
			kept++
			continue
		}
		delete(s.uploaded[wi], key) // lost in the restart — re-upload lazily
	}
	s.alive[wi] = true
	s.aliveN++
	s.breakers[wi].fails = 0
	s.breakers[wi].halfOpen = true
	s.openN--
	mBreakersOpen.Dec()
	s.stats.Readmissions++
	mReadmissions.Inc()
	mWorkersAlive.Inc()
	s.stealWorkLocked(wi)
	stolen := len(s.queues[wi])
	s.running++
	ctx := s.ctx
	s.mu.Unlock()
	distLog.Info("worker re-admitted",
		"worker", s.c.Workers[wi], "traces_kept", kept,
		"batches_stolen", stolen, "in_flight_shards", hs.InFlightShards)
	go s.runWorker(ctx, wi)
	s.cond.Broadcast()
}

// stealWorkLocked (mu held) rebalances queued batches onto the
// re-admitted worker wi: repeatedly take the tail batch of the most
// loaded surviving queue while that queue is more than one batch
// ahead. Tail, not head — a batch parked at the head of a queue may be
// a backoff retry its own worker is about to resume.
func (s *sweepState) stealWorkLocked(wi int) {
	for {
		src, srcLoad := -1, 0
		for w := range s.queues {
			if w == wi || !s.alive[w] || len(s.queues[w]) == 0 {
				continue
			}
			load := len(s.queues[w])
			if s.busy[w] {
				load++
			}
			if load > srcLoad {
				src, srcLoad = w, load
			}
		}
		if src == -1 || srcLoad <= len(s.queues[wi])+1 {
			return
		}
		q := s.queues[src]
		b := q[len(q)-1]
		s.queues[src] = q[:len(q)-1]
		s.queues[wi] = append(s.queues[wi], b)
		s.stats.Failovers++
		mFailovers.Inc()
		distLog.Debug("batch stolen for re-admitted worker",
			"batch", b.label(), "from", s.c.Workers[src], "to", s.c.Workers[wi])
	}
}

// fallbackLocal replays every shard the fleet never delivered through
// the local harness path — the same RunGeometrySweepFromTrace seam the
// workers execute, against the same capture, so the output is
// byte-identical to a local sweep. Called after the fleet goroutines
// have joined on a fatal sweep (never on caller cancellation). Returns
// the number of shards recovered, or the replay error.
func (s *sweepState) fallbackLocal(ctx context.Context, capture *harness.Capture, shards []Shard) (int, error) {
	done := 0
	for _, sh := range shards {
		if len(s.results[sh.Index]) > 0 {
			continue
		}
		points, err := harness.RunGeometrySweepFromTrace(ctx, farm.Serial(), capture.Enc,
			[]cache.Config{sh.L1}, sh.L2Sizes)
		if err != nil {
			return done, fmt.Errorf("shard %d: %w", sh.Index, err)
		}
		// The fleet goroutines have joined, but emission keeps the
		// same lock-held discipline so the OnShard ordering invariant
		// has a single owner.
		s.mu.Lock()
		s.results[sh.Index] = points
		s.servedBy[sh.Index] = FallbackWorker
		s.emitReadyLocked()
		s.mu.Unlock()
		done++
		mFallbackSh.Inc()
	}
	s.stats.FallbackShards = done
	return done, nil
}
