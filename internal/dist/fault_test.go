package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/harness"
	"repro/internal/simmem"
)

// The fault-injection suite drives the coordinator against misbehaving
// in-process workers: ones that hang, reject uploads, echo shard
// indices they were never assigned, or die mid-replay. In every case
// the sweep must either complete through the surviving workers with
// results identical to the local sweep, or fail cleanly inside the
// retry budget with the uploaded traces released.

// faultAxes is the compact grid the fault tests sweep: two L1s by two
// L2 sizes so multi-payload failover paths are exercised while the
// simulations stay small.
func faultAxes() ([]cache.Config, []int) {
	return harness.GeometryL1Configs()[:2], []int{512 << 10, 1 << 20}
}

var faultWorkload = harness.Workload{W: 96, H: 80, Frames: 2}

// faultCoordinator returns a coordinator with deadlines tight enough
// that a hung worker costs the test milliseconds, not minutes.
func faultCoordinator(urls ...string) *Coordinator {
	return &Coordinator{
		Workers:       urls,
		UploadTimeout: 500 * time.Millisecond,
		ReplayTimeout: 30 * time.Second,
	}
}

// goodWorker boots a real in-process worker server.
func goodWorker(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(NewWorker(WorkerConfig{Workers: 1}).Handler())
	t.Cleanup(srv.Close)
	return srv
}

// assertSweepMatchesLocal runs the distributed sweep on coord and
// requires results identical to the local sweep of the same axes.
func assertSweepMatchesLocal(t *testing.T, coord *Coordinator) SweepStats {
	t.Helper()
	l1s, l2Sizes := faultAxes()
	distPoints, stats, err := coord.GeometrySweepWithStats(context.Background(), faultWorkload, l1s, l2Sizes)
	if err != nil {
		t.Fatalf("sweep did not survive the fault: %v", err)
	}
	localPoints, err := harness.RunGeometrySweep(faultWorkload, l1s, l2Sizes)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(distPoints, localPoints) {
		t.Fatalf("failover sweep differs from local\ndist  %+v\nlocal %+v", distPoints, localPoints)
	}
	return stats
}

// TestFailoverHangingWorker: a worker that accepts the TCP connection
// and then never answers must be timed out by the per-attempt deadline
// and its shards re-planned, not stall the sweep forever.
func TestFailoverHangingWorker(t *testing.T) {
	unblock := make(chan struct{})
	hung := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Hold the request until the client gives up. The test-owned
		// channel (not just the request context) guarantees the handler
		// returns before Server.Close waits on active connections.
		select {
		case <-r.Context().Done():
		case <-unblock:
		}
	}))
	defer hung.Close()
	defer close(unblock)
	good := goodWorker(t)

	stats := assertSweepMatchesLocal(t, faultCoordinator(hung.URL, good.URL))
	if stats.DeadWorkers != 1 || stats.Failovers == 0 {
		t.Errorf("expected the hung worker dropped and its batches re-planned, got %+v", stats)
	}
}

// TestFailoverUploadRejected: a worker refusing every upload (full
// store, disk pressure, ...) is dropped; the sweep completes on the
// rest.
func TestFailoverUploadRejected(t *testing.T) {
	rejecting := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInsufficientStorage)
		json.NewEncoder(w).Encode(errorBody{Error: "store full"})
	}))
	defer rejecting.Close()
	good := goodWorker(t)

	stats := assertSweepMatchesLocal(t, faultCoordinator(rejecting.URL, good.URL))
	if stats.DeadWorkers != 1 {
		t.Errorf("expected the rejecting worker dropped, got %+v", stats)
	}
}

// TestFailoverWrongShardIndex: a worker echoing back a shard index it
// was never assigned (buggy or stale) must be treated as failed — its
// fabricated points must never reach the merged results.
func TestFailoverWrongShardIndex(t *testing.T) {
	buggy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		switch {
		case r.Method == http.MethodPost && r.URL.Path == "/v1/traces":
			w.WriteHeader(http.StatusCreated)
			json.NewEncoder(w).Encode(TraceInfo{ID: "trace-0001", Kind: KindL2Trace})
		case r.Method == http.MethodPost && r.URL.Path == "/v1/replay":
			json.NewEncoder(w).Encode(ReplayResponse{Results: []ShardResult{{
				Index:  9999,
				Points: []harness.GeometryPoint{{Label: "fabricated"}},
			}}})
		default:
			w.WriteHeader(http.StatusNoContent)
		}
	}))
	defer buggy.Close()
	good := goodWorker(t)

	stats := assertSweepMatchesLocal(t, faultCoordinator(buggy.URL, good.URL))
	if stats.DeadWorkers != 1 {
		t.Errorf("expected the index-scrambling worker dropped, got %+v", stats)
	}
}

// TestFailoverWorkerDiesMidReplay: a worker whose connection drops
// mid-replay (process crash) fails over; the sweep completes on the
// survivor.
func TestFailoverWorkerDiesMidReplay(t *testing.T) {
	dying := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/v1/traces" {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusCreated)
			json.NewEncoder(w).Encode(TraceInfo{ID: "trace-0001", Kind: KindL2Trace})
			return
		}
		// Crash: sever the TCP connection without an HTTP response.
		hj, ok := w.(http.Hijacker)
		if !ok {
			t.Error("test server does not support hijacking")
			return
		}
		conn, _, err := hj.Hijack()
		if err != nil {
			t.Errorf("hijack: %v", err)
			return
		}
		conn.Close()
	}))
	defer dying.Close()
	good := goodWorker(t)

	stats := assertSweepMatchesLocal(t, faultCoordinator(dying.URL, good.URL))
	if stats.DeadWorkers != 1 || stats.Failovers == 0 {
		t.Errorf("expected the crashed worker dropped and its batches re-planned, got %+v", stats)
	}
}

// TestSweepFailsWithinBudgetAndReleasesTraces: when every worker
// rejects every replay, the sweep must fail (bounded, with the retry
// budget in the diagnostic) — and cleanup must release the traces that
// DID land, so repeated failing sweeps cannot fill the stores.
func TestSweepFailsWithinBudgetAndReleasesTraces(t *testing.T) {
	// Both workers are real (uploads land in a real bounded store)
	// wrapped so that every replay fails.
	var workers []*Worker
	var urls []string
	for i := 0; i < 2; i++ {
		w := NewWorker(WorkerConfig{Workers: 1})
		inner := w.Handler()
		srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost && r.URL.Path == "/v1/replay" {
				rw.Header().Set("Content-Type", "application/json")
				rw.WriteHeader(http.StatusInternalServerError)
				json.NewEncoder(rw).Encode(errorBody{Error: "replay refused"})
				return
			}
			inner.ServeHTTP(rw, r)
		}))
		defer srv.Close()
		workers = append(workers, w)
		urls = append(urls, srv.URL)
	}

	coord := faultCoordinator(urls...)
	l1s, l2Sizes := faultAxes()
	_, _, err := coord.GeometrySweepWithStats(context.Background(), faultWorkload, l1s, l2Sizes)
	if err == nil {
		t.Fatal("sweep succeeded against workers that refuse every replay")
	}
	if !strings.Contains(err.Error(), "replay refused") {
		t.Errorf("worker diagnostic lost: %v", err)
	}
	for i, w := range workers {
		w.mu.Lock()
		n := len(w.traces)
		w.mu.Unlock()
		if n != 0 {
			t.Errorf("worker %d still holds %d traces after the failed sweep's cleanup", i, n)
		}
	}
}

// TestRetryBudgetBoundsAttempts: with many identical failing workers
// and MaxAttempts below the worker count, the sweep gives up after
// MaxAttempts tries of one batch instead of burning the whole fleet.
func TestRetryBudgetBoundsAttempts(t *testing.T) {
	var replays atomic.Int32
	fail := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if r.Method == http.MethodPost && r.URL.Path == "/v1/traces" {
			w.WriteHeader(http.StatusCreated)
			json.NewEncoder(w).Encode(TraceInfo{ID: "trace-0001"})
			return
		}
		if r.Method == http.MethodPost && r.URL.Path == "/v1/replay" {
			replays.Add(1)
		}
		w.WriteHeader(http.StatusInternalServerError)
		json.NewEncoder(w).Encode(errorBody{Error: "always failing"})
	})
	var urls []string
	for i := 0; i < 4; i++ {
		srv := httptest.NewServer(fail)
		defer srv.Close()
		urls = append(urls, srv.URL)
	}
	coord := faultCoordinator(urls...)
	coord.MaxAttempts = 2
	_, _, err := coord.GeometrySweepWithStats(context.Background(), faultWorkload, harness.GeometryL1Configs()[:1], []int{1 << 20})
	if err == nil {
		t.Fatal("sweep succeeded against always-failing workers")
	}
	if !strings.Contains(err.Error(), "attempt budget 2") {
		t.Errorf("error does not carry the retry budget: %v", err)
	}
	if n := replays.Load(); n > 2 {
		t.Errorf("batch was attempted %d times, budget is 2", n)
	}
}

// TestBadAxesRejectedBeforeCapture: invalid sweep axes fail at
// ingress — no encode, no uploads, no workers blamed.
func TestBadAxesRejectedBeforeCapture(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer srv.Close()
	coord := faultCoordinator(srv.URL)
	for name, run := range map[string]func() error{
		"bad l1": func() error {
			_, _, err := coord.GeometrySweepWithStats(context.Background(), faultWorkload,
				[]cache.Config{{SizeBytes: 31, LineBytes: 7, Ways: 3}}, []int{1 << 20})
			return err
		},
		"bad l2 size": func() error {
			_, _, err := coord.GeometrySweepWithStats(context.Background(), faultWorkload,
				harness.GeometryL1Configs()[:1], []int{12345})
			return err
		},
	} {
		if err := run(); err == nil || !strings.Contains(err.Error(), "axis") {
			t.Errorf("%s: want an axis ingress error, got %v", name, err)
		}
	}
	if n := hits.Load(); n != 0 {
		t.Errorf("invalid axes reached the worker %d times", n)
	}
}

// TestSweepSurvivesSmallTraceStore: a sweep whose per-L1 payload count
// exceeds a worker's MaxTraces bound must evict the payloads it no
// longer needs and complete — a full store is the sweep's own
// footprint, not a worker fault.
func TestSweepSurvivesSmallTraceStore(t *testing.T) {
	srv := httptest.NewServer(NewWorker(WorkerConfig{Workers: 1, MaxTraces: 1}).Handler())
	defer srv.Close()
	coord := faultCoordinator(srv.URL)
	l1s := harness.GeometryL1Configs() // 3 L1 rows → 3 payloads, store holds 1
	l2Sizes := []int{512 << 10, 1 << 20}

	distPoints, stats, err := coord.GeometrySweepWithStats(context.Background(), faultWorkload, l1s, l2Sizes)
	if err != nil {
		t.Fatalf("sweep did not survive the bounded store: %v", err)
	}
	if stats.DeadWorkers != 0 {
		t.Errorf("full store blamed on the worker: %+v", stats)
	}
	localPoints, err := harness.RunGeometrySweep(faultWorkload, l1s, l2Sizes)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(distPoints, localPoints) {
		t.Fatal("bounded-store sweep differs from local")
	}
}

// TestCancellationIsNotWorkerFailure: cancelling the sweep's context
// must surface as a cancellation error, not as phantom worker deaths
// burning the retry budget.
func TestCancellationIsNotWorkerFailure(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	unblock := make(chan struct{})
	inner := NewWorker(WorkerConfig{Workers: 1}).Handler()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/v1/replay" {
			cancel() // the caller gives up exactly when work starts
			select { // hold until the client aborts (test-owned channel, see TestFailoverHangingWorker)
			case <-r.Context().Done():
			case <-unblock:
			}
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()
	defer close(unblock)

	coord := faultCoordinator(srv.URL, srv.URL)
	l1s, l2Sizes := faultAxes()
	_, stats, err := coord.GeometrySweepWithStats(ctx, faultWorkload, l1s, l2Sizes)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want a context.Canceled error, got %v", err)
	}
	if stats.DeadWorkers != 0 || len(stats.WorkerFailures) != 0 {
		t.Errorf("cancellation reported as worker failure: %+v", stats)
	}
}

// TestL2ShippingMatchesFullTraceShipping: the default per-L1 filtered
// uploads and the ShipFullTrace baseline produce identical points, and
// the filtered wire traffic is an order of magnitude smaller — the
// algorithmic point of shipping M4L2.
func TestL2ShippingMatchesFullTraceShipping(t *testing.T) {
	good1, good2 := goodWorker(t), goodWorker(t)
	urls := []string{good1.URL, good2.URL}
	l1s, l2Sizes := faultAxes()

	l2Coord := &Coordinator{Workers: urls}
	l2Points, l2Stats, err := l2Coord.GeometrySweepWithStats(context.Background(), faultWorkload, l1s, l2Sizes)
	if err != nil {
		t.Fatal(err)
	}
	fullCoord := &Coordinator{Workers: urls, ShipFullTrace: true}
	fullPoints, fullStats, err := fullCoord.GeometrySweepWithStats(context.Background(), faultWorkload, l1s, l2Sizes)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(l2Points, fullPoints) {
		t.Fatal("L2-filtered shipping and full-trace shipping disagree")
	}
	localPoints, err := harness.RunGeometrySweep(faultWorkload, l1s, l2Sizes)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(l2Points, localPoints) {
		t.Fatal("distributed points differ from local sweep")
	}
	if !l2Stats.L2Shipped || fullStats.L2Shipped {
		t.Fatalf("shipping modes mislabeled: l2=%+v full=%+v", l2Stats, fullStats)
	}
	if l2Stats.UploadBytes*5 >= fullStats.UploadBytes {
		t.Errorf("L2 shipping saved too little: %d bytes vs %d full",
			l2Stats.UploadBytes, fullStats.UploadBytes)
	}
	t.Logf("upload bytes: full=%d l2=%d (%.1fx smaller)",
		fullStats.UploadBytes, l2Stats.UploadBytes,
		float64(fullStats.UploadBytes)/float64(l2Stats.UploadBytes))
}

// TestWorkerL2TraceProtocol covers the worker side of the M4L2 path:
// upload by content type, replay against the embedded L1, the
// L1-mismatch rejection, and the unsupported-content-type rejection.
func TestWorkerL2TraceProtocol(t *testing.T) {
	srv := goodWorker(t)

	capture, err := harness.RecordEncodeIn(simmem.NewSpace(0), faultWorkload)
	if err != nil {
		t.Fatal(err)
	}
	l1 := harness.GeometryL1Configs()[0]
	lt := harness.FilterGeometryL1(context.Background(), capture.Enc, l1)
	var wire bytes.Buffer
	if _, err := lt.WriteTo(&wire); err != nil {
		t.Fatal(err)
	}

	// Any non-M4L2 content type (including what a plain curl sends)
	// selects the full-trace decoder for compatibility — so M4L2 bytes
	// under such a type must be a 400 (wrong magic), never a misfiled
	// trace.
	resp, err := http.Post(srv.URL+"/v1/traces", ContentTypeTrace, bytes.NewReader(wire.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("m4tr-typed M4L2 upload: status %d, want 400", resp.StatusCode)
	}

	// Back-compat: a full trace under the content type a plain curl
	// sends is accepted as KindTrace.
	var fullWire bytes.Buffer
	if _, err := capture.Enc.WriteTo(&fullWire); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(srv.URL+"/v1/traces", "application/x-www-form-urlencoded", bytes.NewReader(fullWire.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var fullInfo TraceInfo
	if err := json.NewDecoder(resp.Body).Decode(&fullInfo); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || fullInfo.Kind != KindTrace {
		t.Fatalf("curl-style full upload: status %d info %+v, want 201 %s", resp.StatusCode, fullInfo, KindTrace)
	}

	// Proper M4L2 upload.
	resp, err = http.Post(srv.URL+"/v1/traces", ContentTypeL2Trace, bytes.NewReader(wire.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var info TraceInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || info.Kind != KindL2Trace {
		t.Fatalf("l2 upload: status %d info %+v", resp.StatusCode, info)
	}
	if info.Records != lt.Events() {
		t.Errorf("l2 upload records %d, want %d events", info.Records, lt.Events())
	}

	postReplay := func(req ReplayRequest) (int, ReplayResponse, string) {
		t.Helper()
		raw, _ := json.Marshal(req)
		resp, err := http.Post(srv.URL+"/v1/replay", "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		var rr ReplayResponse
		json.NewDecoder(io.TeeReader(resp.Body, &buf)).Decode(&rr)
		return resp.StatusCode, rr, buf.String()
	}

	// Replay under the matching L1 reproduces the local row.
	l2Sizes := []int{512 << 10, 1 << 20}
	code, rr, body := postReplay(ReplayRequest{TraceID: info.ID, Shards: []Shard{{Index: 0, L1: l1, L2Sizes: l2Sizes}}})
	if code != http.StatusOK {
		t.Fatalf("l2 replay: status %d: %s", code, body)
	}
	want, err := harness.GeometryRowFromL2Trace(context.Background(), lt, l2Sizes)
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.Results) != 1 || !reflect.DeepEqual(rr.Results[0].Points, want) {
		t.Fatalf("l2 replay points differ\ngot  %+v\nwant %+v", rr.Results, want)
	}

	// A shard naming any other L1 must be rejected.
	other := harness.GeometryL1Configs()[1]
	code, _, body = postReplay(ReplayRequest{TraceID: info.ID, Shards: []Shard{{Index: 0, L1: other, L2Sizes: l2Sizes}}})
	if code != http.StatusBadRequest || !strings.Contains(body, "does not match") {
		t.Fatalf("mismatched-L1 replay: status %d body %s, want 400 mismatch diagnostic", code, body)
	}
}
