// Package dist shards trace-replay sweeps across worker processes.
//
// The paper's methodology — simulate one workload on many machines —
// distributes along its natural seam: a workload is encoded ONCE by
// the coordinator and every (L1, L2) cache configuration becomes an
// independent replay job on whichever worker its shard landed on.
// Because every shard of one L1 row shares that L1, the coordinator
// does not ship the full capture: it replays the capture through the
// L1 filter once per L1 configuration and uploads the ~40× smaller
// L2-bound M4L2 trace each row actually needs (the full M4TR capture
// remains available via Coordinator.ShipFullTrace, as the baseline).
// Workers execute shards through the same farm.Run engine and the same
// harness seams local sweeps use, so a distributed sweep is the local
// sweep with the replay loop stretched across processes; results merge
// in deterministic shard order and are identical to
// harness.RunGeometrySweep (asserted end-to-end by the tests, across
// real worker subprocesses).
//
// The coordinator is failover-aware and self-healing: uploads happen
// lazily per (worker, trace) when the first shard batch needing the
// trace is dispatched, and every upload and replay attempt runs under
// its own deadline. Failures are classified — transient (timeouts,
// connection refused/reset, 5xx) vs. permanent (4xx validation) vs.
// protocol violation (well-formed responses that lie about shard
// indices or trace IDs). Transients retry on the same worker under
// exponential backoff with seeded jitter, inside the bounded
// per-batch attempt budget; a worker accruing consecutive transient
// failures trips its circuit breaker and is dropped, its batches
// re-planned onto the survivors (re-uploading the needed trace where
// absent). Dropped workers are not gone for good: a background prober
// health-checks them after an escalating cooldown and re-admits the
// ones that recover — reconciling the upload cache against the trace
// IDs the worker still holds (a restarted process lost its store) and
// rebalancing queued work onto the returnee. Permanent failures abort
// the sweep fast, and protocol violators are barred from re-admission.
// Only when every worker is lost, or one batch exhausts its budget,
// does the sweep fail — and with Coordinator.FallbackLocal even that
// degrades gracefully: the undelivered shards replay through the local
// harness path, byte-identical to a local sweep.
//
// Protocol (worker side, all JSON unless noted):
//
//	POST   /v1/traces        body = trace wire format → TraceInfo
//	                         Content-Type selects the kind:
//	                           application/x-m4l2: L1-filtered L2 trace
//	                           anything else (x-m4tr, octet-stream, a
//	                           plain curl): full trace, as before PR 4
//	DELETE /v1/traces/{id}
//	POST   /v1/replay        ReplayRequest → ReplayResponse
//	GET    /v1/healthz
//
// Every geometry in a ReplayRequest arrives from the network and is
// validated through cache.TryNew before simulation; a bad shard is a
// 400 response, never a worker crash (unknown replacement-policy names
// included — the policy axis is part of the shard's L1 config). Trace
// uploads are decoded with the fuzz-hardened wire reader, so a corrupt
// body is a 400 too. A shard replayed against an M4L2 trace must name
// the trace's embedded L1 — any other L1 (or L1 policy: the L2-bound
// stream is a pure function of the whole L1 configuration) would
// silently simulate the wrong hierarchy, so the mismatch is a 400.
package dist

import (
	"repro/internal/cache"
	"repro/internal/harness"
	"repro/internal/obs"
)

// Content types selecting the upload kind on POST /v1/traces. Only
// ContentTypeL2Trace switches decoders; every other type means a full
// trace, so pre-L2 clients (which sent octet-stream or nothing) keep
// working unchanged.
const (
	ContentTypeTrace   = "application/x-m4tr"
	ContentTypeL2Trace = "application/x-m4l2"
)

// Trace kinds reported in TraceInfo.Kind.
const (
	KindTrace   = "m4tr"
	KindL2Trace = "m4l2"
)

// TraceInfo describes an uploaded trace. Records counts full-trace
// records for KindTrace and L2-bound events for KindL2Trace.
type TraceInfo struct {
	ID      string `json:"id"`
	Kind    string `json:"kind"`
	Records int    `json:"records"`
	Bytes   int64  `json:"bytes"` // wire size as received
}

// Shard is one replay job: a single L1 configuration with a contiguous
// chunk of the L2-size axis. The replacement-policy axis rides inside
// the L1 config (cache.Config.Policy; the simulated L2 inherits it,
// see harness.geometryMachine) — no extra protocol field or trace kind
// is needed, and pre-policy shards decode with the LRU default. Index
// is the shard's position in the coordinator's deterministic plan (see
// planShards); results are merged by it, never by arrival order.
type Shard struct {
	Index   int          `json:"index"`
	L1      cache.Config `json:"l1"`
	L2Sizes []int        `json:"l2_sizes"`
}

// ReplayRequest asks a worker to replay a set of shards against a
// previously uploaded trace.
type ReplayRequest struct {
	TraceID string  `json:"trace_id"`
	Shards  []Shard `json:"shards"`
}

// ShardResult is one shard's sweep points, in (L1, L2 size) order.
// Stats, when present, carries the whole-run simulation counters
// behind each point (same order) so the coordinator can memoize the
// cells; workers on the full-trace path may omit it, and a response
// whose Stats length disagrees with Points is used for points only.
type ShardResult struct {
	Index  int                     `json:"index"`
	Points []harness.GeometryPoint `json:"points"`
	Stats  []cache.Stats           `json:"stats,omitempty"`
}

// ReplayResponse returns every requested shard plus the worker-side
// capture/replay accounting for the request (each request runs under
// its own harness.Study).
type ReplayResponse struct {
	Results []ShardResult      `json:"results"`
	Usage   harness.TraceUsage `json:"trace_usage"`
}

// HealthStatus is the GET /v1/healthz response. Beyond liveness it
// carries what the coordinator's re-admission prober needs to decide
// re-upload work in the same round-trip: the IDs of the traces still
// resident (a restarted worker reports an empty list, telling the
// prober every cached upload ID is stale) and how many shards are
// replaying right now.
type HealthStatus struct {
	OK bool `json:"ok"`
	// Traces and TraceIDs describe the resident trace store; TraceIDs
	// is sorted and omitted when empty.
	Traces   int      `json:"traces"`
	TraceIDs []string `json:"trace_ids,omitempty"`
	// InFlightShards counts shards currently replaying.
	InFlightShards int `json:"in_flight_shards"`
	// Workers is the farm pool size shards execute on.
	Workers int `json:"workers"`
	// Version is the worker's build identity.
	Version obs.BuildInfo `json:"version"`
}

// errorBody is the JSON error envelope shared by all endpoints.
type errorBody struct {
	Error string `json:"error"`
}

// FallbackWorker is the ShardEvent.Worker value of shards the
// coordinator's local fallback replayed instead of the fleet.
const FallbackWorker = "local"

// MemoWorker is the ShardEvent.Worker value of shards served entirely
// from the coordinator's result memo — no worker ever saw them.
const MemoWorker = "memo"

// ShardEvent is one completed shard, delivered to Coordinator.OnShard.
// Events arrive in strict shard-index order: a shard is emitted as
// soon as it AND every lower-indexed shard have results, so a consumer
// that appends Points as events arrive reconstructs exactly the merged
// point order GeometrySweep returns. Failovers, retries and
// re-admissions reorder completion, never emission.
type ShardEvent struct {
	Shard  Shard
	Points []harness.GeometryPoint
	// Worker is the base URL of the worker whose replay produced the
	// points, or FallbackWorker for shards the local fallback recovered.
	Worker string
	// Done counts shards emitted so far (this one included); Total is
	// the sweep's shard count. Done == Total marks the final event.
	Done  int
	Total int
}
