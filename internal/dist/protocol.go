// Package dist shards trace-replay sweeps across worker processes.
//
// The paper's methodology — simulate one workload on many machines —
// distributes along its natural seam: a workload is encoded ONCE by
// the coordinator, the captured reference stream is serialized in the
// portable trace wire format (internal/trace), shipped to each worker
// over HTTP, and every (L1, L2) cache configuration becomes an
// independent replay job on whichever worker its shard landed on.
// Workers execute shards through the same farm.Run engine local sweeps
// use, so a distributed sweep is the local sweep with the replay loop
// stretched across processes; results merge in deterministic shard
// order and are identical to harness.RunGeometrySweep (asserted
// end-to-end by the tests, across real worker subprocesses).
//
// Protocol (worker side, all JSON unless noted):
//
//	POST   /v1/traces        body = trace wire format → TraceInfo
//	DELETE /v1/traces/{id}
//	POST   /v1/replay        ReplayRequest → ReplayResponse
//	GET    /v1/healthz
//
// Every geometry in a ReplayRequest arrives from the network and is
// validated through cache.TryNew before simulation; a bad shard is a
// 400 response, never a worker crash. Trace uploads are decoded with
// the fuzz-hardened wire reader, so a corrupt body is a 400 too.
package dist

import (
	"repro/internal/cache"
	"repro/internal/harness"
)

// TraceInfo describes an uploaded trace.
type TraceInfo struct {
	ID      string `json:"id"`
	Records int    `json:"records"`
	Bytes   int64  `json:"bytes"` // wire size as received
}

// Shard is one replay job: a single L1 configuration with a contiguous
// chunk of the L2-size axis. Index is the shard's position in the
// coordinator's deterministic plan (see planShards); results are
// merged by it, never by arrival order.
type Shard struct {
	Index   int          `json:"index"`
	L1      cache.Config `json:"l1"`
	L2Sizes []int        `json:"l2_sizes"`
}

// ReplayRequest asks a worker to replay a set of shards against a
// previously uploaded trace.
type ReplayRequest struct {
	TraceID string  `json:"trace_id"`
	Shards  []Shard `json:"shards"`
}

// ShardResult is one shard's sweep points, in (L1, L2 size) order.
type ShardResult struct {
	Index  int                     `json:"index"`
	Points []harness.GeometryPoint `json:"points"`
}

// ReplayResponse returns every requested shard plus the worker-side
// capture/replay accounting for the request (each request runs under
// its own harness.Study).
type ReplayResponse struct {
	Results []ShardResult      `json:"results"`
	Usage   harness.TraceUsage `json:"trace_usage"`
}

// errorBody is the JSON error envelope shared by all endpoints.
type errorBody struct {
	Error string `json:"error"`
}
