// Parallel L1 filtering: the FilterL2 pass (full reference stream →
// L2-bound stream) computed across all cores, byte-identical to the
// serial filter.
//
// The record stream splits into fixed chunks. Each worker batch-decodes
// its chunk's records into a reusable structure-of-arrays probe tile —
// one line-granular cache probe per entry, with the L1 set index
// precomputed — and replays the tile against the same two-zone
// speculation as the L2 engine (see parallel.go): lines touched by a
// demand access earlier in the chunk are exact "known" state, anything
// older is unknown. Because the filter must *emit* the L2-bound event
// stream, each chunk produces an item stream: definite events appear
// literally, and probes the chunk cannot decide occupy op slots that
// the sequential reconcile pass resolves against the true pre-chunk
// state — appending the exact events (or none) in place.
//
// Prefetch probes need one extra mechanism. A prefetch checks presence
// without refreshing recency (cache.Cache.Lookup), so a prefetch to a
// line that may or may not be resident forks the speculative set state:
// if resident nothing changes, if absent a line is installed. Such a
// set is "poisoned": its known-zone snapshot is logged, and every later
// probe of the set in the chunk becomes a slow op that the reconcile
// pass simulates exactly against the materialized true state. Encoded
// traces are prefetch-free (prefetches exist only on the decode path),
// so the hot filtering paths never poison.
package trace

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/obs"
	"repro/internal/simmem"
)

var (
	mParallelFilters = obs.Default().Counter("trace_filter_parallel_total")
	mFilterFallbacks = obs.Default().Counter("trace_filter_fallback_total")
)

// Probe kinds in the expansion tile.
const (
	probeLoad uint8 = iota
	probeStore
	probePrefetch
)

// Reconcile-op kinds.
const (
	l1OpUnknown uint8 = iota // demand probe that may hit pre-chunk state
	l1OpDefWB                // definite miss whose victim's dirty bit is unresolved
	l1OpPoison               // materialize a set before its slow ops
	l1OpSlow                 // probe in a poisoned set, simulated exactly
)

// l1Op is one entry of a chunk's reconcile log, consumed in item-stream
// order.
type l1Op struct {
	addr uint64 // probe address (unknown/slow/poison) or victim line number (defwb)
	aux  uint32 // defwb: unknown-log dep index; poison: known-line count
	kind uint8
	pk   uint8 // probe kind for unknown/slow
}

// l1ChunkMark snapshots one phase marker: the definite counters so far
// plus the item position, from which the reconcile pass derives the
// exact at-mark Stats and event offset.
type l1ChunkMark struct {
	itemIdx int
	name    uint32 // Trace.phaseNames index
	begin   bool
	def     cache.Stats
}

// poisonedSet marks a touched set whose end state the reconcile pass
// already materialized in place (no known-zone export).
const poisonedSet = ^uint16(0)

// l1ChunkRes is the speculative result of one record chunk. items
// interleaves literal events (bit 0 set, event word above) with op
// slots (zero) consuming the ops log in order.
type l1ChunkRes struct {
	def     cache.Stats // definite counters, from zero at chunk start
	items   []uint64
	ops     []l1Op
	ptags   []uint64 // flattened poison-time known-zone snapshots
	pdirty  []int32
	marks   []l1ChunkMark
	touched []uint32 // sets touched, in first-touch order
	kcnt    []uint16 // per touched set: known count, or poisonedSet
	ktags   []uint64
	kdirty  []int32 // 0 clean, 1 dirty, i+2 = depends on unknown i
	nUnk    int
}

// tileProbes is the capacity of the expansion tile: small enough to
// stay hot in the host L1/L2 while the probe loop consumes it.
const tileProbes = 1 << 12

// l1Spec is one worker's reusable state: the speculative cache arrays
// plus the SoA expansion tile.
type l1Spec struct {
	g     l2Geom
	tags  []uint64
	dirty []int32
	kc    []uint16
	epoch []uint32
	pois  []uint32 // set poisoned this chunk when pois[s] == cur
	cur   uint32

	tAddr []uint64
	tSet  []uint32
	tKind []uint8

	res *l1ChunkRes
}

func newL1Spec(g l2Geom) *l1Spec {
	return &l1Spec{
		g:     g,
		tags:  make([]uint64, g.lines),
		dirty: make([]int32, g.lines),
		kc:    make([]uint16, g.sets),
		epoch: make([]uint32, g.sets),
		pois:  make([]uint32, g.sets),
		tAddr: make([]uint64, 0, tileProbes),
		tSet:  make([]uint32, 0, tileProbes),
		tKind: make([]uint8, 0, tileProbes),
	}
}

// push appends one probe to the tile, flushing when full.
func (sp *l1Spec) push(addr uint64, pk uint8) {
	if len(sp.tAddr) == tileProbes {
		sp.flush()
	}
	sp.tAddr = append(sp.tAddr, addr)
	sp.tSet = append(sp.tSet, uint32((addr>>sp.g.lineShift)&sp.g.setMask))
	sp.tKind = append(sp.tKind, pk)
}

// flush replays the tile's probes against the speculative state.
func (sp *l1Spec) flush() {
	g, res, ways := sp.g, sp.res, sp.g.ways
	for i := range sp.tAddr {
		addr, s, pk := sp.tAddr[i], sp.tSet[i], sp.tKind[i]
		if sp.epoch[s] != sp.cur {
			sp.epoch[s] = sp.cur
			sp.kc[s] = 0
			res.touched = append(res.touched, s)
		}
		if sp.pois[s] == sp.cur {
			res.items = append(res.items, 0)
			res.ops = append(res.ops, l1Op{addr: addr, kind: l1OpSlow, pk: pk})
			continue
		}
		ln := addr >> g.lineShift
		base := int(s) * ways
		k := int(sp.kc[s])
		hit := false
		for w := 0; w < k; w++ {
			if sp.tags[base+w] == ln {
				if pk == probePrefetch {
					// Lookup: presence check, no recency refresh.
					res.def.PrefetchL1Hits++
				} else {
					d := sp.dirty[base+w]
					for j := w; j > 0; j-- {
						sp.tags[base+j] = sp.tags[base+j-1]
						sp.dirty[base+j] = sp.dirty[base+j-1]
					}
					sp.tags[base] = ln
					if pk == probeStore {
						d = 1
					}
					sp.dirty[base] = d
				}
				hit = true
				break
			}
		}
		if hit {
			continue
		}
		if k == ways {
			// Converged set: a definite miss with a known victim.
			res.def.L1Misses++
			vt := sp.tags[base+ways-1]
			vd := sp.dirty[base+ways-1]
			if vd == 1 {
				res.def.L1Writebacks++
				res.items = append(res.items, ((vt<<g.lineShift)<<1|1)<<1|1)
			} else if vd >= 2 {
				res.items = append(res.items, 0)
				res.ops = append(res.ops, l1Op{addr: vt, aux: uint32(vd - 2), kind: l1OpDefWB})
			}
			res.items = append(res.items, (addr<<1)<<1|1)
			for j := ways - 1; j > 0; j-- {
				sp.tags[base+j] = sp.tags[base+j-1]
				sp.dirty[base+j] = sp.dirty[base+j-1]
			}
			sp.tags[base] = ln
			if pk == probeStore {
				sp.dirty[base] = 1
			} else {
				sp.dirty[base] = 0
			}
			continue
		}
		if pk == probePrefetch {
			// Unknown presence without a state update to hide behind:
			// poison the set and go slow for the rest of the chunk.
			res.items = append(res.items, 0)
			res.ops = append(res.ops, l1Op{addr: addr, aux: uint32(k), kind: l1OpPoison})
			res.ptags = append(res.ptags, sp.tags[base:base+k]...)
			res.pdirty = append(res.pdirty, sp.dirty[base:base+k]...)
			sp.pois[s] = sp.cur
			res.items = append(res.items, 0)
			res.ops = append(res.ops, l1Op{addr: addr, kind: l1OpSlow, pk: probePrefetch})
			continue
		}
		// Unknown demand probe: the line may have survived from before
		// the chunk. Install it as known either way.
		d := int32(res.nUnk) + 2
		if pk == probeStore {
			d = 1
		}
		for j := k; j > 0; j-- {
			sp.tags[base+j] = sp.tags[base+j-1]
			sp.dirty[base+j] = sp.dirty[base+j-1]
		}
		sp.tags[base] = ln
		sp.dirty[base] = d
		sp.kc[s] = uint16(k + 1)
		res.items = append(res.items, 0)
		res.ops = append(res.ops, l1Op{addr: addr, kind: l1OpUnknown, pk: pk})
		res.nUnk++
	}
	sp.tAddr = sp.tAddr[:0]
	sp.tSet = sp.tSet[:0]
	sp.tKind = sp.tKind[:0]
}

// specFilterChunk batch-decodes records [lo, hi) into probe tiles and
// replays them speculatively, mirroring L2Filter's expansion of each
// record exactly.
func (t *Trace) specFilterChunk(sp *l1Spec, lo, hi int) *l1ChunkRes {
	res := &l1ChunkRes{}
	sp.res = res
	sp.cur++
	lb := uint64(1) << sp.g.lineShift
	for ci := lo / chunkRecords; ci*chunkRecords < hi; ci++ {
		ch := t.chunks[ci]
		start, end := 0, len(ch)
		if s := lo - ci*chunkRecords; s > 0 {
			start = s
		}
		if e := hi - ci*chunkRecords; e < end {
			end = e
		}
		for i := start; i < end; i++ {
			op, addr, n, stride, unit, rows := t.expand(ch[i])
			switch op {
			case opAccessLoad, opAccessStore:
				pk := probeLoad
				if op == opAccessStore {
					pk = probeStore
					res.def.Stores++
					res.def.StoreBytes += uint64(n)
				} else {
					res.def.Loads++
					res.def.LoadBytes += uint64(n)
				}
				if n == 0 {
					continue
				}
				first := addr &^ (lb - 1)
				last := (addr + uint64(n) - 1) &^ (lb - 1)
				for a := first; a <= last; a += lb {
					sp.push(a, pk)
				}
			case opAccessPrefetch:
				res.def.Prefetches++
				sp.push(addr, probePrefetch)
			case opRunLoad, opRunStore:
				if n == 0 || rows == 0 {
					continue
				}
				refs := uint64(rows) * simmem.RunRefs(int(n), unit)
				bytes := uint64(rows) * uint64(n)
				pk := probeLoad
				if op == opRunStore {
					pk = probeStore
					res.def.Stores += refs
					res.def.StoreBytes += bytes
				} else {
					res.def.Loads += refs
					res.def.LoadBytes += bytes
				}
				for r := uint16(0); r < rows; r++ {
					first := addr &^ (lb - 1)
					last := (addr + uint64(n) - 1) &^ (lb - 1)
					for a := first; a <= last; a += lb {
						sp.push(a, pk)
					}
					addr += uint64(stride)
				}
			case opRunPrefetch:
				if n == 0 || rows == 0 {
					continue
				}
				for r := uint16(0); r < rows; r++ {
					for a := addr &^ (lb - 1); a < addr+uint64(n); a += lb {
						res.def.Prefetches++
						sp.push(a, probePrefetch)
					}
					addr += uint64(stride)
				}
			case opOps:
				res.def.Ops += addr
			case opPhaseBegin, opPhaseEnd:
				sp.flush()
				res.marks = append(res.marks, l1ChunkMark{
					itemIdx: len(res.items),
					name:    uint32(addr),
					begin:   op == opPhaseBegin,
					def:     res.def,
				})
			}
		}
	}
	sp.flush()
	// Export the known zone of every touched, unpoisoned set.
	for _, s := range res.touched {
		if sp.pois[s] == sp.cur {
			res.kcnt = append(res.kcnt, poisonedSet)
			continue
		}
		base := int(s) * sp.g.ways
		k := int(sp.kc[s])
		res.kcnt = append(res.kcnt, uint16(k))
		res.ktags = append(res.ktags, sp.tags[base:base+k]...)
		res.kdirty = append(res.kdirty, sp.dirty[base:base+k]...)
	}
	return res
}

// FilterL2Parallel computes the L1 filter pass with up to `workers`
// cores: the resulting L2Trace — base counters, event stream, phase
// marks and name table — is byte-identical to
// NewL2Filter(l1) + Replay + Trace(). Non-LRU policies, workers <= 1
// and short traces take the serial path.
func (t *Trace) FilterL2Parallel(l1 cache.Config, workers int) *L2Trace {
	chunk := chunkRecords
	if n := chunkEventsOverride.Load(); n > 0 {
		chunk = int(n)
	}
	if workers > t.records/chunk {
		workers = t.records / chunk
	}
	var g l2Geom
	if ok := l1.Validate() == nil; ok {
		g = geomOf(l1)
	}
	if g.lines == 0 || !policyParallelOK(l1.Policy) || workers <= 1 || g.ways > maxParallelWays {
		mFilterFallbacks.Inc()
		f := NewL2Filter(l1)
		t.Replay(f, f)
		return f.Trace()
	}
	if obs.Enabled() {
		defer noteReplay(time.Now(), t.records)
	}
	mParallelFilters.Inc()

	nchunks := (t.records + chunk - 1) / chunk
	results := make([]*l1ChunkRes, nchunks)
	specStart := time.Now()
	var next atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp := newL1Spec(g)
			for {
				ci := int(next.Add(1)) - 1
				if ci >= nchunks {
					return
				}
				lo := ci * chunk
				hi := min(lo+chunk, t.records)
				results[ci] = t.specFilterChunk(sp, lo, hi)
			}
		}()
	}
	wg.Wait()
	if obs.Enabled() {
		mChunkSeconds.Observe(time.Since(specStart).Seconds())
	}

	reconStart := time.Now()
	out := t.reconcileFilter(g, l1, results)
	if obs.Enabled() {
		mReconcileSeconds.Observe(time.Since(reconStart).Seconds())
	}
	return out
}

// reconcileFilter threads the true L1 state through the chunk results
// in order, resolving op slots into exact events and counters.
func (t *Trace) reconcileFilter(g l2Geom, l1 cache.Config, results []*l1ChunkRes) *L2Trace {
	ways := g.ways
	tags := make([]uint64, g.lines)
	dirty := make([]bool, g.lines)
	cnt := make([]uint16, g.sets) // residual lines per set
	uk := make([]uint32, g.sets)  // unknowns so far per set, this chunk
	ukEpoch := make([]uint32, g.sets)
	var epoch uint32
	var depResolved []bool
	var tmpT [maxParallelWays]uint64
	var tmpD [maxParallelWays]bool

	out := &L2Trace{L1: l1, hcache: &hashCache{}}
	nameIdx := map[uint32]uint32{} // Trace.phaseNames index → filter name index
	var carry cache.Stats          // exact totals over completed chunks

	for _, res := range results {
		epoch++
		if cap(depResolved) < res.nUnk {
			depResolved = make([]bool, res.nUnk)
		}
		depResolved = depResolved[:res.nUnk]
		var rMiss, rWB, rPF uint64 // resolved counters within this chunk
		it, opi, u, poff := 0, 0, 0, 0

		processItems := func(upTo int) {
			for it < upTo {
				item := res.items[it]
				it++
				if item&1 == 1 {
					out.events = append(out.events, item>>1)
					continue
				}
				o := &res.ops[opi]
				opi++
				switch o.kind {
				case l1OpUnknown:
					ln := o.addr >> g.lineShift
					s := ln & g.setMask
					if ukEpoch[s] != epoch {
						ukEpoch[s] = epoch
						uk[s] = 0
					}
					base := int(s) * ways
					r := int(cnt[s])
					found := -1
					for j := 0; j < r; j++ {
						if tags[base+j] == ln {
							found = j
							break
						}
					}
					if found >= 0 {
						// Resident: a hit; the line moved to the known zone.
						depResolved[u] = dirty[base+found]
						copy(tags[base+found:base+r-1], tags[base+found+1:base+r])
						copy(dirty[base+found:base+r-1], dirty[base+found+1:base+r])
						cnt[s] = uint16(r - 1)
					} else {
						depResolved[u] = false
						rMiss++
						if int(uk[s])+r >= ways && r > 0 {
							if dirty[base+r-1] {
								rWB++
								out.events = append(out.events, (tags[base+r-1]<<g.lineShift)<<1|1)
							}
							cnt[s] = uint16(r - 1)
						}
						out.events = append(out.events, o.addr<<1)
					}
					uk[s]++
					u++
				case l1OpDefWB:
					if depResolved[o.aux] {
						rWB++
						out.events = append(out.events, (o.addr<<g.lineShift)<<1|1)
					}
				case l1OpPoison:
					// Materialize the set: resolved known zone stacked
					// above the surviving residual.
					ln := o.addr >> g.lineShift
					s := ln & g.setMask
					base := int(s) * ways
					k := int(o.aux)
					rem := int(cnt[s])
					copy(tmpT[:rem], tags[base:base+rem])
					copy(tmpD[:rem], dirty[base:base+rem])
					for j := 0; j < k; j++ {
						code := res.pdirty[poff+j]
						tags[base+j] = res.ptags[poff+j]
						dirty[base+j] = code == 1 || (code >= 2 && depResolved[code-2])
					}
					poff += k
					copy(tags[base+k:base+k+rem], tmpT[:rem])
					copy(dirty[base+k:base+k+rem], tmpD[:rem])
					cnt[s] = uint16(k + rem)
				case l1OpSlow:
					// Exact simulation against the materialized set.
					ln := o.addr >> g.lineShift
					s := ln & g.setMask
					base := int(s) * ways
					r := int(cnt[s])
					found := -1
					for j := 0; j < r; j++ {
						if tags[base+j] == ln {
							found = j
							break
						}
					}
					if found >= 0 {
						if o.pk == probePrefetch {
							rPF++
						} else {
							d := dirty[base+found]
							copy(tags[base+1:base+found+1], tags[base:base+found])
							copy(dirty[base+1:base+found+1], dirty[base:base+found])
							tags[base] = ln
							if o.pk == probeStore {
								d = true
							}
							dirty[base] = d
						}
						continue
					}
					rMiss++
					if r == ways {
						if dirty[base+ways-1] {
							rWB++
							out.events = append(out.events, (tags[base+ways-1]<<g.lineShift)<<1|1)
						}
						r--
					}
					copy(tags[base+1:base+r+1], tags[base:base+r])
					copy(dirty[base+1:base+r+1], dirty[base:base+r])
					tags[base] = ln
					dirty[base] = o.pk == probeStore
					cnt[s] = uint16(r + 1)
					out.events = append(out.events, o.addr<<1)
				}
			}
		}

		for mi := range res.marks {
			m := &res.marks[mi]
			processItems(m.itemIdx)
			at := carry.Add(m.def).Add(cache.Stats{L1Misses: rMiss, L1Writebacks: rWB, PrefetchL1Hits: rPF})
			ni, ok := nameIdx[m.name]
			if !ok {
				ni = uint32(len(out.names))
				out.names = append(out.names, t.phaseNames[m.name])
				nameIdx[m.name] = ni
			}
			out.marks = append(out.marks, l2Mark{pos: len(out.events), name: ni, begin: m.begin, base: at})
		}
		processItems(len(res.items))
		carry = carry.Add(res.def).Add(cache.Stats{L1Misses: rMiss, L1Writebacks: rWB, PrefetchL1Hits: rPF})

		// Thread the true end state (cf. the L2 reconcile); poisoned
		// sets were materialized in place and are already exact.
		off := 0
		for ti, s := range res.touched {
			k := int(res.kcnt[ti])
			if uint16(k) == poisonedSet {
				continue
			}
			base := int(s) * ways
			rem := int(cnt[s])
			copy(tmpT[:rem], tags[base:base+rem])
			copy(tmpD[:rem], dirty[base:base+rem])
			for j := 0; j < k; j++ {
				code := res.kdirty[off+j]
				tags[base+j] = res.ktags[off+j]
				dirty[base+j] = code == 1 || (code >= 2 && depResolved[code-2])
			}
			copy(tags[base+k:base+k+rem], tmpT[:rem])
			copy(dirty[base+k:base+k+rem], tmpD[:rem])
			cnt[s] = uint16(k + rem)
			off += k
		}
	}

	out.base = carry
	return out
}

// ReplayHierarchyParallel replays the trace against a two-level
// hierarchy with up to `workers` cores, returning whole-run and
// per-phase Stats byte-identical to the serial filtered replay (and so
// to live hierarchy tracing): the parallel L1 filter composed with the
// parallel L2 replay.
func (t *Trace) ReplayHierarchyParallel(l1, l2 cache.Config, workers int) (cache.Stats, map[string]cache.Stats) {
	lt := t.FilterL2Parallel(l1, workers)
	return lt.ReplayParallel(l2, workers)
}
