package trace

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/cache"
	"repro/internal/simmem"
)

// synthL2Trace builds a synthetic L2-bound stream with tunable
// locality plus randomly placed (and sometimes unmatched or nested)
// phase markers — the adversarial input for the chunk-boundary
// property suite.
func synthL2Trace(rng *rand.Rand, events, lineSpan int) *L2Trace {
	t := &L2Trace{
		L1:     cache.Config{SizeBytes: 32 << 10, LineBytes: 32, Ways: 2},
		names:  []string{"alpha", "beta", "gamma", "orphan"},
		hcache: &hashCache{},
	}
	t.base = cache.Stats{Loads: 123, Stores: 45, LoadBytes: 999, Ops: 7}
	hot := uint64(rng.Intn(lineSpan))
	for i := 0; i < events; i++ {
		if rng.Intn(64) == 0 {
			t.marks = append(t.marks, l2Mark{
				pos:   len(t.events),
				name:  uint32(rng.Intn(len(t.names))),
				begin: rng.Intn(2) == 0,
				base:  cache.Stats{Loads: uint64(i), L1Misses: uint64(len(t.events)), Ops: uint64(rng.Intn(1000))},
			})
		}
		if rng.Intn(8) == 0 {
			hot = uint64(rng.Intn(lineSpan))
		}
		ln := hot
		if rng.Intn(4) == 0 {
			ln = uint64(rng.Intn(lineSpan))
		}
		ev := (ln * 32) << 1
		if rng.Intn(3) == 0 {
			ev |= 1 // writeback install
		}
		t.events = append(t.events, ev)
	}
	// Trailing marks exercise the pos == len(events) path.
	for i := 0; i < rng.Intn(3); i++ {
		t.marks = append(t.marks, l2Mark{
			pos:  len(t.events),
			name: uint32(rng.Intn(len(t.names))),
			base: cache.Stats{Loads: uint64(events)},
		})
	}
	return t
}

var propPolicies = []cache.Policy{"", cache.PolicyLRU, cache.PolicyPLRU, cache.PolicyFIFO, cache.PolicyRandom, cache.PolicyVictim}

// TestL2ReplayParallelProperty: parallel == serial byte-identically for
// random streams, random chunk sizes, random worker counts, every
// policy, and every mark layout.
func TestL2ReplayParallelProperty(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		lt := synthL2Trace(rng, 2000+rng.Intn(6000), 1+rng.Intn(900))
		for _, pol := range propPolicies {
			cfg := cache.Config{
				SizeBytes: 1 << (10 + rng.Intn(5)),
				LineBytes: 32,
				Ways:      1 << rng.Intn(3),
				Policy:    pol,
			}
			wantWhole, wantPhases := lt.Replay(cfg)
			for trial := 0; trial < 3; trial++ {
				chunk := 64 + rng.Intn(2000)
				workers := 2 + rng.Intn(6)
				chunkEventsOverride.Store(int32(chunk))
				gotWhole, gotPhases := lt.ReplayParallel(cfg, workers)
				chunkEventsOverride.Store(0)
				if gotWhole != wantWhole {
					t.Fatalf("seed %d policy %q chunk %d workers %d: whole = %+v, want %+v",
						seed, pol, chunk, workers, gotWhole, wantWhole)
				}
				if !reflect.DeepEqual(gotPhases, wantPhases) {
					t.Fatalf("seed %d policy %q chunk %d workers %d: phases = %+v, want %+v",
						seed, pol, chunk, workers, gotPhases, wantPhases)
				}
			}
		}
	}
}

// TestL2ReplayManyMatchesSerial: the fused multi-config pass is
// byte-identical to standalone replays, with and without config-level
// parallelism.
func TestL2ReplayManyMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	lt := synthL2Trace(rng, 9000, 700)
	var cfgs []cache.Config
	for _, pol := range propPolicies {
		for _, size := range []int{1 << 12, 1 << 14, 1 << 16} {
			cfgs = append(cfgs, cache.Config{SizeBytes: size, LineBytes: 32, Ways: 2, Policy: pol})
		}
	}
	for _, workers := range []int{1, 4} {
		got := lt.ReplayMany(cfgs, workers)
		for i, cfg := range cfgs {
			wantWhole, wantPhases := lt.Replay(cfg)
			if got[i].Whole != wantWhole {
				t.Fatalf("workers %d config %d (%+v): whole = %+v, want %+v", workers, i, cfg, got[i].Whole, wantWhole)
			}
			if !reflect.DeepEqual(got[i].Phases, wantPhases) {
				t.Fatalf("workers %d config %d: phases mismatch", workers, i)
			}
		}
	}
}

// TestL2ReplayParallelConcurrent drives several parallel replays of one
// shared trace at once — the -race CI run proves the engine shares
// nothing but the read-only trace.
func TestL2ReplayParallelConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	lt := synthL2Trace(rng, 20000, 500)
	cfg := cache.Config{SizeBytes: 1 << 14, LineBytes: 32, Ways: 2}
	wantWhole, wantPhases := lt.Replay(cfg)
	chunkEventsOverride.Store(512)
	defer chunkEventsOverride.Store(0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			whole, phases := lt.ReplayParallel(cfg, 4)
			if whole != wantWhole || !reflect.DeepEqual(phases, wantPhases) {
				t.Errorf("concurrent parallel replay diverged")
			}
		}()
	}
	wg.Wait()
}

// TestRecordPacked asserts the satellite record-shrink: 16 bytes per
// packed record, and SizeBytes accounting for it.
func TestRecordPacked(t *testing.T) {
	if got := int(reflect.TypeOf(record{}).Size()); got != recordBytes {
		t.Fatalf("record size = %d bytes, want %d", got, recordBytes)
	}
	if recordBytes != 16 {
		t.Fatalf("recordBytes = %d, want 16", recordBytes)
	}
	r := NewRecorder()
	for i := 0; i < 3*chunkRecords; i++ {
		r.Access(uint64(i)*64, 4, simmem.Load)
	}
	tr := r.Finish()
	if tr.SizeBytes() < tr.Records()*recordBytes {
		t.Fatalf("SizeBytes %d below %d records * %d", tr.SizeBytes(), tr.Records(), recordBytes)
	}
	if tr.SizeBytes() > 2*tr.Records()*recordBytes {
		t.Fatalf("SizeBytes %d more than 2x the packed record payload", tr.SizeBytes())
	}
	if len(tr.wide) != 0 {
		t.Fatalf("plain accesses spilled %d wide records", len(tr.wide))
	}
}

// TestRecordWideSpill: fields beyond the packed ranges round-trip
// exactly through the wide table, the replay dispatch, and the wire
// format.
func TestRecordWideSpill(t *testing.T) {
	// Addresses beyond the 56-bit packed payload spill to the wide table
	// in memory and replay exactly; the wire format has always bounded
	// addresses at 2^56, so such a trace still refuses to encode.
	{
		r := NewRecorder()
		r.Access(uint64(1)<<60, 8, simmem.Store)
		tr := r.Finish()
		if len(tr.wide) != 1 {
			t.Fatalf("huge address spilled %d wide records, want 1", len(tr.wide))
		}
		var got []string
		tr.Replay(&tracerLog{out: &got}, nil)
		if len(got) != 1 || got[0] != fmt.Sprintf("A %d 8 %d", uint64(1)<<60, simmem.Store) {
			t.Fatalf("huge address replayed as %v", got)
		}
		var b bytes.Buffer
		if _, err := tr.WriteTo(&b); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadTrace(&b); err == nil {
			t.Fatalf("expected ReadTrace to reject a 2^60 address")
		}
	}

	r := NewRecorder()
	r.Run(100, 5<<24, 4, simmem.Load)                // run length beyond 24 bits
	r.Run(200, 64, 3, simmem.Load)                   // non-power-of-two unit
	r.Run(300, 64, 1<<16, simmem.Load)               // unit beyond 2^15
	r.RunStrided(400, 64, 1<<24, 4, 8, simmem.Store) // stride beyond 24 bits
	r.RunStrided(500, 32, 16, 3, 8, simmem.Prefetch) // packed control
	r.Ops(1 << 60)                                   // ops count beyond the 56-bit payload
	r.PhaseBegin("p")
	r.PhaseEnd("p")
	tr := r.Finish()
	if len(tr.wide) == 0 {
		t.Fatalf("expected wide spills")
	}

	var got, want []string
	rec := func(out *[]string) *tracerLog { return &tracerLog{out: out} }
	tr.Replay(rec(&got), nil)

	// The same stream captured through a fresh recorder must replay
	// identically after a wire round-trip.
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	dec, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Records() != tr.Records() {
		t.Fatalf("round-trip records %d != %d", dec.Records(), tr.Records())
	}
	dec.Replay(rec(&want), nil)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("wide records diverged after wire round-trip:\n got %v\nwant %v", got, want)
	}
}

// tracerLog records the exact Tracer call stream.
type tracerLog struct {
	out *[]string
}

func (l *tracerLog) Access(addr uint64, size uint32, kind simmem.Kind) {
	*l.out = append(*l.out, fmt.Sprintf("A %d %d %d", addr, size, kind))
}
func (l *tracerLog) Run(addr uint64, n int, unit uint32, kind simmem.Kind) {
	*l.out = append(*l.out, fmt.Sprintf("R %d %d %d %d", addr, n, unit, kind))
}
func (l *tracerLog) RunStrided(addr uint64, rowBytes, stride, rows int, unit uint32, kind simmem.Kind) {
	*l.out = append(*l.out, fmt.Sprintf("S %d %d %d %d %d %d", addr, rowBytes, stride, rows, unit, kind))
}
func (l *tracerLog) Ops(n uint64) {
	*l.out = append(*l.out, fmt.Sprintf("O %d", n))
}
