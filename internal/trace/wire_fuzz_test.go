package trace

import (
	"bytes"
	"math/rand"
	"testing"
)

// The fuzz targets prove the decoders' safety contract: arbitrary bytes
// — truncated, corrupted, wrong-version, hostile — yield an error or a
// valid trace, never a panic. `go test` runs the seed corpus as a
// regression suite; `go test -fuzz=FuzzReadTrace ./internal/trace` digs
// for new crashers.

func fuzzSeedTrace() []byte {
	rec := NewRecorder()
	rec.PhaseBegin("Vop")
	randomStream(rand.New(rand.NewSource(1)), 300, rec, nil)
	rec.PhaseEnd("Vop")
	var buf bytes.Buffer
	if _, err := rec.Finish().WriteTo(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func fuzzSeedL2Trace() []byte {
	f := NewL2Filter(l1Config())
	f.PhaseBegin("Vop")
	randomStream(rand.New(rand.NewSource(1)), 300, f, nil)
	f.PhaseEnd("Vop")
	var buf bytes.Buffer
	if _, err := f.Trace().WriteTo(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func FuzzReadTrace(f *testing.F) {
	seed := fuzzSeedTrace()
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add(seed[:5])
	f.Add([]byte{})
	f.Add([]byte("M4TR\x01"))
	f.Add([]byte("M4TR\x02\x00\x00"))         // wrong version
	f.Add([]byte("M4TR\x01\x00\x01\x07\x05")) // phase index out of range
	f.Add(seed[:len(seed)-hashTrailerLen])    // legacy hash-less stream
	f.Add(seed[:len(seed)-1])                 // truncated hash trailer
	corrupt := bytes.Clone(seed)              // trailer digest that contradicts the body
	corrupt[len(corrupt)-1] ^= 0xFF
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully decoded trace must be internally consistent
		// enough to re-encode.
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			t.Fatalf("re-encode of decoded trace failed: %v", err)
		}
	})
}

func FuzzReadL2Trace(f *testing.F) {
	seed := fuzzSeedL2Trace()
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add(seed[:5])
	f.Add([]byte{})
	f.Add([]byte("M4L2\x01"))
	f.Add([]byte("M4L2\x02"))
	f.Add(seed[:len(seed)-hashTrailerLen]) // legacy hash-less stream
	lcorrupt := bytes.Clone(seed)
	lcorrupt[len(lcorrupt)-1] ^= 0xFF
	f.Add(lcorrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		lt, err := ReadL2Trace(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if _, err := lt.WriteTo(&buf); err != nil {
			t.Fatalf("re-encode of decoded l2 trace failed: %v", err)
		}
	})
}
