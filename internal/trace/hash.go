// Content addressing. A trace's identity is the SHA-256 of its wire
// encoding: two captures that encode to the same bytes are the same
// trace, no matter when, where, or under what name they were taken.
// The digest is computed while encoding (WriteTo) or decoding — the
// bytes stream through the hasher exactly once — and is carried in an
// optional trailer after the body ("M4HS" + 32 raw digest bytes).
// Readers accept trailer-less streams written by older binaries and
// verify the digest when the trailer is present, so corruption that
// slips past the structural validation is still caught.
package trace

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
)

// Hash is the canonical content hash of a trace: the SHA-256 of its
// wire-format body (everything up to, but not including, the M4HS
// trailer).
type Hash [sha256.Size]byte

// String renders the hash as lowercase hex — the form used as a trace
// ID in URLs, stores, and memo keys.
func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// IsZero reports whether h is the zero hash (no hash known).
func (h Hash) IsZero() bool { return h == Hash{} }

// ParseHash decodes the hex form produced by Hash.String.
func ParseHash(s string) (Hash, error) {
	var h Hash
	if len(s) != hex.EncodedLen(len(h)) {
		return Hash{}, fmt.Errorf("trace: hash %q: want %d hex chars", s, hex.EncodedLen(len(h)))
	}
	if _, err := hex.Decode(h[:], []byte(s)); err != nil {
		return Hash{}, fmt.Errorf("trace: hash %q: %v", s, err)
	}
	return h, nil
}

// hashCache memoizes a trace's content hash across WriteTo/Hash calls.
// It is held by pointer (not embedded) so the `*t = *dec` assignments
// in ReadFrom stay legal under go vet's copylocks check; a nil cache
// simply never memoizes. Traces are hashed only once complete
// (post-Finish / post-decode), so a cached value never goes stale.
type hashCache struct {
	mu sync.Mutex
	ok bool
	h  Hash
}

func (c *hashCache) get() (Hash, bool) {
	if c == nil {
		return Hash{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.h, c.ok
}

func (c *hashCache) set(h Hash) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.h, c.ok = h, true
	c.mu.Unlock()
}
